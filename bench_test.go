// Benchmarks regenerating the paper's evaluation (one benchmark per figure,
// Section 8) plus the ablations DESIGN.md calls out. The figure benchmarks
// report the reproduced quantities as custom metrics (comm/doc, gini,
// jaccard-err, repartitions, ...) so `go test -bench=.` doubles as a
// compact reproduction report; cmd/experiments prints the full tables.
//
// Benchmarks run on a shortened stream (see benchSuite) — the shapes match
// the full runs of cmd/experiments, the absolute repartition counts scale
// with stream length.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/graph"
	"repro/internal/jaccard"
	"repro/internal/partition"
	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/theory"
	"repro/internal/twitgen"
)

// benchSuite runs cells on ~16k documents with 1-minute windows: large
// enough to exercise bootstrap, installs, additions and repartitions,
// small enough for iterating benchmarks.
func benchSuite() *expr.Suite {
	return expr.NewSuite(expr.Defaults{
		Minutes:     4,
		Seed:        1,
		WindowSpan:  stream.Minutes(1),
		ReportEvery: stream.Minutes(1),
		StatsEvery:  500,
	}, func(tps int, seed int64) twitgen.Config {
		c := twitgen.Default()
		c.TPS = tps
		c.TaggedFraction = 0.05
		c.Seed = seed
		return c
	})
}

// benchDocs generates one window's worth of documents for micro-benchmarks.
func benchDocs(n int, seed int64) []stream.Document {
	cfg := twitgen.Default()
	cfg.Seed = seed
	g, err := twitgen.New(cfg, tagset.NewDictionary())
	if err != nil {
		panic(err)
	}
	return g.Generate(n)
}

func snapshotOf(docs []stream.Document) []stream.WeightedSet {
	w := stream.NewSlidingWindow(stream.Minutes(600))
	for _, d := range docs {
		w.Add(d)
	}
	return w.Snapshot()
}

// benchFigureCells runs the four default-parameter cells (one per
// algorithm) and reports the chosen metric per algorithm.
func benchFigureCells(b *testing.B, metric func(*expr.CellResult) float64, unit string) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		for _, alg := range []partition.Algorithm{partition.DS, partition.SCI, partition.SCC, partition.SCL} {
			c := s.Cell(expr.Params{Algorithm: alg})
			b.ReportMetric(metric(c), string(alg)+"-"+unit)
		}
	}
}

// BenchmarkFig3Communication regenerates Figure 3's default point: average
// notifications per notified document, per algorithm.
func BenchmarkFig3Communication(b *testing.B) {
	benchFigureCells(b, func(c *expr.CellResult) float64 { return c.Communication }, "comm")
}

// BenchmarkFig4LoadGini regenerates Figure 4's default point: the Gini
// coefficient of cumulative per-Calculator load.
func BenchmarkFig4LoadGini(b *testing.B) {
	benchFigureCells(b, func(c *expr.CellResult) float64 { return c.LoadGini }, "gini")
}

// BenchmarkFig5JaccardError regenerates Figure 5's default point: mean
// absolute Jaccard error against the exact centralized baseline.
func BenchmarkFig5JaccardError(b *testing.B) {
	benchFigureCells(b, func(c *expr.CellResult) float64 { return c.MeanAbsError }, "err")
}

// BenchmarkFig6Repartitions regenerates Figure 6's default point: the
// number of quality-triggered repartitions.
func BenchmarkFig6Repartitions(b *testing.B) {
	benchFigureCells(b, func(c *expr.CellResult) float64 { return float64(c.Repartitions) }, "repart")
}

// BenchmarkFig7Connectivity regenerates Figure 7: connected-component
// statistics of tumbling windows (here the 2-minute size; cmd/experiments
// prints all four sizes).
func BenchmarkFig7Connectivity(b *testing.B) {
	docs := benchDocs(16000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := stream.NewTumblingWindow(stream.Minutes(2))
		var comps, windows float64
		var maxLoad float64
		measure := func(batch []stream.Document) {
			if len(batch) == 0 {
				return
			}
			st := graph.WindowStats(batch)
			comps += float64(st.Components)
			maxLoad += st.MaxLoadShare
			windows++
		}
		for _, d := range docs {
			measure(w.Add(d))
		}
		measure(w.Flush())
		b.ReportMetric(comps/windows, "components")
		b.ReportMetric(100*maxLoad/windows, "maxload-pct")
	}
}

// BenchmarkFig8CommOverTime regenerates Figure 8's data: the communication
// time series with repartition marks (DS panel; the series length and mark
// count are reported).
func BenchmarkFig8CommOverTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		c := s.Cell(expr.Params{Algorithm: partition.DS})
		b.ReportMetric(float64(c.Dissem.CommSeries.Len()), "points")
		b.ReportMetric(float64(len(c.Dissem.CommSeries.Marks)), "marks")
		b.ReportMetric(c.Dissem.CommSeries.MeanY(), "comm-mean")
	}
}

// BenchmarkFig9LoadOverTime regenerates Figure 9's data: per-Calculator
// sorted load shares over time (SCL panel: the most-loaded node's mean
// share — low and flat for SCL).
func BenchmarkFig9LoadOverTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		c := s.Cell(expr.Params{Algorithm: partition.SCL})
		var maxShare float64
		for _, sm := range c.Dissem.LoadSeries {
			if len(sm.Shares) > 0 {
				maxShare += sm.Shares[0]
			}
		}
		if n := len(c.Dissem.LoadSeries); n > 0 {
			maxShare /= float64(n)
		}
		b.ReportMetric(maxShare, "top-share")
		b.ReportMetric(float64(len(c.Dissem.LoadSeries)), "samples")
	}
}

// BenchmarkTheoryNP regenerates the Section 5.1 worked example.
func BenchmarkTheoryNP(b *testing.B) {
	var np5, np10 float64
	for i := 0; i < b.N; i++ {
		sc := theory.DefaultScenario()
		np5 = sc.NP()
		sc.WindowMinutes = 10
		np10 = sc.NP()
	}
	b.ReportMetric(np5, "np-5min")
	b.ReportMetric(np10, "np-10min")
}

// BenchmarkAblationCostMode compares Algorithm 2's phase-1 cost modes by
// building with SCC (communication cost), SCL (load cost) and SCI (zero
// cost) on one window and reporting the resulting quality.
func BenchmarkAblationCostMode(b *testing.B) {
	snap := snapshotOf(benchDocs(8000, 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, alg := range []partition.Algorithm{partition.SCC, partition.SCL, partition.SCI} {
			res, err := partition.Build(snap, partition.Options{Algorithm: alg, K: 10, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			q := partition.Evaluate(res, snap)
			b.ReportMetric(q.AvgCom, string(alg)+"-avgcom")
			b.ReportMetric(q.Gini, string(alg)+"-gini")
		}
	}
}

// BenchmarkAblationSingleAddition varies the Single-Addition threshold sn
// (Section 7.1): smaller sn covers new tagsets sooner (higher coverage) at
// the cost of more Merger traffic.
func BenchmarkAblationSingleAddition(b *testing.B) {
	for _, sn := range []int{1, 3, 10} {
		sn := sn
		b.Run(benchName("sn", sn), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				docs := benchDocs(16000, 5)
				cfg := benchPipelineConfig()
				cfg.SN = sn
				res := runPipeline(b, cfg, docs)
				b.ReportMetric(float64(res.SingleAdditions), "additions")
				b.ReportMetric(float64(res.UncoveredDocs), "uncovered-docs")
			}
		})
	}
}

// BenchmarkAblationHybridSplit compares plain DS against the Section 8.3
// hybrid (split oversized components with SCL) on a mixed-vocabulary
// stream that develops a giant component.
func BenchmarkAblationHybridSplit(b *testing.B) {
	cfg := twitgen.Default()
	cfg.Seed = 4
	cfg.MixProb = 0.05 // giant-component regime
	g, err := twitgen.New(cfg, tagset.NewDictionary())
	if err != nil {
		b.Fatal(err)
	}
	snap := snapshotOf(g.Generate(8000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, alg := range []partition.Algorithm{partition.DS, partition.DSHybrid} {
			res, err := partition.Build(snap, partition.Options{Algorithm: alg, K: 10})
			if err != nil {
				b.Fatal(err)
			}
			q := partition.Evaluate(res, snap)
			b.ReportMetric(q.Gini, string(alg)+"-gini")
			b.ReportMetric(q.AvgCom, string(alg)+"-avgcom")
		}
	}
}

// BenchmarkAblationIndex compares the Disseminator's inverted tag index
// against a linear scan over partitions for routing (the design choice of
// Section 3.3, citing Helmer & Moerkotte).
func BenchmarkAblationIndex(b *testing.B) {
	snap := snapshotOf(benchDocs(8000, 6))
	res, err := partition.Build(snap, partition.Options{Algorithm: partition.SCL, K: 10, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	queries := benchDocs(2000, 7)

	b.Run("inverted-index", func(b *testing.B) {
		index := make(map[tagset.Tag][]int)
		for i, p := range res.Parts {
			for _, tg := range p.Tags {
				index[tg] = append(index[tg], i)
			}
		}
		b.ResetTimer()
		hits := 0
		for i := 0; i < b.N; i++ {
			d := queries[i%len(queries)]
			seen := map[int]struct{}{}
			for _, tg := range d.Tags {
				for _, p := range index[tg] {
					seen[p] = struct{}{}
				}
			}
			hits += len(seen)
		}
		_ = hits
	})
	b.Run("linear-scan", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i++ {
			d := queries[i%len(queries)]
			for p := range res.Parts {
				if d.Tags.Intersects(res.Parts[p].Tags) {
					hits++
				}
			}
		}
		_ = hits
	})
}

// --- micro-benchmarks on the core data structures ---

func BenchmarkPartitionBuild(b *testing.B) {
	snap := snapshotOf(benchDocs(8000, 8))
	for _, alg := range []partition.Algorithm{partition.DS, partition.SCI, partition.SCC, partition.SCL, partition.DSHybrid} {
		alg := alg
		b.Run(string(alg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := partition.Build(snap, partition.Options{Algorithm: alg, K: 10, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCounterObserve(b *testing.B) {
	docs := benchDocs(4096, 9)
	ct := jaccard.NewCounterTable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct.Observe(docs[i%len(docs)].Tags)
	}
}

func BenchmarkComponents(b *testing.B) {
	snap := snapshotOf(benchDocs(8000, 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.Components(snap)
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	cfg := twitgen.Default()
	g, err := twitgen.New(cfg, tagset.NewDictionary())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

// --- helpers ---

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func benchPipelineConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.WindowSpan = stream.Minutes(1)
	cfg.ReportEvery = stream.Minutes(1)
	cfg.StatsEvery = 500
	cfg.Algorithm = partition.DS
	return cfg
}

func runPipeline(b *testing.B, cfg core.Config, docs []stream.Document) *core.Result {
	b.Helper()
	pipe, err := core.NewPipeline(cfg, core.SliceSource(docs))
	if err != nil {
		b.Fatal(err)
	}
	return pipe.Run()
}
