package trend

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jaccard"
	"repro/internal/tagset"
	"repro/internal/topselect"
)

// StreamConfig tunes the streaming detector. Alpha, MinSupport and
// MaxTracked have the batch Detector's semantics; the remaining knobs size
// the concurrent structure.
type StreamConfig struct {
	// Alpha is the exponential-smoothing factor of the per-tagset
	// predictor (see Config.Alpha).
	Alpha float64
	// MinSupport drops observations with a smaller intersection counter.
	MinSupport int64
	// MaxTracked bounds the number of live predictors across all shards
	// (approximately: the bound is enforced per shard). Zero is unbounded.
	MaxTracked int
	// TopK bounds the incrementally maintained per-period top-trends heaps.
	// TopTrends(period, k) with k <= TopK is served from the heaps without
	// scanning the period's scored events. Zero uses the default 64.
	TopK int
	// Threshold is the minimum score at which an event is pushed to
	// subscribers (the SSE feed). Scoring and the top-trends heaps are not
	// affected; zero publishes every scored event.
	Threshold float64
	// Shards is the number of lock shards (rounded up to a power of two).
	// Zero uses the default 8.
	Shards int
	// KeepPeriods bounds the per-period trend state (scored events and
	// top-trends heaps) to the newest n periods. Predictors are not
	// affected: they are the smoothed expectation state and persist across
	// period pruning. Zero keeps every period — the batch default.
	KeepPeriods int
}

// DefaultStreamConfig returns a moderate live-service configuration.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{
		Alpha:      0.4,
		MinSupport: 5,
		MaxTracked: 1 << 18,
		TopK:       64,
		Threshold:  0.1,
		Shards:     8,
	}
}

// Validate reports the first configuration error, or nil.
func (c StreamConfig) Validate() error {
	switch {
	case c.Alpha <= 0 || c.Alpha > 1:
		return fmt.Errorf("trend: alpha = %g", c.Alpha)
	case c.MinSupport < 1:
		return fmt.Errorf("trend: minSupport = %d", c.MinSupport)
	case c.MaxTracked < 0:
		return fmt.Errorf("trend: maxTracked = %d", c.MaxTracked)
	case c.TopK < 0:
		return fmt.Errorf("trend: topK = %d", c.TopK)
	case c.Threshold < 0 || c.Threshold > 1:
		return fmt.Errorf("trend: threshold = %g", c.Threshold)
	case c.Shards < 0:
		return fmt.Errorf("trend: shards = %d", c.Shards)
	case c.KeepPeriods < 0:
		return fmt.Errorf("trend: keepPeriods = %d", c.KeepPeriods)
	}
	return nil
}

// PredictorState is the live state of one tagset's predictor, as exposed by
// Stream.Predictor (the /trends/{tags...} point lookup).
type PredictorState struct {
	// Expectation is the smoothed correlation after the latest observation.
	Expectation float64
	// Base is the expectation the latest observation was scored against
	// (meaningless while Seen == 1: the first sighting has no base).
	Base float64
	// LastPeriod is the newest period observed; Seen counts observed
	// periods.
	LastPeriod int64
	Seen       int
}

// StreamStats is a point-in-time view of the streaming detector's internal
// structure, exposed through core.Snapshot and /stats-style surfaces.
type StreamStats struct {
	Shards    int // lock shard count
	TopKBound int // per-period maintained heap bound

	Tracked         int   // live predictors across all shards
	RetainedPeriods int   // periods with live trend state
	HeapEntries     int   // entries currently held across the period heaps
	Rebuilds        int64 // heap rebuilds (demotions while entries excluded)
	PrunedPeriods   int64 // periods evicted by KeepPeriods so far

	Scored     int64 // deviation events scored (including corrections)
	Filtered   int64 // observations below MinSupport
	OutOfOrder int64 // observations older than their predictor's period
	Late       int64 // observations for periods already pruned by retention
	Published  int64 // events delivered to at least one subscriber
	Dropped    int64 // per-subscriber deliveries lost to full buffers

	Subscribers int // live event subscribers
}

// Stream is the concurrent streaming detector: the same EWMA scoring as the
// batch Detector, restructured for a live pipeline. Observations arrive one
// coefficient at a time (the Trend operator feeds it from the Tracker's
// deduplicated report stream), predictors live in lock shards keyed by the
// tagset-key hash, and every period's scored events are incrementally
// maintained in a bounded top-trends heap per shard — the Tracker's
// indexed-heap pattern — so top-trend queries never scan the scored-event
// tables. All methods are safe for concurrent use.
type Stream struct {
	cfg    StreamConfig
	shards []*streamShard
	mask   uint64

	reg struct {
		mu     sync.Mutex
		known  map[int64]struct{}
		floor  int64
		pruned int64
	}
	latest int64 // atomic: newest period observed

	scored     int64 // atomic
	filtered   int64 // atomic
	outOfOrder int64 // atomic
	late       int64 // atomic
	published  int64 // atomic
	dropped    int64 // atomic

	// Subscriptions are served by a single broker goroutine: publish hands
	// an event to the broker channel with one non-blocking send, and the
	// broker fans it out to the per-subscriber buffered channels. However
	// many (and however slow) the subscribers, the dataflow's cost per
	// scored event is one channel operation. The broker starts with the
	// first subscriber and stops after the last cancels.
	subMu   sync.Mutex
	subs    map[int]chan Event
	nextSub int
	broker  atomic.Value // chan brokerFrame; nil-valued when no broker runs

	// archive receives every scored deviation and period seals
	// (SetArchive); set before the run starts, read-only afterwards.
	archive EventArchive
}

// brokerBuffer sizes the broker's intake channel; events beyond it are
// dropped (counted) rather than ever blocking the scoring path.
const brokerBuffer = 1024

// brokerFrame is one unit of broker work: an event to fan out, a sync
// barrier to acknowledge, or a stop signal.
type brokerFrame struct {
	ev   Event
	sync chan struct{}
	stop bool
}

// NewStream returns a streaming detector, validating the configuration.
func NewStream(cfg StreamConfig) (*Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.TopK == 0 {
		cfg.TopK = 64
	}
	if cfg.Shards == 0 {
		cfg.Shards = 8
	}
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	s := &Stream{
		cfg:    cfg,
		shards: make([]*streamShard, n),
		mask:   uint64(n - 1),
		subs:   make(map[int]chan Event),
	}
	maxPerShard := 0
	if cfg.MaxTracked > 0 {
		maxPerShard = (cfg.MaxTracked + n - 1) / n
		if maxPerShard < 1 {
			maxPerShard = 1
		}
	}
	for i := range s.shards {
		s.shards[i] = newStreamShard(cfg.TopK, maxPerShard)
	}
	s.reg.known = make(map[int64]struct{})
	s.reg.floor = math.MinInt64
	// latest is read atomically for the rest of the Stream's life; store it
	// atomically here too so every access of the field is uniform.
	atomic.StoreInt64(&s.latest, math.MinInt64)
	return s, nil
}

// shardOf routes a tagset key to its shard (FNV-1a over the key bytes, the
// Tracker's routing hash).
func (s *Stream) shardOf(k tagset.Key) *streamShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= 1099511628211
	}
	return s.shards[h&s.mask]
}

// Observe feeds one deduplicated coefficient report. The Tracker emits every
// accepted report exactly once per (period, tagset) value — fresh reports
// and CN upgrades — so Observe must handle both: an upgrade for the
// predictor's current period re-scores the period against the same base and
// corrects the smoothed expectation, exactly as if only the final value had
// been observed. Events at or above Threshold are pushed to subscribers.
func (s *Stream) Observe(period int64, c jaccard.Coefficient) {
	if c.CN < s.cfg.MinSupport {
		atomic.AddInt64(&s.filtered, 1)
		return
	}
	retained, prune := s.ensurePeriod(period)
	for _, p := range prune {
		for _, sh := range s.shards {
			sh.mu.Lock()
			sh.evictPeriod(p)
			sh.mu.Unlock()
		}
		if s.archive != nil {
			s.archive.SealPeriod(p)
		}
	}
	if !retained {
		// At or below the pruning floor: scoring would resurrect evicted
		// period state that retention could never prune again.
		atomic.AddInt64(&s.late, 1)
		return
	}

	key := c.Tags.Key()
	sh := s.shardOf(key)
	sh.mu.Lock()
	ev, scored, outOfOrder, shardLate := sh.observe(s.cfg.Alpha, period, key, c)
	sh.mu.Unlock()

	if shardLate {
		// Pruned between the registry check and the shard lock.
		atomic.AddInt64(&s.late, 1)
		return
	}
	if outOfOrder {
		atomic.AddInt64(&s.outOfOrder, 1)
		return
	}
	if !scored {
		return
	}
	atomic.AddInt64(&s.scored, 1)
	if s.archive != nil {
		s.archive.AppendEvent(ev)
	}
	for {
		cur := atomic.LoadInt64(&s.latest)
		if period <= cur || atomic.CompareAndSwapInt64(&s.latest, cur, period) {
			break
		}
	}
	if ev.Score >= s.cfg.Threshold {
		s.publish(ev)
	}
}

// ensurePeriod registers period in the retention registry, reporting
// whether it is retained plus the period ids this call decided to prune
// (each handed out exactly once).
func (s *Stream) ensurePeriod(period int64) (retained bool, prune []int64) {
	r := &s.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	if period <= r.floor {
		return false, nil
	}
	if _, known := r.known[period]; known {
		return true, nil
	}
	r.known[period] = struct{}{}
	if s.cfg.KeepPeriods > 0 {
		for len(r.known) > s.cfg.KeepPeriods {
			oldest := period
			for p := range r.known {
				if p < oldest {
					oldest = p
				}
			}
			delete(r.known, oldest)
			if oldest > r.floor {
				r.floor = oldest
			}
			r.pruned++
			prune = append(prune, oldest)
		}
	}
	_, retained = r.known[period]
	return retained, prune
}

// publish hands ev to the broker goroutine with a single non-blocking
// send: N slow subscribers cost the scoring path one channel operation.
// With no live subscribers (no broker) the event is discarded outright.
func (s *Stream) publish(ev Event) {
	ch, _ := s.broker.Load().(chan brokerFrame)
	if ch == nil {
		return
	}
	select {
	case ch <- brokerFrame{ev: ev}:
	default:
		atomic.AddInt64(&s.dropped, 1)
	}
}

// runBroker is the single fan-out goroutine: it drains the intake channel
// in order, delivering each event to every subscriber (dropping per
// subscriber on a full buffer), acknowledging sync barriers, and exiting
// on the stop frame the last cancellation enqueues.
func (s *Stream) runBroker(ch chan brokerFrame) {
	for f := range ch {
		switch {
		case f.stop:
			return
		case f.sync != nil:
			close(f.sync)
		default:
			s.fanout(f.ev)
		}
	}
}

func (s *Stream) fanout(ev Event) {
	s.subMu.Lock()
	delivered := false
	for _, ch := range s.subs {
		select {
		case ch <- ev:
			delivered = true
		default:
			atomic.AddInt64(&s.dropped, 1)
		}
	}
	s.subMu.Unlock()
	if delivered {
		atomic.AddInt64(&s.published, 1)
	}
}

// Sync blocks until every event handed to the broker before the call has
// been fanned out (or dropped). The end-of-run SSE drain uses it: after the
// pipeline drains, Sync guarantees the subscriber channel holds everything
// that will ever arrive. A bounded wait protects against a broker stopped
// by a concurrent last-subscriber cancellation.
func (s *Stream) Sync() {
	ch, _ := s.broker.Load().(chan brokerFrame)
	if ch == nil {
		return
	}
	done := make(chan struct{})
	select {
	case ch <- brokerFrame{sync: done}:
	case <-time.After(2 * time.Second):
		return
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
	}
}

// Subscribe registers an event subscriber with the given channel buffer
// (<= 0 uses 64) and returns the channel plus a cancel function. Cancel
// closes the channel; events fanned out while the buffer is full are
// dropped for this subscriber only. Delivery is asynchronous through the
// broker goroutine: an event is visible on the channel shortly after (not
// during) the Observe call that scored it, in scoring order.
func (s *Stream) Subscribe(buffer int) (<-chan Event, func()) {
	if buffer <= 0 {
		buffer = 64
	}
	ch := make(chan Event, buffer)
	s.subMu.Lock()
	id := s.nextSub
	s.nextSub++
	s.subs[id] = ch
	if len(s.subs) == 1 {
		b := make(chan brokerFrame, brokerBuffer)
		s.broker.Store(b)
		go s.runBroker(b)
	}
	s.subMu.Unlock()
	var once sync.Once
	return ch, func() {
		once.Do(func() {
			s.subMu.Lock()
			delete(s.subs, id)
			if len(s.subs) == 0 {
				if b, _ := s.broker.Load().(chan brokerFrame); b != nil {
					s.broker.Store((chan brokerFrame)(nil))
					// The stop frame queues behind any undelivered events;
					// sent from a goroutine because the intake may be full
					// and fanout needs subMu, which this callback holds.
					go func() { b <- brokerFrame{stop: true} }()
				}
			}
			s.subMu.Unlock()
			close(ch)
		})
	}
}

// Config returns the validated configuration the stream runs with
// (defaults filled in).
func (s *Stream) Config() StreamConfig { return s.cfg }

// LatestPeriod returns the newest period a deviation was scored in
// (math.MinInt64 before the first event).
func (s *Stream) LatestPeriod() int64 { return atomic.LoadInt64(&s.latest) }

// PruneFloor returns the retention pruning floor: every period at or
// below it has been evicted and late observations for those periods are
// dropped, so their archived trend events can never grow again
// (math.MinInt64 before the first prune). The archive compactor uses it
// as the seal watermark.
func (s *Stream) PruneFloor() int64 {
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	return s.reg.floor
}

// Periods returns the period ids with live trend state, ascending.
func (s *Stream) Periods() []int64 {
	s.reg.mu.Lock()
	out := make([]int64, 0, len(s.reg.known))
	for p := range s.reg.known {
		out = append(out, p)
	}
	s.reg.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Tracked reports the number of live predictors across all shards.
func (s *Stream) Tracked() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.preds)
		sh.mu.Unlock()
	}
	return n
}

// Predictor returns the live predictor state of one tagset key.
func (s *Stream) Predictor(k tagset.Key) (PredictorState, bool) {
	sh := s.shardOf(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p, ok := sh.preds[k]
	if !ok {
		return PredictorState{}, false
	}
	return PredictorState{Expectation: p.exp, Base: p.base, LastPeriod: p.period, Seen: p.seen}, true
}

// TopTrends returns the k highest-scoring events of one period, ordered by
// descending score (ties: ascending tagset key) — the batch Detector's
// event order. For k within the maintained bound the call merges the
// shards' period heaps and never scans the scored-event tables; k <= 0 or
// k > TopK falls back to a full gather.
func (s *Stream) TopTrends(period int64, k int) []Event {
	var cand []trendEntry
	heapPath := k > 0 && k <= s.cfg.TopK
	for _, sh := range s.shards {
		sh.mu.Lock()
		if heapPath {
			if h := sh.tops[period]; h != nil {
				cand = append(cand, h.entries...)
			}
		} else {
			for key, ev := range sh.events[period] {
				cand = append(cand, trendEntry{key: key, ev: ev})
			}
		}
		sh.mu.Unlock()
	}
	if k > 0 && len(cand) > k {
		cand = topselect.Select(cand, k, trendBefore)
	}
	sort.Slice(cand, func(i, j int) bool { return trendBefore(cand[i], cand[j]) })
	out := make([]Event, len(cand))
	for i, e := range cand {
		out[i] = e.ev
	}
	return out
}

// StatsSnapshot gathers the structural counters under the shard locks.
func (s *Stream) StatsSnapshot() StreamStats {
	st := StreamStats{
		Shards:     len(s.shards),
		TopKBound:  s.cfg.TopK,
		Scored:     atomic.LoadInt64(&s.scored),
		Filtered:   atomic.LoadInt64(&s.filtered),
		OutOfOrder: atomic.LoadInt64(&s.outOfOrder),
		Late:       atomic.LoadInt64(&s.late),
		Published:  atomic.LoadInt64(&s.published),
		Dropped:    atomic.LoadInt64(&s.dropped),
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Tracked += len(sh.preds)
		for _, h := range sh.tops {
			st.HeapEntries += h.Len()
		}
		st.Rebuilds += sh.rebuilds
		sh.mu.Unlock()
	}
	s.reg.mu.Lock()
	st.RetainedPeriods = len(s.reg.known)
	st.PrunedPeriods = s.reg.pruned
	s.reg.mu.Unlock()
	s.subMu.Lock()
	st.Subscribers = len(s.subs)
	s.subMu.Unlock()
	return st
}

// streamPredictor is one tagset's live EWMA state. base is the expectation
// the current period was scored against — kept so a duplicate upgrade for
// the same period can re-score and re-smooth as if only the final value had
// been observed.
type streamPredictor struct {
	base   float64
	exp    float64
	period int64
	seen   int
}

// trendEntry is one scored event in a period heap, with its tagset key
// cached for the membership index and the tie-break.
type trendEntry struct {
	key tagset.Key
	ev  Event
}

// trendBefore ranks events by descending score, then ascending tagset key —
// the batch Detector's sort order.
func trendBefore(a, b trendEntry) bool {
	if a.ev.Score != b.ev.Score {
		return a.ev.Score > b.ev.Score
	}
	return a.key < b.key
}

// trendIndex is a bounded indexed min-heap under trendBefore (the Tracker's
// topIndex pattern): the root ranks last among the kept events and pos maps
// every kept tagset key to its slot, so score corrections are O(log bound).
type trendIndex struct {
	entries []trendEntry
	pos     map[tagset.Key]int
}

func (h *trendIndex) Len() int           { return len(h.entries) }
func (h *trendIndex) Less(i, j int) bool { return trendBefore(h.entries[j], h.entries[i]) }
func (h *trendIndex) Swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
	h.pos[h.entries[i].key] = i
	h.pos[h.entries[j].key] = j
}
func (h *trendIndex) Push(x interface{}) {
	e := x.(trendEntry)
	h.pos[e.key] = len(h.entries)
	h.entries = append(h.entries, e)
}
func (h *trendIndex) Pop() interface{} {
	old := h.entries
	e := old[len(old)-1]
	h.entries = old[:len(old)-1]
	delete(h.pos, e.key)
	return e
}

// streamShard owns the predictors and per-period trend state of the tagset
// keys that hash to it.
//
// Invariant (per period p): tops[p] holds exactly the best
// min(bound, len(events[p])) scored events of this shard under trendBefore.
// Fresh events and upward corrections maintain it in O(log bound); a
// downward correction of an in-heap event while others are excluded
// rebuilds the period heap from the events table.
type streamShard struct {
	mu     sync.Mutex
	preds  map[tagset.Key]*streamPredictor
	events map[int64]map[tagset.Key]Event
	tops   map[int64]*trendIndex

	bound    int   // heap bound per period
	maxPreds int   // predictor cap; 0 unbounded
	floor    int64 // shard-local copy of the pruning floor
	rebuilds int64
}

func newStreamShard(bound, maxPreds int) *streamShard {
	return &streamShard{
		preds:    make(map[tagset.Key]*streamPredictor),
		events:   make(map[int64]map[tagset.Key]Event),
		tops:     make(map[int64]*trendIndex),
		bound:    bound,
		maxPreds: maxPreds,
		floor:    math.MinInt64,
	}
}

// observe applies one report to the shard. The caller holds the lock. The
// floor re-check closes the registry-to-shard-lock race: a period the
// registry called retained may have been pruned by a concurrent Observe
// before this shard lock was taken, and recording into it would resurrect
// state that retention can never free again.
func (sh *streamShard) observe(alpha float64, period int64, key tagset.Key, c jaccard.Coefficient) (ev Event, scored, outOfOrder, late bool) {
	if period <= sh.floor {
		return Event{}, false, false, true
	}
	p := sh.preds[key]
	switch {
	case p == nil:
		// First sighting: establish the predictor, no event.
		sh.preds[key] = &streamPredictor{exp: c.J, period: period, seen: 1}
		sh.evictPredictors()
		return Event{}, false, false, false
	case period > p.period:
		p.base = p.exp
		p.period = period
		p.seen++
	case period == p.period:
		if p.seen == 1 {
			// Upgrade within the establishment period: replace the first
			// observation, still no event.
			p.exp = c.J
			return Event{}, false, false, false
		}
		// Correction: re-score the period against the same base.
	default:
		// Older than the predictor's period: the EWMA has already moved
		// past it; dropped and counted.
		return Event{}, false, true, false
	}
	score := c.J - p.base
	rising := score > 0
	if score < 0 {
		score = -score
	}
	p.exp = alpha*c.J + (1-alpha)*p.base
	ev = Event{
		Tags:      c.Tags,
		Period:    period,
		Predicted: p.base,
		Observed:  c.J,
		Score:     score,
		Rising:    rising,
		CN:        c.CN,
	}
	sh.record(period, key, ev)
	return ev, true, false, false
}

// record stores ev in the period's event table and maintains the period
// heap: fresh events are offered; corrected events are fixed in place, with
// a rebuild when a demotion may have wrongly kept an excluded event out.
func (sh *streamShard) record(period int64, key tagset.Key, ev Event) {
	m := sh.events[period]
	if m == nil {
		m = make(map[tagset.Key]Event)
		sh.events[period] = m
	}
	prev, existed := m[key]
	m[key] = ev
	h := sh.tops[period]
	if h == nil {
		h = &trendIndex{pos: make(map[tagset.Key]int)}
		sh.tops[period] = h
	}
	e := trendEntry{key: key, ev: ev}
	if existed {
		if i, ok := h.pos[key]; ok {
			h.entries[i].ev = ev
			heap.Fix(h, i)
			if len(m) > h.Len() && trendBefore(trendEntry{key: key, ev: prev}, e) {
				sh.rebuildPeriod(period)
			}
			return
		}
	}
	sh.offer(h, e)
}

// offer inserts a fresh entry if it belongs to the period's best bound.
func (sh *streamShard) offer(h *trendIndex, e trendEntry) {
	if h.Len() < sh.bound {
		heap.Push(h, e)
		return
	}
	if trendBefore(e, h.entries[0]) {
		delete(h.pos, h.entries[0].key)
		h.entries[0] = e
		h.pos[e.key] = 0
		heap.Fix(h, 0)
	}
}

// rebuildPeriod reconstructs one period's heap from its event table — a
// bounded-heap selection, run only on downward corrections while events are
// excluded, never on reads.
func (sh *streamShard) rebuildPeriod(period int64) {
	h := &trendIndex{pos: make(map[tagset.Key]int, sh.bound)}
	for k, ev := range sh.events[period] {
		sh.offer(h, trendEntry{key: k, ev: ev})
	}
	sh.tops[period] = h
	sh.rebuilds++
}

// evictPeriod drops one period's trend state and advances the shard floor
// so late observations for it cannot resurrect the maps. Predictors
// persist: they are the smoothed expectation, not per-period state. The
// caller holds the lock.
func (sh *streamShard) evictPeriod(p int64) {
	if p > sh.floor {
		sh.floor = p
	}
	delete(sh.events, p)
	delete(sh.tops, p)
}

// evictPredictors enforces the predictor cap, dropping the stalest eighth
// in one pass so the scan amortizes instead of firing per insert.
func (sh *streamShard) evictPredictors() {
	if sh.maxPreds <= 0 || len(sh.preds) <= sh.maxPreds {
		return
	}
	type entry struct {
		k    tagset.Key
		last int64
	}
	all := make([]entry, 0, len(sh.preds))
	for k, p := range sh.preds {
		all = append(all, entry{k, p.period})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].last < all[j].last })
	drop := len(sh.preds) - sh.maxPreds + sh.maxPreds/8
	if drop > len(all) {
		drop = len(all)
	}
	for _, e := range all[:drop] {
		delete(sh.preds, e.k)
	}
}
