package trend

import (
	"testing"
	"time"
)

// TestBrokerSlowSubscribers verifies the fan-out broker's contract: any
// number of stalled subscribers costs the scoring path one channel send,
// the stalled subscribers' losses are counted as drops, and a draining
// subscriber receives events in scoring order.
func TestBrokerSlowSubscribers(t *testing.T) {
	s := mustStream(t, StreamConfig{Alpha: 0.5, MinSupport: 1, Threshold: 0})

	// Three subscribers that never drain, with minimal buffers, plus one
	// that drains everything.
	var cancels []func()
	for i := 0; i < 3; i++ {
		_, cancel := s.Subscribe(1)
		cancels = append(cancels, cancel)
	}
	live, cancelLive := s.Subscribe(512)
	cancels = append(cancels, cancelLive)
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	const events = 200
	s.Observe(1, coeff(0.5, 5, 1, 2)) // establish: no event
	done := make(chan struct{})
	go func() {
		defer close(done)
		for p := int64(2); p <= events+1; p++ {
			s.Observe(p, coeff(0.5+0.4*float64(p%2), 5, 1, 2))
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("scoring path blocked behind stalled subscribers")
	}
	s.Sync()

	var periods []int64
	for {
		select {
		case e := <-live:
			periods = append(periods, e.Period)
		default:
			goto drained
		}
	}
drained:
	if len(periods) == 0 {
		t.Fatal("draining subscriber received nothing")
	}
	for i := 1; i < len(periods); i++ {
		if periods[i] <= periods[i-1] {
			t.Fatalf("events out of order: %v", periods[:i+1])
		}
	}
	st := s.StatsSnapshot()
	if st.Dropped == 0 {
		t.Error("stalled subscribers produced no counted drops")
	}
	if st.Published == 0 {
		t.Error("no events counted as published")
	}
}

// TestBrokerRestart verifies the broker stops with the last subscriber and
// a fresh subscription starts a new one that delivers again.
func TestBrokerRestart(t *testing.T) {
	s := mustStream(t, StreamConfig{Alpha: 0.5, MinSupport: 1, Threshold: 0})
	ch, cancel := s.Subscribe(8)
	s.Observe(1, coeff(0.2, 5, 1, 2))
	s.Observe(2, coeff(0.9, 5, 1, 2))
	s.Sync()
	select {
	case <-ch:
	default:
		t.Fatal("first subscription received nothing")
	}
	cancel()

	// No subscribers: events are discarded without touching a broker.
	s.Observe(3, coeff(0.1, 5, 1, 2))

	ch2, cancel2 := s.Subscribe(8)
	defer cancel2()
	s.Observe(4, coeff(0.8, 5, 1, 2))
	s.Sync()
	select {
	case e := <-ch2:
		if e.Period != 4 {
			t.Fatalf("restarted broker delivered period %d, want 4", e.Period)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("restarted broker delivered nothing")
	}
}
