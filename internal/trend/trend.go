// Package trend implements the application layer the paper positions its
// system under (Section 2): enBlogue-style emergent-topic detection
// [Alvanaki et al., EDBT 2012], where the magnitude of a trend is the
// prediction error of a tagset's correlation. The Tracker's per-period
// Jaccard reports are the input; a Detector maintains a smoothed
// expectation per tagset and scores each new report by its deviation.
package trend

import (
	"fmt"
	"sort"

	"repro/internal/jaccard"
	"repro/internal/tagset"
)

// Config tunes the detector.
type Config struct {
	// Alpha is the exponential-smoothing factor of the per-tagset
	// predictor: expectation ← alpha*observed + (1-alpha)*expectation.
	Alpha float64
	// MinSupport drops reports with a smaller intersection counter, the
	// guard against spam and typos the paper applies to Single Additions.
	MinSupport int64
	// MaxTracked bounds the number of tagsets with live predictors; the
	// least-recently-reported are evicted beyond it. Zero means unbounded.
	MaxTracked int
}

// DefaultConfig returns a moderate smoothing configuration.
func DefaultConfig() Config {
	return Config{Alpha: 0.4, MinSupport: 5, MaxTracked: 1 << 18}
}

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.Alpha <= 0 || c.Alpha > 1:
		return fmt.Errorf("trend: alpha = %g", c.Alpha)
	case c.MinSupport < 1:
		return fmt.Errorf("trend: minSupport = %d", c.MinSupport)
	case c.MaxTracked < 0:
		return fmt.Errorf("trend: maxTracked = %d", c.MaxTracked)
	}
	return nil
}

// Event is one scored deviation: a tagset whose observed correlation moved
// away from its prediction.
type Event struct {
	Tags      tagset.Set
	Period    int64
	Predicted float64
	Observed  float64
	Score     float64 // |observed - predicted|, the prediction error
	Rising    bool    // observed > predicted
	CN        int64
}

// Detector consumes per-period coefficient reports and emits scored events.
type Detector struct {
	cfg   Config
	state map[tagset.Key]*predictor
}

type predictor struct {
	expectation float64
	seen        int
	lastPeriod  int64
}

// NewDetector returns a detector, validating the configuration.
func NewDetector(cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg, state: make(map[tagset.Key]*predictor)}, nil
}

// Tracked reports the number of live predictors.
func (d *Detector) Tracked() int { return len(d.state) }

// Feed scores one period's coefficient report and updates the predictors.
// Events are returned sorted by descending score. Tagsets reported for the
// first time establish a predictor without emitting an event (there is no
// expectation to deviate from yet).
func (d *Detector) Feed(period int64, report []jaccard.Coefficient) []Event {
	var events []Event
	for _, c := range report {
		if c.CN < d.cfg.MinSupport {
			continue
		}
		k := c.Tags.Key()
		p := d.state[k]
		if p == nil {
			d.state[k] = &predictor{expectation: c.J, seen: 1, lastPeriod: period}
			continue
		}
		score := c.J - p.expectation
		rising := score > 0
		if score < 0 {
			score = -score
		}
		events = append(events, Event{
			Tags:      c.Tags,
			Period:    period,
			Predicted: p.expectation,
			Observed:  c.J,
			Score:     score,
			Rising:    rising,
			CN:        c.CN,
		})
		p.expectation = d.cfg.Alpha*c.J + (1-d.cfg.Alpha)*p.expectation
		p.seen++
		p.lastPeriod = period
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].Score != events[j].Score {
			return events[i].Score > events[j].Score
		}
		return events[i].Tags.Key() < events[j].Tags.Key()
	})
	d.evict(period)
	return events
}

// evict drops the stalest predictors beyond MaxTracked.
func (d *Detector) evict(now int64) {
	if d.cfg.MaxTracked <= 0 || len(d.state) <= d.cfg.MaxTracked {
		return
	}
	type entry struct {
		k    tagset.Key
		last int64
	}
	all := make([]entry, 0, len(d.state))
	for k, p := range d.state {
		all = append(all, entry{k, p.lastPeriod})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].last < all[j].last })
	for _, e := range all[:len(d.state)-d.cfg.MaxTracked] {
		delete(d.state, e.k)
	}
}

// TopK returns the k highest-scoring events of a slice (helper for
// presentation layers).
func TopK(events []Event, k int) []Event {
	if k >= len(events) {
		return events
	}
	return events[:k]
}
