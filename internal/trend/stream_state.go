package trend

import (
	"sort"
	"sync/atomic"

	"repro/internal/tagset"
)

// EventArchive receives the streaming detector's durable-log stream: every
// scored deviation as it happens, plus a seal when retention prunes a
// period. Implemented by archive.Writer. Appends run on the Observe path,
// so implementations must be cheap and thread-safe.
type EventArchive interface {
	AppendEvent(ev Event)
	SealPeriod(period int64)
}

// SetArchive attaches the durable-log sink. Call before the run starts.
func (s *Stream) SetArchive(a EventArchive) { s.archive = a }

// TrendPredictor is one tagset's predictor in a StreamState export.
type TrendPredictor struct {
	Tags        tagset.Set
	Expectation float64
	Base        float64
	Period      int64
	Seen        int
}

// PeriodTrendEvents is one period's scored events in a StreamState export,
// sorted by tagset key for deterministic encoding.
type PeriodTrendEvents struct {
	Period int64
	Events []Event
}

// StreamState is the streaming detector's restartable state, produced by
// ExportState and consumed by ImportState on a fresh Stream. Like
// operators.TrackerState it carries only sealed information: an export cut
// at beforePeriod holds no trace of any period at or beyond the cut —
// predictors that already advanced into the cut period are rolled back one
// step (their base is exactly the pre-cut expectation), so replaying the
// stream from the cut's first document re-derives the uninterrupted state.
type StreamState struct {
	Predictors []TrendPredictor    // sorted by tagset key
	Periods    []PeriodTrendEvents // ascending period order

	Floor  int64
	Pruned int64
	Latest int64 // math.MinInt64 before the first scored event

	Scored     int64
	Filtered   int64
	OutOfOrder int64
	Late       int64
	Published  int64
	Dropped    int64
}

// ExportState copies the detector's restartable state restricted to periods
// strictly before beforePeriod (pass math.MaxInt64 for everything). A
// predictor whose newest observed period is the cut period is exported as
// its pre-cut self: expectation back to the base it scored the cut against,
// period one below the cut, seen decremented — the next replayed
// observation re-advances it identically. A predictor established in the
// cut period is dropped (the replay re-establishes it).
func (s *Stream) ExportState(beforePeriod int64) StreamState {
	st := StreamState{
		Scored:     atomic.LoadInt64(&s.scored),
		Filtered:   atomic.LoadInt64(&s.filtered),
		OutOfOrder: atomic.LoadInt64(&s.outOfOrder),
		Late:       atomic.LoadInt64(&s.late),
		Published:  atomic.LoadInt64(&s.published),
		Dropped:    atomic.LoadInt64(&s.dropped),
	}
	s.reg.mu.Lock()
	periods := make([]int64, 0, len(s.reg.known))
	for p := range s.reg.known {
		if p < beforePeriod {
			periods = append(periods, p)
		}
	}
	st.Floor = s.reg.floor
	st.Pruned = s.reg.pruned
	s.reg.mu.Unlock()
	sort.Slice(periods, func(i, j int) bool { return periods[i] < periods[j] })

	st.Latest = atomic.LoadInt64(&s.latest)
	if st.Latest >= beforePeriod {
		// The newest scored period is being cut; the replay will re-raise
		// the sentinel as it re-scores the cut period.
		st.Latest = beforePeriod - 1
	}

	for _, sh := range s.shards {
		sh.mu.Lock()
		for key, p := range sh.preds {
			switch {
			case p.period < beforePeriod:
				st.Predictors = append(st.Predictors, TrendPredictor{
					Tags: key.Set(), Expectation: p.exp, Base: p.base,
					Period: p.period, Seen: p.seen,
				})
			case p.seen <= 1:
				// Established in the cut period: nothing to keep.
			default:
				st.Predictors = append(st.Predictors, TrendPredictor{
					Tags: key.Set(), Expectation: p.base, Base: p.base,
					Period: beforePeriod - 1, Seen: p.seen - 1,
				})
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(st.Predictors, func(i, j int) bool {
		return st.Predictors[i].Tags.Key() < st.Predictors[j].Tags.Key()
	})

	for _, p := range periods {
		pe := PeriodTrendEvents{Period: p}
		for _, sh := range s.shards {
			sh.mu.Lock()
			for _, ev := range sh.events[p] {
				pe.Events = append(pe.Events, ev)
			}
			sh.mu.Unlock()
		}
		sort.Slice(pe.Events, func(i, j int) bool {
			return pe.Events[i].Tags.Key() < pe.Events[j].Tags.Key()
		})
		st.Periods = append(st.Periods, pe)
	}
	return st
}

// ImportState loads an exported state into a freshly constructed Stream.
// It must run before the pipeline starts; the per-period top-trends heaps
// are rebuilt as the events are re-recorded.
func (s *Stream) ImportState(st StreamState) {
	s.reg.mu.Lock()
	s.reg.floor = st.Floor
	s.reg.pruned = st.Pruned
	for _, pe := range st.Periods {
		s.reg.known[pe.Period] = struct{}{}
	}
	s.reg.mu.Unlock()
	atomic.StoreInt64(&s.latest, st.Latest)
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.floor = st.Floor
		sh.mu.Unlock()
	}
	for _, p := range st.Predictors {
		key := p.Tags.Key()
		sh := s.shardOf(key)
		sh.mu.Lock()
		sh.preds[key] = &streamPredictor{
			base: p.Base, exp: p.Expectation, period: p.Period, seen: p.Seen,
		}
		sh.mu.Unlock()
	}
	for _, pe := range st.Periods {
		for _, ev := range pe.Events {
			key := ev.Tags.Key()
			sh := s.shardOf(key)
			sh.mu.Lock()
			sh.record(pe.Period, key, ev)
			sh.mu.Unlock()
		}
	}
	atomic.StoreInt64(&s.scored, st.Scored)
	atomic.StoreInt64(&s.filtered, st.Filtered)
	atomic.StoreInt64(&s.outOfOrder, st.OutOfOrder)
	atomic.StoreInt64(&s.late, st.Late)
	atomic.StoreInt64(&s.published, st.Published)
	atomic.StoreInt64(&s.dropped, st.Dropped)
}
