package trend

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/jaccard"
	"repro/internal/tagset"
)

func mustStream(t *testing.T, cfg StreamConfig) *Stream {
	t.Helper()
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStreamValidate(t *testing.T) {
	bad := []StreamConfig{
		{Alpha: 0, MinSupport: 1},
		{Alpha: 1.5, MinSupport: 1},
		{Alpha: 0.5, MinSupport: 0},
		{Alpha: 0.5, MinSupport: 1, MaxTracked: -1},
		{Alpha: 0.5, MinSupport: 1, TopK: -1},
		{Alpha: 0.5, MinSupport: 1, Threshold: -0.1},
		{Alpha: 0.5, MinSupport: 1, Threshold: 1.5},
		{Alpha: 0.5, MinSupport: 1, Shards: -1},
		{Alpha: 0.5, MinSupport: 1, KeepPeriods: -1},
	}
	for i, cfg := range bad {
		if _, err := NewStream(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	s := mustStream(t, DefaultStreamConfig())
	if got := s.Config().TopK; got != 64 {
		t.Errorf("default TopK = %d", got)
	}
}

func TestStreamFirstSightingEstablishesPredictor(t *testing.T) {
	s := mustStream(t, StreamConfig{Alpha: 0.5, MinSupport: 1})
	s.Observe(1, coeff(0.5, 10, 1, 2))
	if got := s.StatsSnapshot(); got.Scored != 0 || got.Tracked != 1 {
		t.Errorf("stats after first sighting = %+v", got)
	}
	p, ok := s.Predictor(tagset.New(1, 2).Key())
	if !ok || p.Expectation != 0.5 || p.Seen != 1 || p.LastPeriod != 1 {
		t.Errorf("predictor = %+v ok=%v", p, ok)
	}
}

func TestStreamUpgradeWithinEstablishmentPeriod(t *testing.T) {
	s := mustStream(t, StreamConfig{Alpha: 0.5, MinSupport: 1})
	s.Observe(1, coeff(0.2, 3, 1, 2))
	s.Observe(1, coeff(0.8, 9, 1, 2)) // CN upgrade replaces the first value
	p, _ := s.Predictor(tagset.New(1, 2).Key())
	if p.Expectation != 0.8 || p.Seen != 1 {
		t.Errorf("predictor = %+v, want expectation 0.8 from the upgrade", p)
	}
	if got := s.StatsSnapshot().Scored; got != 0 {
		t.Errorf("scored = %d during establishment", got)
	}
}

func TestStreamCorrectionRescoresPeriod(t *testing.T) {
	s := mustStream(t, StreamConfig{Alpha: 0.5, MinSupport: 1})
	key := tagset.New(1, 2).Key()
	s.Observe(1, coeff(0.2, 5, 1, 2))
	s.Observe(2, coeff(0.8, 6, 1, 2)) // scored against base 0.2
	s.Observe(2, coeff(0.4, 9, 1, 2)) // upgrade: re-score against the same base

	top := s.TopTrends(2, 10)
	if len(top) != 1 {
		t.Fatalf("TopTrends = %v", top)
	}
	e := top[0]
	if e.Predicted != 0.2 || e.Observed != 0.4 || e.Score < 0.199 || e.Score > 0.201 {
		t.Errorf("corrected event = %+v", e)
	}
	// Expectation as if only the final value had been observed:
	// 0.5*0.4 + 0.5*0.2 = 0.3.
	p, _ := s.Predictor(key)
	if p.Expectation < 0.299 || p.Expectation > 0.301 {
		t.Errorf("expectation = %g, want 0.3", p.Expectation)
	}
}

func TestStreamOutOfOrderDropped(t *testing.T) {
	s := mustStream(t, StreamConfig{Alpha: 0.5, MinSupport: 1})
	s.Observe(5, coeff(0.5, 5, 1, 2))
	s.Observe(3, coeff(0.9, 6, 1, 2)) // older than the predictor's period
	if got := s.StatsSnapshot(); got.OutOfOrder != 1 || got.Scored != 0 {
		t.Errorf("stats = %+v, want one out-of-order drop", got)
	}
}

func TestStreamRetentionPrunesPeriodState(t *testing.T) {
	s := mustStream(t, StreamConfig{Alpha: 0.5, MinSupport: 1, KeepPeriods: 2})
	pair := func(a tagset.Tag) jaccard.Coefficient { return coeff(0.5, 5, a, a+1) }
	s.Observe(1, pair(10))
	s.Observe(1, pair(20))
	s.Observe(2, pair(10)) // scores period 2
	s.Observe(3, pair(10)) // scores period 3, prunes period 1
	if got := s.Periods(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Periods() = %v, want [2 3]", got)
	}
	if got := s.TopTrends(1, 10); len(got) != 0 {
		t.Errorf("pruned period still has trends: %v", got)
	}
	// Predictors survive period pruning.
	if _, ok := s.Predictor(tagset.New(20, 21).Key()); !ok {
		t.Error("predictor pruned with its period")
	}
	// A report for the pruned period is late, not scored.
	s.Observe(1, coeff(0.9, 9, 30, 31))
	if got := s.StatsSnapshot(); got.Late != 1 {
		t.Errorf("late = %d, want 1", got.Late)
	}
	if got := s.StatsSnapshot().PrunedPeriods; got != 1 {
		t.Errorf("pruned periods = %d, want 1", got)
	}
}

// TestStreamShardFloorGuardsPrunedPeriod pins the registry-to-shard-lock
// race guard: a period the retention registry approved can be pruned by a
// concurrent observer before the shard lock is taken, and recording into
// it would resurrect maps that retention never hands out for pruning
// again. The shard-local floor must reject such observations as late.
func TestStreamShardFloorGuardsPrunedPeriod(t *testing.T) {
	s := mustStream(t, StreamConfig{Alpha: 0.5, MinSupport: 1, KeepPeriods: 2, Shards: 1})
	c := coeff(0.5, 5, 1, 2)
	s.Observe(1, c)
	s.Observe(2, c)

	// Simulate the interleaving: period 2 is pruned under the shard lock
	// while another observer already holds a stale retained=true decision.
	sh := s.shardOf(c.Tags.Key())
	sh.mu.Lock()
	sh.evictPeriod(2)
	sh.mu.Unlock()

	sh.mu.Lock()
	_, scored, _, late := sh.observe(0.5, 2, c.Tags.Key(), coeff(0.9, 9, 1, 2))
	sh.mu.Unlock()
	if scored || !late {
		t.Fatalf("observe on pruned period: scored=%v late=%v, want late drop", scored, late)
	}
	if got := s.TopTrends(2, 10); len(got) != 0 {
		t.Errorf("pruned period state resurrected: %v", got)
	}
	sh.mu.Lock()
	_, evAlive := sh.events[2]
	_, topAlive := sh.tops[2]
	sh.mu.Unlock()
	if evAlive || topAlive {
		t.Error("pruned period maps recreated after late observation")
	}
}

func TestStreamSubscribeThreshold(t *testing.T) {
	s := mustStream(t, StreamConfig{Alpha: 0.5, MinSupport: 1, Threshold: 0.3})
	ch, cancel := s.Subscribe(8)
	defer cancel()
	s.Observe(1, coeff(0.5, 5, 1, 2))
	s.Observe(2, coeff(0.6, 5, 1, 2)) // score 0.1 < threshold: not published
	s.Observe(3, coeff(0.1, 5, 1, 2)) // score |0.1-0.55| = 0.45: published
	// Delivery is asynchronous through the broker goroutine; Sync blocks
	// until everything published above has been fanned out.
	s.Sync()
	select {
	case e := <-ch:
		if e.Period != 3 || e.Rising {
			t.Errorf("published event = %+v", e)
		}
	default:
		t.Fatal("no event published above threshold")
	}
	select {
	case e := <-ch:
		t.Fatalf("unexpected second event %+v", e)
	default:
	}
	if got := s.StatsSnapshot(); got.Published != 1 || got.Subscribers != 1 {
		t.Errorf("stats = %+v", got)
	}
	cancel()
	if _, open := <-ch; open {
		t.Error("cancel did not close the channel")
	}
	if got := s.StatsSnapshot().Subscribers; got != 0 {
		t.Errorf("subscribers after cancel = %d", got)
	}
}

func TestStreamPredictorEviction(t *testing.T) {
	s := mustStream(t, StreamConfig{Alpha: 0.5, MinSupport: 1, MaxTracked: 8, Shards: 1})
	for i := 0; i < 64; i++ {
		a := tagset.Tag(2 * i)
		s.Observe(int64(i+1), coeff(0.5, 5, a, a+1))
	}
	if got := s.Tracked(); got > 8 {
		t.Errorf("tracked = %d, exceeds MaxTracked 8", got)
	}
	// The most recent predictor survives.
	if _, ok := s.Predictor(tagset.New(126, 127).Key()); !ok {
		t.Error("most recent predictor evicted")
	}
}

// streamArrival is one report acceptance as the Tracker would emit it:
// a fresh (period, tagset) value or a strictly-higher-CN upgrade.
type streamArrival struct {
	period int64
	c      jaccard.Coefficient
}

// genArrivals builds a randomized arrival sequence over nKeys tagsets and
// periods 1..nPeriods, dense in ties (J on a 1/8 grid), upgrades (second
// and third versions with higher CN and fresh J) and sub-support reports.
// Arrivals are grouped by period (the Trend operator's per-tagset order
// guarantee); within a period the order is shuffled with upgrades kept
// after their base report. It also returns the per-period deduplicated
// final reports — what the batch Detector consumes.
func genArrivals(rng *rand.Rand, nKeys, nPeriods int) (arrivals []streamArrival, batches [][]jaccard.Coefficient) {
	batches = make([][]jaccard.Coefficient, nPeriods+1)
	for p := 1; p <= nPeriods; p++ {
		var periodArr []streamArrival
		for k := 0; k < nKeys; k++ {
			if rng.Intn(3) == 0 {
				continue // tagset not reported this period
			}
			a := tagset.Tag(2 * k)
			versions := 1 + rng.Intn(3)
			cn := int64(1 + rng.Intn(4)) // may start below MinSupport
			var final jaccard.Coefficient
			for v := 0; v < versions; v++ {
				c := jaccard.Coefficient{
					Tags: tagset.New(a, a+1),
					J:    float64(rng.Intn(9)) / 8,
					CN:   cn,
				}
				periodArr = append(periodArr, streamArrival{period: int64(p), c: c})
				final = c
				cn += int64(1 + rng.Intn(3))
			}
			batches[p] = append(batches[p], final)
		}
		// Shuffle while preserving per-tagset order: sort keys randomly by
		// interleaving whole per-tagset runs would be complex; instead do a
		// stable random interleave by repeatedly popping from per-tagset
		// queues.
		queues := make(map[tagset.Key][]streamArrival)
		var order []tagset.Key
		for _, ar := range periodArr {
			key := ar.c.Tags.Key()
			if _, seen := queues[key]; !seen {
				order = append(order, key)
			}
			queues[key] = append(queues[key], ar)
		}
		for len(order) > 0 {
			i := rng.Intn(len(order))
			key := order[i]
			arrivals = append(arrivals, queues[key][0])
			queues[key] = queues[key][1:]
			if len(queues[key]) == 0 {
				order[i] = order[len(order)-1]
				order = order[:len(order)-1]
			}
		}
	}
	return arrivals, batches
}

// TestStreamMatchesBatchDetector is the differential test the subsystem's
// correctness rests on: the streaming detector fed one arrival at a time —
// duplicates, upgrades and sub-support reports included — must score
// exactly the events the batch Detector derives from the deduplicated
// per-period reports, with identical top-k rankings under the bounded
// heaps and identical full rankings under the fallback scan.
func TestStreamMatchesBatchDetector(t *testing.T) {
	for round := int64(0); round < 5; round++ {
		rng := rand.New(rand.NewSource(100 + round))
		const bound = 8 // far below the event count: exclusion is exercised
		cfg := Config{Alpha: 0.4, MinSupport: 3}
		batch := mustDetector(t, cfg)
		st := mustStream(t, StreamConfig{
			Alpha:      cfg.Alpha,
			MinSupport: cfg.MinSupport,
			TopK:       bound,
			Shards:     4,
		})

		arrivals, batches := genArrivals(rng, 40, 12)
		i := 0
		for p := 1; p < len(batches); p++ {
			for ; i < len(arrivals) && arrivals[i].period == int64(p); i++ {
				st.Observe(arrivals[i].period, arrivals[i].c)
			}
			want := batch.Feed(int64(p), batches[p])

			for _, k := range []int{1, bound / 2, bound, 0} {
				got := st.TopTrends(int64(p), k)
				exp := want
				if k > 0 {
					exp = TopK(want, k)
				}
				if len(got) != len(exp) {
					t.Fatalf("round %d period %d k=%d: stream %d events, batch %d",
						round, p, k, len(got), len(exp))
				}
				for j := range exp {
					g, w := got[j], exp[j]
					if !g.Tags.Equal(w.Tags) || g.Score != w.Score ||
						g.Predicted != w.Predicted || g.Observed != w.Observed ||
						g.Rising != w.Rising || g.CN != w.CN || g.Period != w.Period {
						t.Fatalf("round %d period %d k=%d event %d:\n stream %+v\n batch  %+v",
							round, p, k, j, g, w)
					}
				}
			}
		}
		if st.Tracked() != batch.Tracked() {
			t.Fatalf("round %d: stream tracks %d predictors, batch %d",
				round, st.Tracked(), batch.Tracked())
		}
	}
}

// TestStreamConcurrentStress hammers the sharded detector from several
// reporter goroutines while readers take top-trend views, point lookups
// and stats snapshots, and a subscriber drains the event feed — with
// retention pruning in flight. Run under -race this exercises the locking
// discipline; the assertions check the invariants every mid-flight read
// must satisfy.
func TestStreamConcurrentStress(t *testing.T) {
	const (
		reporters = 6
		readers   = 4
		bound     = 16
		retention = 4
	)
	iters := 20000
	if testing.Short() {
		iters = 4000
	}
	s := mustStream(t, StreamConfig{
		Alpha:       0.4,
		MinSupport:  1,
		MaxTracked:  512,
		TopK:        bound,
		Threshold:   0.2,
		Shards:      4,
		KeepPeriods: retention,
	})

	ch, cancel := s.Subscribe(64)
	defer cancel()
	var consumed int64
	subDone := make(chan struct{})
	go func() {
		defer close(subDone)
		for e := range ch {
			if e.Score < 0.2 {
				t.Errorf("published event below threshold: %+v", e)
				return
			}
			atomic.AddInt64(&consumed, 1)
		}
	}()

	var wg sync.WaitGroup
	var done atomic.Bool
	for r := 0; r < reporters; r++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(id))
			for i := 0; i < iters; i++ {
				period := int64(1 + i/(iters/40+1))
				if rng.Intn(16) == 0 && period > 2 {
					period -= int64(rng.Intn(3))
				}
				a := tagset.Tag(2 * rng.Intn(64))
				s.Observe(period, jaccard.Coefficient{
					Tags: tagset.New(a, a+1),
					J:    float64(rng.Intn(32)+1) / 32,
					CN:   int64(rng.Intn(9) + 1),
				})
			}
		}(int64(r + 1))
	}

	var readWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func(id int64) {
			defer readWG.Done()
			rng := rand.New(rand.NewSource(1000 + id))
			for !done.Load() {
				if latest := s.LatestPeriod(); latest > 0 {
					top := s.TopTrends(latest, bound)
					if len(top) > bound {
						t.Errorf("TopTrends returned %d > k", len(top))
						return
					}
					for i := 1; i < len(top); i++ {
						if top[i].Score > top[i-1].Score {
							t.Errorf("TopTrends out of order at %d: %v", i, top)
							return
						}
					}
				}
				ps := s.Periods()
				if len(ps) > retention {
					t.Errorf("Periods() = %v exceeds retention %d", ps, retention)
					return
				}
				a := tagset.Tag(2 * rng.Intn(64))
				s.Predictor(tagset.New(a, a+1).Key())
				st := s.StatsSnapshot()
				if st.HeapEntries > st.Shards*bound*(retention+1) {
					t.Errorf("heap entries %d exceed shards*bound*periods", st.HeapEntries)
					return
				}
				if st.Tracked > 512+512/8+st.Shards {
					t.Errorf("tracked %d exceeds MaxTracked slack", st.Tracked)
					return
				}
			}
		}(int64(r))
	}

	wg.Wait()
	done.Store(true)
	readWG.Wait()
	cancel()
	<-subDone

	st := s.StatsSnapshot()
	if st.Scored == 0 {
		t.Error("stress run scored nothing")
	}
	if st.PrunedPeriods == 0 {
		t.Error("stress run never pruned a period")
	}
	if got := atomic.LoadInt64(&consumed); got == 0 {
		t.Error("subscriber consumed nothing")
	}
}
