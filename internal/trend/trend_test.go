package trend

import (
	"testing"

	"repro/internal/jaccard"
	"repro/internal/tagset"
)

func coeff(j float64, cn int64, tags ...tagset.Tag) jaccard.Coefficient {
	return jaccard.Coefficient{Tags: tagset.New(tags...), J: j, CN: cn}
}

func mustDetector(t *testing.T, cfg Config) *Detector {
	t.Helper()
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Alpha: 0, MinSupport: 1},
		{Alpha: 1.5, MinSupport: 1},
		{Alpha: 0.5, MinSupport: 0},
		{Alpha: 0.5, MinSupport: 1, MaxTracked: -1},
	}
	for i, cfg := range bad {
		if _, err := NewDetector(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := NewDetector(DefaultConfig()); err != nil {
		t.Error(err)
	}
}

func TestFirstSightingEstablishesPredictor(t *testing.T) {
	d := mustDetector(t, DefaultConfig())
	events := d.Feed(1, []jaccard.Coefficient{coeff(0.5, 10, 1, 2)})
	if len(events) != 0 {
		t.Fatalf("first sighting produced events: %v", events)
	}
	if d.Tracked() != 1 {
		t.Errorf("Tracked = %d", d.Tracked())
	}
}

func TestDeviationScoring(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Alpha = 0.5
	d := mustDetector(t, cfg)
	d.Feed(1, []jaccard.Coefficient{coeff(0.2, 10, 1, 2)})
	events := d.Feed(2, []jaccard.Coefficient{coeff(0.8, 12, 1, 2)})
	if len(events) != 1 {
		t.Fatalf("events = %v", events)
	}
	e := events[0]
	if !e.Rising || e.Predicted != 0.2 || e.Observed != 0.8 {
		t.Errorf("event = %+v", e)
	}
	if e.Score < 0.59 || e.Score > 0.61 {
		t.Errorf("score = %g, want 0.6", e.Score)
	}
	// Expectation updated: 0.5*0.8 + 0.5*0.2 = 0.5; a repeat at 0.5 scores 0.
	events = d.Feed(3, []jaccard.Coefficient{coeff(0.5, 12, 1, 2)})
	if len(events) != 1 || events[0].Score > 1e-9 {
		t.Errorf("post-update events = %v", events)
	}
}

func TestFallingTrend(t *testing.T) {
	d := mustDetector(t, DefaultConfig())
	d.Feed(1, []jaccard.Coefficient{coeff(0.9, 10, 1, 2)})
	events := d.Feed(2, []jaccard.Coefficient{coeff(0.1, 10, 1, 2)})
	if len(events) != 1 || events[0].Rising {
		t.Errorf("falling trend misreported: %v", events)
	}
}

func TestMinSupportFilter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinSupport = 10
	d := mustDetector(t, cfg)
	d.Feed(1, []jaccard.Coefficient{coeff(0.2, 3, 1, 2)})
	if d.Tracked() != 0 {
		t.Error("low-support coefficient tracked")
	}
}

func TestEventsSortedByScore(t *testing.T) {
	d := mustDetector(t, DefaultConfig())
	d.Feed(1, []jaccard.Coefficient{
		coeff(0.5, 10, 1, 2),
		coeff(0.5, 10, 3, 4),
	})
	events := d.Feed(2, []jaccard.Coefficient{
		coeff(0.6, 10, 1, 2), // score 0.1
		coeff(0.9, 10, 3, 4), // score 0.4
	})
	if len(events) != 2 || events[0].Score < events[1].Score {
		t.Errorf("not sorted: %v", events)
	}
	top := TopK(events, 1)
	if len(top) != 1 || !top[0].Tags.Equal(tagset.New(3, 4)) {
		t.Errorf("TopK = %v", top)
	}
	if got := TopK(events, 10); len(got) != 2 {
		t.Errorf("TopK over-length = %v", got)
	}
}

func TestEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxTracked = 3
	d := mustDetector(t, cfg)
	for i := int64(0); i < 6; i++ {
		d.Feed(i, []jaccard.Coefficient{coeff(0.5, 10, tagset.Tag(2*i), tagset.Tag(2*i+1))})
	}
	if d.Tracked() != 3 {
		t.Errorf("Tracked = %d, want 3", d.Tracked())
	}
	// The most recent survives; re-reporting it scores (predictor kept).
	events := d.Feed(7, []jaccard.Coefficient{coeff(0.9, 10, 10, 11)})
	if len(events) != 1 {
		t.Errorf("recent predictor evicted: %v", events)
	}
}
