package partition

import (
	"math/rand"
	"testing"

	"repro/internal/stream"
	"repro/internal/tagset"
)

func TestKLValidation(t *testing.T) {
	if _, err := BuildKL(nil, 0, 2, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if errK(0).Error() == "" {
		t.Error("empty error message")
	}
}

func TestKLCoversEverything(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(80)
		sets := make([]stream.WeightedSet, n)
		for i := range sets {
			m := 1 + r.Intn(4)
			tags := make([]tagset.Tag, m)
			for j := range tags {
				tags[j] = tagset.Tag(r.Intn(50))
			}
			sets[i] = stream.WeightedSet{Tags: tagset.New(tags...), Count: int64(1 + r.Intn(9))}
		}
		k := 1 + r.Intn(5)
		res, err := BuildKL(sets, k, 3, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if res.K() != k || res.Algorithm != KL {
			t.Fatalf("K=%d alg=%s", res.K(), res.Algorithm)
		}
		for _, s := range sets {
			if !res.Covers(s.Tags) {
				t.Fatalf("trial %d: %v uncovered", trial, s.Tags)
			}
		}
	}
}

func TestKLImprovesCutOverChainSplit(t *testing.T) {
	// A chain component must be split at k=2; KL refinement should find a
	// low-cut split (one cut point) rather than interleaving tagsets.
	var sets []stream.WeightedSet
	for i := 0; i < 30; i++ {
		sets = append(sets, ws(5, tagset.Tag(i), tagset.Tag(i+1)))
	}
	res, err := BuildKL(sets, 2, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Replication counts tags assigned to both partitions: an ideal single
	// cut shares at most ~2 tags; allow some slack but far below the ~31
	// tags full interleaving would produce.
	shared := res.Parts[0].Tags.IntersectLen(res.Parts[1].Tags)
	if shared > 8 {
		t.Errorf("KL left %d shared tags on a chain; refinement ineffective", shared)
	}
	q := Evaluate(res, sets)
	if q.Coverage != 1 {
		t.Errorf("coverage = %g", q.Coverage)
	}
}

func TestKLBalancesDisjointComponents(t *testing.T) {
	var sets []stream.WeightedSet
	for i := 0; i < 12; i++ {
		sets = append(sets, ws(10, tagset.Tag(3*i), tagset.Tag(3*i+1), tagset.Tag(3*i+2)))
	}
	res, err := BuildKL(sets, 4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := Evaluate(res, sets)
	if q.Gini > 0.05 {
		t.Errorf("gini on uniform components = %g", q.Gini)
	}
	if q.AvgCom != 1 {
		t.Errorf("avgCom on disjoint components = %g, want 1", q.AvgCom)
	}
}

func TestKLComparableQualityToDS(t *testing.T) {
	// On a topical window, KL's communication should be in DS's ballpark
	// (both respect component structure), demonstrating the related-work
	// claim: quality is attainable, cost is the problem.
	r := rand.New(rand.NewSource(5))
	var sets []stream.WeightedSet
	for topic := 0; topic < 40; topic++ {
		base := tagset.Tag(topic * 10)
		for d := 0; d < 8; d++ {
			a := base + tagset.Tag(r.Intn(8))
			b := base + tagset.Tag(r.Intn(8))
			sets = append(sets, stream.WeightedSet{Tags: tagset.New(a, b), Count: int64(1 + r.Intn(5))})
		}
	}
	kl, err := BuildKL(sets, 8, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ds := buildOrFatal(t, sets, DS, 8)
	qKL := Evaluate(kl, sets)
	qDS := Evaluate(ds, sets)
	if qKL.AvgCom > qDS.AvgCom*1.5+0.5 {
		t.Errorf("KL avgCom %.3f far above DS %.3f", qKL.AvgCom, qDS.AvgCom)
	}
}

func TestKLZeroPassesEqualsGreedyPacking(t *testing.T) {
	sets := figure1()
	res, err := BuildKL(sets, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// With no refinement passes this is the DS-style packing: zero
	// replication on Figure 1's two components.
	if rep := res.Replication(); rep != 1 {
		t.Errorf("replication = %g", rep)
	}
}
