package partition

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/stream"
	"repro/internal/tagset"
)

// This file implements the classic graph-partitioning baseline the paper's
// related work discusses (Section 2): Kernighan–Lin refinement [Kernighan &
// Lin 1970] applied to the tagset graph, with k-way partitions obtained by
// greedy packing followed by pairwise KL refinement passes. The paper
// argues such algorithms produce good partitions but are too expensive for
// a setting where partitions are recomputed continuously — this
// implementation exists to measure exactly that trade-off (see
// BenchmarkBaselineKL).
//
// Vertices are whole connected components' member *tagsets*; moving a
// tagset between partitions changes the edge cut, where an edge (weighted
// by shared-tag count) connects tagsets sharing tags. The edge cut is a
// direct proxy for the replication/communication objective: a cut edge
// means a tag co-location opportunity missed.

// KL is the Kernighan–Lin baseline algorithm identifier.
const KL Algorithm = "KL"

// BuildKL partitions the window's tagsets into k parts: initial balanced
// greedy assignment by load, then maxPasses rounds of pairwise KL
// refinement minimising the weighted edge cut subject to a load-balance
// tolerance. Unlike DS/SCC/SCL/SCI it does not guarantee coverage by
// construction, so a final repair pass duplicates each uncovered tagset's
// tags into its best partition (as the online algorithms' Single Addition
// would).
func BuildKL(sets []stream.WeightedSet, k, maxPasses int, seed int64) (*Result, error) {
	in := NewInput(sets)
	n := len(in.Sets)
	if k < 1 {
		return nil, errK(k)
	}
	assign := make([]int, n)

	// Initial assignment: components largest-first onto lightest partition
	// (the DS packing), then split per tagset.
	comps := graph.Components(in.Sets)
	loads := make([]int64, k)
	tagPart := make(map[tagset.Tag]int)
	for _, c := range comps {
		best := 0
		for p := 1; p < k; p++ {
			if loads[p] < loads[best] {
				best = p
			}
		}
		loads[best] += c.Load
		for _, tg := range c.Tags {
			tagPart[tg] = best
		}
	}
	for i, ws := range in.Sets {
		if !ws.Tags.IsEmpty() {
			assign[i] = tagPart[ws.Tags[0]]
		}
	}

	adj := buildAdjacency(in)
	tagsetLoads := in.Loads

	// Pairwise KL passes over all partition pairs.
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				if klRefinePair(in, adj, assign, tagsetLoads, a, b) {
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}

	// Materialise partitions from tagset assignment.
	members := make([]map[tagset.Tag]struct{}, k)
	for i := range members {
		members[i] = make(map[tagset.Tag]struct{})
	}
	for i, ws := range in.Sets {
		for _, tg := range ws.Tags {
			members[assign[i]][tg] = struct{}{}
		}
	}
	res := &Result{Algorithm: KL, Parts: make([]Partition, k)}
	for p := 0; p < k; p++ {
		tags := make([]tagset.Tag, 0, len(members[p]))
		for tg := range members[p] {
			tags = append(tags, tg)
		}
		set := tagset.New(tags...)
		res.Parts[p] = Partition{Tags: set, Load: in.LoadOfTags(set)}
	}
	// Coverage repair (KL may split a tagset's tags across partitions
	// because tags are the union of member tagsets — member tagsets stay
	// whole, so coverage holds by construction; assert-repair anyway for
	// robustness against zero-tagset partitions).
	for _, ws := range in.Sets {
		if !res.Covers(ws.Tags) {
			p := PlaceSingleAddition(res, ws.Tags)
			if p >= 0 {
				_ = Apply(res, p, ws.Tags, ws.Count)
			}
		}
	}
	return res, nil
}

func errK(k int) error {
	return errInvalidK{k}
}

type errInvalidK struct{ k int }

func (e errInvalidK) Error() string {
	return "partition: kernighan-lin k < 1"
}

// buildAdjacency returns, per tagset index, the weighted neighbour list:
// neighbours are tagsets sharing at least one tag; the weight is the
// shared-tag count.
func buildAdjacency(in *Input) [][]klEdge {
	adj := make([][]klEdge, len(in.Sets))
	weight := make(map[int64]int32)
	for _, posting := range in.postings {
		for i := 0; i < len(posting); i++ {
			for j := i + 1; j < len(posting); j++ {
				key := int64(posting[i])<<32 | int64(posting[j])
				weight[key]++
			}
		}
	}
	for key, w := range weight {
		i, j := int(key>>32), int(key&0xffffffff)
		adj[i] = append(adj[i], klEdge{to: j, w: w})
		adj[j] = append(adj[j], klEdge{to: i, w: w})
	}
	return adj
}

type klEdge struct {
	to int
	w  int32
}

// klRefinePair runs one Kernighan–Lin pass between partitions a and b:
// compute D-values (external minus internal cost) for every vertex in a∪b,
// greedily swap the best pair, lock both, repeat; finally keep the prefix
// of swaps with the best cumulative gain. Returns whether the cut improved.
func klRefinePair(in *Input, adj [][]klEdge, assign []int, loads []int64, a, b int) bool {
	var va, vb []int
	for i, p := range assign {
		switch p {
		case a:
			va = append(va, i)
		case b:
			vb = append(vb, i)
		}
	}
	if len(va) == 0 || len(vb) == 0 {
		return false
	}
	// Bound the pass size: KL is O(n² log n) per pass; limit each side to
	// the heaviest vertices for very large windows (the baseline's cost is
	// part of what we measure, but unbounded cubic blow-ups would dominate
	// the whole benchmark suite — even bounded, KL is orders of magnitude
	// slower than the online algorithms).
	const maxSide = 96
	va = topByLoad(va, in.Loads, maxSide)
	vb = topByLoad(vb, in.Loads, maxSide)

	d := make(map[int]int64) // D-value per vertex
	dOf := func(v, own, other int) int64 {
		var ext, int_ int64
		for _, e := range adj[v] {
			switch assign[e.to] {
			case other:
				ext += int64(e.w)
			case own:
				int_ += int64(e.w)
			}
		}
		return ext - int_
	}
	for _, v := range va {
		d[v] = dOf(v, a, b)
	}
	for _, v := range vb {
		d[v] = dOf(v, b, a)
	}

	locked := make(map[int]bool)
	type swap struct {
		x, y int
		gain int64
	}
	var swaps []swap
	rounds := len(va)
	if len(vb) < rounds {
		rounds = len(vb)
	}
	for r := 0; r < rounds; r++ {
		bestGain := int64(-1 << 62)
		bx, by := -1, -1
		for _, x := range va {
			if locked[x] {
				continue
			}
			for _, y := range vb {
				if locked[y] {
					continue
				}
				gain := d[x] + d[y] - 2*edgeWeight(adj, x, y)
				if gain > bestGain {
					bestGain, bx, by = gain, x, y
				}
			}
		}
		if bx == -1 {
			break
		}
		locked[bx], locked[by] = true, true
		swaps = append(swaps, swap{bx, by, bestGain})
		// Update D-values of unlocked vertices as if the swap happened.
		for _, e := range adj[bx] {
			if locked[e.to] {
				continue
			}
			switch assign[e.to] {
			case a:
				d[e.to] += 2 * int64(e.w)
			case b:
				d[e.to] -= 2 * int64(e.w)
			}
		}
		for _, e := range adj[by] {
			if locked[e.to] {
				continue
			}
			switch assign[e.to] {
			case b:
				d[e.to] += 2 * int64(e.w)
			case a:
				d[e.to] -= 2 * int64(e.w)
			}
		}
	}

	// Best prefix of cumulative gains.
	bestSum, sum, bestLen := int64(0), int64(0), 0
	for i, s := range swaps {
		sum += s.gain
		if sum > bestSum {
			bestSum, bestLen = sum, i+1
		}
	}
	if bestLen == 0 {
		return false
	}
	for i := 0; i < bestLen; i++ {
		assign[swaps[i].x] = b
		assign[swaps[i].y] = a
	}
	return true
}

func edgeWeight(adj [][]klEdge, x, y int) int64 {
	for _, e := range adj[x] {
		if e.to == y {
			return int64(e.w)
		}
	}
	return 0
}

func topByLoad(idx []int, loads []int64, max int) []int {
	if len(idx) <= max {
		return idx
	}
	sorted := make([]int, len(idx))
	copy(sorted, idx)
	sort.Slice(sorted, func(i, j int) bool { return loads[sorted[i]] > loads[sorted[j]] })
	return sorted[:max]
}
