package partition

import (
	"fmt"
	"math"
)

import "repro/internal/tagset"

// PlaceSingleAddition chooses the best partition for a tagset that appeared
// in the input but is not covered by any partition (a Single Addition,
// Section 7.1). For DS, SCC and SCI the partition is selected to minimise
// the increase in communication: the one already sharing the most tags with
// the tagset (least load as tie-break). For SCL it is selected to keep load
// balanced: the least-loaded partition (most shared tags as tie-break).
//
// It returns the chosen partition index; the caller applies the addition
// via Apply.
func PlaceSingleAddition(r *Result, s tagset.Set) int {
	if len(r.Parts) == 0 {
		return -1
	}
	switch r.Algorithm {
	case SCL:
		best, bestOv, bestLoad := 0, -1, int64(math.MaxInt64)
		for p := range r.Parts {
			ov := s.IntersectLen(r.Parts[p].Tags)
			ld := r.Parts[p].Load
			if ld < bestLoad || (ld == bestLoad && ov > bestOv) {
				best, bestOv, bestLoad = p, ov, ld
			}
		}
		return best
	default: // DS, DSHybrid, SCC, SCI: minimise added replication
		best, bestOv, bestLoad := 0, -1, int64(math.MaxInt64)
		for p := range r.Parts {
			ov := s.IntersectLen(r.Parts[p].Tags)
			ld := r.Parts[p].Load
			if ov > bestOv || (ov == bestOv && ld < bestLoad) {
				best, bestOv, bestLoad = p, ov, ld
			}
		}
		return best
	}
}

// Apply adds tagset s to partition p of r, increasing the partition's
// recorded load by the tagset's observed weight. It returns an error if p
// is out of range.
func Apply(r *Result, p int, s tagset.Set, weight int64) error {
	if p < 0 || p >= len(r.Parts) {
		return fmt.Errorf("partition: apply to partition %d of %d", p, len(r.Parts))
	}
	r.Parts[p].Tags = r.Parts[p].Tags.Union(s)
	r.Parts[p].Load += weight
	return nil
}
