package partition

import (
	"container/heap"
	"math"
	"math/rand"

	"repro/internal/tagset"
)

// costMode is the phase-1 (Algorithm 2) cost of selecting a candidate seed
// tagset, given the covered-tag set and the loads selected so far.
type costMode func(st *scState, setIdx int, iteration int) float64

// costComm is the communication cost: the number of the candidate's tags
// already covered by previously selected seeds.
func costComm(st *scState, i, _ int) float64 {
	return float64(st.coveredCount(st.in.Sets[i].Tags))
}

// costLoad is the load-deviation cost: |plop - pln| where plop = 1/m is the
// optimal load share at iteration m and pln the candidate's actual share.
func costLoad(st *scState, i, m int) float64 {
	ln := float64(st.in.Loads[i])
	denom := st.selectedLoad + ln
	if denom == 0 {
		return 0
	}
	return math.Abs(1/float64(m) - ln/denom)
}

// costZero is the SCI mode: phase 1 degenerates to pure maximum coverage.
func costZero(*scState, int, int) float64 { return 0 }

// phase2Mode identifies which Algorithm (3, 4 or 5) places the remaining
// tagsets.
type phase2Mode int

const (
	phase2SCC phase2Mode = iota // Algorithm 3: minimise communication
	phase2SCL                   // Algorithm 4: balance load
	phase2SCI                   // Algorithm 5: random order, max overlap
)

// scState is the shared working state of the set-cover algorithms.
type scState struct {
	in      *Input
	covered map[tagset.Tag]struct{}   // CV
	members []map[tagset.Tag]struct{} // per-partition assigned tags
	loads   []int64                   // per-partition sum of member tagset loads

	selectedLoad float64 // phase 1: total load of selected seeds
	assigned     []bool
}

func newScState(in *Input, k int) *scState {
	st := &scState{
		in:       in,
		covered:  make(map[tagset.Tag]struct{}),
		members:  make([]map[tagset.Tag]struct{}, k),
		loads:    make([]int64, k),
		assigned: make([]bool, len(in.Sets)),
	}
	for i := range st.members {
		st.members[i] = make(map[tagset.Tag]struct{})
	}
	return st
}

func (st *scState) coveredCount(s tagset.Set) int {
	n := 0
	for _, t := range s {
		if _, ok := st.covered[t]; ok {
			n++
		}
	}
	return n
}

func (st *scState) uncoveredCount(s tagset.Set) int {
	return s.Len() - st.coveredCount(s)
}

// overlap returns |s ∩ partition p|.
func (st *scState) overlap(s tagset.Set, p int) int {
	n := 0
	for _, t := range s {
		if _, ok := st.members[p][t]; ok {
			n++
		}
	}
	return n
}

// place assigns tagset i to partition p.
func (st *scState) place(i, p int) {
	st.assigned[i] = true
	for _, t := range st.in.Sets[i].Tags {
		st.members[p][t] = struct{}{}
		st.covered[t] = struct{}{}
	}
	st.loads[p] += st.in.Loads[i]
}

// buildSetCover runs Algorithm 2 (seed selection with the given cost mode)
// followed by the requested phase-2 placement. rng is used only by SCI.
func buildSetCover(in *Input, k int, cost costMode, mode phase2Mode, rng *rand.Rand) *Result {
	st := newScState(in, k)

	// Phase 1 (Algorithm 2): pick up to k seeds. Selection follows the
	// paper's dual criterion "argmin cost and argmax uncovered": lowest
	// cost first, most newly-covered tags as tie-break, then lowest index
	// for determinism.
	seeds := 0
	for seeds < k {
		best, bestCost, bestUnc := -1, math.Inf(1), -1
		for i := range in.Sets {
			if st.assigned[i] {
				continue
			}
			c := cost(st, i, seeds+1)
			u := st.uncoveredCount(in.Sets[i].Tags)
			if best == -1 || c < bestCost || (c == bestCost && u > bestUnc) {
				best, bestCost, bestUnc = i, c, u
			}
		}
		if best == -1 {
			break // fewer tagsets than partitions
		}
		st.place(best, seeds)
		st.selectedLoad += float64(in.Loads[best])
		seeds++
	}

	// Phase 2: place every remaining tagset.
	switch mode {
	case phase2SCC:
		phase2CommRun(st, k)
	case phase2SCL:
		phase2LoadRun(st, k)
	case phase2SCI:
		phase2RandomRun(st, k, rng)
	}

	// Materialise partitions; report exact loads over the window.
	alg := map[phase2Mode]Algorithm{phase2SCC: SCC, phase2SCL: SCL, phase2SCI: SCI}[mode]
	res := &Result{Algorithm: alg, Parts: make([]Partition, k)}
	for p := 0; p < k; p++ {
		tags := make([]tagset.Tag, 0, len(st.members[p]))
		for t := range st.members[p] {
			tags = append(tags, t)
		}
		set := tagset.New(tags...)
		res.Parts[p] = Partition{Tags: set, Load: in.LoadOfTags(set)}
	}
	return res
}

// scEntry is a lazy-greedy heap entry: a candidate tagset with a possibly
// stale priority. Priorities only worsen as coverage grows, so popping an
// entry, refreshing it, and re-inserting if it no longer beats the next
// candidate implements exact greedy selection.
type scEntry struct {
	idx  int
	key1 int // primary (larger = better)
	key2 int // secondary (larger = better)
}

type scHeap []scEntry

func (h scHeap) Len() int { return len(h) }
func (h scHeap) Less(i, j int) bool {
	if h[i].key1 != h[j].key1 {
		return h[i].key1 > h[j].key1
	}
	if h[i].key2 != h[j].key2 {
		return h[i].key2 > h[j].key2
	}
	return h[i].idx < h[j].idx
}
func (h scHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *scHeap) Push(x interface{}) { *h = append(*h, x.(scEntry)) }
func (h *scHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// phase2CommRun implements Algorithm 3 (SCC): repeatedly select the tagset
// with the most uncovered tags (fewest total tags as tie-break) and add it
// to the partition sharing the most tags with it (lowest load as tie-break).
func phase2CommRun(st *scState, k int) {
	h := &scHeap{}
	for i := range st.in.Sets {
		if st.assigned[i] {
			continue
		}
		s := st.in.Sets[i].Tags
		heap.Push(h, scEntry{idx: i, key1: st.uncoveredCount(s), key2: -s.Len()})
	}
	for h.Len() > 0 {
		e := heap.Pop(h).(scEntry)
		if st.assigned[e.idx] {
			continue
		}
		s := st.in.Sets[e.idx].Tags
		fresh := st.uncoveredCount(s)
		if fresh != e.key1 {
			// Stale: priority dropped; re-insert with the fresh value.
			heap.Push(h, scEntry{idx: e.idx, key1: fresh, key2: e.key2})
			continue
		}
		// Partition: argmax overlap, tie argmin load, tie lowest index.
		best, bestOv, bestLoad := 0, -1, int64(math.MaxInt64)
		for p := 0; p < k; p++ {
			ov := st.overlap(s, p)
			if ov > bestOv || (ov == bestOv && st.loads[p] < bestLoad) {
				best, bestOv, bestLoad = p, ov, st.loads[p]
			}
		}
		st.place(e.idx, best)
	}
}

// phase2LoadRun implements Algorithm 4 (SCL): repeatedly select the tagset
// with the largest load (fewest already-covered tags as tie-break) and add
// it to the partition with the least load (most shared tags as tie-break).
func phase2LoadRun(st *scState, k int) {
	h := &scHeap{}
	for i := range st.in.Sets {
		if st.assigned[i] {
			continue
		}
		s := st.in.Sets[i].Tags
		heap.Push(h, scEntry{idx: i, key1: int(st.in.Loads[i]), key2: -st.coveredCount(s)})
	}
	for h.Len() > 0 {
		e := heap.Pop(h).(scEntry)
		if st.assigned[e.idx] {
			continue
		}
		s := st.in.Sets[e.idx].Tags
		freshKey2 := -st.coveredCount(s)
		if freshKey2 != e.key2 {
			heap.Push(h, scEntry{idx: e.idx, key1: e.key1, key2: freshKey2})
			continue
		}
		// Partition: argmin load, tie argmax overlap, tie lowest index.
		best, bestOv, bestLoad := 0, -1, int64(math.MaxInt64)
		for p := 0; p < k; p++ {
			ov := st.overlap(s, p)
			if st.loads[p] < bestLoad || (st.loads[p] == bestLoad && ov > bestOv) {
				best, bestOv, bestLoad = p, ov, st.loads[p]
			}
		}
		st.place(e.idx, best)
	}
}

// phase2RandomRun implements Algorithm 5 (SCI): visit the remaining tagsets
// in random order, adding each to the partition sharing the most tags.
func phase2RandomRun(st *scState, k int, rng *rand.Rand) {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	var rest []int
	for i := range st.in.Sets {
		if !st.assigned[i] {
			rest = append(rest, i)
		}
	}
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	for _, i := range rest {
		s := st.in.Sets[i].Tags
		best, bestOv, ties := 0, -1, 0
		for p := 0; p < k; p++ {
			switch ov := st.overlap(s, p); {
			case ov > bestOv:
				best, bestOv, ties = p, ov, 1
			case ov == bestOv:
				// Reservoir-style random tie-break: without it, every
				// tagset overlapping no partition piles onto partition 0,
				// which then overlaps everything.
				ties++
				if rng.Intn(ties) == 0 {
					best = p
				}
			}
		}
		st.place(i, best)
	}
}
