// Package partition implements the paper's core contribution: the
// algorithms that split a window of observed tagsets into k tag partitions
// such that every co-occurring tagset is wholly contained in some partition
// (coverage), tag replication across partitions is low (communication), and
// per-partition load is balanced (Section 4).
//
// Four algorithms are provided, exactly following the paper:
//
//   - DS  (Algorithm 1): connected components of the tag graph, greedily
//     packed into k partitions by descending load.
//   - SCC (Algorithms 2+3): budgeted-max-coverage seeds with communication
//     cost, remaining tagsets placed to minimise tag replication.
//   - SCL (Algorithms 2+4): seeds with load-deviation cost, remaining
//     tagsets placed to balance load.
//   - SCI (Algorithms 2+5): zero-cost seeds, remaining tagsets placed in
//     random order to the partition sharing the most tags (the prior-work
//     baseline [Alvanaki & Michel, DBSocial 2013]).
//
// The package also evaluates partition quality (expected communication and
// per-node load, Section 7.2) and places late-arriving tagsets (Single
// Additions, Section 7.1).
package partition

import (
	"fmt"
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/tagset"
)

// Algorithm identifies one of the paper's partitioning algorithms.
type Algorithm string

// The four partitioning algorithms evaluated in the paper, plus the
// "lessons learned" hybrid (Section 8.3): DS whose oversized components are
// split with SCL.
const (
	DS       Algorithm = "DS"
	SCC      Algorithm = "SCC"
	SCL      Algorithm = "SCL"
	SCI      Algorithm = "SCI"
	DSHybrid Algorithm = "DS+split"
)

// Algorithms lists the four paper algorithms in the order the figures use.
var Algorithms = []Algorithm{DS, SCI, SCC, SCL}

// Valid reports whether a is a known algorithm.
func (a Algorithm) Valid() bool {
	switch a {
	case DS, SCC, SCL, SCI, DSHybrid:
		return true
	}
	return false
}

// Partition is one tag partition: the set of tags one Calculator is
// responsible for, plus its expected load (documents annotated with any
// assigned tag, measured on the formation window).
type Partition struct {
	Tags tagset.Set
	Load int64
}

// Result is a complete partitioning of a window.
type Result struct {
	Algorithm Algorithm
	Parts     []Partition
}

// K returns the number of partitions.
func (r *Result) K() int { return len(r.Parts) }

// TotalAssignedTags returns the sum of per-partition tag counts; with the
// distinct-tag count it yields the replication factor the paper's second
// objective minimises.
func (r *Result) TotalAssignedTags() int {
	n := 0
	for _, p := range r.Parts {
		n += p.Tags.Len()
	}
	return n
}

// DistinctTags returns the number of distinct tags across all partitions.
func (r *Result) DistinctTags() int {
	seen := make(map[tagset.Tag]struct{})
	for _, p := range r.Parts {
		for _, t := range p.Tags {
			seen[t] = struct{}{}
		}
	}
	return len(seen)
}

// Replication returns the mean number of partitions each distinct tag is
// assigned to (>= 1; exactly 1 means zero replication, the DS guarantee).
func (r *Result) Replication() float64 {
	d := r.DistinctTags()
	if d == 0 {
		return 0
	}
	return float64(r.TotalAssignedTags()) / float64(d)
}

// Covers reports whether some partition fully contains s.
func (r *Result) Covers(s tagset.Set) bool {
	for _, p := range r.Parts {
		if s.SubsetOf(p.Tags) {
			return true
		}
	}
	return false
}

// Options configures a partitioning run.
type Options struct {
	Algorithm Algorithm
	K         int   // number of partitions (Calculators)
	Seed      int64 // randomness for SCI's random draw order
	// MaxLoadShare bounds a single component's load share before DSHybrid
	// splits it; 0 means the default 2/K.
	MaxLoadShare float64
}

// Build runs the selected algorithm over the window snapshot. It returns an
// error for invalid options; an empty snapshot yields K empty partitions.
func Build(sets []stream.WeightedSet, opts Options) (*Result, error) {
	if !opts.Algorithm.Valid() {
		return nil, fmt.Errorf("partition: unknown algorithm %q", opts.Algorithm)
	}
	if opts.K < 1 {
		return nil, fmt.Errorf("partition: k = %d < 1", opts.K)
	}
	in := NewInput(sets)
	switch opts.Algorithm {
	case DS:
		return buildDS(in, opts.K), nil
	case DSHybrid:
		return buildDSHybrid(in, opts), nil
	case SCC:
		return buildSetCover(in, opts.K, costComm, phase2SCC, nil), nil
	case SCL:
		return buildSetCover(in, opts.K, costLoad, phase2SCL, nil), nil
	case SCI:
		rng := rand.New(rand.NewSource(opts.Seed))
		return buildSetCover(in, opts.K, costZero, phase2SCI, rng), nil
	}
	panic("unreachable")
}

// Input is the preprocessed window snapshot the algorithms consume: the
// distinct tagsets with occurrence counts, per-tagset loads (documents
// annotated with any of the tagset's tags), and an inverted tag index.
type Input struct {
	Sets  []stream.WeightedSet
	Loads []int64 // Loads[i] = documents whose tagset intersects Sets[i].Tags
	Total int64   // total documents in the window

	postings map[tagset.Tag][]int32 // tag -> indices of Sets containing it
}

// NewInput preprocesses a window snapshot. Tagsets with empty tag sets are
// dropped.
func NewInput(sets []stream.WeightedSet) *Input {
	in := &Input{postings: make(map[tagset.Tag][]int32)}
	for _, ws := range sets {
		if ws.Tags.IsEmpty() {
			continue
		}
		in.Sets = append(in.Sets, ws)
		in.Total += ws.Count
	}
	for i, ws := range in.Sets {
		for _, t := range ws.Tags {
			in.postings[t] = append(in.postings[t], int32(i))
		}
	}
	// Per-tagset load via posting-list union with a visited stamp.
	in.Loads = make([]int64, len(in.Sets))
	stamp := make([]int32, len(in.Sets))
	for i := range stamp {
		stamp[i] = -1
	}
	for i, ws := range in.Sets {
		var load int64
		for _, t := range ws.Tags {
			for _, j := range in.postings[t] {
				if stamp[j] != int32(i) {
					stamp[j] = int32(i)
					load += in.Sets[j].Count
				}
			}
		}
		in.Loads[i] = load
	}
	return in
}

// LoadOfTags returns the number of window documents annotated with any tag
// of s (the load a partition holding exactly s would receive).
func (in *Input) LoadOfTags(s tagset.Set) int64 {
	seen := make(map[int32]struct{})
	var load int64
	for _, t := range s {
		for _, j := range in.postings[t] {
			if _, ok := seen[j]; !ok {
				seen[j] = struct{}{}
				load += in.Sets[j].Count
			}
		}
	}
	return load
}

// Quality is the pair of reference statistics the Merger hands to the
// Disseminators when new partitions are installed (Section 7.2).
type Quality struct {
	AvgCom   float64 // mean notifications per tagset that notified anyone
	MaxLoad  float64 // largest single-Calculator share of notifications
	Gini     float64 // Gini coefficient of per-Calculator notifications
	Coverage float64 // fraction of window tagsets fully covered by a partition
}

// Evaluate computes the quality of a partitioning over a window snapshot,
// weighting each tagset by its occurrence count — the same statistics the
// Disseminator later maintains online.
func Evaluate(r *Result, sets []stream.WeightedSet) Quality {
	perPart := make([]int64, len(r.Parts))
	var notified, totalMsgs int64
	var covered, total int64
	for _, ws := range sets {
		if ws.Tags.IsEmpty() {
			continue
		}
		total += ws.Count
		touched := 0
		coveredHere := false
		for i, p := range r.Parts {
			if ws.Tags.Intersects(p.Tags) {
				touched++
				perPart[i] += ws.Count
			}
			if !coveredHere && ws.Tags.SubsetOf(p.Tags) {
				coveredHere = true
			}
		}
		if touched > 0 {
			notified += ws.Count
			totalMsgs += int64(touched) * ws.Count
		}
		if coveredHere {
			covered += ws.Count
		}
	}
	q := Quality{}
	if notified > 0 {
		q.AvgCom = float64(totalMsgs) / float64(notified)
	}
	q.MaxLoad = metrics.MaxShareInts(perPart)
	q.Gini = metrics.GiniInts(perPart)
	if total > 0 {
		q.Coverage = float64(covered) / float64(total)
	}
	return q
}
