package partition

import (
	"math/rand"
	"testing"

	"repro/internal/stream"
	"repro/internal/tagset"
)

func TestCostComm(t *testing.T) {
	in := NewInput([]stream.WeightedSet{
		ws(1, 1, 2, 3),
		ws(1, 3, 4),
	})
	st := newScState(in, 2)
	if got := costComm(st, 0, 1); got != 0 {
		t.Errorf("cost with empty CV = %g", got)
	}
	st.place(0, 0) // covers {1,2,3}
	if got := costComm(st, 1, 2); got != 1 {
		t.Errorf("cost of {3,4} with CV={1,2,3} = %g, want 1", got)
	}
}

func TestCostLoad(t *testing.T) {
	in := NewInput([]stream.WeightedSet{
		ws(10, 1, 2),
		ws(10, 3, 4),
		ws(1, 5, 6),
	})
	st := newScState(in, 3)
	// First iteration: plop = 1, pln = l/(0+l) = 1 → cost 0 for all.
	if got := costLoad(st, 0, 1); got != 0 {
		t.Errorf("first-iteration cost = %g", got)
	}
	// Second iteration with one selected set of load 10: the equal-load
	// candidate {3,4} has share 0.5 = plop → cost 0; the tiny candidate
	// deviates.
	st.place(0, 0)
	st.selectedLoad = float64(in.Loads[0])
	even := costLoad(st, 1, 2)
	tiny := costLoad(st, 2, 2)
	if even >= tiny {
		t.Errorf("balanced candidate cost %g should beat skewed %g", even, tiny)
	}
}

func TestCostZero(t *testing.T) {
	if costZero(nil, 3, 7) != 0 {
		t.Error("costZero != 0")
	}
}

func TestScStateHelpers(t *testing.T) {
	in := NewInput([]stream.WeightedSet{ws(1, 1, 2, 3), ws(1, 4)})
	st := newScState(in, 2)
	s := tagset.New(1, 2, 3)
	if st.coveredCount(s) != 0 || st.uncoveredCount(s) != 3 {
		t.Error("initial coverage wrong")
	}
	st.place(0, 1)
	if st.coveredCount(s) != 3 || st.uncoveredCount(s) != 0 {
		t.Error("post-place coverage wrong")
	}
	if st.overlap(s, 0) != 0 || st.overlap(s, 1) != 3 {
		t.Error("overlap wrong")
	}
	if !st.assigned[0] || st.assigned[1] {
		t.Error("assigned flags wrong")
	}
	if st.loads[1] != in.Loads[0] {
		t.Errorf("partition load = %d", st.loads[1])
	}
}

// TestPhase1SeedsAreDistinctAndGreedy checks Algorithm 2: k seeds, each
// assigned to its own partition, preferring wide coverage.
func TestPhase1Seeds(t *testing.T) {
	sets := []stream.WeightedSet{
		ws(1, 1, 2, 3, 4), // widest
		ws(1, 5, 6, 7),
		ws(1, 1, 2), // low marginal coverage after the first
		ws(1, 8, 9),
	}
	r := buildOrFatal(t, sets, SCI, 3)
	// The three seeds should be the wide and disjoint sets; the subset
	// {1,2} joins the partition holding {1,2,3,4} in phase 2.
	for _, s := range []tagset.Set{tagset.New(1, 2, 3, 4), tagset.New(5, 6, 7), tagset.New(8, 9)} {
		found := false
		for _, p := range r.Parts {
			if s.SubsetOf(p.Tags) {
				found = true
			}
		}
		if !found {
			t.Errorf("wide set %v not covered", s)
		}
	}
	covering := 0
	for _, p := range r.Parts {
		if tagset.New(1, 2).SubsetOf(p.Tags) {
			covering++
		}
	}
	if covering != 1 {
		t.Errorf("{1,2} covered by %d partitions, want 1 (joined its superset)", covering)
	}
}

// TestSCCPrefersUncoveredSelection: Algorithm 3 processes tagsets with the
// most uncovered tags first, so a late small set joins the partition
// sharing its tags rather than founding new overlap.
func TestSCCPlacementMinimisesOverlap(t *testing.T) {
	sets := []stream.WeightedSet{
		ws(5, 1, 2, 3),
		ws(5, 4, 5, 6),
		ws(1, 3, 7), // shares tag 3 with the first seed
	}
	r := buildOrFatal(t, sets, SCC, 2)
	// {3,7} must land in the partition containing tag 3 — zero replication.
	if rep := r.Replication(); rep != 1 {
		t.Errorf("replication = %g, want 1 (perfect overlap placement)", rep)
	}
}

// TestSCLPlacementBalances: Algorithm 4 sends the heaviest tagsets to the
// least-loaded partitions.
func TestSCLPlacementBalances(t *testing.T) {
	var sets []stream.WeightedSet
	// Ten disjoint heavy sets.
	for i := 0; i < 10; i++ {
		sets = append(sets, ws(10, tagset.Tag(2*i), tagset.Tag(2*i+1)))
	}
	r := buildOrFatal(t, sets, SCL, 5)
	q := Evaluate(r, sets)
	if q.Gini > 0.01 {
		t.Errorf("SCL gini on uniform disjoint sets = %g, want ~0", q.Gini)
	}
}

// TestSCIRandomTieBreakSpreads: zero-overlap tagsets must not pile onto one
// partition (the reservoir tie-break).
func TestSCIRandomTieBreakSpreads(t *testing.T) {
	var sets []stream.WeightedSet
	for i := 0; i < 60; i++ {
		sets = append(sets, ws(1, tagset.Tag(2*i), tagset.Tag(2*i+1)))
	}
	r := buildOrFatal(t, sets, SCI, 4)
	for i, p := range r.Parts {
		if p.Tags.Len() > 80 {
			t.Errorf("partition %d absorbed %d tags; tie-break not spreading", i, p.Tags.Len())
		}
		if p.Tags.IsEmpty() {
			t.Errorf("partition %d empty", i)
		}
	}
}

// TestLazyHeapEquivalence cross-checks the lazy-greedy SCC selection
// against a brute-force greedy implementation on random inputs.
func TestLazyHeapEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(40)
		sets := make([]stream.WeightedSet, n)
		for i := range sets {
			m := 1 + rng.Intn(4)
			tags := make([]tagset.Tag, m)
			for j := range tags {
				tags[j] = tagset.Tag(rng.Intn(25))
			}
			sets[i] = stream.WeightedSet{Tags: tagset.New(tags...), Count: int64(1 + rng.Intn(9))}
		}
		k := 1 + rng.Intn(4)

		fast := buildSetCover(NewInput(sets), k, costComm, phase2SCC, nil)
		slow := bruteForceSCC(NewInput(sets), k)
		for i := range fast.Parts {
			if !fast.Parts[i].Tags.Equal(slow.Parts[i].Tags) {
				t.Fatalf("trial %d: partition %d differs:\nfast %v\nslow %v",
					trial, i, fast.Parts[i].Tags, slow.Parts[i].Tags)
			}
		}
	}
}

// bruteForceSCC mirrors buildSetCover+phase2SCC with O(n²) scans instead of
// the lazy heap.
func bruteForceSCC(in *Input, k int) *Result {
	st := newScState(in, k)
	seeds := 0
	for seeds < k {
		best, bestCost, bestUnc := -1, int(1<<30), -1
		for i := range in.Sets {
			if st.assigned[i] {
				continue
			}
			c := int(costComm(st, i, seeds+1))
			u := st.uncoveredCount(in.Sets[i].Tags)
			if best == -1 || c < bestCost || (c == bestCost && u > bestUnc) {
				best, bestCost, bestUnc = i, c, u
			}
		}
		if best == -1 {
			break
		}
		st.place(best, seeds)
		seeds++
	}
	for {
		best, bestUnc, bestSize := -1, -1, int(1<<30)
		for i := range in.Sets {
			if st.assigned[i] {
				continue
			}
			u := st.uncoveredCount(in.Sets[i].Tags)
			sz := in.Sets[i].Tags.Len()
			if u > bestUnc || (u == bestUnc && sz < bestSize) {
				best, bestUnc, bestSize = i, u, sz
			}
		}
		if best == -1 {
			break
		}
		s := in.Sets[best].Tags
		bp, bov, bld := 0, -1, int64(1)<<62
		for p := 0; p < k; p++ {
			ov := st.overlap(s, p)
			if ov > bov || (ov == bov && st.loads[p] < bld) {
				bp, bov, bld = p, ov, st.loads[p]
			}
		}
		st.place(best, bp)
	}
	res := &Result{Algorithm: SCC, Parts: make([]Partition, k)}
	for p := 0; p < k; p++ {
		tags := make([]tagset.Tag, 0, len(st.members[p]))
		for tg := range st.members[p] {
			tags = append(tags, tg)
		}
		res.Parts[p] = Partition{Tags: tagset.New(tags...)}
	}
	return res
}
