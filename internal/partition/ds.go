package partition

import (
	"container/heap"

	"repro/internal/graph"
	"repro/internal/stream"
)

// buildDS implements Algorithm 1 (Disjoint Sets): identify the connected
// components of the tag graph, then greedily pack them into k partitions —
// repeatedly taking the heaviest unassigned component and adding it to the
// currently lightest partition. Because components are never split, every
// observed tagset lands wholly in exactly one partition: zero replication
// by construction.
func buildDS(in *Input, k int) *Result {
	comps := graph.Components(in.Sets) // already sorted by descending load
	return packComponents(comps, k, DS)
}

// packComponents distributes components (assumed sorted by descending load)
// over k partitions, largest-first onto the lightest partition — the
// longest-processing-time greedy of Algorithm 1 lines 8–19.
func packComponents(comps []graph.Component, k int, alg Algorithm) *Result {
	parts := make([]Partition, k)
	h := &loadHeap{}
	for i := 0; i < k; i++ {
		heap.Push(h, heapEntry{idx: i, load: 0})
	}
	for _, c := range comps {
		e := heap.Pop(h).(heapEntry)
		p := &parts[e.idx]
		p.Tags = p.Tags.Union(c.Tags)
		p.Load += c.Load
		e.load = p.Load
		heap.Push(h, e)
	}
	return &Result{Algorithm: alg, Parts: parts}
}

// buildDSHybrid is the Section 8.3 "lesson learned" variant: run DS, but
// first split any component whose load share exceeds opts.MaxLoadShare
// (default 2/k) into smaller pseudo-components using the SCL strategy over
// the component's member tagsets. Splitting sacrifices the zero-replication
// guarantee only inside oversized components.
func buildDSHybrid(in *Input, opts Options) *Result {
	k := opts.K
	maxShare := opts.MaxLoadShare
	if maxShare <= 0 {
		maxShare = 2 / float64(k)
	}
	comps := graph.Components(in.Sets)
	var total int64
	for _, c := range comps {
		total += c.Load
	}
	if total == 0 {
		return packComponents(comps, k, DSHybrid)
	}

	var final []graph.Component
	for _, c := range comps {
		share := float64(c.Load) / float64(total)
		if share <= maxShare || c.Sets < 2 {
			final = append(final, c)
			continue
		}
		// Split the oversized component: collect its member tagsets and
		// partition them with SCL into ceil(share/maxShare) pieces.
		pieces := int(share/maxShare) + 1
		if pieces > k {
			pieces = k
		}
		members := membersOf(in, c)
		sub := buildSetCover(NewInput(members), pieces, costLoad, phase2SCL, nil)
		for _, p := range sub.Parts {
			if p.Tags.IsEmpty() {
				continue
			}
			final = append(final, graph.Component{Tags: p.Tags, Load: p.Load})
		}
	}
	// Re-sort by load descending before packing.
	sortComponentsByLoad(final)
	return packComponents(final, k, DSHybrid)
}

// membersOf returns the window tagsets belonging to component c.
func membersOf(in *Input, c graph.Component) []stream.WeightedSet {
	var out []stream.WeightedSet
	for _, ws := range in.Sets {
		if ws.Tags.SubsetOf(c.Tags) {
			out = append(out, ws)
		}
	}
	return out
}

func sortComponentsByLoad(comps []graph.Component) {
	// Insertion-friendly: components are few; simple sort.
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0 && comps[j].Load > comps[j-1].Load; j-- {
			comps[j], comps[j-1] = comps[j-1], comps[j]
		}
	}
}

// loadHeap is a min-heap of partitions by current load, used for the
// lightest-partition selection. Ties break on partition index for
// determinism.
type heapEntry struct {
	idx  int
	load int64
}

type loadHeap []heapEntry

func (h loadHeap) Len() int { return len(h) }
func (h loadHeap) Less(i, j int) bool {
	if h[i].load != h[j].load {
		return h[i].load < h[j].load
	}
	return h[i].idx < h[j].idx
}
func (h loadHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *loadHeap) Push(x interface{}) { *h = append(*h, x.(heapEntry)) }
func (h *loadHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
