package partition

import (
	"math/rand"
	"testing"

	"repro/internal/stream"
	"repro/internal/tagset"
)

func ws(count int64, tags ...tagset.Tag) stream.WeightedSet {
	return stream.WeightedSet{Tags: tagset.New(tags...), Count: count}
}

// figure1 is the running example of the paper's Figure 1.
func figure1() []stream.WeightedSet {
	// 0=munich 1=beer 2=soccer 3=pizza 4=oktoberfest 5=bavaria
	// 6=beach 7=sunny 8=friday
	return []stream.WeightedSet{
		ws(10, 0, 1, 2),
		ws(4, 1, 3),
		ws(3, 0, 4),
		ws(2, 5, 2),
		ws(1, 6, 7),
		ws(1, 8, 7),
	}
}

func buildOrFatal(t *testing.T, sets []stream.WeightedSet, alg Algorithm, k int) *Result {
	t.Helper()
	r, err := Build(sets, Options{Algorithm: alg, K: k, Seed: 42})
	if err != nil {
		t.Fatalf("Build(%s,k=%d): %v", alg, k, err)
	}
	return r
}

// checkCoverage asserts the paper's hard requirement: every input tagset is
// fully contained in at least one partition.
func checkCoverage(t *testing.T, r *Result, sets []stream.WeightedSet) {
	t.Helper()
	for _, s := range sets {
		if s.Tags.IsEmpty() {
			continue
		}
		if !r.Covers(s.Tags) {
			t.Errorf("%s: tagset %v not covered by any partition", r.Algorithm, s.Tags)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{Algorithm: "bogus", K: 2}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := Build(nil, Options{Algorithm: DS, K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestAllAlgorithmsCoverFigure1(t *testing.T) {
	for _, alg := range []Algorithm{DS, SCC, SCL, SCI, DSHybrid} {
		for _, k := range []int{1, 2, 3, 5} {
			r := buildOrFatal(t, figure1(), alg, k)
			if r.K() != k {
				t.Errorf("%s: K = %d, want %d", alg, r.K(), k)
			}
			checkCoverage(t, r, figure1())
		}
	}
}

func TestDSZeroReplication(t *testing.T) {
	r := buildOrFatal(t, figure1(), DS, 2)
	if rep := r.Replication(); rep != 1 {
		t.Errorf("DS replication = %g, want exactly 1", rep)
	}
	// Two components of loads 19 and 2: the heavy one alone, the light one
	// on the other node.
	loads := []int64{r.Parts[0].Load, r.Parts[1].Load}
	if loads[0]+loads[1] != 21 {
		t.Errorf("loads = %v, want sum 21", loads)
	}
	found19 := loads[0] == 19 || loads[1] == 19
	if !found19 {
		t.Errorf("loads = %v, want one partition with 19", loads)
	}
}

func TestDSMoreComponentsThanK(t *testing.T) {
	// Four disjoint components with loads 8,5,4,3 packed onto 2 nodes:
	// greedy LPT gives {8,3}=11 and {5,4}=9.
	sets := []stream.WeightedSet{
		ws(8, 1, 2), ws(5, 3, 4), ws(4, 5, 6), ws(3, 7, 8),
	}
	r := buildOrFatal(t, sets, DS, 2)
	checkCoverage(t, r, sets)
	a, b := r.Parts[0].Load, r.Parts[1].Load
	if a+b != 20 {
		t.Fatalf("loads %d+%d != 20", a, b)
	}
	if max64(a, b) != 11 {
		t.Errorf("LPT packing gave loads %d,%d; want 11,9", a, b)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestDSFewerComponentsThanK(t *testing.T) {
	sets := []stream.WeightedSet{ws(5, 1, 2)}
	r := buildOrFatal(t, sets, DS, 3)
	checkCoverage(t, r, sets)
	nonEmpty := 0
	for _, p := range r.Parts {
		if !p.Tags.IsEmpty() {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Errorf("nonEmpty = %d, want 1", nonEmpty)
	}
}

func TestSetCoverAlgorithmsOnChain(t *testing.T) {
	// A chain a-b-c-d-e forms one giant component; DS cannot split it but
	// set-cover algorithms distribute the tagsets across partitions.
	sets := []stream.WeightedSet{
		ws(10, 1, 2), ws(10, 2, 3), ws(10, 3, 4), ws(10, 4, 5),
	}
	for _, alg := range []Algorithm{SCC, SCL, SCI} {
		r := buildOrFatal(t, sets, alg, 2)
		checkCoverage(t, r, sets)
		nonEmpty := 0
		for _, p := range r.Parts {
			if !p.Tags.IsEmpty() {
				nonEmpty++
			}
		}
		if nonEmpty != 2 {
			t.Errorf("%s: nonEmpty = %d, want 2", alg, nonEmpty)
		}
	}
	// DS puts everything on one node.
	r := buildOrFatal(t, sets, DS, 2)
	if r.Parts[0].Load != 40 && r.Parts[1].Load != 40 {
		t.Errorf("DS should put the whole chain on one node: %+v", r.Parts)
	}
}

func TestSCLBalancesBetterThanDS(t *testing.T) {
	// One dominant component plus small ones: SCL must have lower load
	// imbalance than DS.
	r := rand.New(rand.NewSource(5))
	var sets []stream.WeightedSet
	// Giant component: 30 tagsets chained over tags 0..30.
	for i := 0; i < 30; i++ {
		sets = append(sets, ws(int64(5+r.Intn(10)), tagset.Tag(i), tagset.Tag(i+1)))
	}
	// 10 singleton-component tagsets.
	for i := 0; i < 10; i++ {
		sets = append(sets, ws(2, tagset.Tag(100+2*i), tagset.Tag(101+2*i)))
	}
	ds := buildOrFatal(t, sets, DS, 5)
	scl := buildOrFatal(t, sets, SCL, 5)
	checkCoverage(t, ds, sets)
	checkCoverage(t, scl, sets)
	qDS := Evaluate(ds, sets)
	qSCL := Evaluate(scl, sets)
	if qSCL.Gini >= qDS.Gini {
		t.Errorf("SCL Gini %.3f should beat DS Gini %.3f on a giant component", qSCL.Gini, qDS.Gini)
	}
	// And DS must have no replication while SCL generally does.
	if ds.Replication() != 1 {
		t.Errorf("DS replication = %g", ds.Replication())
	}
	if qDS.AvgCom > qSCL.AvgCom {
		t.Errorf("DS avgCom %.3f should not exceed SCL avgCom %.3f", qDS.AvgCom, qSCL.AvgCom)
	}
}

func TestSCIDeterministicPerSeed(t *testing.T) {
	sets := figure1()
	a, _ := Build(sets, Options{Algorithm: SCI, K: 2, Seed: 7})
	b, _ := Build(sets, Options{Algorithm: SCI, K: 2, Seed: 7})
	for i := range a.Parts {
		if !a.Parts[i].Tags.Equal(b.Parts[i].Tags) {
			t.Fatal("same seed produced different SCI partitions")
		}
	}
}

func TestEmptyInput(t *testing.T) {
	for _, alg := range []Algorithm{DS, SCC, SCL, SCI, DSHybrid} {
		r := buildOrFatal(t, nil, alg, 3)
		if r.K() != 3 {
			t.Errorf("%s: K = %d", alg, r.K())
		}
		for _, p := range r.Parts {
			if !p.Tags.IsEmpty() || p.Load != 0 {
				t.Errorf("%s: non-empty partition from empty input: %+v", alg, p)
			}
		}
	}
}

func TestInputLoads(t *testing.T) {
	in := NewInput(figure1())
	if in.Total != 21 {
		t.Errorf("Total = %d, want 21", in.Total)
	}
	// Load of {munich,beer,soccer} (index 0): docs containing 0, 1 or 2 =
	// sets {0,1,2}(10) + {1,3}(4) + {0,4}(3) + {2,5}(2) = 19.
	if in.Loads[0] != 19 {
		t.Errorf("load({munich,beer,soccer}) = %d, want 19", in.Loads[0])
	}
	// Load of {beach,sunny} (index 4): {6,7}(1) + {7,8}(1) = 2.
	if in.Loads[4] != 2 {
		t.Errorf("load({beach,sunny}) = %d, want 2", in.Loads[4])
	}
	// LoadOfTags on an arbitrary set.
	if got := in.LoadOfTags(tagset.New(1)); got != 14 {
		t.Errorf("LoadOfTags({beer}) = %d, want 14", got)
	}
	if got := in.LoadOfTags(tagset.New(99)); got != 0 {
		t.Errorf("LoadOfTags(unknown) = %d, want 0", got)
	}
}

func TestEvaluateFigure1TwoPartitions(t *testing.T) {
	// The paper's example partitioning (Section 3): pr1 covers the small
	// component plus {munich,beer,soccer,oktoberfest}, pr2 the rest.
	r := &Result{Algorithm: DS, Parts: []Partition{
		{Tags: tagset.New(0, 1, 2, 4, 6, 7, 8)},
		{Tags: tagset.New(1, 3, 5, 2)},
	}}
	q := Evaluate(r, figure1())
	// Every tagset covered: {0,1,2}⊆pr1, {1,3}⊆pr2, {0,4}⊆pr1, {2,5}⊆pr2,
	// {6,7},{7,8}⊆pr1.
	if q.Coverage != 1 {
		t.Errorf("coverage = %g, want 1", q.Coverage)
	}
	// Tagsets {0,1,2} (10 docs) and {2,5} (2 docs) touch both partitions;
	// {1,3} touches pr2 and pr1 (tag 1 in both) → also both! Recompute:
	// pr1 tags {0,1,2,4,6,7,8}, pr2 {1,2,3,5}.
	// {0,1,2}: both (12... weight 10). {1,3}: pr1 has 1 → both (4).
	// {0,4}: pr1 only (3). {2,5}: both (2). {6,7}: pr1 (1). {7,8}: pr1 (1).
	// total msgs = 2*(10+4+2) + 1*(3+1+1) = 32+5 = 37; notified docs = 21.
	want := 37.0 / 21.0
	if diff := q.AvgCom - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("AvgCom = %g, want %g", q.AvgCom, want)
	}
}

func TestQualityOnUncoveringPartitions(t *testing.T) {
	// A partitioning that misses a tagset must have coverage < 1.
	r := &Result{Algorithm: DS, Parts: []Partition{{Tags: tagset.New(1, 2)}}}
	sets := []stream.WeightedSet{ws(1, 1, 2), ws(1, 3, 4)}
	q := Evaluate(r, sets)
	if q.Coverage != 0.5 {
		t.Errorf("coverage = %g, want 0.5", q.Coverage)
	}
}

func TestPlaceSingleAdditionOverlapPreference(t *testing.T) {
	r := &Result{Algorithm: DS, Parts: []Partition{
		{Tags: tagset.New(1, 2), Load: 100},
		{Tags: tagset.New(3, 4), Load: 1},
	}}
	// {2,5} overlaps partition 0; DS places by overlap despite higher load.
	if p := PlaceSingleAddition(r, tagset.New(2, 5)); p != 0 {
		t.Errorf("DS placement = %d, want 0", p)
	}
	// SCL places by load: partition 1.
	r.Algorithm = SCL
	if p := PlaceSingleAddition(r, tagset.New(2, 5)); p != 1 {
		t.Errorf("SCL placement = %d, want 1", p)
	}
}

func TestPlaceSingleAdditionTieBreaks(t *testing.T) {
	r := &Result{Algorithm: SCC, Parts: []Partition{
		{Tags: tagset.New(1), Load: 10},
		{Tags: tagset.New(2), Load: 5},
	}}
	// {1,2} overlaps both equally → lower load wins.
	if p := PlaceSingleAddition(r, tagset.New(1, 2)); p != 1 {
		t.Errorf("placement = %d, want 1 (lower load)", p)
	}
	if p := PlaceSingleAddition(&Result{}, tagset.New(1)); p != -1 {
		t.Errorf("empty result placement = %d, want -1", p)
	}
}

func TestApply(t *testing.T) {
	r := &Result{Algorithm: DS, Parts: []Partition{{Tags: tagset.New(1), Load: 2}}}
	if err := Apply(r, 0, tagset.New(2, 3), 5); err != nil {
		t.Fatal(err)
	}
	if !r.Parts[0].Tags.Equal(tagset.New(1, 2, 3)) || r.Parts[0].Load != 7 {
		t.Errorf("after apply: %+v", r.Parts[0])
	}
	if err := Apply(r, 5, tagset.New(1), 1); err == nil {
		t.Error("out-of-range apply accepted")
	}
	// After Apply the tagset must be covered.
	if !r.Covers(tagset.New(2, 3)) {
		t.Error("applied tagset not covered")
	}
}

func TestDSHybridSplitsGiantComponent(t *testing.T) {
	// One giant chain dominating the load: plain DS is stuck with Gini ~
	// high at k=4; the hybrid splits it.
	var sets []stream.WeightedSet
	for i := 0; i < 40; i++ {
		sets = append(sets, ws(10, tagset.Tag(i), tagset.Tag(i+1)))
	}
	sets = append(sets, ws(1, 100, 101), ws(1, 102, 103), ws(1, 104, 105))
	ds := buildOrFatal(t, sets, DS, 4)
	hy := buildOrFatal(t, sets, DSHybrid, 4)
	checkCoverage(t, hy, sets)
	qDS := Evaluate(ds, sets)
	qHy := Evaluate(hy, sets)
	if qHy.Gini >= qDS.Gini {
		t.Errorf("hybrid Gini %.3f should beat DS Gini %.3f", qHy.Gini, qDS.Gini)
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{Parts: []Partition{
		{Tags: tagset.New(1, 2)},
		{Tags: tagset.New(2, 3)},
	}}
	if r.TotalAssignedTags() != 4 || r.DistinctTags() != 3 {
		t.Errorf("tags: total=%d distinct=%d", r.TotalAssignedTags(), r.DistinctTags())
	}
	if rep := r.Replication(); rep != 4.0/3.0 {
		t.Errorf("Replication = %g", rep)
	}
	empty := &Result{}
	if empty.Replication() != 0 {
		t.Error("empty replication != 0")
	}
}

// TestQuickCoverageInvariant fuzzes all algorithms over random windows and
// asserts the coverage invariant plus DS's zero-replication guarantee.
func TestQuickCoverageInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(60)
		sets := make([]stream.WeightedSet, n)
		for i := range sets {
			m := 1 + r.Intn(4)
			tags := make([]tagset.Tag, m)
			for j := range tags {
				tags[j] = tagset.Tag(r.Intn(40))
			}
			sets[i] = stream.WeightedSet{Tags: tagset.New(tags...), Count: int64(1 + r.Intn(20))}
		}
		k := 1 + r.Intn(6)
		for _, alg := range []Algorithm{DS, SCC, SCL, SCI, DSHybrid} {
			res, err := Build(sets, Options{Algorithm: alg, K: k, Seed: int64(trial)})
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			for _, s := range sets {
				if !res.Covers(s.Tags) {
					t.Fatalf("trial %d %s k=%d: %v uncovered", trial, alg, k, s.Tags)
				}
			}
			if alg == DS && res.Replication() != 1 && res.DistinctTags() > 0 {
				t.Fatalf("trial %d: DS replication %g", trial, res.Replication())
			}
			q := Evaluate(res, sets)
			if q.Coverage != 1 {
				t.Fatalf("trial %d %s: Evaluate coverage %g", trial, alg, q.Coverage)
			}
			if q.Gini < 0 || q.Gini >= 1 {
				t.Fatalf("trial %d %s: Gini %g", trial, alg, q.Gini)
			}
			if q.AvgCom < 1 || q.AvgCom > float64(k) {
				t.Fatalf("trial %d %s: AvgCom %g out of [1,k=%d]", trial, alg, q.AvgCom, k)
			}
		}
	}
}
