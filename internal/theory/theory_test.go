package theory

import (
	"math"
	"math/rand"
	"testing"
)

func TestTweetLengthPMFNormalised(t *testing.T) {
	sum := 0.0
	for m := 1; m <= 8; m++ {
		sum += TweetLengthPMF(m, 8, 0.25)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("PMF sums to %g", sum)
	}
	if TweetLengthPMF(0, 8, 0.25) != 0 || TweetLengthPMF(9, 8, 0.25) != 0 {
		t.Error("out-of-range PMF not zero")
	}
	// Zipf: monotone decreasing in m.
	for m := 2; m <= 8; m++ {
		if TweetLengthPMF(m, 8, 0.25) >= TweetLengthPMF(m-1, 8, 0.25) {
			t.Errorf("PMF not decreasing at m=%d", m)
		}
	}
}

func TestExpectedEdgesScalesLinearly(t *testing.T) {
	e1 := ExpectedEdges(1000, 8, 0.25)
	e2 := ExpectedEdges(2000, 8, 0.25)
	if math.Abs(e2-2*e1) > 1e-6 {
		t.Errorf("E[M] not linear in t: %g vs %g", e1, e2)
	}
	if ExpectedEdges(0, 8, 0.25) != 0 {
		t.Error("E[M] for 0 tweets should be 0")
	}
	// A single-tag-only stream adds no edges.
	if ExpectedEdges(1000, 1, 0.25) != 0 {
		t.Error("mmax=1 should give zero edges")
	}
}

// TestPaperNPValues checks the worked example of Section 5.1: np ≈ 0.76 for
// a 5-minute window (mmax=8), np ≈ 1.52 for 10 minutes (mmax=8), and
// np ≈ 0.85 for 10 minutes with mmax=6. The paper reports rounded values;
// we allow ±0.06.
func TestPaperNPValues(t *testing.T) {
	sc := DefaultScenario()
	cases := []struct {
		minutes float64
		mmax    int
		want    float64
	}{
		{5, 8, 0.76},
		{10, 8, 1.52},
		{10, 6, 0.85},
	}
	for _, c := range cases {
		sc.WindowMinutes = c.minutes
		sc.MMax = c.mmax
		got := sc.NP()
		if math.Abs(got-c.want) > 0.06 {
			t.Errorf("np(%gmin, mmax=%d) = %.3f, want ≈ %.2f", c.minutes, c.mmax, got, c.want)
		}
	}
}

// TestMeasuredNP checks the paper's empirical correction: ~5.5M distinct
// pairs/day gives np ≈ 0.11 for a 10-minute window — far below the
// independence model's 1.52.
func TestMeasuredNP(t *testing.T) {
	sc := DefaultScenario()
	sc.WindowMinutes = 10
	got := sc.MeasuredNP(5_500_000)
	if math.Abs(got-0.11) > 0.03 {
		t.Errorf("measured np = %.3f, want ≈ 0.11", got)
	}
	if model := sc.NP(); got >= model {
		t.Errorf("measured np %.3f should be far below model np %.3f", got, model)
	}
}

func TestGiantComponentThreshold(t *testing.T) {
	if GiantComponentLikely(0.9) {
		t.Error("np=0.9 should not predict giant component")
	}
	if !GiantComponentLikely(1.5) {
		t.Error("np=1.5 should predict giant component")
	}
}

func TestNPEdgeCases(t *testing.T) {
	if NP(1, 100) != 0 || NP(0, 5) != 0 {
		t.Error("degenerate vocabulary should give np=0")
	}
}

func TestExpectedCommunicationBounds(t *testing.T) {
	// E[comm] must lie in [0, k]; dense regimes (many formation tweets per
	// partition) stay at or above 1.
	cases := []struct {
		v, n, k int64
		m       int
	}{
		{600000, 100000, 10, 3},
		{100, 1000, 5, 2},
		{50, 10000, 20, 4},
	}
	for _, c := range cases {
		e := ExpectedCommunication(c.v, c.n, c.k, c.m)
		if e < 0 || e > float64(c.k)+1e-9 {
			t.Errorf("E[comm](%+v) = %g out of [0,k]", c, e)
		}
	}
}

// TestCommunicationRegimes checks the qualitative claim of Section 5.2:
// small vocabulary + many tags per tweet ≈ broadcast (knockout blow), large
// vocabulary + few tags per tweet ≈ tractable.
func TestCommunicationRegimes(t *testing.T) {
	// Small vocabulary, long tweets: nearly all k partitions touched.
	knockout := ExpectedCommunication(40, 10000, 10, 8)
	if knockout < 9.5 {
		t.Errorf("small-vocab E[comm] = %g, want ≈ 10 (broadcast)", knockout)
	}
	// Twitter regime: vast vocabulary, couple of tags.
	twitter := ExpectedCommunication(600_000, 100_000, 10, 2)
	if twitter > 3 {
		t.Errorf("twitter-regime E[comm] = %g, want small", twitter)
	}
	// In the sparse regime a random tweet can miss every partition, so the
	// model's expectation may drop below 1 — but never below 0.
	if twitter < 0 {
		t.Errorf("E[comm] negative: %g", twitter)
	}
}

func TestExpectedCommunicationMonotoneInK(t *testing.T) {
	prev := 0.0
	for _, k := range []int64{2, 5, 10, 20} {
		e := ExpectedCommunication(10_000, 50_000, k, 3)
		if e < prev {
			t.Errorf("E[comm] decreased at k=%d: %g < %g", k, e, prev)
		}
		prev = e
	}
}

func TestExpectedCommunicationDegenerate(t *testing.T) {
	if got := ExpectedCommunication(0, 100, 10, 3); got != 1 {
		t.Errorf("v=0 → %g, want 1", got)
	}
	if got := ExpectedCommunication(100, 0, 10, 3); got != 1 {
		t.Errorf("n=0 → %g, want 1", got)
	}
	if got := ExpectedCommunication(100, 10, 0, 3); got != 0 {
		t.Errorf("k=0 → %g, want 0", got)
	}
	// m > v-m forces every partition to be touched.
	if got := ExpectedCommunication(10, 1000, 4, 6); math.Abs(got-4) > 1e-9 {
		t.Errorf("m>v-m → %g, want k=4", got)
	}
}

func TestCommunicationLoadNormalisation(t *testing.T) {
	if got := CommunicationLoad(40, 10000, 10, 8); got < 0.9 {
		t.Errorf("broadcast regime load = %g, want ≈ 1", got)
	}
	if got := CommunicationLoad(600_000, 1000, 10, 2); got > 0.2 {
		t.Errorf("sparse regime load = %g, want ≈ 0", got)
	}
	if CommunicationLoad(100, 100, 1, 2) != 0 {
		t.Error("k=1 load should be 0")
	}
}

func TestMissProbability(t *testing.T) {
	// v=4, m=1: C(3,1)/C(4,1) = 3/4.
	if got := missProbability(4, 1); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("missProbability(4,1) = %g, want 0.75", got)
	}
	// v=6, m=2: C(4,2)/C(6,2) = 6/15 = 0.4.
	if got := missProbability(6, 2); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("missProbability(6,2) = %g, want 0.4", got)
	}
	if got := missProbability(4, 3); got != 0 {
		t.Errorf("impossible avoidance = %g, want 0", got)
	}
}

func TestScenarioString(t *testing.T) {
	if s := DefaultScenario().String(); s == "" {
		t.Error("empty String()")
	}
}

// TestExpectedCommunicationMonteCarlo validates the Section 5.2 model
// against simulation: k random equal-sized partitions are formed from n
// random m-tag tweets over a v-tag vocabulary, and the measured mean
// number of partitions touched by fresh random tweets is compared with the
// closed form.
func TestExpectedCommunicationMonteCarlo(t *testing.T) {
	const (
		v = 200
		n = 500
		k = 5
		m = 3
	)
	r := rand.New(rand.NewSource(77))
	drawTags := func() []int {
		seen := map[int]bool{}
		out := make([]int, 0, m)
		for len(out) < m {
			tg := r.Intn(v)
			if !seen[tg] {
				seen[tg] = true
				out = append(out, tg)
			}
		}
		return out
	}

	const trials = 60
	var measured float64
	var samples int
	for trial := 0; trial < trials; trial++ {
		// Form k partitions from n tweets, n/k tweets each.
		parts := make([]map[int]bool, k)
		for i := range parts {
			parts[i] = map[int]bool{}
		}
		for i := 0; i < n; i++ {
			p := parts[i%k]
			for _, tg := range drawTags() {
				p[tg] = true
			}
		}
		for q := 0; q < 50; q++ {
			tags := drawTags()
			touched := 0
			for _, p := range parts {
				for _, tg := range tags {
					if p[tg] {
						touched++
						break
					}
				}
			}
			measured += float64(touched)
			samples++
		}
	}
	measured /= float64(samples)
	model := ExpectedCommunication(v, n, k, m)
	if model <= 0 {
		t.Fatalf("model = %g", model)
	}
	rel := math.Abs(measured-model) / model
	if rel > 0.1 {
		t.Errorf("Monte Carlo %.3f vs model %.3f (rel err %.3f)", measured, model, rel)
	}
}
