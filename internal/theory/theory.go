// Package theory implements the analytical models of Section 5: the
// Zipf-distributed tweet-length frequency f(m, mmax, s), the expected number
// of tag-graph edges E[M], the Erdős–Rényi np criterion that predicts
// whether the Disjoint Sets algorithm faces a giant connected component
// (Section 5.1), and the expected communication load of random equal-sized
// partitions (Section 5.2).
package theory

import (
	"fmt"
	"math"
)

// TweetLengthPMF returns f(m, mmax, s) = (1/m^s) / sum_{i=1..mmax} 1/i^s,
// the probability that a tweet carries exactly m tags under the paper's
// Zipf model (skew s = 0.25 measured on Twitter data). m outside
// {1..mmax} has probability 0.
func TweetLengthPMF(m, mmax int, s float64) float64 {
	if m < 1 || m > mmax {
		return 0
	}
	norm := 0.0
	for i := 1; i <= mmax; i++ {
		norm += math.Pow(float64(i), -s)
	}
	return math.Pow(float64(m), -s) / norm
}

// ExpectedEdges returns E[M], the expected number of tag-pair edges added to
// the co-occurrence graph by t distinct tweets, under the independence
// model of Section 5.1:
//
//	E[M] = t * sum_{m=2..mmax} f(m, mmax, s) * C(m, 2)
func ExpectedEdges(t int64, mmax int, s float64) float64 {
	sum := 0.0
	for m := 2; m <= mmax; m++ {
		sum += TweetLengthPMF(m, mmax, s) * float64(m*(m-1)/2)
	}
	return float64(t) * sum
}

// NP returns the Erdős–Rényi connectivity parameter n*p for a G(n, M)
// graph with n vertices (tags) and M edges: p = M / C(n,2), so
// np = 2M/(n-1). For np < 1 the largest component is O(log n); for np > 1 a
// giant component is likely — the regime in which plain DS partitioning
// degrades.
func NP(n int64, edges float64) float64 {
	if n < 2 {
		return 0
	}
	return 2 * edges / float64(n-1)
}

// NPForWindow combines the two: the np value of the tag graph after
// observing t distinct tweets over a vocabulary of n distinct tags, with
// tweet lengths Zipf(s) capped at mmax.
func NPForWindow(t, n int64, mmax int, s float64) float64 {
	return NP(n, ExpectedEdges(t, mmax, s))
}

// GiantComponentLikely applies the Erdős–Rényi threshold.
func GiantComponentLikely(np float64) bool { return np > 1 }

// ExpectedCommunication returns the expected number of partitions a single
// tweet touches, under the random-partition model of Section 5.2:
//
//	E[comm] = k * (1 - (C(v-m, m)/C(v, m))^(n/k))
//
// with vocabulary size v, n tweets over which partitions were formed, k
// partitions, and m tags per tweet. A value of 1 means zero communication
// overhead; k means full broadcast. It returns k when m > v-m (the ratio's
// numerator vanishes: every partition is touched).
func ExpectedCommunication(v, n, k int64, m int) float64 {
	if k <= 0 {
		return 0
	}
	if v <= 0 || m <= 0 || n <= 0 {
		return 1
	}
	ratio := missProbability(v, m)
	return float64(k) * (1 - math.Pow(ratio, float64(n)/float64(k)))
}

// missProbability returns C(v-m, m) / C(v, m): the probability that a random
// m-subset of the vocabulary avoids a fixed disjoint m-subset.
// Computed in log space to stay stable for large v.
func missProbability(v int64, m int) float64 {
	if int64(m) > v-int64(m) {
		return 0
	}
	// C(v-m,m)/C(v,m) = prod_{i=0..m-1} (v-2m+1+i ... ) — use lgamma.
	lg := func(x float64) float64 { r, _ := math.Lgamma(x); return r }
	num := lg(float64(v-int64(m))+1) - lg(float64(int64(m))+1) - lg(float64(v-2*int64(m))+1)
	den := lg(float64(v)+1) - lg(float64(int64(m))+1) - lg(float64(v-int64(m))+1)
	return math.Exp(num - den)
}

// CommunicationLoad is ExpectedCommunication normalised to [0,1] overhead:
// (E[comm]-1)/(k-1). 0 means one partition per tweet (no redundancy), 1
// means broadcast to all.
func CommunicationLoad(v, n, k int64, m int) float64 {
	if k <= 1 {
		return 0
	}
	return (ExpectedCommunication(v, n, k, m) - 1) / float64(k-1)
}

// PaperScenario reproduces the worked example of Section 5.1: the full
// Twitter stream assumed to have 600,000 distinct tags and 7,000,000
// distinct tweets per day, with a window of the given minutes.
type PaperScenario struct {
	DistinctTagsPerDay   int64
	DistinctTweetsPerDay int64
	WindowMinutes        float64
	MMax                 int
	Skew                 float64
}

// DefaultScenario returns the paper's worst-case full-stream parameters.
func DefaultScenario() PaperScenario {
	return PaperScenario{
		DistinctTagsPerDay:   600_000,
		DistinctTweetsPerDay: 7_000_000,
		WindowMinutes:        5,
		MMax:                 8,
		Skew:                 0.25,
	}
}

// NP returns the model's np value for the scenario's window: tweets scale
// with window length; the tag vocabulary is taken as the per-day distinct
// tags (the paper's conservative choice).
func (sc PaperScenario) NP() float64 {
	frac := sc.WindowMinutes / (24 * 60)
	t := int64(float64(sc.DistinctTweetsPerDay) * frac)
	return NPForWindow(t, sc.DistinctTagsPerDay, sc.MMax, sc.Skew)
}

// MeasuredNP returns np when the number of edges is taken from an observed
// distinct-pairs-per-day count instead of the independence model (the
// paper measures ~5.5M distinct pairs/day → np = 0.11 per 10 minutes).
func (sc PaperScenario) MeasuredNP(distinctPairsPerDay int64) float64 {
	frac := sc.WindowMinutes / (24 * 60)
	edges := float64(distinctPairsPerDay) * frac
	return NP(sc.DistinctTagsPerDay, edges)
}

// String renders the scenario compactly.
func (sc PaperScenario) String() string {
	return fmt.Sprintf("tags=%d tweets=%d window=%gmin mmax=%d s=%g",
		sc.DistinctTagsPerDay, sc.DistinctTweetsPerDay, sc.WindowMinutes, sc.MMax, sc.Skew)
}
