// Package setindex implements index structures for set-valued attributes,
// the design space behind the Disseminator's routing decision (Section
// 3.3): given a document's tagset, find every Calculator whose assigned tag
// set intersects it. The paper follows Helmer & Moerkotte's study in
// choosing an inverted index; this package provides the competitors so the
// choice is measurable (BenchmarkAblationIndex):
//
//   - Scan: sequential scan with merge-based intersection tests
//   - Signature: superimposed-coding signature file (bitwise filter with
//     false positives, verified against the stored sets)
//   - Inverted: tag → owner postings (the winner)
//
// All three implement Index and return identical results.
package setindex

import (
	"fmt"

	"repro/internal/tagset"
)

// Index answers overlap queries against a fixed collection of tag sets.
type Index interface {
	// Add registers a set under the caller-chosen id. Adding the same id
	// twice is a programmer error and panics.
	Add(id int, s tagset.Set)
	// Intersecting appends to dst the ids (ascending) of all registered
	// sets sharing at least one tag with q, and returns dst.
	Intersecting(q tagset.Set, dst []int) []int
	// Len reports the number of registered sets.
	Len() int
}

// Scan is the baseline: a list of sets, each tested with a linear merge.
type Scan struct {
	ids  []int
	sets []tagset.Set
	seen map[int]struct{}
}

// NewScan returns an empty sequential-scan index.
func NewScan() *Scan { return &Scan{seen: make(map[int]struct{})} }

// Add implements Index.
func (x *Scan) Add(id int, s tagset.Set) {
	x.mustFresh(id)
	x.ids = append(x.ids, id)
	x.sets = append(x.sets, s)
}

func (x *Scan) mustFresh(id int) {
	if _, dup := x.seen[id]; dup {
		panic(fmt.Sprintf("setindex: duplicate id %d", id))
	}
	x.seen[id] = struct{}{}
}

// Intersecting implements Index.
func (x *Scan) Intersecting(q tagset.Set, dst []int) []int {
	for i, s := range x.sets {
		if q.Intersects(s) {
			dst = append(dst, x.ids[i])
		}
	}
	return sortInts(dst)
}

// Len implements Index.
func (x *Scan) Len() int { return len(x.ids) }

// Signature is a superimposed-coding signature file: each set is summarised
// by a fixed-width bit signature (OR of its tags' hash bits); a query first
// compares signatures (any shared bit → candidate) and verifies candidates
// exactly.
type Signature struct {
	words int
	ids   []int
	sets  []tagset.Set
	sigs  [][]uint64
	seen  map[int]struct{}
}

// NewSignature returns a signature file with the given signature width in
// 64-bit words (wider = fewer false candidates). It panics for words < 1.
func NewSignature(words int) *Signature {
	if words < 1 {
		panic(fmt.Sprintf("setindex: signature words = %d", words))
	}
	return &Signature{words: words, seen: make(map[int]struct{})}
}

// tagBits sets b bits per tag (superimposed coding with b = 2).
func (x *Signature) signature(s tagset.Set) []uint64 {
	sig := make([]uint64, x.words)
	bits := uint64(x.words * 64)
	for _, tg := range s {
		h := uint64(tg) * 0x9e3779b97f4a7c15
		for b := 0; b < 2; b++ {
			pos := (h >> (b * 16)) % bits
			sig[pos/64] |= 1 << (pos % 64)
		}
	}
	return sig
}

// Add implements Index.
func (x *Signature) Add(id int, s tagset.Set) {
	if _, dup := x.seen[id]; dup {
		panic(fmt.Sprintf("setindex: duplicate id %d", id))
	}
	x.seen[id] = struct{}{}
	x.ids = append(x.ids, id)
	x.sets = append(x.sets, s)
	x.sigs = append(x.sigs, x.signature(s))
}

// Intersecting implements Index.
func (x *Signature) Intersecting(q tagset.Set, dst []int) []int {
	qsig := x.signature(q)
	for i, sig := range x.sigs {
		hit := false
		for w := range sig {
			if sig[w]&qsig[w] != 0 {
				hit = true
				break
			}
		}
		// Candidate: verify exactly (signatures give false positives).
		if hit && q.Intersects(x.sets[i]) {
			dst = append(dst, x.ids[i])
		}
	}
	return sortInts(dst)
}

// Len implements Index.
func (x *Signature) Len() int { return len(x.ids) }

// CandidateRate reports, for diagnostics, the fraction of stored sets whose
// signature matches q's (before verification).
func (x *Signature) CandidateRate(q tagset.Set) float64 {
	if len(x.sigs) == 0 {
		return 0
	}
	qsig := x.signature(q)
	n := 0
	for _, sig := range x.sigs {
		for w := range sig {
			if sig[w]&qsig[w] != 0 {
				n++
				break
			}
		}
	}
	return float64(n) / float64(len(x.sigs))
}

// Inverted is the tag → owners postings index the Disseminator uses.
type Inverted struct {
	postings map[tagset.Tag][]int
	n        int
	seen     map[int]struct{}
}

// NewInverted returns an empty inverted index.
func NewInverted() *Inverted {
	return &Inverted{postings: make(map[tagset.Tag][]int), seen: make(map[int]struct{})}
}

// Add implements Index.
func (x *Inverted) Add(id int, s tagset.Set) {
	if _, dup := x.seen[id]; dup {
		panic(fmt.Sprintf("setindex: duplicate id %d", id))
	}
	x.seen[id] = struct{}{}
	for _, tg := range s {
		x.postings[tg] = append(x.postings[tg], id)
	}
	x.n++
}

// Intersecting implements Index.
func (x *Inverted) Intersecting(q tagset.Set, dst []int) []int {
	seen := make(map[int]struct{}, 8)
	for _, tg := range q {
		for _, id := range x.postings[tg] {
			if _, ok := seen[id]; !ok {
				seen[id] = struct{}{}
				dst = append(dst, id)
			}
		}
	}
	return sortInts(dst)
}

// Len implements Index.
func (x *Inverted) Len() int { return x.n }

func sortInts(v []int) []int {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
	return v
}
