package setindex

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/tagset"
)

func builders() map[string]func() Index {
	return map[string]func() Index{
		"scan":      func() Index { return NewScan() },
		"signature": func() Index { return NewSignature(2) },
		"inverted":  func() Index { return NewInverted() },
	}
}

func TestBasicOverlapQuery(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			x := build()
			x.Add(0, tagset.New(1, 2, 3))
			x.Add(1, tagset.New(3, 4))
			x.Add(2, tagset.New(9))
			if x.Len() != 3 {
				t.Fatalf("Len = %d", x.Len())
			}
			got := x.Intersecting(tagset.New(3), nil)
			if !reflect.DeepEqual(got, []int{0, 1}) {
				t.Errorf("query {3} = %v", got)
			}
			got = x.Intersecting(tagset.New(7, 8), nil)
			if len(got) != 0 {
				t.Errorf("query {7,8} = %v", got)
			}
			got = x.Intersecting(tagset.New(2, 9), nil)
			if !reflect.DeepEqual(got, []int{0, 2}) {
				t.Errorf("query {2,9} = %v", got)
			}
		})
	}
}

func TestDuplicateIDPanics(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			x := build()
			x.Add(5, tagset.New(1))
			defer func() {
				if recover() == nil {
					t.Error("duplicate id accepted")
				}
			}()
			x.Add(5, tagset.New(2))
		})
	}
}

func TestSignatureValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("words=0 accepted")
		}
	}()
	NewSignature(0)
}

func TestSignatureCandidateRate(t *testing.T) {
	x := NewSignature(1) // narrow: false candidates expected
	for i := 0; i < 100; i++ {
		x.Add(i, tagset.New(tagset.Tag(1000+i)))
	}
	rate := x.CandidateRate(tagset.New(1))
	if rate < 0 || rate > 1 {
		t.Errorf("rate = %g", rate)
	}
	// Wider signatures must not increase the candidate rate.
	wide := NewSignature(8)
	for i := 0; i < 100; i++ {
		wide.Add(i, tagset.New(tagset.Tag(1000+i)))
	}
	if wr := wide.CandidateRate(tagset.New(1)); wr > rate+1e-9 {
		t.Errorf("wider signature has higher candidate rate: %g > %g", wr, rate)
	}
}

// TestQuickAllIndexesAgree cross-checks the three structures on random
// workloads: identical results for every query.
func TestQuickAllIndexesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		scan, sig, inv := NewScan(), NewSignature(2), NewInverted()
		n := 1 + r.Intn(60)
		for id := 0; id < n; id++ {
			m := 1 + r.Intn(5)
			tags := make([]tagset.Tag, m)
			for j := range tags {
				tags[j] = tagset.Tag(r.Intn(40))
			}
			s := tagset.New(tags...)
			scan.Add(id, s)
			sig.Add(id, s)
			inv.Add(id, s)
		}
		for q := 0; q < 20; q++ {
			m := 1 + r.Intn(4)
			tags := make([]tagset.Tag, m)
			for j := range tags {
				tags[j] = tagset.Tag(r.Intn(45))
			}
			query := tagset.New(tags...)
			a := scan.Intersecting(query, nil)
			b := sig.Intersecting(query, nil)
			c := inv.Intersecting(query, nil)
			if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(a, c) {
				t.Fatalf("trial %d query %v: scan=%v signature=%v inverted=%v",
					trial, query, a, b, c)
			}
		}
	}
}

func TestIntersectingAppendsToDst(t *testing.T) {
	x := NewInverted()
	x.Add(3, tagset.New(1))
	dst := []int{99}
	got := x.Intersecting(tagset.New(1), dst)
	if len(got) != 2 || got[1] != 99 && got[0] != 99 {
		t.Errorf("dst not preserved: %v", got)
	}
}
