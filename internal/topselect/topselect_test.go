package topselect

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSelectMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	before := func(a, b int) bool { return a > b }
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(200)
		k := rng.Intn(32)
		items := make([]int, n)
		for i := range items {
			items[i] = rng.Intn(50) // dense in ties
		}
		want := append([]int(nil), items...)
		sort.Sort(sort.Reverse(sort.IntSlice(want)))
		if k > 0 && k < len(want) {
			want = want[:k]
		}
		got := Select(items, k, before)
		sort.Sort(sort.Reverse(sort.IntSlice(got)))
		if len(got) != len(want) {
			t.Fatalf("n=%d k=%d: got %d items, want %d", n, k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d k=%d: got %v, want %v", n, k, got, want)
			}
		}
	}
}

func TestSelectEdgeCases(t *testing.T) {
	before := func(a, b int) bool { return a > b }
	if got := Select([]int{1, 2}, 0, before); len(got) != 2 {
		t.Errorf("k=0 should return all, got %v", got)
	}
	if got := Select([]int{1, 2}, 5, before); len(got) != 2 {
		t.Errorf("k>len should return all, got %v", got)
	}
	if got := Select(nil, 3, before); got != nil {
		t.Errorf("nil input: %v", got)
	}
}
