// Package topselect provides bounded top-k selection, the primitive behind
// every "best k of n" read path in the system (the Tracker's coefficient
// top-k, the trend detector's per-period top trends).
package topselect

// Select retains the best k elements of items under before, reusing the
// slice's backing array; the survivors' order is unspecified. k <= 0 or a
// list already within the bound returns items unchanged. The classic
// bounded selection: a min-heap of the best k seen (root = worst kept),
// whose root is displaced whenever a better candidate arrives — O(n log k)
// with no allocation.
func Select[T any](items []T, k int, before func(a, b T) bool) []T {
	if k <= 0 || len(items) <= k {
		return items
	}
	h := items[:k:k]
	down := func(i int) {
		for {
			worst := i
			if l := 2*i + 1; l < k && before(h[worst], h[l]) {
				worst = l
			}
			if r := 2*i + 2; r < k && before(h[worst], h[r]) {
				worst = r
			}
			if worst == i {
				return
			}
			h[i], h[worst] = h[worst], h[i]
			i = worst
		}
	}
	for i := k/2 - 1; i >= 0; i-- {
		down(i)
	}
	for _, x := range items[k:] {
		if before(x, h[0]) {
			h[0] = x
			down(0)
		}
	}
	return h
}
