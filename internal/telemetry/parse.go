package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed time series value. For histogram families the
// sample names carry the _bucket/_sum/_count suffixes verbatim.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one parsed metric family.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// ParseText parses Prometheus text exposition format 0.0.4 as produced by
// WriteText (and by real Prometheus clients): # HELP/# TYPE headers,
// escaped label values, histogram suffix series. Sample lines must follow
// their family's header — the strictness keeps malformed scrapes from
// passing tests silently.
func ParseText(r io.Reader) (map[string]*Family, error) {
	fams := make(map[string]*Family)
	var cur *Family
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "#")
			rest = strings.TrimLeft(rest, " ")
			switch {
			case strings.HasPrefix(rest, "HELP "):
				name, text, ok := strings.Cut(strings.TrimPrefix(rest, "HELP "), " ")
				if !ok {
					text = ""
				}
				cur = ensureFamily(fams, name)
				cur.Help = unescapeHelp(text)
			case strings.HasPrefix(rest, "TYPE "):
				name, typ, ok := strings.Cut(strings.TrimPrefix(rest, "TYPE "), " ")
				if !ok {
					return nil, fmt.Errorf("line %d: TYPE without a type", lineNo)
				}
				cur = ensureFamily(fams, name)
				cur.Type = typ
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if cur == nil || !belongsTo(cur, s.Name) {
			return nil, fmt.Errorf("line %d: sample %s outside its family header", lineNo, s.Name)
		}
		cur.Samples = append(cur.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

func ensureFamily(fams map[string]*Family, name string) *Family {
	if f, ok := fams[name]; ok {
		return f
	}
	f := &Family{Name: name}
	fams[name] = f
	return f
}

// belongsTo reports whether a sample name belongs to family f, allowing
// the histogram suffix series.
func belongsTo(f *Family, sample string) bool {
	if sample == f.Name {
		return true
	}
	if f.Type == "histogram" {
		switch sample {
		case f.Name + "_bucket", f.Name + "_sum", f.Name + "_count":
			return true
		}
	}
	return false
}

// parseSample parses `name{k="v",...} value` or `name value`.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		var err error
		rest, err = parseLabels(rest[1:], s.Labels)
		if err != nil {
			return s, err
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("sample %s: bad value: %w", s.Name, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes `k="v",...}` from in, filling into, and returns
// the remainder after the closing brace.
func parseLabels(in string, into map[string]string) (string, error) {
	for {
		in = strings.TrimLeft(in, " ,")
		if in == "" {
			return "", fmt.Errorf("unterminated label set")
		}
		if in[0] == '}' {
			return in[1:], nil
		}
		eq := strings.IndexByte(in, '=')
		if eq < 0 {
			return "", fmt.Errorf("label without '='")
		}
		key := strings.TrimSpace(in[:eq])
		if !validName(key) {
			return "", fmt.Errorf("invalid label name %q", key)
		}
		in = strings.TrimLeft(in[eq+1:], " ")
		if in == "" || in[0] != '"' {
			return "", fmt.Errorf("label %s: unquoted value", key)
		}
		val, rest, err := parseQuoted(in[1:])
		if err != nil {
			return "", fmt.Errorf("label %s: %w", key, err)
		}
		into[key] = val
		in = rest
	}
}

// parseQuoted consumes an escaped label value up to the closing quote and
// returns (value, remainder).
func parseQuoted(in string) (string, string, error) {
	var b strings.Builder
	for i := 0; i < len(in); i++ {
		switch in[i] {
		case '"':
			return b.String(), in[i+1:], nil
		case '\\':
			i++
			if i >= len(in) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch in[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(in[i])
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", in[i])
			}
		default:
			b.WriteByte(in[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value")
}

func unescapeHelp(s string) string {
	if !strings.Contains(s, "\\") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\':
				b.WriteByte('\\')
			default:
				b.WriteByte('\\')
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// HistogramData is the decoded bucket series of one histogram time
// series: parallel ascending upper bounds (seconds; the +Inf bucket is
// dropped, Count covers it) and cumulative counts, plus _sum/_count.
type HistogramData struct {
	Les   []float64
	Cum   []float64
	Sum   float64
	Count float64
}

// Histogram extracts the bucket series whose labels (ignoring le) equal
// match exactly. Returns false if the family has no such series.
func (f *Family) Histogram(match map[string]string) (*HistogramData, bool) {
	d := &HistogramData{}
	type bkt struct {
		le float64
		v  float64
	}
	var bkts []bkt
	found := false
	for _, s := range f.Samples {
		if !labelsMatch(s.Labels, match) {
			continue
		}
		switch s.Name {
		case f.Name + "_sum":
			d.Sum = s.Value
			found = true
		case f.Name + "_count":
			d.Count = s.Value
			found = true
		case f.Name + "_bucket":
			le := s.Labels["le"]
			if le == "+Inf" {
				continue
			}
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			bkts = append(bkts, bkt{le: v, v: s.Value})
			found = true
		}
	}
	if !found {
		return nil, false
	}
	sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
	for _, b := range bkts {
		d.Les = append(d.Les, b.le)
		d.Cum = append(d.Cum, b.v)
	}
	return d, true
}

// Quantile estimates quantile q from the cumulative buckets (upper-bound
// semantics matching Histogram.Quantile), in seconds.
func (d *HistogramData) Quantile(q float64) float64 {
	if d.Count <= 0 {
		return 0
	}
	rank := q*d.Count + 0.5
	if rank < 1 {
		rank = 1
	}
	if rank > d.Count {
		rank = d.Count
	}
	for i, c := range d.Cum {
		if c >= rank {
			return d.Les[i]
		}
	}
	if n := len(d.Les); n > 0 {
		return d.Les[n-1]
	}
	return 0
}

// labelsMatch reports whether got equals want ignoring the le label.
func labelsMatch(got, want map[string]string) bool {
	n := 0
	for k, v := range got {
		if k == "le" {
			continue
		}
		if want[k] != v {
			return false
		}
		n++
	}
	return n == len(want)
}
