// Package telemetry is the pipeline-wide instrumentation layer: a
// zero-dependency metrics registry (atomic counters, callback gauges, and
// concurrent log-bucketed latency histograms) with Prometheus text-format
// exposition (text/plain; version=0.0.4) and a matching parser for tests
// and the load harness.
//
// Naming convention: tagcorr_<subsystem>_<name>_<unit>, e.g.
// tagcorr_tracker_heap_entries or tagcorr_stage_doc_coefficient_seconds.
// Registration happens once at wiring time and panics on programmer error
// (bad name, kind mismatch, duplicate label set); recording and scraping
// are lock-free on the hot path and never block each other.
package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// processStart anchors the monotonic ingest clock: Now() is nanoseconds
// since process start on the monotonic clock, cheap enough to stamp on
// every document and immune to wall-clock steps.
var processStart = time.Now()

// Now returns monotonic nanoseconds since process start. Document ingest
// times are stamped with it; stage latencies are Now()-stamp.
func Now() int64 { return int64(time.Since(processStart)) }

// Since returns the elapsed duration from a stamp taken with Now.
func Since(stamp int64) time.Duration { return time.Duration(Now() - stamp) }

// Wall converts a stamp taken with Now back to an approximate wall-clock
// time (exact up to wall-clock steps since process start). Flight-recorder
// dumps use it so operators can line events up with external logs.
func Wall(stamp int64) time.Time { return processStart.Add(time.Duration(stamp)) }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram is a concurrent log-bucketed latency histogram: geometric
// buckets (ratio 1.2) from 1µs to ~60s give bounded memory and lock-free
// recording at ≤20% quantile resolution — plenty for p50/p95/p99 on
// request- and stage-scale latencies. Recording races only on atomics, so
// one Histogram is shared by every goroutine touching a stage.
type Histogram struct {
	counts []atomic.Int64
	count  atomic.Int64
	sumNS  atomic.Int64
	maxNS  atomic.Int64
}

// bounds holds the bucket upper bounds in nanoseconds, ascending.
var bounds = func() []int64 {
	const (
		start = int64(time.Microsecond)
		ratio = 1.2
		limit = int64(60 * time.Second)
	)
	var b []int64
	f := float64(start)
	for int64(f) < limit {
		b = append(b, int64(f))
		f *= ratio
	}
	return append(b, limit)
}()

// leStrings caches the exposition `le` label values (bounds in seconds).
var leStrings = func() []string {
	s := make([]string, len(bounds))
	for i, b := range bounds {
		s[i] = strconv.FormatFloat(float64(b)/1e9, 'g', -1, 64)
	}
	return s
}()

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Int64, len(bounds))}
}

// Record adds one latency sample.
func (h *Histogram) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := sort.Search(len(bounds), func(i int) bool { return bounds[i] >= ns })
	if i == len(bounds) {
		i--
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() int64 { return h.count.Load() }

// SumNS returns the sum of all samples in nanoseconds.
func (h *Histogram) SumNS() int64 { return h.sumNS.Load() }

// MaxNS returns the largest sample in nanoseconds.
func (h *Histogram) MaxNS() int64 { return h.maxNS.Load() }

// Quantile returns the latency at quantile q in [0,1] (bucket upper
// bound), or 0 with no samples.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			return time.Duration(bounds[i])
		}
	}
	return time.Duration(bounds[len(bounds)-1])
}

// cumulative returns the cumulative bucket counts plus the consistent
// total (the +Inf bucket). Summing the per-bucket atomics in one pass
// keeps the series non-decreasing and makes _count equal the +Inf bucket
// even while writers race with the scrape.
func (h *Histogram) cumulative() (cum []int64, total int64) {
	cum = make([]int64, len(h.counts))
	for i := range h.counts {
		total += h.counts[i].Load()
		cum[i] = total
	}
	return cum, total
}

// Labels is a metric's label set. Registration sorts keys, so map order
// does not matter; the rendered form is deterministic.
type Labels map[string]string

type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// member is one (family, label set) time series.
type member struct {
	labels    string // pre-rendered `k="v",k2="v2"` (no braces), "" if unlabeled
	counter   *Counter
	counterFn func() int64
	gaugeFn   func() float64
	hist      *Histogram
}

// family groups the members sharing one metric name.
type family struct {
	name    string
	help    string
	kind    kind
	members []*member
	seen    map[string]bool // rendered label strings, for duplicate detection
}

// Registry holds registered metric families and renders them in
// Prometheus text exposition format. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter registers and returns a new owned counter time series.
func (r *Registry) Counter(name, help string, ls Labels) *Counter {
	c := &Counter{}
	r.register(name, help, counterKind, ls, &member{counter: c})
	return c
}

// CounterFunc registers a counter time series whose value is read from fn
// at scrape time — for monotone totals the pipeline already tracks as
// plain atomics.
func (r *Registry) CounterFunc(name, help string, ls Labels, fn func() int64) {
	r.register(name, help, counterKind, ls, &member{counterFn: fn})
}

// GaugeFunc registers a gauge time series whose value is read from fn at
// scrape time.
func (r *Registry) GaugeFunc(name, help string, ls Labels, fn func() float64) {
	r.register(name, help, gaugeKind, ls, &member{gaugeFn: fn})
}

// Histogram registers and returns a new histogram time series.
func (r *Registry) Histogram(name, help string, ls Labels) *Histogram {
	h := NewHistogram()
	r.register(name, help, histogramKind, ls, &member{hist: h})
	return h
}

// Observe registers an existing histogram as a time series, so a
// histogram owned by the pipeline (e.g. a stage-latency histogram) can be
// exposed without copying.
func (r *Registry) Observe(name, help string, ls Labels, h *Histogram) {
	r.register(name, help, histogramKind, ls, &member{hist: h})
}

func (r *Registry) register(name, help string, k kind, ls Labels, m *member) {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for key := range ls {
		if !validName(key) {
			panic(fmt.Sprintf("telemetry: metric %s: invalid label name %q", name, key))
		}
	}
	m.labels = renderLabels(ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, seen: make(map[string]bool)}
		r.families[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("telemetry: metric %s registered as both %s and %s", name, f.kind, k))
	}
	if f.seen[m.labels] {
		panic(fmt.Sprintf("telemetry: duplicate time series %s{%s}", name, m.labels))
	}
	f.seen[m.labels] = true
	f.members = append(f.members, m)
}

// validName reports whether s is a legal Prometheus metric or label name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels renders a label set as `k="v",k2="v2"` with keys sorted
// and values escaped per the exposition format.
func renderLabels(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]byte, 0, 32)
	for i, k := range keys {
		if i > 0 {
			out = append(out, ',')
		}
		out = append(out, k...)
		out = append(out, '=', '"')
		out = appendEscapedLabel(out, ls[k])
		out = append(out, '"')
	}
	return string(out)
}

// appendEscapedLabel escapes a label value: backslash, double-quote and
// newline per the text exposition format.
func appendEscapedLabel(dst []byte, v string) []byte {
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			dst = append(dst, '\\', '\\')
		case '"':
			dst = append(dst, '\\', '"')
		case '\n':
			dst = append(dst, '\\', 'n')
		default:
			dst = append(dst, v[i])
		}
	}
	return dst
}
