package telemetry

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// ContentType is the Prometheus text exposition content type served by
// Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every registered family in Prometheus text exposition
// format 0.0.4: families sorted by name, each with # HELP and # TYPE
// lines, members sorted by rendered label set. Histograms emit cumulative
// le buckets, +Inf, _sum (seconds) and _count, with _count equal to the
// +Inf bucket even under concurrent recording.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriterSize(w, 1<<14)
	for _, f := range fams {
		// Members append at registration time only; reading len+index
		// without the registry lock is safe because wiring completes
		// before the first scrape.
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		writeEscapedHelp(bw, f.help)
		bw.WriteByte('\n')
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')

		members := append([]*member(nil), f.members...)
		sort.Slice(members, func(i, j int) bool { return members[i].labels < members[j].labels })
		for _, m := range members {
			switch f.kind {
			case counterKind:
				v := m.counterFn
				var n int64
				if v != nil {
					n = v()
				} else {
					n = m.counter.Value()
				}
				writeSimple(bw, f.name, m.labels, strconv.FormatInt(n, 10))
			case gaugeKind:
				writeSimple(bw, f.name, m.labels, formatFloat(m.gaugeFn()))
			case histogramKind:
				writeHistogram(bw, f.name, m.labels, m.hist)
			}
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the exposition at GET.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WriteText(w)
	})
}

func writeSimple(bw *bufio.Writer, name, labels, value string) {
	bw.WriteString(name)
	if labels != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// writeHistogram emits the bucket/sum/count series for one histogram.
// Empty buckets are skipped (except +Inf) to keep the scrape compact; the
// cumulative value at any published le is still correct, so parsers and
// quantile estimates are unaffected.
func writeHistogram(bw *bufio.Writer, name, labels string, h *Histogram) {
	cum, total := h.cumulative()
	sumNS := h.SumNS()
	var prev int64
	for i, c := range cum {
		if c == prev && i != len(cum)-1 {
			continue
		}
		prev = c
		writeBucket(bw, name, labels, leStrings[i], c)
	}
	writeBucket(bw, name, labels, "+Inf", total)
	bw.WriteString(name)
	bw.WriteString("_sum")
	if labels != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(float64(sumNS) / 1e9))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_count")
	if labels != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(total, 10))
	bw.WriteByte('\n')
}

func writeBucket(bw *bufio.Writer, name, labels, le string, v int64) {
	bw.WriteString(name)
	bw.WriteString("_bucket{")
	if labels != "" {
		bw.WriteString(labels)
		bw.WriteByte(',')
	}
	bw.WriteString(`le="`)
	bw.WriteString(le)
	bw.WriteString(`"} `)
	bw.WriteString(strconv.FormatInt(v, 10))
	bw.WriteByte('\n')
}

// writeEscapedHelp escapes a HELP string: backslash and newline (quotes
// are legal in help text).
func writeEscapedHelp(bw *bufio.Writer, s string) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			bw.WriteString(`\\`)
		case '\n':
			bw.WriteString(`\n`)
		default:
			bw.WriteByte(s[i])
		}
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
