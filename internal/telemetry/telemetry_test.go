package telemetry

import (
	"bytes"
	"flag"
	"io"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildGoldenRegistry wires a small deterministic registry exercising
// every member kind, labeled and unlabeled.
func buildGoldenRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("tagcorr_test_docs_total", "Documents seen.", nil)
	c.Add(41)
	c.Inc()
	r.CounterFunc("tagcorr_test_tuples_total", "Tuples by component.", Labels{"component": "parser"}, func() int64 { return 7 })
	r.CounterFunc("tagcorr_test_tuples_total", "Tuples by component.", Labels{"component": "tracker"}, func() int64 { return 9 })
	r.GaugeFunc("tagcorr_test_gini", "Load dispersion.", nil, func() float64 { return 0.25 })
	h := r.Histogram("tagcorr_test_latency_seconds", "Stage latency.", Labels{"stage": "doc_partition"})
	for _, d := range []time.Duration{500 * time.Microsecond, 2 * time.Millisecond, 2 * time.Millisecond, 90 * time.Second} {
		h.Record(d)
	}
	r.Histogram("tagcorr_test_empty_seconds", "Never recorded.", nil)
	return r
}

func TestExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildGoldenRegistry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestParseBackRoundTrip(t *testing.T) {
	r := NewRegistry()
	gnarly := "a\"b\\c\nd"
	c := r.Counter("tagcorr_esc_total", "Help with \\backslash and\nnewline.", Labels{"path": gnarly})
	c.Add(3)
	h := r.Histogram("tagcorr_esc_seconds", "Latency.", Labels{"route": "/pairs/{tagA}/{tagB}"})
	h.Record(10 * time.Microsecond)
	h.Record(5 * time.Millisecond)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse back: %v\n%s", err, buf.Bytes())
	}

	cf := fams["tagcorr_esc_total"]
	if cf == nil || cf.Type != "counter" {
		t.Fatalf("counter family missing or mistyped: %+v", cf)
	}
	if want := "Help with \\backslash and\nnewline."; cf.Help != want {
		t.Errorf("help round-trip: got %q want %q", cf.Help, want)
	}
	if len(cf.Samples) != 1 || cf.Samples[0].Labels["path"] != gnarly || cf.Samples[0].Value != 3 {
		t.Errorf("counter sample round-trip failed: %+v", cf.Samples)
	}

	hf := fams["tagcorr_esc_seconds"]
	if hf == nil || hf.Type != "histogram" {
		t.Fatalf("histogram family missing or mistyped: %+v", hf)
	}
	checkHistogramInvariants(t, hf, map[string]string{"route": "/pairs/{tagA}/{tagB}"}, 2)
	d, ok := hf.Histogram(map[string]string{"route": "/pairs/{tagA}/{tagB}"})
	if !ok {
		t.Fatal("Histogram() did not find the labeled series")
	}
	wantSum := (10*time.Microsecond + 5*time.Millisecond).Seconds()
	if math.Abs(d.Sum-wantSum) > 1e-9 {
		t.Errorf("sum: got %v want %v", d.Sum, wantSum)
	}
}

// checkHistogramInvariants asserts the exposition-format histogram
// contract on parsed samples: le values strictly ascending, cumulative
// counts non-decreasing, and +Inf bucket == _count.
func checkHistogramInvariants(t *testing.T, f *Family, match map[string]string, wantCount float64) {
	t.Helper()
	var lastLe, lastCum float64 = math.Inf(-1), 0
	var inf, count float64
	var sawInf, sawCount bool
	for _, s := range f.Samples {
		if !labelsMatch(s.Labels, match) {
			continue
		}
		switch s.Name {
		case f.Name + "_bucket":
			if s.Labels["le"] == "+Inf" {
				inf, sawInf = s.Value, true
				continue
			}
			le, err := parseFloat(s.Labels["le"])
			if err != nil {
				t.Fatalf("bad le %q", s.Labels["le"])
			}
			if le <= lastLe {
				t.Errorf("le not ascending: %v after %v", le, lastLe)
			}
			if s.Value < lastCum {
				t.Errorf("cumulative count decreased: %v after %v", s.Value, lastCum)
			}
			lastLe, lastCum = le, s.Value
		case f.Name + "_count":
			count, sawCount = s.Value, true
		}
	}
	if !sawInf || !sawCount {
		t.Fatalf("histogram %s missing +Inf (%v) or _count (%v)", f.Name, sawInf, sawCount)
	}
	if inf != count {
		t.Errorf("+Inf bucket %v != _count %v", inf, count)
	}
	if inf < lastCum {
		t.Errorf("+Inf bucket %v below last finite bucket %v", inf, lastCum)
	}
	if wantCount >= 0 && count != wantCount {
		t.Errorf("_count: got %v want %v", count, wantCount)
	}
}

func parseFloat(s string) (float64, error) { return strconv.ParseFloat(s, 64) }

func TestQuantileMatchesParsedBuckets(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	r := NewRegistry()
	r.Observe("tagcorr_q_seconds", "q", nil, h)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := fams["tagcorr_q_seconds"].Histogram(nil)
	if !ok {
		t.Fatal("no histogram data")
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		direct := h.Quantile(q).Seconds()
		parsed := d.Quantile(q)
		if math.Abs(direct-parsed) > 1e-9 {
			t.Errorf("q=%v: direct %v != parsed %v", q, direct, parsed)
		}
	}
	if d.Count != 1000 {
		t.Errorf("parsed count %v", d.Count)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("tagcorr_x_total", "x", nil).Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "tagcorr_x_total 1") {
		t.Errorf("body missing counter:\n%s", rec.Body.String())
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("tagcorr_dup_total", "d", Labels{"a": "1"})
	mustPanic("duplicate series", func() { r.Counter("tagcorr_dup_total", "d", Labels{"a": "1"}) })
	mustPanic("kind mismatch", func() { r.GaugeFunc("tagcorr_dup_total", "d", nil, func() float64 { return 0 }) })
	mustPanic("bad metric name", func() { r.Counter("0bad", "d", nil) })
	mustPanic("bad label name", func() { r.Counter("tagcorr_ok_total", "d", Labels{"0bad": "x"}) })
}

// TestConcurrentScrapeStress races recorders against scrapers; run under
// -race in CI it asserts a scrape never blocks or corrupts recording, and
// that every mid-flight scrape still satisfies the histogram invariants.
func TestConcurrentScrapeStress(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tagcorr_stress_total", "s", nil)
	h := r.Histogram("tagcorr_stress_seconds", "s", Labels{"stage": "x"})
	var gv int64
	r.GaugeFunc("tagcorr_stress_gauge", "s", nil, func() float64 { return float64(gv) })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			d := time.Duration(seed+1) * time.Microsecond
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Record(d)
			}
		}(w)
	}
	deadline := time.Now().Add(300 * time.Millisecond)
	scrapes := 0
	for time.Now().Before(deadline) {
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		fams, err := ParseText(&buf)
		if err != nil {
			t.Fatalf("scrape %d unparseable: %v", scrapes, err)
		}
		checkHistogramInvariants(t, fams["tagcorr_stress_seconds"], map[string]string{"stage": "x"}, -1)
		scrapes++
	}
	close(stop)
	wg.Wait()
	if scrapes == 0 {
		t.Fatal("no scrapes completed")
	}
	// One final quiesced scrape: totals must now be exact.
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := fams["tagcorr_stress_seconds"].Histogram(map[string]string{"stage": "x"})
	if int64(d.Count) != h.Count() {
		t.Errorf("final count %v != %v", d.Count, h.Count())
	}
	if got := fams["tagcorr_stress_total"].Samples[0].Value; int64(got) != c.Value() {
		t.Errorf("final counter %v != %v", got, c.Value())
	}
}

func TestWriteTextToFailingWriter(t *testing.T) {
	r := buildGoldenRegistry()
	if err := r.WriteText(failWriter{}); err == nil {
		t.Error("expected error from failing writer")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }
