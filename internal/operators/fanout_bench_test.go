package operators

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/jaccard"
	"repro/internal/storm"
	"repro/internal/tagset"
)

// flushSpout emits n period flushes from a fixed pre-built pool, cycling.
// One NextTuple call emits one flush — a single CoeffBatch tuple with
// Tracker parallelism 1, or its per-task sub-batches — so ns/op compares
// the same logical work across task counts.
type flushSpout struct {
	pool [][]storm.Tuple
	n    int
	i    int
}

func (s *flushSpout) Open(*storm.TaskContext) {}
func (s *flushSpout) NextTuple(out storm.Collector) bool {
	if s.n == 0 {
		return false
	}
	s.n--
	for _, t := range s.pool[s.i%len(s.pool)] {
		out.Emit(t)
	}
	s.i++
	return true
}

// fanoutFlushPool pre-builds Calculator period flushes exactly as
// Calculator.flush would emit them for the given Tracker parallelism:
// flushes of batchLen coefficients each, split into route-hashed
// sub-batches when tasks > 1.
func fanoutFlushPool(tasks, flushes, batchLen int) [][]storm.Tuple {
	rng := rand.New(rand.NewSource(17))
	pool := make([][]storm.Tuple, flushes)
	for f := range pool {
		period := int64(1 + f/64)
		coeffs := make([]jaccard.Coefficient, batchLen)
		for i := range coeffs {
			a := tagset.Tag(2 * rng.Intn(1<<15))
			coeffs[i] = jaccard.Coefficient{Tags: tagset.New(a, a+1), J: rng.Float64(), CN: int64(1 + rng.Intn(50))}
		}
		if tasks <= 1 {
			pool[f] = []storm.Tuple{{Stream: StreamCoeff, Values: []interface{}{
				CoeffBatch{Period: period, Coeffs: coeffs},
			}}}
			continue
		}
		parts := make([][]jaccard.Coefficient, tasks)
		for _, co := range coeffs {
			g := routeHash(co.Tags.Key()) % uint64(tasks)
			parts[g] = append(parts[g], co)
		}
		for g, part := range parts {
			if len(part) == 0 {
				continue
			}
			pool[f] = append(pool[f], storm.Tuple{Stream: StreamCoeff, Values: []interface{}{
				CoeffBatch{Period: period, Route: uint64(g), Coeffs: part},
			}})
		}
	}
	return pool
}

// BenchmarkTrackerFanout measures the Tracker's report intake on the
// concurrent executor at parallelism 1 vs 4: four spouts play Calculators
// shipping 64-coefficient period flushes, fields-grouped (CoeffKey) onto
// the Tracker tasks sharing the one sharded Tracker. ns/op is per flush,
// identical logical work in both variants; tasks=4 spreads the mailbox and
// consumer-side work the single tracker task serializes at tasks=1.
func BenchmarkTrackerFanout(b *testing.B) {
	const (
		spouts   = 4
		batchLen = 64
	)
	for _, tasks := range []int{1, 4} {
		pool := fanoutFlushPool(tasks, 512, batchLen)
		b.Run(fmt.Sprintf("tasks=%d", tasks), func(b *testing.B) {
			tr := NewTrackerWith(16, 128, 0)
			bld := storm.NewBuilder()
			spawned := 0
			bld.Spout("calc", func() storm.Spout {
				n := b.N / spouts
				if spawned < b.N%spouts {
					n++
				}
				s := &flushSpout{pool: pool, n: n, i: spawned * 131}
				spawned++
				return s
			}, spouts)
			bld.Bolt("tracker", func() storm.Bolt { return tr }, tasks).Fields("calc", CoeffKey)
			topo, err := bld.Build()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			topo.RunConcurrent()
		})
	}
}
