package operators

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/jaccard"
	"repro/internal/storm"
	"repro/internal/tagset"
	"repro/internal/trend"
)

// trendRelay plays the dataflow edge between Tracker and Trend: every
// StreamTrend emission is executed on the bolt inline, so the benchmark
// measures the full report path the pipeline runs per accepted coefficient.
type trendRelay struct{ bolt *Trend }

func (r *trendRelay) Emit(t storm.Tuple) {
	if r.bolt != nil && t.Stream == StreamTrend {
		r.bolt.Execute(t, nil)
	}
}
func (r *trendRelay) EmitDirect(storm.TaskID, storm.Tuple) {}

// BenchmarkTrendScore measures Tracker report throughput with the
// streaming detector on versus off: the per-coefficient cost of trend
// scoring (EWMA update, event record, period-heap maintenance) on top of
// the Tracker's own table and heap work. Reported per CoeffBatch of 64.
func BenchmarkTrendScore(b *testing.B) {
	const batchSize = 64
	rng := rand.New(rand.NewSource(1))
	mkBatch := func(period int64) storm.Tuple {
		cs := make([]jaccard.Coefficient, batchSize)
		for i := range cs {
			a := tagset.Tag(2 * rng.Intn(4096))
			cs[i] = jaccard.Coefficient{
				Tags: tagset.New(a, a+1),
				J:    float64(rng.Intn(64)+1) / 64,
				CN:   int64(rng.Intn(30) + 1),
			}
		}
		return storm.Tuple{Stream: StreamCoeff, Values: []interface{}{CoeffBatch{Period: period, Coeffs: cs}}}
	}
	batches := make([]storm.Tuple, 512)
	for i := range batches {
		batches[i] = mkBatch(int64(1 + i/64)) // ~64 batches per period
	}

	for _, on := range []bool{false, true} {
		b.Run(fmt.Sprintf("detector=%v", on), func(b *testing.B) {
			tr := NewTrackerWith(16, 128, 0)
			tr.SetRetention(8)
			relay := &trendRelay{}
			if on {
				det, err := trend.NewStream(trend.StreamConfig{
					Alpha:       0.4,
					MinSupport:  2,
					TopK:        64,
					KeepPeriods: 8,
				})
				if err != nil {
					b.Fatal(err)
				}
				tr.EnableTrendEmit()
				relay.bolt = NewTrend(det)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Execute(batches[i%len(batches)], relay)
			}
			b.ReportMetric(float64(batchSize), "coeffs/op")
		})
	}
}
