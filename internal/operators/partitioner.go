package operators

import (
	"sync"

	"repro/internal/flight"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/storm"
	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/telemetry"
)

// Partitioner maintains a sliding window over the tagsets routed to it
// (fields grouping on the whole tagset) and, on each repartition request,
// contributes a partial result to the Merger (Section 6.2).
//
// For DS the Partitioner runs only the first phase of Algorithm 1 — it
// emits its window's disjoint sets unmerged, so the Merger can union
// overlapping sets from different Partitioners into true connected
// components before packing them into k partitions. For the set-cover
// algorithms it builds k local partitions, which the Merger treats as input
// tagsets for the same algorithm.
type Partitioner struct {
	cfg    Config
	window tagsetWindow
	ctx    *storm.TaskContext

	// Repartitions counts how many partial results this instance produced.
	Repartitions int
}

// tagsetWindow abstracts the Partitioner's window: time-based or
// count-based (Section 6.2).
type tagsetWindow interface {
	Add(stream.Document)
	Len() int
	Snapshot() []stream.WeightedSet
}

// NewPartitioner returns a Partitioner bolt for the given configuration,
// using a count-based window when cfg.WindowCount is set and the time-based
// WindowSpan otherwise.
func NewPartitioner(cfg Config) *Partitioner {
	var w tagsetWindow
	if cfg.WindowCount > 0 {
		w = stream.NewCountWindow(cfg.WindowCount)
	} else {
		w = stream.NewSlidingWindow(cfg.WindowSpan)
	}
	return &Partitioner{cfg: cfg, window: w}
}

// Prepare implements storm.Bolt.
func (p *Partitioner) Prepare(ctx *storm.TaskContext) { p.ctx = ctx }

// WindowLen reports the live window size (for tests and diagnostics).
func (p *Partitioner) WindowLen() int { return p.window.Len() }

// Execute implements storm.Bolt.
func (p *Partitioner) Execute(t storm.Tuple, out storm.Collector) {
	switch t.Stream {
	case StreamDoc:
		msg := t.Values[0].(DocMsg)
		start := telemetry.Now()
		p.window.Add(stream.Document{Time: msg.Time, Tags: msg.Tags})
		if st := p.cfg.Stages; st != nil && msg.Ingest > 0 {
			st.DocPartition.Record(telemetry.Since(msg.Ingest))
		}
		if msg.Trace != 0 {
			p.cfg.Flight.Span(msg.Trace, flight.StagePartition, start, telemetry.Now())
		}
	case StreamRepartition:
		req := t.Values[0].(RepartitionReq)
		p.emitPartial(req.Epoch, out)
	}
}

func (p *Partitioner) emitPartial(epoch int, out storm.Collector) {
	p.Repartitions++
	snap := p.window.Snapshot()
	var sets []stream.WeightedSet
	switch p.cfg.Algorithm {
	case partition.DS, partition.DSHybrid:
		for _, c := range graph.Components(snap) {
			sets = append(sets, stream.WeightedSet{Tags: c.Tags, Count: c.Load})
		}
	default:
		res, err := partition.Build(snap, partition.Options{
			Algorithm: p.cfg.Algorithm,
			K:         p.cfg.K,
			Seed:      p.cfg.Seed + int64(p.ctx.Index) + int64(epoch)*31,
		})
		if err != nil {
			// Options are validated at pipeline construction; a failure here
			// is a programming error.
			panic(err)
		}
		for _, part := range res.Parts {
			if part.Tags.IsEmpty() {
				continue
			}
			sets = append(sets, stream.WeightedSet{Tags: part.Tags, Count: part.Load})
		}
	}
	out.Emit(storm.Tuple{Stream: StreamPartial, Values: []interface{}{PartialMsg{Epoch: epoch, Sets: sets}}})
}

// Merger combines the partial results of all P Partitioners of one epoch
// into the final k partitions using the same algorithm, announces them to
// the Disseminators together with the reference quality statistics, and
// serves Single-Addition requests against its copy of the current
// partitions (Sections 6.2 and 7.1).
//
// Execute takes an internal mutex, so PartitionsSnapshot and MergeCount
// are safe to call from other goroutines while a concurrent run is
// streaming.
type Merger struct {
	cfg Config
	ctx *storm.TaskContext
	mu  sync.Mutex

	pending map[int][]stream.WeightedSet // epoch -> collected partial sets
	arrived map[int]int                  // epoch -> partials received
	current *partition.Result

	// Merges counts completed epochs; Additions counts Single Additions.
	Merges    int
	Additions int
}

// NewMerger returns a Merger bolt.
func NewMerger(cfg Config) *Merger {
	return &Merger{
		cfg:     cfg,
		pending: make(map[int][]stream.WeightedSet),
		arrived: make(map[int]int),
	}
}

// Prepare implements storm.Bolt.
func (m *Merger) Prepare(ctx *storm.TaskContext) { m.ctx = ctx }

// Current returns the Merger's view of the current partitions (nil before
// the first merge). The result is live state — use PartitionsSnapshot for
// a copy that is safe to read while a concurrent run is in flight.
func (m *Merger) Current() *partition.Result {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.current
}

// PartitionsSnapshot returns a deep copy of the current partitions (nil
// before the first merge), taken under the bolt's lock.
func (m *Merger) PartitionsSnapshot() []partition.Partition {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.current == nil {
		return nil
	}
	out := make([]partition.Partition, len(m.current.Parts))
	for i, p := range m.current.Parts {
		out[i] = partition.Partition{Tags: append(tagset.Set(nil), p.Tags...), Load: p.Load}
	}
	return out
}

// MergeCount returns the number of completed merge epochs under the lock.
func (m *Merger) MergeCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.Merges
}

// RestorePartitions installs checkpointed partitions as the Merger's
// current result — the recovery path. Call before the run starts; the
// Merger then serves Single-Addition requests against the restored
// assignment exactly as if it had merged it itself.
func (m *Merger) RestorePartitions(parts []partition.Partition, merges int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	copied := make([]partition.Partition, len(parts))
	for i, p := range parts {
		copied[i] = partition.Partition{Tags: append(tagset.Set(nil), p.Tags...), Load: p.Load}
	}
	m.current = &partition.Result{Algorithm: m.cfg.Algorithm, Parts: copied}
	m.Merges = merges
}

// Execute implements storm.Bolt.
func (m *Merger) Execute(t storm.Tuple, out storm.Collector) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch t.Stream {
	case StreamPartial:
		msg := t.Values[0].(PartialMsg)
		m.pending[msg.Epoch] = append(m.pending[msg.Epoch], msg.Sets...)
		m.arrived[msg.Epoch]++
		if m.arrived[msg.Epoch] == m.cfg.P {
			m.merge(msg.Epoch, out)
		}
	case StreamAddition:
		req := t.Values[0].(AdditionReq)
		m.addSingle(req.Tags, out)
	}
}

func (m *Merger) merge(epoch int, out storm.Collector) {
	sets := m.pending[epoch]
	delete(m.pending, epoch)
	delete(m.arrived, epoch)

	res, err := partition.Build(sets, partition.Options{
		Algorithm: m.cfg.Algorithm,
		K:         m.activePartitions(sets),
		Seed:      m.cfg.Seed + int64(epoch)*131,
	})
	if err != nil {
		panic(err)
	}
	m.current = res
	m.Merges++
	q := partition.Evaluate(res, sets)
	parts := make([]partition.Partition, len(res.Parts))
	copy(parts, res.Parts)
	out.Emit(storm.Tuple{Stream: StreamPartitions, Values: []interface{}{
		PartitionsMsg{Epoch: epoch, Parts: parts, Quality: q},
	}})
}

// activePartitions implements topology scaling (Section 7.3): with
// AutoScaleLoad set, the number of partitions follows the window load so
// that each active Calculator receives roughly AutoScaleLoad documents;
// otherwise all K Calculators are used. The count never exceeds K — the
// maximum number of Calculator tasks is fixed when the topology is
// submitted, exactly as in Storm.
func (m *Merger) activePartitions(sets []stream.WeightedSet) int {
	if m.cfg.AutoScaleLoad <= 0 {
		return m.cfg.K
	}
	var total int64
	for _, ws := range sets {
		total += ws.Count
	}
	k := int((total + m.cfg.AutoScaleLoad - 1) / m.cfg.AutoScaleLoad)
	if k < 1 {
		k = 1
	}
	if k > m.cfg.K {
		k = m.cfg.K
	}
	return k
}

// addSingle places an uncovered tagset into the best partition and
// announces the decision. Requests arriving before the first merge are
// ignored (the Disseminator cannot have sent them, but be safe).
func (m *Merger) addSingle(tags tagset.Set, out storm.Collector) {
	if m.current == nil || tags.IsEmpty() {
		return
	}
	// Idempotency: if meanwhile covered (e.g. duplicate requests from
	// several Disseminators), answer with the covering partition.
	for i, p := range m.current.Parts {
		if tags.SubsetOf(p.Tags) {
			out.Emit(storm.Tuple{Stream: StreamAdditionRes, Values: []interface{}{
				AdditionRes{Tags: tags, Part: i},
			}})
			return
		}
	}
	idx := partition.PlaceSingleAddition(m.current, tags)
	if idx < 0 {
		return
	}
	if err := partition.Apply(m.current, idx, tags, 1); err != nil {
		panic(err)
	}
	m.Additions++
	out.Emit(storm.Tuple{Stream: StreamAdditionRes, Values: []interface{}{
		AdditionRes{Tags: tags, Part: idx},
	}})
}
