package operators

import (
	"math"
	"testing"

	"repro/internal/jaccard"
	"repro/internal/partition"
	"repro/internal/storm"
	"repro/internal/stream"
	"repro/internal/tagset"
)

// collector is a test double capturing emissions.
type collector struct {
	emitted []storm.Tuple
	direct  map[storm.TaskID][]storm.Tuple
}

func newCollector() *collector {
	return &collector{direct: make(map[storm.TaskID][]storm.Tuple)}
}

func (c *collector) Emit(t storm.Tuple) { c.emitted = append(c.emitted, t) }
func (c *collector) EmitDirect(id storm.TaskID, t storm.Tuple) {
	c.direct[id] = append(c.direct[id], t)
}

func (c *collector) byStream(name string) []storm.Tuple {
	var out []storm.Tuple
	for _, t := range c.emitted {
		if t.Stream == name {
			out = append(out, t)
		}
	}
	return out
}

func docTuple(tm stream.Millis, tags ...tagset.Tag) storm.Tuple {
	return storm.Tuple{Stream: StreamDoc, Values: []interface{}{DocMsg{Time: tm, Tags: tagset.New(tags...)}}}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
		valid  bool
	}{
		{"zero K", func(c *Config) { c.K = 0 }, false},
		{"zero P", func(c *Config) { c.P = 0 }, false},
		{"unknown algorithm", func(c *Config) { c.Algorithm = "nope" }, false},
		{"negative thr", func(c *Config) { c.Thr = -1 }, false},
		{"zero SN", func(c *Config) { c.SN = 0 }, false},
		{"zero statsEvery", func(c *Config) { c.StatsEvery = 0 }, false},
		{"zero reportEvery", func(c *Config) { c.ReportEvery = 0 }, false},
		{"zero windowSpan", func(c *Config) { c.WindowSpan = 0 }, false},
		{"zero maxTags", func(c *Config) { c.MaxTags = 0 }, false},
		{"zero parsers", func(c *Config) { c.Parsers = 0 }, false},
		{"zero disseminators", func(c *Config) { c.Disseminators = 0 }, false},
		{"negative windowCount", func(c *Config) { c.WindowCount = -1 }, false},
		{"negative autoScaleLoad", func(c *Config) { c.AutoScaleLoad = -1 }, false},
		{"negative keepPeriods", func(c *Config) { c.KeepPeriods = -1 }, false},
		{"negative trackerShards", func(c *Config) { c.TrackerShards = -1 }, false},
		{"negative trackerTopK", func(c *Config) { c.TrackerTopK = -1 }, false},
		{"negative evictedPairs", func(c *Config) { c.EvictedPairs = -1 }, false},
		{"negative spoutPending", func(c *Config) { c.SpoutPending = -1 }, false},
		{"negative trackerTasks", func(c *Config) { c.TrackerTasks = -1 }, false},
		{"negative notifyBatch", func(c *Config) { c.NotifyBatch = -1 }, false},
		{"trendAlpha above one", func(c *Config) { c.TrendAlpha = 1.5 }, false},
		{"negative trendMinSupport", func(c *Config) { c.TrendMinSupport = -1 }, false},
		{"negative trendTopK", func(c *Config) { c.TrendTopK = -1 }, false},
		{"trendThreshold above one", func(c *Config) { c.TrendThreshold = 2 }, false},

		// NaN passes every `< 0` / `> 1` comparison, so each float knob
		// needs an explicit math.IsNaN rejection — the gap configparity
		// surfaced when these fields were audited against Validate.
		{"NaN thr", func(c *Config) { c.Thr = math.NaN() }, false},
		{"NaN trendAlpha", func(c *Config) { c.TrendAlpha = math.NaN() }, false},
		{"NaN trendThreshold", func(c *Config) { c.TrendThreshold = math.NaN() }, false},
		{"negative trendShards", func(c *Config) { c.TrendShards = -1 }, false},
		{"negative trendTasks", func(c *Config) { c.TrendTasks = -1 }, false},
		{"negative checkpointEvery", func(c *Config) { c.CheckpointEvery = -1 }, false},

		// Cross-field combinations: each knob is in range on its own, but
		// the combination is a configuration that silently does nothing (or
		// less than asked) — Validate must reject it, not accept it.
		{"checkpointEvery without archiveDir", func(c *Config) {
			c.CheckpointEvery = 2
		}, false},
		{"archiveDir without archiveDict", func(c *Config) {
			c.ArchiveDir = t.TempDir()
		}, false},
		{"evictedPairs without keepPeriods", func(c *Config) {
			c.EvictedPairs = 1024
		}, false},
		{"negative archiveBudget", func(c *Config) {
			c.ArchiveBudgetBytes = -1
		}, false},
		{"archiveBudget without archiveDir", func(c *Config) {
			c.ArchiveBudgetBytes = 1 << 20
		}, false},
		{"archiveBudget without keepPeriods", func(c *Config) {
			c.ArchiveDir = t.TempDir()
			c.ArchiveDict = tagset.NewDictionary()
			c.ArchiveBudgetBytes = 1 << 20
		}, false},

		// The combinations the daemon and the benchmark harness actually
		// run with must stay accepted.
		{"archive fully configured", func(c *Config) {
			c.ArchiveDir = t.TempDir()
			c.ArchiveDict = tagset.NewDictionary()
			c.CheckpointEvery = 2
		}, true},
		{"bounded retention with LRU", func(c *Config) {
			c.KeepPeriods = 8
			c.EvictedPairs = 4096
		}, true},
		{"archive with budget", func(c *Config) {
			c.ArchiveDir = t.TempDir()
			c.ArchiveDict = tagset.NewDictionary()
			c.KeepPeriods = 8
			c.ArchiveBudgetBytes = 64 << 20
		}, true},
		{"defaulted zeros", func(c *Config) {
			c.TrackerShards = 0
			c.TrackerTasks = 0
			c.TrendShards = 0
			c.CheckpointEvery = 0
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.valid && err != nil {
				t.Fatalf("rejected: %v", err)
			}
			if !tc.valid && err == nil {
				t.Fatal("accepted")
			}
		})
	}
}

func TestParserDropsAndTruncates(t *testing.T) {
	p := NewParser(3)
	out := newCollector()
	p.Execute(docTuple(0), out) // empty
	if len(out.emitted) != 0 || p.Dropped != 1 {
		t.Errorf("empty doc not dropped: %d emitted, %d dropped", len(out.emitted), p.Dropped)
	}
	p.Execute(docTuple(1, 5, 1, 9, 7, 3), out)
	if len(out.emitted) != 1 {
		t.Fatalf("emitted %d", len(out.emitted))
	}
	got := out.emitted[0].Values[0].(DocMsg).Tags
	if got.Len() != 3 {
		t.Errorf("truncated to %d tags, want 3", got.Len())
	}
}

func TestTagsetKeyStable(t *testing.T) {
	a := docTuple(0, 3, 1, 2)
	b := docTuple(99, 1, 2, 3) // same canonical set, different time
	if TagsetKey(a) != TagsetKey(b) {
		t.Error("equal tagsets hashed differently")
	}
	c := docTuple(0, 1, 2, 4)
	if TagsetKey(a) == TagsetKey(c) {
		t.Error("different tagsets collided (unlikely; check hashing)")
	}
}

func TestPartitionerWindowAndPartial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Algorithm = partition.DS
	cfg.WindowSpan = stream.Minutes(5)
	p := NewPartitioner(cfg)
	p.Prepare(&storm.TaskContext{})
	out := newCollector()
	p.Execute(docTuple(0, 1, 2), out)
	p.Execute(docTuple(1000, 1, 2), out)
	p.Execute(docTuple(2000, 3, 4), out)
	if p.WindowLen() != 3 {
		t.Fatalf("window len = %d", p.WindowLen())
	}
	p.Execute(storm.Tuple{Stream: StreamRepartition, Values: []interface{}{RepartitionReq{Epoch: 1}}}, out)
	partials := out.byStream(StreamPartial)
	if len(partials) != 1 {
		t.Fatalf("%d partials", len(partials))
	}
	msg := partials[0].Values[0].(PartialMsg)
	if msg.Epoch != 1 {
		t.Errorf("epoch = %d", msg.Epoch)
	}
	// DS partial: two disjoint sets {1,2} (load 2) and {3,4} (load 1).
	if len(msg.Sets) != 2 {
		t.Fatalf("sets = %v", msg.Sets)
	}
	if p.Repartitions != 1 {
		t.Errorf("Repartitions = %d", p.Repartitions)
	}
}

func TestPartitionerSetCoverPartial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Algorithm = partition.SCL
	cfg.K = 2
	p := NewPartitioner(cfg)
	p.Prepare(&storm.TaskContext{})
	out := newCollector()
	p.Execute(docTuple(0, 1, 2), out)
	p.Execute(docTuple(1, 3, 4), out)
	p.Execute(storm.Tuple{Stream: StreamRepartition, Values: []interface{}{RepartitionReq{Epoch: 1}}}, out)
	msg := out.byStream(StreamPartial)[0].Values[0].(PartialMsg)
	if len(msg.Sets) == 0 || len(msg.Sets) > 2 {
		t.Errorf("SCL partial sets = %v", msg.Sets)
	}
}

func TestMergerWaitsForAllPartials(t *testing.T) {
	cfg := DefaultConfig()
	cfg.P = 2
	cfg.K = 2
	m := NewMerger(cfg)
	m.Prepare(&storm.TaskContext{})
	out := newCollector()
	partial := func(sets ...stream.WeightedSet) storm.Tuple {
		return storm.Tuple{Stream: StreamPartial, Values: []interface{}{PartialMsg{Epoch: 1, Sets: sets}}}
	}
	m.Execute(partial(stream.WeightedSet{Tags: tagset.New(1, 2), Count: 5}), out)
	if len(out.byStream(StreamPartitions)) != 0 {
		t.Fatal("merged before all partials arrived")
	}
	m.Execute(partial(stream.WeightedSet{Tags: tagset.New(2, 3), Count: 4}), out)
	parts := out.byStream(StreamPartitions)
	if len(parts) != 1 {
		t.Fatalf("partitions messages = %d", len(parts))
	}
	msg := parts[0].Values[0].(PartitionsMsg)
	if msg.Epoch != 1 || len(msg.Parts) != 2 {
		t.Errorf("msg = %+v", msg)
	}
	// Overlapping sets {1,2} and {2,3} must merge into one DS component.
	if m.Current() == nil || m.Merges != 1 {
		t.Error("merger state not updated")
	}
	covered := false
	for _, p := range msg.Parts {
		if tagset.New(1, 2, 3).SubsetOf(p.Tags) {
			covered = true
		}
	}
	if !covered {
		t.Error("overlapping partials were not unioned into one component")
	}
}

func TestMergerSingleAddition(t *testing.T) {
	cfg := DefaultConfig()
	cfg.P = 1
	cfg.K = 2
	m := NewMerger(cfg)
	m.Prepare(&storm.TaskContext{})
	out := newCollector()
	m.Execute(storm.Tuple{Stream: StreamPartial, Values: []interface{}{PartialMsg{Epoch: 1, Sets: []stream.WeightedSet{
		{Tags: tagset.New(1, 2), Count: 5},
		{Tags: tagset.New(3, 4), Count: 4},
	}}}}, out)

	// Request addition of a new tagset overlapping {1,2}.
	m.Execute(storm.Tuple{Stream: StreamAddition, Values: []interface{}{AdditionReq{Tags: tagset.New(2, 9)}}}, out)
	res := out.byStream(StreamAdditionRes)
	if len(res) != 1 {
		t.Fatalf("addition results = %d", len(res))
	}
	ar := res[0].Values[0].(AdditionRes)
	if !m.Current().Parts[ar.Part].Tags.Contains(9) {
		t.Error("added tags not applied to merger's partitions")
	}
	if m.Additions != 1 {
		t.Errorf("Additions = %d", m.Additions)
	}

	// Requesting an already-covered tagset answers idempotently without a
	// new placement.
	m.Execute(storm.Tuple{Stream: StreamAddition, Values: []interface{}{AdditionReq{Tags: tagset.New(2, 9)}}}, out)
	if m.Additions != 1 {
		t.Errorf("idempotent re-add counted: %d", m.Additions)
	}
	if len(out.byStream(StreamAdditionRes)) != 2 {
		t.Error("covered re-request not answered")
	}

	// Before any merge, requests are ignored.
	m2 := NewMerger(cfg)
	m2.Prepare(&storm.TaskContext{})
	out2 := newCollector()
	m2.Execute(storm.Tuple{Stream: StreamAddition, Values: []interface{}{AdditionReq{Tags: tagset.New(1)}}}, out2)
	if len(out2.emitted) != 0 {
		t.Error("pre-merge addition produced output")
	}
}

func TestCalculatorPeriodsAndFlush(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReportEvery = 1000
	c := NewCalculator(cfg)
	c.Prepare(&storm.TaskContext{})
	out := newCollector()
	notify := func(tm stream.Millis, tags ...tagset.Tag) {
		c.Execute(storm.Tuple{Stream: StreamNotify, Values: []interface{}{NotifyMsg{Time: tm, Tags: tagset.New(tags...)}}}, out)
	}
	notify(100, 1, 2)
	notify(200, 1, 2)
	notify(300, 1)
	if len(out.byStream(StreamCoeff)) != 0 {
		t.Fatal("reported before boundary")
	}
	notify(1001, 1, 2) // crosses the t=1000 boundary → flush of period 1
	coeffs := out.byStream(StreamCoeff)
	if len(coeffs) != 1 {
		t.Fatalf("coeffs = %d", len(coeffs))
	}
	// One tuple per flush: the whole period rides in a single CoeffBatch.
	batch := coeffs[0].Values[0].(CoeffBatch)
	if batch.Period != 1 {
		t.Errorf("period = %d", batch.Period)
	}
	// J({1,2}) = 2 intersections / 3 docs containing 1 or 2.
	var pair *jaccard.Coefficient
	for i, co := range batch.Coeffs {
		if co.Tags.Equal(tagset.New(1, 2)) {
			pair = &batch.Coeffs[i]
		}
	}
	if pair == nil || pair.CN != 2 || pair.J < 0.66 || pair.J > 0.67 {
		t.Errorf("coeff for {1,2} = %+v", pair)
	}
	// Cleanup flushes the in-progress period.
	c.Cleanup(out)
	all := out.byStream(StreamCoeff)
	if len(all) != 2 {
		t.Fatalf("after cleanup coeffs = %d", len(all))
	}
	if got := all[1].Values[0].(CoeffBatch).Period; got != 2 {
		t.Errorf("final period = %d", got)
	}
	if c.Reports != 2 || c.Observed != 4 {
		t.Errorf("Reports=%d Observed=%d", c.Reports, c.Observed)
	}
}

func TestCalculatorSkipsEmptyPeriods(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReportEvery = 100
	c := NewCalculator(cfg)
	c.Prepare(&storm.TaskContext{})
	out := newCollector()
	c.Execute(storm.Tuple{Stream: StreamNotify, Values: []interface{}{NotifyMsg{Time: 50, Tags: tagset.New(1, 2)}}}, out)
	// Jump far ahead: several empty periods in between must not emit.
	c.Execute(storm.Tuple{Stream: StreamNotify, Values: []interface{}{NotifyMsg{Time: 1050, Tags: tagset.New(1, 2)}}}, out)
	coeffs := out.byStream(StreamCoeff)
	if len(coeffs) != 1 {
		t.Fatalf("coeffs = %d", len(coeffs))
	}
}

func TestTrackerDeduplicatesByCN(t *testing.T) {
	tr := NewTracker()
	tr.Prepare(&storm.TaskContext{})
	emit := func(period int64, cn int64, j float64) {
		tr.Execute(storm.Tuple{Stream: StreamCoeff, Values: []interface{}{CoeffMsg{
			Period: period,
			Coeff:  jaccard.Coefficient{Tags: tagset.New(1, 2), J: j, CN: cn},
		}}}, nil)
	}
	emit(1, 3, 0.5)
	emit(1, 7, 0.6) // higher CN wins
	emit(1, 5, 0.4) // lower CN ignored
	emit(2, 1, 0.9) // different period kept separately
	if tr.Received != 4 || tr.Duplicates != 2 {
		t.Errorf("Received=%d Duplicates=%d", tr.Received, tr.Duplicates)
	}
	rep := tr.Report(1)
	if len(rep) != 1 || rep[0].CN != 7 || rep[0].J != 0.6 {
		t.Errorf("period 1 = %+v", rep)
	}
	if got := tr.Periods(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Periods = %v", got)
	}
	if all := tr.All(); len(all) != 2 {
		t.Errorf("All = %v", all)
	}
}

// buildDissem wires a Disseminator with a fake calculator task list.
func buildDissem(cfg Config) (*Disseminator, *collector) {
	d := NewDisseminator(cfg)
	// Fake context: calculator tasks 0..K-1. TasksOf needs a topology, so
	// emulate Prepare manually.
	d.ctx = nil
	d.calcTasks = make([]storm.TaskID, cfg.K)
	for i := range d.calcTasks {
		d.calcTasks[i] = storm.TaskID(i)
	}
	d.batchCalc = make([]int64, cfg.K)
	d.Stats.PerCalculator = make([]int64, cfg.K)
	if cfg.NotifyBatch > 0 {
		d.notifyBuf = make([][]NotifyMsg, cfg.K)
	}
	return d, newCollector()
}

func installPartitions(d *Disseminator, out *collector, parts ...partition.Partition) {
	q := partition.Quality{AvgCom: 1, MaxLoad: 0.5}
	d.Execute(storm.Tuple{Stream: StreamPartitions, Values: []interface{}{PartitionsMsg{
		Epoch: 1, Parts: parts, Quality: q,
	}}}, out)
}

func TestDisseminatorBootstrapRequest(t *testing.T) {
	cfg := DefaultConfig()
	cfg.K = 2
	cfg.WindowSpan = 1000
	d, out := buildDissem(cfg)
	d.Execute(docTuple(10, 1, 2), out)
	if len(out.byStream(StreamRepartition)) != 0 {
		t.Fatal("bootstrap requested before window filled")
	}
	d.Execute(docTuple(1001, 1, 2), out)
	reqs := out.byStream(StreamRepartition)
	if len(reqs) != 1 {
		t.Fatalf("bootstrap requests = %d", len(reqs))
	}
	if got := reqs[0].Values[0].(RepartitionReq).Epoch; got != 1 {
		t.Errorf("bootstrap epoch = %d", got)
	}
	// No duplicate request while awaiting.
	d.Execute(docTuple(1002, 1, 2), out)
	if len(out.byStream(StreamRepartition)) != 1 {
		t.Error("duplicate bootstrap request")
	}
	if d.Stats.BeforePartition != 3 {
		t.Errorf("BeforePartition = %d", d.Stats.BeforePartition)
	}
}

func TestDisseminatorRoutingAndSubsets(t *testing.T) {
	cfg := DefaultConfig()
	cfg.K = 3
	d, out := buildDissem(cfg)
	installPartitions(d, out,
		partition.Partition{Tags: tagset.New(1, 2, 3)}, // calc 0
		partition.Partition{Tags: tagset.New(1, 3)},    // calc 1
		partition.Partition{Tags: tagset.New(9)},       // calc 2
	)
	// The paper's example: si={a,b,c}; calc0 holds {a,b,c}, calc1 {a,c}.
	d.Execute(docTuple(10, 1, 2, 3), out)
	if got := len(out.direct[0]); got != 1 {
		t.Fatalf("calc0 notifications = %d", got)
	}
	if got := out.direct[0][0].Values[0].(NotifyMsg).Tags; !got.Equal(tagset.New(1, 2, 3)) {
		t.Errorf("calc0 subset = %v", got)
	}
	if got := out.direct[1][0].Values[0].(NotifyMsg).Tags; !got.Equal(tagset.New(1, 3)) {
		t.Errorf("calc1 subset = %v", got)
	}
	if len(out.direct[2]) != 0 {
		t.Error("calc2 notified without overlap")
	}
	if d.Stats.Notifications != 2 || d.Stats.NotifiedDocs != 1 {
		t.Errorf("stats = %+v", d.Stats)
	}
	if d.Stats.UncoveredDocs != 0 {
		t.Error("covered doc counted as uncovered")
	}
}

func TestDisseminatorSingleAdditionFlow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.K = 2
	cfg.SN = 3
	d, out := buildDissem(cfg)
	installPartitions(d, out,
		partition.Partition{Tags: tagset.New(1, 2)},
		partition.Partition{Tags: tagset.New(3)},
	)
	// {2,3} is uncovered (no calculator holds both).
	d.Execute(docTuple(1, 2, 3), out)
	d.Execute(docTuple(2, 2, 3), out)
	if len(out.byStream(StreamAddition)) != 0 {
		t.Fatal("addition requested before sn occurrences")
	}
	d.Execute(docTuple(3, 2, 3), out)
	adds := out.byStream(StreamAddition)
	if len(adds) != 1 {
		t.Fatalf("addition requests = %d", len(adds))
	}
	// While pending, further sightings do not re-request.
	d.Execute(docTuple(4, 2, 3), out)
	if len(out.byStream(StreamAddition)) != 1 {
		t.Error("duplicate addition request while pending")
	}
	if d.Stats.AdditionsAsked != 1 || d.Stats.UncoveredDocs != 4 {
		t.Errorf("stats = %+v", d.Stats)
	}
	// The Merger answers: tagset assigned to calculator 0.
	d.Execute(storm.Tuple{Stream: StreamAdditionRes, Values: []interface{}{AdditionRes{
		Tags: tagset.New(2, 3), Part: 0,
	}}}, out)
	out.direct = make(map[storm.TaskID][]storm.Tuple)
	d.Execute(docTuple(5, 2, 3), out)
	if got := out.direct[0][0].Values[0].(NotifyMsg).Tags; !got.Equal(tagset.New(2, 3)) {
		t.Errorf("post-addition subset = %v", got)
	}
	if d.Stats.UncoveredDocs != 4 {
		t.Error("covered doc after addition still counted uncovered")
	}
}

func TestDisseminatorQualityTriggersRepartition(t *testing.T) {
	cfg := DefaultConfig()
	cfg.K = 2
	cfg.StatsEvery = 10
	cfg.Thr = 0.5
	d, out := buildDissem(cfg)
	// Reference avgCom=1, maxLoad=0.5 (from installPartitions).
	installPartitions(d, out,
		partition.Partition{Tags: tagset.New(1)},
		partition.Partition{Tags: tagset.New(2)},
	)
	// First batch: balanced docs alternating between the calculators set
	// the measured reference (calibration): avgCom'=1, maxLoad'=0.5.
	for i := 0; i < 10; i++ {
		d.Execute(docTuple(stream.Millis(i), tagset.Tag(1+i%2)), out)
	}
	if len(out.byStream(StreamRepartition)) != 0 {
		t.Fatal("calibration batch triggered a repartition")
	}
	// Second batch: every doc touches both calculators: avgCom'=2 > 1*1.5
	// while maxLoad'=0.5 stays fine → communication-caused repartition.
	for i := 0; i < 10; i++ {
		d.Execute(docTuple(stream.Millis(10+i), 1, 2), out)
	}
	reqs := out.byStream(StreamRepartition)
	if len(reqs) != 1 {
		t.Fatalf("repartition requests = %d", len(reqs))
	}
	if d.Stats.CauseComm != 1 || d.Stats.CauseLoad != 0 || d.Stats.CauseBoth != 0 {
		t.Errorf("causes = %+v", d.Stats)
	}
	if got := reqs[0].Values[0].(RepartitionReq).Epoch; got != 2 {
		t.Errorf("epoch = %d", got)
	}
	if d.Stats.CommSeries.Len() != 2 || len(d.Stats.CommSeries.Marks) != 1 {
		t.Errorf("series: %d points %d marks", d.Stats.CommSeries.Len(), len(d.Stats.CommSeries.Marks))
	}
	if len(d.Stats.LoadSeries) != 2 {
		t.Errorf("load series samples = %d", len(d.Stats.LoadSeries))
	}
	sh := d.Stats.LoadSeries[1].Shares
	if len(sh) != 2 || sh[0] < sh[1] {
		t.Errorf("shares not sorted desc: %v", sh)
	}
}

func TestDisseminatorLoadCause(t *testing.T) {
	cfg := DefaultConfig()
	cfg.K = 2
	cfg.StatsEvery = 10
	cfg.Thr = 0.5
	d, out := buildDissem(cfg)
	installPartitions(d, out,
		partition.Partition{Tags: tagset.New(1)},
		partition.Partition{Tags: tagset.New(2)},
	)
	// Calibration batch: balanced (maxLoad'=0.5). Second batch: all docs
	// to calculator 0 → avgCom'=1 (fine), maxLoad'=1 > 0.5*1.5.
	for i := 0; i < 10; i++ {
		d.Execute(docTuple(stream.Millis(i), tagset.Tag(1+i%2)), out)
	}
	for i := 0; i < 10; i++ {
		d.Execute(docTuple(stream.Millis(10+i), 1), out)
	}
	if d.Stats.CauseLoad != 1 || d.Stats.CauseComm != 0 {
		t.Errorf("causes = %+v", d.Stats)
	}
}

func TestDisseminatorStatsAccessors(t *testing.T) {
	var s DissemStats
	if s.Communication() != 0 {
		t.Error("empty Communication != 0")
	}
	s.NotifiedDocs = 4
	s.Notifications = 6
	if s.Communication() != 1.5 {
		t.Errorf("Communication = %g", s.Communication())
	}
	s.PerCalculator = []int64{1, 3}
	if g := s.LoadGini(); g <= 0 {
		t.Errorf("LoadGini = %g", g)
	}
}

func TestCauseString(t *testing.T) {
	for c, want := range map[Cause]string{
		CauseNone: "none", CauseCommunication: "communication",
		CauseLoad: "load", CauseBoth: "both", CauseBootstrap: "bootstrap",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}

func TestSourceEmitsDocs(t *testing.T) {
	docs := []stream.Document{
		{ID: 1, Time: 5, Tags: tagset.New(1)},
		{ID: 2, Time: 6, Tags: tagset.New(2)},
	}
	s := SliceSource(docs)
	s.Open(&storm.TaskContext{})
	out := newCollector()
	n := 0
	for s.NextTuple(out) {
		n++
	}
	if n != 2 || len(out.emitted) != 2 {
		t.Errorf("emitted %d tuples over %d calls", len(out.emitted), n)
	}
	if got := out.emitted[0].Values[0].(DocMsg); got.Time != 5 {
		t.Errorf("first = %+v", got)
	}
}

func TestTrackerRetentionAndTopK(t *testing.T) {
	tr := NewTracker()
	tr.SetRetention(2)
	report := func(period int64, tag tagset.Tag, j float64, cn int64) {
		tr.Execute(storm.Tuple{Stream: StreamCoeff, Values: []interface{}{
			CoeffMsg{Period: period, Coeff: jaccard.Coefficient{
				Tags: tagset.New(tag, tag+1), J: j, CN: cn,
			}},
		}}, nil)
	}
	report(1, 10, 0.9, 5)
	report(2, 20, 0.5, 3)
	report(3, 30, 0.7, 4)

	// Period 1 must be pruned: only the 2 newest periods are retained.
	if got := tr.Periods(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Periods() = %v, want [2 3]", got)
	}
	if _, _, ok := tr.Lookup(tagset.New(10, 11).Key()); ok {
		t.Error("Lookup found a coefficient from a pruned period")
	}

	// TopK ranks by descending J across the retained periods.
	top := tr.TopK(1)
	if len(top) != 1 || top[0].J != 0.7 {
		t.Fatalf("TopK(1) = %+v, want the J=0.7 report", top)
	}
	if all := tr.TopK(0); len(all) != 2 {
		t.Fatalf("TopK(0) returned %d coefficients, want 2", len(all))
	}
}
