package operators

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/jaccard"
	"repro/internal/tagset"
)

// populateTracker fills tr with n distinct retained pairs spread over four
// reporting periods, with deterministic pseudo-random coefficients.
func populateTracker(tr *Tracker, n int) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		a := tagset.Tag(2 * i)
		tags := tagset.New(a, a+1)
		period := int64(1 + i%4)
		tr.Execute(coeffTuple(period, tags, rng.Float64(), int64(1+rng.Intn(50))), nil)
	}
}

var benchCoeffs []jaccard.Coefficient

// BenchmarkTrackerTopK compares the incrementally maintained top-k read
// (merge the shard heaps, select k) against the pre-sharding gather-copy
// path (scan every retained coefficient) across retained-pair counts. The
// incremental path's cost is flat in n; the scan grows linearly.
func BenchmarkTrackerTopK(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		tr := NewTrackerWith(16, 128, 0)
		populateTracker(tr, n)
		b.Run(fmt.Sprintf("incremental/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchCoeffs = tr.TopK(100)
			}
		})
		b.Run(fmt.Sprintf("scan/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchCoeffs = tr.topKScan(100)
			}
		})
	}
}

// BenchmarkTrackerReport measures the report (write) path under parallel
// load at different shard counts: shards=1 approximates the pre-sharding
// single-mutex Tracker, shards=16 is the default layout.
func BenchmarkTrackerReport(b *testing.B) {
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			tr := NewTrackerWith(shards, 128, 0)
			tr.SetRetention(8)
			// Pre-build the tagsets so the benchmark isolates Tracker work.
			const poolSize = 1 << 15
			pool := make([]tagset.Set, poolSize)
			for i := range pool {
				a := tagset.Tag(2 * i)
				pool[i] = tagset.New(a, a+1)
			}
			var next int64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(atomic.AddInt64(&next, 1)))
				i := 0
				for pb.Next() {
					tags := pool[rng.Intn(poolSize)]
					period := int64(1 + i/200_000)
					tr.Execute(coeffTuple(period, tags, rng.Float64(), int64(1+rng.Intn(50))), nil)
					i++
				}
			})
		})
	}
}
