package operators

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/jaccard"
	"repro/internal/tagset"
)

// refTracker is the brute-force reference the incremental Tracker is
// differentially tested against: a plain period→key→coefficient table with
// the same retention semantics (keep the newest `keep` period ids; reports
// at or below the highest pruned period are dropped), answering every
// query by gathering and sorting everything.
type refTracker struct {
	keep    int
	floor   int64
	periods map[int64]map[tagset.Key]jaccard.Coefficient
}

func newRefTracker(keep int) *refTracker {
	return &refTracker{
		keep:    keep,
		floor:   math.MinInt64,
		periods: make(map[int64]map[tagset.Key]jaccard.Coefficient),
	}
}

func (r *refTracker) report(period int64, c jaccard.Coefficient) {
	if period <= r.floor {
		return
	}
	m := r.periods[period]
	if m == nil {
		m = make(map[tagset.Key]jaccard.Coefficient)
		r.periods[period] = m
		for r.keep > 0 && len(r.periods) > r.keep {
			oldest := period
			for p := range r.periods {
				if p < oldest {
					oldest = p
				}
			}
			delete(r.periods, oldest)
			if oldest > r.floor {
				r.floor = oldest
			}
		}
	}
	if _, alive := r.periods[period]; !alive {
		return // the reported period was itself the oldest and got pruned
	}
	k := c.Tags.Key()
	if prev, ok := m[k]; ok && c.CN <= prev.CN {
		return
	}
	m[k] = c
}

// topK sorts every retained coefficient and cuts at k (k <= 0: all).
func (r *refTracker) topK(k int) []jaccard.Coefficient {
	var all []jaccard.Coefficient
	for _, m := range r.periods {
		for _, c := range m {
			all = append(all, c)
		}
	}
	sortCoefficients(all)
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

func (r *refTracker) lookup(k tagset.Key) (jaccard.Coefficient, int64, bool) {
	var (
		best  jaccard.Coefficient
		bestP int64
		found bool
	)
	for p, m := range r.periods {
		if c, ok := m[k]; ok && (!found || p > bestP) {
			best, bestP, found = c, p, true
		}
	}
	return best, bestP, found
}

func (r *refTracker) periodList() []int64 {
	out := make([]int64, 0, len(r.periods))
	for p := range r.periods {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sameCoefficients compares two coefficient lists elementwise on the
// ranking triple (J, CN, tagset key) — the only observable identity of a
// coefficient (the reporting period is not part of the value).
func sameCoefficients(t *testing.T, label string, got, want []jaccard.Coefficient) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d coefficients, reference gives %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].J != want[i].J || got[i].CN != want[i].CN || got[i].Tags.Key() != want[i].Tags.Key() {
			t.Fatalf("%s[%d] = {J:%g CN:%d %v}, reference {J:%g CN:%d %v}",
				label, i, got[i].J, got[i].CN, got[i].Tags,
				want[i].J, want[i].CN, want[i].Tags)
		}
	}
}

// TestTrackerDifferential drives the incremental sharded Tracker and the
// brute-force reference through the same randomized report/update/evict
// sequences — deliberately dense in tied J values, re-reported pairs
// (duplicate upgrades and downgrades) and late reports for pruned periods —
// and checks that TopK (below, at and beyond the maintained bound),
// Periods, Lookup and All agree at every checkpoint.
func TestTrackerDifferential(t *testing.T) {
	cases := []struct {
		name                string
		keep, shards, bound int
	}{
		{"unbounded-4shards", 0, 4, 8},
		{"keep3-1shard", 3, 1, 4},
		{"keep2-8shards", 2, 8, 16},
		{"keep4-16shards-tinybound", 4, 16, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				rng := rand.New(rand.NewSource(seed))
				tr := NewTrackerWith(tc.shards, tc.bound, 0)
				tr.SetRetention(tc.keep)
				ref := newRefTracker(tc.keep)

				period := int64(1)
				for op := 0; op < 3000; op++ {
					if rng.Intn(40) == 0 {
						period += int64(1 + rng.Intn(2)) // advance, sometimes skipping an id
					}
					p := period
					if rng.Intn(8) == 0 {
						p -= int64(rng.Intn(6)) // old, possibly pruned period
					}
					// A small tag pool forces re-reported pairs; few distinct
					// J and CN values force ranking ties.
					a := tagset.Tag(rng.Intn(10))
					b := a + 1 + tagset.Tag(rng.Intn(3))
					c := jaccard.Coefficient{
						Tags: tagset.New(a, b),
						J:    float64(rng.Intn(5)) / 4,
						CN:   int64(1 + rng.Intn(5)),
					}
					tr.Execute(coeffTuple(p, c.Tags, c.J, c.CN), nil)
					ref.report(p, c)

					if op%211 == 0 || op == 2999 {
						for _, k := range []int{1, 2, tc.bound, tc.bound + 5, 0} {
							sameCoefficients(t, "TopK", tr.TopK(k), ref.topK(k))
						}
						gotP, wantP := tr.Periods(), ref.periodList()
						if len(gotP) != len(wantP) {
							t.Fatalf("Periods = %v, reference %v", gotP, wantP)
						}
						for i := range wantP {
							if gotP[i] != wantP[i] {
								t.Fatalf("Periods = %v, reference %v", gotP, wantP)
							}
						}
						for probe := 0; probe < 8; probe++ {
							a := tagset.Tag(rng.Intn(10))
							key := tagset.New(a, a+1+tagset.Tag(rng.Intn(3))).Key()
							gc, gp, gok := tr.Lookup(key)
							wc, wp, wok := ref.lookup(key)
							if gok != wok || gp != wp || gc.J != wc.J || gc.CN != wc.CN {
								t.Fatalf("Lookup(%v): got {%g %d p%d %v}, reference {%g %d p%d %v}",
									key.Set(), gc.J, gc.CN, gp, gok, wc.J, wc.CN, wp, wok)
							}
						}
					}
				}

				// Final full-state agreement, period by period.
				for _, p := range ref.periodList() {
					wantRep := make([]jaccard.Coefficient, 0, len(ref.periods[p]))
					for _, c := range ref.periods[p] {
						wantRep = append(wantRep, c)
					}
					sortCoefficients(wantRep)
					sameCoefficients(t, "Report", tr.Report(p), wantRep)
				}
				if st := tr.StatsSnapshot(); tc.keep > 0 && st.PrunedPeriods == 0 {
					t.Error("differential run never pruned a period")
				}
			}
		})
	}
}
