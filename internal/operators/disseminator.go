package operators

import (
	"fmt"
	"sync"

	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/storm"
	"repro/internal/tagset"
	"repro/internal/telemetry"
)

// Cause classifies what triggered a repartition (Figure 6 splits the counts
// by cause).
type Cause int

// Repartition causes.
const (
	CauseNone          Cause = iota
	CauseCommunication       // avgCom' exceeded its bound
	CauseLoad                // maxLoad' exceeded its bound
	CauseBoth                // both exceeded in the same statistics batch
	CauseBootstrap           // the initial partitioning request
)

// String names the cause.
func (c Cause) String() string {
	switch c {
	case CauseCommunication:
		return "communication"
	case CauseLoad:
		return "load"
	case CauseBoth:
		return "both"
	case CauseBootstrap:
		return "bootstrap"
	}
	return "none"
}

// DissemStats is the Disseminator's cumulative account of the run — the
// quantities behind Figures 3, 4, 6, 8 and 9.
type DissemStats struct {
	Docs            int64 // parsed documents seen
	BeforePartition int64 // documents seen before the first partitions
	NotifiedDocs    int64 // documents that produced >= 1 notification
	Notifications   int64 // total notifications sent
	UncoveredDocs   int64 // documents whose tagset no Calculator fully held
	PerCalculator   []int64

	Repartitions   int // requests after bootstrap
	CauseComm      int
	CauseLoad      int
	CauseBoth      int
	AdditionsAsked int

	// CommSeries records the batch average communication over processed
	// documents; LoadSeries records, per batch, the per-Calculator shares
	// (sorted descending). Marks on CommSeries are repartition positions.
	CommSeries metrics.Series
	LoadSeries []LoadSample
}

// LoadSample is one Figure-9 sample: sorted per-Calculator load shares at a
// document-count position.
type LoadSample struct {
	X      float64
	Shares []float64
}

// Communication returns the run's average notifications per notified
// document — the paper's Communication metric (Section 8.2.1).
func (s *DissemStats) Communication() float64 {
	if s.NotifiedDocs == 0 {
		return 0
	}
	return float64(s.Notifications) / float64(s.NotifiedDocs)
}

// LoadGini returns the Gini coefficient of cumulative per-Calculator
// notifications — the paper's Processing Load metric (Section 8.2.2).
func (s *DissemStats) LoadGini() float64 { return metrics.GiniInts(s.PerCalculator) }

// Disseminator forwards parsed documents to the Calculators holding their
// tags (via an inverted tag index and direct grouping), requests Single
// Additions for repeatedly-uncovered tagsets, and monitors partition
// quality, requesting repartitions when communication or load degrade
// beyond thr relative to the reference values the Merger supplied
// (Sections 3.3, 7.1 and 7.2).
//
// Execute takes an internal mutex, so SnapshotStats and Epoch provide a
// consistent live view from other goroutines while a concurrent run is
// streaming. Direct access to the Stats field remains race-free only once
// the run has drained (the batch/figure path).
type Disseminator struct {
	cfg Config
	ctx *storm.TaskContext
	mu  sync.Mutex

	index     map[tagset.Tag][]int // tag -> calculator indices (sorted, unique)
	calcTasks []storm.TaskID
	epoch     int
	awaiting  bool // a repartition was requested and not yet installed

	refAvgCom   float64
	refMaxLoad  float64
	hasRef      bool
	calibrating bool // first batch after an install re-measures the refs

	batchDocs  int64
	batchMsgs  int64
	batchCalc  []int64
	uncovered  map[tagset.Key]int
	pendingAdd map[tagset.Key]bool

	// notifyBuf buffers per-Calculator notifications when cfg.NotifyBatch
	// > 0 (nil otherwise): instead of one mailbox delivery per (document ×
	// involved Calculator), buffered notifications ship as one NotifyBatch
	// tuple per Calculator every NotifyBatch documents, plus on partition
	// install and Cleanup. bufDocs counts notified documents since the last
	// flush. Per-Calculator notification order is preserved.
	notifyBuf [][]NotifyMsg
	bufDocs   int

	// scratch buffers reused across documents.
	calcSeen map[int]int

	Stats DissemStats
}

// SnapshotStats returns a copy of the Disseminator's counters taken under
// the bolt's lock — the live view behind Pipeline.Snapshot. The copy
// shares nothing with the bolt, so callers may hold it indefinitely.
//
// The figure time series (CommSeries, LoadSeries) are deliberately left
// out: they grow with the run, and copying them under the lock on every
// snapshot would increasingly stall the document hot path. Read them
// after the run via Result.Dissem.
func (d *Disseminator) SnapshotStats() DissemStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.Stats
	s.PerCalculator = append([]int64(nil), d.Stats.PerCalculator...)
	s.CommSeries = metrics.Series{}
	s.LoadSeries = nil
	return s
}

// Epoch returns the epoch of the currently installed partitions (0 before
// the first install) and whether a repartition request is outstanding.
func (d *Disseminator) Epoch() (epoch int, awaiting bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.epoch, d.awaiting
}

// QualityRefs returns the reference quality values the Disseminator
// monitors against (ok=false before the first install) — checkpointed so
// a restored Disseminator resumes degradation monitoring with the same
// baseline instead of re-calibrating from scratch.
func (d *Disseminator) QualityRefs() (avgCom, maxLoad float64, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.refAvgCom, d.refMaxLoad, d.hasRef
}

// RestorePartitions rebuilds the inverted index from checkpointed
// partitions and adopts the checkpointed epoch and reference quality — the
// recovery path. Call before the run starts: with a non-zero epoch
// installed, the restarted Disseminator routes documents immediately
// instead of re-entering bootstrap. Monitoring state that is not
// checkpointed (batch statistics, uncovered-tagset counters) restarts
// empty.
func (d *Disseminator) RestorePartitions(epoch int, parts []partition.Partition, avgCom, maxLoad float64, hasRef bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.index = make(map[tagset.Tag][]int, len(d.index))
	for i, p := range parts {
		for _, tg := range p.Tags {
			d.index[tg] = appendUnique(d.index[tg], i)
		}
	}
	d.epoch = epoch
	d.awaiting = false
	d.refAvgCom = avgCom
	d.refMaxLoad = maxLoad
	d.hasRef = hasRef
	d.calibrating = false
	d.uncovered = make(map[tagset.Key]int)
	d.pendingAdd = make(map[tagset.Key]bool)
}

// NewDisseminator returns a Disseminator bolt.
func NewDisseminator(cfg Config) *Disseminator {
	return &Disseminator{
		cfg:        cfg,
		index:      make(map[tagset.Tag][]int),
		uncovered:  make(map[tagset.Key]int),
		pendingAdd: make(map[tagset.Key]bool),
		calcSeen:   make(map[int]int),
	}
}

// Prepare implements storm.Bolt.
func (d *Disseminator) Prepare(ctx *storm.TaskContext) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ctx = ctx
	d.calcTasks = ctx.TasksOf("calculator")
	d.batchCalc = make([]int64, len(d.calcTasks))
	d.Stats.PerCalculator = make([]int64, len(d.calcTasks))
	if d.cfg.NotifyBatch > 0 {
		d.notifyBuf = make([][]NotifyMsg, len(d.calcTasks))
	}
}

// Execute implements storm.Bolt.
func (d *Disseminator) Execute(t storm.Tuple, out storm.Collector) {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch t.Stream {
	case StreamDoc:
		d.onDoc(t.Values[0].(DocMsg), out)
	case StreamPartitions:
		d.install(t.Values[0].(PartitionsMsg), out)
	case StreamAdditionRes:
		d.onAdditionResult(t.Values[0].(AdditionRes))
	}
}

// Cleanup flushes the buffered notifications so the Calculators see every
// routed document before their own final-period flush (the Disseminator is
// declared before the Calculators, and the executors drain each component's
// Cleanup emissions before moving on).
func (d *Disseminator) Cleanup(out storm.Collector) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.flushNotify(out)
}

// flushNotify ships each Calculator's buffered notifications as one
// NotifyBatch tuple. Buffers are handed to the tuples (not reused): the
// consumer reads them from its mailbox concurrently.
func (d *Disseminator) flushNotify(out storm.Collector) {
	if d.notifyBuf == nil {
		return
	}
	for c, msgs := range d.notifyBuf {
		if len(msgs) == 0 {
			continue
		}
		out.EmitDirect(d.calcTasks[c], storm.Tuple{Stream: StreamNotify, Values: []interface{}{
			NotifyBatch{Msgs: msgs},
		}})
		d.notifyBuf[c] = nil
	}
	d.bufDocs = 0
}

// install rebuilds the inverted index from freshly merged partitions and
// adopts the Merger's reference quality values. Buffered notifications are
// flushed first, so everything routed under the outgoing index is delivered
// before the new epoch's traffic.
func (d *Disseminator) install(msg PartitionsMsg, out storm.Collector) {
	d.flushNotify(out)
	d.index = make(map[tagset.Tag][]int, len(d.index))
	for i, p := range msg.Parts {
		for _, tg := range p.Tags {
			d.index[tg] = appendUnique(d.index[tg], i)
		}
	}
	d.epoch = msg.Epoch
	d.awaiting = false
	// The Merger's reference values are computed over the merged partials
	// (whole partitions treated as tagsets) — the quality "as computed
	// immediately after their creation" (Section 7.2). With CalibrateRefs
	// they are instead re-measured from the first statistics batch over
	// live traffic.
	d.refAvgCom = msg.Quality.AvgCom
	d.refMaxLoad = msg.Quality.MaxLoad
	d.hasRef = true
	d.calibrating = d.cfg.CalibrateRefs
	d.resetBatch()
	d.uncovered = make(map[tagset.Key]int)
	d.pendingAdd = make(map[tagset.Key]bool)
}

// onAdditionResult extends the index with the added tagset's assignment.
func (d *Disseminator) onAdditionResult(msg AdditionRes) {
	for _, tg := range msg.Tags {
		d.index[tg] = appendUnique(d.index[tg], msg.Part)
	}
	k := msg.Tags.Key()
	delete(d.pendingAdd, k)
	delete(d.uncovered, k)
}

func appendUnique(s []int, v int) []int {
	for _, have := range s {
		if have == v {
			return s
		}
	}
	return append(s, v)
}

func (d *Disseminator) onDoc(msg DocMsg, out storm.Collector) {
	docStart := telemetry.Now()
	d.Stats.Docs++

	// Bootstrap: ask for the first partitions once a full window of data
	// has flowed into the Partitioners.
	if d.epoch == 0 && !d.awaiting && msg.Time >= d.cfg.WindowSpan {
		d.awaiting = true
		out.Emit(storm.Tuple{Stream: StreamRepartition, Values: []interface{}{
			RepartitionReq{Epoch: 1},
		}})
	}
	if len(d.index) == 0 {
		d.Stats.BeforePartition++
		return
	}

	// Route: collect, per involved Calculator, how many of the document's
	// tags it holds.
	for k := range d.calcSeen {
		delete(d.calcSeen, k)
	}
	for _, tg := range msg.Tags {
		for _, c := range d.index[tg] {
			d.calcSeen[c]++
		}
	}
	covered := false
	for c, n := range d.calcSeen {
		sub := msg.Tags
		if n < msg.Tags.Len() {
			sub = d.subsetFor(msg.Tags, c)
		} else {
			covered = true
		}
		if d.notifyBuf != nil {
			d.notifyBuf[c] = append(d.notifyBuf[c], NotifyMsg{Time: msg.Time, Tags: sub, Ingest: msg.Ingest, Trace: msg.Trace})
		} else {
			out.EmitDirect(d.calcTasks[c], storm.Tuple{Stream: StreamNotify, Values: []interface{}{
				NotifyMsg{Time: msg.Time, Tags: sub, Ingest: msg.Ingest, Trace: msg.Trace},
			}})
		}
		d.Stats.Notifications++
		d.batchMsgs++
		d.batchCalc[c]++
		d.Stats.PerCalculator[c]++
	}
	if len(d.calcSeen) > 0 {
		d.Stats.NotifiedDocs++
		d.batchDocs++
		if d.notifyBuf != nil {
			if d.bufDocs++; d.bufDocs >= d.cfg.NotifyBatch {
				d.flushNotify(out)
			}
		}
	}

	if !covered {
		d.Stats.UncoveredDocs++
		k := msg.Tags.Key()
		if !d.pendingAdd[k] {
			d.uncovered[k]++
			if d.uncovered[k] >= d.cfg.SN {
				d.pendingAdd[k] = true
				d.Stats.AdditionsAsked++
				out.Emit(storm.Tuple{Stream: StreamAddition, Values: []interface{}{
					AdditionReq{Tags: msg.Tags},
				}})
			}
		}
	}

	if msg.Trace != 0 {
		d.cfg.Flight.Span(msg.Trace, flight.StageDisseminate, docStart, telemetry.Now())
	}

	if d.batchDocs >= int64(d.cfg.StatsEvery) {
		d.evaluateBatch(out)
	}
}

// subsetFor returns the tags of s assigned to calculator c.
func (d *Disseminator) subsetFor(s tagset.Set, c int) tagset.Set {
	sub := make(tagset.Set, 0, s.Len())
	for _, tg := range s {
		for _, have := range d.index[tg] {
			if have == c {
				sub = append(sub, tg)
				break
			}
		}
	}
	return sub
}

// evaluateBatch computes the batch quality statistics, records the time
// series, and triggers a repartition when either statistic degraded beyond
// (1+thr) of its reference (Section 7.2).
func (d *Disseminator) evaluateBatch(out storm.Collector) {
	avgCom := float64(d.batchMsgs) / float64(d.batchDocs)
	maxLoad := metrics.MaxShareInts(d.batchCalc)
	x := float64(d.Stats.Docs)
	if !d.cfg.NoSeries {
		d.Stats.CommSeries.Record(x, avgCom)
		shares := make([]float64, len(d.batchCalc))
		var total int64
		for _, c := range d.batchCalc {
			total += c
		}
		if total > 0 {
			for i, c := range d.batchCalc {
				shares[i] = float64(c) / float64(total)
			}
		}
		sortDesc(shares)
		d.Stats.LoadSeries = append(d.Stats.LoadSeries, LoadSample{X: x, Shares: shares})
	}

	if d.calibrating {
		d.refAvgCom = avgCom
		d.refMaxLoad = maxLoad
		d.calibrating = false
	} else if d.hasRef && !d.awaiting {
		commBad := avgCom > d.refAvgCom*(1+d.cfg.Thr)
		loadBad := maxLoad > d.refMaxLoad*(1+d.cfg.Thr)
		if commBad || loadBad {
			cause := CauseLoad
			switch {
			case commBad && loadBad:
				d.Stats.CauseBoth++
				cause = CauseBoth
			case commBad:
				d.Stats.CauseComm++
				cause = CauseCommunication
			default:
				d.Stats.CauseLoad++
			}
			d.Stats.Repartitions++
			d.cfg.Flight.RecordEvent(flight.EventRepartition, fmt.Sprintf(
				"cause=%s epoch=%d avgCom=%.2f/%.2f maxLoad=%.2f/%.2f",
				cause, d.epoch+1, avgCom, d.refAvgCom, maxLoad, d.refMaxLoad))
			if !d.cfg.NoSeries {
				d.Stats.CommSeries.Mark(x)
			}
			d.awaiting = true
			out.Emit(storm.Tuple{Stream: StreamRepartition, Values: []interface{}{
				RepartitionReq{Epoch: d.epoch + 1},
			}})
		}
	}
	d.resetBatch()
}

func (d *Disseminator) resetBatch() {
	d.batchDocs = 0
	d.batchMsgs = 0
	for i := range d.batchCalc {
		d.batchCalc[i] = 0
	}
}

func sortDesc(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] > v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
