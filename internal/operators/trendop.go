package operators

import (
	"hash/fnv"
	"sync/atomic"

	"repro/internal/flight"
	"repro/internal/storm"
	"repro/internal/telemetry"
	"repro/internal/trend"
)

// Trend is the streaming trend-detection operator: the bolt downstream of
// the Tracker that feeds the shared trend.Stream detector with every
// accepted coefficient report. Its instances subscribe fields-grouped on
// the tagset key (TrendKey), so all reports of one tagset pass through the
// same task — per-tagset arrival order is preserved however many Trend
// tasks run, which is what the detector's upgrade-correction logic relies
// on. The detector itself is shard-locked, so the tasks feed it
// concurrently without coordination.
type Trend struct {
	det    *trend.Stream
	flight *flight.Recorder

	// Observed counts the reports this instance fed to the detector
	// (atomic: read mid-run by tests and snapshots).
	Observed int64
}

// NewTrend returns a Trend bolt feeding det.
func NewTrend(det *trend.Stream) *Trend { return &Trend{det: det} }

// SetFlight wires the flight recorder: traced reports record a trend
// span. Call before the run starts.
func (tb *Trend) SetFlight(rec *flight.Recorder) { tb.flight = rec }

// Detector returns the shared streaming detector.
func (tb *Trend) Detector() *trend.Stream { return tb.det }

// Prepare implements storm.Bolt.
func (tb *Trend) Prepare(*storm.TaskContext) {}

// Execute implements storm.Bolt.
func (tb *Trend) Execute(t storm.Tuple, _ storm.Collector) {
	msg := t.Values[0].(TrendMsg)
	start := telemetry.Now()
	tb.det.Observe(msg.Period, msg.Coeff)
	atomic.AddInt64(&tb.Observed, 1)
	if msg.Trace != 0 {
		tb.flight.Span(msg.Trace, flight.StageTrend, start, telemetry.Now())
	}
}

// TrendKey hashes a TrendMsg's tagset for fields grouping, so every report
// of one tagset reaches the same Trend task.
func TrendKey(t storm.Tuple) uint64 {
	msg := t.Values[0].(TrendMsg)
	h := fnv.New64a()
	h.Write([]byte(msg.Coeff.Tags.Key()))
	return h.Sum64()
}
