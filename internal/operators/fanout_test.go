package operators

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/jaccard"
	"repro/internal/partition"
	"repro/internal/storm"
	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/trend"
)

// scriptedSpout replays a fixed tuple sequence, one per NextTuple call.
type scriptedSpout struct {
	tuples []storm.Tuple
	i      int
}

func (s *scriptedSpout) Open(*storm.TaskContext) {}
func (s *scriptedSpout) NextTuple(out storm.Collector) bool {
	if s.i >= len(s.tuples) {
		return false
	}
	out.Emit(s.tuples[s.i])
	s.i++
	return true
}

// fanoutPartitions builds four overlapping partitions over tags 0..29, so
// many pairs are replicated across Calculators and the Tracker's duplicate
// path is exercised.
func fanoutPartitions() []partition.Partition {
	ranges := [][2]int{{0, 9}, {7, 16}, {14, 23}, {21, 29}}
	parts := make([]partition.Partition, len(ranges))
	for i, r := range ranges {
		var tags []tagset.Tag
		for tg := r[0]; tg <= r[1]; tg++ {
			tags = append(tags, tagset.Tag(tg))
		}
		if i == len(ranges)-1 {
			tags = append(tags, 0, 1) // wrap: the last partition overlaps the first
		}
		parts[i] = partition.Partition{Tags: tagset.New(tags...)}
	}
	return parts
}

// fanoutScript scripts one partition install followed by a deterministic
// document stream spanning several reporting periods.
func fanoutScript(nDocs int, seed int64) []storm.Tuple {
	tuples := []storm.Tuple{{Stream: StreamPartitions, Values: []interface{}{PartitionsMsg{
		Epoch: 1, Parts: fanoutPartitions(), Quality: partition.Quality{AvgCom: 1, MaxLoad: 0.5},
	}}}}
	rng := rand.New(rand.NewSource(seed))
	var tm stream.Millis
	for i := 0; i < nDocs; i++ {
		tm += stream.Millis(rng.Intn(20))
		n := 2 + rng.Intn(3)
		tags := make([]tagset.Tag, n)
		for j := range tags {
			tags[j] = tagset.Tag(rng.Intn(30))
		}
		tuples = append(tuples, storm.Tuple{Stream: StreamDoc, Values: []interface{}{
			DocMsg{Time: tm, Tags: tagset.New(tags...)},
		}})
	}
	return tuples
}

type fanoutRun struct {
	tracker  *Tracker
	det      *trend.Stream
	perTask  []int64 // tuples received per Tracker task
	received int64
	dups     int64
}

// runFanout executes the Disseminator→Calculator→Tracker→Trend segment over
// the scripted stream with fixed partitions, so the dataflow is fully
// deterministic under both executors and any fan-out configuration: fields
// grouping keeps every tagset on one Tracker task, and direct grouping
// keeps every Calculator's notification order.
func runFanout(t *testing.T, tuples []storm.Tuple, trackerTasks, notifyBatch int, concurrent bool) fanoutRun {
	t.Helper()
	cfg := DefaultConfig()
	cfg.K = 4
	cfg.ReportEvery = 5000
	cfg.WindowSpan = 1 << 40 // partitions arrive scripted; never bootstrap
	cfg.StatsEvery = 1 << 30 // no mid-run quality evaluation
	cfg.NotifyBatch = notifyBatch

	tr := NewTrackerWith(8, 32, 0)
	tr.EnableTrendEmit()
	det, err := trend.NewStream(trend.StreamConfig{Alpha: 0.5, MinSupport: 1, TopK: 16})
	if err != nil {
		t.Fatal(err)
	}

	b := storm.NewBuilder()
	b.Spout("source", func() storm.Spout { return &scriptedSpout{tuples: tuples} }, 1)
	b.Bolt("disseminator", func() storm.Bolt { return NewDisseminator(cfg) }, 1).Shuffle("source")
	b.Bolt("calculator", func() storm.Bolt { return NewCalculator(cfg) }, cfg.K).Direct("disseminator")
	b.Bolt("tracker", func() storm.Bolt { return tr }, trackerTasks).Fields("calculator", CoeffKey)
	b.Bolt("trend", func() storm.Bolt { return NewTrend(det) }, 2).Fields("tracker", TrendKey)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var st *storm.Stats
	if concurrent {
		st = topo.RunConcurrent()
	} else {
		st = topo.RunSequential()
	}
	run := fanoutRun{tracker: tr, det: det, perTask: st.TaskReceived(topo, "tracker")}
	run.received, run.dups = tr.Counts()
	return run
}

// sameFanoutState requires two runs to have converged to identical Tracker
// contents and identical trend state.
func sameFanoutState(t *testing.T, label string, got, want fanoutRun) {
	t.Helper()
	gp, wp := got.tracker.Periods(), want.tracker.Periods()
	if len(gp) != len(wp) {
		t.Fatalf("%s: periods %v, want %v", label, gp, wp)
	}
	for i := range wp {
		if gp[i] != wp[i] {
			t.Fatalf("%s: periods %v, want %v", label, gp, wp)
		}
	}
	for _, p := range wp {
		sameCoefficients(t, fmt.Sprintf("%s: Report(%d)", label, p),
			got.tracker.Report(p), want.tracker.Report(p))
	}
	if got.received != want.received || got.dups != want.dups {
		t.Errorf("%s: received/dups = %d/%d, want %d/%d",
			label, got.received, got.dups, want.received, want.dups)
	}

	if g, w := got.det.Tracked(), want.det.Tracked(); g != w {
		t.Errorf("%s: tracked predictors = %d, want %d", label, g, w)
	}
	for _, p := range wp {
		ge, we := got.det.TopTrends(p, 16), want.det.TopTrends(p, 16)
		if len(ge) != len(we) {
			t.Fatalf("%s: TopTrends(%d) has %d events, want %d", label, p, len(ge), len(we))
		}
		for i := range we {
			g, w := ge[i], we[i]
			if g.Tags.Key() != w.Tags.Key() || g.Score != w.Score ||
				g.Predicted != w.Predicted || g.Observed != w.Observed || g.CN != w.CN {
				t.Fatalf("%s: TopTrends(%d)[%d] = %+v, want %+v", label, p, i, g, w)
			}
		}
	}
}

// TestTrackerFanoutDifferential proves the hot-path fan-out configuration
// invisible to results: with the same input, every combination of Tracker
// parallelism (1 or 4 tasks sharing one Tracker), notification batching
// (per-document or every 64 documents) and executor (sequential FIFO or
// concurrent) converges to the same deduplicated Tracker coefficients and
// the same trend rankings as the all-defaults sequential run.
func TestTrackerFanoutDifferential(t *testing.T) {
	tuples := fanoutScript(4000, 7)
	base := runFanout(t, tuples, 1, 0, false)
	if st := base.tracker.StatsSnapshot(); st.Retained == 0 || st.Duplicates == 0 {
		t.Fatalf("baseline run not representative: %+v", st)
	}

	variants := []struct {
		name         string
		tasks, batch int
		concurrent   bool
	}{
		{"seq-tasks4-batch64", 4, 64, false},
		{"con-tasks1-batch0", 1, 0, true},
		{"con-tasks4-batch0", 4, 0, true},
		{"con-tasks1-batch64", 1, 64, true},
		{"con-tasks4-batch64", 4, 64, true},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			got := runFanout(t, tuples, v.tasks, v.batch, v.concurrent)
			sameFanoutState(t, v.name, got, base)
			if v.tasks > 1 {
				busy := 0
				for _, n := range got.perTask {
					if n > 0 {
						busy++
					}
				}
				if busy < 2 {
					t.Errorf("only %d of %d Tracker tasks received tuples", busy, v.tasks)
				}
			}
		})
	}
}

// TestCoeffKeyRoutesBatchesAndSinglesAlike pins the routing contract: a
// single-coefficient CoeffMsg must land on the same Tracker task as any
// sub-batch carrying its tagset, for any task count.
func TestCoeffKeyRoutesBatchesAndSinglesAlike(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tasks := range []uint64{2, 4, 8} {
		for i := 0; i < 200; i++ {
			a := tagset.Tag(rng.Intn(100))
			set := tagset.New(a, a+1+tagset.Tag(rng.Intn(5)))
			c := jaccard.Coefficient{Tags: set, J: 0.5, CN: 3}
			single := storm.Tuple{Stream: StreamCoeff, Values: []interface{}{CoeffMsg{Period: 1, Coeff: c}}}
			g := routeHash(set.Key()) % tasks
			batch := storm.Tuple{Stream: StreamCoeff, Values: []interface{}{CoeffBatch{
				Period: 1, Route: g, Coeffs: []jaccard.Coefficient{c},
			}}}
			if CoeffKey(single)%tasks != CoeffKey(batch)%tasks {
				t.Fatalf("tasks=%d: %v routes single to %d, batch to %d",
					tasks, set, CoeffKey(single)%tasks, CoeffKey(batch)%tasks)
			}
		}
	}
}

// TestCalculatorSubBatchedFlush: with Tracker parallelism the flush splits
// into per-task sub-batches whose union is exactly the single-task batch,
// every coefficient routed by its tagset-key hash.
func TestCalculatorSubBatchedFlush(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReportEvery = 1000
	single, split := NewCalculator(cfg), NewCalculator(cfg)
	single.Prepare(&storm.TaskContext{})
	split.Prepare(&storm.TaskContext{})
	split.trackerTasks = 3

	outS, outM := newCollector(), newCollector()
	for _, pair := range []struct {
		c   *Calculator
		out *collector
	}{{single, outS}, {split, outM}} {
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 400; i++ {
			a := tagset.Tag(rng.Intn(20))
			b := a + 1 + tagset.Tag(rng.Intn(4))
			pair.c.Execute(storm.Tuple{Stream: StreamNotify, Values: []interface{}{
				NotifyMsg{Time: stream.Millis(i), Tags: tagset.New(a, b)},
			}}, pair.out)
		}
		// Crossing the boundary flushes period 1.
		pair.c.Execute(storm.Tuple{Stream: StreamNotify, Values: []interface{}{
			NotifyMsg{Time: 1500, Tags: tagset.New(1, 2)},
		}}, pair.out)
	}

	want := outS.byStream(StreamCoeff)
	if len(want) != 1 {
		t.Fatalf("single-task flush emitted %d tuples", len(want))
	}
	wantCoeffs := append([]jaccard.Coefficient(nil), want[0].Values[0].(CoeffBatch).Coeffs...)
	sortCoefficients(wantCoeffs)

	sub := outM.byStream(StreamCoeff)
	if len(sub) < 2 {
		t.Fatalf("split flush emitted %d sub-batches, want >= 2", len(sub))
	}
	var union []jaccard.Coefficient
	for _, tp := range sub {
		bt := tp.Values[0].(CoeffBatch)
		if bt.Period != 1 {
			t.Errorf("sub-batch period = %d", bt.Period)
		}
		if bt.Route >= 3 {
			t.Errorf("sub-batch route = %d with 3 tasks", bt.Route)
		}
		for _, co := range bt.Coeffs {
			if g := routeHash(co.Tags.Key()) % 3; g != bt.Route {
				t.Errorf("%v in sub-batch %d, hash routes to %d", co.Tags, bt.Route, g)
			}
			union = append(union, co)
		}
	}
	sortCoefficients(union)
	sameCoefficients(t, "sub-batch union", union, wantCoeffs)
}

// TestCalculatorIdleGapJump: a large timestamp gap must flush the finished
// period once and jump straight to the period containing the new message —
// the old one-ReportEvery-per-iteration loop would burn one allocation and
// one no-op flush per empty period (a billion of them here).
func TestCalculatorIdleGapJump(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReportEvery = 1000
	c := NewCalculator(cfg)
	c.Prepare(&storm.TaskContext{})
	out := newCollector()
	notify := func(tm stream.Millis) {
		c.Execute(storm.Tuple{Stream: StreamNotify, Values: []interface{}{
			NotifyMsg{Time: tm, Tags: tagset.New(1, 2)},
		}}, out)
	}
	notify(100)
	notify(200)
	const far = stream.Millis(1) << 40 // ~10^9 empty periods later
	notify(far)
	coeffs := out.byStream(StreamCoeff)
	if len(coeffs) != 1 {
		t.Fatalf("emitted %d coeff tuples across the gap, want 1", len(coeffs))
	}
	if got := coeffs[0].Values[0].(CoeffBatch).Period; got != 1 {
		t.Errorf("flushed period = %d, want 1", got)
	}
	if c.Reports != 1 {
		t.Errorf("Reports = %d after the gap, want 1", c.Reports)
	}
	c.Cleanup(out)
	all := out.byStream(StreamCoeff)
	if len(all) != 2 {
		t.Fatalf("after cleanup emitted %d tuples, want 2", len(all))
	}
	wantPeriod := int64(alignUp(far, cfg.ReportEvery) / cfg.ReportEvery)
	if got := all[1].Values[0].(CoeffBatch).Period; got != wantPeriod {
		t.Errorf("final period = %d, want %d", got, wantPeriod)
	}
}

// TestCalculatorAcceptsNotifyBatch: a NotifyBatch tuple is equivalent to its
// messages delivered one by one.
func TestCalculatorAcceptsNotifyBatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReportEvery = 1000
	one, batched := NewCalculator(cfg), NewCalculator(cfg)
	one.Prepare(&storm.TaskContext{})
	batched.Prepare(&storm.TaskContext{})
	outOne, outBatched := newCollector(), newCollector()

	msgs := []NotifyMsg{
		{Time: 100, Tags: tagset.New(1, 2)},
		{Time: 200, Tags: tagset.New(1, 2)},
		{Time: 300, Tags: tagset.New(1, 3)},
		{Time: 1500, Tags: tagset.New(1, 2)}, // crosses the boundary mid-batch
	}
	for _, m := range msgs {
		one.Execute(storm.Tuple{Stream: StreamNotify, Values: []interface{}{m}}, outOne)
	}
	batched.Execute(storm.Tuple{Stream: StreamNotify, Values: []interface{}{NotifyBatch{Msgs: msgs}}}, outBatched)

	if one.Observed != batched.Observed {
		t.Errorf("Observed = %d batched vs %d single", batched.Observed, one.Observed)
	}
	a, b := outOne.byStream(StreamCoeff), outBatched.byStream(StreamCoeff)
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("flushes: %d single, %d batched, want 1 each", len(a), len(b))
	}
	ca := append([]jaccard.Coefficient(nil), a[0].Values[0].(CoeffBatch).Coeffs...)
	cb := append([]jaccard.Coefficient(nil), b[0].Values[0].(CoeffBatch).Coeffs...)
	sortCoefficients(ca)
	sortCoefficients(cb)
	sameCoefficients(t, "batched flush", cb, ca)
}

// TestDisseminatorNotifyBatching pins the buffering contract: nothing ships
// until NotifyBatch documents were notified, flushes preserve per-Calculator
// order, the logical counters are unaffected, and partial buffers flush on
// partition install and Cleanup.
func TestDisseminatorNotifyBatching(t *testing.T) {
	cfg := DefaultConfig()
	cfg.K = 2
	cfg.NotifyBatch = 2
	d, out := buildDissem(cfg)
	installPartitions(d, out,
		partition.Partition{Tags: tagset.New(1, 2)},
		partition.Partition{Tags: tagset.New(2, 3)},
	)

	d.Execute(docTuple(10, 1, 2), out) // calc0 gets {1,2}, calc1 gets {2}
	if len(out.direct[0]) != 0 || len(out.direct[1]) != 0 {
		t.Fatal("notifications shipped before the batch filled")
	}
	if d.Stats.Notifications != 2 || d.Stats.NotifiedDocs != 1 {
		t.Errorf("buffering distorted counters: %+v", d.Stats)
	}

	d.Execute(docTuple(20, 1), out) // second notified document: flush
	if len(out.direct[0]) != 1 || len(out.direct[1]) != 1 {
		t.Fatalf("flush deliveries: calc0=%d calc1=%d, want 1 each",
			len(out.direct[0]), len(out.direct[1]))
	}
	nb := out.direct[0][0].Values[0].(NotifyBatch)
	if len(nb.Msgs) != 2 || nb.Msgs[0].Time != 10 || nb.Msgs[1].Time != 20 {
		t.Fatalf("calc0 batch out of order: %+v", nb.Msgs)
	}
	if !nb.Msgs[0].Tags.Equal(tagset.New(1, 2)) || !nb.Msgs[1].Tags.Equal(tagset.New(1)) {
		t.Errorf("calc0 batch subsets: %+v", nb.Msgs)
	}
	if got := out.direct[1][0].Values[0].(NotifyBatch); len(got.Msgs) != 1 || !got.Msgs[0].Tags.Equal(tagset.New(2)) {
		t.Errorf("calc1 batch: %+v", got.Msgs)
	}

	// A partition install flushes the partial buffer first.
	d.Execute(docTuple(30, 3), out) // buffered towards calc1
	installPartitions(d, out,
		partition.Partition{Tags: tagset.New(1, 2)},
		partition.Partition{Tags: tagset.New(2, 3)},
	)
	if len(out.direct[1]) != 2 {
		t.Fatalf("install did not flush the buffer: calc1 deliveries = %d", len(out.direct[1]))
	}
	if got := out.direct[1][1].Values[0].(NotifyBatch); len(got.Msgs) != 1 || got.Msgs[0].Time != 30 {
		t.Errorf("post-install batch: %+v", got.Msgs)
	}

	// Cleanup flushes what is left.
	d.Execute(docTuple(40, 1), out) // buffered towards calc0
	d.Cleanup(out)
	if len(out.direct[0]) != 2 {
		t.Fatalf("Cleanup did not flush the buffer: calc0 deliveries = %d", len(out.direct[0]))
	}
	if got := out.direct[0][1].Values[0].(NotifyBatch); len(got.Msgs) != 1 || got.Msgs[0].Time != 40 {
		t.Errorf("cleanup batch: %+v", got.Msgs)
	}
}
