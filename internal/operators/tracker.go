package operators

import (
	"container/heap"
	"container/list"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/flight"
	"repro/internal/jaccard"
	"repro/internal/storm"
	"repro/internal/tagset"
	"repro/internal/telemetry"
	"repro/internal/topselect"
)

// Tracker collects the Jaccard coefficients from all Calculators. When the
// same tagset is reported by multiple Calculators in one period (tags
// replicated across partitions), it keeps the coefficient with the largest
// counter CN — the longest-tracked one (Section 6.2).
//
// The Tracker is the live query state of the whole system, so it is built
// for concurrent reads under a write-heavy report stream:
//
//   - Retained coefficients are sharded by a hash of the tagset key; a
//     report locks only its shard, so report-side contention drops as the
//     number of reporting Calculators grows.
//   - Every shard incrementally maintains its top coefficients in a bounded
//     indexed min-heap, updated on report, duplicate upgrade and period
//     eviction. TopK(k) therefore merges the shard heaps — O(shards·bound)
//     candidates, O(k log k) selection — and never scans the retained
//     coefficient tables.
//   - A global period registry enforces the retention bound (SetRetention):
//     opening a new period prunes the oldest ones everywhere, and a floor
//     mark makes late reports for pruned periods cheap no-ops.
//   - Pruned coefficients can be remembered in a bounded LRU so point
//     lookups (the /pairs endpoint) still answer for pairs whose periods
//     have been evicted.
//
// All read methods (Periods, Report, All, TopK, Lookup, LookupDetail,
// Counts, StatsSnapshot) may be called from any goroutine while a
// concurrent pipeline run is still feeding the Tracker — this is the live
// view behind Pipeline.Snapshot and the HTTP query service.
type Tracker struct {
	shards []*trackerShard
	mask   uint64

	// bound is the top-k bound TopK's path decision reads (atomic); it is
	// published on the safe side of a SetTopKBound shard sweep, so the
	// heap-merge path never runs against shards that maintain less than
	// it. cfgMu serializes bound changes.
	bound int64
	cfgMu sync.Mutex

	reg periodRegistry
	lru *evictedLRU // nil when disabled

	// emitTrend forwards accepted reports on StreamTrend (EnableTrendEmit);
	// set during topology assembly, read-only once the run starts.
	emitTrend bool

	// archive receives accepted reports and period seals (SetArchive);
	// periodHook fires when a brand-new period registers (SetPeriodHook).
	// Both are set during assembly, read-only once the run starts.
	archive    TrackerArchive
	periodHook func(period int64)

	// stages records the doc→tracker-accept latency of each ingested
	// coefficient batch (SetStages); set during assembly, read-only once
	// the run starts.
	stages *Stages

	// flightRec records track/archive spans for traced batches and
	// retention-prune events (SetFlight); set during assembly, read-only
	// once the run starts. Nil-safe.
	flightRec *flight.Recorder

	// Received counts all incoming coefficients; Duplicates counts those
	// that collided with an existing report for the same tagset and period;
	// Late counts reports dropped because their period was already pruned.
	// All three are updated atomically; read them via Counts or
	// StatsSnapshot while a run is in flight.
	Received   int64
	Duplicates int64
	Late       int64
}

const (
	defaultTrackerShards = 16
	defaultTopKBound     = 128
)

// NewTracker returns a Tracker bolt with the default shard count and top-k
// bound and no evicted-coefficient LRU.
func NewTracker() *Tracker { return NewTrackerWith(0, 0, 0) }

// NewTrackerWith returns a Tracker with the given shard count (rounded up
// to a power of two; <= 0 uses the default 16), maintained top-k bound
// (<= 0 uses the default 128) and evicted-coefficient LRU capacity (<= 0
// disables the LRU).
func NewTrackerWith(shards, topKBound, evictedCap int) *Tracker {
	if shards <= 0 {
		shards = defaultTrackerShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if topKBound <= 0 {
		topKBound = defaultTopKBound
	}
	tr := &Tracker{
		shards: make([]*trackerShard, n),
		mask:   uint64(n - 1),
		bound:  int64(topKBound),
	}
	for i := range tr.shards {
		tr.shards[i] = newTrackerShard(topKBound)
	}
	tr.reg.known = make(map[int64]struct{})
	tr.reg.floor = math.MinInt64
	if evictedCap > 0 {
		tr.lru = newEvictedLRU(evictedCap)
	}
	return tr
}

// SetRetention bounds the Tracker to the n most recent reporting periods
// (0 keeps everything — the batch default). Older periods are pruned as
// new ones open, so a long-running service's memory stays proportional to
// n. Call before the run starts; All/TopK/Lookup then cover only the
// retained periods (plus, for Lookup, the evicted LRU when enabled).
func (tr *Tracker) SetRetention(n int) {
	tr.reg.mu.Lock()
	defer tr.reg.mu.Unlock()
	tr.reg.keep = n
}

// SetTopKBound sets the per-shard incremental top-k bound and rebuilds the
// shard heaps. TopK(k) with k <= bound is served from the maintained heaps;
// larger k falls back to a full scan. Safe to call while a run is in
// flight: the bound TopK's path decision reads is published on the safe
// side of the shard sweep (after it when raising, before it when
// lowering), and TopK re-checks the bound under each shard lock, falling
// back to the exact scan if a concurrent lowering shrank a heap below the
// k it assumed.
func (tr *Tracker) SetTopKBound(n int) {
	if n < 1 {
		return
	}
	tr.cfgMu.Lock()
	defer tr.cfgMu.Unlock()
	tr.setBoundLocked(n)
}

func (tr *Tracker) setBoundLocked(n int) {
	cur := int(atomic.LoadInt64(&tr.bound))
	if n == cur {
		return
	}
	if n < cur {
		atomic.StoreInt64(&tr.bound, int64(n))
	}
	for _, s := range tr.shards {
		s.mu.Lock()
		if s.bound != n {
			s.bound = n
			s.rebuild()
		}
		s.mu.Unlock()
	}
	if n > cur {
		atomic.StoreInt64(&tr.bound, int64(n))
	}
}

// EnsureTopKBound raises the top-k bound to at least n (it never lowers
// it). The query service calls this so its configured top-k size is always
// served from the maintained heaps.
func (tr *Tracker) EnsureTopKBound(n int) {
	tr.cfgMu.Lock()
	defer tr.cfgMu.Unlock()
	if n > int(atomic.LoadInt64(&tr.bound)) {
		tr.setBoundLocked(n)
	}
}

func (tr *Tracker) topKBound() int {
	return int(atomic.LoadInt64(&tr.bound))
}

// Prepare implements storm.Bolt.
func (tr *Tracker) Prepare(*storm.TaskContext) {}

// EnableTrendEmit makes the Tracker forward every accepted report — fresh
// (period, tagset) coefficients and CN upgrades — on StreamTrend, the feed
// of the Trend operator. Call before the run starts.
func (tr *Tracker) EnableTrendEmit() { tr.emitTrend = true }

// SetStages wires the stage-latency histograms: each CoeffBatch carrying
// an ingest stamp records its doc→tracker-accept latency once ingested.
// Call before the run starts.
func (tr *Tracker) SetStages(st *Stages) { tr.stages = st }

// SetFlight wires the flight recorder: traced coefficient batches record
// track (and archive) spans and retention prunes record events. Call
// before the run starts.
func (tr *Tracker) SetFlight(rec *flight.Recorder) { tr.flightRec = rec }

// Execute implements storm.Bolt: the report path. Calculators ship one
// CoeffBatch per period flush; the single-coefficient CoeffMsg form is
// accepted too. Each coefficient consults the period registry (opening a
// new period may prune old ones), then locks only the shard owning its
// tagset key.
func (tr *Tracker) Execute(t storm.Tuple, out storm.Collector) {
	switch msg := t.Values[0].(type) {
	case CoeffBatch:
		start := telemetry.Now()
		for _, c := range msg.Coeffs {
			tr.reportOne(msg.Period, c, msg.Trace, out)
		}
		if tr.stages != nil && msg.Ingest > 0 {
			tr.stages.DocTrackerAccept.Record(telemetry.Since(msg.Ingest))
		}
		if msg.Trace != 0 {
			tr.flightRec.Span(msg.Trace, flight.StageTrack, start, telemetry.Now())
		}
	case CoeffMsg:
		tr.reportOne(msg.Period, msg.Coeff, 0, out)
	}
}

func (tr *Tracker) reportOne(period int64, c jaccard.Coefficient, trace uint64, out storm.Collector) {
	atomic.AddInt64(&tr.Received, 1)

	retained, fresh, pruned := tr.reg.ensure(period)
	for _, p := range pruned {
		tr.prunePeriod(p)
	}
	if !retained {
		atomic.AddInt64(&tr.Late, 1)
		return
	}
	// The period hook fires before this first report of the new period is
	// recorded: a checkpoint taken inside the hook therefore holds no data
	// of the new period at all, and the recovery replay (which starts at
	// the new period's first document) cannot double-count anything.
	if fresh && tr.periodHook != nil {
		tr.periodHook(period)
	}

	key := c.Tags.Key()
	dup, late, updated := tr.shardOf(key).report(period, key, c)
	if dup {
		atomic.AddInt64(&tr.Duplicates, 1)
	}
	if late {
		atomic.AddInt64(&tr.Late, 1)
		return
	}
	if !dup || updated {
		if tr.archive != nil {
			archStart := telemetry.Now()
			tr.archive.AppendCoefficient(period, c)
			if trace != 0 {
				tr.flightRec.Span(trace, flight.StageArchive, archStart, telemetry.Now())
			}
		}
		if tr.emitTrend && out != nil {
			out.Emit(storm.Tuple{Stream: StreamTrend, Values: []interface{}{
				TrendMsg{Period: period, Coeff: c, Trace: trace},
			}})
		}
	}
}

// prunePeriod evicts one period from every shard and remembers the evicted
// coefficients in the LRU (newest period wins per pair). Exactly one
// goroutine prunes a given period: the registry hands each pruned id out
// once. The evicted entries are inserted in tagset-key order — map
// iteration order would otherwise randomize the LRU's recency list (and,
// when the LRU is full, which pairs survive), making otherwise
// deterministic runs diverge.
func (tr *Tracker) prunePeriod(p int64) {
	var evicted []topEntry
	for _, s := range tr.shards {
		s.mu.Lock()
		m := s.evictPeriod(p)
		s.mu.Unlock()
		if tr.lru != nil {
			for k, c := range m {
				evicted = append(evicted, topEntry{ek: entryKey{period: p, key: k}, c: c})
			}
		}
	}
	if tr.lru != nil {
		sort.Slice(evicted, func(i, j int) bool { return evicted[i].ek.key < evicted[j].ek.key })
		for _, e := range evicted {
			tr.lru.add(e.ek.key, e.c, p)
		}
	}
	if tr.archive != nil {
		tr.archive.SealPeriod(p)
	}
	tr.flightRec.RecordEvent(flight.EventRetentionPrune,
		"period "+strconv.FormatInt(p, 10)+" pruned")
}

// shardOf routes a tagset key to its shard (routeHash: FNV-1a over the key
// bytes, the same hash the Calculators group sub-batches with).
func (tr *Tracker) shardOf(k tagset.Key) *trackerShard {
	return tr.shards[routeHash(k)&tr.mask]
}

// PruneFloor returns the retention pruning floor: every period at or
// below it has been pruned, and late reports for those periods are
// rejected, so their archived segments can never grow again
// (math.MinInt64 before the first prune). The archive compactor uses it
// as the seal watermark.
func (tr *Tracker) PruneFloor() int64 {
	tr.reg.mu.RLock()
	defer tr.reg.mu.RUnlock()
	return tr.reg.floor
}

// Periods returns the retained reporting period ids in ascending order.
func (tr *Tracker) Periods() []int64 {
	tr.reg.mu.RLock()
	out := make([]int64, 0, len(tr.reg.known))
	for p := range tr.reg.known {
		out = append(out, p)
	}
	tr.reg.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Report returns the deduplicated coefficients of one period, sorted by
// descending J.
func (tr *Tracker) Report(period int64) []jaccard.Coefficient {
	var out []jaccard.Coefficient
	for _, s := range tr.shards {
		s.mu.Lock()
		for _, c := range s.periods[period] {
			out = append(out, c)
		}
		s.mu.Unlock()
	}
	sortCoefficients(out)
	return out
}

// All returns every deduplicated coefficient across the retained periods,
// period by period in ascending order, each period sorted by descending J.
func (tr *Tracker) All() []jaccard.Coefficient {
	var out []jaccard.Coefficient
	for _, p := range tr.Periods() {
		out = append(out, tr.Report(p)...)
	}
	return out
}

// TopK returns the k highest-Jaccard coefficients across every retained
// period, deduplicated per period exactly as All. Ties break by descending
// CN, then the tagset key, so the result is deterministic for a fixed
// Tracker state. k <= 0 returns all.
//
// For k within the maintained bound (SetTopKBound, default 128) the call
// merges the shards' incrementally maintained heaps: it copies at most
// shards·bound candidates and selects k of them — no scan of the retained
// coefficient tables, so the cost is independent of how many coefficients
// the Tracker holds. k <= 0 or k > bound falls back to a full gather.
func (tr *Tracker) TopK(k int) []jaccard.Coefficient {
	if k <= 0 || k > tr.topKBound() {
		return tr.topKScan(k)
	}
	var cand []topEntry
	for _, s := range tr.shards {
		s.mu.Lock()
		if s.bound < k {
			// The bound was lowered between the path decision and this
			// lock: the shard no longer maintains its top k, so the merge
			// would be silently incomplete. The scan is always exact.
			s.mu.Unlock()
			return tr.topKScan(k)
		}
		cand = append(cand, s.top.entries...)
		s.mu.Unlock()
	}
	cand = topselect.Select(cand, k, entryBefore)
	out := make([]jaccard.Coefficient, len(cand))
	for i, e := range cand {
		out[i] = e.c
	}
	sortCoefficients(out)
	return out
}

// topKScan is the pre-sharding selection: gather every retained
// coefficient, then bounded-heap select. Kept as the fallback for k beyond
// the maintained bound (and as the baseline the benchmarks compare
// against). The shard locks are held only to copy coefficients, never to
// sort them.
func (tr *Tracker) topKScan(k int) []jaccard.Coefficient {
	var all []jaccard.Coefficient
	for _, s := range tr.shards {
		s.mu.Lock()
		for _, m := range s.periods {
			for _, c := range m {
				all = append(all, c)
			}
		}
		s.mu.Unlock()
	}
	all = topselect.Select(all, k, coeffBefore)
	sortCoefficients(all)
	return all
}

// Lookup returns the most recent coefficient reported for the given tagset
// key, together with its reporting period. Retained periods are consulted
// newest-first; when the key's periods have all been pruned and the
// evicted LRU is enabled, the LRU answers instead.
func (tr *Tracker) Lookup(k tagset.Key) (jaccard.Coefficient, int64, bool) {
	c, period, _, ok := tr.LookupDetail(k)
	return c, period, ok
}

// LookupDetail is Lookup plus an evicted flag: true when the answer came
// from the evicted-coefficient LRU rather than a retained period.
func (tr *Tracker) LookupDetail(k tagset.Key) (c jaccard.Coefficient, period int64, evicted, ok bool) {
	s := tr.shardOf(k)
	s.mu.Lock()
	for p, m := range s.periods {
		if got, here := m[k]; here && (!ok || p > period) {
			c, period, ok = got, p, true
		}
	}
	s.mu.Unlock()
	if ok {
		return c, period, false, true
	}
	if tr.lru != nil {
		if c, period, ok = tr.lru.get(k); ok {
			return c, period, true, true
		}
	}
	return jaccard.Coefficient{}, 0, false, false
}

// Counts returns the received and duplicate counters, for mid-run reads.
func (tr *Tracker) Counts() (received, duplicates int64) {
	return atomic.LoadInt64(&tr.Received), atomic.LoadInt64(&tr.Duplicates)
}

// TrackerStats is a point-in-time view of the Tracker's internal structure
// (shards, maintained heaps, retention, evicted LRU), exposed through
// Pipeline.Snapshot and the /stats endpoint.
type TrackerStats struct {
	Shards    int // shard count
	TopKBound int // per-shard incremental top-k bound

	Retained        int   // retained coefficients across all shards
	RetainedPeriods int   // retained period count
	HeapEntries     int   // entries currently held in the shard heaps
	Rebuilds        int64 // heap rebuilds (prunes, demotions, bound changes)
	PrunedPeriods   int64 // periods evicted by retention so far

	EvictedLen    int   // pairs currently in the evicted LRU
	EvictedCap    int   // LRU capacity (0: disabled)
	EvictedHits   int64 // lookups answered from the LRU
	EvictedMisses int64 // LRU lookups that found nothing

	Received   int64
	Duplicates int64
	Late       int64
}

// StatsSnapshot gathers the structural counters under the shard locks.
func (tr *Tracker) StatsSnapshot() TrackerStats {
	st := TrackerStats{
		Shards:     len(tr.shards),
		TopKBound:  tr.topKBound(),
		Received:   atomic.LoadInt64(&tr.Received),
		Duplicates: atomic.LoadInt64(&tr.Duplicates),
		Late:       atomic.LoadInt64(&tr.Late),
	}
	for _, s := range tr.shards {
		s.mu.Lock()
		st.Retained += s.entries
		st.HeapEntries += s.top.Len()
		st.Rebuilds += s.rebuilds
		s.mu.Unlock()
	}
	tr.reg.mu.RLock()
	st.RetainedPeriods = len(tr.reg.known)
	st.PrunedPeriods = tr.reg.pruned
	tr.reg.mu.RUnlock()
	if tr.lru != nil {
		st.EvictedLen, st.EvictedCap, st.EvictedHits, st.EvictedMisses = tr.lru.stats()
	}
	return st
}

// ConsistentView returns the top-k coefficients, the retained period ids
// (ascending) and the structural stats gathered in one pass: the registry
// read-lock and every shard lock are held simultaneously while the fields
// are read, so the three views describe the same instant. This is the
// serving layer's snapshot read — under CPU saturation the piecemeal
// TopK/Periods/StatsSnapshot calls could be seconds apart, producing
// snapshots whose fields contradict each other (ROADMAP: snapshot
// staleness). Writers block only for the copy-out, never for sorting.
func (tr *Tracker) ConsistentView(k int) (top []jaccard.Coefficient, periods []int64, st TrackerStats) {
	st = TrackerStats{
		Shards:     len(tr.shards),
		TopKBound:  tr.topKBound(),
		Received:   atomic.LoadInt64(&tr.Received),
		Duplicates: atomic.LoadInt64(&tr.Duplicates),
		Late:       atomic.LoadInt64(&tr.Late),
	}

	tr.reg.mu.RLock()
	for _, s := range tr.shards {
		s.mu.Lock()
	}

	periods = make([]int64, 0, len(tr.reg.known))
	for p := range tr.reg.known {
		periods = append(periods, p)
	}
	st.RetainedPeriods = len(tr.reg.known)
	st.PrunedPeriods = tr.reg.pruned

	var cand []jaccard.Coefficient
	for _, s := range tr.shards {
		st.Retained += s.entries
		st.HeapEntries += s.top.Len()
		st.Rebuilds += s.rebuilds
		if k > 0 && k <= s.bound {
			// The maintained heap holds this shard's best min(bound,
			// entries) coefficients — a superset of its top-k contribution.
			for _, e := range s.top.entries {
				cand = append(cand, e.c)
			}
		} else {
			for _, m := range s.periods {
				for _, c := range m {
					cand = append(cand, c)
				}
			}
		}
	}

	for _, s := range tr.shards {
		s.mu.Unlock()
	}
	tr.reg.mu.RUnlock()

	sort.Slice(periods, func(i, j int) bool { return periods[i] < periods[j] })
	cand = topselect.Select(cand, k, coeffBefore)
	sortCoefficients(cand)
	if tr.lru != nil {
		st.EvictedLen, st.EvictedCap, st.EvictedHits, st.EvictedMisses = tr.lru.stats()
	}
	return cand, periods, st
}

// periodRegistry tracks the retained period ids globally, so the retention
// bound is enforced across shards: a period is pruned everywhere exactly
// once, and the floor marks everything at or below it as dead so late
// reports are rejected without touching the coefficient tables.
type periodRegistry struct {
	mu     sync.RWMutex
	known  map[int64]struct{}
	keep   int   // retained periods; 0 keeps everything
	floor  int64 // all periods <= floor are pruned
	pruned int64
}

// ensure registers period and returns whether it is retained, whether this
// call registered it fresh (the period-hook signal), plus the period ids
// this call decided to prune (each id is handed out exactly once; the
// caller must evict them from the shards).
func (r *periodRegistry) ensure(period int64) (retained, fresh bool, prune []int64) {
	r.mu.RLock()
	_, known := r.known[period]
	r.mu.RUnlock()
	if known {
		return true, false, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if period <= r.floor {
		return false, false, nil
	}
	if _, known := r.known[period]; known {
		return true, false, nil
	}
	r.known[period] = struct{}{}
	fresh = true
	if r.keep > 0 {
		for len(r.known) > r.keep {
			oldest := period
			for p := range r.known {
				if p < oldest {
					oldest = p
				}
			}
			delete(r.known, oldest)
			if oldest > r.floor {
				r.floor = oldest
			}
			r.pruned++
			prune = append(prune, oldest)
		}
	}
	_, retained = r.known[period]
	return retained, fresh, prune
}

// entryKey identifies one retained coefficient: a (period, tagset) pair.
type entryKey struct {
	period int64
	key    tagset.Key
}

// topEntry is one coefficient in a shard's maintained heap.
type topEntry struct {
	ek entryKey
	c  jaccard.Coefficient
}

// entryBefore ranks heap entries like coeffBefore, but compares the cached
// tagset key instead of re-encoding it.
func entryBefore(a, b topEntry) bool {
	if a.c.J != b.c.J {
		return a.c.J > b.c.J
	}
	if a.c.CN != b.c.CN {
		return a.c.CN > b.c.CN
	}
	return a.ek.key < b.ek.key
}

// topIndex is an indexed min-heap under entryBefore: the root ranks last
// among the kept entries, and pos maps every kept (period, key) to its heap
// slot so updates and removals are O(log n).
type topIndex struct {
	entries []topEntry
	pos     map[entryKey]int
}

func (h *topIndex) Len() int           { return len(h.entries) }
func (h *topIndex) Less(i, j int) bool { return entryBefore(h.entries[j], h.entries[i]) }
func (h *topIndex) Swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
	h.pos[h.entries[i].ek] = i
	h.pos[h.entries[j].ek] = j
}
func (h *topIndex) Push(x interface{}) {
	e := x.(topEntry)
	h.pos[e.ek] = len(h.entries)
	h.entries = append(h.entries, e)
}
func (h *topIndex) Pop() interface{} {
	old := h.entries
	e := old[len(old)-1]
	h.entries = old[:len(old)-1]
	delete(h.pos, e.ek)
	return e
}

// trackerShard owns the coefficients whose tagset keys hash to it: the
// per-period tables plus the incrementally maintained top heap.
//
// Invariant: top holds exactly the best min(bound, entries) retained
// coefficients of this shard under entryBefore. Reports and duplicate
// upgrades maintain it in O(log bound); the rare cases where an excluded
// entry may need to re-enter (a demotion or an eviction while entries are
// excluded) rebuild the heap from the tables.
type trackerShard struct {
	mu       sync.Mutex
	periods  map[int64]map[tagset.Key]jaccard.Coefficient
	entries  int   // retained coefficients in this shard
	floor    int64 // shard-local copy of the pruning floor
	bound    int
	top      topIndex
	rebuilds int64
}

func newTrackerShard(bound int) *trackerShard {
	return &trackerShard{
		periods: make(map[int64]map[tagset.Key]jaccard.Coefficient),
		floor:   math.MinInt64,
		bound:   bound,
		top:     topIndex{pos: make(map[entryKey]int)},
	}
}

// report records one coefficient. It reports whether the report collided
// with an existing (period, key) entry, whether it was dropped because the
// period was pruned between the registry check and this shard lock, and —
// for collisions — whether the new value won (a CN upgrade that replaced
// the stored coefficient).
func (s *trackerShard) report(period int64, key tagset.Key, c jaccard.Coefficient) (dup, late, updated bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if period <= s.floor {
		return false, true, false
	}
	m := s.periods[period]
	if m == nil {
		m = make(map[tagset.Key]jaccard.Coefficient)
		s.periods[period] = m
	}
	ek := entryKey{period: period, key: key}
	if prev, ok := m[key]; ok {
		if c.CN <= prev.CN {
			return true, false, false
		}
		m[key] = c
		s.updateTop(ek, prev, c)
		return true, false, true
	}
	m[key] = c
	s.entries++
	s.offer(ek, c)
	return false, false, false
}

// offer inserts a fresh entry into the heap if it belongs to the best
// bound: push while below the bound, otherwise replace the root (the worst
// kept entry) when the candidate ranks above it.
func (s *trackerShard) offer(ek entryKey, c jaccard.Coefficient) {
	e := topEntry{ek: ek, c: c}
	if s.top.Len() < s.bound {
		heap.Push(&s.top, e)
		return
	}
	if entryBefore(e, s.top.entries[0]) {
		delete(s.top.pos, s.top.entries[0].ek)
		s.top.entries[0] = e
		s.top.pos[ek] = 0
		heap.Fix(&s.top, 0)
	}
}

// updateTop re-ranks an entry whose coefficient was upgraded (duplicate
// with a larger CN). An in-heap entry is fixed in place; if it was demoted
// while other entries are excluded from the heap, an excluded entry might
// now outrank it, so the heap is rebuilt. An out-of-heap entry is offered
// like a fresh one.
func (s *trackerShard) updateTop(ek entryKey, prev, c jaccard.Coefficient) {
	if i, ok := s.top.pos[ek]; ok {
		s.top.entries[i].c = c
		heap.Fix(&s.top, i)
		if s.entries > s.top.Len() && entryBefore(topEntry{ek: ek, c: prev}, topEntry{ek: ek, c: c}) {
			s.rebuild()
		}
		return
	}
	s.offer(ek, c)
}

// evictPeriod removes one period from the shard and returns its entries
// (for the evicted LRU). Heap members of the period are removed; if that
// leaves room while other entries are excluded, the heap is rebuilt so the
// invariant holds. The caller holds the shard lock.
func (s *trackerShard) evictPeriod(p int64) map[tagset.Key]jaccard.Coefficient {
	if p > s.floor {
		s.floor = p
	}
	m := s.periods[p]
	if m == nil {
		return nil
	}
	delete(s.periods, p)
	s.entries -= len(m)
	for k := range m {
		if i, ok := s.top.pos[entryKey{period: p, key: k}]; ok {
			heap.Remove(&s.top, i)
		}
	}
	if s.top.Len() < s.bound && s.entries > s.top.Len() {
		s.rebuild()
	}
	return m
}

// rebuild reconstructs the heap from the period tables: a bounded-heap
// selection over the shard's retained entries. It runs on period eviction,
// on demoting duplicate upgrades and on bound changes — never on TopK.
func (s *trackerShard) rebuild() {
	s.top.entries = s.top.entries[:0]
	s.top.pos = make(map[entryKey]int, s.bound)
	for p, m := range s.periods {
		for k, c := range m {
			s.offer(entryKey{period: p, key: k}, c)
		}
	}
	s.rebuilds++
}

// evictedLRU remembers the latest coefficient of pairs whose reporting
// periods were pruned, so point lookups can answer across retention
// (ROADMAP: the /pairs endpoint over pruned periods). Bounded, newest
// period wins per pair, least-recently-touched pair evicted first.
type evictedLRU struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently touched
	idx    map[tagset.Key]*list.Element
	hits   int64
	misses int64
}

type evictedPair struct {
	key    tagset.Key
	c      jaccard.Coefficient
	period int64
}

func newEvictedLRU(capacity int) *evictedLRU {
	return &evictedLRU{
		cap: capacity,
		ll:  list.New(),
		idx: make(map[tagset.Key]*list.Element, capacity),
	}
}

func (l *evictedLRU) add(k tagset.Key, c jaccard.Coefficient, period int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.idx[k]; ok {
		ep := el.Value.(*evictedPair)
		if period >= ep.period {
			ep.c, ep.period = c, period
		}
		l.ll.MoveToFront(el)
		return
	}
	l.idx[k] = l.ll.PushFront(&evictedPair{key: k, c: c, period: period})
	if l.ll.Len() > l.cap {
		back := l.ll.Back()
		l.ll.Remove(back)
		delete(l.idx, back.Value.(*evictedPair).key)
	}
}

func (l *evictedLRU) get(k tagset.Key) (jaccard.Coefficient, int64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.idx[k]
	if !ok {
		l.misses++
		return jaccard.Coefficient{}, 0, false
	}
	l.ll.MoveToFront(el)
	l.hits++
	ep := el.Value.(*evictedPair)
	return ep.c, ep.period, true
}

func (l *evictedLRU) stats() (length, capacity int, hits, misses int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ll.Len(), l.cap, l.hits, l.misses
}

// coeffBefore is the top-k ranking: descending J, then descending CN, then
// the tagset key.
func coeffBefore(a, b jaccard.Coefficient) bool {
	if a.J != b.J {
		return a.J > b.J
	}
	if a.CN != b.CN {
		return a.CN > b.CN
	}
	return a.Tags.Key() < b.Tags.Key()
}

// sortCoefficients orders by descending J, then descending CN, then the
// tagset key — the deterministic "top correlations first" order used by
// reports and the live top-k view.
func sortCoefficients(out []jaccard.Coefficient) {
	sort.Slice(out, func(i, j int) bool { return coeffBefore(out[i], out[j]) })
}
