package operators

import (
	"testing"

	"repro/internal/partition"
	"repro/internal/storm"
	"repro/internal/stream"
	"repro/internal/tagset"
)

func TestCountWindowPartitioner(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WindowCount = 3
	p := NewPartitioner(cfg)
	p.Prepare(&storm.TaskContext{})
	out := newCollector()
	for i := 0; i < 5; i++ {
		p.Execute(docTuple(stream.Millis(i), tagset.Tag(i)), out)
	}
	if p.WindowLen() != 3 {
		t.Errorf("count window len = %d, want 3", p.WindowLen())
	}
}

func TestAutoScaleValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AutoScaleLoad = -1
	if cfg.Validate() == nil {
		t.Error("negative AutoScaleLoad accepted")
	}
	cfg = DefaultConfig()
	cfg.WindowCount = -1
	if cfg.Validate() == nil {
		t.Error("negative WindowCount accepted")
	}
}

func TestMergerAutoScaleSizesPartitions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.P = 1
	cfg.K = 8
	cfg.AutoScaleLoad = 10 // one Calculator per 10 documents of window load
	m := NewMerger(cfg)
	m.Prepare(&storm.TaskContext{})
	out := newCollector()

	// Light window: load 25 → ceil(25/10) = 3 active partitions.
	sets := []stream.WeightedSet{
		{Tags: tagset.New(1, 2), Count: 10},
		{Tags: tagset.New(3, 4), Count: 10},
		{Tags: tagset.New(5, 6), Count: 5},
	}
	m.Execute(storm.Tuple{Stream: StreamPartial, Values: []interface{}{PartialMsg{Epoch: 1, Sets: sets}}}, out)
	msg := out.byStream(StreamPartitions)[0].Values[0].(PartitionsMsg)
	if len(msg.Parts) != 3 {
		t.Errorf("light window produced %d partitions, want 3", len(msg.Parts))
	}

	// Heavy window: load 200 → would need 20, capped at K=8.
	heavy := []stream.WeightedSet{{Tags: tagset.New(1, 2), Count: 200}}
	m.Execute(storm.Tuple{Stream: StreamPartial, Values: []interface{}{PartialMsg{Epoch: 2, Sets: heavy}}}, out)
	msg = out.byStream(StreamPartitions)[1].Values[0].(PartitionsMsg)
	if len(msg.Parts) != 8 {
		t.Errorf("heavy window produced %d partitions, want K=8", len(msg.Parts))
	}

	// Empty window: at least one partition.
	m.Execute(storm.Tuple{Stream: StreamPartial, Values: []interface{}{PartialMsg{Epoch: 3}}}, out)
	msg = out.byStream(StreamPartitions)[2].Values[0].(PartitionsMsg)
	if len(msg.Parts) != 1 {
		t.Errorf("empty window produced %d partitions, want 1", len(msg.Parts))
	}
}

func TestDisseminatorRoutesOnlyToActiveCalculators(t *testing.T) {
	cfg := DefaultConfig()
	cfg.K = 4
	d, out := buildDissem(cfg)
	// Install only 2 partitions (auto-scaled down from K=4).
	installPartitions(d, out,
		partition.Partition{Tags: tagset.New(1)},
		partition.Partition{Tags: tagset.New(2)},
	)
	d.Execute(docTuple(10, 1, 2), out)
	if len(out.direct[2]) != 0 || len(out.direct[3]) != 0 {
		t.Error("idle calculators received notifications")
	}
	if len(out.direct[0]) != 1 || len(out.direct[1]) != 1 {
		t.Error("active calculators not notified")
	}
}

// TestAutoScalePipelineEndToEnd runs a small pipeline with auto-scaling and
// verifies that only a prefix of calculators observed traffic.
func TestAutoScalePipelineEndToEnd(t *testing.T) {
	// Use operators directly through a storm topology via the core package
	// in core_test; here assert the merger's partition count stays sane
	// across repeated merges with growing load.
	cfg := DefaultConfig()
	cfg.P = 1
	cfg.K = 10
	cfg.AutoScaleLoad = 100
	m := NewMerger(cfg)
	m.Prepare(&storm.TaskContext{})
	out := newCollector()
	for epoch, load := range []int64{50, 500, 5000} {
		sets := []stream.WeightedSet{{Tags: tagset.New(1, 2), Count: load}}
		m.Execute(storm.Tuple{Stream: StreamPartial, Values: []interface{}{PartialMsg{Epoch: epoch + 1, Sets: sets}}}, out)
	}
	msgs := out.byStream(StreamPartitions)
	sizes := []int{len(msgs[0].Values[0].(PartitionsMsg).Parts),
		len(msgs[1].Values[0].(PartitionsMsg).Parts),
		len(msgs[2].Values[0].(PartitionsMsg).Parts)}
	if sizes[0] != 1 || sizes[1] != 5 || sizes[2] != 10 {
		t.Errorf("auto-scale sizes = %v, want [1 5 10]", sizes)
	}
}
