package operators

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/jaccard"
	"repro/internal/storm"
	"repro/internal/tagset"
)

// coeffTuple wraps a coefficient report as the storm tuple the Tracker
// consumes.
func coeffTuple(period int64, tags tagset.Set, j float64, cn int64) storm.Tuple {
	return storm.Tuple{Stream: StreamCoeff, Values: []interface{}{CoeffMsg{
		Period: period,
		Coeff:  jaccard.Coefficient{Tags: tags, J: j, CN: cn},
	}}}
}

// rankedOK fails the test (via Errorf, safe from any goroutine) and
// returns false if out is not ordered by the top-k ranking (descending J,
// then descending CN, then the tagset key).
func rankedOK(t *testing.T, out []jaccard.Coefficient) bool {
	t.Helper()
	for i := 1; i < len(out); i++ {
		if coeffBefore(out[i], out[i-1]) {
			t.Errorf("result out of order at %d: %+v before %+v", i, out[i], out[i-1])
			return false
		}
	}
	return true
}

// TestTrackerConcurrentStress hammers the sharded Tracker from several
// reporting goroutines while several reader goroutines take top-k views,
// point lookups, per-period reports and stats snapshots — all while the
// advancing reporting period continuously trips retention pruning. Run
// under -race this exercises the shard locking discipline; the assertions
// check the structural invariants every mid-flight read must satisfy:
// top-k results are internally sorted and within the requested bound, the
// retained period set respects the retention limit, and the maintained
// heaps never exceed shards x bound entries.
func TestTrackerConcurrentStress(t *testing.T) {
	const (
		shards    = 8
		bound     = 32
		retention = 4
		reporters = 6
		readers   = 4
	)
	iters := 20000
	if testing.Short() {
		iters = 4000
	}

	tr := NewTrackerWith(shards, bound, 512)
	tr.SetRetention(retention)

	var wg sync.WaitGroup
	var done atomic.Bool
	for r := 0; r < reporters; r++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(id))
			for i := 0; i < iters; i++ {
				// Periods advance with progress so pruning keeps firing;
				// occasionally report an older (possibly pruned) period.
				period := int64(1 + i/(iters/40+1))
				if rng.Intn(16) == 0 && period > 2 {
					period -= int64(rng.Intn(3))
				}
				a := tagset.Tag(rng.Intn(64))
				b := a + 1 + tagset.Tag(rng.Intn(8))
				j := float64(rng.Intn(32)+1) / 32
				cn := int64(rng.Intn(9) + 1)
				tr.Execute(coeffTuple(period, tagset.New(a, b), j, cn), nil)
			}
		}(int64(r + 1))
	}

	// One goroutine keeps raising and lowering the maintained bound across
	// the readers' k, so TopK races real heap rebuilds and exercises its
	// under-lock bound re-check (falling back to the exact scan when a
	// lowering shrank a shard heap below the k it assumed).
	var readWG sync.WaitGroup
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		for i := 0; !done.Load(); i++ {
			if i%2 == 0 {
				tr.SetTopKBound(8)
			} else {
				tr.SetTopKBound(bound)
			}
		}
		tr.SetTopKBound(bound)
	}()
	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func(id int64) {
			defer readWG.Done()
			rng := rand.New(rand.NewSource(1000 + id))
			for !done.Load() {
				top := tr.TopK(16)
				if len(top) > 16 {
					t.Errorf("TopK(16) returned %d entries", len(top))
					return
				}
				if !rankedOK(t, top) {
					return
				}

				ps := tr.Periods()
				if len(ps) > retention {
					t.Errorf("Periods() = %v exceeds retention %d", ps, retention)
					return
				}
				for i := 1; i < len(ps); i++ {
					if ps[i] <= ps[i-1] {
						t.Errorf("Periods() not ascending: %v", ps)
						return
					}
				}
				if len(ps) > 0 && !rankedOK(t, tr.Report(ps[len(ps)-1])) {
					return
				}

				a := tagset.Tag(rng.Intn(64))
				tr.Lookup(tagset.New(a, a+1).Key())

				// The bound toggles between 8 and the maximum while this
				// reader runs, so check against the maximum the heaps could
				// legitimately hold mid-transition.
				st := tr.StatsSnapshot()
				if st.HeapEntries > st.Shards*bound {
					t.Errorf("heap entries %d exceed shards*maxBound %d", st.HeapEntries, st.Shards*bound)
					return
				}
				if st.HeapEntries > st.Retained {
					t.Errorf("heap entries %d exceed retained %d", st.HeapEntries, st.Retained)
					return
				}
			}
		}(int64(r))
	}

	wg.Wait()
	done.Store(true)
	readWG.Wait()

	// Quiescent now: the incrementally maintained answer must agree exactly
	// with a full scan of the retained coefficients.
	got := tr.TopK(16)
	want := tr.topKScan(16)
	if len(got) != len(want) {
		t.Fatalf("TopK(16) = %d entries, scan gives %d", len(got), len(want))
	}
	for i := range want {
		if got[i].J != want[i].J || got[i].CN != want[i].CN || got[i].Tags.Key() != want[i].Tags.Key() {
			t.Fatalf("TopK[%d] = %+v, scan gives %+v", i, got[i], want[i])
		}
	}

	st := tr.StatsSnapshot()
	if st.Received != int64(reporters*iters) {
		t.Errorf("received %d reports, want %d", st.Received, reporters*iters)
	}
	if st.PrunedPeriods == 0 {
		t.Error("stress run never pruned a period; retention was not exercised")
	}
}

// TestTrackerEvictedLRU pins the retention/LRU hand-off deterministically:
// pairs whose periods are pruned become answerable through LookupDetail
// with the evicted flag, the newest pruned value wins per pair, and the
// LRU capacity bounds how many pruned pairs are remembered.
func TestTrackerEvictedLRU(t *testing.T) {
	tr := NewTrackerWith(4, 8, 2)
	tr.SetRetention(1)

	pair := func(a tagset.Tag) tagset.Set { return tagset.New(a, a+1) }
	tr.Execute(coeffTuple(1, pair(10), 0.9, 5), nil)
	tr.Execute(coeffTuple(1, pair(20), 0.8, 4), nil)

	// Opening period 2 prunes period 1: both pairs move to the LRU.
	tr.Execute(coeffTuple(2, pair(30), 0.7, 3), nil)

	c, period, evicted, ok := tr.LookupDetail(pair(10).Key())
	if !ok || !evicted || period != 1 || c.J != 0.9 || c.CN != 5 {
		t.Fatalf("LookupDetail(10,11) = %+v period=%d evicted=%v ok=%v", c, period, evicted, ok)
	}
	if _, _, evicted, ok := tr.LookupDetail(pair(30).Key()); !ok || evicted {
		t.Fatalf("retained pair reported evicted=%v ok=%v", evicted, ok)
	}

	// Pruning period 2 re-evicts pair 30; capacity 2 drops the
	// least-recently-touched entry (pair 20 — pair 10 was just looked up).
	tr.Execute(coeffTuple(3, pair(40), 0.6, 2), nil)
	if _, _, _, ok := tr.LookupDetail(pair(20).Key()); ok {
		t.Error("pair (20,21) survived past the LRU capacity")
	}
	if c, period, evicted, ok := tr.LookupDetail(pair(30).Key()); !ok || !evicted || period != 2 || c.J != 0.7 {
		t.Fatalf("LookupDetail(30,31) = %+v period=%d evicted=%v ok=%v", c, period, evicted, ok)
	}

	st := tr.StatsSnapshot()
	if st.EvictedCap != 2 || st.EvictedLen != 2 {
		t.Errorf("LRU len=%d cap=%d, want 2/2", st.EvictedLen, st.EvictedCap)
	}
	if st.EvictedHits < 2 {
		t.Errorf("LRU hits = %d, want >= 2", st.EvictedHits)
	}
	if st.PrunedPeriods != 2 {
		t.Errorf("pruned periods = %d, want 2", st.PrunedPeriods)
	}
}

// TestTrackerLateReportsDropped verifies the pruning floor: a report for a
// period at or below the highest pruned period is dropped and counted as
// late, never resurrecting evicted state.
func TestTrackerLateReportsDropped(t *testing.T) {
	tr := NewTrackerWith(2, 8, 0)
	tr.SetRetention(2)
	pair := tagset.New(1, 2)
	tr.Execute(coeffTuple(1, pair, 0.5, 1), nil)
	tr.Execute(coeffTuple(2, pair, 0.6, 2), nil)
	tr.Execute(coeffTuple(3, pair, 0.7, 3), nil) // prunes period 1

	tr.Execute(coeffTuple(1, pair, 0.99, 9), nil) // late: period 1 is pruned
	if got := tr.Periods(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Periods() = %v, want [2 3]", got)
	}
	if c, period, ok := tr.Lookup(pair.Key()); !ok || period != 3 || c.J != 0.7 {
		t.Fatalf("Lookup = %+v period=%d ok=%v, late report leaked in", c, period, ok)
	}
	if st := tr.StatsSnapshot(); st.Late != 1 {
		t.Errorf("late = %d, want 1", st.Late)
	}
}
