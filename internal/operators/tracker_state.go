package operators

import (
	"sort"
	"sync/atomic"

	"repro/internal/jaccard"
)

// TrackerArchive receives the Tracker's durable-log stream: every accepted
// coefficient report (fresh values and CN upgrades) as it happens, plus a
// seal when retention prunes a period (its in-memory state is gone; the
// archived segment is now the only copy). Implemented by archive.Writer.
// Appends are called from the Tracker's Execute path, so implementations
// must be cheap and thread-safe.
type TrackerArchive interface {
	AppendCoefficient(period int64, c jaccard.Coefficient)
	SealPeriod(period int64)
}

// SetArchive attaches the durable-log sink. Call before the run starts.
func (tr *Tracker) SetArchive(a TrackerArchive) { tr.archive = a }

// SetPeriodHook registers a callback invoked whenever a brand-new reporting
// period is registered (i.e. the previous period just produced its first
// flush). The hook runs on the reporting task's goroutine with no Tracker
// locks held — the checkpointer uses it as its cadence signal. Call before
// the run starts.
func (tr *Tracker) SetPeriodHook(fn func(period int64)) { tr.periodHook = fn }

// NewestPeriod returns the largest retained period id (ok=false before the
// first report).
func (tr *Tracker) NewestPeriod() (int64, bool) {
	tr.reg.mu.RLock()
	defer tr.reg.mu.RUnlock()
	newest, ok := int64(0), false
	for p := range tr.reg.known {
		if !ok || p > newest {
			newest, ok = p, true
		}
	}
	return newest, ok
}

// PeriodCoefficients is one reporting period's deduplicated coefficients in
// a TrackerState export, sorted by tagset key for deterministic encoding.
type PeriodCoefficients struct {
	Period int64
	Coeffs []jaccard.Coefficient
}

// EvictedCoefficient is one entry of the evicted-pair LRU in a TrackerState
// export, in least-recently-touched-first order.
type EvictedCoefficient struct {
	Coeff  jaccard.Coefficient
	Period int64
}

// TrackerState is the Tracker's restartable state, produced by ExportState
// and consumed by ImportState on a fresh Tracker. It carries only sealed
// information: an export cut at beforePeriod holds no data of any period at
// or beyond the cut, so recovery can replay the stream from the cut's first
// document and converge to the uninterrupted state (duplicate replayed
// reports are absorbed by the CN-max dedup).
type TrackerState struct {
	Periods []PeriodCoefficients // ascending period order
	Floor   int64                // pruning floor (periods <= Floor are dead)
	Pruned  int64                // periods evicted by retention so far

	Evicted     []EvictedCoefficient // LRU contents, least recent first
	EvictedHits int64

	Received   int64
	Duplicates int64
	Late       int64
}

// ExportState copies the Tracker's restartable state, restricted to periods
// strictly before beforePeriod (pass math.MaxInt64 for everything). The
// newest period is typically excluded: it may still be partially flushed,
// and the recovery protocol replays it from the stream instead.
func (tr *Tracker) ExportState(beforePeriod int64) TrackerState {
	st := TrackerState{
		Received:   atomic.LoadInt64(&tr.Received),
		Duplicates: atomic.LoadInt64(&tr.Duplicates),
		Late:       atomic.LoadInt64(&tr.Late),
	}
	tr.reg.mu.RLock()
	periods := make([]int64, 0, len(tr.reg.known))
	for p := range tr.reg.known {
		if p < beforePeriod {
			periods = append(periods, p)
		}
	}
	st.Floor = tr.reg.floor
	st.Pruned = tr.reg.pruned
	tr.reg.mu.RUnlock()
	sort.Slice(periods, func(i, j int) bool { return periods[i] < periods[j] })

	for _, p := range periods {
		pc := PeriodCoefficients{Period: p}
		for _, s := range tr.shards {
			s.mu.Lock()
			for _, c := range s.periods[p] {
				pc.Coeffs = append(pc.Coeffs, c)
			}
			s.mu.Unlock()
		}
		sort.Slice(pc.Coeffs, func(i, j int) bool {
			return pc.Coeffs[i].Tags.Key() < pc.Coeffs[j].Tags.Key()
		})
		st.Periods = append(st.Periods, pc)
	}

	if tr.lru != nil {
		tr.lru.mu.Lock()
		for el := tr.lru.ll.Back(); el != nil; el = el.Prev() {
			ep := el.Value.(*evictedPair)
			st.Evicted = append(st.Evicted, EvictedCoefficient{Coeff: ep.c, Period: ep.period})
		}
		st.EvictedHits = tr.lru.hits
		tr.lru.mu.Unlock()
	}
	return st
}

// ImportState loads an exported state into a freshly constructed Tracker.
// It must run before the pipeline starts (no concurrent reporters); the
// shard heaps are maintained incrementally as the coefficients are
// re-inserted, so the imported Tracker answers TopK exactly as the
// exporting one did.
func (tr *Tracker) ImportState(st TrackerState) {
	tr.reg.mu.Lock()
	tr.reg.floor = st.Floor
	tr.reg.pruned = st.Pruned
	for _, pc := range st.Periods {
		tr.reg.known[pc.Period] = struct{}{}
	}
	tr.reg.mu.Unlock()
	for _, s := range tr.shards {
		s.mu.Lock()
		s.floor = st.Floor
		s.mu.Unlock()
	}
	for _, pc := range st.Periods {
		for _, c := range pc.Coeffs {
			tr.shardOf(c.Tags.Key()).report(pc.Period, c.Tags.Key(), c)
		}
	}
	if tr.lru != nil {
		for _, e := range st.Evicted {
			tr.lru.add(e.Coeff.Tags.Key(), e.Coeff, e.Period)
		}
		tr.lru.mu.Lock()
		tr.lru.hits = st.EvictedHits
		tr.lru.mu.Unlock()
	}
	atomic.StoreInt64(&tr.Received, st.Received)
	atomic.StoreInt64(&tr.Duplicates, st.Duplicates)
	atomic.StoreInt64(&tr.Late, st.Late)
}
