package operators

import (
	"sync/atomic"
	"testing"

	"repro/internal/jaccard"
	"repro/internal/storm"
	"repro/internal/tagset"
	"repro/internal/trend"
)

func coeffBatchTuple(period int64, cs ...jaccard.Coefficient) storm.Tuple {
	return storm.Tuple{Stream: StreamCoeff, Values: []interface{}{CoeffBatch{
		Period: period,
		Coeffs: cs,
	}}}
}

// TestTrackerTrendEmission pins the Tracker→Trend contract: exactly the
// reports that change the Tracker's tables — fresh (period, tagset) values
// and strictly-higher-CN upgrades — are forwarded on StreamTrend, so the
// detector converges to the Tracker's deduplicated state.
func TestTrackerTrendEmission(t *testing.T) {
	tr := NewTrackerWith(4, 8, 0)
	tr.EnableTrendEmit()
	out := newCollector()
	pair := tagset.New(1, 2)
	c1 := jaccard.Coefficient{Tags: pair, J: 0.5, CN: 3}
	c2 := jaccard.Coefficient{Tags: pair, J: 0.6, CN: 7}
	c3 := jaccard.Coefficient{Tags: pair, J: 0.4, CN: 5}

	tr.Execute(coeffBatchTuple(1, c1), out) // fresh: emitted
	tr.Execute(coeffBatchTuple(1, c2), out) // CN upgrade: emitted
	tr.Execute(coeffBatchTuple(1, c3), out) // lower CN: ignored

	emits := out.byStream(StreamTrend)
	if len(emits) != 2 {
		t.Fatalf("trend emissions = %d, want 2 (fresh + upgrade)", len(emits))
	}
	for i, want := range []jaccard.Coefficient{c1, c2} {
		msg := emits[i].Values[0].(TrendMsg)
		if msg.Period != 1 || msg.Coeff.J != want.J || msg.Coeff.CN != want.CN {
			t.Errorf("emission %d = %+v, want %+v", i, msg, want)
		}
	}
	if got, _ := tr.Counts(); got != 3 {
		t.Errorf("received = %d, want one per batched coefficient", got)
	}
}

// TestTrackerTrendEmissionLateAndDisabled: late reports (pruned periods)
// never reach the trend stream, and without EnableTrendEmit nothing does.
func TestTrackerTrendEmissionLateAndDisabled(t *testing.T) {
	tr := NewTrackerWith(2, 8, 0)
	tr.EnableTrendEmit()
	tr.SetRetention(1)
	out := newCollector()
	c := func(a tagset.Tag) jaccard.Coefficient {
		return jaccard.Coefficient{Tags: tagset.New(a, a+1), J: 0.5, CN: 5}
	}
	tr.Execute(coeffBatchTuple(1, c(10)), out)
	tr.Execute(coeffBatchTuple(2, c(20)), out) // prunes period 1
	tr.Execute(coeffBatchTuple(1, c(30)), out) // late: dropped, not forwarded
	if got := len(out.byStream(StreamTrend)); got != 2 {
		t.Errorf("trend emissions = %d, want 2 (late report leaked)", got)
	}
	// Execute with a nil collector must not panic even with emission on.
	tr.Execute(coeffBatchTuple(3, c(40)), nil)

	off := NewTrackerWith(2, 8, 0)
	out2 := newCollector()
	off.Execute(coeffBatchTuple(1, c(10)), out2)
	if got := len(out2.byStream(StreamTrend)); got != 0 {
		t.Errorf("disabled tracker emitted %d trend tuples", got)
	}
}

// TestTrendBoltFeedsDetector wires the Trend bolt to a detector directly.
func TestTrendBoltFeedsDetector(t *testing.T) {
	det, err := trend.NewStream(trend.StreamConfig{Alpha: 0.5, MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	bolt := NewTrend(det)
	bolt.Prepare(&storm.TaskContext{})
	feed := func(period int64, j float64) {
		bolt.Execute(storm.Tuple{Stream: StreamTrend, Values: []interface{}{TrendMsg{
			Period: period,
			Coeff:  jaccard.Coefficient{Tags: tagset.New(1, 2), J: j, CN: 5},
		}}}, nil)
	}
	feed(1, 0.2)
	feed(2, 0.8)
	if got := atomic.LoadInt64(&bolt.Observed); got != 2 {
		t.Errorf("Observed = %d", got)
	}
	if bolt.Detector() != det {
		t.Error("Detector() accessor broken")
	}
	top := det.TopTrends(2, 10)
	if len(top) != 1 || top[0].Predicted != 0.2 || top[0].Observed != 0.8 {
		t.Errorf("detector state after bolt feed = %v", top)
	}
}

// TestTrendKeyStable: fields grouping must route every report of a tagset
// to the same task.
func TestTrendKeyStable(t *testing.T) {
	mk := func(j float64) storm.Tuple {
		return storm.Tuple{Stream: StreamTrend, Values: []interface{}{TrendMsg{
			Period: 1,
			Coeff:  jaccard.Coefficient{Tags: tagset.New(3, 9), J: j, CN: 1},
		}}}
	}
	if TrendKey(mk(0.1)) != TrendKey(mk(0.9)) {
		t.Error("TrendKey differs for the same tagset")
	}
	other := storm.Tuple{Stream: StreamTrend, Values: []interface{}{TrendMsg{
		Period: 1,
		Coeff:  jaccard.Coefficient{Tags: tagset.New(3, 10), J: 0.1, CN: 1},
	}}}
	if TrendKey(mk(0.1)) == TrendKey(other) {
		t.Error("TrendKey collides for different tagsets (FNV should separate these)")
	}
}
