package operators

import (
	"repro/internal/jaccard"
	"repro/internal/storm"
	"repro/internal/stream"
)

// Calculator counts the subsets of the notifications it receives and, at
// every reporting boundary (y time units, Section 6.2), computes the
// maximum possible number of Jaccard coefficients from its counters, emits
// them to the Tracker, and deletes the counters.
//
// Calculators are oblivious to the partitions: they infer the tagsets to
// track purely from the notifications (Section 6.2). Reporting boundaries
// are aligned to multiples of ReportEvery so that all Calculators report
// the same periods and the Tracker can deduplicate.
type Calculator struct {
	cfg   Config
	ctx   *storm.TaskContext
	table *jaccard.CounterTable

	boundary stream.Millis // exclusive end of the current period
	hasData  bool

	// Reports counts emitted reporting rounds; Observed counts received
	// notifications.
	Reports  int
	Observed int64
}

// NewCalculator returns a Calculator bolt.
func NewCalculator(cfg Config) *Calculator {
	return &Calculator{cfg: cfg, table: jaccard.NewCounterTable()}
}

// Prepare implements storm.Bolt.
func (c *Calculator) Prepare(ctx *storm.TaskContext) { c.ctx = ctx }

// Execute implements storm.Bolt.
func (c *Calculator) Execute(t storm.Tuple, out storm.Collector) {
	msg := t.Values[0].(NotifyMsg)
	if !c.hasData {
		c.boundary = alignUp(msg.Time, c.cfg.ReportEvery)
		c.hasData = true
	}
	for msg.Time >= c.boundary {
		c.flush(out)
		c.boundary += c.cfg.ReportEvery
	}
	c.table.Observe(msg.Tags)
	c.Observed++
}

// Cleanup flushes the final partial period.
func (c *Calculator) Cleanup(out storm.Collector) {
	if c.hasData && c.table.Docs() > 0 {
		c.flush(out)
	}
}

// flush reports the finished period as a single CoeffBatch tuple: one
// emission and one Tracker mailbox delivery per flush, however many
// coefficients the period produced, keeping the hot path's dataflow
// counters and mailbox pressure proportional to periods rather than pairs.
func (c *Calculator) flush(out storm.Collector) {
	coeffs := c.table.Coefficients(1)
	period := int64(c.boundary / c.cfg.ReportEvery)
	if len(coeffs) > 0 {
		out.Emit(storm.Tuple{Stream: StreamCoeff, Values: []interface{}{
			CoeffBatch{Period: period, Coeffs: coeffs},
		}})
	}
	if len(coeffs) > 0 || c.table.Docs() > 0 {
		c.Reports++
	}
	c.table.Reset()
}

// alignUp returns the smallest multiple of step strictly greater than t.
func alignUp(t, step stream.Millis) stream.Millis {
	return (t/step + 1) * step
}
