package operators

import (
	"repro/internal/flight"
	"repro/internal/jaccard"
	"repro/internal/storm"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// Calculator counts the subsets of the notifications it receives and, at
// every reporting boundary (y time units, Section 6.2), computes the
// maximum possible number of Jaccard coefficients from its counters, emits
// them to the Tracker, and deletes the counters.
//
// Calculators are oblivious to the partitions: they infer the tagsets to
// track purely from the notifications (Section 6.2). Reporting boundaries
// are aligned to multiples of ReportEvery so that all Calculators report
// the same periods and the Tracker can deduplicate. Notifications arrive
// either one per tuple (NotifyMsg) or batched (NotifyBatch, when the
// Disseminator runs with Config.NotifyBatch > 0); both feed the same
// counter table in arrival order.
type Calculator struct {
	cfg   Config
	ctx   *storm.TaskContext
	table *jaccard.CounterTable

	boundary stream.Millis // exclusive end of the current period
	hasData  bool

	// trackerTasks is the Tracker's parallelism, read from the topology at
	// Prepare: flushes split their coefficients into one sub-batch per
	// task, grouped by the shared routeHash, so fields grouping (CoeffKey)
	// keeps every tagset on one Tracker task. 1 outside a topology.
	trackerTasks int

	// Reports counts emitted reporting rounds; Observed counts received
	// notifications.
	Reports  int
	Observed int64
}

// NewCalculator returns a Calculator bolt.
func NewCalculator(cfg Config) *Calculator {
	return &Calculator{cfg: cfg, table: jaccard.NewCounterTable()}
}

// Prepare implements storm.Bolt.
func (c *Calculator) Prepare(ctx *storm.TaskContext) {
	c.ctx = ctx
	c.trackerTasks = len(ctx.TasksOf("tracker"))
	if c.trackerTasks < 1 {
		c.trackerTasks = 1
	}
}

// Execute implements storm.Bolt.
func (c *Calculator) Execute(t storm.Tuple, out storm.Collector) {
	switch msg := t.Values[0].(type) {
	case NotifyMsg:
		c.observe(msg, out)
	case NotifyBatch:
		for _, m := range msg.Msgs {
			c.observe(m, out)
		}
	}
}

func (c *Calculator) observe(msg NotifyMsg, out storm.Collector) {
	start := telemetry.Now()
	if !c.hasData {
		c.boundary = alignUp(msg.Time, c.cfg.ReportEvery)
		c.hasData = true
	}
	if msg.Time >= c.boundary {
		// Flush the finished (non-empty) period, then jump straight to the
		// period containing msg.Time: a sparse live stream or a replay with
		// a large timestamp gap must not pay one no-op flush per empty
		// period in between.
		c.flush(out, msg.Ingest, msg.Trace)
		c.boundary = alignUp(msg.Time, c.cfg.ReportEvery)
	}
	c.table.Observe(msg.Tags)
	c.Observed++
	if st := c.cfg.Stages; st != nil && msg.Ingest > 0 {
		st.DocCoefficient.Record(telemetry.Since(msg.Ingest))
	}
	if msg.Trace != 0 {
		c.cfg.Flight.Span(msg.Trace, flight.StageCalculate, start, telemetry.Now())
	}
}

// Cleanup flushes the final partial period.
func (c *Calculator) Cleanup(out storm.Collector) {
	if c.hasData && c.table.Docs() > 0 {
		c.flush(out, 0, 0)
	}
}

// flush reports the finished period as CoeffBatch tuples: with a single
// Tracker task, one emission and one mailbox delivery per flush, however
// many coefficients the period produced; with Tracker parallelism > 1, one
// sub-batch per involved Tracker task, each carrying the coefficients whose
// tagset-key hash routes to it (CoeffKey reads the Route field). Either
// way the hot path's dataflow counters and mailbox pressure stay
// proportional to periods rather than pairs.
func (c *Calculator) flush(out storm.Collector, ingest int64, trace uint64) {
	coeffs := c.table.Coefficients(1)
	period := int64(c.boundary / c.cfg.ReportEvery)
	switch {
	case len(coeffs) == 0:
	case c.trackerTasks <= 1:
		out.Emit(storm.Tuple{Stream: StreamCoeff, Values: []interface{}{
			CoeffBatch{Period: period, Coeffs: coeffs, Ingest: ingest, Trace: trace},
		}})
	default:
		parts := make([][]jaccard.Coefficient, c.trackerTasks)
		for _, co := range coeffs {
			g := routeHash(co.Tags.Key()) % uint64(c.trackerTasks)
			parts[g] = append(parts[g], co)
		}
		for g, part := range parts {
			if len(part) == 0 {
				continue
			}
			out.Emit(storm.Tuple{Stream: StreamCoeff, Values: []interface{}{
				CoeffBatch{Period: period, Route: uint64(g), Coeffs: part, Ingest: ingest, Trace: trace},
			}})
		}
	}
	if len(coeffs) > 0 || c.table.Docs() > 0 {
		c.Reports++
	}
	c.table.Reset()
}

// alignUp returns the smallest multiple of step strictly greater than t.
func alignUp(t, step stream.Millis) stream.Millis {
	return (t/step + 1) * step
}
