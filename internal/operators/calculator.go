package operators

import (
	"sort"

	"repro/internal/jaccard"
	"repro/internal/storm"
	"repro/internal/stream"
	"repro/internal/tagset"
)

// Calculator counts the subsets of the notifications it receives and, at
// every reporting boundary (y time units, Section 6.2), computes the
// maximum possible number of Jaccard coefficients from its counters, emits
// them to the Tracker, and deletes the counters.
//
// Calculators are oblivious to the partitions: they infer the tagsets to
// track purely from the notifications (Section 6.2). Reporting boundaries
// are aligned to multiples of ReportEvery so that all Calculators report
// the same periods and the Tracker can deduplicate.
type Calculator struct {
	cfg   Config
	ctx   *storm.TaskContext
	table *jaccard.CounterTable

	boundary stream.Millis // exclusive end of the current period
	hasData  bool

	// Reports counts emitted reporting rounds; Observed counts received
	// notifications.
	Reports  int
	Observed int64
}

// NewCalculator returns a Calculator bolt.
func NewCalculator(cfg Config) *Calculator {
	return &Calculator{cfg: cfg, table: jaccard.NewCounterTable()}
}

// Prepare implements storm.Bolt.
func (c *Calculator) Prepare(ctx *storm.TaskContext) { c.ctx = ctx }

// Execute implements storm.Bolt.
func (c *Calculator) Execute(t storm.Tuple, out storm.Collector) {
	msg := t.Values[0].(NotifyMsg)
	if !c.hasData {
		c.boundary = alignUp(msg.Time, c.cfg.ReportEvery)
		c.hasData = true
	}
	for msg.Time >= c.boundary {
		c.flush(out)
		c.boundary += c.cfg.ReportEvery
	}
	c.table.Observe(msg.Tags)
	c.Observed++
}

// Cleanup flushes the final partial period.
func (c *Calculator) Cleanup(out storm.Collector) {
	if c.hasData && c.table.Docs() > 0 {
		c.flush(out)
	}
}

func (c *Calculator) flush(out storm.Collector) {
	coeffs := c.table.Coefficients(1)
	period := int64(c.boundary / c.cfg.ReportEvery)
	for _, co := range coeffs {
		out.Emit(storm.Tuple{Stream: StreamCoeff, Values: []interface{}{
			CoeffMsg{Period: period, Coeff: co},
		}})
	}
	if len(coeffs) > 0 || c.table.Docs() > 0 {
		c.Reports++
	}
	c.table.Reset()
}

// alignUp returns the smallest multiple of step strictly greater than t.
func alignUp(t, step stream.Millis) stream.Millis {
	return (t/step + 1) * step
}

// Tracker collects the Jaccard coefficients from all Calculators. When the
// same tagset is reported by multiple Calculators in one period (tags
// replicated across partitions), it keeps the coefficient with the largest
// counter CN — the longest-tracked one (Section 6.2).
type Tracker struct {
	periods map[int64]map[tagset.Key]jaccard.Coefficient

	// Received counts all incoming coefficients; Duplicates counts those
	// that collided with an existing report for the same tagset and period.
	Received   int64
	Duplicates int64
}

// NewTracker returns a Tracker bolt.
func NewTracker() *Tracker {
	return &Tracker{periods: make(map[int64]map[tagset.Key]jaccard.Coefficient)}
}

// Prepare implements storm.Bolt.
func (tr *Tracker) Prepare(*storm.TaskContext) {}

// Execute implements storm.Bolt.
func (tr *Tracker) Execute(t storm.Tuple, _ storm.Collector) {
	msg := t.Values[0].(CoeffMsg)
	tr.Received++
	m := tr.periods[msg.Period]
	if m == nil {
		m = make(map[tagset.Key]jaccard.Coefficient)
		tr.periods[msg.Period] = m
	}
	k := msg.Coeff.Tags.Key()
	if prev, ok := m[k]; ok {
		tr.Duplicates++
		if msg.Coeff.CN <= prev.CN {
			return
		}
	}
	m[k] = msg.Coeff
}

// Periods returns the reporting period ids in ascending order.
func (tr *Tracker) Periods() []int64 {
	out := make([]int64, 0, len(tr.periods))
	for p := range tr.periods {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Report returns the deduplicated coefficients of one period, sorted by
// descending J.
func (tr *Tracker) Report(period int64) []jaccard.Coefficient {
	m := tr.periods[period]
	out := make([]jaccard.Coefficient, 0, len(m))
	for _, c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].J != out[j].J {
			return out[i].J > out[j].J
		}
		return out[i].Tags.Key() < out[j].Tags.Key()
	})
	return out
}

// All returns every deduplicated coefficient across periods.
func (tr *Tracker) All() []jaccard.Coefficient {
	var out []jaccard.Coefficient
	for _, p := range tr.Periods() {
		out = append(out, tr.Report(p)...)
	}
	return out
}
