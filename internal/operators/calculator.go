package operators

import (
	"container/heap"
	"sort"
	"sync"

	"repro/internal/jaccard"
	"repro/internal/storm"
	"repro/internal/stream"
	"repro/internal/tagset"
)

// Calculator counts the subsets of the notifications it receives and, at
// every reporting boundary (y time units, Section 6.2), computes the
// maximum possible number of Jaccard coefficients from its counters, emits
// them to the Tracker, and deletes the counters.
//
// Calculators are oblivious to the partitions: they infer the tagsets to
// track purely from the notifications (Section 6.2). Reporting boundaries
// are aligned to multiples of ReportEvery so that all Calculators report
// the same periods and the Tracker can deduplicate.
type Calculator struct {
	cfg   Config
	ctx   *storm.TaskContext
	table *jaccard.CounterTable

	boundary stream.Millis // exclusive end of the current period
	hasData  bool

	// Reports counts emitted reporting rounds; Observed counts received
	// notifications.
	Reports  int
	Observed int64
}

// NewCalculator returns a Calculator bolt.
func NewCalculator(cfg Config) *Calculator {
	return &Calculator{cfg: cfg, table: jaccard.NewCounterTable()}
}

// Prepare implements storm.Bolt.
func (c *Calculator) Prepare(ctx *storm.TaskContext) { c.ctx = ctx }

// Execute implements storm.Bolt.
func (c *Calculator) Execute(t storm.Tuple, out storm.Collector) {
	msg := t.Values[0].(NotifyMsg)
	if !c.hasData {
		c.boundary = alignUp(msg.Time, c.cfg.ReportEvery)
		c.hasData = true
	}
	for msg.Time >= c.boundary {
		c.flush(out)
		c.boundary += c.cfg.ReportEvery
	}
	c.table.Observe(msg.Tags)
	c.Observed++
}

// Cleanup flushes the final partial period.
func (c *Calculator) Cleanup(out storm.Collector) {
	if c.hasData && c.table.Docs() > 0 {
		c.flush(out)
	}
}

func (c *Calculator) flush(out storm.Collector) {
	coeffs := c.table.Coefficients(1)
	period := int64(c.boundary / c.cfg.ReportEvery)
	for _, co := range coeffs {
		out.Emit(storm.Tuple{Stream: StreamCoeff, Values: []interface{}{
			CoeffMsg{Period: period, Coeff: co},
		}})
	}
	if len(coeffs) > 0 || c.table.Docs() > 0 {
		c.Reports++
	}
	c.table.Reset()
}

// alignUp returns the smallest multiple of step strictly greater than t.
func alignUp(t, step stream.Millis) stream.Millis {
	return (t/step + 1) * step
}

// Tracker collects the Jaccard coefficients from all Calculators. When the
// same tagset is reported by multiple Calculators in one period (tags
// replicated across partitions), it keeps the coefficient with the largest
// counter CN — the longest-tracked one (Section 6.2).
//
// All of the Tracker's state is guarded by an internal mutex, so its read
// methods (Periods, Report, All, TopK, Lookup, Counts) may be called from
// other goroutines while a concurrent pipeline run is still feeding it —
// this is the live view behind Pipeline.Snapshot and the HTTP query
// service.
type Tracker struct {
	mu      sync.Mutex
	periods map[int64]map[tagset.Key]jaccard.Coefficient
	keep    int // retained periods; 0 keeps everything

	// Received counts all incoming coefficients; Duplicates counts those
	// that collided with an existing report for the same tagset and period.
	// Read them via Counts while a run is in flight.
	Received   int64
	Duplicates int64
}

// NewTracker returns a Tracker bolt.
func NewTracker() *Tracker {
	return &Tracker{periods: make(map[int64]map[tagset.Key]jaccard.Coefficient)}
}

// SetRetention bounds the Tracker to the n most recent reporting periods
// (0 keeps everything — the batch default). Older periods are pruned as
// new ones open, so a long-running service's memory stays proportional to
// n. Call before the run starts; All/TopK/Lookup then cover only the
// retained periods.
func (tr *Tracker) SetRetention(n int) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.keep = n
}

// Prepare implements storm.Bolt.
func (tr *Tracker) Prepare(*storm.TaskContext) {}

// Execute implements storm.Bolt.
func (tr *Tracker) Execute(t storm.Tuple, _ storm.Collector) {
	msg := t.Values[0].(CoeffMsg)
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.Received++
	m := tr.periods[msg.Period]
	if m == nil {
		m = make(map[tagset.Key]jaccard.Coefficient)
		tr.periods[msg.Period] = m
		for tr.keep > 0 && len(tr.periods) > tr.keep {
			oldest := msg.Period
			for p := range tr.periods {
				if p < oldest {
					oldest = p
				}
			}
			delete(tr.periods, oldest)
		}
	}
	k := msg.Coeff.Tags.Key()
	if prev, ok := m[k]; ok {
		tr.Duplicates++
		if msg.Coeff.CN <= prev.CN {
			return
		}
	}
	m[k] = msg.Coeff
}

// Periods returns the reporting period ids in ascending order.
func (tr *Tracker) Periods() []int64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.periodsLocked()
}

func (tr *Tracker) periodsLocked() []int64 {
	out := make([]int64, 0, len(tr.periods))
	for p := range tr.periods {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Report returns the deduplicated coefficients of one period, sorted by
// descending J.
func (tr *Tracker) Report(period int64) []jaccard.Coefficient {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.reportLocked(period)
}

func (tr *Tracker) reportLocked(period int64) []jaccard.Coefficient {
	m := tr.periods[period]
	out := make([]jaccard.Coefficient, 0, len(m))
	for _, c := range m {
		out = append(out, c)
	}
	sortCoefficients(out)
	return out
}

// All returns every deduplicated coefficient across periods.
func (tr *Tracker) All() []jaccard.Coefficient {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var out []jaccard.Coefficient
	for _, p := range tr.periodsLocked() {
		out = append(out, tr.reportLocked(p)...)
	}
	return out
}

// TopK returns the k highest-Jaccard coefficients across every period seen
// so far, deduplicated per period exactly as All. Ties break by descending
// CN, then the tagset key, so the result is deterministic for a fixed
// Tracker state. k <= 0 returns all.
//
// The selection is a bounded heap over an unsorted gather, so the
// Tracker's lock is held only to copy coefficients, never to sort them —
// a live snapshot of a large run must not stall the Calculators' reports.
func (tr *Tracker) TopK(k int) []jaccard.Coefficient {
	tr.mu.Lock()
	n := 0
	for _, m := range tr.periods {
		n += len(m)
	}
	all := make([]jaccard.Coefficient, 0, n)
	for _, m := range tr.periods {
		for _, c := range m {
			all = append(all, c)
		}
	}
	tr.mu.Unlock()

	if k > 0 && len(all) > k {
		// Min-heap of the best k seen: the root is the worst of the
		// current best, evicted whenever a better candidate arrives.
		h := coeffHeap(all[:k:k])
		heap.Init(&h)
		for _, c := range all[k:] {
			if coeffBefore(c, h[0]) {
				h[0] = c
				heap.Fix(&h, 0)
			}
		}
		all = h
	}
	sortCoefficients(all)
	return all
}

// coeffBefore is the top-k ranking: descending J, then descending CN, then
// the tagset key.
func coeffBefore(a, b jaccard.Coefficient) bool {
	if a.J != b.J {
		return a.J > b.J
	}
	if a.CN != b.CN {
		return a.CN > b.CN
	}
	return a.Tags.Key() < b.Tags.Key()
}

// coeffHeap is a min-heap under coeffBefore: the root ranks last.
type coeffHeap []jaccard.Coefficient

func (h coeffHeap) Len() int            { return len(h) }
func (h coeffHeap) Less(i, j int) bool  { return coeffBefore(h[j], h[i]) }
func (h coeffHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *coeffHeap) Push(x interface{}) { *h = append(*h, x.(jaccard.Coefficient)) }
func (h *coeffHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// Lookup returns the most recent coefficient reported for the given tagset
// key, together with its reporting period. It scans periods newest-first,
// so a pair tracked across several periods yields its latest value.
func (tr *Tracker) Lookup(k tagset.Key) (jaccard.Coefficient, int64, bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	ps := tr.periodsLocked()
	for i := len(ps) - 1; i >= 0; i-- {
		if c, ok := tr.periods[ps[i]][k]; ok {
			return c, ps[i], true
		}
	}
	return jaccard.Coefficient{}, 0, false
}

// Counts returns the received and duplicate counters under the lock, for
// mid-run reads.
func (tr *Tracker) Counts() (received, duplicates int64) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.Received, tr.Duplicates
}

// sortCoefficients orders by descending J, then descending CN, then the
// tagset key — the deterministic "top correlations first" order used by
// reports and the live top-k view.
func sortCoefficients(out []jaccard.Coefficient) {
	sort.Slice(out, func(i, j int) bool { return coeffBefore(out[i], out[j]) })
}
