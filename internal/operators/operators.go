// Package operators implements the paper's operator topology (Figure 2,
// Sections 3, 6.2 and 7) on top of the storm substrate:
//
//	Source ─shuffle→ Parser ─shuffle→ Disseminator ─direct→ Calculator ─→ Tracker
//	                   └─fields→ Partitioner ─→ Merger ─all→ Disseminator
//	 Disseminator ─all→ Partitioner (repartition requests)
//	 Disseminator ─→ Merger (Single-Addition requests)
//	 Merger ─all→ Disseminator (partitions, Single-Addition results)
//
// Tuples carry one typed message in Values[0]; the Stream field names the
// logical stream.
package operators

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/flight"
	"repro/internal/jaccard"
	"repro/internal/partition"
	"repro/internal/storm"
	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/telemetry"
	"repro/internal/trend"
)

// Stream names used by the topology.
const (
	StreamDoc         = "doc"         // Parser → Disseminator, Partitioner
	StreamPartial     = "partial"     // Partitioner → Merger
	StreamPartitions  = "partitions"  // Merger → Disseminator
	StreamRepartition = "repartition" // Disseminator → Partitioner
	StreamAddition    = "addition"    // Disseminator → Merger
	StreamAdditionRes = "addition-r"  // Merger → Disseminator
	StreamNotify      = "notify"      // Disseminator → Calculator
	StreamCoeff       = "coeff"       // Calculator → Tracker
	StreamTrend       = "trend"       // Tracker → Trend
)

// DocMsg is a parsed document: arrival time plus its canonical tagset.
// Ingest is the monotonic process-local ingest stamp (telemetry.Now at the
// Source), carried through the pipeline so downstream operators can record
// doc→stage latencies; it is 0 for messages injected without a Source
// (unit tests driving bolts directly).
type DocMsg struct {
	Time   stream.Millis
	Tags   tagset.Set
	Ingest int64
	// Trace is the document's flight-recorder trace ID (0: untraced).
	// Operators that do per-document work record a span against it.
	Trace uint64
}

// PartialMsg is one Partitioner's contribution to a repartition epoch: the
// disjoint sets (DS) or locally-built partitions (set-cover algorithms) of
// its window, each flattened to a weighted tagset.
type PartialMsg struct {
	Epoch int
	Sets  []stream.WeightedSet
}

// PartitionsMsg announces freshly merged partitions together with the
// reference quality statistics the Disseminators monitor against
// (Section 7.2).
type PartitionsMsg struct {
	Epoch   int
	Parts   []partition.Partition
	Quality partition.Quality
}

// AdditionReq asks the Merger to place an uncovered tagset (Section 7.1).
type AdditionReq struct {
	Tags tagset.Set
}

// AdditionRes tells every Disseminator which partition (Calculator index)
// an added tagset went to.
type AdditionRes struct {
	Tags tagset.Set
	Part int
}

// RepartitionReq asks the Partitioners for fresh partitions.
type RepartitionReq struct {
	Epoch int
}

// NotifyMsg is a notification to one Calculator: the subset of a document's
// tags that the Calculator is assigned. Ingest propagates the document's
// ingest stamp (see DocMsg).
type NotifyMsg struct {
	Time   stream.Millis
	Tags   tagset.Set
	Ingest int64
	Trace  uint64 // flight-recorder trace ID of the source document (0: untraced)
}

// NotifyBatch carries several notifications to one Calculator in a single
// mailbox delivery. With Config.NotifyBatch > 0 the Disseminator buffers
// per-Calculator notifications and ships one NotifyBatch every NotifyBatch
// documents (plus on partition install and Cleanup), so Disseminator→
// Calculator mailbox traffic scales with batches instead of documents. The
// Calculator accepts both forms; per-Calculator notification order is
// preserved.
type NotifyBatch struct {
	Msgs []NotifyMsg
}

// CoeffMsg is a reported Jaccard coefficient with its reporting period.
// The pipeline's hot path ships CoeffBatch tuples; the Tracker accepts the
// single-coefficient form too (tests and ad-hoc feeds).
type CoeffMsg struct {
	Period int64
	Coeff  jaccard.Coefficient
}

// CoeffBatch is one Calculator's report for one period: a single tuple
// carrying a coefficient slice, so a flush of n coefficients costs one
// emission and one Tracker mailbox delivery instead of n. With Tracker
// parallelism > 1 a period flush is split into per-Tracker-task sub-batches
// (every coefficient routed by its tagset-key hash), and Route carries the
// destination task index so CoeffKey fields grouping delivers each
// sub-batch to the task owning its tagsets.
type CoeffBatch struct {
	Period int64
	Route  uint64
	Coeffs []jaccard.Coefficient
	// Ingest is the ingest stamp of the document whose arrival triggered
	// this flush (0 for Cleanup flushes), closing the doc→tracker-accept
	// latency trace when the Tracker ingests the batch.
	Ingest int64
	// Trace is the flight-recorder trace ID of that same triggering
	// document (0: untraced).
	Trace uint64
}

// TrendMsg is one deduplicated coefficient acceptance, emitted by the
// Tracker towards the Trend operator: a fresh (period, tagset) report or a
// CN upgrade of an existing one. The stream therefore carries exactly the
// values the Tracker's tables converge to.
type TrendMsg struct {
	Period int64
	Coeff  jaccard.Coefficient
	Trace  uint64 // flight-recorder trace ID of the triggering document (0: untraced)
}

// Config carries the paper's experiment parameters (Section 8.1).
type Config struct {
	K         int                 // partitions / Calculators
	P         int                 // Partitioner instances
	Algorithm partition.Algorithm // DS, SCC, SCL or SCI
	Thr       float64             // repartition threshold (0.2 or 0.5)

	SN          int           // Single-Addition occurrence threshold (paper: 3)
	StatsEvery  int           // quality statistics batch size z (paper: 1000)
	ReportEvery stream.Millis // Calculator reporting period y (paper: 5 min)
	WindowSpan  stream.Millis // Partitioner window W (paper: 5 min)
	MaxTags     int           // Parser tag cap (paper observes < 10)
	Seed        int64         //vet:ok configparity -- SCI randomness; every int64 is a valid seed

	Parsers       int // Parser instances (paper experiments: 1)
	Disseminators int // Disseminator instances (paper experiments: 1)

	// WindowCount switches the Partitioners to a count-based sliding
	// window of the given capacity instead of the time-based WindowSpan
	// (Section 6.2 allows either).
	WindowCount int

	// AutoScaleLoad enables topology scaling (Section 7.3): when > 0 the
	// Merger sizes the number of active partitions as
	// ceil(windowLoad / AutoScaleLoad), capped at K. Only Calculators
	// assigned a partition are indexed by the Disseminators and receive
	// documents; the rest idle.
	AutoScaleLoad int64

	// KeepPeriods bounds the Tracker's memory for long-running service
	// deployments: when > 0 only the most recent KeepPeriods reporting
	// periods are retained (older coefficient reports are pruned as new
	// periods open). 0 — the batch/figure default — keeps everything.
	KeepPeriods int

	// NoSeries disables the per-batch figure time series (CommSeries,
	// LoadSeries), whose memory grows with the run. Service deployments
	// (cmd/tagcorrd) set it; the scalar statistics are unaffected.
	NoSeries bool //vet:ok configparity -- free toggle; both values are valid

	// TrackerShards sets how many lock shards the Tracker splits its
	// retained coefficients into (rounded up to a power of two); reports
	// lock only the shard owning their tag-pair hash. 0 uses the default
	// (16).
	TrackerShards int

	// TrackerTopK bounds the incrementally maintained per-shard top-k
	// heaps: Tracker.TopK(k) with k at or below the bound is answered from
	// the maintained heaps without scanning the retained coefficients. 0
	// uses the default (128). The query service raises it to its own top-k
	// size on startup.
	TrackerTopK int

	// EvictedPairs is the capacity of the Tracker's LRU of coefficients
	// evicted by KeepPeriods pruning, letting point lookups (the /pairs
	// endpoint) answer for pairs whose reporting periods were pruned. 0 —
	// the batch default — disables the LRU.
	EvictedPairs int

	// SpoutPending overrides the concurrent executor's spout throttle (the
	// maximum number of unprocessed tuples in flight before spouts block).
	// 0 — the default — uses the substrate's built-in 4096.
	SpoutPending int

	// TrackerTasks is the Tracker operator's parallelism (0: default 1).
	// All tasks share the one thread-safe Tracker instance (its shard
	// locks, atomics and period registry already support concurrent
	// reporters); tuples are fields-grouped on the tagset-key hash
	// (CoeffKey), so every report of one tagset passes through the same
	// task and per-tagset arrival order — what CN-upgrade dedup and
	// StreamTrend emission rely on — is preserved. Calculators split each
	// period flush into per-task sub-batches with the same hash.
	TrackerTasks int

	// NotifyBatch batches the Disseminator→Calculator notification stream:
	// when > 0 the Disseminator buffers per-Calculator notifications and
	// flushes them as one NotifyBatch tuple every NotifyBatch documents
	// (plus on partition install and Cleanup). 0 — the batch default —
	// ships one tuple per (document × involved Calculator).
	NotifyBatch int

	// Trend enables the streaming trend-detection subsystem: the Tracker
	// emits every accepted coefficient report to a Trend operator
	// (fields-grouped by tagset key) feeding a sharded trend.Stream
	// detector, and Snapshot carries a Trends view. Off — the batch
	// default — adds no operator and no extra dataflow.
	Trend bool //vet:ok configparity -- free toggle; both values are valid

	// TrendAlpha is the detector's exponential-smoothing factor
	// (0: default 0.4); TrendMinSupport drops reports with a smaller
	// intersection counter (0: default 5); TrendTopK bounds the maintained
	// per-period top-trends heaps (0: default 64); TrendThreshold is the
	// minimum score pushed to event subscribers (0 publishes every scored
	// event); TrendShards is the detector's lock shard count (0: default
	// 8); TrendTasks is the Trend operator's parallelism (0: default 1).
	// The detector's per-period state obeys KeepPeriods like the Tracker.
	TrendAlpha      float64
	TrendMinSupport int64
	TrendTopK       int
	TrendThreshold  float64
	TrendShards     int
	TrendTasks      int

	// ArchiveDir enables the durability subsystem (internal/archive): the
	// Tracker and the trend detector stream accepted state into per-period
	// segment files under this directory, and the pipeline writes periodic
	// CRC-verified checkpoints from which core.Restore recovers after a
	// crash or restart. Empty — the batch default — archives nothing.
	// Requires ArchiveDict.
	ArchiveDir string

	// ArchiveDict is the tag dictionary the input stream is interned with;
	// checkpoints persist its contents so a restarted process reproduces
	// the same Tag identifiers. Required when ArchiveDir is set.
	ArchiveDict *tagset.Dictionary

	// CheckpointEvery writes a checkpoint every N freshly opened reporting
	// periods (0: every period). Only meaningful with ArchiveDir.
	CheckpointEvery int

	// ArchiveBudgetBytes bounds the archive directory's total size: the
	// background compactor coalesces runs of pruned per-period segments
	// into compacted files and, past the budget, ages out the oldest
	// compacted files (oldest history first) until the directory fits.
	// 0 keeps everything. Requires ArchiveDir and KeepPeriods > 0 — only
	// periods behind the retention pruning floor are sealed forever and
	// thus safe to compact.
	ArchiveBudgetBytes int64

	// Stages carries the pipeline's end-to-end stage-latency histograms.
	// When set, the Source stamps every document with a monotonic ingest
	// time and the Partitioner, Calculator and Tracker record their
	// doc→stage latencies into it. nil — the default — traces nothing.
	Stages *Stages //vet:ok configparity -- optional tracing sink; nil and any non-nil value are valid

	// Flight is the pipeline's flight recorder: when set, the Source
	// samples per-document span traces into it and the operators record
	// operational events (repartitions, retention prunes). nil — the
	// default — records nothing; every recording call is nil-safe.
	Flight *flight.Recorder //vet:ok configparity -- optional observability sink; nil and any non-nil recorder are valid

	// CalibrateRefs replaces the Merger's partition-level reference
	// quality with the first statistics batch measured on live traffic
	// after each install. The paper's design (and the default) uses the
	// Merger's values, which are optimistic for the set-cover algorithms —
	// every merged pseudo-tagset is fully covered by its own partition —
	// and therefore trip repartitions readily, matching the high
	// repartition counts of Figure 6.
	CalibrateRefs bool //vet:ok configparity -- free toggle; both values are valid
}

// DefaultConfig returns the paper's default parameter setting: P=10, k=10,
// thr=0.5, sn=3, z=1000, 5-minute reporting and windows.
func DefaultConfig() Config {
	return Config{
		K:           10,
		P:           10,
		Algorithm:   partition.DS,
		Thr:         0.5,
		SN:          3,
		StatsEvery:  1000,
		ReportEvery: stream.Minutes(5),
		WindowSpan:  stream.Minutes(5),
		MaxTags:     10,
		Seed:        1,

		Parsers:       1,
		Disseminators: 1,
	}
}

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.K < 1:
		return fmt.Errorf("operators: K = %d", c.K)
	case c.P < 1:
		return fmt.Errorf("operators: P = %d", c.P)
	case !c.Algorithm.Valid():
		return fmt.Errorf("operators: algorithm %q", c.Algorithm)
	case c.Thr < 0 || math.IsNaN(c.Thr):
		return fmt.Errorf("operators: thr = %g", c.Thr)
	case c.SN < 1:
		return fmt.Errorf("operators: sn = %d", c.SN)
	case c.StatsEvery < 1:
		return fmt.Errorf("operators: statsEvery = %d", c.StatsEvery)
	case c.ReportEvery <= 0:
		return fmt.Errorf("operators: reportEvery = %d", c.ReportEvery)
	case c.WindowSpan <= 0:
		return fmt.Errorf("operators: windowSpan = %d", c.WindowSpan)
	case c.MaxTags < 1:
		return fmt.Errorf("operators: maxTags = %d", c.MaxTags)
	case c.Parsers < 1:
		return fmt.Errorf("operators: parsers = %d", c.Parsers)
	case c.Disseminators < 1:
		return fmt.Errorf("operators: disseminators = %d", c.Disseminators)
	case c.WindowCount < 0:
		return fmt.Errorf("operators: windowCount = %d", c.WindowCount)
	case c.AutoScaleLoad < 0:
		return fmt.Errorf("operators: autoScaleLoad = %d", c.AutoScaleLoad)
	case c.KeepPeriods < 0:
		return fmt.Errorf("operators: keepPeriods = %d", c.KeepPeriods)
	case c.TrackerShards < 0:
		return fmt.Errorf("operators: trackerShards = %d", c.TrackerShards)
	case c.TrackerTopK < 0:
		return fmt.Errorf("operators: trackerTopK = %d", c.TrackerTopK)
	case c.EvictedPairs < 0:
		return fmt.Errorf("operators: evictedPairs = %d", c.EvictedPairs)
	case c.SpoutPending < 0:
		return fmt.Errorf("operators: spoutPending = %d", c.SpoutPending)
	case c.TrackerTasks < 0:
		return fmt.Errorf("operators: trackerTasks = %d", c.TrackerTasks)
	case c.NotifyBatch < 0:
		return fmt.Errorf("operators: notifyBatch = %d", c.NotifyBatch)
	case c.TrendAlpha < 0 || c.TrendAlpha > 1 || math.IsNaN(c.TrendAlpha):
		return fmt.Errorf("operators: trendAlpha = %g", c.TrendAlpha)
	case c.TrendMinSupport < 0:
		return fmt.Errorf("operators: trendMinSupport = %d", c.TrendMinSupport)
	case c.TrendTopK < 0:
		return fmt.Errorf("operators: trendTopK = %d", c.TrendTopK)
	case c.TrendThreshold < 0 || c.TrendThreshold > 1 || math.IsNaN(c.TrendThreshold):
		return fmt.Errorf("operators: trendThreshold = %g", c.TrendThreshold)
	case c.TrendShards < 0:
		return fmt.Errorf("operators: trendShards = %d", c.TrendShards)
	case c.TrendTasks < 0:
		return fmt.Errorf("operators: trendTasks = %d", c.TrendTasks)
	case c.CheckpointEvery < 0:
		return fmt.Errorf("operators: checkpointEvery = %d", c.CheckpointEvery)
	case c.CheckpointEvery > 0 && c.ArchiveDir == "":
		return fmt.Errorf("operators: checkpointEvery = %d without ArchiveDir (checkpoints need an archive to live in)", c.CheckpointEvery)
	case c.ArchiveDir != "" && c.ArchiveDict == nil:
		return fmt.Errorf("operators: ArchiveDir requires ArchiveDict (the stream's tag dictionary)")
	case c.EvictedPairs > 0 && c.KeepPeriods == 0:
		return fmt.Errorf("operators: evictedPairs = %d with keepPeriods = 0 (nothing is ever pruned into the LRU)", c.EvictedPairs)
	case c.ArchiveBudgetBytes < 0:
		return fmt.Errorf("operators: archiveBudgetBytes = %d", c.ArchiveBudgetBytes)
	case c.ArchiveBudgetBytes > 0 && c.ArchiveDir == "":
		return fmt.Errorf("operators: archiveBudgetBytes = %d without ArchiveDir (no archive to bound)", c.ArchiveBudgetBytes)
	case c.ArchiveBudgetBytes > 0 && c.KeepPeriods == 0:
		return fmt.Errorf("operators: archiveBudgetBytes = %d with keepPeriods = 0 (without retention no period is ever sealed, so nothing can be compacted or aged out)", c.ArchiveBudgetBytes)
	}
	return nil
}

// TrendStreamConfig maps the pipeline configuration to the streaming
// detector's, filling the documented defaults for unset fields.
func (c Config) TrendStreamConfig() trend.StreamConfig {
	sc := trend.StreamConfig{
		Alpha:       c.TrendAlpha,
		MinSupport:  c.TrendMinSupport,
		MaxTracked:  1 << 18,
		TopK:        c.TrendTopK,
		Threshold:   c.TrendThreshold,
		Shards:      c.TrendShards,
		KeepPeriods: c.KeepPeriods,
	}
	if sc.Alpha == 0 {
		sc.Alpha = 0.4
	}
	if sc.MinSupport == 0 {
		sc.MinSupport = 5
	}
	return sc
}

// Stages bundles the end-to-end stage-latency histograms: time from
// document ingest at the Source until (a) the Partitioner absorbs it into
// its window, (b) a Calculator scores one of its notifications, and (c)
// the Tracker accepts the coefficient batch whose flush it triggered.
// The histograms are shared lock-free telemetry histograms, so one Stages
// value serves every task of every operator.
type Stages struct {
	DocPartition     *telemetry.Histogram
	DocCoefficient   *telemetry.Histogram
	DocTrackerAccept *telemetry.Histogram
}

// NewStages returns a Stages with fresh histograms.
func NewStages() *Stages {
	return &Stages{
		DocPartition:     telemetry.NewHistogram(),
		DocCoefficient:   telemetry.NewHistogram(),
		DocTrackerAccept: telemetry.NewHistogram(),
	}
}

// TagsetKey hashes a document's full tagset for fields grouping, so equal
// tagsets always reach the same Partitioner instance (Section 6.2).
func TagsetKey(t storm.Tuple) uint64 {
	msg := t.Values[0].(DocMsg)
	h := fnv.New64a()
	h.Write([]byte(msg.Tags.Key()))
	return h.Sum64()
}

// CoeffKey routes Calculator→Tracker tuples for fields grouping with
// Tracker parallelism > 1. CoeffBatch tuples carry their destination task
// index in Route (the Calculator already grouped the coefficients by
// routeHash % tasks, so Route % tasks == Route); single-coefficient
// CoeffMsg tuples hash their tagset key directly with the same hash, which
// lands on the same task as any batch carrying that tagset.
func CoeffKey(t storm.Tuple) uint64 {
	switch msg := t.Values[0].(type) {
	case CoeffBatch:
		return msg.Route
	case CoeffMsg:
		return routeHash(msg.Coeff.Tags.Key())
	}
	return 0
}

// routeHash is the FNV-1a tagset-key hash shared by the Tracker's shard
// routing and the Calculator's per-Tracker-task sub-batch grouping, so one
// tagset always maps to one Tracker task and one shard.
func routeHash(k tagset.Key) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= 1099511628211
	}
	return h
}

// Source adapts any document iterator (generator, slice, JSONL reader) to a
// storm spout. The next function returns false when the stream ends.
type Source struct {
	next   func() (stream.Document, bool)
	flight *flight.Recorder
}

// SetFlight attaches the flight recorder: every emitted document gets a
// Begin call (which decides sampling and assigns the trace ID carried in
// DocMsg.Trace). Call before the run starts.
func (s *Source) SetFlight(rec *flight.Recorder) { s.flight = rec }

// NewSource wraps next into a spout.
func NewSource(next func() (stream.Document, bool)) *Source {
	return &Source{next: next}
}

// SliceSource returns a Source over a fixed document slice.
func SliceSource(docs []stream.Document) *Source {
	i := 0
	return NewSource(func() (stream.Document, bool) {
		if i >= len(docs) {
			return stream.Document{}, false
		}
		d := docs[i]
		i++
		return d, true
	})
}

// Open implements storm.Spout.
func (s *Source) Open(*storm.TaskContext) {}

// NextTuple implements storm.Spout.
func (s *Source) NextTuple(out storm.Collector) bool {
	d, ok := s.next()
	if !ok {
		return false
	}
	ingest := telemetry.Now()
	trace := s.flight.Begin(ingest) // nil-safe; 0 when untraced
	out.Emit(storm.Tuple{Stream: StreamDoc, Values: []interface{}{DocMsg{Time: d.Time, Tags: d.Tags, Ingest: ingest, Trace: trace}}})
	return true
}

// Parser extracts canonical tagsets from raw documents: untagged documents
// are dropped and oversized tagsets truncated to MaxTags (Section 6.2; the
// paper notes tweets carry fewer than 10 tags).
type Parser struct {
	MaxTags int
	Dropped int64 // untagged documents discarded
}

// NewParser returns a parser with the given tag cap.
func NewParser(maxTags int) *Parser { return &Parser{MaxTags: maxTags} }

// Prepare implements storm.Bolt.
func (p *Parser) Prepare(*storm.TaskContext) {}

// Execute implements storm.Bolt.
func (p *Parser) Execute(t storm.Tuple, out storm.Collector) {
	msg := t.Values[0].(DocMsg)
	if msg.Tags.IsEmpty() {
		p.Dropped++
		return
	}
	if msg.Tags.Len() > p.MaxTags {
		msg.Tags = tagset.New(msg.Tags[:p.MaxTags]...)
	}
	out.Emit(storm.Tuple{Stream: StreamDoc, Values: []interface{}{msg}})
}
