// Package storm is an in-process reproduction of the Storm stream-processing
// substrate the paper builds on (Section 6.1): topologies of spouts (stream
// sources) and bolts (operators), each with a configurable number of
// parallel task instances, connected by the five Storm grouping rules —
// shuffle, all, fields, local and direct.
//
// Two executors are provided. The sequential executor runs the whole
// topology on one goroutine with a FIFO tuple queue: deterministic,
// repeatable, and exactly sufficient for the paper's metrics, which are
// logical message counts rather than wall-clock timings. The concurrent
// executor runs every task on its own goroutine with unbounded mailboxes
// (cycles in the topology — present in the paper's design, where
// Disseminators talk back to Merger and Partitioners — therefore cannot
// deadlock) and detects quiescence with an in-flight tuple counter. The
// concurrent executor can also be started in the background
// (StartConcurrent), returning a Run handle for live-state reads while
// the dataflow is in flight.
//
// Shuffle grouping distributes round-robin per producer task, which meets
// Storm's "approximately equal" contract while keeping runs deterministic.
// Local grouping degenerates to shuffle in a single process, as documented.
package storm

import (
	"fmt"
	"sync/atomic"
)

// Tuple is the unit of dataflow: a named list of values, tagged with the
// logical stream it travels on (bolts may emit multiple streams).
type Tuple struct {
	Stream string
	Values []interface{}
}

// Collector lets a spout or bolt emit tuples to its subscribers.
type Collector interface {
	// Emit routes t to every subscribed consumer according to the
	// grouping declared on each subscription edge.
	Emit(t Tuple)
	// EmitDirect delivers t to one specific task of a consumer component
	// that subscribed with direct grouping.
	EmitDirect(task TaskID, t Tuple)
}

// TaskID globally identifies one parallel instance of a component.
type TaskID int

// Spout produces the input stream. NextTuple emits zero or more tuples and
// reports whether more input remains; returning false ends the stream.
type Spout interface {
	Open(ctx *TaskContext)
	NextTuple(out Collector) bool
}

// Bolt consumes tuples and may emit new ones.
type Bolt interface {
	Prepare(ctx *TaskContext)
	Execute(t Tuple, out Collector)
}

// Cleaner is an optional interface for bolts needing teardown (e.g. final
// flushes) when the topology drains.
type Cleaner interface {
	Cleanup(out Collector)
}

// TaskContext describes one task instance to the component running in it.
type TaskContext struct {
	Component string
	Task      TaskID // global id
	Index     int    // instance index within the component
	Parallel  int    // number of instances of the component

	topo *Topology
}

// TasksOf returns the task ids of the named component, in instance order.
// It returns nil for unknown components, and for contexts built without a
// topology (unit tests driving a bolt directly).
func (c *TaskContext) TasksOf(component string) []TaskID {
	if c.topo == nil {
		return nil
	}
	n := c.topo.components[component]
	if n == nil {
		return nil
	}
	out := make([]TaskID, len(n.tasks))
	copy(out, n.tasks)
	return out
}

// grouping is one subscription rule on an edge.
type groupingKind int

const (
	groupShuffle groupingKind = iota
	groupAll
	groupFields
	groupDirect
	groupLocal
)

func (g groupingKind) String() string {
	switch g {
	case groupShuffle:
		return "shuffle"
	case groupAll:
		return "all"
	case groupFields:
		return "fields"
	case groupDirect:
		return "direct"
	case groupLocal:
		return "local"
	}
	return "unknown"
}

// KeyFunc extracts the routing key for fields grouping.
type KeyFunc func(Tuple) uint64

type edge struct {
	from, to *node
	kind     groupingKind
	key      KeyFunc
	rr       []uint32 // per-producer-task round-robin cursor (shuffle/local)
}

type node struct {
	name     string
	parallel int
	spout    func() Spout
	bolt     func() Bolt
	tasks    []TaskID
	outs     []*edge
	ins      []*edge
}

// pendingSub is a subscription recorded at declaration time and resolved at
// Build, so components may subscribe to components declared later (the
// paper's topology contains cycles).
type pendingSub struct {
	to   *node
	from string
	kind groupingKind
	key  KeyFunc
}

// Builder assembles a topology.
type Builder struct {
	nodes []*node
	byNam map[string]*node
	subs  []pendingSub
	errs  []error
}

// NewBuilder returns an empty topology builder.
func NewBuilder() *Builder {
	return &Builder{byNam: make(map[string]*node)}
}

// Node configures the subscriptions of a declared component.
type Node struct {
	b *Builder
	n *node
}

func (b *Builder) add(name string, parallel int) *node {
	if parallel < 1 {
		b.errs = append(b.errs, fmt.Errorf("storm: component %q parallelism %d", name, parallel))
		parallel = 1
	}
	if _, dup := b.byNam[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("storm: duplicate component %q", name))
	}
	n := &node{name: name, parallel: parallel}
	b.nodes = append(b.nodes, n)
	b.byNam[name] = n
	return n
}

// Spout declares a stream source with the given parallelism. The factory is
// invoked once per task instance.
func (b *Builder) Spout(name string, factory func() Spout, parallel int) *Node {
	n := b.add(name, parallel)
	n.spout = factory
	return &Node{b: b, n: n}
}

// Bolt declares an operator with the given parallelism. The factory is
// invoked once per task instance.
func (b *Builder) Bolt(name string, factory func() Bolt, parallel int) *Node {
	n := b.add(name, parallel)
	n.bolt = factory
	return &Node{b: b, n: n}
}

func (nd *Node) subscribe(from string, kind groupingKind, key KeyFunc) *Node {
	nd.b.subs = append(nd.b.subs, pendingSub{to: nd.n, from: from, kind: kind, key: key})
	return nd
}

// Shuffle subscribes with shuffle grouping (round-robin per producer task).
func (nd *Node) Shuffle(from string) *Node { return nd.subscribe(from, groupShuffle, nil) }

// All subscribes with all grouping (broadcast to every task).
func (nd *Node) All(from string) *Node { return nd.subscribe(from, groupAll, nil) }

// Fields subscribes with fields grouping on the given key function: tuples
// with equal keys always reach the same task.
func (nd *Node) Fields(from string, key KeyFunc) *Node {
	if key == nil {
		nd.b.errs = append(nd.b.errs, fmt.Errorf("storm: %q fields-subscribes to %q with nil key", nd.n.name, from))
		return nd
	}
	return nd.subscribe(from, groupFields, key)
}

// Direct subscribes with direct grouping: the producer addresses individual
// tasks via EmitDirect.
func (nd *Node) Direct(from string) *Node { return nd.subscribe(from, groupDirect, nil) }

// Local subscribes with local grouping; in-process it behaves as shuffle.
func (nd *Node) Local(from string) *Node { return nd.subscribe(from, groupLocal, nil) }

// Topology is a built, runnable operator graph.
type Topology struct {
	nodes      []*node
	components map[string]*node
	tasks      []*task
	stats      *Stats
	maxPending int // spout throttle; 0 means the default

	// satHook, when set, is called each time a spout parks on the
	// throttle (after the saturation counter increments). Set before the
	// run starts (read once at StartConcurrent); the hook must be cheap
	// and non-blocking — it runs on the spout goroutine.
	satHook func()
}

// SetThrottleHook installs a callback invoked whenever a spout parks on
// the max-spout-pending throttle. Call before the run starts.
func (tp *Topology) SetThrottleHook(f func()) { tp.satHook = f }

// task is one runtime instance.
type task struct {
	ctx   TaskContext
	node  *node
	spout Spout
	bolt  Bolt
}

// Build finalises the topology, resolving subscriptions and instantiating
// one task per declared instance. It returns the accumulated declaration
// errors, if any.
func (b *Builder) Build() (*Topology, error) {
	for _, s := range b.subs {
		src, ok := b.byNam[s.from]
		if !ok {
			b.errs = append(b.errs, fmt.Errorf("storm: %q subscribes to unknown %q", s.to.name, s.from))
			continue
		}
		e := &edge{from: src, to: s.to, kind: s.kind, key: s.key}
		src.outs = append(src.outs, e)
		s.to.ins = append(s.to.ins, e)
	}
	b.subs = nil
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.nodes) == 0 {
		return nil, fmt.Errorf("storm: empty topology")
	}
	hasSpout := false
	tp := &Topology{components: make(map[string]*node)}
	for _, n := range b.nodes {
		if n.spout != nil {
			hasSpout = true
		}
		tp.components[n.name] = n
		for i := 0; i < n.parallel; i++ {
			id := TaskID(len(tp.tasks))
			n.tasks = append(n.tasks, id)
			t := &task{
				ctx:  TaskContext{Component: n.name, Task: id, Index: i, Parallel: n.parallel, topo: tp},
				node: n,
			}
			if n.spout != nil {
				t.spout = n.spout()
			} else {
				t.bolt = n.bolt()
			}
			tp.tasks = append(tp.tasks, t)
		}
		for _, e := range n.outs {
			e.rr = make([]uint32, n.parallel)
		}
	}
	if !hasSpout {
		return nil, fmt.Errorf("storm: topology has no spout")
	}
	tp.nodes = b.nodes
	tp.stats = newStats(tp)
	return tp, nil
}

// Stats counts dataflow volumes per component and per task. The counters
// are lock-free atomics over maps frozen at Build time: every tuple on the
// hot path costs two atomic adds instead of two global mutex acquisitions,
// so the dataflow does not serialize on its own bookkeeping as component
// parallelism grows.
type Stats struct {
	emitted  map[string]*int64 // per component; map immutable after Build
	received map[string]*int64 // per component; map immutable after Build
	perTask  []int64           // atomic; indexed by TaskID
	names    []string

	// Mailbox pressure, populated by the concurrent executor only: the
	// high-water queue depth per task, and the total number of steady-
	// backlog compactions (dead-prefix slides) across all mailboxes.
	mailboxHW      []int64 // atomic; indexed by TaskID
	mailboxCompact int64   // atomic

	// throttleSat counts spout-throttle saturations: times a spout found
	// the in-flight tuple count at the cap and had to park (concurrent
	// executor only). A steadily climbing value with no document progress
	// is the signature of a stalled consumer.
	throttleSat int64 // atomic
}

func newStats(tp *Topology) *Stats {
	s := &Stats{
		emitted:   make(map[string]*int64, len(tp.nodes)),
		received:  make(map[string]*int64, len(tp.nodes)),
		perTask:   make([]int64, len(tp.tasks)),
		names:     make([]string, len(tp.tasks)),
		mailboxHW: make([]int64, len(tp.tasks)),
	}
	for _, n := range tp.nodes {
		s.emitted[n.name] = new(int64)
		s.received[n.name] = new(int64)
	}
	for i, t := range tp.tasks {
		s.names[i] = t.ctx.Component
	}
	return s
}

func (s *Stats) addEmit(component string, n int64) {
	atomic.AddInt64(s.emitted[component], n)
}

func (s *Stats) addRecv(task TaskID) {
	atomic.AddInt64(s.received[s.names[task]], 1)
	atomic.AddInt64(&s.perTask[task], 1)
}

// Emitted returns the number of tuples emitted by the named component.
func (s *Stats) Emitted(component string) int64 {
	c := s.emitted[component]
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(c)
}

// Received returns the number of tuples received by the named component.
func (s *Stats) Received(component string) int64 {
	c := s.received[component]
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(c)
}

// Totals returns copies of the per-component emitted and received counter
// maps (components that moved no tuples are omitted). Like the
// single-component getters it is safe to call while a concurrent run is in
// flight.
func (s *Stats) Totals() (emitted, received map[string]int64) {
	emitted = make(map[string]int64, len(s.emitted))
	for k, c := range s.emitted {
		if v := atomic.LoadInt64(c); v != 0 {
			emitted[k] = v
		}
	}
	received = make(map[string]int64, len(s.received))
	for k, c := range s.received {
		if v := atomic.LoadInt64(c); v != 0 {
			received[k] = v
		}
	}
	return emitted, received
}

// noteMailboxDepth records a post-enqueue queue depth for a task,
// keeping the high-water mark.
func (s *Stats) noteMailboxDepth(task TaskID, depth int64) {
	for {
		cur := atomic.LoadInt64(&s.mailboxHW[task])
		if depth <= cur || atomic.CompareAndSwapInt64(&s.mailboxHW[task], cur, depth) {
			return
		}
	}
}

// MailboxHighWater returns the per-task high-water mailbox depths of the
// named component, in instance order. All zeros under the sequential
// executor, which has no mailboxes.
func (s *Stats) MailboxHighWater(tp *Topology, component string) []int64 {
	n := tp.components[component]
	if n == nil {
		return nil
	}
	out := make([]int64, len(n.tasks))
	for i, id := range n.tasks {
		out[i] = atomic.LoadInt64(&s.mailboxHW[id])
	}
	return out
}

// MailboxCompactions returns the total number of steady-backlog mailbox
// compactions across all tasks.
func (s *Stats) MailboxCompactions() int64 {
	return atomic.LoadInt64(&s.mailboxCompact)
}

// ThrottleSaturations returns how many times a spout hit the
// max-spout-pending cap and parked (0 under the sequential executor).
func (s *Stats) ThrottleSaturations() int64 {
	return atomic.LoadInt64(&s.throttleSat)
}

// TaskReceived returns per-task received counts for the named component.
func (s *Stats) TaskReceived(tp *Topology, component string) []int64 {
	n := tp.components[component]
	if n == nil {
		return nil
	}
	out := make([]int64, len(n.tasks))
	for i, id := range n.tasks {
		out[i] = atomic.LoadInt64(&s.perTask[id])
	}
	return out
}

// Stats exposes the topology's dataflow counters.
func (tp *Topology) Stats() *Stats { return tp.stats }

// route computes the destination tasks of t on edge e for producer task
// index fromIdx. Direct edges route nothing here (EmitDirect addresses them).
func (e *edge) route(t Tuple, fromIdx int) []TaskID {
	switch e.kind {
	case groupShuffle, groupLocal:
		i := atomic.AddUint32(&e.rr[fromIdx], 1)
		return e.to.tasks[int(i)%len(e.to.tasks) : int(i)%len(e.to.tasks)+1]
	case groupAll:
		return e.to.tasks
	case groupFields:
		k := e.key(t)
		return e.to.tasks[int(k%uint64(len(e.to.tasks))) : int(k%uint64(len(e.to.tasks)))+1]
	case groupDirect:
		return nil
	}
	return nil
}

// directEdgeTo reports whether producer node n has a direct edge covering
// the given destination task.
func directEdgeTo(n *node, dest *node) bool {
	for _, e := range n.outs {
		if e.to == dest && e.kind == groupDirect {
			return true
		}
	}
	return false
}
