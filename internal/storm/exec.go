package storm

import (
	"sync"
	"sync/atomic"
)

// envelope is a tuple addressed to a task.
type envelope struct {
	to TaskID
	t  Tuple
}

// seqCollector routes emissions into the sequential executor's FIFO queue.
type seqCollector struct {
	ex   *seqExecutor
	task *task
}

func (c *seqCollector) Emit(t Tuple) {
	n := c.task.node
	c.ex.tp.stats.addEmit(n.name, 1)
	for _, e := range n.outs {
		for _, dst := range e.route(t, c.task.ctx.Index) {
			c.ex.queue = append(c.ex.queue, envelope{to: dst, t: t})
		}
	}
}

func (c *seqCollector) EmitDirect(dst TaskID, t Tuple) {
	c.ex.tp.mustDirect(c.task, dst)
	c.ex.tp.stats.addEmit(c.task.node.name, 1)
	c.ex.queue = append(c.ex.queue, envelope{to: dst, t: t})
}

// mustDirect panics when a component emits directly to a task it has no
// direct-grouping edge to — a topology wiring bug.
func (tp *Topology) mustDirect(from *task, dst TaskID) {
	if int(dst) < 0 || int(dst) >= len(tp.tasks) {
		panic("storm: EmitDirect to unknown task")
	}
	if !directEdgeTo(from.node, tp.tasks[dst].node) {
		panic("storm: EmitDirect from " + from.node.name + " to " +
			tp.tasks[dst].node.name + " without direct grouping")
	}
}

type seqExecutor struct {
	tp    *Topology
	queue []envelope
}

// RunSequential executes the topology deterministically on the calling
// goroutine: spouts are polled round-robin whenever the tuple queue drains,
// and every tuple is processed in FIFO order. When all spouts are
// exhausted and the queue is empty, bolts with a Cleanup method are drained
// in declaration order (their emissions are processed too). The method
// returns the topology's stats for convenience.
func (tp *Topology) RunSequential() *Stats {
	ex := &seqExecutor{tp: tp}

	// Prepare/Open every task.
	for _, t := range tp.tasks {
		if t.spout != nil {
			t.spout.Open(&t.ctx)
		} else {
			t.bolt.Prepare(&t.ctx)
		}
	}

	live := make(map[*task]bool)
	var spouts []*task
	for _, t := range tp.tasks {
		if t.spout != nil {
			live[t] = true
			spouts = append(spouts, t)
		}
	}

	for {
		ex.drain()
		any := false
		for _, s := range spouts {
			if !live[s] {
				continue
			}
			if !s.spout.NextTuple(&seqCollector{ex: ex, task: s}) {
				live[s] = false
			} else {
				any = true
			}
			ex.drain()
		}
		if !any {
			break
		}
	}

	// Cleanup phase, declaration order, draining between components.
	for _, n := range tp.nodes {
		for _, id := range n.tasks {
			t := tp.tasks[id]
			if t.bolt == nil {
				continue
			}
			if cl, ok := t.bolt.(Cleaner); ok {
				cl.Cleanup(&seqCollector{ex: ex, task: t})
				ex.drain()
			}
		}
	}
	return tp.stats
}

func (ex *seqExecutor) drain() {
	for len(ex.queue) > 0 {
		env := ex.queue[0]
		ex.queue = ex.queue[1:]
		t := ex.tp.tasks[env.to]
		ex.tp.stats.addRecv(env.to)
		if t.bolt != nil {
			t.bolt.Execute(env.t, &seqCollector{ex: ex, task: t})
		}
	}
	if cap(ex.queue) > 4096 && len(ex.queue) == 0 {
		ex.queue = nil
	}
}

// mailbox is an unbounded FIFO with blocking receive, so topology cycles
// cannot deadlock on bounded channels. Consumed slots are zeroed as they are
// read and the slice restarts from the front whenever it drains (dropping
// oversized backing arrays, mirroring seqExecutor.drain), so a long-running
// service's mailboxes never keep envelope payloads — tagset slices,
// coefficient batches — reachable after processing.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []envelope
	head   int // next slot to read; items[:head] are consumed and zeroed
	closed bool

	stats *Stats // depth high-water and compaction telemetry
	task  TaskID
}

func newMailbox(stats *Stats, task TaskID) *mailbox {
	m := &mailbox{stats: stats, task: task}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(e envelope) {
	m.mu.Lock()
	m.items = append(m.items, e)
	depth := int64(len(m.items) - m.head)
	m.mu.Unlock()
	m.stats.noteMailboxDepth(m.task, depth)
	m.cond.Signal()
}

func (m *mailbox) get() (envelope, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.head == len(m.items) && !m.closed {
		m.cond.Wait()
	}
	if m.head == len(m.items) {
		return envelope{}, false
	}
	e := m.items[m.head]
	m.items[m.head] = envelope{}
	m.head++
	switch {
	case m.head == len(m.items):
		if cap(m.items) > 4096 {
			m.items = nil
		} else {
			m.items = m.items[:0]
		}
		m.head = 0
	case m.head >= 1024 && m.head*2 >= len(m.items):
		// Steady backlog: the queue never momentarily drains, so the dead
		// prefix would otherwise grow (and be copied by every append
		// realloc) forever. Slide the live window to the front once the
		// prefix dominates — amortized O(1) per tuple — and zero the
		// vacated tail so the moved-from slots don't pin payloads.
		n := copy(m.items, m.items[m.head:])
		for i := n; i < len(m.items); i++ {
			m.items[i] = envelope{}
		}
		m.items = m.items[:n]
		m.head = 0
		atomic.AddInt64(&m.stats.mailboxCompact, 1)
	}
	return e, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// conCollector routes emissions into task mailboxes, maintaining the
// in-flight counter used for quiescence detection.
type conCollector struct {
	ex   *conExecutor
	task *task
}

func (c *conCollector) Emit(t Tuple) {
	n := c.task.node
	c.ex.tp.stats.addEmit(n.name, 1)
	for _, e := range n.outs {
		for _, dst := range e.route(t, c.task.ctx.Index) {
			c.ex.send(dst, t)
		}
	}
}

func (c *conCollector) EmitDirect(dst TaskID, t Tuple) {
	c.ex.tp.mustDirect(c.task, dst)
	c.ex.tp.stats.addEmit(c.task.node.name, 1)
	c.ex.send(dst, t)
}

// defaultMaxSpoutPending is the default bound on unprocessed tuples in
// flight before spouts are throttled — the analogue of Storm's
// max.spout.pending. Without it a fast spout floods the topology and
// control loops (repartition requests, partition installs) lag arbitrarily
// far behind the data. SetMaxSpoutPending overrides it per topology.
const defaultMaxSpoutPending = 4096

// SetMaxSpoutPending sets this topology's spout throttle: the concurrent
// executor blocks spouts while at least n tuples are in flight. n <= 0
// restores the default (4096). Call before the run starts; the value is
// read once at StartConcurrent.
func (tp *Topology) SetMaxSpoutPending(n int) {
	if n <= 0 {
		n = defaultMaxSpoutPending
	}
	tp.maxPending = n
}

// MaxSpoutPending returns the topology's spout throttle.
func (tp *Topology) MaxSpoutPending() int {
	if tp.maxPending <= 0 {
		return defaultMaxSpoutPending
	}
	return tp.maxPending
}

type conExecutor struct {
	tp      *Topology
	pending int64 // spout throttle, frozen from the topology at start
	wakeAt  int64 // broadcast threshold: ceil(pending/2), >= 1 so a
	// throttle of 1 still wakes when the dataflow fully drains
	boxes    []*mailbox
	inflight int64
	quiet    chan struct{} // closed... signalled via checkQuiet
	quietMu  sync.Mutex
	spoutsWG sync.WaitGroup
	spoutsDn int32

	throttleMu sync.Mutex
	throttle   *sync.Cond
	// throttled counts spouts registered on the condition variable
	// (incremented under throttleMu before they re-check and park), so the
	// per-tuple done() path can skip the lock and broadcast entirely while
	// nobody is throttled — the steady state of a non-saturated run.
	throttled int64
}

func (ex *conExecutor) send(dst TaskID, t Tuple) {
	atomic.AddInt64(&ex.inflight, 1)
	ex.boxes[dst].put(envelope{to: dst, t: t})
}

func (ex *conExecutor) done(n int64) {
	left := atomic.AddInt64(&ex.inflight, -n)
	if left == 0 && atomic.LoadInt32(&ex.spoutsDn) == 1 {
		ex.signalQuiet()
	}
	if left < ex.wakeAt && atomic.LoadInt64(&ex.throttled) > 0 {
		// The broadcast must hold throttleMu: a spout that has registered
		// but not yet parked in Wait would otherwise miss it and — if this
		// was the last in-flight tuple — sleep forever. A spout not yet
		// registered is safe to skip: it re-checks the counter under the
		// lock after registering, and this decrement happened before that.
		ex.throttleMu.Lock()
		ex.throttle.Broadcast()
		ex.throttleMu.Unlock()
	}
}

// waitBelowPending blocks spouts while the in-flight tuple count is at the
// cap. Workers always drain independently, so this cannot deadlock.
func (ex *conExecutor) waitBelowPending() {
	if atomic.LoadInt64(&ex.inflight) < ex.pending {
		return
	}
	atomic.AddInt64(&ex.tp.stats.throttleSat, 1)
	if h := ex.tp.satHook; h != nil {
		h()
	}
	ex.throttleMu.Lock()
	atomic.AddInt64(&ex.throttled, 1)
	for atomic.LoadInt64(&ex.inflight) >= ex.pending {
		ex.throttle.Wait()
	}
	atomic.AddInt64(&ex.throttled, -1)
	ex.throttleMu.Unlock()
}

func (ex *conExecutor) signalQuiet() {
	ex.quietMu.Lock()
	select {
	case <-ex.quiet:
	default:
		close(ex.quiet)
	}
	ex.quietMu.Unlock()
}

// Run is a handle on a topology started with StartConcurrent: the dataflow
// keeps running in the background while the caller is free to read the
// topology's thread-safe state (Stats, and any bolt state the bolts
// themselves guard). Wait blocks until the run has fully drained.
type Run struct {
	tp    *Topology
	done  chan struct{}
	stats *Stats
}

// Done returns a channel closed when the run has fully drained (spouts
// exhausted, dataflow quiescent, Cleanup complete).
func (r *Run) Done() <-chan struct{} { return r.done }

// Running reports whether the dataflow is still in flight.
func (r *Run) Running() bool {
	select {
	case <-r.done:
		return false
	default:
		return true
	}
}

// Wait blocks until the run completes and returns the topology's stats.
func (r *Run) Wait() *Stats {
	<-r.done
	return r.stats
}

// RunConcurrent executes the topology with one goroutine per task. Spout
// tasks run their own loops; bolt tasks process their mailboxes. After all
// spouts finish and the dataflow quiesces, the workers stop and Cleanup
// runs single-threaded (its emissions are processed sequentially), matching
// RunSequential's semantics.
func (tp *Topology) RunConcurrent() *Stats {
	return tp.StartConcurrent().Wait()
}

// StartConcurrent launches the concurrent executor in the background and
// returns immediately with a handle. While the run is live, the topology's
// Stats may be read at any time (they are internally locked); bolts that
// expose snapshot methods guarded by their own locks may likewise be
// queried mid-run — this is the read path the live query service uses.
func (tp *Topology) StartConcurrent() *Run {
	ex := &conExecutor{tp: tp, pending: int64(tp.MaxSpoutPending()), quiet: make(chan struct{})}
	ex.wakeAt = (ex.pending + 1) / 2
	ex.throttle = sync.NewCond(&ex.throttleMu)
	ex.boxes = make([]*mailbox, len(tp.tasks))
	for i := range ex.boxes {
		ex.boxes[i] = newMailbox(tp.stats, TaskID(i))
	}

	for _, t := range tp.tasks {
		if t.spout != nil {
			t.spout.Open(&t.ctx)
		} else {
			t.bolt.Prepare(&t.ctx)
		}
	}

	var workersWG sync.WaitGroup
	for _, t := range tp.tasks {
		if t.bolt == nil {
			continue
		}
		workersWG.Add(1)
		go func(t *task) {
			defer workersWG.Done()
			col := &conCollector{ex: ex, task: t}
			for {
				env, ok := ex.boxes[t.ctx.Task].get()
				if !ok {
					return
				}
				tp.stats.addRecv(env.to)
				t.bolt.Execute(env.t, col)
				ex.done(1)
			}
		}(t)
	}

	for _, t := range tp.tasks {
		if t.spout == nil {
			continue
		}
		ex.spoutsWG.Add(1)
		go func(t *task) {
			defer ex.spoutsWG.Done()
			col := &conCollector{ex: ex, task: t}
			for t.spout.NextTuple(col) {
				ex.waitBelowPending()
			}
		}(t)
	}

	r := &Run{tp: tp, done: make(chan struct{}), stats: tp.stats}
	go func() {
		defer close(r.done)
		ex.spoutsWG.Wait()
		atomic.StoreInt32(&ex.spoutsDn, 1)
		if atomic.LoadInt64(&ex.inflight) == 0 {
			ex.signalQuiet()
		}
		<-ex.quiet

		for _, b := range ex.boxes {
			b.close()
		}
		workersWG.Wait()

		// Single-threaded cleanup phase reusing the sequential machinery.
		sq := &seqExecutor{tp: tp}
		for _, n := range tp.nodes {
			for _, id := range n.tasks {
				t := tp.tasks[id]
				if t.bolt == nil {
					continue
				}
				if cl, ok := t.bolt.(Cleaner); ok {
					cl.Cleanup(&seqCollector{ex: sq, task: t})
					sq.drain()
				}
			}
		}
	}()
	return r
}
