package storm

import "testing"

// TestMailboxZeroesAndCompacts pins the mailbox's memory behavior: consumed
// slots must not keep their envelope payloads reachable, and a drained
// mailbox restarts at the front of its slice, dropping oversized backing
// arrays — a long-running service's mailboxes otherwise pin every tagset
// slice and coefficient batch that ever passed through them.
// testMailbox returns a mailbox wired to a standalone Stats so tests can
// also observe the depth/compaction telemetry.
func testMailbox() *mailbox {
	return newMailbox(&Stats{mailboxHW: make([]int64, 1)}, 0)
}

func TestMailboxZeroesAndCompacts(t *testing.T) {
	m := testMailbox()
	payload := func(i int) envelope {
		return envelope{to: TaskID(i), t: Tuple{Stream: "s", Values: []interface{}{i}}}
	}
	for i := 0; i < 3; i++ {
		m.put(payload(i))
	}
	for i := 0; i < 2; i++ {
		e, ok := m.get()
		if !ok || e.t.Values[0].(int) != i {
			t.Fatalf("get %d = %+v, %v", i, e, ok)
		}
	}
	m.mu.Lock()
	if m.head != 2 {
		t.Fatalf("head = %d after 2 gets", m.head)
	}
	for i := 0; i < m.head; i++ {
		if m.items[i].t.Values != nil {
			t.Errorf("consumed slot %d still pins its payload", i)
		}
	}
	m.mu.Unlock()

	if e, ok := m.get(); !ok || e.t.Values[0].(int) != 2 {
		t.Fatalf("final get = %+v, %v", e, ok)
	}
	m.mu.Lock()
	if len(m.items) != 0 || m.head != 0 {
		t.Errorf("drained mailbox not reset: len=%d head=%d", len(m.items), m.head)
	}
	m.mu.Unlock()

	// An oversized backlog drops its backing array once drained.
	for i := 0; i < 5000; i++ {
		m.put(payload(i))
	}
	for i := 0; i < 5000; i++ {
		if e, ok := m.get(); !ok || e.t.Values[0].(int) != i {
			t.Fatalf("backlog get %d broke: %+v, %v", i, e, ok)
		}
	}
	m.mu.Lock()
	if cap(m.items) != 0 {
		t.Errorf("oversized backing array kept after drain: cap=%d", cap(m.items))
	}
	m.mu.Unlock()

	m.close()
	if _, ok := m.get(); ok {
		t.Error("closed empty mailbox still yields")
	}
}

// TestMailboxCompactsUnderSteadyBacklog: a mailbox that never momentarily
// drains must still reclaim its consumed prefix — the live window slides to
// the front once the dead prefix dominates, so memory tracks the queued
// tuples, not every tuple ever delivered.
func TestMailboxCompactsUnderSteadyBacklog(t *testing.T) {
	m := testMailbox()
	payload := func(i int) envelope {
		return envelope{t: Tuple{Values: []interface{}{i}}}
	}
	const total = 6000
	next := 0
	for i := 0; i < total; i++ {
		m.put(payload(i))
	}
	// Consume with the queue always non-empty: leave a live tail.
	for next < total-100 {
		e, ok := m.get()
		if !ok || e.t.Values[0].(int) != next {
			t.Fatalf("get %d = %+v, %v (order broken across compactions)", next, e, ok)
		}
		next++
		m.mu.Lock()
		if m.head >= 1024 && m.head*2 >= len(m.items) {
			t.Fatalf("dead prefix not reclaimed: head=%d len=%d", m.head, len(m.items))
		}
		m.mu.Unlock()
	}
	m.mu.Lock()
	if len(m.items) >= total {
		t.Errorf("backing slice never shrank: len=%d after consuming %d", len(m.items), next)
	}
	m.mu.Unlock()
	// Interleave puts to prove ordering survives compaction boundaries.
	for i := 0; i < 50; i++ {
		m.put(payload(total + i))
	}
	for next < total+50 {
		e, ok := m.get()
		if !ok || e.t.Values[0].(int) != next {
			t.Fatalf("get %d = %+v, %v", next, e, ok)
		}
		next++
	}
	m.mu.Lock()
	if len(m.items) != 0 || m.head != 0 {
		t.Errorf("fully drained mailbox not reset: len=%d head=%d", len(m.items), m.head)
	}
	m.mu.Unlock()
	if m.stats.MailboxCompactions() == 0 {
		t.Error("steady-backlog compactions were not counted")
	}
	if hw := m.stats.mailboxHW[0]; hw < total {
		t.Errorf("mailbox high-water %d, want >= %d", hw, total)
	}
}
