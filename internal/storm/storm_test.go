package storm

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// listSpout emits the given values one per NextTuple call.
type listSpout struct {
	values []int
	pos    int
}

func (s *listSpout) Open(*TaskContext) {}
func (s *listSpout) NextTuple(out Collector) bool {
	if s.pos >= len(s.values) {
		return false
	}
	out.Emit(Tuple{Values: []interface{}{s.values[s.pos]}})
	s.pos++
	return true
}

// sink collects every received value; safe for concurrent executors.
type sink struct {
	mu   sync.Mutex
	got  []int
	ctx  *TaskContext
	byMe int
}

func (b *sink) Prepare(ctx *TaskContext) { b.ctx = ctx }
func (b *sink) Execute(t Tuple, _ Collector) {
	b.mu.Lock()
	b.got = append(b.got, t.Values[0].(int))
	b.byMe++
	b.mu.Unlock()
}

// doubler re-emits each int twice.
type doubler struct{}

func (d *doubler) Prepare(*TaskContext) {}
func (d *doubler) Execute(t Tuple, out Collector) {
	out.Emit(t)
	out.Emit(t)
}

func ints(n int) []int {
	v := make([]int, n)
	for i := range v {
		v[i] = i
	}
	return v
}

func buildLinear(t *testing.T, nSink int, vals []int) (*Topology, []*sink) {
	t.Helper()
	sinks := make([]*sink, 0, nSink)
	b := NewBuilder()
	b.Spout("src", func() Spout { return &listSpout{values: vals} }, 1)
	b.Bolt("sink", func() Bolt {
		s := &sink{}
		sinks = append(sinks, s)
		return s
	}, nSink).Shuffle("src")
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tp, sinks
}

func TestShuffleRoundRobin(t *testing.T) {
	tp, sinks := buildLinear(t, 3, ints(9))
	st := tp.RunSequential()
	total := 0
	for _, s := range sinks {
		if s.byMe != 3 {
			t.Errorf("task got %d tuples, want 3", s.byMe)
		}
		total += s.byMe
	}
	if total != 9 {
		t.Errorf("total = %d", total)
	}
	if st.Emitted("src") != 9 || st.Received("sink") != 9 {
		t.Errorf("stats: emitted=%d received=%d", st.Emitted("src"), st.Received("sink"))
	}
}

func TestAllGroupingBroadcasts(t *testing.T) {
	var sinks []*sink
	b := NewBuilder()
	b.Spout("src", func() Spout { return &listSpout{values: ints(5)} }, 1)
	b.Bolt("sink", func() Bolt {
		s := &sink{}
		sinks = append(sinks, s)
		return s
	}, 4).All("src")
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tp.RunSequential()
	for i, s := range sinks {
		if s.byMe != 5 {
			t.Errorf("task %d got %d tuples, want 5", i, s.byMe)
		}
	}
}

func TestFieldsGroupingConsistent(t *testing.T) {
	var sinks []*sink
	b := NewBuilder()
	vals := []int{1, 2, 3, 1, 2, 3, 1, 1}
	b.Spout("src", func() Spout { return &listSpout{values: vals} }, 1)
	b.Bolt("sink", func() Bolt {
		s := &sink{}
		sinks = append(sinks, s)
		return s
	}, 3).Fields("src", func(t Tuple) uint64 { return uint64(t.Values[0].(int)) })
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tp.RunSequential()
	// Each distinct value must land on exactly one task.
	owner := map[int]int{}
	for i, s := range sinks {
		for _, v := range s.got {
			if prev, ok := owner[v]; ok && prev != i {
				t.Errorf("value %d split between tasks %d and %d", v, prev, i)
			}
			owner[v] = i
		}
	}
	if len(owner) != 3 {
		t.Errorf("saw %d distinct values", len(owner))
	}
}

// directBolt forwards each tuple to a specific sink task by value parity.
type directBolt struct{ ctx *TaskContext }

func (d *directBolt) Prepare(ctx *TaskContext) { d.ctx = ctx }
func (d *directBolt) Execute(t Tuple, out Collector) {
	tasks := d.ctx.TasksOf("sink")
	out.EmitDirect(tasks[t.Values[0].(int)%len(tasks)], t)
}

func TestDirectGrouping(t *testing.T) {
	var sinks []*sink
	b := NewBuilder()
	b.Spout("src", func() Spout { return &listSpout{values: ints(10)} }, 1)
	b.Bolt("router", func() Bolt { return &directBolt{} }, 1).Shuffle("src")
	b.Bolt("sink", func() Bolt {
		s := &sink{}
		sinks = append(sinks, s)
		return s
	}, 2).Direct("router")
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tp.RunSequential()
	for i, s := range sinks {
		if s.byMe != 5 {
			t.Errorf("sink %d got %d, want 5", i, s.byMe)
		}
		for _, v := range s.got {
			if v%2 != i {
				t.Errorf("sink %d received %d", i, v)
			}
		}
	}
}

func TestEmitDirectWithoutEdgePanics(t *testing.T) {
	var sinks []*sink
	b := NewBuilder()
	b.Spout("src", func() Spout { return &listSpout{values: ints(1)} }, 1)
	b.Bolt("router", func() Bolt { return &directBolt{} }, 1).Shuffle("src")
	b.Bolt("sink", func() Bolt {
		s := &sink{}
		sinks = append(sinks, s)
		return s
	}, 2).Shuffle("router") // not direct!
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("EmitDirect without direct edge did not panic")
		}
	}()
	tp.RunSequential()
}

func TestChainedBoltsAndStats(t *testing.T) {
	var sinks []*sink
	b := NewBuilder()
	b.Spout("src", func() Spout { return &listSpout{values: ints(10)} }, 1)
	b.Bolt("double", func() Bolt { return &doubler{} }, 2).Shuffle("src")
	b.Bolt("sink", func() Bolt {
		s := &sink{}
		sinks = append(sinks, s)
		return s
	}, 1).Shuffle("double")
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := tp.RunSequential()
	if sinks[0].byMe != 20 {
		t.Errorf("sink got %d, want 20", sinks[0].byMe)
	}
	if st.Emitted("double") != 20 || st.Received("double") != 10 {
		t.Errorf("double: emitted=%d received=%d", st.Emitted("double"), st.Received("double"))
	}
	per := st.TaskReceived(tp, "double")
	if len(per) != 2 || per[0]+per[1] != 10 {
		t.Errorf("TaskReceived = %v", per)
	}
	if st.TaskReceived(tp, "nope") != nil {
		t.Error("unknown component should return nil")
	}
}

func TestBuilderValidation(t *testing.T) {
	// No spout.
	b := NewBuilder()
	b.Bolt("only", func() Bolt { return &sink{} }, 1)
	if _, err := b.Build(); err == nil {
		t.Error("no-spout topology accepted")
	}
	// Empty.
	if _, err := NewBuilder().Build(); err == nil {
		t.Error("empty topology accepted")
	}
	// Unknown subscription.
	b = NewBuilder()
	b.Spout("src", func() Spout { return &listSpout{} }, 1)
	b.Bolt("s", func() Bolt { return &sink{} }, 1).Shuffle("ghost")
	if _, err := b.Build(); err == nil {
		t.Error("unknown source accepted")
	}
	// Duplicate names.
	b = NewBuilder()
	b.Spout("x", func() Spout { return &listSpout{} }, 1)
	b.Bolt("x", func() Bolt { return &sink{} }, 1)
	if _, err := b.Build(); err == nil {
		t.Error("duplicate name accepted")
	}
	// Nil fields key.
	b = NewBuilder()
	b.Spout("src", func() Spout { return &listSpout{} }, 1)
	b.Bolt("s", func() Bolt { return &sink{} }, 1).Fields("src", nil)
	if _, err := b.Build(); err == nil {
		t.Error("nil key accepted")
	}
	// Bad parallelism.
	b = NewBuilder()
	b.Spout("src", func() Spout { return &listSpout{} }, 0)
	if _, err := b.Build(); err == nil {
		t.Error("parallelism 0 accepted")
	}
}

// cleanupBolt counts tuples and emits a summary during Cleanup.
type cleanupBolt struct {
	n int
}

func (c *cleanupBolt) Prepare(*TaskContext)     {}
func (c *cleanupBolt) Execute(Tuple, Collector) { c.n++ }
func (c *cleanupBolt) Cleanup(out Collector)    { out.Emit(Tuple{Values: []interface{}{c.n}}) }

func TestCleanupEmissionsAreDelivered(t *testing.T) {
	var sinks []*sink
	b := NewBuilder()
	b.Spout("src", func() Spout { return &listSpout{values: ints(7)} }, 1)
	b.Bolt("counter", func() Bolt { return &cleanupBolt{} }, 1).Shuffle("src")
	b.Bolt("sink", func() Bolt {
		s := &sink{}
		sinks = append(sinks, s)
		return s
	}, 1).Shuffle("counter")
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tp.RunSequential()
	if len(sinks[0].got) != 1 || sinks[0].got[0] != 7 {
		t.Errorf("cleanup summary = %v, want [7]", sinks[0].got)
	}
}

func TestRunConcurrentDeliversAll(t *testing.T) {
	var sinks []*sink
	var mu sync.Mutex
	b := NewBuilder()
	b.Spout("src", func() Spout { return &listSpout{values: ints(500)} }, 1)
	b.Bolt("double", func() Bolt { return &doubler{} }, 4).Shuffle("src")
	b.Bolt("sink", func() Bolt {
		s := &sink{}
		mu.Lock()
		sinks = append(sinks, s)
		mu.Unlock()
		return s
	}, 3).Shuffle("double")
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := tp.RunConcurrent()
	total := 0
	for _, s := range sinks {
		total += s.byMe
	}
	if total != 1000 {
		t.Errorf("concurrent delivered %d, want 1000", total)
	}
	if st.Received("sink") != 1000 {
		t.Errorf("stats received = %d", st.Received("sink"))
	}
}

// echoBolt forwards tuples back to its own component once (a topology
// cycle), decrementing a TTL value.
type echoBolt struct{}

func (e *echoBolt) Prepare(*TaskContext) {}
func (e *echoBolt) Execute(t Tuple, out Collector) {
	ttl := t.Values[0].(int)
	if ttl > 0 {
		out.Emit(Tuple{Values: []interface{}{ttl - 1}})
	}
}

func TestCyclicTopologyTerminates(t *testing.T) {
	b := NewBuilder()
	b.Spout("src", func() Spout { return &listSpout{values: []int{5, 3}} }, 1)
	b.Bolt("echo", func() Bolt { return &echoBolt{} }, 2).Shuffle("src").Shuffle("echo")
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := tp.RunSequential()
	// 5→4→3→2→1→0 and 3→2→1→0: received = 2 initial + 5 + 3 echoes = 10.
	if st.Received("echo") != 10 {
		t.Errorf("echo received %d, want 10", st.Received("echo"))
	}

	// Same cycle must terminate (not deadlock) concurrently.
	b2 := NewBuilder()
	b2.Spout("src", func() Spout { return &listSpout{values: []int{50, 30}} }, 1)
	b2.Bolt("echo", func() Bolt { return &echoBolt{} }, 2).Shuffle("src").Shuffle("echo")
	tp2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	st2 := tp2.RunConcurrent()
	if st2.Received("echo") != 82 {
		t.Errorf("concurrent echo received %d, want 82", st2.Received("echo"))
	}
}

func TestTasksOf(t *testing.T) {
	tp, _ := buildLinear(t, 3, ints(1))
	ctx := &TaskContext{topo: tp}
	if got := ctx.TasksOf("sink"); len(got) != 3 {
		t.Errorf("TasksOf(sink) = %v", got)
	}
	if got := ctx.TasksOf("nope"); got != nil {
		t.Errorf("TasksOf(nope) = %v", got)
	}
}

func TestLocalGroupingBehavesAsShuffle(t *testing.T) {
	var sinks []*sink
	b := NewBuilder()
	b.Spout("src", func() Spout { return &listSpout{values: ints(8)} }, 1)
	b.Bolt("sink", func() Bolt {
		s := &sink{}
		sinks = append(sinks, s)
		return s
	}, 2).Local("src")
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tp.RunSequential()
	if sinks[0].byMe+sinks[1].byMe != 8 {
		t.Errorf("local grouping lost tuples: %d+%d", sinks[0].byMe, sinks[1].byMe)
	}
	if sinks[0].byMe == 0 || sinks[1].byMe == 0 {
		t.Error("local grouping did not distribute")
	}
}

func TestParallelSpouts(t *testing.T) {
	var sinks []*sink
	b := NewBuilder()
	b.Spout("src", func() Spout { return &listSpout{values: ints(5)} }, 3)
	b.Bolt("sink", func() Bolt {
		s := &sink{}
		sinks = append(sinks, s)
		return s
	}, 1).Shuffle("src")
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := tp.RunSequential()
	if sinks[0].byMe != 15 {
		t.Errorf("3 spout instances delivered %d tuples, want 15", sinks[0].byMe)
	}
	if st.Emitted("src") != 15 {
		t.Errorf("emitted = %d", st.Emitted("src"))
	}

	// And concurrently.
	var csinks []*sink
	var mu sync.Mutex
	b2 := NewBuilder()
	b2.Spout("src", func() Spout { return &listSpout{values: ints(200)} }, 3)
	b2.Bolt("sink", func() Bolt {
		s := &sink{}
		mu.Lock()
		csinks = append(csinks, s)
		mu.Unlock()
		return s
	}, 2).Shuffle("src")
	tp2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	tp2.RunConcurrent()
	total := 0
	for _, s := range csinks {
		total += s.byMe
	}
	if total != 600 {
		t.Errorf("concurrent parallel spouts delivered %d, want 600", total)
	}
}

func TestGroupingStrings(t *testing.T) {
	kinds := []groupingKind{groupShuffle, groupAll, groupFields, groupDirect, groupLocal}
	want := []string{"shuffle", "all", "fields", "direct", "local"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("%d.String() = %q, want %q", i, k.String(), want[i])
		}
	}
	if groupingKind(99).String() != "unknown" {
		t.Error("unknown kind string")
	}
}

// slowSink processes tuples with a tiny spin so the spout can outrun it.
type slowSink struct {
	processed int64 // atomic
	produced  *int64
	maxLag    int64 // atomic: max produced-processed observed
}

func (b *slowSink) Prepare(*TaskContext) {}
func (b *slowSink) Execute(t Tuple, _ Collector) {
	lag := atomic.LoadInt64(b.produced) - atomic.LoadInt64(&b.processed)
	for {
		cur := atomic.LoadInt64(&b.maxLag)
		if lag <= cur || atomic.CompareAndSwapInt64(&b.maxLag, cur, lag) {
			break
		}
	}
	atomic.AddInt64(&b.processed, 1)
}

// countingSpout emits n tuples, incrementing a shared counter per emission.
type countingSpout struct {
	n        int
	produced *int64
}

func (s *countingSpout) Open(*TaskContext) {}
func (s *countingSpout) NextTuple(out Collector) bool {
	if s.n == 0 {
		return false
	}
	s.n--
	atomic.AddInt64(s.produced, 1)
	out.Emit(Tuple{Values: []interface{}{0}})
	return true
}

// TestMaxSpoutPendingConfigurable pins the per-topology spout throttle: a
// low setting keeps the spout within the configured bound of the sink
// (small slack for the emit-then-wait window), every tuple still arrives,
// and the default is restored by a non-positive setting.
func TestMaxSpoutPendingConfigurable(t *testing.T) {
	const docs = 5000
	var produced int64
	sink := &slowSink{produced: &produced}
	b := NewBuilder()
	b.Spout("src", func() Spout { return &countingSpout{n: docs, produced: &produced} }, 1)
	b.Bolt("sink", func() Bolt { return sink }, 1).Shuffle("src")
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := tp.MaxSpoutPending(); got != 4096 {
		t.Fatalf("default throttle = %d, want 4096", got)
	}
	tp.SetMaxSpoutPending(8)
	if got := tp.MaxSpoutPending(); got != 8 {
		t.Fatalf("throttle = %d after SetMaxSpoutPending(8)", got)
	}
	tp.RunConcurrent()

	if got := atomic.LoadInt64(&sink.processed); got != docs {
		t.Errorf("sink processed %d of %d tuples", got, docs)
	}
	// The spout checks the throttle after emitting, so it can overshoot by
	// the one in-flight emission; anything near the default would mean the
	// configured bound was ignored.
	if lag := atomic.LoadInt64(&sink.maxLag); lag > 16 {
		t.Errorf("max spout lead = %d with throttle 8", lag)
	}

	tp2, _ := buildLinear(t, 1, ints(16))
	tp2.SetMaxSpoutPending(8)
	tp2.SetMaxSpoutPending(0) // non-positive restores the default
	if got := tp2.MaxSpoutPending(); got != 4096 {
		t.Errorf("throttle after reset = %d, want 4096", got)
	}
}

// timeAfter returns a 60s deadline channel (helper for deadlock guards).
func timeAfter(t *testing.T) <-chan time.Time {
	t.Helper()
	return time.After(60 * time.Second)
}

// TestMaxSpoutPendingOne pins the tightest throttle: with one tuple in
// flight at a time the wake threshold must still fire when the dataflow
// drains, or the spout sleeps forever (the lost-wakeup regression a
// floor-halved threshold would reintroduce).
func TestMaxSpoutPendingOne(t *testing.T) {
	tp, sinks := buildLinear(t, 1, ints(200))
	tp.SetMaxSpoutPending(1)
	done := make(chan struct{})
	go func() {
		tp.RunConcurrent()
		close(done)
	}()
	select {
	case <-done:
	case <-timeAfter(t):
		t.Fatal("run deadlocked with MaxSpoutPending(1)")
	}
	if sinks[0].byMe != 200 {
		t.Errorf("sink got %d tuples, want 200", sinks[0].byMe)
	}
}
