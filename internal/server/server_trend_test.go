package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/twitgen"
)

// TestTrendLiveService is the end-to-end test of the trend surface: a
// topic-drifting twitgen stream feeds the concurrent pipeline with the
// streaming detector enabled, and the test subscribes to /events while the
// executor is still consuming the stream. It proves that an emergent pair
// — a scored deviation pushed by the detector — appears on the SSE feed
// mid-run, that /trends serves the ranked view, and that the pair's
// predictor answers on the point-lookup endpoint; then the source is
// stopped and the drained run's feed ends with the `end` event.
func TestTrendLiveService(t *testing.T) {
	dict := tagset.NewDictionary()
	gcfg := twitgen.Default()
	gcfg.Seed = 11
	gcfg.DriftInterval = stream.Minutes(2) // brisk churn: deviations fire early
	gen, err := twitgen.New(gcfg, dict)
	if err != nil {
		t.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.WindowSpan = stream.Minutes(1)
	cfg.ReportEvery = stream.Minutes(1)
	cfg.StatsEvery = 500
	cfg.Trend = true
	cfg.TrendMinSupport = 2
	cfg.TrendThreshold = 0.01 // publish essentially every scored deviation

	// Unbounded, exactly as in the daemon: the generator produces until the
	// test stops the source, so the mid-run assertions are immune to
	// scheduling.
	src, stop := core.StopSource(func() (stream.Document, bool) {
		return gen.Next(), true
	})
	pipe, err := core.NewPipeline(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	h := pipe.Start()
	srv := New(pipe, h, dict, Config{TopK: 50, Refresh: 5 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Subscribe to the event feed before any scoring can happen.
	resp, err := ts.Client().Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "text/event-stream" {
		t.Fatalf("/events content type = %q", got)
	}

	type sseEvent struct {
		Tags      []string `json:"tags"`
		Period    int64    `json:"period"`
		Predicted float64  `json:"predicted"`
		Observed  float64  `json:"observed"`
		Score     float64  `json:"score"`
		CN        int64    `json:"cn"`
	}
	// readEvent scans SSE frames until the next full trend/end event.
	sc := bufio.NewScanner(resp.Body)
	readEvent := func() (name string, ev sseEvent, ok bool) {
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "event: ") {
				name = line[len("event: "):]
				continue
			}
			if strings.HasPrefix(line, "data: ") && name != "" {
				if name == "trend" {
					if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
						t.Errorf("bad SSE payload %q: %v", line, err)
						return "", sseEvent{}, false
					}
				}
				return name, ev, true
			}
		}
		return "", sseEvent{}, false
	}

	// Phase 1: an emergent pair must arrive on the feed while the source is
	// still producing. The scanner blocks on the live HTTP stream, so a
	// watchdog stops the source (ending the feed) if nothing arrives.
	watchdog := time.AfterFunc(120*time.Second, stop)
	var first sseEvent
	for {
		name, ev, ok := readEvent()
		if !ok || name == "end" {
			t.Fatal("event feed ended before a trend event arrived")
		}
		if name != "trend" || len(ev.Tags) < 2 {
			continue
		}
		first = ev
		break
	}
	if !watchdog.Stop() {
		t.Fatal("trend event arrived only after the watchdog stopped the source")
	}
	if !h.Running() {
		t.Fatal("pipeline drained with the source still producing")
	}
	if first.Score < 0.01 || first.CN < 2 || first.Period < 2 {
		t.Errorf("implausible first event %+v", first)
	}

	// The pair's predictor answers on the point lookup, mid-run.
	var lookup TrendLookupResponse
	getJSON(t, ts.Client(), ts.URL+"/trends/"+strings.Join(first.Tags, "/"), &lookup)
	if lookup.Seen < 2 || lookup.LastPeriod < first.Period {
		t.Errorf("predictor lookup = %+v for event %+v", lookup, first)
	}

	// /trends converges to a non-empty ranked view while still running.
	deadline := time.After(120 * time.Second)
	var trends TrendsResponse
	for len(trends.Top) == 0 {
		select {
		case <-deadline:
			t.Fatal("/trends stayed empty")
		default:
		}
		getJSON(t, ts.Client(), ts.URL+"/trends?k=10", &trends)
		if len(trends.Top) == 0 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	for i := 1; i < len(trends.Top); i++ {
		if trends.Top[i].Score > trends.Top[i-1].Score {
			t.Errorf("/trends not ranked: %+v", trends.Top)
		}
	}
	if trends.LatestPeriod < 2 || trends.Scored < 1 {
		t.Errorf("trends response = %+v", trends)
	}

	// Unknown tags and too-few tags are client errors.
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/trends/no-such-tag/also-missing", http.StatusNotFound},
		{"/trends/" + first.Tags[0] + "/" + first.Tags[0], http.StatusBadRequest},
	} {
		r, err := ts.Client().Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != tc.want {
			t.Errorf("GET %s: status %d, want %d", tc.path, r.StatusCode, tc.want)
		}
	}

	// Phase 2: graceful drain ends the feed with the `end` event.
	stop()
	sawEnd := false
	for {
		name, _, ok := readEvent()
		if !ok {
			break
		}
		if name == "end" {
			sawEnd = true
			break
		}
	}
	if !sawEnd {
		t.Error("feed did not end with the end event after drain")
	}
	h.Wait()
	srv.Close()

	// The final /stats exposes the detector's structure.
	var stats StatsResponse
	getJSON(t, ts.Client(), ts.URL+"/stats", &stats)
	if stats.Trends == nil {
		t.Fatal("/stats has no trends section with the detector enabled")
	}
	if stats.Trends.Scored < 1 || stats.Trends.Tracked < 1 {
		t.Errorf("final trend stats = %+v", stats.Trends)
	}
}

// TestTrendEndpointsDisabled pins the 404 contract when the pipeline runs
// without the trend subsystem.
func TestTrendEndpointsDisabled(t *testing.T) {
	dict := tagset.NewDictionary()
	gcfg := twitgen.Default()
	gen, err := twitgen.New(gcfg, dict)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.WindowSpan = stream.Minutes(1)
	cfg.ReportEvery = stream.Minutes(1)
	src, stop := core.StopSource(func() (stream.Document, bool) {
		return gen.Next(), true
	})
	pipe, err := core.NewPipeline(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	h := pipe.Start()
	defer func() { stop(); h.Wait() }()
	srv := New(pipe, h, dict, Config{TopK: 10, Refresh: time.Hour})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{"/trends", "/trends/a/b", "/events"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s without trend: status %d, want 404", path, resp.StatusCode)
		}
	}
	// /stats omits the trends section.
	var stats StatsResponse
	getJSON(t, ts.Client(), ts.URL+"/stats", &stats)
	if stats.Trends != nil {
		t.Errorf("stats.Trends = %+v without the detector", stats.Trends)
	}
}
