package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/twitgen"
)

// getJSON fetches url and decodes the JSON body into out, failing the test
// on transport, status or decoding errors.
func getJSON(t *testing.T, client *http.Client, url string, out interface{}) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// TestLiveQueryService is the end-to-end test of the tagcorrd serving
// path: it starts the concurrent pipeline on a small generated stream,
// polls /topk while the stream is still being consumed, and checks that
// the mid-run snapshots are monotone in documents processed, that at
// least one of them is non-empty, and that the final snapshot agrees with
// the batch Result.
func TestLiveQueryService(t *testing.T) {
	dict := tagset.NewDictionary()
	gcfg := twitgen.Default()
	gcfg.Seed = 7
	gen, err := twitgen.New(gcfg, dict)
	if err != nil {
		t.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.WindowSpan = stream.Minutes(1)
	cfg.ReportEvery = stream.Minutes(1)
	cfg.StatsEvery = 500

	// The stream is unbounded, exactly as in the daemon: the generator
	// produces documents until the test stops the source. This makes the
	// mid-run assertions immune to scheduling — the run cannot end before
	// the poll loop has seen what it needs.
	src, stop := core.StopSource(func() (stream.Document, bool) {
		return gen.Next(), true
	})

	pipe, err := core.NewPipeline(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	h := pipe.Start()
	srv := New(pipe, h, dict, Config{TopK: 50, Refresh: 5 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Phase 1: poll /topk until a mid-run snapshot shows both progress and
	// coefficients; the source keeps producing until then.
	var lastDocs int64
	deadline := time.After(120 * time.Second)
	for observed := false; !observed; {
		select {
		case <-deadline:
			t.Fatal("no non-empty mid-run snapshot within 120s")
		default:
		}
		var tk TopKResponse
		getJSON(t, ts.Client(), ts.URL+"/topk?k=10", &tk)
		if !h.Running() {
			t.Fatal("pipeline drained with the source still producing")
		}
		if tk.DocsProcessed < lastDocs {
			t.Fatalf("docs_processed went backwards: %d after %d", tk.DocsProcessed, lastDocs)
		}
		lastDocs = tk.DocsProcessed
		observed = tk.DocsProcessed > 0 && len(tk.Top) > 0
		if !observed {
			time.Sleep(5 * time.Millisecond)
		}
	}
	stop() // graceful drain: end the stream, let in-flight tuples flush

	// Phase 2: keep polling for monotonicity while the stream drains.
	for h.Running() {
		var tk TopKResponse
		getJSON(t, ts.Client(), ts.URL+"/topk?k=10", &tk)
		if tk.DocsProcessed < lastDocs {
			t.Fatalf("docs_processed went backwards: %d after %d", tk.DocsProcessed, lastDocs)
		}
		lastDocs = tk.DocsProcessed
		time.Sleep(5 * time.Millisecond)
	}

	res := h.Wait()
	srv.Close() // final refresh; cache now reflects the drained run

	// The final snapshot must agree with the batch Result.
	var final TopKResponse
	getJSON(t, ts.Client(), ts.URL+"/topk?k=50", &final)
	if final.DocsProcessed < lastDocs {
		t.Fatalf("final docs_processed %d below last mid-run value %d", final.DocsProcessed, lastDocs)
	}
	if final.DocsProcessed != res.DocsProcessed {
		t.Errorf("final snapshot docs = %d, Result docs = %d", final.DocsProcessed, res.DocsProcessed)
	}
	// Result.Coefficients is the Tracker's full deduplicated report, so
	// the Tracker's own TopK over the drained run is the expected answer.
	want := res.Tracker.TopK(50)
	if len(final.Top) != len(want) {
		t.Fatalf("final top-k has %d entries, Result gives %d", len(final.Top), len(want))
	}
	for i, c := range want {
		got := final.Top[i]
		if got.J != c.J || got.CN != c.CN || fmt.Sprint(got.Tags) != fmt.Sprint(dict.Strings(c.Tags)) {
			t.Errorf("final top[%d] = %+v, want J=%g CN=%d %v", i, got, c.J, c.CN, dict.Strings(c.Tags))
		}
	}

	// /healthz reflects the drained run.
	var health HealthResponse
	getJSON(t, ts.Client(), ts.URL+"/healthz", &health)
	if health.Status != "ok" || health.Running {
		t.Errorf("healthz after drain = %+v, want status ok and not running", health)
	}

	// /stats matches the Result's totals.
	var stats StatsResponse
	getJSON(t, ts.Client(), ts.URL+"/stats", &stats)
	if stats.DocsProcessed != res.DocsProcessed {
		t.Errorf("stats docs = %d, want %d", stats.DocsProcessed, res.DocsProcessed)
	}
	if stats.Repartitions != res.Repartitions {
		t.Errorf("stats repartitions = %d, want %d", stats.Repartitions, res.Repartitions)
	}
	if stats.Communication != res.Communication {
		t.Errorf("stats communication = %g, want %g", stats.Communication, res.Communication)
	}

	// /partition shows the installed assignment.
	var parts PartitionResponse
	getJSON(t, ts.Client(), ts.URL+"/partition", &parts)
	if parts.Merges < 1 || len(parts.Partitions) == 0 {
		t.Errorf("partition response shows no installed partitions: %+v", parts)
	}

	// /pairs answers for a pair from the final report.
	for _, c := range want {
		if c.Tags.Len() != 2 {
			continue
		}
		names := dict.Strings(c.Tags)
		var pair PairResponse
		getJSON(t, ts.Client(), ts.URL+"/pairs/"+names[0]+"/"+names[1], &pair)
		if pair.CN < 1 {
			t.Errorf("pair %v: CN = %d, want >= 1", names, pair.CN)
		}
		break
	}

	// Unknown tags 404.
	resp, err := ts.Client().Get(ts.URL + "/pairs/no-such-tag/also-missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown pair: status %d, want 404", resp.StatusCode)
	}
}
