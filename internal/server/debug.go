package server

// The flight-recorder surface: the stall watchdog's probes and the
// /debug/traces, /debug/traces/{id} and /debug/events endpoints. The
// debug endpoints answer 404 without a configured flight recorder; the
// watchdog runs regardless (its verdict reaches /healthz and the
// tagcorr_watchdog_* families either way).

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/flight"
	"repro/internal/telemetry"
)

// watchdogChecks builds the standard stall probes over the pipeline's
// existing counters. Every probe is cheap (atomic loads, the cached
// snapshot) and runs on the watchdog goroutine.
func (s *Server) watchdogChecks() []flight.Check {
	// mailbox_pinned closure state: the previous tick's saturation and
	// document counters. The verdict is "spouts keep parking at the
	// max-spout-pending cap while no document makes progress" — the
	// signature of a wedged consumer, as opposed to ordinary backpressure
	// where docs still advance between ticks.
	var satMu sync.Mutex
	var prevSat, prevDocs int64
	seeded := false

	return []flight.Check{
		{
			Name: "snapshot_stale",
			Probe: func() (bool, string) {
				if !s.handle.Running() {
					return false, ""
				}
				snap := s.Snapshot()
				if snap == nil {
					return false, ""
				}
				age := time.Since(snap.TakenAt)
				if age <= s.cfg.SnapshotStaleAfter {
					return false, ""
				}
				return true, fmt.Sprintf("snapshot %s old (threshold %s)", age.Round(time.Millisecond), s.cfg.SnapshotStaleAfter)
			},
		},
		{
			Name: "mailbox_pinned",
			Probe: func() (bool, string) {
				sat := s.pipe.ThrottleSaturations()
				var docs int64
				if snap := s.Snapshot(); snap != nil {
					docs = snap.DocsProcessed
				}
				satMu.Lock()
				defer satMu.Unlock()
				if !seeded {
					seeded = true
					prevSat, prevDocs = sat, docs
					return false, ""
				}
				stalled := s.handle.Running() && sat > prevSat && docs == prevDocs
				detail := ""
				if stalled {
					detail = fmt.Sprintf("%d spout parks this tick, docs pinned at %d", sat-prevSat, docs)
				}
				prevSat, prevDocs = sat, docs
				return stalled, detail
			},
		},
		{
			Name: "checkpoint_overdue",
			Probe: func() (bool, string) {
				if !s.pipe.Archiving() || !s.handle.Running() {
					return false, ""
				}
				age, ok := s.pipe.LastCheckpointAge()
				if !ok {
					// No checkpoint yet: measure from server start so a
					// pipeline that never checkpoints still trips.
					age = time.Since(s.started)
				}
				if age <= s.cfg.CheckpointOverdueAfter {
					return false, ""
				}
				return true, fmt.Sprintf("last checkpoint %s ago (threshold %s)", age.Round(time.Second), s.cfg.CheckpointOverdueAfter)
			},
		},
		{
			Name: "archive_error",
			Probe: func() (bool, string) {
				if err := s.pipe.ArchiveErr(); err != nil {
					return true, err.Error()
				}
				return false, ""
			},
		},
	}
}

// debugEvent is the /debug/events JSON rendering of one flight event.
type debugEvent struct {
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"`
	AtMS int64  `json:"at_ms"` // monotonic ms since process start
	Wall string `json:"wall"`  // approximate wall-clock time, RFC3339
	Msg  string `json:"msg"`
}

func (s *Server) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	rec := s.cfg.Flight
	if rec == nil {
		httpError(w, http.StatusNotFound, "no flight recorder configured")
		return
	}
	events := rec.Events()
	out := make([]debugEvent, len(events))
	for i, e := range events {
		out[i] = debugEvent{
			Seq:  e.Seq,
			Kind: e.Kind,
			AtMS: e.At / 1e6,
			Wall: telemetry.Wall(e.At).Format(time.RFC3339Nano),
			Msg:  e.Msg,
		}
	}
	writeJSON(w, map[string]interface{}{
		"count":  len(out),
		"events": out,
	})
}

func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	rec := s.cfg.Flight
	if rec == nil {
		httpError(w, http.StatusNotFound, "no flight recorder configured")
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		limit = n
	}
	st := rec.Snapshot()
	writeJSON(w, map[string]interface{}{
		"docs_seen":       st.DocsSeen,
		"traces_started":  st.TracesStarted,
		"retained_sample": st.KeptSample,
		"retained_slow":   st.KeptSlow,
		"discarded":       st.Discarded,
		"active":          st.Active,
		"retained":        st.Retained,
		"traces":          rec.Traces(limit),
	})
}

// debugSpan renders one span with both raw monotonic stamps (exact,
// comparable across spans) and offsets from the trace's ingest stamp.
type debugSpan struct {
	Stage   string `json:"stage"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
	OffsetU int64  `json:"offset_us"` // start - ingest
	DurU    int64  `json:"dur_us"`    // end - start
	Count   int    `json:"count"`
}

func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	rec := s.cfg.Flight
	if rec == nil {
		httpError(w, http.StatusNotFound, "no flight recorder configured")
		return
	}
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil || id == 0 {
		httpError(w, http.StatusBadRequest, "trace id must be a positive integer")
		return
	}
	t, ok := rec.TraceByID(id)
	if !ok {
		httpError(w, http.StatusNotFound, "trace not found (discarded, overwritten or never sampled)")
		return
	}
	spans := make([]debugSpan, len(t.Spans))
	for i, sp := range t.Spans {
		spans[i] = debugSpan{
			Stage:   sp.Stage,
			StartNS: sp.Start,
			EndNS:   sp.End,
			OffsetU: (sp.Start - t.Ingest) / 1e3,
			DurU:    (sp.End - sp.Start) / 1e3,
			Count:   sp.Count,
		}
	}
	writeJSON(w, map[string]interface{}{
		"id":          t.ID,
		"sampled":     t.Sampled,
		"retained":    t.Retained,
		"complete":    t.Complete(),
		"ingest_ns":   t.Ingest,
		"duration_us": t.Duration() / 1e3,
		"spans":       spans,
	})
}
