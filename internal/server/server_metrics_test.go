package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/telemetry"
	"repro/internal/twitgen"
)

// labelSets returns the distinct label sets (ignoring le) carried by a
// family's samples, so each histogram series can be checked separately.
func labelSets(f *telemetry.Family) []map[string]string {
	seen := map[string]map[string]string{}
	for _, s := range f.Samples {
		ls := map[string]string{}
		var keys []string
		for k, v := range s.Labels {
			if k == "le" {
				continue
			}
			ls[k] = v
			keys = append(keys, k+"="+v)
		}
		sort.Strings(keys)
		seen[strings.Join(keys, ",")] = ls
	}
	out := make([]map[string]string, 0, len(seen))
	for _, ls := range seen {
		out = append(out, ls)
	}
	return out
}

// scrape fetches /metrics and parses it back, failing on transport errors,
// a wrong content type, or unparseable exposition.
func scrape(t *testing.T, client *http.Client, base string) map[string]*telemetry.Family {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Fatalf("GET /metrics: content type %q, want %q", ct, telemetry.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := telemetry.ParseText(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("parse /metrics exposition: %v\n%s", err, body)
	}
	return fams
}

// TestMetricsEndpoint is the acceptance test for the scrape surface: it
// runs a live pipeline until coefficients have flowed end to end, then
// asserts that /metrics serves valid exposition with at least 25 metric
// families, that every histogram upholds the bucket invariants, and that
// the three stage-latency histograms saw real traffic.
func TestMetricsEndpoint(t *testing.T) {
	dict := tagset.NewDictionary()
	gcfg := twitgen.Default()
	gcfg.Seed = 21
	gen, err := twitgen.New(gcfg, dict)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.WindowSpan = stream.Minutes(1)
	cfg.ReportEvery = stream.Minutes(1)
	src, stop := core.StopSource(func() (stream.Document, bool) {
		return gen.Next(), true
	})
	pipe, err := core.NewPipeline(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	h := pipe.Start()
	srv := New(pipe, h, dict, Config{TopK: 20, Refresh: 5 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	// Run until the Tracker accepted at least one flush, so every stage
	// histogram has samples.
	deadline := time.After(120 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("no coefficients within 120s")
		default:
		}
		var tk TopKResponse
		getJSON(t, ts.Client(), ts.URL+"/topk?k=5", &tk)
		if len(tk.Top) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	h.Wait()

	fams := scrape(t, ts.Client(), ts.URL)
	if len(fams) < 25 {
		names := make([]string, 0, len(fams))
		for n := range fams {
			names = append(names, n)
		}
		t.Fatalf("/metrics serves %d families, want >= 25: %v", len(fams), names)
	}
	for name, f := range fams {
		if !strings.HasPrefix(name, "tagcorr_") {
			t.Errorf("family %q outside the tagcorr_ namespace", name)
		}
		if f.Help == "" {
			t.Errorf("family %q has no HELP", name)
		}
		if f.Type != "histogram" {
			continue
		}
		for _, ls := range labelSets(f) {
			d, ok := f.Histogram(ls)
			if !ok {
				continue
			}
			for i := 1; i < len(d.Cum); i++ {
				if d.Cum[i] < d.Cum[i-1] {
					t.Errorf("%s%v: cumulative bucket counts decrease at le=%g", name, ls, d.Les[i])
				}
			}
		}
	}

	// The end-to-end stage histograms must have observed real documents.
	for _, stage := range []string{"doc_partition", "doc_coefficient", "doc_tracker_accept"} {
		name := "tagcorr_stage_" + stage + "_seconds"
		f, ok := fams[name]
		if !ok {
			t.Fatalf("stage family %s missing from /metrics", name)
		}
		d, ok := f.Histogram(map[string]string{"stage": stage})
		if !ok || d.Count == 0 {
			t.Errorf("%s: _count = 0, want > 0", name)
		}
	}

	// Core families from every subsystem are present.
	for _, name := range []string{
		"tagcorr_storm_tuples_emitted_total",
		"tagcorr_dissem_docs_total",
		"tagcorr_tracker_coefficients_received_total",
		"tagcorr_archive_checkpoints_total",
		"tagcorr_http_request_seconds",
		"tagcorr_http_requests_total",
		"tagcorr_process_uptime_seconds",
	} {
		if _, ok := fams[name]; !ok {
			t.Errorf("core family %s missing from /metrics", name)
		}
	}

	// The middleware recorded the /topk polls above.
	f := fams["tagcorr_http_requests_total"]
	var topkHits float64
	for _, smp := range f.Samples {
		if smp.Labels["route"] == "/topk" && smp.Labels["class"] == "2xx" {
			topkHits = smp.Value
		}
	}
	if topkHits == 0 {
		t.Error("tagcorr_http_requests_total{route=\"/topk\",class=\"2xx\"} = 0 after polling /topk")
	}
}

// TestMetricsScrapeDuringSaturatedRun scrapes /metrics concurrently with a
// saturated ingest stream (run under -race in CI): scrapes must parse and
// never wedge the pipeline.
func TestMetricsScrapeDuringSaturatedRun(t *testing.T) {
	dict := tagset.NewDictionary()
	gcfg := twitgen.Default()
	gcfg.Seed = 22
	gen, err := twitgen.New(gcfg, dict)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.WindowSpan = stream.Minutes(1)
	cfg.ReportEvery = stream.Minutes(1)
	src, stop := core.StopSource(func() (stream.Document, bool) {
		return gen.Next(), true
	})
	pipe, err := core.NewPipeline(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	h := pipe.Start()
	srv := New(pipe, h, dict, Config{TopK: 20, Refresh: 5 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	var wg sync.WaitGroup
	errc := make(chan error, 4)
	until := time.Now().Add(2 * time.Second)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(until) {
				resp, err := ts.Client().Get(ts.URL + "/metrics")
				if err != nil {
					errc <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if _, err := telemetry.ParseText(strings.NewReader(string(body))); err != nil {
					errc <- fmt.Errorf("mid-run scrape unparseable: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	before := pipe.Snapshot(1).DocsProcessed
	time.Sleep(100 * time.Millisecond)
	if after := pipe.Snapshot(1).DocsProcessed; after <= before {
		t.Errorf("ingest stalled during scrapes: %d then %d docs", before, after)
	}
	stop()
	h.Wait()
}

// TestStatsCache pins the /stats encoding cache: the static remainder is
// encoded once per snapshot and re-served byte-identical until a refresh
// swaps the snapshot, while the dynamic head (snapshot_age_ms) keeps
// moving between requests.
func TestStatsCache(t *testing.T) {
	srv, ts := drainedServer(t)

	snap := srv.Snapshot()
	b1 := srv.statsBodyFor(snap)
	b2 := srv.statsBodyFor(snap)
	if &b1[0] != &b2[0] {
		t.Error("statsBodyFor re-encoded an unchanged snapshot")
	}

	// The spliced payload is valid JSON with the dynamic head present.
	var st1 StatsResponse
	getJSON(t, ts.Client(), ts.URL+"/stats", &st1)
	if st1.DocsProcessed == 0 {
		t.Fatal("cached /stats payload lost docs_processed")
	}
	time.Sleep(20 * time.Millisecond)
	var st2 StatsResponse
	getJSON(t, ts.Client(), ts.URL+"/stats", &st2)
	if st2.SnapshotAgeMS <= st1.SnapshotAgeMS {
		t.Errorf("snapshot_age_ms static across requests: %d then %d — head no longer dynamic",
			st1.SnapshotAgeMS, st2.SnapshotAgeMS)
	}
	if st2.DocsProcessed != st1.DocsProcessed {
		t.Errorf("static remainder changed without a refresh: %d then %d docs",
			st1.DocsProcessed, st2.DocsProcessed)
	}

	// A refresh invalidates the cache: new snapshot, new encoding.
	srv.RefreshNow()
	b3 := srv.statsBodyFor(srv.Snapshot())
	if srv.Snapshot() == snap {
		t.Fatal("RefreshNow did not swap the snapshot")
	}
	if &b3[0] == &b1[0] {
		t.Error("stats cache not invalidated by refresh")
	}
}
