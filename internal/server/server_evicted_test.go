package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/tagset"
)

// decodeBody decodes an already-received response body.
func decodeBody(t *testing.T, resp *http.Response, out interface{}) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode: %v", err)
	}
}

// TestPairLookupAcrossPrunedPeriods drives the daemon configuration end to
// end: a retention-bounded pipeline (KeepPeriods=1) with the evicted-pair
// LRU enabled serves /pairs for a pair whose only reporting period has
// been pruned. The stream is phased by the test: phase A reports the pair
// (aa, bb) in period 1, phase B opens period 2 (flushing the period-1
// report), phase C opens period 3, which prunes period 1 and moves
// (aa, bb) into the LRU. Every component runs with one instance, so tuples
// flow FIFO end to end and the phase boundaries translate deterministically
// into reporting periods.
func TestPairLookupAcrossPrunedPeriods(t *testing.T) {
	dict := tagset.NewDictionary()
	aa, bb := dict.Intern("aa"), dict.Intern("bb")
	cc, dd := dict.Intern("cc"), dict.Intern("dd")
	pairAB := tagset.New(aa, bb)
	pairCD := tagset.New(cc, dd)

	cfg := core.DefaultConfig()
	cfg.K = 1
	cfg.P = 1
	cfg.WindowSpan = 1000
	cfg.ReportEvery = 10_000
	cfg.KeepPeriods = 1
	cfg.EvictedPairs = 8
	cfg.TrackerShards = 4
	cfg.NoSeries = true

	// The source is a phase machine advanced by the test: 0 = bootstrap mix
	// then (aa,bb) clamped inside period 1; 1 = (cc,dd) inside period 2;
	// 2 = (cc,dd) inside period 3.
	var phase atomic.Int32
	var emitted int
	var clock stream.Millis
	const bootstrapDocs = 30
	next := func() (stream.Document, bool) {
		emitted++
		switch phase.Load() {
		case 0:
			if emitted <= bootstrapDocs {
				clock = stream.Millis(50 * (emitted - 1))
				tags := pairAB
				if emitted%2 == 0 {
					tags = pairCD
				}
				return stream.Document{Time: clock, Tags: tags}, true
			}
			if clock += 50; clock > 9_500 {
				clock = 9_500
			}
			return stream.Document{Time: clock, Tags: pairAB}, true
		case 1:
			if clock < 10_500 {
				clock = 10_500
			} else if clock += 50; clock > 19_500 {
				clock = 19_500
			}
			return stream.Document{Time: clock, Tags: pairCD}, true
		default:
			if clock < 20_500 {
				clock = 20_500
			} else if clock += 50; clock > 29_500 {
				clock = 29_500
			}
			return stream.Document{Time: clock, Tags: pairCD}, true
		}
	}
	src, stop := core.StopSource(next)

	pipe, err := core.NewPipeline(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	h := pipe.Start()
	srv := New(pipe, h, dict, Config{TopK: 20, Refresh: 5 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	deadline := time.After(120 * time.Second)
	wait := func(what string, done func() bool) {
		t.Helper()
		for !done() {
			select {
			case <-deadline:
				stop()
				t.Fatalf("timed out waiting for %s", what)
			default:
				time.Sleep(2 * time.Millisecond)
			}
		}
	}

	// Phase A until the installed partitions have routed more documents
	// than the bootstrap prefix could account for — so at least one
	// (aa, bb) document was counted in period 1.
	wait("period-1 documents to be notified", func() bool {
		var st StatsResponse
		getJSON(t, ts.Client(), ts.URL+"/stats", &st)
		return st.NotifiedDocs > bootstrapDocs
	})

	// Phase B opens period 2: the period-1 report reaches the Tracker and
	// the pair is served from a retained period.
	phase.Store(1)
	wait("pair (aa,bb) to be reported", func() bool {
		resp, err := ts.Client().Get(ts.URL + "/pairs/aa/bb")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return false
		}
		var pair PairResponse
		decodeBody(t, resp, &pair)
		if pair.Evicted {
			t.Fatal("pair (aa,bb) reported evicted while its period is retained")
		}
		return true
	})

	// Phase C opens period 3: retention (KeepPeriods=1) prunes period 1 and
	// (aa, bb) must now be answered from the evicted LRU.
	phase.Store(2)
	var evictedPair PairResponse
	wait("pair (aa,bb) to be served from the evicted LRU", func() bool {
		resp, err := ts.Client().Get(ts.URL + "/pairs/aa/bb")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return false
		}
		decodeBody(t, resp, &evictedPair)
		return evictedPair.Evicted
	})
	// Every period-1 document carrying the pair carried both tags, so the
	// pruned coefficient is exactly 1.
	if evictedPair.J != 1 || evictedPair.CN < 1 {
		t.Errorf("evicted pair = %+v, want J=1 and CN >= 1", evictedPair)
	}

	stop()
	h.Wait()
	srv.Close()

	// The drained /stats must expose the tracker structure: pruning
	// happened, the LRU holds the pruned pair, and the layout matches the
	// configuration.
	var st StatsResponse
	getJSON(t, ts.Client(), ts.URL+"/stats", &st)
	if st.Tracker.PrunedPeriods < 1 {
		t.Errorf("stats tracker.pruned_periods = %d, want >= 1", st.Tracker.PrunedPeriods)
	}
	if st.Tracker.EvictedLen < 1 || st.Tracker.EvictedCap != cfg.EvictedPairs {
		t.Errorf("stats tracker evicted = %d/%d, want >= 1 of cap %d",
			st.Tracker.EvictedLen, st.Tracker.EvictedCap, cfg.EvictedPairs)
	}
	if st.Tracker.EvictedHits < 1 {
		t.Errorf("stats tracker.evicted_pair_hits = %d, want >= 1", st.Tracker.EvictedHits)
	}
	if st.Tracker.Shards != 4 {
		t.Errorf("stats tracker.shards = %d, want 4", st.Tracker.Shards)
	}
	if st.Tracker.TopKBound < 20 {
		t.Errorf("stats tracker.topk_bound = %d, want >= the server's TopK 20", st.Tracker.TopKBound)
	}

	// (cc,dd) was reported in the newest period, so it answers from a
	// retained period even though older copies were pruned to the LRU.
	var cd PairResponse
	getJSON(t, ts.Client(), ts.URL+"/pairs/cc/dd", &cd)
	if cd.Evicted {
		t.Errorf("pair (cc,dd) = %+v, want a retained-period answer", cd)
	}
}
