package server

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/twitgen"
)

// flightServer starts a live pipeline with a flight recorder wired into
// both the pipeline and the server, on an unbounded generated stream.
func flightServer(t *testing.T, fcfg flight.Config, tune func(*Config)) (*flight.Recorder, *Server, *httptest.Server, func() *core.Result) {
	t.Helper()
	dict := tagset.NewDictionary()
	gcfg := twitgen.Default()
	gcfg.Seed = 23
	gen, err := twitgen.New(gcfg, dict)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.WindowSpan = stream.Minutes(1)
	cfg.ReportEvery = stream.Minutes(1)
	frec := flight.NewRecorder(fcfg)
	cfg.Flight = frec
	src, stop := core.StopSource(func() (stream.Document, bool) {
		return gen.Next(), true
	})
	pipe, err := core.NewPipeline(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	h := pipe.Start()
	scfg := Config{
		TopK:    20,
		Refresh: 5 * time.Millisecond,
		Flight:  frec,
		// Saturated test runs legitimately trip mailbox_pinned; keep those
		// verdict transitions out of the test log.
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	if tune != nil {
		tune(&scfg)
	}
	srv := New(pipe, h, dict, scfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	drain := func() *core.Result {
		stop()
		return h.Wait()
	}
	return frec, srv, ts, drain
}

// debugTracesResponse mirrors the /debug/traces payload.
type debugTracesResponse struct {
	DocsSeen       int64                 `json:"docs_seen"`
	TracesStarted  int64                 `json:"traces_started"`
	RetainedSample int64                 `json:"retained_sample"`
	RetainedSlow   int64                 `json:"retained_slow"`
	Discarded      int64                 `json:"discarded"`
	Traces         []flight.TraceSummary `json:"traces"`
}

// debugTraceResponse mirrors the /debug/traces/{id} payload.
type debugTraceResponse struct {
	ID         uint64 `json:"id"`
	Sampled    bool   `json:"sampled"`
	Retained   string `json:"retained"`
	Complete   bool   `json:"complete"`
	DurationUS int64  `json:"duration_us"`
	Spans      []struct {
		Stage   string `json:"stage"`
		StartNS int64  `json:"start_ns"`
		EndNS   int64  `json:"end_ns"`
		OffsetU int64  `json:"offset_us"`
		DurU    int64  `json:"dur_us"`
		Count   int    `json:"count"`
	} `json:"spans"`
}

// debugEventsResponse mirrors the /debug/events payload.
type debugEventsResponse struct {
	Count  int `json:"count"`
	Events []struct {
		Seq  uint64 `json:"seq"`
		Kind string `json:"kind"`
		AtMS int64  `json:"at_ms"`
		Wall string `json:"wall"`
		Msg  string `json:"msg"`
	} `json:"events"`
}

// TestDebugEndpointsDuringRun scrapes the flight-recorder endpoints
// concurrently with a saturated ingest stream (the CI race job runs this
// under -race), then checks the drained run exposes a complete sampled
// trace with in-order spans through /debug/traces/{id}.
func TestDebugEndpointsDuringRun(t *testing.T) {
	frec, _, ts, drain := flightServer(t, flight.Config{Sample: 8, SlowMS: 1 << 40, DoneCap: 8192}, nil)

	// Scrape all three debug endpoints plus health while documents flow.
	var wg sync.WaitGroup
	errc := make(chan error, 6)
	until := time.Now().Add(2 * time.Second)
	for _, path := range []string{"/debug/traces", "/debug/traces?limit=4", "/debug/events", "/debug/traces/1", "/healthz", "/readyz"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for time.Now().Before(until) {
				resp, err := ts.Client().Get(ts.URL + path)
				if err != nil {
					errc <- err
					return
				}
				resp.Body.Close()
				// /debug/traces/1 may 404 until doc 1 finalizes; everything
				// else must answer 200 throughout the run.
				if resp.StatusCode != http.StatusOK && path != "/debug/traces/1" {
					errc <- &http.ProtocolError{ErrorString: path + " status " + resp.Status}
					return
				}
			}
		}(path)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	res := drain()
	frec.FlushAll()

	var list debugTracesResponse
	getJSON(t, ts.Client(), ts.URL+"/debug/traces?limit=2000", &list)
	if list.DocsSeen != res.DocsProcessed {
		t.Errorf("/debug/traces docs_seen = %d, pipeline processed %d", list.DocsSeen, res.DocsProcessed)
	}
	if list.RetainedSample == 0 {
		t.Fatal("no head-sampled trace retained over a multi-second run")
	}
	var full debugTraceResponse
	found := false
	for _, s := range list.Traces {
		if !s.Complete {
			continue
		}
		getJSON(t, ts.Client(), ts.URL+"/debug/traces/"+strconv.FormatUint(s.ID, 10), &full)
		found = true
		break
	}
	if !found {
		t.Fatal("no complete trace among the retained summaries")
	}
	if !full.Complete || len(full.Spans) < 4 {
		t.Fatalf("trace %d: complete=%v spans=%d", full.ID, full.Complete, len(full.Spans))
	}
	wantOrder := []string{flight.StageSpout, flight.StagePartition, flight.StageDisseminate, flight.StageCalculate}
	for i, want := range wantOrder {
		if full.Spans[i].Stage != want {
			t.Errorf("span[%d] = %s, want %s", i, full.Spans[i].Stage, want)
		}
	}
	// Under the concurrent executor the partition and disseminate branches
	// process the same doc tuple in parallel, so only the causal edges are
	// asserted here: everything starts at/after the spout stamp, and the
	// calculate span cannot start before the disseminate span that fed it.
	// (The strict stage-by-stage ordering is pinned by the sequential-run
	// test in internal/core.)
	starts := map[string]int64{}
	for _, sp := range full.Spans {
		starts[sp.Stage] = sp.StartNS
		if sp.DurU < 0 || sp.OffsetU < 0 {
			t.Errorf("span %s: negative offset/duration %d/%d", sp.Stage, sp.OffsetU, sp.DurU)
		}
		if sp.StartNS < full.Spans[0].StartNS {
			t.Errorf("span %s starts before the spout stamp", sp.Stage)
		}
	}
	if starts[flight.StageCalculate] < starts[flight.StageDisseminate] {
		t.Error("calculate span starts before the disseminate span that fed it")
	}

	// The events endpoint renders ring contents; feed it one event so the
	// check does not depend on the short run triggering a repartition.
	frec.RecordEvent(flight.EventCompaction, "synthetic pass for endpoint test")
	var evs debugEventsResponse
	getJSON(t, ts.Client(), ts.URL+"/debug/events", &evs)
	if evs.Count == 0 || len(evs.Events) != evs.Count {
		t.Fatalf("/debug/events count=%d events=%d", evs.Count, len(evs.Events))
	}
	last := evs.Events[len(evs.Events)-1]
	if last.Kind != flight.EventCompaction || last.Wall == "" {
		t.Errorf("last event = %+v, want the synthetic compaction event with a wall stamp", last)
	}

	// Liveness and readiness carry uptime and the watchdog verdict.
	var health HealthResponse
	getJSON(t, ts.Client(), ts.URL+"/healthz", &health)
	if health.UptimeMS <= 0 {
		t.Errorf("healthz uptime_ms = %d, want > 0", health.UptimeMS)
	}
	if health.Watchdog == "" {
		t.Error("healthz watchdog verdict empty")
	}
	var ready ReadyResponse
	getJSON(t, ts.Client(), ts.URL+"/readyz", &ready)
	if !ready.Ready || ready.UptimeMS <= 0 || ready.Watchdog == "" {
		t.Errorf("readyz after a processed run = %+v", ready)
	}
}

// TestDebugEndpointsWithoutRecorder: a server built without a flight
// recorder answers 404 on the debug surface and still serves health.
func TestDebugEndpointsWithoutRecorder(t *testing.T) {
	srv, ts := drainedServer(t)
	_ = srv
	for _, path := range []string{"/debug/traces", "/debug/traces/1", "/debug/events"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without recorder: status %d, want 404", path, resp.StatusCode)
		}
	}
	var health HealthResponse
	getJSON(t, ts.Client(), ts.URL+"/healthz", &health)
	if health.Watchdog == "" {
		t.Error("watchdog verdict missing without a recorder (the watchdog must run regardless)")
	}
}

// TestRequestLogging: with LogRequests on, every handled request emits a
// debug record carrying route, status and latency.
func TestRequestLogging(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	logged := func() string { mu.Lock(); defer mu.Unlock(); return buf.String() }
	w := lockedWriter{mu: &mu, w: &buf}
	_, _, ts, drain := flightServer(t, flight.Config{Sample: 0}, func(c *Config) {
		c.LogRequests = true
		c.Logger = slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: slog.LevelDebug}))
	})
	defer drain()

	var health HealthResponse
	getJSON(t, ts.Client(), ts.URL+"/healthz", &health)
	resp, err := ts.Client().Get(ts.URL + "/debug/traces/999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	out := logged()
	if !strings.Contains(out, "msg=\"http request\"") || !strings.Contains(out, "route=/healthz") {
		t.Errorf("request log missing the /healthz record:\n%s", out)
	}
	if !strings.Contains(out, "route=/debug/traces/{id}") || !strings.Contains(out, "status=404") {
		t.Errorf("request log missing the 404 trace lookup:\n%s", out)
	}
}

// lockedWriter serializes concurrent slog writes into a strings.Builder.
type lockedWriter struct {
	mu *sync.Mutex
	w  *strings.Builder
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestWatchdogStaleSnapshotVerdict fault-injects a stall at the server
// level: an absurdly tight staleness threshold makes the snapshot_stale
// probe fire on the next tick, and the verdict must reach /healthz, the
// tagcorr_watchdog_* gauges and the flight event ring.
func TestWatchdogStaleSnapshotVerdict(t *testing.T) {
	frec, srv, ts, drain := flightServer(t, flight.Config{Sample: 0}, func(c *Config) {
		c.SnapshotStaleAfter = time.Nanosecond
		c.WatchdogInterval = time.Hour // tick manually: no timing dependence
	})

	// Wait until a snapshot exists (the probe needs one to age).
	deadline := time.After(30 * time.Second)
	for srv.Snapshot() == nil {
		select {
		case <-deadline:
			t.Fatal("no snapshot within 30s")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	srv.Watchdog().Tick()

	if !srv.Watchdog().Stalled("snapshot_stale") {
		t.Fatal("snapshot_stale not stalled with a 1ns threshold")
	}
	var health HealthResponse
	getJSON(t, ts.Client(), ts.URL+"/healthz", &health)
	if !strings.Contains(health.Watchdog, "snapshot_stale") {
		t.Errorf("healthz watchdog = %q, want a snapshot_stale verdict", health.Watchdog)
	}

	fams := scrape(t, ts.Client(), ts.URL)
	gauge, ok := fams["tagcorr_watchdog_stalled_checks"]
	if !ok {
		t.Fatal("tagcorr_watchdog_stalled_checks missing from /metrics")
	}
	var stale float64
	for _, smp := range gauge.Samples {
		if smp.Labels["check"] == "snapshot_stale" {
			stale = smp.Value
		}
	}
	if stale != 1 {
		t.Errorf("stalled gauge for snapshot_stale = %g, want 1", stale)
	}
	if f, ok := fams["tagcorr_watchdog_stalls_total"]; !ok {
		t.Error("tagcorr_watchdog_stalls_total missing from /metrics")
	} else {
		var n float64
		for _, smp := range f.Samples {
			if smp.Labels["check"] == "snapshot_stale" {
				n = smp.Value
			}
		}
		if n < 1 {
			t.Errorf("stall transitions = %g, want >= 1", n)
		}
	}
	if frec.EventCount(flight.EventWatchdog) == 0 {
		t.Error("stall transition recorded no flight event")
	}

	// Recovery: a sane threshold and a fresh snapshot clear the verdict.
	srv.cfg.SnapshotStaleAfter = time.Hour
	srv.RefreshNow()
	srv.Watchdog().Tick()
	if srv.Watchdog().Stalled("snapshot_stale") {
		t.Error("verdict not cleared after recovery")
	}
	getJSON(t, ts.Client(), ts.URL+"/healthz", &health)
	if health.Watchdog != "ok" {
		t.Errorf("healthz watchdog after recovery = %q, want ok", health.Watchdog)
	}
	drain()
}
