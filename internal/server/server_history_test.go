package server

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/twitgen"
)

// TestHistoryEndpoints is the end-to-end test of the archive serving path:
// a pipeline with a tight retention window runs an archived stream to
// completion, and /history answers for periods that were pruned from the
// Tracker's memory long before the run ended — including a pair lookup far
// past both the pruning floor and the in-memory evicted LRU.
func TestHistoryEndpoints(t *testing.T) {
	dict := tagset.NewDictionary()
	gcfg := twitgen.Default()
	gcfg.Seed = 23
	gcfg.TPS = 1000
	gcfg.TaggedFraction = 0.5
	gcfg.Topics = 40
	gcfg.TagsPerTopic = 8
	gen, err := twitgen.New(gcfg, dict)
	if err != nil {
		t.Fatal(err)
	}
	docs := gen.Generate(36000) // 36 virtual seconds ≈ 7 reporting periods

	cfg := core.DefaultConfig()
	cfg.K = 4
	cfg.P = 3
	cfg.WindowSpan = stream.Seconds(5)
	cfg.ReportEvery = stream.Seconds(5)
	cfg.StatsEvery = 500
	cfg.KeepPeriods = 2
	cfg.EvictedPairs = 0 // force /history to be the only answer for old pairs
	cfg.NoSeries = true
	cfg.Trend = true
	cfg.TrendMinSupport = 2
	cfg.ArchiveDir = t.TempDir()
	cfg.ArchiveDict = dict

	pipe, err := core.NewPipeline(cfg, core.SliceSource(docs))
	if err != nil {
		t.Fatal(err)
	}
	h := pipe.Start()
	srv := New(pipe, h, dict, Config{
		TopK:    50,
		Refresh: 5 * time.Millisecond,
		History: archive.OpenReader(cfg.ArchiveDir),
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	h.Wait()
	if err := pipe.ArchiveErr(); err != nil {
		t.Fatalf("archive error: %v", err)
	}

	var periods HistoryPeriodsResponse
	getJSON(t, ts.Client(), ts.URL+"/history/periods", &periods)
	if periods.Count < 4 {
		t.Fatalf("archived periods = %v; need >= 4 to cross the pruning floor", periods.Periods)
	}

	// The oldest archived period must be below the in-memory pruning
	// floor: the Tracker no longer holds it, only the archive does.
	oldest := periods.Periods[0]
	retained := pipe.Tracker().Periods()
	for _, p := range retained {
		if p == oldest {
			t.Fatalf("oldest archived period %d still retained in memory %v; assertion vacuous", oldest, retained)
		}
	}

	var topk HistoryTopKResponse
	getJSON(t, ts.Client(), ts.URL+"/history/topk?period="+itoa(oldest)+"&k=10", &topk)
	if topk.Period != oldest || len(topk.Top) == 0 {
		t.Fatalf("history topk = %+v", topk)
	}
	if topk.Torn {
		t.Error("cleanly drained segment reported torn")
	}
	for i := 1; i < len(topk.Top); i++ {
		if topk.Top[i].J > topk.Top[i-1].J {
			t.Fatalf("history topk not ranked: %+v", topk.Top)
		}
	}
	if len(topk.Top) > 10 {
		t.Fatalf("k not applied: %d results", len(topk.Top))
	}

	// The top pair of the pruned period must answer on the history pair
	// endpoint, pinned to that period and via the newest-first scan.
	pair := topk.Top[0]
	var byPeriod HistoryPairResponse
	getJSON(t, ts.Client(), ts.URL+"/history/pairs/"+pair.Tags[0]+"/"+pair.Tags[1]+"?period="+itoa(oldest), &byPeriod)
	if byPeriod.Period != oldest || byPeriod.J != pair.J || byPeriod.CN != pair.CN {
		t.Fatalf("pinned pair lookup = %+v, want %+v in period %d", byPeriod, pair, oldest)
	}
	var newest HistoryPairResponse
	getJSON(t, ts.Client(), ts.URL+"/history/pairs/"+pair.Tags[0]+"/"+pair.Tags[1], &newest)
	if newest.Period < oldest {
		t.Fatalf("newest-first lookup returned period %d < %d", newest.Period, oldest)
	}

	// Unknown period and unknown tag answer 404.
	for _, url := range []string{
		ts.URL + "/history/topk?period=99999",
		ts.URL + "/history/pairs/no-such-tag/other",
	} {
		resp, err := ts.Client().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", url, resp.StatusCode)
		}
	}

	// /stats exposes the snapshot age of the cached consistent pass.
	var stats StatsResponse
	getJSON(t, ts.Client(), ts.URL+"/stats", &stats)
	if stats.SnapshotAgeMS < 0 {
		t.Errorf("snapshot_age_ms = %d", stats.SnapshotAgeMS)
	}
}

// TestHistoryDisabled verifies the history endpoints 404 when the service
// runs without an archive reader.
func TestHistoryDisabled(t *testing.T) {
	dict := tagset.NewDictionary()
	gcfg := twitgen.Default()
	gcfg.Seed = 5
	gen, err := twitgen.New(gcfg, dict)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.WindowSpan = stream.Minutes(1)
	cfg.ReportEvery = stream.Minutes(1)
	pipe, err := core.NewPipeline(cfg, core.GeneratorSource(gen.Next, 2000))
	if err != nil {
		t.Fatal(err)
	}
	h := pipe.Start()
	srv := New(pipe, h, dict, Config{TopK: 10, Refresh: 5 * time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	h.Wait()

	for _, path := range []string{"/history/periods", "/history/topk?period=1", "/history/pairs/a/b"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s without archive: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }
