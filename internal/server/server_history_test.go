package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/jaccard"
	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/twitgen"
)

// TestHistoryEndpoints is the end-to-end test of the archive serving path:
// a pipeline with a tight retention window runs an archived stream to
// completion, and /history answers for periods that were pruned from the
// Tracker's memory long before the run ended — including a pair lookup far
// past both the pruning floor and the in-memory evicted LRU.
func TestHistoryEndpoints(t *testing.T) {
	dict := tagset.NewDictionary()
	gcfg := twitgen.Default()
	gcfg.Seed = 23
	gcfg.TPS = 1000
	gcfg.TaggedFraction = 0.5
	gcfg.Topics = 40
	gcfg.TagsPerTopic = 8
	gen, err := twitgen.New(gcfg, dict)
	if err != nil {
		t.Fatal(err)
	}
	docs := gen.Generate(36000) // 36 virtual seconds ≈ 7 reporting periods

	cfg := core.DefaultConfig()
	cfg.K = 4
	cfg.P = 3
	cfg.WindowSpan = stream.Seconds(5)
	cfg.ReportEvery = stream.Seconds(5)
	cfg.StatsEvery = 500
	cfg.KeepPeriods = 2
	cfg.EvictedPairs = 0 // force /history to be the only answer for old pairs
	cfg.NoSeries = true
	cfg.Trend = true
	cfg.TrendMinSupport = 2
	cfg.ArchiveDir = t.TempDir()
	cfg.ArchiveDict = dict

	pipe, err := core.NewPipeline(cfg, core.SliceSource(docs))
	if err != nil {
		t.Fatal(err)
	}
	h := pipe.Start()
	srv := New(pipe, h, dict, Config{
		TopK:    50,
		Refresh: 5 * time.Millisecond,
		History: archive.OpenReader(cfg.ArchiveDir),
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	h.Wait()
	if err := pipe.ArchiveErr(); err != nil {
		t.Fatalf("archive error: %v", err)
	}

	var periods HistoryPeriodsResponse
	getJSON(t, ts.Client(), ts.URL+"/history/periods", &periods)
	if periods.Count < 4 {
		t.Fatalf("archived periods = %v; need >= 4 to cross the pruning floor", periods.Periods)
	}

	// The oldest archived period must be below the in-memory pruning
	// floor: the Tracker no longer holds it, only the archive does.
	oldest := periods.Periods[0]
	retained := pipe.Tracker().Periods()
	for _, p := range retained {
		if p == oldest {
			t.Fatalf("oldest archived period %d still retained in memory %v; assertion vacuous", oldest, retained)
		}
	}

	var topk HistoryTopKResponse
	getJSON(t, ts.Client(), ts.URL+"/history/topk?period="+itoa(oldest)+"&k=10", &topk)
	if topk.Period != oldest || len(topk.Top) == 0 {
		t.Fatalf("history topk = %+v", topk)
	}
	if topk.Torn {
		t.Error("cleanly drained segment reported torn")
	}
	for i := 1; i < len(topk.Top); i++ {
		if topk.Top[i].J > topk.Top[i-1].J {
			t.Fatalf("history topk not ranked: %+v", topk.Top)
		}
	}
	if len(topk.Top) > 10 {
		t.Fatalf("k not applied: %d results", len(topk.Top))
	}

	// The top pair of the pruned period must answer on the history pair
	// endpoint, pinned to that period and via the newest-first scan.
	pair := topk.Top[0]
	var byPeriod HistoryPairResponse
	getJSON(t, ts.Client(), ts.URL+"/history/pairs/"+pair.Tags[0]+"/"+pair.Tags[1]+"?period="+itoa(oldest), &byPeriod)
	if byPeriod.Period != oldest || byPeriod.J != pair.J || byPeriod.CN != pair.CN {
		t.Fatalf("pinned pair lookup = %+v, want %+v in period %d", byPeriod, pair, oldest)
	}
	var newest HistoryPairResponse
	getJSON(t, ts.Client(), ts.URL+"/history/pairs/"+pair.Tags[0]+"/"+pair.Tags[1], &newest)
	if newest.Period < oldest {
		t.Fatalf("newest-first lookup returned period %d < %d", newest.Period, oldest)
	}

	// Archived trend deviations answer for the pruned period too, ranked
	// by descending score. At least one archived period must carry events
	// (the run scores trends throughout); per-period counts may be zero.
	totalEvents := 0
	for _, p := range periods.Periods {
		var trends HistoryTrendsResponse
		getJSON(t, ts.Client(), ts.URL+"/history/trends?period="+itoa(p)+"&k=10", &trends)
		if trends.Period != p {
			t.Fatalf("history trends period = %d, want %d", trends.Period, p)
		}
		totalEvents += trends.TrendEvents
		for i := 1; i < len(trends.Top); i++ {
			if trends.Top[i].Score > trends.Top[i-1].Score {
				t.Fatalf("history trends not ranked: %+v", trends.Top)
			}
		}
		if len(trends.Top) > 10 {
			t.Fatalf("k not applied to trends: %d results", len(trends.Top))
		}
	}
	if totalEvents == 0 {
		t.Error("no archived trend events in any period")
	}

	// Unknown period and unknown tag answer 404.
	for _, url := range []string{
		ts.URL + "/history/topk?period=99999",
		ts.URL + "/history/trends?period=99999",
		ts.URL + "/history/pairs/no-such-tag/other",
	} {
		resp, err := ts.Client().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", url, resp.StatusCode)
		}
	}

	// /stats exposes the snapshot age of the cached consistent pass.
	var stats StatsResponse
	getJSON(t, ts.Client(), ts.URL+"/stats", &stats)
	if stats.SnapshotAgeMS < 0 {
		t.Errorf("snapshot_age_ms = %d", stats.SnapshotAgeMS)
	}
}

// TestHistoryDisabled verifies the history endpoints 404 when the service
// runs without an archive reader.
func TestHistoryDisabled(t *testing.T) {
	dict := tagset.NewDictionary()
	gcfg := twitgen.Default()
	gcfg.Seed = 5
	gen, err := twitgen.New(gcfg, dict)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.WindowSpan = stream.Minutes(1)
	cfg.ReportEvery = stream.Minutes(1)
	pipe, err := core.NewPipeline(cfg, core.GeneratorSource(gen.Next, 2000))
	if err != nil {
		t.Fatal(err)
	}
	h := pipe.Start()
	srv := New(pipe, h, dict, Config{TopK: 10, Refresh: 5 * time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	h.Wait()

	for _, path := range []string{"/history/periods", "/history/topk?period=1", "/history/trends?period=1", "/history/pairs/a/b"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s without archive: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestHistoryAfterCompaction is the serving-layer differential of the
// archive compactor: every /history endpoint must return byte-identical
// JSON before and after the raw segments are folded into the compacted
// tier, through the same server and Reader that were already open across
// the boundary. It also pins down the truncated-scan semantics on both
// tiers: a bounded miss reports truncated=true, a genuine never-archived
// miss reports truncated=false.
func TestHistoryAfterCompaction(t *testing.T) {
	dict := tagset.NewDictionary()
	gcfg := twitgen.Default()
	gcfg.Seed = 29
	gcfg.TPS = 1000
	gcfg.TaggedFraction = 0.5
	gcfg.Topics = 40
	gcfg.TagsPerTopic = 8
	gen, err := twitgen.New(gcfg, dict)
	if err != nil {
		t.Fatal(err)
	}
	docs := gen.Generate(36000)

	cfg := core.DefaultConfig()
	cfg.K = 4
	cfg.P = 3
	cfg.WindowSpan = stream.Seconds(5)
	cfg.ReportEvery = stream.Seconds(5)
	cfg.StatsEvery = 500
	cfg.KeepPeriods = 2
	cfg.EvictedPairs = 0
	cfg.NoSeries = true
	cfg.Trend = true
	cfg.TrendMinSupport = 2
	cfg.ArchiveDir = t.TempDir()
	cfg.ArchiveDict = dict

	pipe, err := core.NewPipeline(cfg, core.SliceSource(docs))
	if err != nil {
		t.Fatal(err)
	}
	h := pipe.Start()
	srv := New(pipe, h, dict, Config{
		TopK:    50,
		Refresh: 5 * time.Millisecond,
		History: archive.OpenReader(cfg.ArchiveDir),
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	h.Wait()
	if err := pipe.ArchiveErr(); err != nil {
		t.Fatalf("archive error: %v", err)
	}

	var periods HistoryPeriodsResponse
	getJSON(t, ts.Client(), ts.URL+"/history/periods", &periods)
	if periods.Count < 5 {
		t.Fatalf("archived periods = %v; need >= 5 for a compacted/raw mix", periods.Periods)
	}

	// The pipeline's own background compactor may already have folded the
	// early periods during the run, so pick the oldest period that still has
	// a raw segment: appending there is crash-safe (never shadowed by the
	// manifest) and, with the retention window keeping the newest periods
	// raw, it is guaranteed to sit below the newest period — out of reach of
	// a one-period bounded scan.
	rawSegs, err := filepath.Glob(filepath.Join(cfg.ArchiveDir, "period-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rawSegs) < 2 {
		t.Fatalf("raw segments on disk = %v; need >= 2 for a fold plus an older-than-newest target", rawSegs)
	}
	var oldest int64
	for i, seg := range rawSegs {
		var p int64
		if _, err := fmt.Sscanf(filepath.Base(seg), "period-%d.seg", &p); err != nil {
			t.Fatalf("unparseable segment name %q: %v", seg, err)
		}
		if i == 0 || p < oldest {
			oldest = p
		}
	}

	// A synthetic pair archived only in that oldest raw period: the bounded
	// newest-first scan can never reach it, the unbounded one must.
	onlyA, onlyB := dict.Intern("compaction-only-a"), dict.Intern("compaction-only-b")
	aw, err := archive.OpenWriter(cfg.ArchiveDir)
	if err != nil {
		t.Fatal(err)
	}
	aw.AppendCoefficient(oldest, jaccard.Coefficient{Tags: tagset.New(onlyA, onlyB), J: 0.42, CN: 3})
	aw.Close()
	dict.Intern("never-reported-a")
	dict.Intern("never-reported-b")

	urls := []string{
		"/history/periods",
		"/history/pairs/compaction-only-a/compaction-only-b",
		"/history/pairs/compaction-only-a/compaction-only-b?period=" + itoa(oldest),
	}
	for _, p := range periods.Periods {
		urls = append(urls,
			"/history/topk?period="+itoa(p)+"&k=1000",
			"/history/trends?period="+itoa(p)+"&k=1000")
	}
	capture := func() map[string]string {
		out := make(map[string]string, len(urls))
		for _, u := range urls {
			status, body := getBody(t, ts.Client(), ts.URL+u)
			if status != http.StatusOK {
				t.Fatalf("GET %s: status %d body %s", u, status, body)
			}
			out[u] = body
		}
		return out
	}
	before := capture()

	// Compact whatever raw segments survived the in-run compactor. FanIn 2
	// guarantees at least one full run folds (>= 2 raw segments exist), and
	// the fold must cover the synthetic pair's period — the oldest raw one.
	comp := archive.NewCompactor(cfg.ArchiveDir, archive.CompactorConfig{FanIn: 2})
	if err := comp.RunOnce(); err != nil {
		t.Fatal(err)
	}
	if st := comp.Stats(); st.CompactedPeriods < 2 {
		t.Fatalf("compactor folded %d periods, want >= 2 (stats %+v)", st.CompactedPeriods, st)
	}
	if _, err := os.Stat(filepath.Join(cfg.ArchiveDir, fmt.Sprintf("period-%d.seg", oldest))); !os.IsNotExist(err) {
		t.Fatalf("synthetic pair's period %d still raw after compaction (stat err=%v)", oldest, err)
	}

	after := capture()
	for _, u := range urls {
		if before[u] != after[u] {
			t.Errorf("%s diverged across compaction:\nbefore %s\nafter  %s", u, before[u], after[u])
		}
	}

	// Bounded scan (one period) on a second server over the same archive:
	// the oldest-period-only pair misses with truncated=true; pinned to its
	// period it still answers through the compacted tier; a pair that was
	// never archived misses with truncated=false on the unbounded server.
	srv2 := New(pipe, h, dict, Config{
		TopK:            50,
		Refresh:         5 * time.Millisecond,
		History:         archive.OpenReader(cfg.ArchiveDir),
		HistoryPairScan: 1,
	})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	var miss struct {
		Error     string `json:"error"`
		Truncated bool   `json:"truncated"`
	}
	status, body := getBody(t, ts2.Client(), ts2.URL+"/history/pairs/compaction-only-a/compaction-only-b")
	if status != http.StatusNotFound {
		t.Fatalf("bounded scan: status %d body %s", status, body)
	}
	if err := json.Unmarshal([]byte(body), &miss); err != nil || !miss.Truncated {
		t.Fatalf("bounded miss = %s (err=%v), want truncated=true", body, err)
	}
	if status, body = getBody(t, ts2.Client(), ts2.URL+"/history/pairs/compaction-only-a/compaction-only-b?period="+itoa(oldest)); status != http.StatusOK {
		t.Fatalf("pinned lookup through compacted tier: status %d body %s", status, body)
	}
	status, body = getBody(t, ts.Client(), ts.URL+"/history/pairs/never-reported-a/never-reported-b")
	if status != http.StatusNotFound {
		t.Fatalf("never-archived pair: status %d body %s", status, body)
	}
	if err := json.Unmarshal([]byte(body), &miss); err != nil || miss.Truncated {
		t.Fatalf("never-archived miss = %s (err=%v), want truncated=false", body, err)
	}
}

// getBody fetches url and returns the status code and raw body.
func getBody(t *testing.T, client *http.Client, url string) (int, string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }
