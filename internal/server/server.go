// Package server exposes a running pipeline as a live HTTP query service —
// the serving layer of the tagcorrd daemon. While the concurrent executor
// is still consuming the stream, clients can ask for the current top-k
// Jaccard coefficients, the latest coefficient of a specific tag pair, the
// installed partition assignment, and the full communication/load/dataflow
// statistics.
//
// Queries never block the hot path: a background goroutine refreshes a
// cached core.Snapshot at a configurable interval, and every read endpoint
// except the pair lookup serves from that cache. The pair lookup goes to
// the Tracker directly (its read methods take the Tracker's own lock, held
// only briefly), so it returns point data fresher than the cache without
// scanning the full coefficient table.
//
// Endpoints (all GET, all JSON unless noted):
//
//	/topk?k=N             top-N coefficients so far (N capped at Config.TopK)
//	/pairs/{tagA}/{tagB}  latest coefficient reported for the pair
//	/trends?k=N           top trend deviations of the newest scored period
//	/trends/{tags...}     live predictor state of one tagset (2+ tags)
//	/events               SSE stream of trend events as they fire mid-run
//	/partition            installed partitions: epoch, per-partition tags+load
//	/stats                full snapshot: counters, quality stats, dataflow
//	/healthz              liveness plus run state
//	/readyz               readiness: 200 once the stream is flowing (503 before)
//	/history/periods      reporting periods archived on disk
//	/history/topk?period=P[&k=N]  top-N coefficients of one archived period
//	/history/pairs/{tagA}/{tagB}[?period=P]  archived coefficient of a pair
//	/history/trends?period=P[&k=N]  ranked trend deviations of one archived period
//
// The history endpoints serve from the archive directory's segment files
// (Config.History, an archive.Reader) with a small LRU of decoded
// segments, so they answer for periods arbitrarily far past the Tracker's
// retention window — including periods pruned from memory, runs of a
// previous process, and periods folded into the compacted tier. They
// answer 404 when the pipeline runs unarchived. A /history/pairs miss
// without ?period= carries a "truncated" field: true means the bounded
// newest-first scan (Config.HistoryPairScan) stopped before the oldest
// archived period, so the pair may exist in the unscanned remainder.
//
// The trend endpoints require the pipeline to run with Config.Trend; they
// answer 404 otherwise. /trends serves from the cached snapshot; the
// predictor lookup reads the detector's shard directly (fresher than the
// cache, briefly held lock); /events subscribes to the detector and pushes
// every event scored at or above the configured threshold as an SSE
// `trend` event, ending with an `end` event when the run drains. A slow
// /events client loses events (bounded buffer, counted drops) but never
// stalls the dataflow.
package server

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/jaccard"
	"repro/internal/partition"
	"repro/internal/procstat"
	"repro/internal/tagset"
	"repro/internal/telemetry"
	"repro/internal/trend"
)

// Config tunes the query service.
type Config struct {
	// TopK is the number of coefficients kept in the cached snapshot and
	// the cap on /topk?k=N. Default 100.
	TopK int
	// Refresh is the snapshot cache refresh interval. Default 250ms.
	Refresh time.Duration
	// History serves the /history endpoints from an archive directory
	// (nil: the endpoints answer 404). Point it at the directory the
	// pipeline archives into for live + historical queries from one
	// surface.
	History *archive.Reader
	// HistoryPairScan bounds the newest-first segment scan behind
	// /history/pairs without ?period=: a pair that was never reported
	// must not cost a decode of the entire archive per request. A miss
	// that hit the bound reports truncated=true. Default 64.
	HistoryPairScan int
	// Metrics is the telemetry registry /metrics serves. New registers the
	// pipeline's metric families plus the server's own (per-route request
	// latency, status classes, process gauges) into it, so pass a registry
	// that does not already hold them — or leave nil and New creates one.
	Metrics *telemetry.Registry
	// Flight is the pipeline's flight recorder, served on /debug/traces,
	// /debug/traces/{id} and /debug/events (nil: those routes answer 404;
	// the watchdog still runs and its verdict still reaches /healthz).
	// Pass the same recorder wired into the pipeline's Config.Flight.
	Flight *flight.Recorder
	// WatchdogInterval is the stall-check evaluation period. Default 1s.
	WatchdogInterval time.Duration
	// SnapshotStaleAfter: the snapshot_stale verdict fires when the cached
	// snapshot's age exceeds this while the run is live. Default
	// max(10s, 4×Refresh).
	SnapshotStaleAfter time.Duration
	// CheckpointOverdueAfter: the checkpoint_overdue verdict fires when an
	// archiving pipeline has not completed a checkpoint for this long
	// while running. Default 2m.
	CheckpointOverdueAfter time.Duration
	// LogRequests emits one slog debug line per HTTP request (route
	// pattern, status, latency) through the statusWriter middleware.
	LogRequests bool
	// Logger receives watchdog verdicts and request logs (nil:
	// slog.Default).
	Logger *slog.Logger
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.TopK <= 0 {
		c.TopK = 100
	}
	if c.Refresh <= 0 {
		c.Refresh = 250 * time.Millisecond
	}
	if c.HistoryPairScan <= 0 {
		c.HistoryPairScan = 64
	}
	if c.WatchdogInterval <= 0 {
		c.WatchdogInterval = time.Second
	}
	if c.SnapshotStaleAfter <= 0 {
		c.SnapshotStaleAfter = 10 * time.Second
		if v := 4 * c.Refresh; v > c.SnapshotStaleAfter {
			c.SnapshotStaleAfter = v
		}
	}
	if c.CheckpointOverdueAfter <= 0 {
		c.CheckpointOverdueAfter = 2 * time.Minute
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server caches pipeline snapshots and serves the query endpoints. Create
// one with New after starting the pipeline; its refresh loop stops on its
// own when the run drains (taking one final snapshot first), or earlier
// via Close.
type Server struct {
	pipe   *core.Pipeline
	handle *core.Handle
	dict   *tagset.Dictionary
	cfg    Config

	mu   sync.RWMutex
	snap *core.Snapshot

	// /stats response cache: the static remainder of the payload is
	// encoded once per snapshot and re-served until the refresh loop swaps
	// a new snapshot in; only the dynamic head (snapshot_age_ms,
	// rss_bytes) is rendered per request.
	statsMu   sync.Mutex
	statsSnap *core.Snapshot
	statsBody []byte

	// reg backs /metrics; routeHists and routeCounters are the per-route
	// middleware series, wired once in New.
	reg           *telemetry.Registry
	routeHists    map[string]*telemetry.Histogram
	routeCounters map[string]map[string]*telemetry.Counter
	started       time.Time

	// watchdog derives stall verdicts from the pipeline's counters; its
	// verdict is embedded in /healthz and /readyz and its transitions
	// become flight events and slog warnings.
	watchdog *flight.Watchdog

	stopOnce sync.Once
	stop     chan struct{}
	loopDone chan struct{}
}

// routes lists every served route pattern; the middleware uses the fixed
// pattern — never the concrete path — as the route label, keeping the
// metric cardinality bounded regardless of tag names in URLs.
var routes = []string{
	"/topk",
	"/pairs/{tagA}/{tagB}",
	"/trends",
	"/trends/{tagA}/{rest...}",
	"/events",
	"/partition",
	"/stats",
	"/healthz",
	"/readyz",
	"/history/periods",
	"/history/topk",
	"/history/pairs/{tagA}/{tagB}",
	"/history/trends",
	"/metrics",
	"/debug/traces",
	"/debug/traces/{id}",
	"/debug/events",
}

var statusClasses = []string{"2xx", "3xx", "4xx", "5xx"}

// New returns a Server for a started pipeline and launches its refresh
// loop. dict must be the dictionary the stream's tags were interned with;
// it renders tag identifiers back to strings in every response. The
// Tracker's maintained top-k bound is raised to the configured TopK so
// every cached snapshot is served from the incremental heaps rather than a
// scan.
func New(pipe *core.Pipeline, handle *core.Handle, dict *tagset.Dictionary, cfg Config) *Server {
	s := &Server{
		pipe:     pipe,
		handle:   handle,
		dict:     dict,
		cfg:      cfg.withDefaults(),
		started:  time.Now(),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	pipe.Tracker().EnsureTopKBound(s.cfg.TopK)
	s.watchdog = flight.NewWatchdog(s.cfg.Flight, s.cfg.Logger, s.cfg.WatchdogInterval, s.watchdogChecks()...)
	s.initMetrics()
	s.RefreshNow()
	go s.refreshLoop()
	s.watchdog.Start()
	return s
}

// initMetrics builds the /metrics registry: the pipeline's families, the
// per-route middleware series, and the process gauges.
func (s *Server) initMetrics() {
	s.reg = s.cfg.Metrics
	if s.reg == nil {
		s.reg = telemetry.NewRegistry()
	}
	s.pipe.RegisterMetrics(s.reg)

	s.routeHists = make(map[string]*telemetry.Histogram, len(routes))
	s.routeCounters = make(map[string]map[string]*telemetry.Counter, len(routes))
	for _, route := range routes {
		s.routeHists[route] = s.reg.Histogram("tagcorr_http_request_seconds",
			"HTTP request latency by route pattern.",
			telemetry.Labels{"route": route})
		byClass := make(map[string]*telemetry.Counter, len(statusClasses))
		for _, class := range statusClasses {
			byClass[class] = s.reg.Counter("tagcorr_http_requests_total",
				"HTTP requests by route pattern and status class.",
				telemetry.Labels{"route": route, "class": class})
		}
		s.routeCounters[route] = byClass
	}

	s.reg.GaugeFunc("tagcorr_process_uptime_seconds",
		"Seconds since the serving layer started.",
		nil, func() float64 { return time.Since(s.started).Seconds() })
	s.reg.GaugeFunc("tagcorr_process_rss_bytes",
		"Process resident set size (0 on platforms without /proc).",
		nil, func() float64 { return float64(procstat.RSSBytes()) })
	s.reg.GaugeFunc("tagcorr_process_goroutines",
		"Live goroutines.",
		nil, func() float64 { return float64(runtime.NumGoroutine()) })

	for _, name := range s.watchdog.Names() {
		name := name
		s.reg.GaugeFunc("tagcorr_watchdog_stalled_checks",
			"Current stall verdict per watchdog check (1: stalled).",
			telemetry.Labels{"check": name}, func() float64 {
				if s.watchdog.Stalled(name) {
					return 1
				}
				return 0
			})
		s.reg.CounterFunc("tagcorr_watchdog_stalls_total",
			"ok→stalled verdict transitions per watchdog check.",
			telemetry.Labels{"check": name}, func() int64 { return s.watchdog.Stalls(name) })
	}
	s.reg.CounterFunc("tagcorr_watchdog_ticks_total",
		"Completed watchdog evaluation rounds.",
		nil, s.watchdog.Ticks)
}

// Registry exposes the telemetry registry behind /metrics.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// refreshLoop re-snapshots the pipeline every cfg.Refresh until the run
// drains or Close is called, then takes one final snapshot so the cache
// converges to the run's final state.
func (s *Server) refreshLoop() {
	defer close(s.loopDone)
	t := time.NewTicker(s.cfg.Refresh)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.RefreshNow()
		case <-s.handle.Done():
			s.RefreshNow()
			return
		case <-s.stop:
			s.RefreshNow()
			return
		}
	}
}

// RefreshNow re-snapshots the pipeline immediately. Handlers keep serving
// the previous snapshot until the new one is swapped in.
func (s *Server) RefreshNow() {
	snap := s.pipe.Snapshot(s.cfg.TopK)
	s.mu.Lock()
	s.snap = snap
	s.mu.Unlock()
}

// Close stops the watchdog and the refresh loop (after a final refresh)
// and waits for both to exit. The handlers stay functional on the last
// cached snapshot.
func (s *Server) Close() {
	s.watchdog.Close()
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.loopDone
}

// Watchdog exposes the stall watchdog (the daemon's SIGQUIT dump reads
// its verdict).
func (s *Server) Watchdog() *flight.Watchdog { return s.watchdog }

// Snapshot returns the currently cached snapshot.
func (s *Server) Snapshot() *core.Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snap
}

// Handler returns the route multiplexer serving all endpoints. Every route
// runs behind the instrumentation middleware (latency histogram + status
// class counter, labelled by the fixed route pattern).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /topk", s.instrument("/topk", s.handleTopK))
	mux.HandleFunc("GET /pairs/{tagA}/{tagB}", s.instrument("/pairs/{tagA}/{tagB}", s.handlePair))
	mux.HandleFunc("GET /trends", s.instrument("/trends", s.handleTrends))
	mux.HandleFunc("GET /trends/{tagA}/{rest...}", s.instrument("/trends/{tagA}/{rest...}", s.handleTrendLookup))
	mux.HandleFunc("GET /events", s.instrument("/events", s.handleEvents))
	mux.HandleFunc("GET /partition", s.instrument("/partition", s.handlePartition))
	mux.HandleFunc("GET /stats", s.instrument("/stats", s.handleStats))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	mux.HandleFunc("GET /history/periods", s.instrument("/history/periods", s.handleHistoryPeriods))
	mux.HandleFunc("GET /history/topk", s.instrument("/history/topk", s.handleHistoryTopK))
	mux.HandleFunc("GET /history/pairs/{tagA}/{tagB}", s.instrument("/history/pairs/{tagA}/{tagB}", s.handleHistoryPair))
	mux.HandleFunc("GET /history/trends", s.instrument("/history/trends", s.handleHistoryTrends))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.reg.Handler().ServeHTTP))
	mux.HandleFunc("GET /debug/traces", s.instrument("/debug/traces", s.handleDebugTraces))
	mux.HandleFunc("GET /debug/traces/{id}", s.instrument("/debug/traces/{id}", s.handleDebugTrace))
	mux.HandleFunc("GET /debug/events", s.instrument("/debug/events", s.handleDebugEvents))
	return mux
}

// statusWriter captures the response status for the middleware. It
// forwards Flush so the /events SSE stream keeps working behind it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the route's latency histogram and status
// class counter. The route label is the fixed pattern, not the request
// path, so metric cardinality never grows with tag names.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.routeHists[route]
	byClass := s.routeCounters[route]
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r)
		took := time.Since(start)
		hist.Record(took)
		class := "2xx"
		switch {
		case sw.status >= 500:
			class = "5xx"
		case sw.status >= 400:
			class = "4xx"
		case sw.status >= 300:
			class = "3xx"
		}
		byClass[class].Inc()
		if s.cfg.LogRequests {
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			s.cfg.Logger.Debug("http request",
				"route", route, "status", status, "latency_ms", took.Milliseconds())
		}
	}
}

// Coefficient is the JSON rendering of one Jaccard coefficient.
type Coefficient struct {
	Tags []string `json:"tags"`
	J    float64  `json:"j"`
	CN   int64    `json:"cn"`
}

func (s *Server) coefficients(in []jaccard.Coefficient) []Coefficient {
	out := make([]Coefficient, len(in))
	for i, c := range in {
		out[i] = Coefficient{Tags: s.dict.Strings(c.Tags), J: c.J, CN: c.CN}
	}
	return out
}

// TopKResponse is the /topk payload.
type TopKResponse struct {
	DocsProcessed int64         `json:"docs_processed"`
	Periods       int           `json:"periods"`
	K             int           `json:"k"`
	Top           []Coefficient `json:"top"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	k := 20
	if q := r.URL.Query().Get("k"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "k must be a positive integer")
			return
		}
		k = n
	}
	if k > s.cfg.TopK {
		k = s.cfg.TopK
	}
	top := snap.TopK
	if len(top) > k {
		top = top[:k]
	}
	writeJSON(w, TopKResponse{
		DocsProcessed: snap.DocsProcessed,
		Periods:       len(snap.Periods),
		K:             k,
		Top:           s.coefficients(top),
	})
}

// PairResponse is the /pairs/{tagA}/{tagB} payload. Evicted marks answers
// served from the Tracker's LRU of pruned coefficients: the pair's
// reporting periods have left the retention window, and the value is the
// latest one seen before pruning.
type PairResponse struct {
	Tags    []string `json:"tags"`
	J       float64  `json:"j"`
	CN      int64    `json:"cn"`
	Period  int64    `json:"period"`
	Evicted bool     `json:"evicted,omitempty"`
}

// handlePair looks the pair up in the Tracker directly — point queries are
// cheap under the owning shard's lock and this keeps them as fresh as the
// last Calculator report rather than the last cache refresh. Pairs whose
// periods were pruned by retention are answered from the evicted LRU when
// the pipeline has one configured.
func (s *Server) handlePair(w http.ResponseWriter, r *http.Request) {
	a, okA := s.dict.Lookup(r.PathValue("tagA"))
	b, okB := s.dict.Lookup(r.PathValue("tagB"))
	if !okA || !okB {
		httpError(w, http.StatusNotFound, "unknown tag")
		return
	}
	set := tagset.New(a, b)
	if set.Len() != 2 {
		httpError(w, http.StatusBadRequest, "tags must differ")
		return
	}
	c, period, evicted, ok := s.pipe.Tracker().LookupDetail(set.Key())
	if !ok {
		httpError(w, http.StatusNotFound, "no coefficient reported for pair")
		return
	}
	writeJSON(w, PairResponse{Tags: s.dict.Strings(c.Tags), J: c.J, CN: c.CN, Period: period, Evicted: evicted})
}

// TrendEvent is the JSON rendering of one scored trend deviation, shared by
// /trends and the /events SSE feed.
type TrendEvent struct {
	Tags      []string `json:"tags"`
	Period    int64    `json:"period"`
	Predicted float64  `json:"predicted"`
	Observed  float64  `json:"observed"`
	Score     float64  `json:"score"`
	Rising    bool     `json:"rising"`
	CN        int64    `json:"cn"`
}

func (s *Server) trendEvent(e trend.Event) TrendEvent {
	return TrendEvent{
		Tags:      s.dict.Strings(e.Tags),
		Period:    e.Period,
		Predicted: e.Predicted,
		Observed:  e.Observed,
		Score:     e.Score,
		Rising:    e.Rising,
		CN:        e.CN,
	}
}

// TrendsResponse is the /trends payload: the top deviations of the newest
// scored period, from the cached snapshot.
type TrendsResponse struct {
	LatestPeriod int64        `json:"latest_period"`
	K            int          `json:"k"`
	Top          []TrendEvent `json:"top"`
	Tracked      int          `json:"tracked"`
	Scored       int64        `json:"events_scored"`
	Published    int64        `json:"events_published"`
	Threshold    float64      `json:"threshold"`
}

// trendDetector returns the pipeline's streaming detector, writing the
// 404 the trend endpoints share when the pipeline runs without one.
func (s *Server) trendDetector(w http.ResponseWriter) *trend.Stream {
	det := s.pipe.Trends()
	if det == nil {
		httpError(w, http.StatusNotFound, "trend detection disabled (core.Config.Trend)")
	}
	return det
}

func (s *Server) handleTrends(w http.ResponseWriter, r *http.Request) {
	det := s.trendDetector(w)
	if det == nil {
		return
	}
	snap := s.Snapshot()
	k := 20
	if q := r.URL.Query().Get("k"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "k must be a positive integer")
			return
		}
		k = n
	}
	if k > s.cfg.TopK {
		k = s.cfg.TopK
	}
	// The cached view holds at most the detector's maintained heap bound;
	// clamp K so the response never claims a larger ranking than it can
	// carry.
	if bound := det.Config().TopK; k > bound {
		k = bound
	}
	v := snap.Trends
	top := v.Top
	if len(top) > k {
		top = top[:k]
	}
	resp := TrendsResponse{
		LatestPeriod: v.LatestPeriod,
		K:            k,
		Top:          make([]TrendEvent, len(top)),
		Tracked:      v.Stats.Tracked,
		Scored:       v.Stats.Scored,
		Published:    v.Stats.Published,
		Threshold:    s.pipe.Trends().Config().Threshold,
	}
	for i, e := range top {
		resp.Top[i] = s.trendEvent(e)
	}
	writeJSON(w, resp)
}

// TrendLookupResponse is the /trends/{tags...} payload: the live EWMA
// predictor of one tagset, read shard-directly (fresher than the cache).
type TrendLookupResponse struct {
	Tags        []string `json:"tags"`
	Expectation float64  `json:"expectation"`
	Base        float64  `json:"base"`
	LastPeriod  int64    `json:"last_period"`
	Seen        int      `json:"seen"`
}

func (s *Server) handleTrendLookup(w http.ResponseWriter, r *http.Request) {
	det := s.trendDetector(w)
	if det == nil {
		return
	}
	names := append([]string{r.PathValue("tagA")}, strings.Split(r.PathValue("rest"), "/")...)
	ids := make([]tagset.Tag, len(names))
	for i, name := range names {
		id, ok := s.dict.Lookup(name)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown tag")
			return
		}
		ids[i] = id
	}
	set := tagset.New(ids...)
	if set.Len() != len(names) || set.Len() < 2 {
		httpError(w, http.StatusBadRequest, "need 2 or more distinct tags")
		return
	}
	p, ok := det.Predictor(set.Key())
	if !ok {
		httpError(w, http.StatusNotFound, "no predictor for tagset")
		return
	}
	writeJSON(w, TrendLookupResponse{
		Tags:        s.dict.Strings(set),
		Expectation: p.Expectation,
		Base:        p.Base,
		LastPeriod:  p.LastPeriod,
		Seen:        p.Seen,
	})
}

// handleEvents is the SSE feed: every trend event scored at or above the
// detector's threshold is pushed as an `event: trend` frame while the run
// streams. When the run drains, buffered events are flushed and the stream
// ends with an `event: end` frame; a client disconnect ends it immediately.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	det := s.trendDetector(w)
	if det == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	ch, cancel := det.Subscribe(256)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": tagcorrd trend events\n\n")
	fl.Flush()

	writeEvent := func(e trend.Event) bool {
		data, err := json.Marshal(s.trendEvent(e))
		if err != nil {
			return false
		}
		_, err = fmt.Fprintf(w, "event: trend\ndata: %s\n\n", data)
		fl.Flush()
		return err == nil
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case e := <-ch:
			if !writeEvent(e) {
				return
			}
		case <-s.handle.Done():
			// Drained: no further events can be scored. Wait for the
			// detector's broker goroutine to fan out everything already
			// published, then flush what is buffered and close the stream.
			det.Sync()
			for {
				select {
				case e := <-ch:
					if !writeEvent(e) {
						return
					}
				default:
					fmt.Fprint(w, "event: end\ndata: {}\n\n")
					fl.Flush()
					return
				}
			}
		}
	}
}

// history returns the archive reader, writing the shared 404 when the
// service runs without one.
func (s *Server) history(w http.ResponseWriter) *archive.Reader {
	if s.cfg.History == nil {
		httpError(w, http.StatusNotFound, "archive disabled (core.Config.ArchiveDir)")
	}
	return s.cfg.History
}

// historyCoefficients renders archived coefficients. Unlike the live
// path it uses the placeholder-tolerant Names: a segment written by a
// previous process (or after the last checkpoint) can reference tags the
// rebuilt dictionary has not re-interned yet, and a history query must
// render them, not panic.
func (s *Server) historyCoefficients(in []jaccard.Coefficient) []Coefficient {
	out := make([]Coefficient, len(in))
	for i, c := range in {
		out[i] = Coefficient{Tags: s.dict.Names(c.Tags), J: c.J, CN: c.CN}
	}
	return out
}

// HistoryPeriodsResponse is the /history/periods payload: every reporting
// period with a segment on disk, ascending — a superset of the retained
// in-memory periods, surviving both retention pruning and restarts.
type HistoryPeriodsResponse struct {
	Periods []int64 `json:"periods"`
	Count   int     `json:"count"`
}

func (s *Server) handleHistoryPeriods(w http.ResponseWriter, r *http.Request) {
	rd := s.history(w)
	if rd == nil {
		return
	}
	periods, err := rd.Periods()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, HistoryPeriodsResponse{Periods: periods, Count: len(periods)})
}

// HistoryTopKResponse is the /history/topk payload: one archived period's
// top coefficients, decoded from its segment file. Torn reports a tail
// lost to a crash before it was flushed; the coefficients before the tear
// are served regardless. TrendEvents counts the period's archived trend
// deviations.
type HistoryTopKResponse struct {
	Period      int64         `json:"period"`
	K           int           `json:"k"`
	Torn        bool          `json:"torn,omitempty"`
	TrendEvents int           `json:"trend_events"`
	Top         []Coefficient `json:"top"`
}

func (s *Server) handleHistoryTopK(w http.ResponseWriter, r *http.Request) {
	rd := s.history(w)
	if rd == nil {
		return
	}
	q := r.URL.Query()
	period, err := strconv.ParseInt(q.Get("period"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "period must be an integer")
		return
	}
	k := 20
	if v := q.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "k must be a positive integer")
			return
		}
		k = n
	}
	seg, err := rd.Segment(period)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if seg == nil {
		httpError(w, http.StatusNotFound, "no archived segment for period")
		return
	}
	top := seg.Coeffs
	if len(top) > k {
		top = top[:k]
	}
	writeJSON(w, HistoryTopKResponse{
		Period:      period,
		K:           k,
		Torn:        seg.Torn,
		TrendEvents: len(seg.Trends),
		Top:         s.historyCoefficients(top),
	})
}

// HistoryPairResponse is the /history/pairs payload: the archived
// coefficient of one pair, from the requested period or — without
// ?period= — the newest archived period that reported it.
type HistoryPairResponse struct {
	Tags   []string `json:"tags"`
	J      float64  `json:"j"`
	CN     int64    `json:"cn"`
	Period int64    `json:"period"`
}

func (s *Server) handleHistoryPair(w http.ResponseWriter, r *http.Request) {
	rd := s.history(w)
	if rd == nil {
		return
	}
	a, okA := s.dict.Lookup(r.PathValue("tagA"))
	b, okB := s.dict.Lookup(r.PathValue("tagB"))
	if !okA || !okB {
		httpError(w, http.StatusNotFound, "unknown tag")
		return
	}
	set := tagset.New(a, b)
	if set.Len() != 2 {
		httpError(w, http.StatusBadRequest, "tags must differ")
		return
	}

	var (
		c         jaccard.Coefficient
		period    int64
		ok        bool
		truncated bool
	)
	if v := r.URL.Query().Get("period"); v != "" {
		p, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "period must be an integer")
			return
		}
		seg, err := rd.Segment(p)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if seg != nil {
			c, ok = seg.Coefficient(set.Key())
			period = p
		}
	} else {
		var err error
		c, period, ok, truncated, err = rd.LookupPair(set.Key(), s.cfg.HistoryPairScan)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
	}
	if !ok {
		// truncated distinguishes "never archived" (false) from "not in
		// the newest HistoryPairScan periods; older ones were not
		// scanned" (true) — without it, a pair older than the scan bound
		// would 404 exactly like a pair that never existed.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		writeJSON(w, map[string]interface{}{
			"error":     "no archived coefficient for pair",
			"truncated": truncated,
		})
		return
	}
	writeJSON(w, HistoryPairResponse{Tags: s.dict.Names(c.Tags), J: c.J, CN: c.CN, Period: period})
}

// HistoryTrendsResponse is the /history/trends payload: one archived
// period's scored trend deviations, ranked by descending score, decoded
// from the same segments /history/topk serves. It answers for any
// archived period — including ones whose events predate this process —
// regardless of whether the live pipeline runs with trend detection.
type HistoryTrendsResponse struct {
	Period      int64        `json:"period"`
	K           int          `json:"k"`
	Torn        bool         `json:"torn,omitempty"`
	TrendEvents int          `json:"trend_events"` // total archived for the period
	Top         []TrendEvent `json:"top"`
}

func (s *Server) handleHistoryTrends(w http.ResponseWriter, r *http.Request) {
	rd := s.history(w)
	if rd == nil {
		return
	}
	q := r.URL.Query()
	period, err := strconv.ParseInt(q.Get("period"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "period must be an integer")
		return
	}
	k := 20
	if v := q.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "k must be a positive integer")
			return
		}
		k = n
	}
	seg, err := rd.Segment(period)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if seg == nil {
		httpError(w, http.StatusNotFound, "no archived segment for period")
		return
	}
	top := seg.Trends
	if len(top) > k {
		top = top[:k]
	}
	resp := HistoryTrendsResponse{
		Period:      period,
		K:           k,
		Torn:        seg.Torn,
		TrendEvents: len(seg.Trends),
		Top:         make([]TrendEvent, len(top)),
	}
	for i, e := range top {
		resp.Top[i] = s.historyTrendEvent(e)
	}
	writeJSON(w, resp)
}

// historyTrendEvent renders an archived trend event. Like
// historyCoefficients it uses the placeholder-tolerant Names: archived
// events can reference tags the rebuilt dictionary has not re-interned.
func (s *Server) historyTrendEvent(e trend.Event) TrendEvent {
	return TrendEvent{
		Tags:      s.dict.Names(e.Tags),
		Period:    e.Period,
		Predicted: e.Predicted,
		Observed:  e.Observed,
		Score:     e.Score,
		Rising:    e.Rising,
		CN:        e.CN,
	}
}

// PartitionInfo is one partition in the /partition payload.
type PartitionInfo struct {
	Index int      `json:"index"`
	Load  int64    `json:"load"`
	Tags  []string `json:"tags"`
}

// PartitionResponse is the /partition payload.
type PartitionResponse struct {
	Epoch      int             `json:"epoch"`
	Merges     int             `json:"merges"`
	Pending    bool            `json:"repartition_pending"`
	Partitions []PartitionInfo `json:"partitions"`
}

func (s *Server) handlePartition(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	resp := PartitionResponse{
		Epoch:      snap.Epoch,
		Merges:     snap.Merges,
		Pending:    snap.RepartitionPending,
		Partitions: make([]PartitionInfo, len(snap.Partitions)),
	}
	for i, p := range snap.Partitions {
		resp.Partitions[i] = s.partitionInfo(i, p)
	}
	writeJSON(w, resp)
}

func (s *Server) partitionInfo(i int, p partition.Partition) PartitionInfo {
	return PartitionInfo{Index: i, Load: p.Load, Tags: s.dict.Strings(p.Tags)}
}

// StatsResponse is the /stats payload: the full snapshot with tag sets
// rendered to strings. The two head fields are rendered per request; the
// embedded remainder is encoded once per snapshot and served from a cache
// until the refresh loop swaps a new snapshot in.
type StatsResponse struct {
	// SnapshotAgeMS is how old the served snapshot is (milliseconds since
	// its consistent Tracker pass, monotonic clock). Under CPU saturation
	// the refresh loop can stall on operator locks; this surfaces it.
	SnapshotAgeMS int64 `json:"snapshot_age_ms"`
	// RSSBytes is the process resident set size (0 on platforms without
	// /proc), read per request rather than per snapshot.
	RSSBytes int64 `json:"rss_bytes"`

	statsStatic
}

// statsStatic is the snapshot-derived remainder of the /stats payload —
// everything that only changes when the cached snapshot does.
type statsStatic struct {
	DocsProcessed     int64 `json:"docs_processed"`
	DocsBeforeInstall int64 `json:"docs_before_install"`
	NotifiedDocs      int64 `json:"notified_docs"`
	Notifications     int64 `json:"notifications"`
	UncoveredDocs     int64 `json:"uncovered_docs"`

	Communication float64 `json:"communication"`
	LoadGini      float64 `json:"load_gini"`
	PerCalculator []int64 `json:"per_calculator"`

	Epoch              int  `json:"epoch"`
	RepartitionPending bool `json:"repartition_pending"`
	Repartitions       int  `json:"repartitions"`
	RepartitionsComm   int  `json:"repartitions_comm"`
	RepartitionsLoad   int  `json:"repartitions_load"`
	RepartitionsBoth   int  `json:"repartitions_both"`
	SingleAdditions    int  `json:"single_additions"`
	Merges             int  `json:"merges"`

	Periods               []int64 `json:"periods"`
	CoefficientsReceived  int64   `json:"coefficients_received"`
	CoefficientsDuplicate int64   `json:"coefficients_duplicate"`

	// TrackerTasks and NotifyBatch are the hot-path fan-out knobs: Tracker
	// operator parallelism and the Disseminator→Calculator notification
	// batch size (0: one tuple per document × Calculator).
	TrackerTasks int `json:"tracker_tasks"`
	NotifyBatch  int `json:"notify_batch"`

	// Checkpoints / CheckpointStallMS / CheckpointWriteMS meter the
	// durability path (0 with archiving off): completed checkpoint writes,
	// the cumulative milliseconds the hot path spent cutting snapshots,
	// and the cumulative milliseconds the background writer spent encoding
	// + fsyncing them. The archive_* fields meter background compaction:
	// compacted files written, raw periods folded into them, periods aged
	// out under the disk budget, and the directory size after the
	// compactor's last pass. These are the fields the cmd/loadgen driver
	// scrapes between query rounds.
	Checkpoints             int64 `json:"checkpoints"`
	CheckpointStallMS       int64 `json:"checkpoint_stall_ms"`
	CheckpointWriteMS       int64 `json:"checkpoint_write_ms"`
	ArchiveCompactions      int64 `json:"archive_compactions"`
	ArchiveCompactedPeriods int64 `json:"archive_compacted_periods"`
	ArchiveAgedOutPeriods   int64 `json:"archive_aged_out_periods"`
	ArchiveBytes            int64 `json:"archive_bytes"`

	// The stage_* objects summarise the end-to-end stage-latency
	// histograms (count, p50/p99/max milliseconds); full bucket detail is
	// on /metrics.
	StageDocPartition     core.StageLatency `json:"stage_doc_partition"`
	StageDocCoefficient   core.StageLatency `json:"stage_doc_coefficient"`
	StageDocTrackerAccept core.StageLatency `json:"stage_doc_tracker_accept"`

	Tracker TrackerStats `json:"tracker"`
	Trends  *TrendStats  `json:"trends,omitempty"`

	EmittedByComponent  map[string]int64 `json:"emitted_by_component"`
	ReceivedByComponent map[string]int64 `json:"received_by_component"`
}

// TrendStats is the /stats rendering of the streaming detector's internal
// structure; present only when the pipeline runs with trend detection.
type TrendStats struct {
	Shards          int   `json:"shards"`
	TopKBound       int   `json:"topk_bound"`
	Tracked         int   `json:"tracked_predictors"`
	RetainedPeriods int   `json:"retained_periods"`
	HeapEntries     int   `json:"heap_entries"`
	Rebuilds        int64 `json:"heap_rebuilds"`
	PrunedPeriods   int64 `json:"pruned_periods"`
	Scored          int64 `json:"events_scored"`
	Filtered        int64 `json:"filtered"`
	OutOfOrder      int64 `json:"out_of_order"`
	Late            int64 `json:"late"`
	Published       int64 `json:"events_published"`
	Dropped         int64 `json:"subscriber_drops"`
	Subscribers     int   `json:"subscribers"`
}

// TrackerStats is the /stats rendering of the Tracker's internal structure:
// shard layout, incremental top-k heaps, retention pruning, evicted LRU.
type TrackerStats struct {
	Shards          int   `json:"shards"`
	TopKBound       int   `json:"topk_bound"`
	Retained        int   `json:"retained_coefficients"`
	RetainedPeriods int   `json:"retained_periods"`
	HeapEntries     int   `json:"heap_entries"`
	Rebuilds        int64 `json:"heap_rebuilds"`
	PrunedPeriods   int64 `json:"pruned_periods"`
	EvictedLen      int   `json:"evicted_pairs"`
	EvictedCap      int   `json:"evicted_pairs_cap"`
	EvictedHits     int64 `json:"evicted_pair_hits"`
	EvictedMisses   int64 `json:"evicted_pair_misses"`
	Late            int64 `json:"late_reports"`
}

// handleStats serves the dynamic head (snapshot age, RSS) per request and
// splices in the cached encoding of the snapshot-derived remainder. The
// cache is keyed on the snapshot pointer, so a refresh invalidates it
// without any extra bookkeeping.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	body := s.statsBodyFor(snap)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\n  \"snapshot_age_ms\": %d,\n  \"rss_bytes\": %d,",
		time.Since(snap.TakenAt).Milliseconds(), procstat.RSSBytes())
	w.Write(body) //nolint:errcheck // best effort; the client is gone on error
	fmt.Fprintln(w)
}

// statsBodyFor returns the encoded statsStatic for snap, rebuilding the
// cache when the snapshot changed since the last request. The returned
// bytes start after the payload's opening brace (the dynamic head supplies
// it plus the two leading fields).
func (s *Server) statsBodyFor(snap *core.Snapshot) []byte {
	s.statsMu.Lock()
	if s.statsSnap == snap && s.statsBody != nil {
		body := s.statsBody
		s.statsMu.Unlock()
		return body
	}
	s.statsMu.Unlock()

	enc, err := json.MarshalIndent(s.buildStatsStatic(snap), "", "  ")
	if err != nil {
		// statsStatic holds no unencodable types; keep the route alive
		// regardless.
		enc = []byte("{\n  \"error\": \"encode failed\"\n}")
	}
	body := enc[1:] // strip "{"; the head printed it

	s.statsMu.Lock()
	s.statsSnap, s.statsBody = snap, body
	s.statsMu.Unlock()
	return body
}

func (s *Server) buildStatsStatic(snap *core.Snapshot) statsStatic {
	var trends *TrendStats
	if v := snap.Trends; v != nil {
		trends = &TrendStats{
			Shards:          v.Stats.Shards,
			TopKBound:       v.Stats.TopKBound,
			Tracked:         v.Stats.Tracked,
			RetainedPeriods: v.Stats.RetainedPeriods,
			HeapEntries:     v.Stats.HeapEntries,
			Rebuilds:        v.Stats.Rebuilds,
			PrunedPeriods:   v.Stats.PrunedPeriods,
			Scored:          v.Stats.Scored,
			Filtered:        v.Stats.Filtered,
			OutOfOrder:      v.Stats.OutOfOrder,
			Late:            v.Stats.Late,
			Published:       v.Stats.Published,
			Dropped:         v.Stats.Dropped,
			Subscribers:     v.Stats.Subscribers,
		}
	}
	return statsStatic{
		DocsProcessed:     snap.DocsProcessed,
		DocsBeforeInstall: snap.DocsBeforeInstall,
		NotifiedDocs:      snap.NotifiedDocs,
		Notifications:     snap.Notifications,
		UncoveredDocs:     snap.UncoveredDocs,

		Communication: snap.Communication,
		LoadGini:      snap.LoadGini,
		PerCalculator: snap.PerCalculator,

		Epoch:              snap.Epoch,
		RepartitionPending: snap.RepartitionPending,
		Repartitions:       snap.Repartitions,
		RepartitionsComm:   snap.RepartitionsComm,
		RepartitionsLoad:   snap.RepartitionsLoad,
		RepartitionsBoth:   snap.RepartitionsBoth,
		SingleAdditions:    snap.SingleAdditions,
		Merges:             snap.Merges,

		Periods:               snap.Periods,
		CoefficientsReceived:  snap.CoefficientsReceived,
		CoefficientsDuplicate: snap.CoefficientsDuplicate,

		TrackerTasks: snap.TrackerTasks,
		NotifyBatch:  snap.NotifyBatch,

		Checkpoints:             snap.Checkpoints,
		CheckpointStallMS:       snap.CheckpointStallMS,
		CheckpointWriteMS:       snap.CheckpointWriteMS,
		ArchiveCompactions:      snap.ArchiveCompactions,
		ArchiveCompactedPeriods: snap.ArchiveCompactedPeriods,
		ArchiveAgedOutPeriods:   snap.ArchiveAgedOutPeriods,
		ArchiveBytes:            snap.ArchiveBytes,

		StageDocPartition:     snap.StageDocPartition,
		StageDocCoefficient:   snap.StageDocCoefficient,
		StageDocTrackerAccept: snap.StageDocTrackerAccept,

		Tracker: TrackerStats{
			Shards:          snap.Tracker.Shards,
			TopKBound:       snap.Tracker.TopKBound,
			Retained:        snap.Tracker.Retained,
			RetainedPeriods: snap.Tracker.RetainedPeriods,
			HeapEntries:     snap.Tracker.HeapEntries,
			Rebuilds:        snap.Tracker.Rebuilds,
			PrunedPeriods:   snap.Tracker.PrunedPeriods,
			EvictedLen:      snap.Tracker.EvictedLen,
			EvictedCap:      snap.Tracker.EvictedCap,
			EvictedHits:     snap.Tracker.EvictedHits,
			EvictedMisses:   snap.Tracker.EvictedMisses,
			Late:            snap.Tracker.Late,
		},
		Trends: trends,

		EmittedByComponent:  snap.EmittedByComponent,
		ReceivedByComponent: snap.ReceivedByComponent,
	}
}

// HealthResponse is the /healthz payload. Watchdog carries the stall
// watchdog's current verdict ("ok", or "stalled: …" naming the tripped
// checks) and UptimeMS the serving layer's age, so a probe can tell
// "just started" from "up but wedged".
type HealthResponse struct {
	Status        string `json:"status"`
	Running       bool   `json:"running"`
	DocsProcessed int64  `json:"docs_processed"`
	UptimeMS      int64  `json:"uptime_ms"`
	Watchdog      string `json:"watchdog"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, HealthResponse{
		Status:        "ok",
		Running:       s.handle.Running(),
		DocsProcessed: s.Snapshot().DocsProcessed,
		UptimeMS:      time.Since(s.started).Milliseconds(),
		Watchdog:      s.watchdog.Verdict(),
	})
}

// ReadyResponse is the /readyz payload. Unlike /healthz (liveness: the
// process is up and serving), readiness reports whether the pipeline has
// actually started consuming the stream — the condition a load driver or
// orchestrator waits on before aiming traffic at the service. Ready once
// the first document has been processed; a drained run stays ready (its
// final state is still being served).
type ReadyResponse struct {
	Ready         bool   `json:"ready"`
	Running       bool   `json:"running"`
	DocsProcessed int64  `json:"docs_processed"`
	UptimeMS      int64  `json:"uptime_ms"`
	Watchdog      string `json:"watchdog"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	// Consult the Tracker-consistent cached snapshot, but fall back to the
	// live Disseminator counters: at startup the first refresh can precede
	// the first processed document, and readiness should flip as soon as
	// traffic flows rather than one cache interval later.
	docs := s.Snapshot().DocsProcessed
	if docs == 0 {
		docs = s.pipe.Snapshot(1).DocsProcessed
	}
	resp := ReadyResponse{
		Ready:         docs > 0,
		Running:       s.handle.Running(),
		DocsProcessed: docs,
		UptimeMS:      time.Since(s.started).Milliseconds(),
		Watchdog:      s.watchdog.Verdict(),
	}
	if !resp.Ready {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(resp) //nolint:errcheck
		return
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best effort; the client is gone on error
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg}) //nolint:errcheck
}
