package server

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/twitgen"
)

// drainedServer runs a small bounded stream to completion and returns a
// server whose background refresh is effectively off (hour-long interval),
// so tests control snapshot freshness explicitly via RefreshNow.
func drainedServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	dict := tagset.NewDictionary()
	gcfg := twitgen.Default()
	gcfg.Seed = 11
	gen, err := twitgen.New(gcfg, dict)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.WindowSpan = stream.Minutes(1)
	cfg.ReportEvery = stream.Minutes(1)
	pipe, err := core.NewPipeline(cfg, core.GeneratorSource(gen.Next, 3000))
	if err != nil {
		t.Fatal(err)
	}
	h := pipe.Start()
	h.Wait()
	srv := New(pipe, h, dict, Config{TopK: 20, Refresh: time.Hour})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

// TestStatsSnapshotAge pins the /stats staleness signal: snapshot_age_ms
// is present and non-negative, grows while no refresh happens, and drops
// back after RefreshNow re-snapshots the pipeline.
func TestStatsSnapshotAge(t *testing.T) {
	srv, ts := drainedServer(t)

	var st StatsResponse
	getJSON(t, ts.Client(), ts.URL+"/stats", &st)
	if st.SnapshotAgeMS < 0 {
		t.Fatalf("snapshot_age_ms = %d, want >= 0", st.SnapshotAgeMS)
	}
	if st.DocsProcessed == 0 {
		t.Fatal("drained pipeline reports 0 docs_processed")
	}

	// With the refresh loop effectively off, age must accumulate.
	time.Sleep(60 * time.Millisecond)
	var aged StatsResponse
	getJSON(t, ts.Client(), ts.URL+"/stats", &aged)
	if aged.SnapshotAgeMS < 50 {
		t.Fatalf("snapshot_age_ms = %d after 60ms without refresh, want >= 50", aged.SnapshotAgeMS)
	}
	if aged.SnapshotAgeMS < st.SnapshotAgeMS {
		t.Fatalf("snapshot_age_ms went backwards without a refresh: %d then %d",
			st.SnapshotAgeMS, aged.SnapshotAgeMS)
	}

	// A refresh resets the age to "just taken".
	srv.RefreshNow()
	var fresh StatsResponse
	getJSON(t, ts.Client(), ts.URL+"/stats", &fresh)
	if fresh.SnapshotAgeMS < 0 || fresh.SnapshotAgeMS >= aged.SnapshotAgeMS {
		t.Fatalf("snapshot_age_ms = %d after RefreshNow, want in [0, %d)",
			fresh.SnapshotAgeMS, aged.SnapshotAgeMS)
	}

	// The durability and process gauges the loadgen sampler scrapes ride
	// the same payload: absent subsystems read zero, never negative.
	if fresh.Checkpoints < 0 || fresh.CheckpointStallMS < 0 {
		t.Fatalf("negative durability counters: %d ckpts, %d ms stall",
			fresh.Checkpoints, fresh.CheckpointStallMS)
	}
	if runtime.GOOS == "linux" && fresh.RSSBytes <= 0 {
		t.Fatalf("rss_bytes = %d on linux, want > 0", fresh.RSSBytes)
	}
}

// TestReadyz pins the readiness contract: 503 while no document has been
// processed, 200 once traffic has flowed.
func TestReadyz(t *testing.T) {
	dict := tagset.NewDictionary()
	gcfg := twitgen.Default()
	gcfg.Seed = 12
	gen, err := twitgen.New(gcfg, dict)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	sent := 0
	src := func() (stream.Document, bool) {
		<-gate
		if sent >= 2000 {
			return stream.Document{}, false
		}
		sent++
		return gen.Next(), true
	}
	cfg := core.DefaultConfig()
	cfg.WindowSpan = stream.Minutes(1)
	cfg.ReportEvery = stream.Minutes(1)
	pipe, err := core.NewPipeline(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	h := pipe.Start()
	srv := New(pipe, h, dict, Config{TopK: 20, Refresh: 5 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	// Source is gated shut: nothing can have been processed yet.
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before traffic: status %d, want 503", resp.StatusCode)
	}

	close(gate)
	h.Wait()
	srv.RefreshNow()

	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after traffic: status %d, want 200", resp.StatusCode)
	}
}
