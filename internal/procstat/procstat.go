// Package procstat reads lightweight process-level statistics for the
// benchmark harness: the resident set size the BENCH reports record and the
// /stats scrape exposes. Linux is the measured platform (CI and the
// capacity runs); on other systems the readings degrade to zero rather
// than erroring, so callers never need to gate on GOOS.
package procstat

import (
	"os"
	"strconv"
	"strings"
)

// pageSize caches the kernel page size used by /proc/self/statm.
var pageSize = int64(os.Getpagesize())

// RSSBytes returns the process's resident set size in bytes, or 0 when the
// platform does not expose /proc/self/statm (non-Linux).
func RSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	// statm: size resident shared text lib data dt (in pages).
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0
	}
	resident, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return resident * pageSize
}
