package flight

import (
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Check is one stall probe. Probe is called on every watchdog tick and
// returns whether the condition currently looks stalled plus a short
// human-readable detail. Probes must be cheap and safe to call
// concurrently with the pipeline; they read existing counters, never
// take pipeline locks for long.
type Check struct {
	Name  string
	Probe func() (stalled bool, detail string)
}

// Watchdog periodically evaluates stall checks and turns transitions
// into flight events, slog lines and gauges. A check that flips to
// stalled records one EventWatchdog event and one warning; recovery
// records an info line. Steady state is silent — the current verdict is
// always readable via Verdict / Stalled.
type Watchdog struct {
	rec      *Recorder
	log      *slog.Logger
	interval time.Duration
	checks   []Check

	state  []atomic.Bool  // current stalled verdict per check
	stalls []atomic.Int64 // ok->stalled transitions per check
	detail []atomic.Pointer[string]
	ticks  atomic.Int64

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewWatchdog builds a watchdog over the given checks. rec may be nil
// (verdicts then only reach slog and the gauges); log nil means
// slog.Default.
func NewWatchdog(rec *Recorder, log *slog.Logger, interval time.Duration, checks ...Check) *Watchdog {
	if log == nil {
		log = slog.Default()
	}
	if interval <= 0 {
		interval = time.Second
	}
	w := &Watchdog{
		rec:      rec,
		log:      log,
		interval: interval,
		checks:   checks,
		state:    make([]atomic.Bool, len(checks)),
		stalls:   make([]atomic.Int64, len(checks)),
		detail:   make([]atomic.Pointer[string], len(checks)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	return w
}

// Start launches the tick loop. Safe to call once; Close stops it.
func (w *Watchdog) Start() {
	if w == nil {
		return
	}
	w.startOnce.Do(func() {
		go func() {
			defer close(w.done)
			tick := time.NewTicker(w.interval)
			defer tick.Stop()
			for {
				select {
				case <-w.stop:
					return
				case <-tick.C:
					w.Tick()
				}
			}
		}()
	})
}

// Close stops the tick loop and waits for it to exit. Safe to call
// multiple times and before Start.
func (w *Watchdog) Close() {
	if w == nil {
		return
	}
	w.stopOnce.Do(func() { close(w.stop) })
	w.startOnce.Do(func() { close(w.done) }) // never started: nothing to wait for
	<-w.done
}

// Tick evaluates every check once. Exported so tests and the SIGQUIT
// dump can force an evaluation without waiting out the interval.
func (w *Watchdog) Tick() {
	if w == nil {
		return
	}
	w.ticks.Add(1)
	for i := range w.checks {
		c := &w.checks[i]
		stalled, detail := c.Probe()
		prev := w.state[i].Swap(stalled)
		if stalled {
			d := detail
			w.detail[i].Store(&d)
		}
		if stalled == prev {
			continue
		}
		if stalled {
			w.stalls[i].Add(1)
			w.rec.RecordEvent(EventWatchdog, c.Name+" stalled: "+detail)
			w.log.Warn("watchdog stall verdict", "check", c.Name, "detail", detail)
		} else {
			w.rec.RecordEvent(EventWatchdog, c.Name+" recovered")
			w.log.Info("watchdog stall cleared", "check", c.Name)
		}
	}
}

// Names returns the configured check names in order.
func (w *Watchdog) Names() []string {
	if w == nil {
		return nil
	}
	out := make([]string, len(w.checks))
	for i := range w.checks {
		out[i] = w.checks[i].Name
	}
	return out
}

// Stalled reports the current verdict for one check by name.
func (w *Watchdog) Stalled(name string) bool {
	if w == nil {
		return false
	}
	for i := range w.checks {
		if w.checks[i].Name == name {
			return w.state[i].Load()
		}
	}
	return false
}

// Stalls returns ok->stalled transitions for one check by name.
func (w *Watchdog) Stalls(name string) int64 {
	if w == nil {
		return 0
	}
	for i := range w.checks {
		if w.checks[i].Name == name {
			return w.stalls[i].Load()
		}
	}
	return 0
}

// Ticks returns the number of completed evaluations.
func (w *Watchdog) Ticks() int64 {
	if w == nil {
		return 0
	}
	return w.ticks.Load()
}

// Verdict summarizes the current state: "ok", or "stalled: a, b" listing
// every currently stalled check with its last detail.
func (w *Watchdog) Verdict() string {
	if w == nil {
		return "ok"
	}
	var parts []string
	for i := range w.checks {
		if w.state[i].Load() {
			s := w.checks[i].Name
			if d := w.detail[i].Load(); d != nil && *d != "" {
				s += " (" + *d + ")"
			}
			parts = append(parts, s)
		}
	}
	if len(parts) == 0 {
		return "ok"
	}
	return "stalled: " + strings.Join(parts, ", ")
}
