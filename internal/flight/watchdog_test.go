package flight

import (
	"io"
	"log/slog"
	"sync/atomic"
	"testing"
	"time"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// TestWatchdogFaultInjection drives a watchdog through an injected stall:
// the probe flips to stalled, the verdict and per-check gauge state
// follow, exactly one flight event and one transition count are recorded,
// and recovery clears everything with a second event.
func TestWatchdogFaultInjection(t *testing.T) {
	rec := NewRecorder(Config{})
	var wedged atomic.Bool
	w := NewWatchdog(rec, quietLogger(), time.Second, Check{
		Name: "consumer_wedged",
		Probe: func() (bool, string) {
			if wedged.Load() {
				return true, "mailbox pinned at capacity"
			}
			return false, ""
		},
	})

	w.Tick()
	if v := w.Verdict(); v != "ok" {
		t.Fatalf("healthy verdict = %q, want ok", v)
	}
	if w.Stalled("consumer_wedged") || w.Stalls("consumer_wedged") != 0 {
		t.Fatal("stall state set before the fault")
	}

	wedged.Store(true)
	w.Tick()
	w.Tick() // steady stalled state: no second event, no second transition
	if !w.Stalled("consumer_wedged") {
		t.Error("gauge state not stalled after the fault")
	}
	if got := w.Stalls("consumer_wedged"); got != 1 {
		t.Errorf("stall transitions = %d, want 1 (steady state must not re-count)", got)
	}
	if v := w.Verdict(); v != "stalled: consumer_wedged (mailbox pinned at capacity)" {
		t.Errorf("verdict = %q", v)
	}
	if got := rec.EventCount(EventWatchdog); got != 1 {
		t.Errorf("watchdog events = %d, want 1", got)
	}

	wedged.Store(false)
	w.Tick()
	if w.Stalled("consumer_wedged") {
		t.Error("gauge state still stalled after recovery")
	}
	if v := w.Verdict(); v != "ok" {
		t.Errorf("verdict after recovery = %q, want ok", v)
	}
	if got := rec.EventCount(EventWatchdog); got != 2 {
		t.Errorf("watchdog events = %d, want 2 (stall + recovery)", got)
	}
	evs := rec.Events()
	if len(evs) != 2 {
		t.Fatalf("ring holds %d events, want 2", len(evs))
	}
	if evs[0].Msg != "consumer_wedged stalled: mailbox pinned at capacity" {
		t.Errorf("stall event msg = %q", evs[0].Msg)
	}
	if evs[1].Msg != "consumer_wedged recovered" {
		t.Errorf("recovery event msg = %q", evs[1].Msg)
	}
	if got := w.Ticks(); got != 4 {
		t.Errorf("ticks = %d, want 4", got)
	}
}

// TestWatchdogMultipleChecks: the verdict lists every stalled check.
func TestWatchdogMultipleChecks(t *testing.T) {
	var a, b atomic.Bool
	w := NewWatchdog(nil, quietLogger(), time.Second,
		Check{Name: "alpha", Probe: func() (bool, string) { return a.Load(), "a-detail" }},
		Check{Name: "beta", Probe: func() (bool, string) { return b.Load(), "" }},
	)
	a.Store(true)
	b.Store(true)
	w.Tick()
	if v := w.Verdict(); v != "stalled: alpha (a-detail), beta" {
		t.Errorf("verdict = %q", v)
	}
	if got := w.Names(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Errorf("names = %v", got)
	}
	b.Store(false)
	w.Tick()
	if v := w.Verdict(); v != "stalled: alpha (a-detail)" {
		t.Errorf("verdict = %q", v)
	}
}

// TestWatchdogStartClose: the background loop ticks on its own and Close
// is idempotent, including before Start.
func TestWatchdogStartClose(t *testing.T) {
	w := NewWatchdog(nil, quietLogger(), time.Millisecond,
		Check{Name: "noop", Probe: func() (bool, string) { return false, "" }})
	w.Start()
	deadline := time.After(5 * time.Second)
	for w.Ticks() == 0 {
		select {
		case <-deadline:
			t.Fatal("no tick within 5s at 1ms interval")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	w.Close()
	w.Close() // idempotent

	unstarted := NewWatchdog(nil, quietLogger(), time.Millisecond)
	unstarted.Close() // must not hang

	var nilDog *Watchdog
	nilDog.Start()
	nilDog.Tick()
	nilDog.Close()
	if v := nilDog.Verdict(); v != "ok" {
		t.Errorf("nil watchdog verdict = %q, want ok", v)
	}
}
