// Package flight is the pipeline's flight recorder: the always-on,
// bounded-memory record of "what just happened" that aggregate metrics
// cannot answer. It holds three instruments:
//
//   - a lock-free ring of timestamped operational events (repartitions,
//     checkpoint begin/end, compactor passes, retention prunes, spout
//     throttle saturation, archive errors, watchdog verdicts);
//   - sampled per-document span traces: every document is stamped at the
//     spout and provisionally traced through partition → disseminate →
//     calculate → track → trend → archive; deterministic 1-in-N head
//     sampling plus tail-based retention of the K slowest documents per
//     window decide which traces survive;
//   - a watchdog (watchdog.go) that turns live counters into stall
//     verdicts.
//
// Everything is sized up front and overwrites oldest-first, so the
// recorder is safe to leave on in production: the hot-path cost is one
// atomic claim per event and a sharded map insert per traced span.
package flight

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Event kinds recorded into the operational ring. The set is closed so
// the per-kind counter families can be pre-registered (promcheck can then
// -require them before any event fires).
const (
	EventRepartition       = "repartition"
	EventCheckpointBegin   = "checkpoint_begin"
	EventCheckpointEnd     = "checkpoint_end"
	EventCompaction        = "compaction"
	EventRetentionPrune    = "retention_prune"
	EventThrottleSaturated = "throttle_saturated"
	EventArchiveError      = "archive_error"
	EventWatchdog          = "watchdog"
)

// EventKinds lists every event kind in a stable order for metric
// registration and dump formatting.
var EventKinds = []string{
	EventRepartition,
	EventCheckpointBegin,
	EventCheckpointEnd,
	EventCompaction,
	EventRetentionPrune,
	EventThrottleSaturated,
	EventArchiveError,
	EventWatchdog,
}

// Pipeline stages in span order. Stage names double as the JSON stage
// field on /debug/traces/{id}.
const (
	StageSpout       = "spout"
	StagePartition   = "partition"
	StageDisseminate = "disseminate"
	StageCalculate   = "calculate"
	StageTrack       = "track"
	StageTrend       = "trend"
	StageArchive     = "archive"
)

// stageRank orders spans for display and completeness checks.
var stageRank = map[string]int{
	StageSpout:       0,
	StagePartition:   1,
	StageDisseminate: 2,
	StageCalculate:   3,
	StageTrack:       4,
	StageTrend:       5,
	StageArchive:     6,
}

// Event is one operational occurrence. At is a telemetry.Now stamp
// (monotonic ns since process start); Seq totally orders events across
// writers.
type Event struct {
	Seq  uint64
	At   int64
	Kind string
	Msg  string
}

// Span is one pipeline stage's contribution to a document trace. Start
// and End are telemetry.Now stamps. Count is how many times the stage
// observed the document (a disseminator may notify several calculators;
// a calculator flush may carry many coefficients): repeats extend End
// and bump Count rather than appending duplicate spans.
type Span struct {
	Stage string `json:"stage"`
	Start int64  `json:"start_ns"`
	End   int64  `json:"end_ns"`
	Count int    `json:"count"`
}

// Trace is the span record of a single sampled document. ID is the
// 1-based document index assigned at the spout, which makes head
// sampling ("every N-th document") deterministic across runs.
type Trace struct {
	ID       uint64 `json:"id"`
	Sampled  bool   `json:"sampled"`  // head-sampled: retained regardless of speed
	Retained string `json:"retained"` // "", "sample" or "slow" once finalized
	Ingest   int64  `json:"ingest_ns"`
	Spans    []Span `json:"spans"`
	last     int64  // max span End seen; duration = last - Ingest
}

// Duration returns ns from ingest to the latest span end.
func (t *Trace) Duration() int64 {
	if t.last <= t.Ingest {
		return 0
	}
	return t.last - t.Ingest
}

// Complete reports whether the trace covers the mandatory document path
// (spout through calculate). Track/trend/archive spans only exist for
// documents whose window flushed while they were traced, so they are
// informative but not required.
func (t *Trace) Complete() bool {
	var seen [4]bool
	for _, s := range t.Spans {
		if r, ok := stageRank[s.Stage]; ok && r < len(seen) {
			seen[r] = true
		}
	}
	return seen[0] && seen[1] && seen[2] && seen[3]
}

func (t *Trace) sortSpans() {
	sort.SliceStable(t.Spans, func(i, j int) bool {
		ri, rj := stageRank[t.Spans[i].Stage], stageRank[t.Spans[j].Stage]
		if ri != rj {
			return ri < rj
		}
		return t.Spans[i].Start < t.Spans[j].Start
	})
}

// Config sizes a Recorder. The zero value of every field selects a
// sensible default; Sample <= 0 disables document tracing entirely while
// keeping the event ring live.
type Config struct {
	// Sample retains every Sample-th document's trace unconditionally
	// (deterministic head sampling by doc index). <= 0 disables tracing.
	Sample int
	// SlowMS is the tail-retention threshold: a finalized trace at least
	// this slow competes for the per-window slow slots. 0 means 250ms.
	SlowMS int64
	// SlowK is how many slowest traces are retained per window (default 8).
	SlowK int
	// Window is the rotation width in documents (default 4096): traces
	// are finalized — retained or discarded — one full window after
	// their own window closes, giving in-flight spans time to land.
	Window int
	// ActiveCap bounds the provisional (not yet finalized) trace table
	// (default 16384). When full, non-head-sampled documents go untraced.
	ActiveCap int
	// DoneCap bounds retained finalized traces, FIFO (default 256).
	DoneCap int
	// Events is the event-ring capacity, rounded up to a power of two
	// (default 1024).
	Events int
}

func (c Config) withDefaults() Config {
	if c.SlowMS == 0 {
		c.SlowMS = 250
	}
	if c.SlowK <= 0 {
		c.SlowK = 8
	}
	if c.Window <= 0 {
		c.Window = 4096
	}
	if c.ActiveCap <= 0 {
		c.ActiveCap = 16384
	}
	if c.DoneCap <= 0 {
		c.DoneCap = 256
	}
	if c.Events <= 0 {
		c.Events = 1024
	}
	return c
}

const traceShards = 16

type traceShard struct {
	mu sync.Mutex
	m  map[uint64]*Trace
}

// Recorder is the flight recorder. All methods are safe on a nil
// receiver (no-ops / zero values), so callers thread a possibly-nil
// *Recorder without guards. All methods are safe for concurrent use.
type Recorder struct {
	cfg    Config
	slowNS int64

	// Event ring: writers claim a slot with one atomic add and publish
	// the event with one atomic pointer store; readers snapshot the
	// sequence and collect whatever slots still hold in-range events.
	// No locks, no torn reads (each slot is a whole-pointer swap).
	ring []atomic.Pointer[Event]
	mask uint64
	seq  atomic.Uint64

	evCounts map[string]*atomic.Int64
	evOther  atomic.Int64 // events with a kind outside EventKinds

	shards [traceShards]traceShard

	rotMu      sync.Mutex
	lastWindow uint64

	doneMu    sync.Mutex
	done      map[uint64]*Trace
	doneOrder []uint64

	started      atomic.Int64 // documents seen at the spout (traced or not)
	traced       atomic.Int64 // documents granted a trace slot
	keptSample   atomic.Int64
	keptSlow     atomic.Int64
	discarded    atomic.Int64
	activeCount  atomic.Int64
	droppedFull  atomic.Int64 // non-sampled docs refused a slot: table full
	lateSpans    atomic.Int64 // spans arriving after their trace finalized
	spansWritten atomic.Int64
}

// NewRecorder builds a Recorder; cfg fields at zero take defaults.
func NewRecorder(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	n := 1
	for n < cfg.Events {
		n <<= 1
	}
	r := &Recorder{
		cfg:      cfg,
		slowNS:   cfg.SlowMS * 1e6,
		ring:     make([]atomic.Pointer[Event], n),
		mask:     uint64(n - 1),
		evCounts: make(map[string]*atomic.Int64, len(EventKinds)),
		done:     make(map[uint64]*Trace),
	}
	for _, k := range EventKinds {
		r.evCounts[k] = new(atomic.Int64)
	}
	for i := range r.shards {
		r.shards[i].m = make(map[uint64]*Trace)
	}
	return r
}

// RecordEvent appends a timestamped event to the ring, overwriting the
// oldest entry when full.
func (r *Recorder) RecordEvent(kind, msg string) {
	if r == nil {
		return
	}
	e := &Event{At: telemetry.Now(), Kind: kind, Msg: msg}
	e.Seq = r.seq.Add(1)
	r.ring[e.Seq&r.mask].Store(e)
	if c, ok := r.evCounts[kind]; ok {
		c.Add(1)
	} else {
		r.evOther.Add(1)
	}
}

// Events returns the ring's current contents, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	hi := r.seq.Load()
	lo := uint64(1)
	if n := uint64(len(r.ring)); hi > n {
		lo = hi - n + 1
	}
	out := make([]Event, 0, hi-lo+1)
	for s := lo; s <= hi; s++ {
		if e := r.ring[s&r.mask].Load(); e != nil && e.Seq >= lo && e.Seq <= hi {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// EventCount returns how many events of the kind were ever recorded
// (including ones since overwritten in the ring).
func (r *Recorder) EventCount(kind string) int64 {
	if r == nil {
		return 0
	}
	if c, ok := r.evCounts[kind]; ok {
		return c.Load()
	}
	return r.evOther.Load()
}

func (r *Recorder) shard(id uint64) *traceShard {
	return &r.shards[id%traceShards]
}

// Begin registers one document arriving at the spout and returns its
// trace ID (the 1-based doc index) if the document is traced, or 0 if
// not. ingest is the document's telemetry.Now stamp; Begin records the
// spout span. Call it from the spout only: window rotation piggybacks on
// the spout's document counter.
func (r *Recorder) Begin(ingest int64) uint64 {
	if r == nil || r.cfg.Sample <= 0 {
		return 0
	}
	id := uint64(r.started.Add(1))
	r.maybeRotate(id)
	sampled := (id-1)%uint64(r.cfg.Sample) == 0
	if !sampled && r.activeCount.Load() >= int64(r.cfg.ActiveCap) {
		r.droppedFull.Add(1)
		return 0
	}
	t := &Trace{
		ID:      id,
		Sampled: sampled,
		Ingest:  ingest,
		Spans:   []Span{{Stage: StageSpout, Start: ingest, End: ingest, Count: 1}},
		last:    ingest,
	}
	sh := r.shard(id)
	sh.mu.Lock()
	sh.m[id] = t
	sh.mu.Unlock()
	r.activeCount.Add(1)
	r.traced.Add(1)
	r.spansWritten.Add(1)
	return id
}

// Span records one stage observation for trace id. Repeat observations
// of the same stage merge: Start keeps the first, End keeps the max,
// Count increments. id 0 (untraced document) is a no-op.
func (r *Recorder) Span(id uint64, stage string, start, end int64) {
	if r == nil || id == 0 {
		return
	}
	if end < start {
		end = start
	}
	sh := r.shard(id)
	sh.mu.Lock()
	t, ok := sh.m[id]
	if !ok {
		sh.mu.Unlock()
		r.lateSpans.Add(1)
		return
	}
	merged := false
	for i := range t.Spans {
		if t.Spans[i].Stage == stage {
			if end > t.Spans[i].End {
				t.Spans[i].End = end
			}
			t.Spans[i].Count++
			merged = true
			break
		}
	}
	if !merged {
		t.Spans = append(t.Spans, Span{Stage: stage, Start: start, End: end, Count: 1})
	}
	if end > t.last {
		t.last = end
	}
	sh.mu.Unlock()
	if !merged {
		r.spansWritten.Add(1)
	}
}

// maybeRotate finalizes traces once the spout has moved two full windows
// past them: when document id opens window w, every trace from window
// w-2 or older is decided (retained or discarded). The one-window grace
// lets in-flight spans land before the verdict.
func (r *Recorder) maybeRotate(id uint64) {
	w := (id - 1) / uint64(r.cfg.Window)
	if w < 2 {
		return
	}
	r.rotMu.Lock()
	if w <= r.lastWindow {
		r.rotMu.Unlock()
		return
	}
	r.lastWindow = w
	r.rotMu.Unlock()
	r.finalizeThrough((w - 1) * uint64(r.cfg.Window))
}

// FlushAll finalizes every active trace immediately, ignoring the
// rotation grace. Used at shutdown and in tests.
func (r *Recorder) FlushAll() {
	if r == nil {
		return
	}
	r.finalizeThrough(^uint64(0))
}

// finalizeThrough removes every active trace with ID <= cut and decides
// its fate: head-sampled traces are always retained; of the rest, the
// slowest K at or above the slow threshold survive; everything else is
// discarded.
func (r *Recorder) finalizeThrough(cut uint64) {
	var batch []*Trace
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for id, t := range sh.m {
			if id <= cut {
				batch = append(batch, t)
				delete(sh.m, id)
			}
		}
		sh.mu.Unlock()
	}
	if len(batch) == 0 {
		return
	}
	r.activeCount.Add(int64(-len(batch)))

	var keep []*Trace
	var slow []*Trace
	for _, t := range batch {
		if t.Sampled {
			t.Retained = "sample"
			keep = append(keep, t)
		} else if t.Duration() >= r.slowNS {
			slow = append(slow, t)
		} else {
			r.discarded.Add(1)
		}
	}
	sort.Slice(slow, func(i, j int) bool { return slow[i].Duration() > slow[j].Duration() })
	for i, t := range slow {
		if i < r.cfg.SlowK {
			t.Retained = "slow"
			keep = append(keep, t)
		} else {
			r.discarded.Add(1)
		}
	}

	r.doneMu.Lock()
	for _, t := range keep {
		t.sortSpans()
		if t.Retained == "sample" {
			r.keptSample.Add(1)
		} else {
			r.keptSlow.Add(1)
		}
		if _, dup := r.done[t.ID]; !dup {
			r.done[t.ID] = t
			r.doneOrder = append(r.doneOrder, t.ID)
		}
	}
	for len(r.doneOrder) > r.cfg.DoneCap {
		delete(r.done, r.doneOrder[0])
		r.doneOrder = r.doneOrder[1:]
	}
	r.doneMu.Unlock()
}

// TraceSummary is the /debug/traces list entry.
type TraceSummary struct {
	ID         uint64 `json:"id"`
	Sampled    bool   `json:"sampled"`
	Retained   string `json:"retained,omitempty"` // "" = still active
	Spans      int    `json:"spans"`
	Complete   bool   `json:"complete"`
	DurationUS int64  `json:"duration_us"`
}

func summarize(t *Trace) TraceSummary {
	return TraceSummary{
		ID:         t.ID,
		Sampled:    t.Sampled,
		Retained:   t.Retained,
		Spans:      len(t.Spans),
		Complete:   t.Complete(),
		DurationUS: t.Duration() / 1e3,
	}
}

// Traces returns summaries of retained traces (newest first) followed by
// currently active ones, capped at limit (<=0 means 256).
func (r *Recorder) Traces(limit int) []TraceSummary {
	if r == nil {
		return nil
	}
	if limit <= 0 {
		limit = 256
	}
	out := make([]TraceSummary, 0, limit)
	r.doneMu.Lock()
	for i := len(r.doneOrder) - 1; i >= 0 && len(out) < limit; i-- {
		if t, ok := r.done[r.doneOrder[i]]; ok {
			out = append(out, summarize(t))
		}
	}
	r.doneMu.Unlock()
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, t := range sh.m {
			if len(out) >= limit {
				break
			}
			out = append(out, summarize(t))
		}
		sh.mu.Unlock()
	}
	return out
}

// TraceByID returns a copy of the trace (active or retained) with spans
// in pipeline order.
func (r *Recorder) TraceByID(id uint64) (Trace, bool) {
	if r == nil || id == 0 {
		return Trace{}, false
	}
	var found *Trace
	sh := r.shard(id)
	sh.mu.Lock()
	if t, ok := sh.m[id]; ok {
		cp := *t
		cp.Spans = append([]Span(nil), t.Spans...)
		found = &cp
	}
	sh.mu.Unlock()
	if found == nil {
		r.doneMu.Lock()
		if t, ok := r.done[id]; ok {
			cp := *t
			cp.Spans = append([]Span(nil), t.Spans...)
			found = &cp
		}
		r.doneMu.Unlock()
	}
	if found == nil {
		return Trace{}, false
	}
	found.sortSpans()
	return *found, true
}

// Stats is a snapshot of the recorder's counters for metric export.
type Stats struct {
	DocsSeen       int64 // documents stamped at the spout
	TracesStarted  int64 // documents granted a trace slot
	KeptSample     int64
	KeptSlow       int64
	Discarded      int64
	Active         int64 // traces currently provisional
	Retained       int64 // traces currently held in the done store
	DroppedFull    int64 // docs refused a slot because the table was full
	LateSpans      int64
	SpansWritten   int64
	EventsRecorded int64 // total events ever recorded
}

// Snapshot returns current counter values; zero-valued on nil.
func (r *Recorder) Snapshot() Stats {
	if r == nil {
		return Stats{}
	}
	r.doneMu.Lock()
	retained := int64(len(r.doneOrder))
	r.doneMu.Unlock()
	return Stats{
		DocsSeen:       r.started.Load(),
		TracesStarted:  r.traced.Load(),
		KeptSample:     r.keptSample.Load(),
		KeptSlow:       r.keptSlow.Load(),
		Discarded:      r.discarded.Load(),
		Active:         r.activeCount.Load(),
		Retained:       retained,
		DroppedFull:    r.droppedFull.Load(),
		LateSpans:      r.lateSpans.Load(),
		SpansWritten:   r.spansWritten.Load(),
		EventsRecorded: int64(r.seq.Load()),
	}
}
