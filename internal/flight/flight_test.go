package flight

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// TestNilRecorder: every method must be a safe no-op on a nil receiver,
// because operators thread a possibly-nil *Recorder without guards.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.RecordEvent(EventRepartition, "x")
	if got := r.Events(); got != nil {
		t.Errorf("nil.Events() = %v, want nil", got)
	}
	if got := r.EventCount(EventRepartition); got != 0 {
		t.Errorf("nil.EventCount = %d, want 0", got)
	}
	if id := r.Begin(telemetry.Now()); id != 0 {
		t.Errorf("nil.Begin = %d, want 0", id)
	}
	r.Span(1, StagePartition, 0, 1)
	r.FlushAll()
	if got := r.Traces(0); got != nil {
		t.Errorf("nil.Traces = %v, want nil", got)
	}
	if _, ok := r.TraceByID(1); ok {
		t.Error("nil.TraceByID found a trace")
	}
	if st := r.Snapshot(); st != (Stats{}) {
		t.Errorf("nil.Snapshot = %+v, want zero", st)
	}
}

// TestEventRingOverwrite fills the ring past capacity and checks the
// reader sees exactly the newest window, oldest first, with contiguous
// sequence numbers, while the per-kind counters keep the full totals.
func TestEventRingOverwrite(t *testing.T) {
	r := NewRecorder(Config{Events: 8})
	const total = 20
	for i := 0; i < total; i++ {
		r.RecordEvent(EventCompaction, fmt.Sprintf("pass %d", i))
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("ring holds %d events, want 8", len(evs))
	}
	for i, e := range evs {
		want := uint64(total - 8 + 1 + i)
		if e.Seq != want {
			t.Errorf("event[%d].Seq = %d, want %d", i, e.Seq, want)
		}
		if e.Kind != EventCompaction {
			t.Errorf("event[%d].Kind = %q", i, e.Kind)
		}
	}
	if got := r.EventCount(EventCompaction); got != total {
		t.Errorf("EventCount = %d, want %d (counter survives overwrites)", got, total)
	}
	if got := r.Snapshot().EventsRecorded; got != total {
		t.Errorf("Snapshot.EventsRecorded = %d, want %d", got, total)
	}
}

// TestEventRingConcurrent hammers the ring from many writers while a
// reader snapshots it. Run under -race this is the lock-freedom proof:
// no torn reads, every snapshot is a consistent window of whole events.
func TestEventRingConcurrent(t *testing.T) {
	r := NewRecorder(Config{Events: 64})
	const writers, each = 8, 500
	stopRead := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			evs := r.Events()
			for i := 1; i < len(evs); i++ {
				if evs[i].Seq <= evs[i-1].Seq {
					t.Errorf("snapshot out of order: seq %d after %d", evs[i].Seq, evs[i-1].Seq)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.RecordEvent(EventThrottleSaturated, fmt.Sprintf("w%d-%d", w, i))
			}
		}(w)
	}
	wg.Wait()
	close(stopRead)
	<-readerDone
	if got := r.EventCount(EventThrottleSaturated); got != writers*each {
		t.Errorf("EventCount = %d, want %d", got, writers*each)
	}
	if got := len(r.Events()); got != 64 {
		t.Errorf("final ring holds %d events, want 64", got)
	}
}

// feedDoc pushes one document through spout..calculate with synthetic
// stamps: each stage takes stageDurNS. Returns the trace id (0: untraced).
func feedDoc(r *Recorder, base int64, stageDurNS int64) uint64 {
	id := r.Begin(base)
	if id == 0 {
		return 0
	}
	at := base
	for _, st := range []string{StagePartition, StageDisseminate, StageCalculate} {
		r.Span(id, st, at, at+stageDurNS)
		at += stageDurNS
	}
	return id
}

// TestHeadSamplingDeterministic: with Sample=N exactly the 1st, N+1st,
// 2N+1st… documents are head-sampled and retained regardless of speed.
func TestHeadSamplingDeterministic(t *testing.T) {
	r := NewRecorder(Config{Sample: 4, SlowMS: 1000})
	base := telemetry.Now()
	var ids []uint64
	for i := 0; i < 12; i++ {
		ids = append(ids, feedDoc(r, base+int64(i)*1000, 10)) // 10ns per stage: fast
	}
	r.FlushAll()

	for i, id := range ids {
		tr, ok := r.TraceByID(id)
		if i%4 == 0 {
			if !ok {
				t.Errorf("doc %d (head-sampled) not retained", id)
				continue
			}
			if !tr.Sampled || tr.Retained != "sample" {
				t.Errorf("doc %d: Sampled=%v Retained=%q, want head sample", id, tr.Sampled, tr.Retained)
			}
		} else if ok {
			t.Errorf("fast unsampled doc %d retained (%q), want discarded", id, tr.Retained)
		}
	}
	st := r.Snapshot()
	if st.KeptSample != 3 || st.Discarded != 9 {
		t.Errorf("kept_sample=%d discarded=%d, want 3 and 9", st.KeptSample, st.Discarded)
	}
}

// TestTailRetentionKeepsSlowDoc is the acceptance check from the issue: a
// deliberately delayed document survives finalization while fast
// unsampled neighbours are discarded.
func TestTailRetentionKeepsSlowDoc(t *testing.T) {
	// Sample=1000 so none of the 10 docs is head-sampled; SlowMS=50 so
	// only the delayed one clears the threshold.
	r := NewRecorder(Config{Sample: 1000, SlowMS: 50, SlowK: 2})
	base := telemetry.Now()
	r.Begin(base) // doc 1 IS head-sampled ((1-1)%1000==0); it plays the control
	var slowID uint64
	for i := 0; i < 10; i++ {
		d := int64(10) // 10ns per stage: far under 50ms
		if i == 5 {
			d = 60 * 1e6 // 60ms per stage: the deliberately delayed document
		}
		id := feedDoc(r, base+int64(i+1)*1000, d)
		if i == 5 {
			slowID = id
		}
	}
	r.FlushAll()

	tr, ok := r.TraceByID(slowID)
	if !ok {
		t.Fatalf("slow doc %d not retained", slowID)
	}
	if tr.Retained != "slow" || tr.Sampled {
		t.Errorf("slow doc: Retained=%q Sampled=%v, want tail-retained slow", tr.Retained, tr.Sampled)
	}
	st := r.Snapshot()
	if st.KeptSlow != 1 {
		t.Errorf("kept_slow = %d, want 1", st.KeptSlow)
	}
	// 11 docs total: 1 head-sampled, 1 slow, 9 fast unsampled discarded.
	if st.KeptSample != 1 || st.Discarded != 9 {
		t.Errorf("kept_sample=%d discarded=%d, want 1 and 9", st.KeptSample, st.Discarded)
	}
}

// TestSlowKBound: more slow docs than SlowK keeps only the K slowest.
func TestSlowKBound(t *testing.T) {
	r := NewRecorder(Config{Sample: 1 << 30, SlowMS: 1, SlowK: 2})
	base := telemetry.Now()
	r.Begin(base) // head-sampled doc 1
	var ids []uint64
	durs := []int64{5e6, 9e6, 3e6, 7e6} // all above 1ms
	for i, d := range durs {
		ids = append(ids, feedDoc(r, base+int64(i+1)*1000, d))
	}
	r.FlushAll()
	// The two slowest are durs[1] (9ms/stage) and durs[3] (7ms/stage).
	for i, id := range ids {
		_, ok := r.TraceByID(id)
		want := i == 1 || i == 3
		if ok != want {
			t.Errorf("slow doc %d (dur %dns/stage): retained=%v, want %v", id, durs[i], ok, want)
		}
	}
}

// TestSpanMerge: repeat observations of one stage keep the first start,
// extend the end and bump the count instead of duplicating spans.
func TestSpanMerge(t *testing.T) {
	r := NewRecorder(Config{Sample: 1})
	base := telemetry.Now()
	id := r.Begin(base)
	r.Span(id, StageDisseminate, base+10, base+20)
	r.Span(id, StageDisseminate, base+15, base+40)
	r.Span(id, StageDisseminate, base+18, base+30)
	tr, ok := r.TraceByID(id)
	if !ok {
		t.Fatal("trace missing")
	}
	var got *Span
	for i := range tr.Spans {
		if tr.Spans[i].Stage == StageDisseminate {
			if got != nil {
				t.Fatal("duplicate disseminate spans; want one merged span")
			}
			got = &tr.Spans[i]
		}
	}
	if got == nil {
		t.Fatal("no disseminate span")
	}
	if got.Start != base+10 || got.End != base+40 || got.Count != 3 {
		t.Errorf("merged span = start+%d end+%d count %d, want +10 +40 3",
			got.Start-base, got.End-base, got.Count)
	}
}

// TestSpanOrderingAndCompleteness: TraceByID returns spans in pipeline
// order and Complete flips once spout..calculate are all present.
func TestSpanOrderingAndCompleteness(t *testing.T) {
	r := NewRecorder(Config{Sample: 1})
	base := telemetry.Now()
	id := r.Begin(base)
	// Record out of pipeline order on purpose.
	r.Span(id, StageCalculate, base+30, base+40)
	r.Span(id, StagePartition, base+10, base+15)
	tr, _ := r.TraceByID(id)
	if tr.Complete() {
		t.Error("trace complete without a disseminate span")
	}
	r.Span(id, StageDisseminate, base+16, base+25)
	r.Span(id, StageTrack, base+41, base+50)
	tr, _ = r.TraceByID(id)
	if !tr.Complete() {
		t.Error("trace with spout..calculate spans not complete")
	}
	want := []string{StageSpout, StagePartition, StageDisseminate, StageCalculate, StageTrack}
	if len(tr.Spans) != len(want) {
		t.Fatalf("got %d spans, want %d", len(tr.Spans), len(want))
	}
	for i, st := range want {
		if tr.Spans[i].Stage != st {
			t.Errorf("span[%d] = %s, want %s", i, tr.Spans[i].Stage, st)
		}
		if i > 0 && tr.Spans[i].Start < tr.Spans[i-1].Start {
			t.Errorf("span starts not monotone at %d: %d < %d", i, tr.Spans[i].Start, tr.Spans[i-1].Start)
		}
	}
}

// TestLateSpanCounted: spans for a finalized (or never-traced) id land in
// the late-spans counter instead of resurrecting the trace.
func TestLateSpanCounted(t *testing.T) {
	r := NewRecorder(Config{Sample: 1})
	base := telemetry.Now()
	id := r.Begin(base)
	r.FlushAll()
	r.Span(id, StageTrack, base+10, base+20)
	if got := r.Snapshot().LateSpans; got != 1 {
		t.Errorf("late spans = %d, want 1", got)
	}
	tr, ok := r.TraceByID(id)
	if !ok {
		t.Fatal("finalized sampled trace missing from done store")
	}
	for _, s := range tr.Spans {
		if s.Stage == StageTrack {
			t.Error("late span reached the finalized trace")
		}
	}
}

// TestWindowRotation: with Window=4 the verdict for window w's traces
// falls when a document of window w+2 arrives (one-window grace), without
// any FlushAll.
func TestWindowRotation(t *testing.T) {
	r := NewRecorder(Config{Sample: 4, Window: 4, SlowMS: 1000})
	base := telemetry.Now()
	// Docs 1..4 fill window 0; docs 5..8 window 1. Nothing finalizes yet.
	for i := 0; i < 8; i++ {
		feedDoc(r, base+int64(i)*1000, 10)
	}
	if st := r.Snapshot(); st.KeptSample+st.Discarded != 0 {
		t.Fatalf("finalized %d traces before window 2 opened", st.KeptSample+st.Discarded)
	}
	// Doc 9 opens window 2: window 0 (ids 1..4) is decided.
	feedDoc(r, base+9000, 10)
	st := r.Snapshot()
	if st.KeptSample != 1 || st.Discarded != 3 {
		t.Errorf("after rotation: kept_sample=%d discarded=%d, want 1 and 3 (ids 1..4)", st.KeptSample, st.Discarded)
	}
	if _, ok := r.TraceByID(5); !ok {
		t.Error("window-1 trace finalized too early (grace window violated)")
	}
}

// TestActiveCapSheds: when the provisional table is full, unsampled
// documents go untraced (Begin returns 0) but head-sampled ones still get
// a slot.
func TestActiveCapSheds(t *testing.T) {
	r := NewRecorder(Config{Sample: 4, ActiveCap: 2, Window: 1 << 20})
	base := telemetry.Now()
	got := make([]uint64, 0, 8)
	for i := 0; i < 8; i++ {
		got = append(got, r.Begin(base+int64(i)))
	}
	// Doc 1 (sampled) and doc 2 fill the table; docs 3,4 (unsampled) are
	// shed; doc 5 is head-sampled so it bypasses the cap.
	if got[0] == 0 || got[1] == 0 {
		t.Errorf("first two docs refused a slot: %v", got)
	}
	if got[2] != 0 || got[3] != 0 {
		t.Errorf("unsampled docs traced past ActiveCap: %v", got)
	}
	if got[4] == 0 {
		t.Errorf("head-sampled doc 5 refused a slot: %v", got)
	}
	if st := r.Snapshot(); st.DroppedFull == 0 {
		t.Error("DroppedFull not counted")
	}
}

// TestDoneCapFIFO: the retained store is bounded and evicts oldest-first.
func TestDoneCapFIFO(t *testing.T) {
	r := NewRecorder(Config{Sample: 1, DoneCap: 3})
	base := telemetry.Now()
	for i := 0; i < 5; i++ {
		r.Begin(base + int64(i))
		r.FlushAll()
	}
	if st := r.Snapshot(); st.Retained != 3 {
		t.Errorf("retained = %d, want DoneCap 3", st.Retained)
	}
	if _, ok := r.TraceByID(1); ok {
		t.Error("oldest trace survived past DoneCap")
	}
	if _, ok := r.TraceByID(5); !ok {
		t.Error("newest trace missing")
	}
	if got := len(r.Traces(0)); got != 3 {
		t.Errorf("Traces lists %d entries, want 3", got)
	}
}

// TestSamplingDisabled: Sample<=0 turns tracing off entirely while the
// event ring keeps working.
func TestSamplingDisabled(t *testing.T) {
	r := NewRecorder(Config{Sample: 0})
	if id := r.Begin(telemetry.Now()); id != 0 {
		t.Errorf("Begin = %d with sampling off, want 0", id)
	}
	r.RecordEvent(EventArchiveError, "boom")
	if got := r.EventCount(EventArchiveError); got != 1 {
		t.Errorf("event ring dead with sampling off: count %d", got)
	}
}
