package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestGiniBalanced(t *testing.T) {
	if g := Gini([]float64{5, 5, 5, 5}); !approx(g, 0, 1e-12) {
		t.Errorf("Gini balanced = %g, want 0", g)
	}
}

func TestGiniAllOnOne(t *testing.T) {
	// One node has everything: G = 1 - 1/n.
	g := Gini([]float64{0, 0, 0, 10})
	if !approx(g, 0.75, 1e-12) {
		t.Errorf("Gini = %g, want 0.75", g)
	}
}

func TestGiniKnownValue(t *testing.T) {
	// {1,3}: mean abs diff = 2, mean = 2, G = 2/(2*2*2) ... use direct formula:
	// G for {1,3} = (2*(1*1+2*3))/(2*4) - 3/2 = 14/8 - 1.5 = 0.25.
	if g := Gini([]float64{1, 3}); !approx(g, 0.25, 1e-12) {
		t.Errorf("Gini({1,3}) = %g, want 0.25", g)
	}
}

func TestGiniEdgeCases(t *testing.T) {
	if Gini(nil) != 0 {
		t.Error("Gini(nil) != 0")
	}
	if Gini([]float64{0, 0}) != 0 {
		t.Error("Gini(zeros) != 0")
	}
	if g := GiniInts([]int64{1, 3}); !approx(g, 0.25, 1e-12) {
		t.Errorf("GiniInts = %g", g)
	}
}

func TestGiniScaleInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		vals := make([]float64, 1+r.Intn(20))
		for j := range vals {
			vals[j] = r.Float64() * 100
		}
		g1 := Gini(vals)
		scaled := make([]float64, len(vals))
		for j := range vals {
			scaled[j] = vals[j] * 7.5
		}
		if !approx(g1, Gini(scaled), 1e-9) {
			t.Fatalf("Gini not scale invariant: %g vs %g", g1, Gini(scaled))
		}
		if g1 < 0 || g1 >= 1 {
			t.Fatalf("Gini out of range: %g", g1)
		}
	}
}

func TestLorenz(t *testing.T) {
	l := Lorenz([]float64{1, 1, 2})
	want := []float64{0.25, 0.5, 1}
	for i := range want {
		if !approx(l[i], want[i], 1e-12) {
			t.Fatalf("Lorenz = %v, want %v", l, want)
		}
	}
	if Lorenz(nil) != nil {
		t.Error("Lorenz(nil) != nil")
	}
}

func TestMeanVariance(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); !approx(m, 2, 1e-12) {
		t.Errorf("Mean = %g", m)
	}
	if v := Variance([]float64{1, 2, 3}); !approx(v, 2.0/3.0, 1e-12) {
		t.Errorf("Variance = %g", v)
	}
	if Mean(nil) != 0 || Variance([]float64{5}) != 0 {
		t.Error("edge cases wrong")
	}
}

func TestMaxShare(t *testing.T) {
	if s := MaxShare([]float64{1, 1, 2}); !approx(s, 0.5, 1e-12) {
		t.Errorf("MaxShare = %g, want 0.5", s)
	}
	if MaxShare([]float64{0, 0}) != 0 {
		t.Error("MaxShare zeros != 0")
	}
	if s := MaxShareInts([]int64{3, 1}); !approx(s, 0.75, 1e-12) {
		t.Errorf("MaxShareInts = %g", s)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	vals := make([]float64, 1000)
	var w Welford
	for i := range vals {
		vals[i] = r.NormFloat64()*3 + 10
		w.Add(vals[i])
	}
	if !approx(w.Mean(), Mean(vals), 1e-9) {
		t.Errorf("Welford mean %g vs batch %g", w.Mean(), Mean(vals))
	}
	if !approx(w.Variance(), Variance(vals), 1e-9) {
		t.Errorf("Welford var %g vs batch %g", w.Variance(), Variance(vals))
	}
	if w.N() != 1000 {
		t.Errorf("N = %d", w.N())
	}
	if !approx(w.Stddev()*w.Stddev(), w.Variance(), 1e-9) {
		t.Error("Stddev inconsistent")
	}
	w.Reset()
	if w.N() != 0 || w.Mean() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Record(1, 10)
	s.Record(2, 20)
	s.Record(3, 6)
	s.Mark(2.5)
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if !approx(s.MeanY(), 12, 1e-12) {
		t.Errorf("MeanY = %g", s.MeanY())
	}
	if s.MinY() != 6 || s.MaxY() != 20 {
		t.Errorf("MinY/MaxY = %g/%g", s.MinY(), s.MaxY())
	}
	if len(s.Marks) != 1 || s.Marks[0] != 2.5 {
		t.Errorf("Marks = %v", s.Marks)
	}
	var empty Series
	if empty.MeanY() != 0 || empty.MinY() != 0 || empty.MaxY() != 0 {
		t.Error("empty series stats wrong")
	}
}

// Property (testing/quick): Gini is always in [0, 1) and invariant under
// positive scaling, for arbitrary non-negative inputs.
func TestQuickGiniBounds(t *testing.T) {
	f := func(raw []uint16, scale uint8) bool {
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
		}
		g := Gini(vals)
		if g < 0 || g >= 1 {
			return false
		}
		s := 1 + float64(scale)
		scaled := make([]float64, len(vals))
		for i := range vals {
			scaled[i] = vals[i] * s
		}
		return math.Abs(Gini(scaled)-g) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MaxShare is in [0,1] and at least 1/n when any value is
// positive.
func TestQuickMaxShare(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		total := 0.0
		for i, v := range raw {
			vals[i] = float64(v)
			total += vals[i]
		}
		s := MaxShare(vals)
		if total == 0 {
			return s == 0
		}
		return s >= 1/float64(len(vals))-1e-12 && s <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
