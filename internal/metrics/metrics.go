// Package metrics implements the statistical measures of the paper's
// evaluation: the Gini coefficient of per-node processing load (Section
// 8.2.2), average communication (Section 8.2.1), and generic mean/variance
// plus time-series recording used by the figure-over-time experiments.
package metrics

import (
	"math"
	"sort"
)

// Gini returns the Gini coefficient of the given non-negative values,
// the paper's measure of load dispersion (Section 8.2.2). It is 0 for a
// perfectly balanced distribution and approaches 1-1/n for the case where a
// single node carries all the load. It returns 0 for empty input or when all
// values are zero.
func Gini(values []float64) float64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, values)
	sort.Float64s(sorted)
	var sum, weighted float64
	for i, v := range sorted {
		sum += v
		weighted += float64(i+1) * v
	}
	if sum == 0 {
		return 0
	}
	// G = (2 * sum_i i*x_(i) ) / (n * sum x) - (n+1)/n with x sorted ascending.
	return 2*weighted/(float64(n)*sum) - float64(n+1)/float64(n)
}

// GiniInts is Gini for integer counts.
func GiniInts(counts []int64) float64 {
	vals := make([]float64, len(counts))
	for i, c := range counts {
		vals[i] = float64(c)
	}
	return Gini(vals)
}

// Lorenz returns the Lorenz curve of the values: point i is the cumulative
// share of the smallest i+1 values. The curve underlies the Gini definition
// the paper cites.
func Lorenz(values []float64) []float64 {
	n := len(values)
	if n == 0 {
		return nil
	}
	sorted := make([]float64, n)
	copy(sorted, values)
	sort.Float64s(sorted)
	out := make([]float64, n)
	total := 0.0
	for _, v := range sorted {
		total += v
	}
	if total == 0 {
		return out
	}
	cum := 0.0
	for i, v := range sorted {
		cum += v
		out[i] = cum / total
	}
	return out
}

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// Variance returns the population variance, or 0 for fewer than two values.
func Variance(values []float64) float64 {
	if len(values) < 2 {
		return 0
	}
	m := Mean(values)
	s := 0.0
	for _, v := range values {
		d := v - m
		s += d * d
	}
	return s / float64(len(values))
}

// MaxShare returns the largest value's share of the total, the paper's
// maxLoad quality statistic (Section 7.2). It returns 0 when the total is 0.
func MaxShare(values []float64) float64 {
	total, max := 0.0, 0.0
	for _, v := range values {
		total += v
		if v > max {
			max = v
		}
	}
	if total == 0 {
		return 0
	}
	return max / total
}

// MaxShareInts is MaxShare for integer counts.
func MaxShareInts(counts []int64) float64 {
	vals := make([]float64, len(counts))
	for i, c := range counts {
		vals[i] = float64(c)
	}
	return MaxShare(vals)
}

// Welford accumulates a running mean and variance without storing samples.
// The zero value is ready for use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Stddev returns the running population standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

// Point is one sample of a recorded time series.
type Point struct {
	X float64 // typically processed documents or virtual time
	Y float64
}

// Series records a metric over the run, as used by the "over time" plots
// (Figures 8 and 9). Marks record X positions of events (repartitions).
type Series struct {
	Name   string
	Points []Point
	Marks  []float64
}

// Record appends a sample.
func (s *Series) Record(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// Mark appends an event marker (e.g. a repartition) at position x.
func (s *Series) Mark(x float64) { s.Marks = append(s.Marks, x) }

// Len returns the number of recorded samples.
func (s *Series) Len() int { return len(s.Points) }

// MeanY returns the mean of the recorded Y values.
func (s *Series) MeanY() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.Y
	}
	return sum / float64(len(s.Points))
}

// MinY and MaxY return the extremes of the recorded Y values (0 if empty).
func (s *Series) MinY() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := s.Points[0].Y
	for _, p := range s.Points[1:] {
		if p.Y < m {
			m = p.Y
		}
	}
	return m
}

// MaxY returns the maximum recorded Y value (0 if empty).
func (s *Series) MaxY() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := s.Points[0].Y
	for _, p := range s.Points[1:] {
		if p.Y > m {
			m = p.Y
		}
	}
	return m
}
