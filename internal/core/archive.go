package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/stream"
	"repro/internal/tagset"
)

// This file wires the archive subsystem (internal/archive) into the
// pipeline: a cursor-tracking source wrapper, the checkpoint path, and the
// restore path a restarted service recovers through.
//
// The recovery protocol in one paragraph: a checkpoint never contains a
// partial reporting period. When the Tracker registers a brand-new period
// P (meaning period P-… just produced its first flush and P's documents
// are flowing), the checkpointer cuts the state strictly before P and
// records ReplayFrom — the stream index of P's first document. A restarted
// process imports the cut, skips ReplayFrom documents of its rebuilt
// source, and feeds the rest: the Calculators recount period P from
// scratch (their tables are period-scoped, so nothing else is needed),
// the Tracker's CN-max dedup absorbs any overlap, and the trend
// predictors — exported rolled back to their pre-P state — re-advance
// identically. On a deterministic or replayable source the recovered run
// is indistinguishable from one that never stopped, as long as the
// partition assignment was stable across the replayed window (repartition
// decisions depend on monitoring state that restarts empty).

// sourceCursor counts the documents a pipeline's source has produced and
// remembers, per reporting period, the stream index of the period's first
// document — the ReplayFrom value checkpoints record.
type sourceCursor struct {
	every stream.Millis

	mu       sync.Mutex
	base     int64           // documents skipped before this process fed any
	fed      int64           // documents fed by this process
	firstDoc map[int64]int64 // period id -> absolute index of its first document
}

func newSourceCursor(every stream.Millis) *sourceCursor {
	return &sourceCursor{every: every, firstDoc: make(map[int64]int64)}
}

// wrap interposes the cursor on a document source.
func (c *sourceCursor) wrap(src DocumentSource) DocumentSource {
	return func() (stream.Document, bool) {
		d, ok := src()
		if !ok {
			return d, ok
		}
		c.mu.Lock()
		idx := c.base + c.fed
		c.fed++
		// A document at time t belongs to the period ending at
		// alignUp(t, every), i.e. period id t/every + 1.
		period := int64(d.Time/c.every) + 1
		if _, seen := c.firstDoc[period]; !seen {
			c.firstDoc[period] = idx
		}
		c.mu.Unlock()
		return d, true
	}
}

// cut returns the checkpoint cursor for a cut at replayPeriod: the total
// documents produced and the index replay must resume from. Entries below
// the cut are pruned (they can never be replayed again).
func (c *sourceCursor) cut(replayPeriod int64) (docsFed, replayFrom int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	docsFed = c.base + c.fed
	var ok bool
	if replayFrom, ok = c.firstDoc[replayPeriod]; !ok {
		// No document of the cut period passed this process's source —
		// nothing has been flushed yet, or the cut period came entirely out
		// of an imported checkpoint. Resuming where this process resumed is
		// always safe: replay can only overlap, never skip.
		replayFrom = c.base
		return docsFed, replayFrom
	}
	for p := range c.firstDoc {
		if p < replayPeriod {
			delete(c.firstDoc, p)
		}
	}
	return docsFed, replayFrom
}

// onPeriodOpen is the Tracker's period hook: every cfg.CheckpointEvery
// freshly opened periods, write a checkpoint. It runs synchronously on the
// reporting task's goroutine — before the new period's first coefficient
// is recorded — which is exactly what makes the no-partial-periods cut
// exact on the deterministic executor and crash-consistent on the
// concurrent one. Checkpoint errors are remembered for ArchiveErr rather
// than propagated into the dataflow.
func (p *Pipeline) onPeriodOpen(period int64) {
	every := p.cfg.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	p.archMu.Lock()
	p.periodsOpened++
	due := p.periodsOpened%int64(every) == 0
	p.archMu.Unlock()
	if !due {
		return
	}
	if err := p.Checkpoint(); err != nil {
		p.archMu.Lock()
		p.archErr = err
		p.archMu.Unlock()
	}
}

// Checkpoint writes a recovery point to the archive directory: the state
// of every sealed reporting period, the partitioning layer, the tag
// dictionary and the source cursor. It may be called at any time — before,
// during or after the run — from any goroutine; the tagcorrd daemon calls
// it on SIGTERM before draining, and the pipeline itself checkpoints every
// Config.CheckpointEvery periods and once more when the run drains.
func (p *Pipeline) Checkpoint() error {
	if p.arch == nil {
		return fmt.Errorf("core: archive not configured (Config.ArchiveDir)")
	}
	start := time.Now()
	defer func() {
		p.ckptCount.Add(1)
		p.ckptStallNS.Add(time.Since(start).Nanoseconds())
	}()

	// Cut strictly before the newest period the Tracker knows: that period
	// may still be partially flushed (other Calculators get to it when
	// their next notification arrives), so it is replayed, not persisted.
	cut, ok := p.tracker.NewestPeriod()
	if !ok {
		cut = math.MaxInt64 // nothing flushed yet: export the empty state
	}
	cp := &archive.Checkpoint{
		ReplayPeriod: cut,
		Dict:         p.cfg.ArchiveDict.Snapshot(),
		Tracker:      p.tracker.ExportState(cut),
		Partitions:   p.merger.PartitionsSnapshot(),
		Merges:       p.merger.MergeCount(),
	}
	if !ok {
		cp.ReplayPeriod = 0
	}
	cp.DocsFed, cp.ReplayFrom = p.cursor.cut(cut)
	for _, d := range p.disseminators {
		if epoch, _ := d.Epoch(); epoch > cp.Epoch {
			cp.Epoch = epoch
		}
	}
	if len(p.disseminators) > 0 {
		cp.RefAvgCom, cp.RefMaxLoad, cp.HasRef = p.disseminators[0].QualityRefs()
	}
	if p.trends != nil {
		st := p.trends.ExportState(cut)
		cp.Trend = &st
	}
	return p.arch.WriteCheckpoint(cp)
}

// CheckpointStats reports how many checkpoints the pipeline has written so
// far and the cumulative wall time spent writing them. With archiving off
// both are zero. The periodic checkpoints run on a Tracker task's
// goroutine, so the stall total measures time the hot path spent blocked on
// durability — one of the sustained-load quantities cmd/loadgen records.
func (p *Pipeline) CheckpointStats() (count int64, stall time.Duration) {
	return p.ckptCount.Load(), time.Duration(p.ckptStallNS.Load())
}

// ArchiveErr returns the first error the background checkpoint path hit
// (nil when archiving is off or healthy). The daemon surfaces it at
// shutdown.
func (p *Pipeline) ArchiveErr() error {
	p.archMu.Lock()
	defer p.archMu.Unlock()
	return p.archErr
}

// finishArchive writes the end-of-run checkpoint and closes the segment
// files; called once from collect when the stream has drained. After the
// drain the newest Tracker period is the Cleanup-flushed final partial
// period, so the uniform cut rule applies unchanged: that period is
// replayed on the next start.
func (p *Pipeline) finishArchive() {
	if p.arch == nil {
		return
	}
	if err := p.Checkpoint(); err != nil {
		p.archMu.Lock()
		p.archErr = err
		p.archMu.Unlock()
	}
	p.arch.Close()
}

// Recovered is the state core.Restore loaded from an archive directory.
// Use it to rebuild the tag dictionary, fast-forward the rebuilt source,
// and (via Pipeline.Adopt) import the operator state.
type Recovered struct {
	cp   *archive.Checkpoint
	dict *tagset.Dictionary
}

// Restore loads the newest valid checkpoint under dir. It returns
// (nil, nil) when the directory holds no checkpoint — a fresh start — and
// an error when checkpoints exist but none validates.
func Restore(dir string) (*Recovered, error) {
	cp, err := archive.LoadCheckpoint(dir)
	if err != nil || cp == nil {
		return nil, err
	}
	dict := tagset.NewDictionary()
	for _, s := range cp.Dict {
		dict.Intern(s)
	}
	return &Recovered{cp: cp, dict: dict}, nil
}

// Dictionary returns the rebuilt tag dictionary. Build the input source
// with it (and pass it as Config.ArchiveDict) so the stream's tags intern
// to the identifiers the recovered state references.
func (r *Recovered) Dictionary() *tagset.Dictionary { return r.dict }

// SkipDocs returns how many documents of the rebuilt source must be
// discarded before feeding the pipeline — the replay cursor.
func (r *Recovered) SkipDocs() int64 { return r.cp.ReplayFrom }

// Periods returns the recovered reporting period ids, ascending.
func (r *Recovered) Periods() []int64 {
	out := make([]int64, 0, len(r.cp.Tracker.Periods))
	for _, pc := range r.cp.Tracker.Periods {
		out = append(out, pc.Period)
	}
	return out
}

// Epoch returns the recovered partition epoch (0: none installed).
func (r *Recovered) Epoch() int { return r.cp.Epoch }

// FastForward wraps src so its first SkipDocs documents are read and
// discarded (lazily, on the first pull): the replayed stream then starts
// exactly at the recovered cut. The discarded reads re-intern their tags,
// which is harmless — the dictionary already contains them.
func (r *Recovered) FastForward(src DocumentSource) DocumentSource {
	skip := r.cp.ReplayFrom
	done := false
	return func() (stream.Document, bool) {
		if !done {
			done = true
			for i := int64(0); i < skip; i++ {
				if _, ok := src(); !ok {
					break
				}
			}
		}
		return src()
	}
}

// Adopt imports recovered state into a freshly built pipeline. Call it
// between NewPipeline and Start (never on a running pipeline): it loads
// the Tracker's periods and evicted-pair LRU, the trend predictors and
// events, installs the recovered partitions into the Merger and every
// Disseminator (so routing resumes at the recovered epoch instead of
// re-bootstrapping), and seeds the source cursor so the next checkpoint's
// ReplayFrom stays absolute in the original stream.
func (p *Pipeline) Adopt(r *Recovered) error {
	if r == nil {
		return nil
	}
	cp := r.cp
	p.tracker.ImportState(cp.Tracker)
	if cp.Trend != nil && p.trends != nil {
		p.trends.ImportState(*cp.Trend)
	}
	if len(cp.Partitions) > 0 {
		p.merger.RestorePartitions(cp.Partitions, cp.Merges)
		for _, d := range p.disseminators {
			d.RestorePartitions(cp.Epoch, cp.Partitions, cp.RefAvgCom, cp.RefMaxLoad, cp.HasRef)
		}
	}
	if p.cursor != nil {
		p.cursor.mu.Lock()
		p.cursor.base = cp.ReplayFrom
		p.cursor.mu.Unlock()
	}
	return nil
}
