package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/flight"
	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/telemetry"
)

// This file wires the archive subsystem (internal/archive) into the
// pipeline: a cursor-tracking source wrapper, the checkpoint path, and the
// restore path a restarted service recovers through.
//
// The recovery protocol in one paragraph: a checkpoint never contains a
// partial reporting period. When the Tracker registers a brand-new period
// P (meaning period P-… just produced its first flush and P's documents
// are flowing), the checkpointer cuts the state strictly before P and
// records ReplayFrom — the stream index of P's first document. A restarted
// process imports the cut, skips ReplayFrom documents of its rebuilt
// source, and feeds the rest: the Calculators recount period P from
// scratch (their tables are period-scoped, so nothing else is needed),
// the Tracker's CN-max dedup absorbs any overlap, and the trend
// predictors — exported rolled back to their pre-P state — re-advance
// identically. On a deterministic or replayable source the recovered run
// is indistinguishable from one that never stopped, as long as the
// partition assignment was stable across the replayed window (repartition
// decisions depend on monitoring state that restarts empty).

// sourceCursor counts the documents a pipeline's source has produced and
// remembers, per reporting period, the stream index of the period's first
// document — the ReplayFrom value checkpoints record.
type sourceCursor struct {
	every stream.Millis

	mu       sync.Mutex
	base     int64           // documents skipped before this process fed any
	fed      int64           // documents fed by this process
	firstDoc map[int64]int64 // period id -> absolute index of its first document
}

func newSourceCursor(every stream.Millis) *sourceCursor {
	return &sourceCursor{every: every, firstDoc: make(map[int64]int64)}
}

// wrap interposes the cursor on a document source.
func (c *sourceCursor) wrap(src DocumentSource) DocumentSource {
	return func() (stream.Document, bool) {
		d, ok := src()
		if !ok {
			return d, ok
		}
		c.mu.Lock()
		idx := c.base + c.fed
		c.fed++
		// A document at time t belongs to the period ending at
		// alignUp(t, every), i.e. period id t/every + 1.
		period := int64(d.Time/c.every) + 1
		if _, seen := c.firstDoc[period]; !seen {
			c.firstDoc[period] = idx
		}
		c.mu.Unlock()
		return d, true
	}
}

// cut returns the checkpoint cursor for a cut at replayPeriod: the total
// documents produced and the index replay must resume from. Entries below
// the cut are pruned (they can never be replayed again) — on the miss
// branch too, or they accumulate forever on checkpoint-heavy runs that
// keep cutting at periods this cursor never saw a document of.
func (c *sourceCursor) cut(replayPeriod int64) (docsFed, replayFrom int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	docsFed = c.base + c.fed
	replayFrom, ok := c.firstDoc[replayPeriod]
	pruneBelow := replayPeriod
	if !ok {
		// No document of the cut period passed this process's source —
		// nothing has been flushed yet (the MaxInt64 sentinel), or the cut
		// period came entirely out of an imported checkpoint. Resuming
		// where this process resumed is always safe: replay can only
		// overlap, never skip.
		replayFrom = c.base
		// Prune conservatively: drop everything below the newest recorded
		// period but keep that one — period registration lags document
		// flow, so a later cut can still land on it and want its
		// first-document index. Dropping older entries stays safe: a
		// future cut that misses falls back to c.base, which only widens
		// the replay overlap, never skips documents.
		pruneBelow = math.MinInt64
		for p := range c.firstDoc {
			if p > pruneBelow {
				pruneBelow = p
			}
		}
	}
	for p := range c.firstDoc {
		if p < pruneBelow {
			delete(c.firstDoc, p)
		}
	}
	return docsFed, replayFrom
}

// onPeriodOpen is the Tracker's period hook: every cfg.CheckpointEvery
// freshly opened periods, a checkpoint is due. The hook runs on a
// reporting task's goroutine — directly on the hot path — so it does
// nothing but mark the due flag and wake the writer goroutine, which
// builds the snapshot and writes it off the hot path (buildCheckpoint
// only touches mutex-protected state; the synchronous Checkpoint path
// already calls it from arbitrary goroutines). Dues arriving while the
// writer is busy coalesce into one — each snapshot is a complete
// recovery point, so under pressure the periodic cadence degrades to the
// writer's pace instead of stalling ingest. Write errors are remembered
// for ArchiveErr rather than propagated into the dataflow.
func (p *Pipeline) onPeriodOpen(period int64) {
	every := p.cfg.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	p.archMu.Lock()
	p.periodsOpened++
	due := p.periodsOpened%int64(every) == 0
	p.archMu.Unlock()
	if !due {
		return
	}
	start := time.Now()
	p.ckptMu.Lock()
	p.ckptDue = true
	p.ckptCond.Broadcast()
	p.ckptMu.Unlock()
	p.ckptStallNS.Add(time.Since(start).Nanoseconds())
}

// buildCheckpoint snapshots the restartable state: every sealed reporting
// period, the partitioning layer, the tag dictionary and the source
// cursor. The exports deep-copy everything mutable (tagset backing arrays
// are immutable by package contract), so the returned checkpoint can be
// encoded on another goroutine while the pipeline keeps running.
func (p *Pipeline) buildCheckpoint() *archive.Checkpoint {
	// Cut strictly before the newest period the Tracker knows: that period
	// may still be partially flushed (other Calculators get to it when
	// their next notification arrives), so it is replayed, not persisted.
	cut, ok := p.tracker.NewestPeriod()
	if !ok {
		cut = math.MaxInt64 // nothing flushed yet: export the empty state
	}
	cp := &archive.Checkpoint{
		ReplayPeriod: cut,
		Dict:         p.cfg.ArchiveDict.Snapshot(),
		Tracker:      p.tracker.ExportState(cut),
		Partitions:   p.merger.PartitionsSnapshot(),
		Merges:       p.merger.MergeCount(),
	}
	if !ok {
		cp.ReplayPeriod = 0
	}
	cp.DocsFed, cp.ReplayFrom = p.cursor.cut(cut)
	for _, d := range p.disseminators {
		if epoch, _ := d.Epoch(); epoch > cp.Epoch {
			cp.Epoch = epoch
		}
	}
	if len(p.disseminators) > 0 {
		cp.RefAvgCom, cp.RefMaxLoad, cp.HasRef = p.disseminators[0].QualityRefs()
	}
	if p.trends != nil {
		st := p.trends.ExportState(cut)
		cp.Trend = &st
	}
	return cp
}

// buildCheckpointTimed wraps buildCheckpoint with the build-latency
// histogram (the state export + deep copy, not the encode or fsync).
func (p *Pipeline) buildCheckpointTimed() *archive.Checkpoint {
	start := time.Now()
	cp := p.buildCheckpoint()
	p.ckptBuildHist.Record(time.Since(start))
	return cp
}

// enqueueCheckpoint hands a snapshot to the writer goroutine and returns
// its enqueue sequence. The queue is one slot, newest-wins: replacing an
// unwritten older snapshot is safe because each snapshot is a complete
// recovery point, and the bumped sequence means waiters on the replaced
// snapshot are satisfied by the newer write.
func (p *Pipeline) enqueueCheckpoint(cp *archive.Checkpoint) uint64 {
	p.ckptMu.Lock()
	p.ckptSeq++
	seq := p.ckptSeq
	p.ckptPending = cp
	p.ckptCond.Broadcast()
	p.ckptMu.Unlock()
	return seq
}

// ckptLoop is the dedicated checkpoint writer: it serves pending
// synchronous snapshots and due periodic checkpoints — state export, gob
// encode, fsync, rename all off the hot path — then wakes synchronous
// Checkpoint callers. A pending snapshot takes priority over a due flag
// (its write is newer state than the due that preceded it, so it covers
// the due as well). It exits after closeCkptWriter, writing any final
// pending snapshot first; a bare due flag is dropped at close because
// the drain path checkpoints synchronously right before closing.
func (p *Pipeline) ckptLoop() {
	defer close(p.ckptDone)
	for {
		p.ckptMu.Lock()
		for p.ckptPending == nil && !p.ckptDue && !p.ckptClosed {
			p.ckptCond.Wait()
		}
		cp, seq := p.ckptPending, p.ckptSeq
		p.ckptPending = nil
		p.ckptDue = false
		closed := p.ckptClosed
		p.ckptMu.Unlock()

		if cp == nil && closed {
			return
		}
		start := time.Now()
		if cp == nil {
			// Periodic checkpoint: build here, off the hot path. No seq is
			// involved — synchronous waiters are only ever satisfied by the
			// write of an enqueued snapshot (or a newer one).
			cp = p.buildCheckpointTimed()
		}
		p.cfg.Flight.RecordEvent(flight.EventCheckpointBegin,
			fmt.Sprintf("replay_period=%d docs_fed=%d", cp.ReplayPeriod, cp.DocsFed))
		wstart := time.Now()
		err := p.arch.WriteCheckpoint(cp)
		p.ckptWriteHist.Record(time.Since(wstart))
		p.ckptWriteNS.Add(time.Since(start).Nanoseconds())
		p.ckptCount.Add(1)
		p.noteCheckpointDone(err, time.Since(wstart))
		if err != nil {
			p.archMu.Lock()
			if p.archErr == nil {
				p.archErr = err
			}
			p.archMu.Unlock()
		}
		p.ckptMu.Lock()
		if seq > p.ckptWritten {
			p.ckptWritten = seq
		}
		p.ckptErr = err
		p.ckptCond.Broadcast()
		p.ckptMu.Unlock()
	}
}

// closeCkptWriter stops the writer goroutine, letting it drain a pending
// snapshot first, and waits for it to exit. Idempotent.
func (p *Pipeline) closeCkptWriter() {
	if p.ckptDone == nil {
		return
	}
	p.ckptMu.Lock()
	if !p.ckptClosed {
		p.ckptClosed = true
		p.ckptCond.Broadcast()
	}
	p.ckptMu.Unlock()
	<-p.ckptDone
}

// Checkpoint writes a recovery point to the archive directory and returns
// once it is durable. It may be called at any time — before, during or
// after the run — from any goroutine; the tagcorrd daemon calls it on
// SIGTERM before draining, and the pipeline itself checkpoints every
// Config.CheckpointEvery periods (asynchronously, via the period hook)
// and once more when the run drains. If a newer snapshot supersedes this
// one in the queue, its write satisfies the wait — the archived state is
// then strictly newer than requested.
func (p *Pipeline) Checkpoint() error {
	if p.arch == nil {
		return fmt.Errorf("core: archive not configured (Config.ArchiveDir)")
	}
	cp := p.buildCheckpointTimed()
	p.ckptMu.Lock()
	if p.ckptClosed {
		p.ckptMu.Unlock()
		// The writer goroutine is gone (the run drained). Write directly:
		// during shutdown this still succeeds; after the archive closed it
		// returns the writer-closed error, as it always has.
		p.cfg.Flight.RecordEvent(flight.EventCheckpointBegin,
			fmt.Sprintf("replay_period=%d docs_fed=%d (direct)", cp.ReplayPeriod, cp.DocsFed))
		start := time.Now()
		err := p.arch.WriteCheckpoint(cp)
		p.ckptWriteHist.Record(time.Since(start))
		p.ckptWriteNS.Add(time.Since(start).Nanoseconds())
		p.ckptCount.Add(1)
		p.noteCheckpointDone(err, time.Since(start))
		return err
	}
	p.ckptSeq++
	seq := p.ckptSeq
	p.ckptPending = cp
	p.ckptCond.Broadcast()
	for p.ckptWritten < seq {
		p.ckptCond.Wait()
	}
	err := p.ckptErr
	p.ckptMu.Unlock()
	return err
}

// noteCheckpointDone records the end of one checkpoint write: the
// checkpoint_end flight event (with the error, if any), the freshness
// stamp the watchdog's checkpoint-overdue probe reads, and — on error —
// an archive_error event marking the latch.
func (p *Pipeline) noteCheckpointDone(err error, took time.Duration) {
	p.lastCkptNS.Store(telemetry.Now())
	if err != nil {
		p.cfg.Flight.RecordEvent(flight.EventCheckpointEnd, "failed after "+took.String()+": "+err.Error())
		p.cfg.Flight.RecordEvent(flight.EventArchiveError, "checkpoint write: "+err.Error())
		return
	}
	p.cfg.Flight.RecordEvent(flight.EventCheckpointEnd, "written in "+took.String())
}

// CheckpointStats reports how many checkpoints the pipeline has completed
// so far and the cumulative wall time the hot path spent on them — the
// period hook's due-marking, surfaced by the benchmark harness as
// checkpoint_stall_ms. With archiving off both are zero. The snapshot
// build + encode + fsync time, which used to dominate this number when
// the export ran on the Tracker task's goroutine, is metered separately
// by CheckpointWriteTime.
func (p *Pipeline) CheckpointStats() (count int64, stall time.Duration) {
	return p.ckptCount.Load(), time.Duration(p.ckptStallNS.Load())
}

// CheckpointWriteTime reports the cumulative wall time the background
// writer spent encoding and fsyncing checkpoints — work that happens off
// the hot path.
func (p *Pipeline) CheckpointWriteTime() time.Duration {
	return time.Duration(p.ckptWriteNS.Load())
}

// CompactorStats reports the archive compactor's counters (zero when the
// pipeline runs without archiving or without retention).
func (p *Pipeline) CompactorStats() archive.CompactorStats {
	if p.compactor == nil {
		return archive.CompactorStats{}
	}
	return p.compactor.Stats()
}

// ArchiveErr returns the first error the background checkpoint path hit
// (nil when archiving is off or healthy). The daemon surfaces it at
// shutdown.
func (p *Pipeline) ArchiveErr() error {
	p.archMu.Lock()
	defer p.archMu.Unlock()
	return p.archErr
}

// finishArchive writes the end-of-run checkpoint, stops the checkpoint
// writer and the compactor, and closes the segment files; called once
// from collect when the stream has drained. After the drain the newest
// Tracker period is the Cleanup-flushed final partial period, so the
// uniform cut rule applies unchanged: that period is replayed on the next
// start.
func (p *Pipeline) finishArchive() {
	if p.arch == nil {
		return
	}
	if err := p.Checkpoint(); err != nil {
		p.archMu.Lock()
		p.archErr = err
		p.archMu.Unlock()
	}
	p.closeCkptWriter()
	if p.compactor != nil {
		p.compactor.Close()
		if err := p.compactor.Err(); err != nil {
			p.archMu.Lock()
			if p.archErr == nil {
				p.archErr = err
			}
			p.archMu.Unlock()
		}
	}
	p.arch.Close()
}

// Recovered is the state core.Restore loaded from an archive directory.
// Use it to rebuild the tag dictionary, fast-forward the rebuilt source,
// and (via Pipeline.Adopt) import the operator state.
type Recovered struct {
	cp   *archive.Checkpoint
	dict *tagset.Dictionary
}

// Restore loads the newest valid checkpoint under dir. It returns
// (nil, nil) when the directory holds no checkpoint — a fresh start — and
// an error when checkpoints exist but none validates.
func Restore(dir string) (*Recovered, error) {
	cp, err := archive.LoadCheckpoint(dir)
	if err != nil || cp == nil {
		return nil, err
	}
	dict := tagset.NewDictionary()
	for _, s := range cp.Dict {
		dict.Intern(s)
	}
	return &Recovered{cp: cp, dict: dict}, nil
}

// Dictionary returns the rebuilt tag dictionary. Build the input source
// with it (and pass it as Config.ArchiveDict) so the stream's tags intern
// to the identifiers the recovered state references.
func (r *Recovered) Dictionary() *tagset.Dictionary { return r.dict }

// SkipDocs returns how many documents of the rebuilt source must be
// discarded before feeding the pipeline — the replay cursor.
func (r *Recovered) SkipDocs() int64 { return r.cp.ReplayFrom }

// Periods returns the recovered reporting period ids, ascending.
func (r *Recovered) Periods() []int64 {
	out := make([]int64, 0, len(r.cp.Tracker.Periods))
	for _, pc := range r.cp.Tracker.Periods {
		out = append(out, pc.Period)
	}
	return out
}

// Epoch returns the recovered partition epoch (0: none installed).
func (r *Recovered) Epoch() int { return r.cp.Epoch }

// FastForward wraps src so its first SkipDocs documents are read and
// discarded (lazily, on the first pull): the replayed stream then starts
// exactly at the recovered cut. The discarded reads re-intern their tags,
// which is harmless — the dictionary already contains them.
func (r *Recovered) FastForward(src DocumentSource) DocumentSource {
	skip := r.cp.ReplayFrom
	done := false
	return func() (stream.Document, bool) {
		if !done {
			done = true
			for i := int64(0); i < skip; i++ {
				if _, ok := src(); !ok {
					break
				}
			}
		}
		return src()
	}
}

// Adopt imports recovered state into a freshly built pipeline. Call it
// between NewPipeline and Start (never on a running pipeline): it loads
// the Tracker's periods and evicted-pair LRU, the trend predictors and
// events, installs the recovered partitions into the Merger and every
// Disseminator (so routing resumes at the recovered epoch instead of
// re-bootstrapping), and seeds the source cursor so the next checkpoint's
// ReplayFrom stays absolute in the original stream.
func (p *Pipeline) Adopt(r *Recovered) error {
	if r == nil {
		return nil
	}
	cp := r.cp
	p.tracker.ImportState(cp.Tracker)
	if cp.Trend != nil && p.trends != nil {
		p.trends.ImportState(*cp.Trend)
	}
	if len(cp.Partitions) > 0 {
		p.merger.RestorePartitions(cp.Partitions, cp.Merges)
		for _, d := range p.disseminators {
			d.RestorePartitions(cp.Epoch, cp.Partitions, cp.RefAvgCom, cp.RefMaxLoad, cp.HasRef)
		}
	}
	if p.cursor != nil {
		p.cursor.mu.Lock()
		p.cursor.base = cp.ReplayFrom
		p.cursor.mu.Unlock()
	}
	return nil
}
