package core

import (
	"math"
	"sync"
	"time"

	"repro/internal/jaccard"
	"repro/internal/operators"
	"repro/internal/partition"
	"repro/internal/storm"
	"repro/internal/telemetry"
	"repro/internal/trend"
)

// Snapshot is a consistent point-in-time view of a pipeline while (or
// after) it runs: the current top-k correlations, communication and load
// statistics, the installed partitions, and the raw dataflow counters.
// Every slice and map is a copy owned by the caller, with one caveat: the
// tagset.Set values inside coefficients and partitions share their backing
// arrays with live operator state. Sets are immutable by the tagset
// package's contract, so reading them is always safe — but they must not
// be mutated in place.
//
// Unlike Result, which is only available once the stream has drained, a
// Snapshot can be taken at any moment of a run started with Start (or
// RunConcurrent on another goroutine): all the state it reads is guarded
// by the operators' own locks.
type Snapshot struct {
	// TakenAt stamps the moment the Tracker's consistent pass ran,
	// carrying Go's monotonic clock reading: time.Since(TakenAt) is the
	// snapshot's age regardless of wall-clock adjustments. Under CPU
	// saturation the serving layer's refresh loop can stall on operator
	// locks; the stamp (surfaced as snapshot_age_ms in /stats) makes that
	// staleness observable instead of silently serving old data as fresh.
	TakenAt time.Time

	// DocsProcessed counts parsed documents seen by the Disseminators; it
	// is monotone over the lifetime of a run. DocsBeforeInstall counts the
	// prefix that arrived before the first partitions were installed.
	DocsProcessed     int64
	DocsBeforeInstall int64
	NotifiedDocs      int64
	Notifications     int64
	UncoveredDocs     int64

	// Communication is notifications per notified document so far
	// (Section 8.2.1); LoadGini the Gini coefficient of cumulative
	// per-Calculator notifications so far (Section 8.2.2).
	Communication float64
	LoadGini      float64
	PerCalculator []int64

	// Epoch is the highest installed partition epoch (0 before bootstrap);
	// RepartitionPending reports an outstanding repartition request.
	Epoch              int
	RepartitionPending bool
	Repartitions       int
	RepartitionsComm   int
	RepartitionsLoad   int
	RepartitionsBoth   int
	SingleAdditions    int
	Merges             int

	// Partitions is the Merger's current tag-to-Calculator assignment
	// (nil before the first merge).
	Partitions []partition.Partition

	// TopK holds the highest-Jaccard coefficients reported so far across
	// all reporting periods, ordered by descending J (ties: descending CN,
	// then tagset key). Periods lists the period ids seen so far.
	TopK    []jaccard.Coefficient
	Periods []int64

	// CoefficientsReceived / CoefficientsDuplicate are the Tracker's raw
	// intake counters.
	CoefficientsReceived  int64
	CoefficientsDuplicate int64

	// Tracker describes the Tracker's internal structure: shard count, the
	// incrementally maintained top-k heaps, retention pruning, and the
	// evicted-coefficient LRU.
	Tracker operators.TrackerStats

	// TrackerTasks and NotifyBatch echo the pipeline's hot-path fan-out
	// configuration: the Tracker operator's parallelism (>= 1) and the
	// Disseminator→Calculator notification batch size (0: per-document).
	TrackerTasks int
	NotifyBatch  int

	// Checkpoints / CheckpointStallMS / CheckpointWriteMS meter the
	// durability path: completed checkpoint writes, the cumulative hot-path
	// milliseconds spent cutting snapshots (the period hook runs on a
	// Tracker task's goroutine; the encode + fsync happen on a dedicated
	// writer goroutine), and the cumulative background write milliseconds.
	// Zero with archiving off.
	Checkpoints       int64
	CheckpointStallMS int64
	CheckpointWriteMS int64

	// ArchiveCompactions / ArchiveCompactedPeriods / ArchiveAgedOutPeriods
	// / ArchiveBytes meter the archive's background compaction: compacted
	// files written, raw period segments folded into them, periods deleted
	// under the disk budget, and the archive directory's size after the
	// compactor's last pass. Zero without archiving + retention.
	ArchiveCompactions      int64
	ArchiveCompactedPeriods int64
	ArchiveAgedOutPeriods   int64
	ArchiveBytes            int64

	// StageDocPartition / StageDocCoefficient / StageDocTrackerAccept
	// summarise the end-to-end stage-latency histograms: the time from a
	// document's ingest stamp at the Source until it reaches a
	// Partitioner's window, until its triggered coefficient flush leaves a
	// Calculator, and until the Tracker accepts that flush. Counts stay
	// zero on runs that inject tuples without ingest stamps.
	StageDocPartition     StageLatency
	StageDocCoefficient   StageLatency
	StageDocTrackerAccept StageLatency

	// Trends is the streaming trend detector's live view (nil unless
	// Config.Trend is set): the top deviations of the newest scored period
	// plus the detector's structural counters.
	Trends *TrendsView

	// EmittedByComponent / ReceivedByComponent are the storm substrate's
	// per-component dataflow counters.
	EmittedByComponent  map[string]int64
	ReceivedByComponent map[string]int64
}

// Snapshot returns a live view of the pipeline with the given top-k size
// (k <= 0 returns every coefficient reported so far). It is safe to call
// from any goroutine at any time between NewPipeline and the end of the
// process — before the run, mid-run under either executor, or after the
// run — because every operator guards the state read here with its own
// lock. The top-k view is read from the Tracker's incrementally maintained
// shard heaps (for k within the Tracker's top-k bound), so a snapshot's
// cost does not grow with the number of retained coefficients. Quantities
// accumulated per Disseminator are summed across instances (with the
// paper's single-Disseminator configuration they are exact).
func (p *Pipeline) Snapshot(k int) *Snapshot {
	// One consistent pass over the Tracker: top-k, period list and
	// structural stats are read while the registry and every shard lock
	// are held together, so a snapshot can no longer pair a populated
	// intake counter with an empty period list (the CPU-saturation
	// staleness the ROADMAP documented).
	top, periods, tstats := p.tracker.ConsistentView(k)
	s := &Snapshot{
		TakenAt:      time.Now(),
		TopK:         top,
		Periods:      periods,
		Merges:       p.merger.MergeCount(),
		Tracker:      tstats,
		TrackerTasks: p.cfg.TrackerTasks,
		NotifyBatch:  p.cfg.NotifyBatch,
	}
	if s.TrackerTasks == 0 {
		s.TrackerTasks = 1
	}
	s.CoefficientsReceived, s.CoefficientsDuplicate = tstats.Received, tstats.Duplicates
	ckpts, stall := p.CheckpointStats()
	s.Checkpoints, s.CheckpointStallMS = ckpts, stall.Milliseconds()
	s.CheckpointWriteMS = p.CheckpointWriteTime().Milliseconds()
	cs := p.CompactorStats()
	s.ArchiveCompactions = cs.Compactions
	s.ArchiveCompactedPeriods = cs.CompactedPeriods
	s.ArchiveAgedOutPeriods = cs.AgedOutPeriods
	s.ArchiveBytes = cs.DirBytes
	s.Partitions = p.merger.PartitionsSnapshot()

	for _, d := range p.disseminators {
		ds := d.SnapshotStats()
		s.DocsProcessed += ds.Docs
		s.DocsBeforeInstall += ds.BeforePartition
		s.NotifiedDocs += ds.NotifiedDocs
		s.Notifications += ds.Notifications
		s.UncoveredDocs += ds.UncoveredDocs
		s.Repartitions += ds.Repartitions
		s.RepartitionsComm += ds.CauseComm
		s.RepartitionsLoad += ds.CauseLoad
		s.RepartitionsBoth += ds.CauseBoth
		s.SingleAdditions += ds.AdditionsAsked
		// Grow by length, not presence: a snapshot racing Prepare can see
		// one instance's stats sized and another's still empty.
		if len(ds.PerCalculator) > len(s.PerCalculator) {
			grown := make([]int64, len(ds.PerCalculator))
			copy(grown, s.PerCalculator)
			s.PerCalculator = grown
		}
		for i, n := range ds.PerCalculator {
			s.PerCalculator[i] += n
		}
		epoch, awaiting := d.Epoch()
		if epoch > s.Epoch {
			s.Epoch = epoch
		}
		s.RepartitionPending = s.RepartitionPending || awaiting
	}
	if s.NotifiedDocs > 0 {
		s.Communication = float64(s.Notifications) / float64(s.NotifiedDocs)
	}
	agg := operators.DissemStats{PerCalculator: s.PerCalculator}
	s.LoadGini = agg.LoadGini()

	s.EmittedByComponent, s.ReceivedByComponent = p.topo.Stats().Totals()

	s.StageDocPartition = stageLatencyFrom(p.stages.DocPartition)
	s.StageDocCoefficient = stageLatencyFrom(p.stages.DocCoefficient)
	s.StageDocTrackerAccept = stageLatencyFrom(p.stages.DocTrackerAccept)

	if p.trends != nil {
		v := &TrendsView{Stats: p.trends.StatsSnapshot()}
		// Check the latest-period sentinel itself, not Scored: the first
		// Observe bumps the scored counter before publishing its period.
		if latest := p.trends.LatestPeriod(); latest != math.MinInt64 {
			v.LatestPeriod = latest
			// Clamp to the detector's maintained heap bound so the view is
			// always served from the per-period heaps, never the
			// full-gather fallback — the Tracker top-k gets the same
			// treatment via EnsureTopKBound.
			if bound := p.trends.Config().TopK; k <= 0 || k > bound {
				k = bound
			}
			v.Top = p.trends.TopTrends(latest, k)
		}
		s.Trends = v
	}
	return s
}

// StageLatency summarises one end-to-end stage-latency histogram for the
// serving layer: sample count, median and tail quantiles, and the maximum,
// in milliseconds. The full bucket detail is on /metrics; this is the
// at-a-glance /stats rendering.
type StageLatency struct {
	Count int64   `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

func stageLatencyFrom(h *telemetry.Histogram) StageLatency {
	return StageLatency{
		Count: h.Count(),
		P50MS: float64(h.Quantile(0.50).Microseconds()) / 1e3,
		P99MS: float64(h.Quantile(0.99).Microseconds()) / 1e3,
		MaxMS: float64(time.Duration(h.MaxNS()).Microseconds()) / 1e3,
	}
}

// TrendsView is the Snapshot's rendering of the streaming trend detector:
// the highest-scoring deviations of the newest period a deviation was
// scored in, plus the detector's structural counters. LatestPeriod is 0
// until the first event is scored (reporting periods start at 1), and Top
// carries at most the detector's TrendTopK events (the maintained bound).
type TrendsView struct {
	LatestPeriod int64
	Top          []trend.Event
	Stats        trend.StreamStats
}

// Trends exposes the streaming trend detector (nil unless Config.Trend).
// Its methods are thread-safe, so live queries — the /trends point lookup,
// the /events subscription — may use it mid-run.
func (p *Pipeline) Trends() *trend.Stream { return p.trends }

// Tracker exposes the Tracker bolt; its read methods are thread-safe, so
// live queries (e.g. the HTTP pair lookup) may use it mid-run.
func (p *Pipeline) Tracker() *operators.Tracker { return p.tracker }

// Handle is a pipeline run in flight, returned by Start. Snapshots may be
// taken while it runs; Wait blocks until the stream drains and returns the
// final Result.
type Handle struct {
	p    *Pipeline
	run  *storm.Run
	once sync.Once
	res  *Result
}

// Start launches the pipeline on the concurrent executor without blocking
// and returns a handle. Like Run and RunConcurrent it must be called at
// most once per pipeline, and not combined with them.
func (p *Pipeline) Start() *Handle {
	return &Handle{p: p, run: p.topo.StartConcurrent()}
}

// Done returns a channel closed when the run has fully drained.
func (h *Handle) Done() <-chan struct{} { return h.run.Done() }

// Running reports whether the dataflow is still in flight.
func (h *Handle) Running() bool { return h.run.Running() }

// Snapshot takes a live snapshot of the running (or finished) pipeline.
func (h *Handle) Snapshot(k int) *Snapshot { return h.p.Snapshot(k) }

// Checkpoint writes a recovery point for the running pipeline (see
// Pipeline.Checkpoint); it errors unless Config.ArchiveDir is set.
func (h *Handle) Checkpoint() error { return h.p.Checkpoint() }

// Wait blocks until the stream drains and returns the final Result. It is
// safe to call from several goroutines; all receive the same Result.
func (h *Handle) Wait() *Result {
	st := h.run.Wait()
	h.once.Do(func() { h.res = h.p.collect(st) })
	return h.res
}
