package core

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/archive"
	"repro/internal/operators"
	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/trend"
	"repro/internal/twitgen"
)

// restoreStream generates a deterministic stream dense enough to cross
// many reporting periods quickly: 1000 docs per virtual second, half of
// them tagged, over a compact topic universe so pairs recur with real
// counter support.
func restoreStream(t *testing.T, n int) ([]stream.Document, *tagset.Dictionary) {
	t.Helper()
	dict := tagset.NewDictionary()
	cfg := twitgen.Default()
	cfg.Seed = 17
	cfg.TPS = 1000
	cfg.TaggedFraction = 0.5
	cfg.Topics = 40
	cfg.TagsPerTopic = 8
	g, err := twitgen.New(cfg, dict)
	if err != nil {
		t.Fatal(err)
	}
	return g.Generate(n), dict
}

// restoreConfig is the differential's pipeline configuration: small fast
// periods, retention tight enough that pruning happens mid-run, trend
// detection on, and the monitoring triggers that inject non-checkpointed
// state into the data path (repartitions, single additions) disabled so
// the comparison isolates the recovery protocol itself.
func restoreConfig(dir string, dict *tagset.Dictionary) Config {
	cfg := DefaultConfig()
	cfg.K = 4
	cfg.P = 3
	cfg.WindowSpan = stream.Seconds(5)
	cfg.ReportEvery = stream.Seconds(5)
	cfg.StatsEvery = math.MaxInt32 // no repartition evaluation
	cfg.SN = math.MaxInt32         // no single additions
	cfg.KeepPeriods = 3
	cfg.EvictedPairs = 512
	cfg.NoSeries = true
	cfg.Trend = true
	cfg.TrendMinSupport = 2
	cfg.TrendThreshold = 0.05
	cfg.ArchiveDir = dir
	cfg.ArchiveDict = dict
	cfg.CheckpointEvery = 1
	return cfg
}

// zeroCounters blanks the intake counters recovery does not preserve
// exactly (the replayed suffix re-counts receptions and re-scores
// corrections); everything else must match bit for bit.
func zeroTrackerCounters(st *operators.TrackerState) {
	st.Received, st.Duplicates, st.Late = 0, 0, 0
}

func zeroTrendCounters(st *trend.StreamState) {
	st.Scored, st.Filtered, st.OutOfOrder, st.Late, st.Published, st.Dropped = 0, 0, 0, 0, 0, 0
}

// runWhole runs docs through a fresh archived pipeline sequentially and
// returns it.
func runWhole(t *testing.T, dir string, dict *tagset.Dictionary, docs []stream.Document) *Pipeline {
	t.Helper()
	pipe, err := NewPipeline(restoreConfig(dir, dict), SliceSource(docs))
	if err != nil {
		t.Fatal(err)
	}
	pipe.Run()
	if err := pipe.ArchiveErr(); err != nil {
		t.Fatalf("archive error: %v", err)
	}
	return pipe
}

// resumeFrom restores dir, replays docs from the recovered cursor through
// an adopted pipeline, and returns the pipeline.
func resumeFrom(t *testing.T, dir string, docs []stream.Document) *Pipeline {
	t.Helper()
	rec, err := Restore(dir)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if rec == nil {
		t.Fatal("no checkpoint to restore")
	}
	skip := rec.SkipDocs()
	if skip <= 0 || skip >= int64(len(docs)) {
		t.Fatalf("replay cursor %d outside the stream (%d docs)", skip, len(docs))
	}
	pipe, err := NewPipeline(restoreConfig(dir, rec.Dictionary()), SliceSource(docs[skip:]))
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.Adopt(rec); err != nil {
		t.Fatalf("adopt: %v", err)
	}
	pipe.Run()
	if err := pipe.ArchiveErr(); err != nil {
		t.Fatalf("archive error after resume: %v", err)
	}
	return pipe
}

// refSnapshot captures the uninterrupted reference pipeline's end state
// once, before any point lookups run: an evicted-pair lookup touches the
// LRU's recency order, so exports taken after lookups would no longer
// describe the pristine end-of-run state.
type refSnapshot struct {
	pipe    *Pipeline
	tracker operators.TrackerState
	trend   trend.StreamState
}

func snapshotRef(ref *Pipeline) refSnapshot {
	s := refSnapshot{
		pipe:    ref,
		tracker: ref.Tracker().ExportState(math.MaxInt64),
		trend:   ref.Trends().ExportState(math.MaxInt64),
	}
	zeroTrackerCounters(&s.tracker)
	zeroTrendCounters(&s.trend)
	return s
}

// compareRecovered asserts that a recovered pipeline's end state is
// bit-identical to the uninterrupted reference: full Tracker state
// (periods, coefficients, floors, evicted LRU), top-k ranking, point
// lookups, and the trend detector's predictors, events and rankings.
func compareRecovered(t *testing.T, ref refSnapshot, got *Pipeline) {
	t.Helper()
	refState := ref.tracker
	gotState := got.Tracker().ExportState(math.MaxInt64)
	zeroTrackerCounters(&gotState)
	if !reflect.DeepEqual(refState, gotState) {
		t.Errorf("tracker state diverged after recovery:\nref periods=%d evicted=%d floor=%d\ngot periods=%d evicted=%d floor=%d",
			len(refState.Periods), len(refState.Evicted), refState.Floor,
			len(gotState.Periods), len(gotState.Evicted), gotState.Floor)
	}

	refTop := ref.pipe.Tracker().TopK(50)
	gotTop := got.Tracker().TopK(50)
	if !reflect.DeepEqual(refTop, gotTop) {
		t.Errorf("top-k diverged: ref %d coefficients, got %d", len(refTop), len(gotTop))
	}
	for i, c := range refTop {
		if i >= 10 {
			break
		}
		rc, rp, re, rok := ref.pipe.Tracker().LookupDetail(c.Tags.Key())
		gc, gp, ge, gok := got.Tracker().LookupDetail(c.Tags.Key())
		if rok != gok || rp != gp || re != ge || !reflect.DeepEqual(rc, gc) {
			t.Errorf("pair lookup %v diverged: ref (%v,%d,%v,%v) got (%v,%d,%v,%v)",
				c.Tags, rc, rp, re, rok, gc, gp, ge, gok)
		}
	}
	// A pair that only the evicted LRU still remembers must answer
	// identically too.
	if n := len(refState.Evicted); n > 0 {
		k := refState.Evicted[n-1].Coeff.Tags.Key()
		rc, rp, re, rok := ref.pipe.Tracker().LookupDetail(k)
		gc, gp, ge, gok := got.Tracker().LookupDetail(k)
		if rok != gok || rp != gp || re != ge || !reflect.DeepEqual(rc, gc) {
			t.Errorf("evicted-pair lookup diverged: ref (%v,%d,%v,%v) got (%v,%d,%v,%v)",
				rc, rp, re, rok, gc, gp, ge, gok)
		}
	}

	refTrend := ref.trend
	gotTrend := got.Trends().ExportState(math.MaxInt64)
	zeroTrendCounters(&gotTrend)
	if !reflect.DeepEqual(refTrend, gotTrend) {
		t.Errorf("trend state diverged after recovery: ref %d predictors / %d periods, got %d predictors / %d periods",
			len(refTrend.Predictors), len(refTrend.Periods),
			len(gotTrend.Predictors), len(gotTrend.Periods))
	}
	if latest := ref.pipe.Trends().LatestPeriod(); latest != math.MinInt64 {
		refRank := ref.pipe.Trends().TopTrends(latest, 20)
		gotRank := got.Trends().TopTrends(latest, 20)
		if !reflect.DeepEqual(refRank, gotRank) {
			t.Errorf("trend ranking diverged for period %d: ref %d events, got %d", latest, len(refRank), len(gotRank))
		}
	}
}

// TestRestoreDifferential is the kill-and-restore differential: run the
// first part of a stream through an archived pipeline, drain it (the
// end-of-run checkpoint cuts before the final partial period), restart
// from disk, replay the remainder — and require the Tracker, trend and
// lookup state to be bit-identical to one uninterrupted run of the whole
// stream. A second phase restores from an *older* (mid-run) checkpoint
// after corrupting the newest one, exercising the CRC fallback and a
// longer replay, with the same exactness requirement.
func TestRestoreDifferential(t *testing.T) {
	docs, dict := restoreStream(t, 42000) // 42 virtual seconds ≈ 8 periods
	cut := 25000

	refDir := t.TempDir()
	refPipe := runWhole(t, refDir, dict, docs)
	if periods := refPipe.Tracker().Periods(); len(periods) < 3 {
		t.Fatalf("reference run too short: retained periods %v", periods)
	}
	if refPipe.Trends().LatestPeriod() == math.MinInt64 {
		t.Fatal("reference run scored no trend events")
	}
	ref := snapshotRef(refPipe)
	if ref.tracker.Pruned == 0 {
		t.Fatal("reference run never pruned; the differential must cross the retention floor")
	}

	// Phase 1: graceful-stop recovery (newest checkpoint).
	dirB := t.TempDir()
	runWhole(t, dirB, dict, docs[:cut])
	// Preserve the post-interruption directory for phase 2 before the
	// resumed run advances it.
	dirC := t.TempDir()
	copyDir(t, dirB, dirC)

	resumed := resumeFrom(t, dirB, docs)
	compareRecovered(t, ref, resumed)

	// Phase 2: the newest checkpoint is torn by a crash — recovery must
	// fall back to the previous (mid-run) checkpoint and replay a longer
	// suffix to the same end state.
	seqs := checkpointFiles(t, dirC)
	if len(seqs) < 2 {
		t.Fatalf("expected >= 2 retained checkpoints, got %v", seqs)
	}
	newest := seqs[len(seqs)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // corrupt the payload tail: CRC must reject it
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	resumed2 := resumeFrom(t, dirC, docs)
	compareRecovered(t, ref, resumed2)

	// The recovered archive must answer history queries for periods far
	// below the in-memory pruning floor, identically to the reference
	// archive. The oldest archived period (the first one reported after
	// bootstrap) has long been pruned from memory by KeepPeriods.
	refRd, gotRd := archive.OpenReader(refDir), archive.OpenReader(dirB)
	refPeriods, err := refRd.Periods()
	if err != nil || len(refPeriods) == 0 {
		t.Fatalf("reference archive lists no periods (err=%v)", err)
	}
	oldest := refPeriods[0]
	if floor := resumed.Tracker().ExportState(math.MaxInt64).Floor; oldest > floor {
		t.Fatalf("oldest archived period %d not past the pruning floor %d; the history assertion is vacuous", oldest, floor)
	}
	refSeg, err := refRd.Segment(oldest)
	if err != nil || refSeg == nil || len(refSeg.Coeffs) == 0 {
		t.Fatalf("reference archive has no period-%d segment (err=%v)", oldest, err)
	}
	gotSeg, err := gotRd.Segment(oldest)
	if err != nil || gotSeg == nil {
		t.Fatalf("recovered archive has no period-%d segment (err=%v)", oldest, err)
	}
	if !reflect.DeepEqual(refSeg.Coeffs, gotSeg.Coeffs) {
		t.Errorf("archived period %d diverged: ref %d coefficients, got %d", oldest, len(refSeg.Coeffs), len(gotSeg.Coeffs))
	}
}

// checkpointFiles lists dir's checkpoint files sorted by name (sequence
// order, zero-padded).
func checkpointFiles(t *testing.T, dir string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func copyDir(t *testing.T, from, to string) {
	t.Helper()
	entries, err := os.ReadDir(from)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(from, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(to, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
