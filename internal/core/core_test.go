package core

import (
	"testing"

	"repro/internal/jaccard"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/twitgen"
)

// shortStream produces n documents of a small deterministic synthetic
// stream with a fast clock so windows fill quickly.
func shortStream(t *testing.T, n int, seed int64) ([]stream.Document, *tagset.Dictionary) {
	t.Helper()
	dict := tagset.NewDictionary()
	cfg := twitgen.Default()
	cfg.Seed = seed
	cfg.TPS = 26000 // 1300 tagged docs per virtual second
	cfg.Topics = 60
	cfg.TagsPerTopic = 10
	g, err := twitgen.New(cfg, dict)
	if err != nil {
		t.Fatal(err)
	}
	return g.Generate(n), dict
}

// fastConfig shrinks windows and reporting so short tests exercise the full
// life cycle: bootstrap, installs, reports, additions, repartitions.
func fastConfig(alg partition.Algorithm) Config {
	cfg := DefaultConfig()
	cfg.Algorithm = alg
	cfg.K = 4
	cfg.P = 3
	cfg.WindowSpan = stream.Seconds(5)
	cfg.ReportEvery = stream.Seconds(5)
	cfg.StatsEvery = 500
	return cfg
}

func TestNewPipelineValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := NewPipeline(cfg, nil); err == nil {
		t.Error("nil source accepted")
	}
	cfg.K = 0
	if _, err := NewPipeline(cfg, SliceSource(nil)); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	for _, alg := range []partition.Algorithm{partition.DS, partition.SCC, partition.SCL, partition.SCI} {
		t.Run(string(alg), func(t *testing.T) {
			docs, _ := shortStream(t, 40000, 3)
			pipe, err := NewPipeline(fastConfig(alg), SliceSource(docs))
			if err != nil {
				t.Fatal(err)
			}
			res := pipe.Run()

			if res.DocsProcessed != 40000 {
				t.Errorf("processed %d docs", res.DocsProcessed)
			}
			if res.Merges < 1 {
				t.Fatal("no partitions were ever merged")
			}
			if res.DocsBeforeInstall <= 0 || res.DocsBeforeInstall >= res.DocsProcessed {
				t.Errorf("bootstrap consumed %d of %d docs", res.DocsBeforeInstall, res.DocsProcessed)
			}
			if len(res.Coefficients) == 0 {
				t.Fatal("no Jaccard coefficients reported")
			}
			for _, c := range res.Coefficients {
				if c.J < 0 || c.J > 1 {
					t.Fatalf("coefficient out of range: %+v", c)
				}
				if c.Tags.Len() < 2 {
					t.Fatalf("coefficient for %d-tag set", c.Tags.Len())
				}
			}
			if res.Communication < 1 {
				t.Errorf("communication = %g < 1", res.Communication)
			}
			if res.LoadGini < 0 || res.LoadGini >= 1 {
				t.Errorf("load gini = %g", res.LoadGini)
			}
			if pipe.Partitions() == nil {
				t.Error("no final partitions")
			}
		})
	}
}

func TestPipelineDeterministic(t *testing.T) {
	run := func() *Result {
		docs, _ := shortStream(t, 20000, 9)
		pipe, err := NewPipeline(fastConfig(partition.DS), SliceSource(docs))
		if err != nil {
			t.Fatal(err)
		}
		return pipe.Run()
	}
	a, b := run(), run()
	if a.Communication != b.Communication || a.LoadGini != b.LoadGini {
		t.Errorf("metrics diverged: %g/%g vs %g/%g",
			a.Communication, a.LoadGini, b.Communication, b.LoadGini)
	}
	if len(a.Coefficients) != len(b.Coefficients) {
		t.Errorf("coefficients %d vs %d", len(a.Coefficients), len(b.Coefficients))
	}
	if a.Repartitions != b.Repartitions || a.SingleAdditions != b.SingleAdditions {
		t.Errorf("dynamics diverged: %d/%d vs %d/%d",
			a.Repartitions, a.SingleAdditions, b.Repartitions, b.SingleAdditions)
	}
}

func TestPipelineConcurrentMatchesTotals(t *testing.T) {
	docs, _ := shortStream(t, 20000, 5)
	seq, err := NewPipeline(fastConfig(partition.DS), SliceSource(docs))
	if err != nil {
		t.Fatal(err)
	}
	sres := seq.Run()

	con, err := NewPipeline(fastConfig(partition.DS), SliceSource(docs))
	if err != nil {
		t.Fatal(err)
	}
	cres := con.RunConcurrent()

	if cres.DocsProcessed != sres.DocsProcessed {
		t.Errorf("docs: %d vs %d", cres.DocsProcessed, sres.DocsProcessed)
	}
	if cres.Merges < 1 || len(cres.Coefficients) == 0 {
		t.Error("concurrent run produced no results")
	}
	if cres.Dissem.Notifications == 0 {
		t.Error("concurrent run sent no notifications")
	}
	// Scheduling shifts when the first partitions install (and therefore
	// how much of the stream is disseminated), so coefficient counts vary
	// widely run to run; require the same order of magnitude only.
	ratio := float64(len(cres.Coefficients)) / float64(len(sres.Coefficients))
	if ratio < 0.1 || ratio > 10 {
		t.Errorf("coefficient counts diverged: %d vs %d", len(cres.Coefficients), len(sres.Coefficients))
	}
}

// TestPipelineAccuracy checks the headline claim of Section 8.2.3 at run
// level: the overwhelming majority of tagsets seen more than sn times in
// the (post-install) input receive a Jaccard coefficient, and per-period
// coefficients stay close to the exact centralized baseline.
func TestPipelineAccuracy(t *testing.T) {
	docs, _ := shortStream(t, 60000, 11)
	cfg := fastConfig(partition.DS)
	pipe, err := NewPipeline(cfg, SliceSource(docs))
	if err != nil {
		t.Fatal(err)
	}
	res := pipe.Run()
	post := docs[res.DocsBeforeInstall:]

	// Run-level coverage.
	inputCounts := make(map[tagset.Key]int64)
	for _, d := range post {
		if d.Tags.Len() >= 2 {
			inputCounts[d.Tags.Key()]++
		}
	}
	reported := make(map[tagset.Key]struct{})
	for _, c := range res.Coefficients {
		reported[c.Tags.Key()] = struct{}{}
	}
	var frequent, hit int
	for k, n := range inputCounts {
		if n > int64(cfg.SN) {
			frequent++
			if _, ok := reported[k]; ok {
				hit++
			}
		}
	}
	if frequent == 0 {
		t.Fatal("no frequent tagsets in input")
	}
	coverage := float64(hit) / float64(frequent)
	if coverage < 0.9 {
		t.Errorf("run-level coverage = %.3f (%d/%d), want >= 0.9", coverage, hit, frequent)
	}

	// Per-period error against the exact centralized baseline.
	central := jaccard.NewCentralized()
	var boundary stream.Millis
	started := false
	var errSum, weight float64
	flush := func(period int64) {
		base := central.Report(int64(cfg.SN) + 1)
		if len(base) == 0 {
			return
		}
		e, cov := jaccard.CompareReports(base, res.Tracker.Report(period))
		w := cov * float64(len(base))
		errSum += e * w
		weight += w
	}
	for _, d := range post {
		if !started {
			boundary = (d.Time/cfg.ReportEvery + 1) * cfg.ReportEvery
			started = true
		}
		for d.Time >= boundary {
			flush(int64(boundary / cfg.ReportEvery))
			boundary += cfg.ReportEvery
		}
		central.Observe(d.Tags)
	}
	flush(int64(boundary / cfg.ReportEvery))
	if weight == 0 {
		t.Fatal("no matched tagsets for error computation")
	}
	meanErr := errSum / weight
	if meanErr > 0.2 {
		t.Errorf("mean Jaccard error = %.4f, want small", meanErr)
	}
}

func TestGeneratorSourceCap(t *testing.T) {
	n := 0
	src := GeneratorSource(func() stream.Document {
		n++
		return stream.Document{ID: uint64(n)}
	}, 3)
	got := 0
	for {
		_, ok := src()
		if !ok {
			break
		}
		got++
	}
	if got != 3 || n != 3 {
		t.Errorf("yielded %d docs, generator called %d times", got, n)
	}
}

func TestSliceSourceExhausts(t *testing.T) {
	src := SliceSource([]stream.Document{{ID: 1}, {ID: 2}})
	d1, ok1 := src()
	d2, ok2 := src()
	_, ok3 := src()
	if !ok1 || !ok2 || ok3 || d1.ID != 1 || d2.ID != 2 {
		t.Error("SliceSource misbehaved")
	}
}

// TestPipelineMultipleDisseminators exercises the paper's "multiple
// instances of the Disseminator can be created" option (Section 6.2): two
// Disseminators each route half the stream; partitions and addition
// results are broadcast to both.
func TestPipelineMultipleDisseminators(t *testing.T) {
	docs, _ := shortStream(t, 30000, 21)
	cfg := fastConfig(partition.DS)
	cfg.Disseminators = 2
	cfg.Parsers = 2
	pipe, err := NewPipeline(cfg, SliceSource(docs))
	if err != nil {
		t.Fatal(err)
	}
	res := pipe.Run()
	if res.Merges < 1 {
		t.Fatal("no merges with two disseminators")
	}
	if len(res.Coefficients) == 0 {
		t.Fatal("no coefficients with two disseminators")
	}
	ds := pipe.Disseminators()
	if len(ds) != 2 {
		t.Fatalf("disseminator instances = %d", len(ds))
	}
	// Both instances must have routed traffic (shuffle grouping).
	for i, d := range ds {
		if d.Stats.NotifiedDocs == 0 {
			t.Errorf("disseminator %d routed nothing", i)
		}
	}
	if res.DocsProcessed != 30000 {
		t.Errorf("docs processed = %d", res.DocsProcessed)
	}
}

// TestPipelineFanoutSequentialExact: the sequential executor is a
// deterministic FIFO, and the hot-path fan-out knobs change only tuple
// packaging and Tracker task routing — never the per-Calculator
// notification order or the per-tagset report order — so the full pipeline
// (repartitions, Single Additions and all) must produce identical results
// under every TrackerTasks/NotifyBatch combination.
func TestPipelineFanoutSequentialExact(t *testing.T) {
	docs, _ := shortStream(t, 20000, 13)
	run := func(tasks, batch int) *Result {
		cfg := fastConfig(partition.DS)
		cfg.Trend = true
		cfg.TrendMinSupport = 1
		cfg.TrackerTasks = tasks
		cfg.NotifyBatch = batch
		pipe, err := NewPipeline(cfg, SliceSource(docs))
		if err != nil {
			t.Fatal(err)
		}
		return pipe.Run()
	}
	base := run(1, 0)
	if len(base.Coefficients) == 0 {
		t.Fatal("baseline run reported no coefficients")
	}
	for _, v := range []struct{ tasks, batch int }{{4, 0}, {1, 64}, {4, 64}} {
		res := run(v.tasks, v.batch)
		if len(res.Coefficients) != len(base.Coefficients) {
			t.Fatalf("tasks=%d batch=%d: %d coefficients, baseline %d",
				v.tasks, v.batch, len(res.Coefficients), len(base.Coefficients))
		}
		for i := range base.Coefficients {
			a, b := res.Coefficients[i], base.Coefficients[i]
			if a.J != b.J || a.CN != b.CN || a.Tags.Key() != b.Tags.Key() {
				t.Fatalf("tasks=%d batch=%d: coefficient %d = %+v, baseline %+v",
					v.tasks, v.batch, i, a, b)
			}
		}
		if res.Communication != base.Communication || res.LoadGini != base.LoadGini {
			t.Errorf("tasks=%d batch=%d: metrics %g/%g, baseline %g/%g",
				v.tasks, v.batch, res.Communication, res.LoadGini,
				base.Communication, base.LoadGini)
		}
		if res.Repartitions != base.Repartitions || res.SingleAdditions != base.SingleAdditions {
			t.Errorf("tasks=%d batch=%d: dynamics %d/%d, baseline %d/%d",
				v.tasks, v.batch, res.Repartitions, res.SingleAdditions,
				base.Repartitions, base.SingleAdditions)
		}
	}
}

// TestPipelineConcurrentFanout: the concurrent executor with both fan-out
// knobs up must still process the full stream and feed Tracker and trend
// detector.
func TestPipelineConcurrentFanout(t *testing.T) {
	docs, _ := shortStream(t, 20000, 5)
	cfg := fastConfig(partition.DS)
	cfg.Trend = true
	cfg.TrendMinSupport = 1
	cfg.TrackerTasks = 4
	cfg.NotifyBatch = 64
	pipe, err := NewPipeline(cfg, SliceSource(docs))
	if err != nil {
		t.Fatal(err)
	}
	res := pipe.RunConcurrent()
	if res.DocsProcessed != 20000 {
		t.Errorf("docs processed = %d", res.DocsProcessed)
	}
	if len(res.Coefficients) == 0 {
		t.Fatal("no coefficients with fan-out enabled")
	}
	if received, _ := res.Tracker.Counts(); received == 0 {
		t.Error("tracker received no reports")
	}
	if res.Storm.Received("tracker") == 0 {
		t.Error("tracker component received no tuples")
	}
	if pipe.Trends().Tracked() == 0 {
		t.Error("trend detector tracked no predictors")
	}
	snap := pipe.Snapshot(10)
	if snap.TrackerTasks != 4 || snap.NotifyBatch != 64 {
		t.Errorf("snapshot knobs = %d/%d, want 4/64", snap.TrackerTasks, snap.NotifyBatch)
	}
}

// TestPipelineMultiDisseminatorAggregatedMetrics: with several Disseminator
// instances the headline Communication/LoadGini must cover all of them, not
// just the first (the pre-fix behavior silently reported a fraction of the
// traffic).
func TestPipelineMultiDisseminatorAggregatedMetrics(t *testing.T) {
	docs, _ := shortStream(t, 30000, 21)
	cfg := fastConfig(partition.DS)
	cfg.Disseminators = 2
	cfg.Parsers = 2
	pipe, err := NewPipeline(cfg, SliceSource(docs))
	if err != nil {
		t.Fatal(err)
	}
	res := pipe.Run()

	var notifications, notified int64
	per := make([]int64, cfg.K)
	for _, d := range pipe.Disseminators() {
		notifications += d.Stats.Notifications
		notified += d.Stats.NotifiedDocs
		for i, n := range d.Stats.PerCalculator {
			per[i] += n
		}
	}
	if notified == 0 {
		t.Fatal("no notified documents with two disseminators")
	}
	wantComm := float64(notifications) / float64(notified)
	if res.Communication != wantComm {
		t.Errorf("Communication = %g, want %g aggregated over both instances",
			res.Communication, wantComm)
	}
	if wantGini := metrics.GiniInts(per); res.LoadGini != wantGini {
		t.Errorf("LoadGini = %g, want %g aggregated over both instances",
			res.LoadGini, wantGini)
	}
	// Each instance routed only part of the stream, so the aggregate must
	// count strictly more notifications than either instance alone.
	for i, d := range pipe.Disseminators() {
		if d.Stats.Notifications >= notifications {
			t.Errorf("instance %d carries the whole notification count", i)
		}
	}
}

// TestPipelineAutoScale runs the Section 7.3 scaling mode end to end: a
// light stream must leave some of the K calculators idle.
func TestPipelineAutoScale(t *testing.T) {
	docs, _ := shortStream(t, 30000, 23)
	cfg := fastConfig(partition.DS)
	cfg.K = 8
	cfg.AutoScaleLoad = 1 << 40 // absurdly high target: one calculator suffices
	pipe, err := NewPipeline(cfg, SliceSource(docs))
	if err != nil {
		t.Fatal(err)
	}
	res := pipe.Run()
	active := 0
	for _, c := range res.Dissem.PerCalculator {
		if c > 0 {
			active++
		}
	}
	if active != 1 {
		t.Errorf("active calculators = %d, want 1 under auto-scaling", active)
	}
	if len(res.Coefficients) == 0 {
		t.Error("auto-scaled pipeline produced no coefficients")
	}
}
