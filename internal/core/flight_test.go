package core

import (
	"testing"

	"repro/internal/flight"
	"repro/internal/partition"
)

// TestFlightTraceSequentialEndToEnd is the trace acceptance test: a
// sequential run (deterministic tuple order) with every document traced
// must yield retained traces whose spans cover the document path —
// spout → partition → disseminate → calculate — in pipeline order with
// non-decreasing start stamps, plus tracker spans on the documents whose
// arrival triggered a calculator flush.
func TestFlightTraceSequentialEndToEnd(t *testing.T) {
	const nDocs = 20000
	docs, _ := shortStream(t, nDocs, 11)
	cfg := fastConfig(partition.DS)
	// Sample=1 traces everything; the huge SlowMS keeps tail retention out
	// of the picture; DoneCap holds the full run so nothing is evicted.
	frec := flight.NewRecorder(flight.Config{Sample: 1, SlowMS: 1 << 40, DoneCap: nDocs})
	cfg.Flight = frec
	pipe, err := NewPipeline(cfg, SliceSource(docs))
	if err != nil {
		t.Fatal(err)
	}
	res := pipe.Run()
	frec.FlushAll()

	st := frec.Snapshot()
	if st.DocsSeen != nDocs {
		t.Fatalf("recorder saw %d docs, pipeline processed %d", st.DocsSeen, nDocs)
	}
	if st.KeptSample != nDocs || st.Retained != nDocs {
		t.Fatalf("kept_sample=%d retained=%d, want %d traces retained", st.KeptSample, st.Retained, nDocs)
	}
	if st.LateSpans != 0 {
		t.Errorf("%d spans arrived after their trace finalized in a drained sequential run", st.LateSpans)
	}

	var complete, withTrack int
	for id := uint64(1); id <= nDocs; id++ {
		tr, ok := frec.TraceByID(id)
		if !ok {
			t.Fatalf("trace %d missing", id)
		}
		if tr.Spans[0].Stage != flight.StageSpout {
			t.Fatalf("trace %d: first span is %s, want spout", id, tr.Spans[0].Stage)
		}
		for i, sp := range tr.Spans {
			if sp.End < sp.Start {
				t.Fatalf("trace %d span %s: end %d before start %d", id, sp.Stage, sp.End, sp.Start)
			}
			if sp.Count < 1 {
				t.Fatalf("trace %d span %s: count %d", id, sp.Stage, sp.Count)
			}
			// In a sequential run each stage starts only after the previous
			// stage's tuple was handed over: starts are non-decreasing in
			// pipeline order.
			if i > 0 && sp.Start < tr.Spans[i-1].Start {
				t.Fatalf("trace %d: %s starts at %d before %s at %d",
					id, sp.Stage, sp.Start, tr.Spans[i-1].Stage, tr.Spans[i-1].Start)
			}
		}
		if tr.Complete() {
			complete++
		} else {
			// Incomplete traces are legitimate — bootstrap documents stop at
			// the partitioner, uncovered documents reach the disseminator but
			// notify no calculator — but one that did reach a calculator must
			// have the whole mandatory path behind it.
			for _, sp := range tr.Spans {
				if sp.Stage == flight.StageCalculate {
					t.Errorf("trace %d reached a calculator yet is incomplete: %+v", id, tr.Spans)
					break
				}
			}
		}
		for _, sp := range tr.Spans {
			if sp.Stage == flight.StageTrack {
				withTrack++
				break
			}
		}
	}
	if complete == 0 {
		t.Error("no complete trace in the whole run")
	}
	// Documents after the bootstrap install flow through all four stages;
	// most of the run should be complete traces.
	if complete < (nDocs-int(res.DocsBeforeInstall))/2 {
		t.Errorf("only %d complete traces out of %d post-install docs",
			complete, nDocs-int(res.DocsBeforeInstall))
	}
	if withTrack == 0 {
		t.Error("no trace carries a tracker span: calculator flushes lost their trace ids")
	}

	// Operational events: every repartition the run performed must have
	// left an event, and the ring must surface them in order.
	if res.Repartitions > 0 && frec.EventCount(flight.EventRepartition) == 0 {
		t.Errorf("%d repartitions happened but no repartition event was recorded", res.Repartitions)
	}
	evs := frec.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Errorf("events out of order: seq %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
}

// TestFlightTraceConcurrentPipeline runs the concurrent executor with
// sampling on and checks traces survive with merged spans and no data
// races (the -race CI shard runs this package).
func TestFlightTraceConcurrentPipeline(t *testing.T) {
	docs, _ := shortStream(t, 20000, 5)
	cfg := fastConfig(partition.DS)
	cfg.TrackerTasks = 2
	cfg.NotifyBatch = 16
	frec := flight.NewRecorder(flight.Config{Sample: 16, SlowMS: 1 << 40, DoneCap: 4096})
	cfg.Flight = frec
	pipe, err := NewPipeline(cfg, SliceSource(docs))
	if err != nil {
		t.Fatal(err)
	}
	h := pipe.Start()
	h.Wait()
	frec.FlushAll()

	st := frec.Snapshot()
	if st.DocsSeen != 20000 {
		t.Fatalf("recorder saw %d docs, want 20000", st.DocsSeen)
	}
	want := int64((20000-1)/16 + 1)
	if st.KeptSample != want {
		t.Errorf("kept_sample = %d, want %d head-sampled traces", st.KeptSample, want)
	}
	var complete int
	for _, s := range frec.Traces(8192) {
		tr, ok := frec.TraceByID(s.ID)
		if !ok {
			continue // finalized between the list and the lookup
		}
		for _, sp := range tr.Spans {
			if sp.End < sp.Start {
				t.Fatalf("trace %d span %s: end before start", tr.ID, sp.Stage)
			}
		}
		if tr.Complete() {
			complete++
		}
	}
	if complete == 0 {
		t.Error("no complete trace under the concurrent executor")
	}
}
