package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/twitgen"
)

// TestSnapshotConcurrentWithPruning hammers Pipeline.Snapshot from several
// goroutines while the concurrent executor streams a retention-bounded run
// (KeepPeriods small enough that periods are pruned mid-flight). Run under
// -race this covers the full read path — Tracker shard heaps, period
// registry, evicted LRU, disseminator stats, atomic storm counters — and
// asserts the invariants every mid-run snapshot must satisfy.
func TestSnapshotConcurrentWithPruning(t *testing.T) {
	dict := tagset.NewDictionary()
	gcfg := twitgen.Default()
	gcfg.Seed = 11
	gen, err := twitgen.New(gcfg, dict)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.WindowSpan = stream.Minutes(1)
	cfg.ReportEvery = stream.Minutes(1)
	cfg.KeepPeriods = 2
	cfg.EvictedPairs = 256
	cfg.NoSeries = true

	src, stop := StopSource(func() (stream.Document, bool) {
		return gen.Next(), true
	})
	pipe, err := NewPipeline(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	h := pipe.Start()

	const readers = 4
	var wg sync.WaitGroup
	var done atomic.Bool
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastDocs int64
			for !done.Load() {
				s := h.Snapshot(10)
				if len(s.TopK) > 10 {
					t.Errorf("snapshot top-k has %d entries, want <= 10", len(s.TopK))
					return
				}
				for i := 1; i < len(s.TopK); i++ {
					a, b := s.TopK[i-1], s.TopK[i]
					if b.J > a.J {
						t.Errorf("snapshot top-k out of order: J=%g after J=%g", b.J, a.J)
						return
					}
				}
				if len(s.Periods) > cfg.KeepPeriods {
					t.Errorf("snapshot retains %d periods, want <= %d", len(s.Periods), cfg.KeepPeriods)
					return
				}
				if s.DocsProcessed < lastDocs {
					t.Errorf("docs_processed went backwards: %d after %d", s.DocsProcessed, lastDocs)
					return
				}
				lastDocs = s.DocsProcessed
				if s.Tracker.HeapEntries > s.Tracker.Shards*s.Tracker.TopKBound {
					t.Errorf("tracker heaps hold %d entries over %d shards of bound %d",
						s.Tracker.HeapEntries, s.Tracker.Shards, s.Tracker.TopKBound)
					return
				}
			}
		}()
	}

	// Let the run stream until retention has pruned at least one period (so
	// the readers race real evictions), then drain.
	deadline := time.After(120 * time.Second)
	for h.Snapshot(1).Tracker.PrunedPeriods == 0 {
		select {
		case <-deadline:
			stop()
			t.Fatal("no period pruned within 120s")
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	stop()
	res := h.Wait()
	done.Store(true)
	wg.Wait()

	// The final snapshot agrees with the drained Result.
	final := h.Snapshot(10)
	if final.DocsProcessed != res.DocsProcessed {
		t.Errorf("final snapshot docs = %d, Result docs = %d", final.DocsProcessed, res.DocsProcessed)
	}
	if final.Tracker.PrunedPeriods < 1 {
		t.Errorf("final pruned periods = %d, want >= 1", final.Tracker.PrunedPeriods)
	}
}
