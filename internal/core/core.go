// Package core is the library's public entry point: it wires the paper's
// full operator topology (Figure 2) into a runnable Pipeline and collects
// the run's results — Jaccard coefficient reports, communication and load
// statistics, repartition history, and raw dataflow counters.
//
// A minimal use looks like:
//
//	cfg := core.DefaultConfig()
//	cfg.Algorithm = partition.DS
//	p, err := core.NewPipeline(cfg, core.GeneratorSource(gen, 100000))
//	res := p.Run()
//	for _, c := range res.Coefficients { ... }
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/archive"
	"repro/internal/flight"
	"repro/internal/jaccard"
	"repro/internal/operators"
	"repro/internal/partition"
	"repro/internal/storm"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/trend"
)

// Config re-exports the operator configuration as the pipeline's knob set.
type Config = operators.Config

// DefaultConfig returns the paper's default parameters (Section 8.2).
func DefaultConfig() Config { return operators.DefaultConfig() }

// DocumentSource yields the input stream; return false to end the run.
type DocumentSource func() (stream.Document, bool)

// GeneratorSource caps a generator-like Next function at n documents.
func GeneratorSource(next func() stream.Document, n int) DocumentSource {
	i := 0
	return func() (stream.Document, bool) {
		if i >= n {
			return stream.Document{}, false
		}
		i++
		return next(), true
	}
}

// StopSource wraps src so the stream can be ended from outside: after stop
// is called, the source reports end-of-stream regardless of remaining
// input. This is how a long-running service drains gracefully — stop the
// source, then Handle.Wait for the in-flight tuples to flush. stop is
// idempotent and safe to call from any goroutine.
func StopSource(src DocumentSource) (wrapped DocumentSource, stop func()) {
	var stopped atomic.Bool
	wrapped = func() (stream.Document, bool) {
		if stopped.Load() {
			return stream.Document{}, false
		}
		return src()
	}
	return wrapped, func() { stopped.Store(true) }
}

// SliceSource streams a fixed document slice.
func SliceSource(docs []stream.Document) DocumentSource {
	i := 0
	return func() (stream.Document, bool) {
		if i >= len(docs) {
			return stream.Document{}, false
		}
		d := docs[i]
		i++
		return d, true
	}
}

// Pipeline is a built, single-use instance of the full topology.
type Pipeline struct {
	cfg  Config
	topo *storm.Topology

	parsers       []*operators.Parser
	partitioners  []*operators.Partitioner
	merger        *operators.Merger
	disseminators []*operators.Disseminator
	calculators   []*operators.Calculator
	tracker       *operators.Tracker
	trends        *trend.Stream // nil unless cfg.Trend

	// Durability (nil / zero unless cfg.ArchiveDir): the segment/checkpoint
	// writer, the source cursor checkpoints record, the background
	// compactor maintaining the archive's compacted tier, and the period
	// counter driving the checkpoint cadence. archErr remembers the first
	// failed background checkpoint for ArchiveErr.
	arch          *archive.Writer
	cursor        *sourceCursor
	compactor     *archive.Compactor
	archMu        sync.Mutex
	archErr       error
	periodsOpened int64

	// The checkpoint writer goroutine: the period hook just marks a
	// checkpoint due; ckptLoop builds the state snapshot and does the gob
	// encode + fsync, all off the hot path. Synchronous Checkpoint callers
	// enqueue a pre-built snapshot into the single pending slot instead.
	// Both paths are single-flight, newest-wins: dues coalesce, a newer
	// pending snapshot replaces an unwritten older one (each snapshot is a
	// complete recovery point, so skipping a superseded one loses
	// nothing). ckptWritten is the highest enqueue seq covered by a
	// completed write; synchronous Checkpoint callers wait on it.
	ckptMu      sync.Mutex
	ckptCond    *sync.Cond
	ckptPending *archive.Checkpoint
	ckptDue     bool // a periodic checkpoint is due (coalesces)
	ckptSeq     uint64
	ckptWritten uint64
	ckptErr     error // error of the most recent completed write
	ckptClosed  bool
	ckptDone    chan struct{}

	// ckptCount counts completed checkpoint writes. ckptStallNS is
	// cumulative hot-path time: what the period hook spent marking
	// checkpoints due on a Tracker task's goroutine (the benchmark harness
	// surfaces it as checkpoint_stall_ms; with the build and write both on
	// the writer goroutine it is microseconds). ckptWriteNS is the
	// cumulative background time (state export + encode + fsync) that
	// used to be the stall before the writer moved off the hot path.
	ckptCount   atomic.Int64
	ckptStallNS atomic.Int64
	ckptWriteNS atomic.Int64

	// lastCkptNS is the telemetry.Now stamp of the most recent completed
	// checkpoint write (0: none yet). The watchdog's checkpoint-overdue
	// probe reads it through LastCheckpointAge.
	lastCkptNS atomic.Int64

	// stages holds the end-to-end stage-latency histograms every pipeline
	// maintains (doc→partition, doc→coefficient, doc→tracker-accept);
	// always non-nil after NewPipeline, shared with cfg.Stages when the
	// caller provided one. The checkpoint and compaction histograms meter
	// the durability path; they exist even with archiving off (then they
	// simply stay empty) so RegisterMetrics can wire them unconditionally.
	stages        *operators.Stages
	ckptBuildHist *telemetry.Histogram
	ckptWriteHist *telemetry.Histogram
	ckptFsyncHist *telemetry.Histogram
	compactHist   *telemetry.Histogram
}

// NewPipeline assembles the topology for the given configuration and input.
// The returned pipeline is single-use: call exactly one of Run,
// RunConcurrent or Start. Snapshot may be called at any time, including
// while the run is streaming.
func NewPipeline(cfg Config, src DocumentSource) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("core: nil document source")
	}
	if cfg.Stages == nil {
		cfg.Stages = operators.NewStages()
	}
	p := &Pipeline{
		cfg:           cfg,
		stages:        cfg.Stages,
		ckptBuildHist: telemetry.NewHistogram(),
		ckptWriteHist: telemetry.NewHistogram(),
		ckptFsyncHist: telemetry.NewHistogram(),
		compactHist:   telemetry.NewHistogram(),
	}

	if cfg.ArchiveDir != "" {
		w, err := archive.OpenWriter(cfg.ArchiveDir)
		if err != nil {
			return nil, err
		}
		w.SetFsyncHist(p.ckptFsyncHist)
		p.arch = w
		p.cursor = newSourceCursor(cfg.ReportEvery)
		src = p.cursor.wrap(src)
		p.ckptCond = sync.NewCond(&p.ckptMu)
		p.ckptDone = make(chan struct{})
		go p.ckptLoop()
	}

	b := storm.NewBuilder()
	b.Spout("source", func() storm.Spout {
		s := operators.NewSource(src)
		s.SetFlight(cfg.Flight)
		return s
	}, 1)

	b.Bolt("parser", func() storm.Bolt {
		ps := operators.NewParser(cfg.MaxTags)
		p.parsers = append(p.parsers, ps)
		return ps
	}, cfg.Parsers).Shuffle("source")

	b.Bolt("partitioner", func() storm.Bolt {
		pt := operators.NewPartitioner(cfg)
		p.partitioners = append(p.partitioners, pt)
		return pt
	}, cfg.P).
		Fields("parser", operators.TagsetKey).
		All("disseminator")

	b.Bolt("merger", func() storm.Bolt {
		p.merger = operators.NewMerger(cfg)
		return p.merger
	}, 1).
		Shuffle("partitioner").
		Shuffle("disseminator")

	b.Bolt("disseminator", func() storm.Bolt {
		d := operators.NewDisseminator(cfg)
		p.disseminators = append(p.disseminators, d)
		return d
	}, cfg.Disseminators).
		Shuffle("parser").
		All("merger")

	b.Bolt("calculator", func() storm.Bolt {
		c := operators.NewCalculator(cfg)
		p.calculators = append(p.calculators, c)
		return c
	}, cfg.K).Direct("disseminator")

	// All Tracker tasks share the one thread-safe Tracker instance (shard
	// locks, atomics, period registry — the same pattern Trend uses with
	// the shared trend.Stream), wired fields-grouped on the tagset-key hash
	// so per-tagset arrival order is preserved for CN-upgrade dedup and
	// StreamTrend emission. Calculators split each period flush into
	// per-task sub-batches with the same hash (CoeffBatch.Route).
	trackerTasks := cfg.TrackerTasks
	if trackerTasks == 0 {
		trackerTasks = 1
	}
	b.Bolt("tracker", func() storm.Bolt {
		if p.tracker == nil {
			p.tracker = operators.NewTrackerWith(cfg.TrackerShards, cfg.TrackerTopK, cfg.EvictedPairs)
			p.tracker.SetRetention(cfg.KeepPeriods)
			p.tracker.SetStages(cfg.Stages)
			p.tracker.SetFlight(cfg.Flight)
			if cfg.Trend {
				p.tracker.EnableTrendEmit()
			}
			if p.arch != nil {
				p.tracker.SetArchive(p.arch)
				p.tracker.SetPeriodHook(p.onPeriodOpen)
			}
		}
		return p.tracker
	}, trackerTasks).Fields("calculator", operators.CoeffKey)

	if cfg.Trend {
		det, err := trend.NewStream(cfg.TrendStreamConfig())
		if err != nil {
			return nil, err
		}
		p.trends = det
		if p.arch != nil {
			det.SetArchive(p.arch)
		}
		tasks := cfg.TrendTasks
		if tasks == 0 {
			tasks = 1
		}
		b.Bolt("trend", func() storm.Bolt {
			tb := operators.NewTrend(det)
			tb.SetFlight(cfg.Flight)
			return tb
		}, tasks).Fields("tracker", operators.TrendKey)
	}

	topo, err := b.Build()
	if err != nil {
		return nil, err
	}
	if cfg.SpoutPending > 0 {
		topo.SetMaxSpoutPending(cfg.SpoutPending)
	}
	if cfg.Flight != nil {
		// Every spout park increments the storm counter; the flight event
		// is rate-limited to one per second so a saturated run does not
		// flood the ring with identical entries.
		var lastSat atomic.Int64
		rec := cfg.Flight
		topo.SetThrottleHook(func() {
			now := telemetry.Now()
			last := lastSat.Load()
			if now-last >= int64(time.Second) && lastSat.CompareAndSwap(last, now) {
				rec.RecordEvent(flight.EventThrottleSaturated,
					fmt.Sprintf("spout parked at max-spout-pending=%d", topo.MaxSpoutPending()))
			}
		})
	}
	p.topo = topo

	// The compactor maintains the archive's compacted tier in the
	// background. It needs a seal watermark — periods at or below the
	// retention pruning floor can never be appended to again — so it only
	// runs when retention is on; an unbounded-retention pipeline never
	// seals a period for good.
	if p.arch != nil && cfg.KeepPeriods > 0 {
		p.compactor = archive.NewCompactor(cfg.ArchiveDir, archive.CompactorConfig{
			BudgetBytes: cfg.ArchiveBudgetBytes,
			SafeBelow:   p.archiveSafeBelow,
		})
		p.compactor.SetDurationHist(p.compactHist)
		if cfg.Flight != nil {
			rec := cfg.Flight
			var prev archive.CompactorStats
			var prevMu sync.Mutex
			p.compactor.SetPassHook(func(st archive.CompactorStats, err error) {
				prevMu.Lock()
				compacted := st.Compactions - prev.Compactions
				aged := st.AgedOutPeriods - prev.AgedOutPeriods
				prev = st
				prevMu.Unlock()
				if err != nil {
					rec.RecordEvent(flight.EventArchiveError, "compactor pass: "+err.Error())
					return
				}
				if compacted > 0 || aged > 0 {
					rec.RecordEvent(flight.EventCompaction, fmt.Sprintf(
						"pass wrote %d compacted files, aged out %d periods, dir=%dB",
						compacted, aged, st.DirBytes))
				}
			})
		}
		p.compactor.Start()
	}
	return p, nil
}

// archiveSafeBelow is the compactor's seal watermark: the newest period
// that neither the Tracker nor the trend detector will ever append to
// again (both prune independently, so the safe point is the older of the
// two floors).
func (p *Pipeline) archiveSafeBelow() int64 {
	floor := p.tracker.PruneFloor()
	if p.trends != nil {
		if tf := p.trends.PruneFloor(); tf < floor {
			floor = tf
		}
	}
	return floor
}

// Result summarises one pipeline run.
type Result struct {
	// Coefficients are the Tracker's deduplicated Jaccard reports across
	// all reporting periods.
	Coefficients []jaccard.Coefficient

	// Communication is the run-average notifications per notified document
	// (Figure 3); LoadGini the Gini coefficient of cumulative per-
	// Calculator notifications (Figure 4).
	Communication float64
	LoadGini      float64

	// Repartitions splits post-bootstrap repartition requests by trigger
	// cause (Figure 6).
	Repartitions      int
	RepartitionsComm  int
	RepartitionsLoad  int
	RepartitionsBoth  int
	SingleAdditions   int
	Merges            int
	UncoveredDocs     int64
	DocsProcessed     int64
	DocsBeforeInstall int64

	// Dissem exposes the full per-run statistics (time series for
	// Figures 8 and 9) of the first Disseminator instance.
	Dissem *operators.DissemStats

	// Tracker grants access to per-period reports; Storm to raw dataflow
	// counters.
	Tracker *operators.Tracker
	Storm   *storm.Stats
}

// Run executes the pipeline on the deterministic sequential executor and
// gathers the results. The pipeline is single-use: Run, RunConcurrent and
// Start are mutually exclusive and may be invoked at most once in total.
// While a run is in progress, Snapshot (from another goroutine) exposes
// the live state; after Run returns, the Result carries the final totals.
func (p *Pipeline) Run() *Result {
	st := p.topo.RunSequential()
	return p.collect(st)
}

// RunConcurrent executes the pipeline with one goroutine per task. Results
// carry the same totals as Run, but interleaving-dependent details (exact
// repartition positions, coefficient values near period boundaries) may
// differ run to run.
func (p *Pipeline) RunConcurrent() *Result {
	st := p.topo.RunConcurrent()
	return p.collect(st)
}

func (p *Pipeline) collect(st *storm.Stats) *Result {
	// The stream has drained: write the end-of-run checkpoint and close the
	// segment files (no-op without Config.ArchiveDir).
	p.finishArchive()
	r := &Result{
		Coefficients: p.tracker.All(),
		Merges:       p.merger.Merges,
		Tracker:      p.tracker,
		Storm:        st,
	}
	// Aggregate the notification quantities across every Disseminator
	// instance before deriving the headline metrics: with
	// Config.Disseminators > 1 each instance routes a fraction of the
	// traffic, and Communication/LoadGini computed from one instance alone
	// would silently cover only that fraction.
	var agg operators.DissemStats
	for _, d := range p.disseminators {
		s := &d.Stats
		r.Repartitions += s.Repartitions
		r.RepartitionsComm += s.CauseComm
		r.RepartitionsLoad += s.CauseLoad
		r.RepartitionsBoth += s.CauseBoth
		r.SingleAdditions += s.AdditionsAsked
		r.UncoveredDocs += s.UncoveredDocs
		r.DocsProcessed += s.Docs
		r.DocsBeforeInstall += s.BeforePartition
		agg.Notifications += s.Notifications
		agg.NotifiedDocs += s.NotifiedDocs
		if len(s.PerCalculator) > len(agg.PerCalculator) {
			grown := make([]int64, len(s.PerCalculator))
			copy(grown, agg.PerCalculator)
			agg.PerCalculator = grown
		}
		for i, n := range s.PerCalculator {
			agg.PerCalculator[i] += n
		}
	}
	// Dissem still exposes the first instance's full statistics (the figure
	// time series are per-instance); the scalar metrics above are exact
	// across instances.
	r.Dissem = &p.disseminators[0].Stats
	r.Communication = agg.Communication()
	r.LoadGini = agg.LoadGini()
	return r
}

// Flight returns the pipeline's flight recorder (nil when none was
// configured).
func (p *Pipeline) Flight() *flight.Recorder { return p.cfg.Flight }

// Archiving reports whether the durability subsystem is active.
func (p *Pipeline) Archiving() bool { return p.arch != nil }

// LastCheckpointAge returns how long ago the last checkpoint write
// completed; ok is false if none has completed yet.
func (p *Pipeline) LastCheckpointAge() (age time.Duration, ok bool) {
	stamp := p.lastCkptNS.Load()
	if stamp == 0 {
		return 0, false
	}
	return telemetry.Since(stamp), true
}

// ThrottleSaturations returns how many times the spout hit the
// max-spout-pending cap and parked (concurrent executor only).
func (p *Pipeline) ThrottleSaturations() int64 {
	return p.topo.Stats().ThrottleSaturations()
}

// Merger exposes the merger bolt (current partitions after a run).
func (p *Pipeline) Merger() *operators.Merger { return p.merger }

// Partitions returns the final partitions (nil if no merge happened).
func (p *Pipeline) Partitions() *partition.Result { return p.merger.Current() }

// Calculators exposes the calculator bolts.
func (p *Pipeline) Calculators() []*operators.Calculator { return p.calculators }

// Disseminators exposes the disseminator bolts.
func (p *Pipeline) Disseminators() []*operators.Disseminator { return p.disseminators }
