package core

import (
	"repro/internal/flight"
	"repro/internal/operators"
	"repro/internal/telemetry"
)

// stormComponents lists the topology's component names for the per-bolt
// dataflow metrics ("trend" is appended when the detector runs).
var stormComponents = []string{
	"source", "parser", "partitioner", "merger", "disseminator", "calculator", "tracker",
}

// RegisterMetrics wires the pipeline's live counters into a telemetry
// registry under the tagcorr_<subsystem>_<name>_<unit> naming convention.
// Call once between NewPipeline and the run; every series reads through
// the operators' own thread-safe accessors, so scrapes are safe at any
// moment of a concurrent run and never block ingest. Archive families are
// registered even with archiving off (they just stay zero), keeping the
// scrape surface identical across configurations.
func (p *Pipeline) RegisterMetrics(reg *telemetry.Registry) {
	p.registerStormMetrics(reg)
	p.registerDissemMetrics(reg)
	p.registerTrackerMetrics(reg)
	p.registerStageMetrics(reg)
	p.registerArchiveMetrics(reg)
	p.registerFlightMetrics(reg)
	if p.trends != nil {
		p.registerTrendMetrics(reg)
	}
}

func (p *Pipeline) registerStormMetrics(reg *telemetry.Registry) {
	comps := stormComponents
	if p.trends != nil {
		comps = append(append([]string(nil), comps...), "trend")
	}
	st := p.topo.Stats()
	for _, c := range comps {
		c := c
		reg.CounterFunc("tagcorr_storm_tuples_emitted_total",
			"Tuples emitted by each topology component.",
			telemetry.Labels{"component": c}, func() int64 { return st.Emitted(c) })
		reg.CounterFunc("tagcorr_storm_tuples_received_total",
			"Tuples received by each topology component.",
			telemetry.Labels{"component": c}, func() int64 { return st.Received(c) })
		reg.GaugeFunc("tagcorr_storm_mailbox_high_water_tuples",
			"Deepest mailbox backlog observed by any task of the component, in tuples (0 under the sequential executor).",
			telemetry.Labels{"component": c}, func() float64 {
				var max int64
				for _, d := range st.MailboxHighWater(p.topo, c) {
					if d > max {
						max = d
					}
				}
				return float64(max)
			})
	}
	reg.CounterFunc("tagcorr_storm_mailbox_compactions_total",
		"Steady-backlog mailbox compactions across all tasks.",
		nil, st.MailboxCompactions)
}

// dissemTotals aggregates the scalar notification counters across every
// Disseminator instance (each routes a fraction of the traffic).
func (p *Pipeline) dissemTotals() operators.DissemStats {
	var agg operators.DissemStats
	for _, d := range p.disseminators {
		s := d.SnapshotStats()
		agg.Docs += s.Docs
		agg.BeforePartition += s.BeforePartition
		agg.NotifiedDocs += s.NotifiedDocs
		agg.Notifications += s.Notifications
		agg.UncoveredDocs += s.UncoveredDocs
		agg.Repartitions += s.Repartitions
		agg.CauseComm += s.CauseComm
		agg.CauseLoad += s.CauseLoad
		agg.CauseBoth += s.CauseBoth
		agg.AdditionsAsked += s.AdditionsAsked
		if len(s.PerCalculator) > len(agg.PerCalculator) {
			grown := make([]int64, len(s.PerCalculator))
			copy(grown, agg.PerCalculator)
			agg.PerCalculator = grown
		}
		for i, n := range s.PerCalculator {
			agg.PerCalculator[i] += n
		}
	}
	return agg
}

func (p *Pipeline) registerDissemMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("tagcorr_dissem_docs_total",
		"Parsed documents seen by the Disseminators.",
		nil, func() int64 { return p.dissemTotals().Docs })
	reg.CounterFunc("tagcorr_dissem_notifications_total",
		"Calculator notifications sent.",
		nil, func() int64 { return p.dissemTotals().Notifications })
	reg.CounterFunc("tagcorr_dissem_notified_docs_total",
		"Documents that produced at least one notification.",
		nil, func() int64 { return p.dissemTotals().NotifiedDocs })
	reg.CounterFunc("tagcorr_dissem_uncovered_docs_total",
		"Documents whose tagset no single Calculator fully held.",
		nil, func() int64 { return p.dissemTotals().UncoveredDocs })
	reg.CounterFunc("tagcorr_dissem_single_additions_total",
		"Single-Addition placements requested from the Merger.",
		nil, func() int64 { return int64(p.dissemTotals().AdditionsAsked) })
	for _, cause := range []string{"comm", "load", "both"} {
		cause := cause
		reg.CounterFunc("tagcorr_dissem_repartitions_total",
			"Post-bootstrap repartition requests by trigger cause.",
			telemetry.Labels{"cause": cause}, func() int64 {
				s := p.dissemTotals()
				switch cause {
				case "comm":
					return int64(s.CauseComm)
				case "load":
					return int64(s.CauseLoad)
				default:
					return int64(s.CauseBoth)
				}
			})
	}
	reg.GaugeFunc("tagcorr_dissem_communication", //vet:ok metricnames -- the paper's dimensionless communication measure (Section 8.2.1); the name is kept verbatim so dashboards match the paper's terminology
		"Run-average notifications per notified document (paper Section 8.2.1).",
		nil, func() float64 { s := p.dissemTotals(); return s.Communication() })
	reg.GaugeFunc("tagcorr_dissem_load_gini", //vet:ok metricnames -- Gini coefficient of the paper's load measure (Section 8.2.2); dimensionless by definition and named after the paper
		"Gini coefficient of cumulative per-Calculator notifications (paper Section 8.2.2).",
		nil, func() float64 { s := p.dissemTotals(); return s.LoadGini() })
}

func (p *Pipeline) registerTrackerMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("tagcorr_tracker_coefficients_received_total",
		"Coefficient reports the Tracker received, duplicates included.",
		nil, func() int64 { return p.tracker.StatsSnapshot().Received })
	reg.CounterFunc("tagcorr_tracker_coefficients_duplicate_total",
		"Coefficient reports dropped by CN-max dedup.",
		nil, func() int64 { return p.tracker.StatsSnapshot().Duplicates })
	reg.GaugeFunc("tagcorr_tracker_retained_coefficients",
		"Coefficients currently retained across all shards.",
		nil, func() float64 { return float64(p.tracker.StatsSnapshot().Retained) })
	reg.GaugeFunc("tagcorr_tracker_heap_entries",
		"Entries currently held in the incrementally maintained shard top-k heaps.",
		nil, func() float64 { return float64(p.tracker.StatsSnapshot().HeapEntries) })
	reg.CounterFunc("tagcorr_tracker_heap_rebuilds_total",
		"Shard heap rebuilds (prunes, demotions, bound changes).",
		nil, func() int64 { return p.tracker.StatsSnapshot().Rebuilds })
	reg.GaugeFunc("tagcorr_tracker_retained_periods",
		"Reporting periods currently retained.",
		nil, func() float64 { return float64(p.tracker.StatsSnapshot().RetainedPeriods) })
	reg.CounterFunc("tagcorr_tracker_pruned_periods_total",
		"Reporting periods evicted by retention.",
		nil, func() int64 { return p.tracker.StatsSnapshot().PrunedPeriods })
	reg.GaugeFunc("tagcorr_tracker_evicted_lru_entries",
		"Pairs currently held in the evicted-coefficient LRU.",
		nil, func() float64 { return float64(p.tracker.StatsSnapshot().EvictedLen) })
	reg.CounterFunc("tagcorr_tracker_evicted_lru_hits_total",
		"Pair lookups answered from the evicted-coefficient LRU.",
		nil, func() int64 { return p.tracker.StatsSnapshot().EvictedHits })
	reg.CounterFunc("tagcorr_tracker_evicted_lru_misses_total",
		"Evicted-LRU lookups that found nothing.",
		nil, func() int64 { return p.tracker.StatsSnapshot().EvictedMisses })
}

func (p *Pipeline) registerStageMetrics(reg *telemetry.Registry) {
	reg.Observe("tagcorr_stage_doc_partition_seconds",
		"Latency from a document's ingest stamp to its arrival in a Partitioner window.",
		telemetry.Labels{"stage": "doc_partition"}, p.stages.DocPartition)
	reg.Observe("tagcorr_stage_doc_coefficient_seconds",
		"Latency from a document's ingest stamp to the coefficient flush it triggered leaving a Calculator.",
		telemetry.Labels{"stage": "doc_coefficient"}, p.stages.DocCoefficient)
	reg.Observe("tagcorr_stage_doc_tracker_accept_seconds",
		"Latency from a document's ingest stamp to the Tracker accepting its triggered flush.",
		telemetry.Labels{"stage": "doc_tracker_accept"}, p.stages.DocTrackerAccept)
}

func (p *Pipeline) registerArchiveMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("tagcorr_archive_checkpoints_total",
		"Completed checkpoint writes.",
		nil, p.ckptCount.Load)
	reg.Observe("tagcorr_archive_checkpoint_build_seconds",
		"Checkpoint state-export latency (deep copy under the operator locks).",
		nil, p.ckptBuildHist)
	reg.Observe("tagcorr_archive_checkpoint_write_seconds",
		"Checkpoint encode + write + fsync + rename latency on the writer goroutine.",
		nil, p.ckptWriteHist)
	reg.Observe("tagcorr_archive_checkpoint_fsync_seconds",
		"fsync portion of each checkpoint write.",
		nil, p.ckptFsyncHist)
	reg.Observe("tagcorr_archive_compaction_seconds",
		"Duration of each background compactor pass.",
		nil, p.compactHist)
	reg.CounterFunc("tagcorr_archive_compactions_total",
		"Compacted archive files written.",
		nil, func() int64 { return p.CompactorStats().Compactions })
	reg.CounterFunc("tagcorr_archive_compacted_periods_total",
		"Raw period segments folded into compacted files.",
		nil, func() int64 { return p.CompactorStats().CompactedPeriods })
	reg.CounterFunc("tagcorr_archive_aged_out_periods_total",
		"Periods deleted from the compacted tier under the disk budget.",
		nil, func() int64 { return p.CompactorStats().AgedOutPeriods })
	reg.CounterFunc("tagcorr_archive_aged_out_bytes_total",
		"Bytes freed by deleting aged-out compacted periods.",
		nil, func() int64 { return p.CompactorStats().AgedOutBytes })
	reg.GaugeFunc("tagcorr_archive_dir_bytes",
		"Archive directory size after the compactor's last pass.",
		nil, func() float64 { return float64(p.CompactorStats().DirBytes) })
}

// registerFlightMetrics exports the flight recorder's counters. Like the
// archive families, they are registered even when no recorder is
// configured (every accessor is nil-safe and reads zero), so the scrape
// surface stays identical across configurations.
func (p *Pipeline) registerFlightMetrics(reg *telemetry.Registry) {
	rec := p.cfg.Flight
	for _, kind := range flight.EventKinds {
		kind := kind
		reg.CounterFunc("tagcorr_flight_events_total",
			"Operational events recorded into the flight ring, by kind.",
			telemetry.Labels{"kind": kind}, func() int64 { return rec.EventCount(kind) })
	}
	reg.CounterFunc("tagcorr_flight_traces_started_total",
		"Documents granted a provisional span trace at the spout.",
		nil, func() int64 { return rec.Snapshot().TracesStarted })
	for _, reason := range []string{"sample", "slow"} {
		reason := reason
		reg.CounterFunc("tagcorr_flight_traces_retained_total",
			"Finalized traces retained, by reason (deterministic head sample vs tail-based slowest-K).",
			telemetry.Labels{"reason": reason}, func() int64 {
				s := rec.Snapshot()
				if reason == "sample" {
					return s.KeptSample
				}
				return s.KeptSlow
			})
	}
	reg.CounterFunc("tagcorr_flight_traces_discarded_total",
		"Finalized traces discarded (neither head-sampled nor among the window's slowest).",
		nil, func() int64 { return rec.Snapshot().Discarded })
	reg.GaugeFunc("tagcorr_flight_active_traces",
		"Provisional traces currently awaiting finalization.",
		nil, func() float64 { return float64(rec.Snapshot().Active) })
	reg.GaugeFunc("tagcorr_flight_retained_traces",
		"Finalized traces currently held for /debug/traces.",
		nil, func() float64 { return float64(rec.Snapshot().Retained) })
}

func (p *Pipeline) registerTrendMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("tagcorr_trend_deviations_scored_total",
		"Deviation events scored by the streaming trend detector.",
		nil, func() int64 { return p.trends.StatsSnapshot().Scored })
	reg.CounterFunc("tagcorr_trend_filtered_total",
		"Trend observations below the minimum-support floor.",
		nil, func() int64 { return p.trends.StatsSnapshot().Filtered })
	reg.CounterFunc("tagcorr_trend_published_total",
		"Trend events delivered to at least one subscriber.",
		nil, func() int64 { return p.trends.StatsSnapshot().Published })
	reg.CounterFunc("tagcorr_trend_subscriber_drops_total",
		"Per-subscriber trend deliveries lost to full buffers.",
		nil, func() int64 { return p.trends.StatsSnapshot().Dropped })
	reg.GaugeFunc("tagcorr_trend_subscribers",
		"Live trend event subscribers.",
		nil, func() float64 { return float64(p.trends.StatsSnapshot().Subscribers) })
	reg.GaugeFunc("tagcorr_trend_tracked_predictors",
		"Live EWMA predictors across all trend shards.",
		nil, func() float64 { return float64(p.trends.StatsSnapshot().Tracked) })
}
