package core

import (
	"math"
	"os"
	"testing"
	"time"

	"repro/internal/stream"
	"repro/internal/tagset"
)

// TestSourceCursorCut covers both branches of the checkpoint cursor's cut:
// a hit replays from the cut period's first document and prunes everything
// below it; a miss (the MaxInt64 sentinel, or a cut period imported from a
// checkpoint) falls back to the base and still prunes — the regression the
// early-return leak used to cause was entries accumulating forever on
// checkpoint-heavy runs whose cuts kept missing.
func TestSourceCursorCut(t *testing.T) {
	c := newSourceCursor(stream.Seconds(5))
	src := c.wrap(SliceSource([]stream.Document{
		{Time: 0},     // period 1, index 0
		{Time: 4000},  // period 1
		{Time: 5000},  // period 2, index 2
		{Time: 9000},  // period 2
		{Time: 10000}, // period 3, index 4
	}))
	for {
		if _, ok := src(); !ok {
			break
		}
	}

	// Hit: replay from period 2's first document; period 1 is pruned.
	docs, from := c.cut(2)
	if docs != 5 || from != 2 {
		t.Fatalf("cut(2) = (%d, %d), want (5, 2)", docs, from)
	}
	c.mu.Lock()
	_, has1 := c.firstDoc[1]
	_, has2 := c.firstDoc[2]
	c.mu.Unlock()
	if has1 || !has2 {
		t.Fatalf("hit prune: period 1 kept=%v, period 2 kept=%v", has1, has2)
	}

	// Miss (sentinel): fall back to base and prune everything below the
	// newest recorded period — which stays, because a later cut can still
	// land on it.
	docs, from = c.cut(math.MaxInt64)
	if docs != 5 || from != 0 {
		t.Fatalf("cut(sentinel) = (%d, %d), want (5, 0)", docs, from)
	}
	c.mu.Lock()
	n := len(c.firstDoc)
	_, has3 := c.firstDoc[3]
	c.mu.Unlock()
	if n != 1 || !has3 {
		t.Fatalf("miss prune left %d entries (period 3 kept=%v), want just period 3", n, has3)
	}

	// A cursor seeded by Adopt (base > 0) falls back to base on a miss,
	// never to 0 — replay may only overlap, never skip.
	c2 := newSourceCursor(stream.Seconds(5))
	c2.mu.Lock()
	c2.base = 100
	c2.mu.Unlock()
	if docs, from := c2.cut(7); docs != 100 || from != 100 {
		t.Fatalf("seeded miss cut = (%d, %d), want (100, 100)", docs, from)
	}
}

// TestSourceCursorCutNoLeak drives many periods through a cursor whose cuts
// always miss (the sentinel) and asserts the first-document map stays
// bounded instead of growing one entry per period.
func TestSourceCursorCutNoLeak(t *testing.T) {
	c := newSourceCursor(stream.Seconds(1))
	period := 0
	src := c.wrap(func() (stream.Document, bool) {
		period++
		return stream.Document{Time: stream.Millis(period * 1000)}, true
	})
	for i := 0; i < 200; i++ {
		src()
		c.cut(math.MaxInt64)
		c.mu.Lock()
		n := len(c.firstDoc)
		c.mu.Unlock()
		if n > 1 {
			t.Fatalf("iteration %d: %d cursor entries retained, want <= 1", i, n)
		}
	}
}

// TestCheckpointAsyncWriter exercises the dedicated checkpoint writer
// directly: synchronous Checkpoint calls complete through the background
// goroutine, the direct fallback still works after the writer stops, and
// the writer-closed error surfaces once the archive is closed — the same
// semantics the hot-path hook relies on.
func TestCheckpointAsyncWriter(t *testing.T) {
	dir := t.TempDir()
	dict := tagset.NewDictionary()
	pipe, err := NewPipeline(restoreConfig(dir, dict), SliceSource(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.Checkpoint(); err != nil {
		t.Fatalf("sync checkpoint through the writer goroutine: %v", err)
	}
	if err := pipe.Checkpoint(); err != nil {
		t.Fatalf("second sync checkpoint: %v", err)
	}
	if n, _ := pipe.CheckpointStats(); n != 2 {
		t.Fatalf("checkpoints written = %d, want 2", n)
	}
	if files := checkpointFiles(t, dir); len(files) != 2 {
		t.Fatalf("checkpoint files = %v, want 2 (retention)", files)
	}

	// After the writer goroutine stops (the run drained), Checkpoint falls
	// back to writing directly and still succeeds while the archive is open.
	pipe.closeCkptWriter()
	if err := pipe.Checkpoint(); err != nil {
		t.Fatalf("direct checkpoint after writer close: %v", err)
	}
	if n, _ := pipe.CheckpointStats(); n != 3 {
		t.Fatalf("checkpoints written = %d, want 3", n)
	}
	if pipe.CheckpointWriteTime() <= 0 {
		t.Error("background write time not metered")
	}

	// Once the archive itself closes, the writer-closed error surfaces.
	pipe.arch.Close()
	if err := pipe.Checkpoint(); err == nil {
		t.Fatal("checkpoint after archive close succeeded")
	}
}

// TestCheckpointHookAsync pins the periodic checkpoint path: the period
// hook does nothing but mark a checkpoint due — the state export, encode
// and fsync all happen on the writer goroutine — yet a due hook alone must
// still produce a durable checkpoint file, and dues raised while the
// writer is busy must coalesce instead of queueing up.
func TestCheckpointHookAsync(t *testing.T) {
	dir := t.TempDir()
	dict := tagset.NewDictionary()
	pipe, err := NewPipeline(restoreConfig(dir, dict), SliceSource(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.arch.Close()

	// A due hook, no synchronous Checkpoint call anywhere: the writer
	// goroutine builds and persists the snapshot on its own.
	pipe.onPeriodOpen(1)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n, _ := pipe.CheckpointStats(); n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hook-driven checkpoint never written")
		}
		time.Sleep(time.Millisecond)
	}
	if files := checkpointFiles(t, dir); len(files) != 1 {
		t.Fatalf("checkpoint files = %v, want 1", files)
	}

	// Dues coalesce: with the writer parked, many hook firings collapse
	// into one due flag, and un-parking it yields exactly one more write.
	pipe.closeCkptWriter() // park: due flags are no longer consumed
	base, _ := pipe.CheckpointStats()
	for period := int64(2); period < 10; period++ {
		pipe.onPeriodOpen(period)
	}
	pipe.ckptMu.Lock()
	due, pending := pipe.ckptDue, pipe.ckptPending
	pipe.ckptMu.Unlock()
	if !due || pending != nil {
		t.Fatalf("due = %v pending = %v, want coalesced due flag only", due, pending)
	}
	if n, _ := pipe.CheckpointStats(); n != base {
		t.Fatalf("parked writer wrote %d checkpoints", n-base)
	}
}

// TestRestoreAfterKillMidCheckpoint simulates SIGKILL arriving mid-write of
// the background checkpoint goroutine: the in-flight temp file survives,
// the newest published checkpoint is torn short, and recovery must fall
// back to the previous checkpoint and replay to a state bit-identical to
// an uninterrupted run.
func TestRestoreAfterKillMidCheckpoint(t *testing.T) {
	docs, dict := restoreStream(t, 30000) // 30 virtual seconds ≈ 6 periods
	cut := 18000

	refDir := t.TempDir()
	ref := snapshotRef(runWhole(t, refDir, dict, docs))

	dirB := t.TempDir()
	runWhole(t, dirB, dict, docs[:cut])

	seqs := checkpointFiles(t, dirB)
	if len(seqs) < 2 {
		t.Fatalf("expected >= 2 retained checkpoints, got %v", seqs)
	}
	newest := seqs[len(seqs)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	// The kill tore the newest checkpoint short and left the temp file of
	// the write that was in flight.
	if err := os.WriteFile(newest, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest+".tmp", data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	resumed := resumeFrom(t, dirB, docs)
	compareRecovered(t, ref, resumed)
}
