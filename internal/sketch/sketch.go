// Package sketch implements the probabilistic summaries the paper's
// related work weighs and rejects (Section 2): Bloom filters [Bloom 1970]
// and Count-Min sketches [Cormode & Muthukrishnan]. The paper argues that
// representing each tag's document set with a sketch makes non-co-occurring
// tag pairs look co-occurring ("false positives"), which in a stream where
// most pairs do NOT co-occur forces the system to track vastly more pairs.
//
// The package exists to quantify that claim: BenchmarkAblationSketches
// compares exact counter tables against sketch-backed co-occurrence
// detection and reports the false-pair blow-up.
package sketch

import (
	"fmt"
	"hash/maphash"
	"math"
)

// Bloom is a standard Bloom filter over string keys.
type Bloom struct {
	bits  []uint64
	m     uint64 // number of bits
	k     int    // hash functions
	seed1 maphash.Seed
	seed2 maphash.Seed
	n     int64 // inserted elements
}

// NewBloom sizes a filter for the expected number of elements n and target
// false-positive probability p, using the standard optimal formulas
// m = -n ln p / (ln 2)² and k = (m/n) ln 2. It panics on invalid inputs.
func NewBloom(n int, p float64) *Bloom {
	if n < 1 || p <= 0 || p >= 1 {
		panic(fmt.Sprintf("sketch: NewBloom(%d, %g)", n, p))
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return &Bloom{
		bits:  make([]uint64, (m+63)/64),
		m:     m,
		k:     k,
		seed1: maphash.MakeSeed(),
		seed2: maphash.MakeSeed(),
	}
}

// CloneEmpty returns an empty filter with the same sizing and hash seeds as
// p. Filters must share sizing and seeds for EstimateIntersection to be
// meaningful, so per-tag filters are derived from one prototype.
func CloneEmpty(p *Bloom) *Bloom {
	return &Bloom{
		bits:  make([]uint64, len(p.bits)),
		m:     p.m,
		k:     p.k,
		seed1: p.seed1,
		seed2: p.seed2,
	}
}

// hash2 derives two independent 64-bit hashes of key; the k probe
// positions use Kirsch–Mitzenmacher double hashing h1 + i*h2.
func (b *Bloom) hash2(key string) (uint64, uint64) {
	h1 := maphash.String(b.seed1, key)
	h2 := maphash.String(b.seed2, key)
	if h2 == 0 {
		h2 = 0x9e3779b97f4a7c15
	}
	return h1, h2
}

// Add inserts key.
func (b *Bloom) Add(key string) {
	h1, h2 := b.hash2(key)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.m
		b.bits[pos/64] |= 1 << (pos % 64)
	}
	b.n++
}

// Contains reports whether key may have been inserted (false positives
// possible, false negatives impossible).
func (b *Bloom) Contains(key string) bool {
	h1, h2 := b.hash2(key)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.m
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// N reports the number of inserted elements.
func (b *Bloom) N() int64 { return b.n }

// Bits reports the filter size in bits.
func (b *Bloom) Bits() uint64 { return b.m }

// FillRatio reports the fraction of set bits (diagnostic).
func (b *Bloom) FillRatio() float64 {
	set := 0
	for _, w := range b.bits {
		set += popcount64(w)
	}
	return float64(set) / float64(b.m)
}

// EstimateIntersection estimates |A ∩ B| of the key sets behind two
// equally-sized filters via the standard inclusion–exclusion on fill
// ratios. This is the operation the paper says sketches would accelerate —
// and whose error it deems disqualifying.
func EstimateIntersection(a, b *Bloom, nA, nB int64) float64 {
	if a.m != b.m || a.k != b.k {
		panic("sketch: EstimateIntersection on incompatible filters")
	}
	// |A ∪ B| estimated from the OR of the filters:
	// n ≈ -m/k * ln(1 - fill).
	set := 0
	for i := range a.bits {
		set += popcount64(a.bits[i] | b.bits[i])
	}
	fill := float64(set) / float64(a.m)
	if fill >= 1 {
		fill = 1 - 1e-9
	}
	union := -float64(a.m) / float64(a.k) * math.Log(1-fill)
	inter := float64(nA) + float64(nB) - union
	if inter < 0 {
		inter = 0
	}
	return inter
}

func popcount64(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// CountMin is a Count-Min sketch over string keys: a width×depth counter
// grid; point queries return an overestimate with error ≤ εN at
// probability 1-δ.
type CountMin struct {
	width int
	depth int
	rows  [][]uint32
	seeds []maphash.Seed
	total int64
}

// NewCountMin sizes the sketch for additive error ε (relative to the total
// count) with failure probability δ: width = ⌈e/ε⌉, depth = ⌈ln(1/δ)⌉.
func NewCountMin(epsilon, delta float64) *CountMin {
	if epsilon <= 0 || epsilon >= 1 || delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("sketch: NewCountMin(%g, %g)", epsilon, delta))
	}
	w := int(math.Ceil(math.E / epsilon))
	d := int(math.Ceil(math.Log(1 / delta)))
	if d < 1 {
		d = 1
	}
	cm := &CountMin{width: w, depth: d}
	cm.rows = make([][]uint32, d)
	cm.seeds = make([]maphash.Seed, d)
	for i := range cm.rows {
		cm.rows[i] = make([]uint32, w)
		cm.seeds[i] = maphash.MakeSeed()
	}
	return cm
}

// Add increments key's count by delta.
func (cm *CountMin) Add(key string, delta uint32) {
	for i := 0; i < cm.depth; i++ {
		pos := maphash.String(cm.seeds[i], key) % uint64(cm.width)
		cm.rows[i][pos] += delta
	}
	cm.total += int64(delta)
}

// Count returns the (over-)estimate of key's count.
func (cm *CountMin) Count(key string) uint32 {
	min := uint32(math.MaxUint32)
	for i := 0; i < cm.depth; i++ {
		pos := maphash.String(cm.seeds[i], key) % uint64(cm.width)
		if cm.rows[i][pos] < min {
			min = cm.rows[i][pos]
		}
	}
	return min
}

// Total reports the sum of all added deltas.
func (cm *CountMin) Total() int64 { return cm.total }

// Width and Depth report the grid dimensions.
func (cm *CountMin) Width() int { return cm.width }

// Depth reports the number of hash rows.
func (cm *CountMin) Depth() int { return cm.depth }
