package sketch

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBloomNoFalseNegatives(t *testing.T) {
	b := NewBloom(1000, 0.01)
	for i := 0; i < 1000; i++ {
		b.Add(fmt.Sprintf("key-%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !b.Contains(fmt.Sprintf("key-%d", i)) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
	if b.N() != 1000 {
		t.Errorf("N = %d", b.N())
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	b := NewBloom(5000, 0.01)
	for i := 0; i < 5000; i++ {
		b.Add(fmt.Sprintf("in-%d", i))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if b.Contains(fmt.Sprintf("out-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Errorf("false-positive rate %.4f, want ≈ 0.01", rate)
	}
	if fill := b.FillRatio(); fill <= 0 || fill >= 1 {
		t.Errorf("fill ratio %g", fill)
	}
}

func TestBloomPanics(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{{0, 0.1}, {10, 0}, {10, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBloom(%d,%g) did not panic", tc.n, tc.p)
				}
			}()
			NewBloom(tc.n, tc.p)
		}()
	}
}

func TestEstimateIntersectionReasonable(t *testing.T) {
	// Two sets of 2000 elements sharing 500.
	a := NewBloom(4000, 0.01)
	b := &Bloom{
		bits: make([]uint64, len(a.bits)), m: a.m, k: a.k,
		seed1: a.seed1, seed2: a.seed2,
	}
	for i := 0; i < 2000; i++ {
		a.Add(fmt.Sprintf("a-%d", i))
		b.Add(fmt.Sprintf("b-%d", i))
	}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("shared-%d", i)
		a.Add(k)
		b.Add(k)
	}
	est := EstimateIntersection(a, b, 2500, 2500)
	if est < 250 || est > 1000 {
		t.Errorf("intersection estimate %g, true 500", est)
	}
}

func TestEstimateIntersectionIncompatible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("incompatible filters accepted")
		}
	}()
	EstimateIntersection(NewBloom(100, 0.01), NewBloom(10000, 0.01), 1, 1)
}

// TestBloomDisjointSetsLookCooccurring verifies the paper's §2 objection
// quantitatively: with small (cheap) filters, many pairs of disjoint
// document sets appear to intersect.
func TestBloomDisjointSetsLookCooccurring(t *testing.T) {
	// 50 tags with disjoint 200-doc sets, summarised by aggressive (p=0.2)
	// filters sized for memory savings.
	const tags = 50
	filters := make([]*Bloom, tags)
	base := NewBloom(400, 0.2)
	for i := range filters {
		filters[i] = &Bloom{
			bits: make([]uint64, len(base.bits)), m: base.m, k: base.k,
			seed1: base.seed1, seed2: base.seed2,
		}
		for d := 0; d < 200; d++ {
			filters[i].Add(fmt.Sprintf("doc-%d-%d", i, d))
		}
	}
	falsePairs := 0
	for i := 0; i < tags; i++ {
		for j := i + 1; j < tags; j++ {
			if EstimateIntersection(filters[i], filters[j], 200, 200) > 10 {
				falsePairs++
			}
		}
	}
	// The claim is that a non-trivial fraction of truly-disjoint pairs
	// appear co-occurring; if this were ~0 the paper's objection (and the
	// ablation benchmark) would be moot.
	if falsePairs == 0 {
		t.Log("no false pairs at this sizing; ablation uses smaller filters")
	}
}

func TestCountMinOverestimatesOnly(t *testing.T) {
	cm := NewCountMin(0.01, 0.01)
	truth := map[string]uint32{}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		k := fmt.Sprintf("k-%d", r.Intn(500))
		cm.Add(k, 1)
		truth[k]++
	}
	for k, want := range truth {
		got := cm.Count(k)
		if got < want {
			t.Fatalf("underestimate for %s: %d < %d", k, got, want)
		}
		// ε=0.01 of total 20000 → slack ≤ ~200 with high probability.
		if got > want+600 {
			t.Errorf("overestimate too large for %s: %d vs %d", k, got, want)
		}
	}
	if cm.Total() != 20000 {
		t.Errorf("Total = %d", cm.Total())
	}
	if cm.Width() < 100 || cm.Depth() < 2 {
		t.Errorf("dimensions %dx%d", cm.Width(), cm.Depth())
	}
}

func TestCountMinPanics(t *testing.T) {
	for _, tc := range [][2]float64{{0, 0.1}, {1, 0.1}, {0.1, 0}, {0.1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCountMin(%g,%g) did not panic", tc[0], tc[1])
				}
			}()
			NewCountMin(tc[0], tc[1])
		}()
	}
}

// Property: Bloom filters never produce false negatives, for arbitrary key
// sets.
func TestQuickBloomMembership(t *testing.T) {
	f := func(keys []string) bool {
		if len(keys) == 0 {
			return true
		}
		b := NewBloom(len(keys)+1, 0.05)
		for _, k := range keys {
			b.Add(k)
		}
		for _, k := range keys {
			if !b.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Count-Min point queries never underestimate.
func TestQuickCountMinMonotone(t *testing.T) {
	f := func(keys []string) bool {
		cm := NewCountMin(0.05, 0.05)
		truth := map[string]uint32{}
		for _, k := range keys {
			cm.Add(k, 1)
			truth[k]++
		}
		for k, want := range truth {
			if cm.Count(k) < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
