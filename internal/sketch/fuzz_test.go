package sketch

import (
	"fmt"
	"testing"
)

// decodeKeys splits fuzz bytes into short string keys (deduplicated by the
// callers that need set semantics).
func decodeKeys(data []byte) []string {
	var keys []string
	for i := 0; i < len(data); i += 3 {
		end := i + 3
		if end > len(data) {
			end = len(data)
		}
		keys = append(keys, fmt.Sprintf("k%x", data[i:end]))
	}
	return keys
}

// FuzzBloomRoundTrip checks the Bloom filter's defining guarantee on
// arbitrary key sets: after Add, Contains never returns a false negative,
// N counts insertions, and intersection estimation over compatible filters
// stays non-negative and finite.
func FuzzBloomRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add([]byte("hello fuzzer, overlapping keys ahead"))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1024 {
			return
		}
		keys := decodeKeys(data)
		proto := NewBloom(len(keys)+1, 0.03)
		a, b := CloneEmpty(proto), CloneEmpty(proto)

		var nA, nB int64
		for i, k := range keys {
			if i%2 == 0 {
				a.Add(k)
				nA++
			} else {
				b.Add(k)
				nB++
			}
		}
		if a.N() != nA || b.N() != nB {
			t.Fatalf("N() = %d/%d, inserted %d/%d", a.N(), b.N(), nA, nB)
		}
		for i, k := range keys {
			fl := a
			if i%2 == 1 {
				fl = b
			}
			if !fl.Contains(k) {
				t.Fatalf("false negative: filter lost key %q", k)
			}
		}
		if est := EstimateIntersection(a, b, nA, nB); est < 0 || est != est {
			t.Fatalf("EstimateIntersection = %g", est)
		}
		if fr := a.FillRatio(); fr < 0 || fr > 1 {
			t.Fatalf("FillRatio = %g", fr)
		}
	})
}

// FuzzCountMinOverestimates checks the Count-Min guarantee on arbitrary
// add sequences: a point query never underestimates the true count, and
// Total tracks the sum of added deltas.
func FuzzCountMinOverestimates(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{5, 5, 5, 9})
	f.Add([]byte("aaabbbcccddd"))
	f.Add([]byte{255, 0, 255, 0, 1, 2, 3, 4, 5, 6, 7, 8})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1024 {
			return
		}
		cm := NewCountMin(0.1, 0.05)
		exact := make(map[string]uint32)
		var total int64
		for i := 0; i+1 < len(data); i += 2 {
			key := fmt.Sprintf("k%d", data[i]%32)
			delta := uint32(data[i+1]%7) + 1
			cm.Add(key, delta)
			exact[key] += delta
			total += int64(delta)
		}
		if cm.Total() != total {
			t.Fatalf("Total = %d, added %d", cm.Total(), total)
		}
		for key, want := range exact {
			if got := cm.Count(key); got < want {
				t.Fatalf("Count(%q) = %d underestimates true count %d", key, got, want)
			}
		}
	})
}
