package tagset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestDictionaryIntern(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("a")
	b := d.Intern("b")
	if a == b {
		t.Fatalf("distinct strings interned to same id %d", a)
	}
	if got := d.Intern("a"); got != a {
		t.Errorf("re-intern of a = %d, want %d", got, a)
	}
	if d.String(a) != "a" || d.String(b) != "b" {
		t.Errorf("round trip failed: %q %q", d.String(a), d.String(b))
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if _, ok := d.Lookup("c"); ok {
		t.Error("Lookup of unseen tag succeeded")
	}
	if id, ok := d.Lookup("b"); !ok || id != b {
		t.Errorf("Lookup(b) = %d,%v", id, ok)
	}
}

func TestDictionaryConcurrent(t *testing.T) {
	d := NewDictionary()
	done := make(chan struct{})
	words := []string{"w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7"}
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				w := words[i%len(words)]
				id := d.Intern(w)
				if d.String(id) != w {
					t.Errorf("round trip mismatch for %q", w)
					return
				}
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if d.Len() != len(words) {
		t.Errorf("Len = %d, want %d", d.Len(), len(words))
	}
}

func TestNewCanonicalises(t *testing.T) {
	s := New(5, 1, 3, 5, 1)
	want := Set{1, 3, 5}
	if !s.Equal(want) {
		t.Fatalf("New = %v, want %v", s, want)
	}
	if New().Len() != 0 {
		t.Error("New() not empty")
	}
}

func TestSetOps(t *testing.T) {
	a := New(1, 2, 3, 5)
	b := New(2, 3, 7)
	tests := []struct {
		name string
		got  Set
		want Set
	}{
		{"intersect", a.Intersect(b), New(2, 3)},
		{"union", a.Union(b), New(1, 2, 3, 5, 7)},
		{"diff a-b", a.Diff(b), New(1, 5)},
		{"diff b-a", b.Diff(a), New(7)},
		{"intersect empty", a.Intersect(New(9)), nil},
	}
	for _, tt := range tests {
		if !tt.got.Equal(tt.want) {
			t.Errorf("%s = %v, want %v", tt.name, tt.got, tt.want)
		}
	}
	if a.IntersectLen(b) != 2 {
		t.Errorf("IntersectLen = %d, want 2", a.IntersectLen(b))
	}
	if a.DiffLen(b) != 2 {
		t.Errorf("DiffLen = %d, want 2", a.DiffLen(b))
	}
	if !a.Intersects(b) || a.Intersects(New(8, 9)) {
		t.Error("Intersects wrong")
	}
}

func TestSubsetContains(t *testing.T) {
	a := New(1, 2, 3)
	if !New(1, 3).SubsetOf(a) {
		t.Error("{1,3} should be subset of {1,2,3}")
	}
	if New(1, 4).SubsetOf(a) {
		t.Error("{1,4} should not be subset of {1,2,3}")
	}
	if !Set(nil).SubsetOf(a) {
		t.Error("empty set should be subset of anything")
	}
	if !a.Contains(2) || a.Contains(4) {
		t.Error("Contains wrong")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	s := New(0, 7, 1<<20, 1<<31)
	k := s.Key()
	if k.Len() != 4 {
		t.Errorf("Key.Len = %d, want 4", k.Len())
	}
	back := k.Set()
	if !back.Equal(s) {
		t.Errorf("round trip = %v, want %v", back, s)
	}
	if New(1, 2).Key() == New(1, 3).Key() {
		t.Error("distinct sets share a key")
	}
}

func TestSubsetsEnumeration(t *testing.T) {
	s := New(1, 2, 3)
	var got []string
	s.Subsets(2, func(sub Set) {
		got = append(got, sub.String())
	})
	sort.Strings(got)
	want := []string{"{1,2,3}", "{1,2}", "{1,3}", "{2,3}"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Subsets(2) = %v, want %v", got, want)
	}

	n := 0
	s.Subsets(1, func(Set) { n++ })
	if n != 7 {
		t.Errorf("Subsets(1) visited %d, want 7", n)
	}
	if c := s.CountSubsets(2); c != 4 {
		t.Errorf("CountSubsets(2) = %d, want 4", c)
	}
	if c := New(1, 2, 3, 4, 5).CountSubsets(2); c != 26 {
		t.Errorf("CountSubsets(2) of 5 = %d, want 26", c)
	}
}

func TestSubsetsPanicsOnHugeSet(t *testing.T) {
	big := make(Set, 31)
	for i := range big {
		big[i] = Tag(i)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 31-tag set")
		}
	}()
	big.Subsets(2, func(Set) {})
}

func TestInternSetAndStrings(t *testing.T) {
	d := NewDictionary()
	s := d.InternSet([]string{"beer", "munich", "beer"})
	if s.Len() != 2 {
		t.Fatalf("InternSet len = %d, want 2", s.Len())
	}
	names := d.Strings(s)
	sort.Strings(names)
	if !reflect.DeepEqual(names, []string{"beer", "munich"}) {
		t.Errorf("Strings = %v", names)
	}
}

// Property-based tests on the canonical-set invariants.

func randomSet(r *rand.Rand) Set {
	n := r.Intn(10)
	tags := make([]Tag, n)
	for i := range tags {
		tags[i] = Tag(r.Intn(40))
	}
	return New(tags...)
}

func TestQuickCanonical(t *testing.T) {
	f := func(raw []uint32) bool {
		tags := make([]Tag, len(raw))
		for i, v := range raw {
			tags[i] = Tag(v % 100)
		}
		s := New(tags...)
		for i := 1; i < len(s); i++ {
			if s[i] <= s[i-1] {
				return false
			}
		}
		// Every input tag must be present.
		for _, tg := range tags {
			if !s.Contains(tg) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSetAlgebra(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		a, b := randomSet(r), randomSet(r)
		inter, uni, diff := a.Intersect(b), a.Union(b), a.Diff(b)
		if inter.Len()+uni.Len() != a.Len()+b.Len() {
			t.Fatalf("|A∩B|+|A∪B| != |A|+|B| for %v %v", a, b)
		}
		if !diff.Union(inter).Equal(a) {
			t.Fatalf("(A\\B)∪(A∩B) != A for %v %v", a, b)
		}
		if a.IntersectLen(b) != inter.Len() || a.DiffLen(b) != diff.Len() {
			t.Fatalf("counting mismatch for %v %v", a, b)
		}
		if !inter.SubsetOf(a) || !inter.SubsetOf(b) || !a.SubsetOf(uni) {
			t.Fatalf("subset laws violated for %v %v", a, b)
		}
		if a.Intersects(b) != (inter.Len() > 0) {
			t.Fatalf("Intersects mismatch for %v %v", a, b)
		}
		if !a.Key().Set().Equal(a) {
			t.Fatalf("key round trip failed for %v", a)
		}
	}
}

func TestQuickSubsetsCount(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		s := randomSet(r)
		for minSize := 1; minSize <= 3; minSize++ {
			n := 0
			s.Subsets(minSize, func(sub Set) {
				if sub.Len() < minSize || !sub.SubsetOf(s) {
					t.Fatalf("bad subset %v of %v", sub, s)
				}
				n++
			})
			if n != s.CountSubsets(minSize) {
				t.Fatalf("enumerated %d, CountSubsets=%d for %v", n, s.CountSubsets(minSize), s)
			}
		}
	}
}

func TestDictionaryNameUnknown(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("alpha")
	if got := d.Name(a); got != "alpha" {
		t.Errorf("Name(known) = %q", got)
	}
	// Tags beyond the interned range render as placeholders instead of
	// panicking — the /history path can see ids from a previous process.
	if got := d.Name(Tag(99)); got != "#99" {
		t.Errorf("Name(unknown) = %q", got)
	}
	if got := d.Names(New(a, Tag(7))); len(got) != 2 || got[1] != "#7" {
		t.Errorf("Names = %v", got)
	}
}

func TestDictionarySnapshotRoundTrip(t *testing.T) {
	d := NewDictionary()
	for _, s := range []string{"x", "y", "z"} {
		d.Intern(s)
	}
	rebuilt := NewDictionary()
	for _, s := range d.Snapshot() {
		rebuilt.Intern(s)
	}
	for _, s := range []string{"x", "y", "z"} {
		want, _ := d.Lookup(s)
		got, ok := rebuilt.Lookup(s)
		if !ok || got != want {
			t.Errorf("rebuilt id for %q = %d (ok=%v), want %d", s, got, ok, want)
		}
	}
}
