// Package tagset provides the fundamental data types of the system: interned
// tags and canonical, immutable sets of tags ("tagsets") as they annotate
// social-media documents.
//
// Tags are interned into dense uint32 identifiers by a Dictionary so that the
// hot paths of the pipeline (partitioning, dissemination, counting) operate
// on integer sets rather than strings. A Tagset is stored sorted and
// deduplicated, which makes equality, hashing, subset tests and set algebra
// cheap and canonical.
package tagset

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Tag is the dense, interned identifier of a single tag (hashtag).
type Tag uint32

// Dictionary interns tag strings to dense Tag identifiers and back.
// It is safe for concurrent use.
type Dictionary struct {
	mu    sync.RWMutex
	byStr map[string]Tag
	byID  []string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byStr: make(map[string]Tag)}
}

// Intern returns the Tag for s, assigning a fresh identifier on first use.
func (d *Dictionary) Intern(s string) Tag {
	d.mu.RLock()
	id, ok := d.byStr[s]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.byStr[s]; ok {
		return id
	}
	id = Tag(len(d.byID))
	d.byStr[s] = id
	d.byID = append(d.byID, s)
	return id
}

// Lookup returns the Tag for s if it has been interned.
func (d *Dictionary) Lookup(s string) (Tag, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.byStr[s]
	return id, ok
}

// String returns the string form of t. It panics if t was not issued by d.
func (d *Dictionary) String(t Tag) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.byID[t]
}

// Len reports the number of distinct tags interned so far.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.byID)
}

// Name returns the string form of t, or a stable "#<id>" placeholder when
// t was never interned in this dictionary. This is the render-safe variant
// for data read back from an archive: a segment written by a previous
// process (or after the last checkpoint) can reference tags the rebuilt
// dictionary does not know yet, and rendering them must not panic.
func (d *Dictionary) Name(t Tag) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(t) < len(d.byID) {
		return d.byID[t]
	}
	return fmt.Sprintf("#%d", uint32(t))
}

// Names maps a Set to strings via Name (placeholders for unknown tags).
func (d *Dictionary) Names(s Set) []string {
	out := make([]string, 0, s.Len())
	for _, t := range s {
		out = append(out, d.Name(t))
	}
	return out
}

// Snapshot returns every interned tag string in identifier order, so a
// dictionary can be persisted and rebuilt with identical Tag assignments
// (intern the returned strings, in order, into a fresh Dictionary).
func (d *Dictionary) Snapshot() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]string(nil), d.byID...)
}

// InternSet interns every string in tags and returns the canonical Tagset.
func (d *Dictionary) InternSet(tags []string) Set {
	ids := make([]Tag, 0, len(tags))
	for _, s := range tags {
		ids = append(ids, d.Intern(s))
	}
	return New(ids...)
}

// Strings maps a Set back to its (sorted-by-id) tag strings.
func (d *Dictionary) Strings(s Set) []string {
	out := make([]string, 0, s.Len())
	for _, t := range s {
		out = append(out, d.String(t))
	}
	return out
}

// Set is a canonical tagset: strictly increasing, duplicate-free Tag slice.
// The zero value is the empty set. A Set must not be mutated after creation;
// all operations return fresh sets.
type Set []Tag

// New builds the canonical Set of the given tags, sorting and deduplicating.
func New(tags ...Tag) Set {
	if len(tags) == 0 {
		return nil
	}
	s := make(Set, len(tags))
	copy(s, tags)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	// Deduplicate in place.
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[w-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

// FromSorted adopts an already strictly-increasing slice as a Set without
// copying. The caller must guarantee sortedness and uniqueness and must not
// mutate the slice afterwards.
func FromSorted(tags []Tag) Set { return Set(tags) }

// Len reports the number of tags in the set.
func (s Set) Len() int { return len(s) }

// IsEmpty reports whether the set has no tags.
func (s Set) IsEmpty() bool { return len(s) == 0 }

// Contains reports whether t is a member of s.
func (s Set) Contains(t Tag) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= t })
	return i < len(s) && s[i] == t
}

// Equal reports whether s and o contain exactly the same tags.
func (s Set) Equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every tag of s is contained in o.
func (s Set) SubsetOf(o Set) bool {
	if len(s) > len(o) {
		return false
	}
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] == o[j]:
			i++
			j++
		case s[i] > o[j]:
			j++
		default:
			return false
		}
	}
	return i == len(s)
}

// Intersect returns the set of tags present in both s and o.
func (s Set) Intersect(o Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] == o[j]:
			out = append(out, s[i])
			i++
			j++
		case s[i] < o[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// IntersectLen returns |s ∩ o| without allocating.
func (s Set) IntersectLen(o Set) int {
	n, i, j := 0, 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] == o[j]:
			n++
			i++
			j++
		case s[i] < o[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// Intersects reports whether s and o share at least one tag.
func (s Set) Intersects(o Set) bool {
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] == o[j]:
			return true
		case s[i] < o[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Union returns the set of tags present in either s or o.
func (s Set) Union(o Set) Set {
	out := make(Set, 0, len(s)+len(o))
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] == o[j]:
			out = append(out, s[i])
			i++
			j++
		case s[i] < o[j]:
			out = append(out, s[i])
			i++
		default:
			out = append(out, o[j])
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, o[j:]...)
	return out
}

// Diff returns the tags of s that are not in o.
func (s Set) Diff(o Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] == o[j]:
			i++
			j++
		case s[i] < o[j]:
			out = append(out, s[i])
			i++
		default:
			j++
		}
	}
	out = append(out, s[i:]...)
	return out
}

// DiffLen returns |s \ o| without allocating.
func (s Set) DiffLen(o Set) int {
	n, i, j := 0, 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] == o[j]:
			i++
			j++
		case s[i] < o[j]:
			n++
			i++
		default:
			j++
		}
	}
	return n + len(s) - i
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	if s == nil {
		return nil
	}
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Key returns a compact byte-string usable as a map key. Two sets have the
// same Key iff they are Equal.
func (s Set) Key() Key {
	buf := make([]byte, 4*len(s))
	for i, t := range s {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(t))
	}
	return Key(buf)
}

// Key is the map-key form of a Set, produced by Set.Key.
type Key string

// Set decodes the key back into its canonical Set.
func (k Key) Set() Set {
	b := []byte(k)
	s := make(Set, len(b)/4)
	for i := range s {
		s[i] = Tag(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return s
}

// Len reports the number of tags encoded in the key.
func (k Key) Len() int { return len(k) / 4 }

// String renders the set as "{1,5,9}" using raw tag identifiers.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", uint32(t))
	}
	b.WriteByte('}')
	return b.String()
}

// Subsets calls fn for every non-empty subset of s with at least minSize
// tags, in an unspecified order. The Set passed to fn is reused between
// calls; fn must Clone it if it retains it. Enumeration uses bitmask
// iteration and therefore requires s.Len() <= 30; larger sets panic, which
// in this system cannot happen because documents carry few tags (the paper
// observes <10 and the parser enforces a cap).
func (s Set) Subsets(minSize int, fn func(Set)) {
	n := len(s)
	if n > 30 {
		panic(fmt.Sprintf("tagset: Subsets on set of %d tags", n))
	}
	if n == 0 {
		return
	}
	buf := make(Set, 0, n)
	for mask := 1; mask < 1<<n; mask++ {
		if popcount(uint32(mask)) < minSize {
			continue
		}
		buf = buf[:0]
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				buf = append(buf, s[i])
			}
		}
		fn(buf)
	}
}

// CountSubsets returns the number of subsets of s with at least minSize tags.
func (s Set) CountSubsets(minSize int) int {
	n := len(s)
	total := 0
	for size := minSize; size <= n; size++ {
		total += binomial(n, size)
	}
	return total
}

func popcount(x uint32) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1
	for i := 1; i <= k; i++ {
		r = r * (n - k + i) / i
	}
	return r
}
