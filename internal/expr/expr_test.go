package expr

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/stream"
	"repro/internal/twitgen"
)

// fastSuite shrinks the stream and the pipeline cadence so harness tests
// stay quick: ~8k documents per cell with 10-second windows.
func fastSuite() *Suite {
	def := Defaults{
		Minutes:     2,
		Seed:        2,
		WindowSpan:  stream.Seconds(10),
		ReportEvery: stream.Seconds(10),
		StatsEvery:  200,
	}
	return NewSuite(def, func(tps int, seed int64) twitgen.Config {
		c := twitgen.Default()
		c.TPS = tps * 4 // 4x tagged docs per virtual second
		c.Seed = seed
		c.Topics = 200
		c.TagsPerTopic = 10
		return c
	})
}

func TestCellCaching(t *testing.T) {
	s := fastSuite()
	a := s.Cell(Params{Algorithm: partition.DS})
	b := s.Cell(Params{Algorithm: partition.DS})
	if a != b {
		t.Error("identical params were not cached")
	}
	c := s.Cell(Params{Algorithm: partition.DS, K: 5})
	if a == c {
		t.Error("distinct params shared a cell")
	}
}

func TestCellNormalisation(t *testing.T) {
	s := fastSuite()
	r := s.Cell(Params{Algorithm: partition.DS})
	if r.Params.K != 10 || r.Params.P != 10 || r.Params.Thr != 0.5 || r.Params.TPS != 1300 {
		t.Errorf("defaults not applied: %+v", r.Params)
	}
}

func TestCellMetricsSane(t *testing.T) {
	s := fastSuite()
	for _, alg := range []partition.Algorithm{partition.DS, partition.SCC} {
		r := s.Cell(Params{Algorithm: alg})
		if r.Communication < 1 || r.Communication > 10 {
			t.Errorf("%s: communication %g", alg, r.Communication)
		}
		if r.LoadGini < 0 || r.LoadGini >= 1 {
			t.Errorf("%s: gini %g", alg, r.LoadGini)
		}
		if r.Coverage < 0.5 || r.Coverage > 1 {
			t.Errorf("%s: coverage %g", alg, r.Coverage)
		}
		if r.MeanAbsError < 0 || r.MeanAbsError > 0.5 {
			t.Errorf("%s: error %g", alg, r.MeanAbsError)
		}
		if r.Merges < 1 {
			t.Errorf("%s: merges %d", alg, r.Merges)
		}
		if r.Dissem == nil || r.Dissem.CommSeries.Len() == 0 {
			t.Errorf("%s: missing time series", alg)
		}
	}
}

func TestRunAllParallel(t *testing.T) {
	s := fastSuite()
	cells := []Params{
		{Algorithm: partition.DS},
		{Algorithm: partition.SCC},
		{Algorithm: partition.DS, K: 5},
	}
	out := s.RunAll(cells)
	if len(out) != 3 {
		t.Fatalf("got %d results", len(out))
	}
	for i, r := range out {
		if r == nil {
			t.Fatalf("cell %d nil", i)
		}
	}
	// Cached: re-running returns the same pointers.
	again := s.RunAll(cells)
	for i := range out {
		if out[i] != again[i] {
			t.Error("RunAll did not reuse cache")
		}
	}
}

func TestSweepCellsDistinct(t *testing.T) {
	cells := SweepCells()
	// The grid has thr{0.2,0.5} ∪ P{3,5,10} ∪ k{5,10,20} ∪ tps{1300,2600};
	// the default point (thr=0.5, P=10, k=10, tps=1300) is shared by all
	// four panels, leaving 7 distinct points × 4 algorithms.
	if len(cells) != 28 {
		t.Errorf("sweep cells = %d, want 28", len(cells))
	}
	for _, c := range cells {
		if !c.Algorithm.Valid() {
			t.Errorf("invalid algorithm in sweep: %q", c.Algorithm)
		}
	}
}

func TestFiguresRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure rendering is slow")
	}
	s := fastSuite()
	for _, build := range []func(*Suite) *Figure{Fig7, TheoryFigure} {
		f := build(s)
		var sb strings.Builder
		if _, err := f.WriteTo(&sb); err != nil {
			t.Fatalf("%s: %v", f.ID, err)
		}
		out := sb.String()
		if !strings.Contains(out, f.ID) {
			t.Errorf("%s: missing header in output", f.ID)
		}
		if len(f.Panels) == 0 {
			t.Errorf("%s: no panels", f.ID)
		}
	}
}

func TestFig3And4ShapeOnFastStream(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline sweeps are slow")
	}
	s := fastSuite()
	ds := s.Cell(Params{Algorithm: partition.DS})
	scl := s.Cell(Params{Algorithm: partition.SCL})
	// The paper's headline orderings (Figures 3 and 4): DS has the least
	// communication; SCL balances load at the cost of communication.
	if ds.Communication >= scl.Communication {
		t.Errorf("DS comm %.3f should beat SCL comm %.3f", ds.Communication, scl.Communication)
	}
	if scl.LoadGini > ds.LoadGini+0.05 {
		t.Errorf("SCL gini %.3f should not exceed DS gini %.3f", scl.LoadGini, ds.LoadGini)
	}
}

func TestDecimate(t *testing.T) {
	pts := make([]metrics.Point, 100)
	for i := range pts {
		pts[i] = metrics.Point{X: float64(i)}
	}
	out := decimate(pts, 10)
	if len(out) != 10 {
		t.Fatalf("len = %d", len(out))
	}
	if out[0].X != 0 || out[9].X != 99 {
		t.Errorf("endpoints: %g..%g", out[0].X, out[9].X)
	}
	if got := decimate(pts[:5], 10); len(got) != 5 {
		t.Errorf("short input decimated to %d", len(got))
	}
}

func TestMarksSummary(t *testing.T) {
	if got := marksSummary(nil); got != "none" {
		t.Errorf("empty = %q", got)
	}
	if got := marksSummary([]float64{1000, 2000}); !strings.Contains(got, "1k") {
		t.Errorf("short = %q", got)
	}
	long := marksSummary([]float64{1000, 2000, 3000, 4000, 5000, 6000})
	if !strings.Contains(long, "6 positions") {
		t.Errorf("long = %q", long)
	}
}

func TestGiantComponentFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("mixing figure is slow")
	}
	f := GiantComponentFigure(1, 3)
	if len(f.Panels) != 1 || len(f.Panels[0].Rows) != 4 {
		t.Fatalf("unexpected shape: %+v", f)
	}
}

func TestFigureWriteTo(t *testing.T) {
	f := &Figure{ID: "X", Title: "demo", Panels: []Panel{{
		Title:  "p",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}}}
	var sb strings.Builder
	n, err := f.WriteTo(&sb)
	if err != nil || n == 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if !strings.Contains(sb.String(), "333") {
		t.Error("row content missing")
	}
}
