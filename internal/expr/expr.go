// Package expr is the experiment harness: it re-runs the paper's evaluation
// (Section 8, Figures 3–9 plus the Section 5 theory table) on the synthetic
// stream and prints the same rows and series the paper plots.
//
// A Suite lazily runs and caches experiment cells — one cell is a full
// pipeline run for one (algorithm, k, P, thr, tps) combination — so that
// every figure drawing on the default parameter setting shares a single
// run, as the paper's figures do.
package expr

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/jaccard"
	"repro/internal/operators"
	"repro/internal/partition"
	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/twitgen"
)

// Params identifies one experiment cell. The zero-value fields are filled
// from the paper's defaults (P=10, k=10, thr=0.5, tps=1300) by normalise.
type Params struct {
	Algorithm partition.Algorithm
	K         int
	P         int
	Thr       float64
	TPS       int

	// Minutes is the virtual length of the streamed input; the paper
	// streams 6 hours, the default here keeps runs tractable.
	Minutes float64
	Seed    int64
}

func (p Params) normalise(def Defaults) Params {
	if p.K == 0 {
		p.K = 10
	}
	if p.P == 0 {
		p.P = 10
	}
	if p.Thr == 0 {
		p.Thr = 0.5
	}
	if p.TPS == 0 {
		p.TPS = 1300
	}
	if p.Minutes == 0 {
		p.Minutes = def.Minutes
	}
	if p.Seed == 0 {
		p.Seed = def.Seed
	}
	return p
}

// Defaults configures suite-wide run length and seed, plus optional
// overrides of the pipeline's window/reporting cadence (zero keeps the
// paper's 5-minute defaults). Tests and benchmarks shrink the cadence to
// keep cells fast; the figures use the paper values.
type Defaults struct {
	Minutes float64
	Seed    int64

	WindowSpan  stream.Millis
	ReportEvery stream.Millis
	StatsEvery  int
}

// CellResult is the outcome of one pipeline run with its accuracy
// comparison against the centralized baseline.
type CellResult struct {
	Params Params

	Communication float64 // Fig 3: avg notifications per notified document
	LoadGini      float64 // Fig 4: Gini of cumulative per-Calculator load
	MeanAbsError  float64 // Fig 5: mean |J_dist - J_central| on matched tagsets
	Coverage      float64 // Fig 5 text: fraction of baseline tagsets reported

	Repartitions int // Fig 6 (post-bootstrap)
	CauseComm    int
	CauseLoad    int
	CauseBoth    int

	SingleAdditions int
	Merges          int

	Dissem *operators.DissemStats // Figures 8 and 9 time series
}

// Suite runs and caches cells over a shared synthetic stream configuration.
type Suite struct {
	def Defaults
	gen func(tps int, seed int64) twitgen.Config

	mu      sync.Mutex
	cells   map[string]*CellResult
	streams map[string][]stream.Document
}

// NewSuite returns a suite with the given run length (minutes of virtual
// time) and base seed. genCfg may be nil for the default generator tuning.
func NewSuite(def Defaults, genCfg func(tps int, seed int64) twitgen.Config) *Suite {
	if def.Minutes <= 0 {
		def.Minutes = 60
	}
	if def.Seed == 0 {
		def.Seed = 1
	}
	if genCfg == nil {
		genCfg = func(tps int, seed int64) twitgen.Config {
			c := twitgen.Default()
			c.TPS = tps
			c.Seed = seed
			return c
		}
	}
	return &Suite{
		def:     def,
		gen:     genCfg,
		cells:   make(map[string]*CellResult),
		streams: make(map[string][]stream.Document),
	}
}

// docs returns (cached) the generated document slice for a stream config.
func (s *Suite) docs(tps int, seed int64, minutes float64) []stream.Document {
	key := fmt.Sprintf("%d/%d/%g", tps, seed, minutes)
	s.mu.Lock()
	if d, ok := s.streams[key]; ok {
		s.mu.Unlock()
		return d
	}
	s.mu.Unlock()

	cfg := s.gen(tps, seed)
	g, err := twitgen.New(cfg, tagset.NewDictionary())
	if err != nil {
		panic(fmt.Sprintf("expr: generator config: %v", err))
	}
	limit := stream.Minutes(minutes)
	var docs []stream.Document
	for {
		d := g.Next()
		if d.Time >= limit {
			break
		}
		docs = append(docs, d)
	}

	s.mu.Lock()
	s.streams[key] = docs
	s.mu.Unlock()
	return docs
}

// Cell runs (or returns the cached result of) one experiment cell.
func (s *Suite) Cell(p Params) *CellResult {
	p = p.normalise(s.def)
	key := fmt.Sprintf("%s/%d/%d/%g/%d/%g/%d", p.Algorithm, p.K, p.P, p.Thr, p.TPS, p.Minutes, p.Seed)
	s.mu.Lock()
	if r, ok := s.cells[key]; ok {
		s.mu.Unlock()
		return r
	}
	s.mu.Unlock()

	r := s.run(p)

	s.mu.Lock()
	s.cells[key] = r
	s.mu.Unlock()
	return r
}

// run executes the distributed pipeline and the centralized baseline on the
// same documents and assembles the cell result.
func (s *Suite) run(p Params) *CellResult {
	docs := s.docs(p.TPS, p.Seed, p.Minutes)

	cfg := core.DefaultConfig()
	cfg.Algorithm = p.Algorithm
	cfg.K = p.K
	cfg.P = p.P
	cfg.Thr = p.Thr
	cfg.Seed = p.Seed
	if s.def.WindowSpan > 0 {
		cfg.WindowSpan = s.def.WindowSpan
	}
	if s.def.ReportEvery > 0 {
		cfg.ReportEvery = s.def.ReportEvery
	}
	if s.def.StatsEvery > 0 {
		cfg.StatsEvery = s.def.StatsEvery
	}

	pipe, err := core.NewPipeline(cfg, core.SliceSource(docs))
	if err != nil {
		panic(fmt.Sprintf("expr: pipeline: %v", err))
	}
	res := pipe.Run()

	meanErr, coverage := s.accuracy(cfg, docs, res)

	return &CellResult{
		Params:          p,
		Communication:   res.Communication,
		LoadGini:        res.LoadGini,
		MeanAbsError:    meanErr,
		Coverage:        coverage,
		Repartitions:    res.Repartitions,
		CauseComm:       res.RepartitionsComm,
		CauseLoad:       res.RepartitionsLoad,
		CauseBoth:       res.RepartitionsBoth,
		SingleAdditions: res.SingleAdditions,
		Merges:          res.Merges,
		Dissem:          res.Dissem,
	}
}

// accuracy replays the post-install documents through the exact centralized
// calculator with the same reporting boundaries and computes the two
// quantities of Section 8.2.3: the mean absolute Jaccard error over
// per-period matched tagsets, and the run-level coverage — the fraction of
// tagsets seen more than SN times in the input that received a coefficient
// at all (the paper reports > 97%).
func (s *Suite) accuracy(cfg core.Config, docs []stream.Document, res *core.Result) (meanErr, coverage float64) {
	skip := res.DocsBeforeInstall
	if skip >= int64(len(docs)) {
		return 0, 0
	}
	post := docs[skip:]
	minCN := int64(cfg.SN) + 1

	// Run-level coverage: frequent input tagsets vs ever-reported tagsets.
	inputCounts := make(map[tagset.Key]int64)
	for _, d := range post {
		if d.Tags.Len() >= 2 {
			inputCounts[d.Tags.Key()]++
		}
	}
	reported := make(map[tagset.Key]struct{})
	for _, c := range res.Coefficients {
		reported[c.Tags.Key()] = struct{}{}
	}
	var frequent, hit int
	for k, n := range inputCounts {
		if n >= minCN {
			frequent++
			if _, ok := reported[k]; ok {
				hit++
			}
		}
	}
	if frequent > 0 {
		coverage = float64(hit) / float64(frequent)
	}

	// Per-period error against the exact baseline.
	central := jaccard.NewCentralized()
	boundary := stream.Millis(0)
	started := false
	var errSum, weight float64
	flush := func(period int64) {
		base := central.Report(minCN)
		if len(base) == 0 {
			return
		}
		e, cov := jaccard.CompareReports(base, res.Tracker.Report(period))
		w := cov * float64(len(base)) // weight by matched tagsets
		errSum += e * w
		weight += w
	}
	for _, d := range post {
		if d.Tags.IsEmpty() {
			continue
		}
		if !started {
			boundary = (d.Time/cfg.ReportEvery + 1) * cfg.ReportEvery
			started = true
		}
		for d.Time >= boundary {
			flush(int64(boundary / cfg.ReportEvery))
			boundary += cfg.ReportEvery
		}
		central.Observe(d.Tags)
	}
	if started {
		flush(int64(boundary / cfg.ReportEvery))
	}
	if weight > 0 {
		meanErr = errSum / weight
	}
	return meanErr, coverage
}

// RunAll executes the given cells with bounded parallelism (independent
// cells run concurrently; each pipeline itself is sequential).
func (s *Suite) RunAll(cells []Params) []*CellResult {
	out := make([]*CellResult, len(cells))
	sem := make(chan struct{}, maxParallel())
	var wg sync.WaitGroup
	for i, p := range cells {
		wg.Add(1)
		go func(i int, p Params) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i] = s.Cell(p)
		}(i, p)
	}
	wg.Wait()
	return out
}

// maxParallel bounds concurrent cells: pipelines hold sizeable counter
// tables, so memory — not CPU — is the limit.
func maxParallel() int {
	n := runtime.GOMAXPROCS(0)
	if n > 4 {
		return 4
	}
	if n < 1 {
		return 1
	}
	return n
}

// Figure is a printable reproduction of one paper figure: a set of panels,
// each a small table.
type Figure struct {
	ID     string
	Title  string
	Panels []Panel
}

// Panel is one sub-plot rendered as a table.
type Panel struct {
	Title  string
	Header []string
	Rows   [][]string
}

// WriteTo renders the figure as aligned text tables.
func (f *Figure) WriteTo(w io.Writer) (int64, error) {
	var n int64
	p := func(format string, args ...interface{}) error {
		m, err := fmt.Fprintf(w, format, args...)
		n += int64(m)
		return err
	}
	if err := p("== %s: %s ==\n", f.ID, f.Title); err != nil {
		return n, err
	}
	for _, panel := range f.Panels {
		if err := p("\n-- %s --\n", panel.Title); err != nil {
			return n, err
		}
		widths := make([]int, len(panel.Header))
		for i, h := range panel.Header {
			widths[i] = len(h)
		}
		for _, row := range panel.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		line := func(cells []string) error {
			for i, cell := range cells {
				if err := p("%-*s  ", widths[i], cell); err != nil {
					return err
				}
			}
			return p("\n")
		}
		if err := line(panel.Header); err != nil {
			return n, err
		}
		for _, row := range panel.Rows {
			if err := line(row); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}
