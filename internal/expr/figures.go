package expr

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/theory"
	"repro/internal/twitgen"
)

// algorithms in the paper's plotting order.
var algorithms = partition.Algorithms

// sweep describes the four parameter panels shared by Figures 3–6.
type sweepPoint struct {
	label string
	p     Params
}

func sweeps() []struct {
	title  string
	points []sweepPoint
} {
	return []struct {
		title  string
		points []sweepPoint
	}{
		{"Varying threshold (P=10, k=10, tps=1300)", []sweepPoint{
			{"thr=0.2", Params{Thr: 0.2}},
			{"thr=0.5", Params{Thr: 0.5}},
		}},
		{"Varying Partitioners (k=10, thr=0.5, tps=1300)", []sweepPoint{
			{"P=3", Params{P: 3}},
			{"P=5", Params{P: 5}},
			{"P=10", Params{P: 10}},
		}},
		{"Varying partitions (P=10, thr=0.5, tps=1300)", []sweepPoint{
			{"k=5", Params{K: 5}},
			{"k=10", Params{K: 10}},
			{"k=20", Params{K: 20}},
		}},
		{"Varying tweets rate (P=10, k=10, thr=0.5)", []sweepPoint{
			{"tps=1300", Params{TPS: 1300}},
			{"tps=2600", Params{TPS: 2600}},
		}},
	}
}

// SweepCells lists every distinct cell of the Figure 3–6 grid, for
// pre-running with RunAll. Points that normalise to the default setting
// (P=10, k=10, thr=0.5, tps=1300) are deduplicated across panels, as in
// the paper's figures.
func SweepCells() []Params {
	seen := map[string]bool{}
	var out []Params
	for _, sw := range sweeps() {
		for _, pt := range sw.points {
			for _, alg := range algorithms {
				p := pt.p
				p.Algorithm = alg
				n := p.normalise(Defaults{Minutes: 1, Seed: 1}) // grid key only
				key := fmt.Sprintf("%s/%d/%d/%g/%d", n.Algorithm, n.K, n.P, n.Thr, n.TPS)
				if !seen[key] {
					seen[key] = true
					out = append(out, p)
				}
			}
		}
	}
	return out
}

// sweepFigure renders one metric over the Figure 3–6 grid.
func sweepFigure(s *Suite, id, title string, metric func(*CellResult) string) *Figure {
	f := &Figure{ID: id, Title: title}
	header := append([]string{""}, make([]string, len(algorithms))...)
	for i, a := range algorithms {
		header[i+1] = string(a)
	}
	for _, sw := range sweeps() {
		panel := Panel{Title: sw.title, Header: header}
		for _, pt := range sw.points {
			row := []string{pt.label}
			for _, alg := range algorithms {
				p := pt.p
				p.Algorithm = alg
				row = append(row, metric(s.Cell(p)))
			}
			panel.Rows = append(panel.Rows, row)
		}
		f.Panels = append(f.Panels, panel)
	}
	return f
}

// Fig3 reproduces Figure 3: average communication per algorithm.
func Fig3(s *Suite) *Figure {
	return sweepFigure(s, "Figure 3", "Communication (avg messages per notified tagset)",
		func(c *CellResult) string { return fmt.Sprintf("%.2f", c.Communication) })
}

// Fig4 reproduces Figure 4: Gini coefficient of per-Calculator load.
func Fig4(s *Suite) *Figure {
	return sweepFigure(s, "Figure 4", "Processing Load (Gini coefficient)",
		func(c *CellResult) string { return fmt.Sprintf("%.3f", c.LoadGini) })
}

// Fig5 reproduces Figure 5: mean absolute Jaccard error against the
// centralized baseline for tagsets seen more than sn times, with the
// coverage (fraction of baseline tagsets reported at all) alongside.
func Fig5(s *Suite) *Figure {
	return sweepFigure(s, "Figure 5", "Jaccard error vs centralized (coverage in parentheses)",
		func(c *CellResult) string {
			return fmt.Sprintf("%.4f (%.1f%%)", c.MeanAbsError, 100*c.Coverage)
		})
}

// Fig6 reproduces Figure 6: repartition counts split by triggering cause
// (communication / both / load).
func Fig6(s *Suite) *Figure {
	return sweepFigure(s, "Figure 6", "#Repartitions as comm/both/load",
		func(c *CellResult) string {
			return fmt.Sprintf("%d/%d/%d", c.CauseComm, c.CauseBoth, c.CauseLoad)
		})
}

// Fig7 reproduces Figure 7: tagset connectivity per tumbling window of 2,
// 5, 10 and 20 minutes — maximum tag share and load share of a single
// connected component, and the number of disjoint sets.
func Fig7(s *Suite) *Figure {
	f := &Figure{ID: "Figure 7", Title: "Tagset connectivity and load per window size"}
	panel := Panel{
		Title:  "Per tumbling window (mean over windows)",
		Header: []string{"window", "#tags%", "#docs%", "#disjoint sets", "#windows"},
	}
	for _, mins := range []float64{2, 5, 10, 20} {
		st := s.connectivity(mins)
		panel.Rows = append(panel.Rows, []string{
			fmt.Sprintf("%gmin", mins),
			fmt.Sprintf("%.1f", 100*st.maxTagShare),
			fmt.Sprintf("%.1f", 100*st.maxLoadShare),
			fmt.Sprintf("%.0f", st.components),
			fmt.Sprintf("%d", st.windows),
		})
	}
	f.Panels = append(f.Panels, panel)
	return f
}

type connStats struct {
	maxTagShare  float64
	maxLoadShare float64
	components   float64
	windows      int
}

// connectivity measures Figure 7's statistics over the suite's default
// stream with the given tumbling-window size.
func (s *Suite) connectivity(minutes float64) connStats {
	docs := s.docs(1300, s.def.Seed, s.def.Minutes)
	w := stream.NewTumblingWindow(stream.Minutes(minutes))
	var st connStats
	add := func(batch []stream.Document) {
		if len(batch) == 0 {
			return
		}
		g := graph.WindowStats(batch)
		st.maxTagShare += g.MaxTagsShare
		st.maxLoadShare += g.MaxLoadShare
		st.components += float64(g.Components)
		st.windows++
	}
	for _, d := range docs {
		add(w.Add(d))
	}
	add(w.Flush())
	if st.windows > 0 {
		st.maxTagShare /= float64(st.windows)
		st.maxLoadShare /= float64(st.windows)
		st.components /= float64(st.windows)
	}
	return st
}

// Fig8 reproduces Figure 8: communication over processed documents, one
// panel per algorithm, with repartition positions marked.
func Fig8(s *Suite) *Figure {
	f := &Figure{ID: "Figure 8", Title: "Communication over time (P=10, k=10, thr=0.5, tps=1300)"}
	for _, alg := range algorithms {
		c := s.Cell(Params{Algorithm: alg})
		panel := Panel{
			Title:  fmt.Sprintf("%s (repartitions at %s)", alg, marksSummary(c.Dissem.CommSeries.Marks)),
			Header: []string{"docs(k)", "comm(avg)"},
		}
		for _, pt := range decimate(c.Dissem.CommSeries.Points, 16) {
			panel.Rows = append(panel.Rows, []string{
				fmt.Sprintf("%.0f", pt.X/1000),
				fmt.Sprintf("%.3f", pt.Y),
			})
		}
		f.Panels = append(f.Panels, panel)
	}
	return f
}

// Fig9 reproduces Figure 9: sorted per-Calculator load shares over
// processed documents, one panel per algorithm.
func Fig9(s *Suite) *Figure {
	f := &Figure{ID: "Figure 9", Title: "Processing load over time (P=10, k=10, thr=0.5, tps=1300)"}
	for _, alg := range algorithms {
		c := s.Cell(Params{Algorithm: alg})
		panel := Panel{
			Title:  string(alg),
			Header: []string{"docs(k)", "max", "2nd", "3rd", "min"},
		}
		samples := c.Dissem.LoadSeries
		for _, sm := range decimate(samples, 16) {
			row := []string{fmt.Sprintf("%.0f", sm.X/1000)}
			row = append(row, pick(sm.Shares, 0), pick(sm.Shares, 1), pick(sm.Shares, 2))
			if len(sm.Shares) > 0 {
				row = append(row, fmt.Sprintf("%.3f", sm.Shares[len(sm.Shares)-1]))
			} else {
				row = append(row, "-")
			}
			panel.Rows = append(panel.Rows, row)
		}
		f.Panels = append(f.Panels, panel)
	}
	return f
}

// TheoryFigure reproduces the Section 5 analysis: the np table of the
// worked example (5.1) and the expected-communication regimes (5.2),
// together with the measured distinct-pair rate of the synthetic stream.
func TheoryFigure(s *Suite) *Figure {
	f := &Figure{ID: "Theory", Title: "Section 5 models"}

	np := Panel{
		Title:  "Erdős–Rényi np (Section 5.1 worked example)",
		Header: []string{"window", "mmax", "np(model)", "giant?"},
	}
	sc := theory.DefaultScenario()
	for _, c := range []struct {
		mins float64
		mmax int
	}{{5, 8}, {10, 8}, {10, 6}} {
		sc.WindowMinutes = c.mins
		sc.MMax = c.mmax
		v := sc.NP()
		np.Rows = append(np.Rows, []string{
			fmt.Sprintf("%gmin", c.mins), fmt.Sprintf("%d", c.mmax),
			fmt.Sprintf("%.2f", v), fmt.Sprintf("%v", theory.GiantComponentLikely(v)),
		})
	}
	sc = theory.DefaultScenario()
	sc.WindowMinutes = 10
	np.Rows = append(np.Rows, []string{"10min", "measured",
		fmt.Sprintf("%.2f", sc.MeasuredNP(5_500_000)), "false"})
	f.Panels = append(f.Panels, np)

	// Measured pairs of the synthetic stream, scaled to the paper's
	// vocabulary model.
	docs := s.docs(1300, s.def.Seed, s.def.Minutes)
	st := graph.WindowStats(docs)
	meas := Panel{
		Title:  "Synthetic stream co-occurrence",
		Header: []string{"docs", "tags", "distinct pairs", "np(tag graph)"},
	}
	meas.Rows = append(meas.Rows, []string{
		fmt.Sprintf("%d", st.Documents), fmt.Sprintf("%d", st.Tags),
		fmt.Sprintf("%d", st.DistinctPairs),
		fmt.Sprintf("%.2f", theory.NP(int64(st.Tags), float64(st.DistinctPairs))),
	})
	f.Panels = append(f.Panels, meas)

	comm := Panel{
		Title:  "E[communication] (Section 5.2): partitions touched per tweet",
		Header: []string{"vocab v", "tweets n", "k", "m", "E[comm]"},
	}
	for _, c := range []struct {
		v, n, k int64
		m       int
	}{
		{40, 10000, 10, 8},
		{1000, 10000, 10, 4},
		{600000, 100000, 10, 2},
		{600000, 100000, 20, 2},
	} {
		comm.Rows = append(comm.Rows, []string{
			fmt.Sprintf("%d", c.v), fmt.Sprintf("%d", c.n),
			fmt.Sprintf("%d", c.k), fmt.Sprintf("%d", c.m),
			fmt.Sprintf("%.2f", theory.ExpectedCommunication(c.v, c.n, c.k, c.m)),
		})
	}
	f.Panels = append(f.Panels, comm)
	return f
}

// GiantComponentFigure demonstrates the α<1 mixing regime of Section 5.1:
// raising the cross-topic mixing probability grows one giant component,
// the condition under which plain DS degrades and the DS+split hybrid
// (Section 8.3) recovers balance.
func GiantComponentFigure(minutes float64, seed int64) *Figure {
	f := &Figure{ID: "Mixing", Title: "Giant component vs cross-topic mixing (Section 5.1)"}
	panel := Panel{
		Title:  "5-minute window",
		Header: []string{"mix prob", "#components", "max tags%", "max load%", "DS Gini", "DS+split Gini"},
	}
	for _, mix := range []float64{0, 0.003, 0.03, 0.3} {
		cfg := twitgen.Default()
		cfg.Seed = seed
		cfg.MixProb = mix
		g, err := twitgen.New(cfg, tagset.NewDictionary())
		if err != nil {
			panic(err)
		}
		limit := stream.Minutes(minutes)
		var docs []stream.Document
		for {
			d := g.Next()
			if d.Time >= limit {
				break
			}
			docs = append(docs, d)
		}
		st := graph.WindowStats(docs)
		w := stream.NewSlidingWindow(limit)
		for _, d := range docs {
			w.Add(d)
		}
		snap := w.Snapshot()
		ds, err := partition.Build(snap, partition.Options{Algorithm: partition.DS, K: 10})
		if err != nil {
			panic(err)
		}
		hy, err := partition.Build(snap, partition.Options{Algorithm: partition.DSHybrid, K: 10})
		if err != nil {
			panic(err)
		}
		panel.Rows = append(panel.Rows, []string{
			fmt.Sprintf("%.3f", mix),
			fmt.Sprintf("%d", st.Components),
			fmt.Sprintf("%.1f", 100*st.MaxTagsShare),
			fmt.Sprintf("%.1f", 100*st.MaxLoadShare),
			fmt.Sprintf("%.3f", partition.Evaluate(ds, snap).Gini),
			fmt.Sprintf("%.3f", partition.Evaluate(hy, snap).Gini),
		})
	}
	f.Panels = append(f.Panels, panel)
	return f
}

func pick(shares []float64, i int) string {
	if i >= len(shares) {
		return "-"
	}
	return fmt.Sprintf("%.3f", shares[i])
}

func marksSummary(marks []float64) string {
	if len(marks) == 0 {
		return "none"
	}
	if len(marks) <= 4 {
		out := ""
		for i, m := range marks {
			if i > 0 {
				out += ", "
			}
			out += fmt.Sprintf("%.0fk", m/1000)
		}
		return out
	}
	return fmt.Sprintf("%d positions, first %.0fk last %.0fk",
		len(marks), marks[0]/1000, marks[len(marks)-1]/1000)
}

// decimate thins a series to at most max evenly-spaced samples, always
// keeping the first and last.
func decimate[T any](points []T, max int) []T {
	if len(points) <= max || max < 2 {
		return points
	}
	out := make([]T, 0, max)
	step := float64(len(points)-1) / float64(max-1)
	for i := 0; i < max; i++ {
		out = append(out, points[int(float64(i)*step)])
	}
	return out
}
