// Package graph models the tagset graph of Section 4: vertices are tagsets,
// with an edge between two tagsets that share a tag. Because the partitioning
// algorithms only ever need the connected components of this graph — and two
// tagsets are connected exactly when their tags are transitively linked — the
// implementation works on the equivalent tag-level graph using union-find,
// which is linear in the total number of tag occurrences.
//
// The package also provides the component statistics of the connectivity
// study (Section 8.2.6, Figure 7) and the Erdős–Rényi quantities used by the
// theoretical analysis (Section 5.1).
package graph

import (
	"sort"

	"repro/internal/dsu"
	"repro/internal/stream"
	"repro/internal/tagset"
)

// Component is one connected component of the tagset graph, flattened to the
// union of its tags plus aggregate statistics.
type Component struct {
	Tags tagset.Set // all tags of the component (the "disjoint set" of Alg 1)
	Load int64      // documents annotated with any tag of the component
	Sets int        // distinct tagsets merged into the component
}

// Components computes the connected components of the tagset graph induced
// by the given weighted tagsets. Each input tagset's Count contributes to
// the load of exactly one component (a document's tags all fall in the same
// component by construction). Empty tagsets are ignored. Components are
// returned in descending load order, ties broken by descending tag count.
func Components(sets []stream.WeightedSet) []Component {
	// Map tags to dense local ids.
	local := make(map[tagset.Tag]int)
	var tags []tagset.Tag
	id := func(t tagset.Tag) int {
		if i, ok := local[t]; ok {
			return i
		}
		i := len(tags)
		local[t] = i
		tags = append(tags, t)
		return i
	}
	d := dsu.New(0)
	for _, ws := range sets {
		if ws.Tags.IsEmpty() {
			continue
		}
		first := id(ws.Tags[0])
		d.Grow(first + 1)
		for _, t := range ws.Tags[1:] {
			d.Union(first, id(t))
		}
	}
	d.Grow(len(tags))

	// Aggregate per root.
	type agg struct {
		tags []tagset.Tag
		load int64
		sets int
	}
	byRoot := make(map[int]*agg)
	for i, t := range tags {
		r := d.Find(i)
		a := byRoot[r]
		if a == nil {
			a = &agg{}
			byRoot[r] = a
		}
		a.tags = append(a.tags, t)
	}
	for _, ws := range sets {
		if ws.Tags.IsEmpty() {
			continue
		}
		r := d.Find(local[ws.Tags[0]])
		a := byRoot[r]
		a.load += ws.Count
		a.sets++
	}

	out := make([]Component, 0, len(byRoot))
	for _, a := range byRoot {
		out = append(out, Component{Tags: tagset.New(a.tags...), Load: a.load, Sets: a.sets})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Load != out[j].Load {
			return out[i].Load > out[j].Load
		}
		if out[i].Tags.Len() != out[j].Tags.Len() {
			return out[i].Tags.Len() > out[j].Tags.Len()
		}
		// Total order: components equal in load and size would otherwise
		// keep the map-iteration order they were gathered in, making the
		// downstream partition packing — and with it every coefficient the
		// pipeline reports — differ between runs over identical input.
		return out[i].Tags.Key() < out[j].Tags.Key()
	})
	return out
}

// Stats summarises the connectivity of one window of documents, the three
// quantities of Figure 7.
type Stats struct {
	Components    int     // number of disjoint sets (Fig 7c)
	Tags          int     // distinct tags in the window
	Documents     int64   // documents in the window
	MaxTagsShare  float64 // largest component's share of distinct tags (Fig 7a)
	MaxLoadShare  float64 // largest component's share of documents (Fig 7b)
	LargestTags   int     // tags in the largest-tag component
	LargestLoad   int64   // documents related to the heaviest component
	DistinctPairs int64   // distinct co-occurring tag pairs (edges of the tag graph)
}

// WindowStats computes connectivity statistics over one batch of documents.
func WindowStats(docs []stream.Document) Stats {
	counts := make(map[tagset.Key]int64)
	pairs := make(map[[2]tagset.Tag]struct{})
	var nDocs int64
	for _, d := range docs {
		if d.Tags.IsEmpty() {
			continue
		}
		nDocs++
		counts[d.Tags.Key()]++
		for i := 0; i < d.Tags.Len(); i++ {
			for j := i + 1; j < d.Tags.Len(); j++ {
				pairs[[2]tagset.Tag{d.Tags[i], d.Tags[j]}] = struct{}{}
			}
		}
	}
	sets := make([]stream.WeightedSet, 0, len(counts))
	for k, c := range counts {
		sets = append(sets, stream.WeightedSet{Tags: k.Set(), Count: c})
	}
	comps := Components(sets)

	st := Stats{Components: len(comps), Documents: nDocs, DistinctPairs: int64(len(pairs))}
	var maxTags int
	var maxLoad int64
	for _, c := range comps {
		st.Tags += c.Tags.Len()
		if c.Tags.Len() > maxTags {
			maxTags = c.Tags.Len()
		}
		if c.Load > maxLoad {
			maxLoad = c.Load
		}
	}
	st.LargestTags = maxTags
	st.LargestLoad = maxLoad
	if st.Tags > 0 {
		st.MaxTagsShare = float64(maxTags) / float64(st.Tags)
	}
	if nDocs > 0 {
		st.MaxLoadShare = float64(maxLoad) / float64(nDocs)
	}
	return st
}
