package graph

import (
	"math/rand"
	"testing"

	"repro/internal/stream"
	"repro/internal/tagset"
)

func ws(count int64, tags ...tagset.Tag) stream.WeightedSet {
	return stream.WeightedSet{Tags: tagset.New(tags...), Count: count}
}

// The running example of Figure 1: six tagsets forming two components.
func figure1() []stream.WeightedSet {
	// Tags: 0=munich 1=beer 2=soccer 3=pizza 4=oktoberfest 5=bavaria
	//       6=beach 7=sunny 8=friday
	return []stream.WeightedSet{
		ws(10, 0, 1, 2), // {munich,beer,soccer}
		ws(4, 1, 3),     // {beer,pizza}
		ws(3, 0, 4),     // {munich,oktoberfest}
		ws(2, 5, 2),     // {bavaria,soccer}
		ws(1, 6, 7),     // {beach,sunny}
		ws(1, 8, 7),     // {friday,sunny}
	}
}

func TestComponentsFigure1(t *testing.T) {
	comps := Components(figure1())
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	// Sorted by load descending: the big beer/munich component first.
	big, small := comps[0], comps[1]
	if big.Load != 19 {
		t.Errorf("big component load = %d, want 19", big.Load)
	}
	if !big.Tags.Equal(tagset.New(0, 1, 2, 3, 4, 5)) {
		t.Errorf("big component tags = %v", big.Tags)
	}
	if big.Sets != 4 {
		t.Errorf("big component sets = %d, want 4", big.Sets)
	}
	if small.Load != 2 {
		t.Errorf("small component load = %d, want 2", small.Load)
	}
	if !small.Tags.Equal(tagset.New(6, 7, 8)) {
		t.Errorf("small component tags = %v", small.Tags)
	}
	// The paper's 86%/14% split (19/21 vs 2/21 ≈ 90/10 with our weights —
	// the exact paper weights use edge weights; check proportionality only).
	if big.Load <= small.Load {
		t.Error("big component should dominate load")
	}
}

func TestComponentsEmptyAndSingle(t *testing.T) {
	if got := Components(nil); len(got) != 0 {
		t.Errorf("Components(nil) = %v", got)
	}
	comps := Components([]stream.WeightedSet{ws(5, 9)})
	if len(comps) != 1 || comps[0].Load != 5 || comps[0].Tags.Len() != 1 {
		t.Errorf("single = %+v", comps)
	}
	// Empty tagsets are ignored.
	comps = Components([]stream.WeightedSet{{Tags: nil, Count: 3}})
	if len(comps) != 0 {
		t.Errorf("empty tagset produced components: %v", comps)
	}
}

func TestComponentsTransitivity(t *testing.T) {
	// a-b, b-c, c-d chains into one component even though a,d never co-occur.
	comps := Components([]stream.WeightedSet{ws(1, 1, 2), ws(1, 2, 3), ws(1, 3, 4)})
	if len(comps) != 1 {
		t.Fatalf("got %d components, want 1", len(comps))
	}
	if !comps[0].Tags.Equal(tagset.New(1, 2, 3, 4)) {
		t.Errorf("tags = %v", comps[0].Tags)
	}
	if comps[0].Load != 3 || comps[0].Sets != 3 {
		t.Errorf("load=%d sets=%d", comps[0].Load, comps[0].Sets)
	}
}

func doc(id uint64, tags ...tagset.Tag) stream.Document {
	return stream.Document{ID: id, Tags: tagset.New(tags...)}
}

func TestWindowStats(t *testing.T) {
	docs := []stream.Document{
		doc(1, 1, 2),
		doc(2, 2, 3),
		doc(3, 4, 5),
		doc(4, 4, 5),
		doc(5), // no tags; ignored
	}
	st := WindowStats(docs)
	if st.Components != 2 {
		t.Errorf("Components = %d, want 2", st.Components)
	}
	if st.Tags != 5 {
		t.Errorf("Tags = %d, want 5", st.Tags)
	}
	if st.Documents != 4 {
		t.Errorf("Documents = %d, want 4", st.Documents)
	}
	if st.LargestTags != 3 {
		t.Errorf("LargestTags = %d, want 3", st.LargestTags)
	}
	if st.MaxTagsShare != 0.6 {
		t.Errorf("MaxTagsShare = %g, want 0.6", st.MaxTagsShare)
	}
	if st.MaxLoadShare != 0.5 {
		t.Errorf("MaxLoadShare = %g, want 0.5 (either component)", st.MaxLoadShare)
	}
	if st.DistinctPairs != 3 { // {1,2},{2,3},{4,5}
		t.Errorf("DistinctPairs = %d, want 3", st.DistinctPairs)
	}
}

func TestWindowStatsEmpty(t *testing.T) {
	st := WindowStats(nil)
	if st.Components != 0 || st.MaxTagsShare != 0 || st.MaxLoadShare != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

// Property: component loads sum to total documents; tags partition exactly.
func TestQuickComponentsPartition(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(50)
		sets := make([]stream.WeightedSet, n)
		var totalLoad int64
		for i := range sets {
			k := 1 + r.Intn(4)
			tags := make([]tagset.Tag, k)
			for j := range tags {
				tags[j] = tagset.Tag(r.Intn(30))
			}
			c := int64(1 + r.Intn(5))
			sets[i] = stream.WeightedSet{Tags: tagset.New(tags...), Count: c}
			totalLoad += c
		}
		comps := Components(sets)
		var loadSum int64
		seen := make(map[tagset.Tag]bool)
		for _, c := range comps {
			loadSum += c.Load
			for _, tg := range c.Tags {
				if seen[tg] {
					t.Fatalf("tag %d in two components", tg)
				}
				seen[tg] = true
			}
		}
		if loadSum != totalLoad {
			t.Fatalf("component loads %d != total %d", loadSum, totalLoad)
		}
		// Every input tagset must be fully inside one component.
		for _, s := range sets {
			found := false
			for _, c := range comps {
				if s.Tags.SubsetOf(c.Tags) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("tagset %v split across components", s.Tags)
			}
		}
		// Components are connected: no two components may be mergeable via
		// any input tagset (guaranteed by the subset check above) and order
		// is by descending load.
		for i := 1; i < len(comps); i++ {
			if comps[i].Load > comps[i-1].Load {
				t.Fatal("components not sorted by load")
			}
		}
	}
}
