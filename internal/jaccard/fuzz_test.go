package jaccard

import (
	"testing"

	"repro/internal/tagset"
)

// decodeDocs turns fuzz bytes into a deterministic document stream: each
// byte contributes one tag (from a small universe, so co-occurrence is
// dense) and a high bit that ends the current document.
func decodeDocs(data []byte) [][]tagset.Tag {
	var docs [][]tagset.Tag
	var cur []tagset.Tag
	for _, b := range data {
		cur = append(cur, tagset.Tag(b&0x0f))
		if b&0x80 != 0 || len(cur) >= 6 {
			docs = append(docs, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		docs = append(docs, cur)
	}
	return docs
}

// FuzzCounterTableCoefficients feeds arbitrary document streams into a
// CounterTable and checks the invariants of the Calculator's report: the
// coefficient list is ordered (descending J, ties by ascending tagset
// key), every coefficient is internally consistent with the table's
// counters (CN = intersection count, J = CN / inclusion–exclusion union,
// J in (0, 1]), and the per-set Jaccard query round-trips to the same
// value.
func FuzzCounterTableCoefficients(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x82})
	f.Add([]byte{0x01, 0x02, 0x83, 0x01, 0x02, 0x83})
	f.Add([]byte{0x11, 0x12, 0x93, 0x11, 0x94, 0x12, 0x94})
	f.Add([]byte{0x01, 0x01, 0x81, 0x02, 0x03, 0x04, 0x85, 0x0f, 0x8f})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			return
		}
		ct := NewCounterTable()
		var docs int64
		for _, tags := range decodeDocs(data) {
			s := tagset.New(tags...)
			ct.Observe(s)
			if !s.IsEmpty() {
				docs++
			}
		}
		if ct.Docs() != docs {
			t.Fatalf("Docs() = %d, observed %d non-empty documents", ct.Docs(), docs)
		}

		coeffs := ct.Coefficients(1)
		for i, c := range coeffs {
			if c.Tags.Len() < 2 {
				t.Fatalf("coefficient %d over %d tags", i, c.Tags.Len())
			}
			if c.CN < 1 || c.CN > docs {
				t.Fatalf("coefficient %d: CN = %d with %d documents", i, c.CN, docs)
			}
			if c.CN != ct.Count(c.Tags) {
				t.Fatalf("coefficient %d: CN = %d, table counts %d", i, c.CN, ct.Count(c.Tags))
			}
			union := ct.UnionCount(c.Tags)
			if union < c.CN {
				t.Fatalf("coefficient %d: union %d below intersection %d", i, union, c.CN)
			}
			if want := float64(c.CN) / float64(union); c.J != want {
				t.Fatalf("coefficient %d: J = %g, want %d/%d", i, c.J, c.CN, union)
			}
			if c.J <= 0 || c.J > 1 {
				t.Fatalf("coefficient %d: J = %g outside (0, 1]", i, c.J)
			}
			if j, ok := ct.Jaccard(c.Tags); !ok || j != c.J {
				t.Fatalf("coefficient %d: Jaccard round-trip = (%g, %v), want (%g, true)", i, j, ok, c.J)
			}
			if i > 0 {
				prev := coeffs[i-1]
				if prev.J < c.J || (prev.J == c.J && prev.Tags.Key() >= c.Tags.Key()) {
					t.Fatalf("ordering violated at %d: {J:%g %v} after {J:%g %v}",
						i, c.J, c.Tags, prev.J, prev.Tags)
				}
			}
		}
	})
}
