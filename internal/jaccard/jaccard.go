// Package jaccard implements the correlation measure of the paper: the
// Jaccard coefficient of a set of tags, defined as the ratio of the number
// of documents annotated with all of the set's tags to the number annotated
// with any of them (Section 3.1, Eq. 1).
//
// A CounterTable maintains, per observed tagset, the count of documents
// containing all of the tagset's tags — exactly the state a Calculator
// keeps. The denominator (documents containing any tag) is derived by the
// inclusion–exclusion principle (Eq. 2) from the counters of all non-empty
// subsets, which exist by construction because every received document
// increments every subset of its (partition-restricted) tagset.
//
// The same table fed with unrestricted tagsets is the exact centralized
// baseline of Section 8.2.3.
package jaccard

import (
	"sort"

	"repro/internal/tagset"
)

// Coefficient is one reported correlation: the tagset, its Jaccard value,
// and the intersection counter CN it was computed from (the Tracker uses CN
// to pick among duplicate reports, Section 6.2).
type Coefficient struct {
	Tags tagset.Set
	J    float64
	CN   int64
}

// CounterTable counts, for every subset of every observed tagset, the number
// of observations containing that subset. It is not safe for concurrent use;
// each Calculator owns one.
type CounterTable struct {
	counts map[tagset.Key]int64
	docs   int64
}

// NewCounterTable returns an empty table.
func NewCounterTable() *CounterTable {
	return &CounterTable{counts: make(map[tagset.Key]int64)}
}

// Observe records one document carrying tagset s, incrementing the counter
// of every non-empty subset of s. Empty sets are ignored.
func (ct *CounterTable) Observe(s tagset.Set) {
	if s.IsEmpty() {
		return
	}
	ct.docs++
	s.Subsets(1, func(sub tagset.Set) {
		ct.counts[sub.Key()]++
	})
}

// Docs reports the number of observed documents.
func (ct *CounterTable) Docs() int64 { return ct.docs }

// Counters reports the number of live subset counters.
func (ct *CounterTable) Counters() int { return len(ct.counts) }

// Count returns the number of observed documents containing all tags of s
// (zero if the combination was never seen).
func (ct *CounterTable) Count(s tagset.Set) int64 {
	return ct.counts[s.Key()]
}

// UnionCount returns the number of observed documents containing any tag of
// s, by inclusion–exclusion over the subset counters (Eq. 2).
func (ct *CounterTable) UnionCount(s tagset.Set) int64 {
	var total int64
	s.Subsets(1, func(sub tagset.Set) {
		c := ct.counts[sub.Key()]
		if sub.Len()%2 == 1 {
			total += c
		} else {
			total -= c
		}
	})
	return total
}

// Jaccard returns the coefficient for s and whether it is defined (the
// denominator is positive and s has at least two tags).
func (ct *CounterTable) Jaccard(s tagset.Set) (float64, bool) {
	if s.Len() < 2 {
		return 0, false
	}
	inter := ct.counts[s.Key()]
	if inter == 0 {
		return 0, false
	}
	union := ct.UnionCount(s)
	if union <= 0 {
		return 0, false
	}
	return float64(inter) / float64(union), true
}

// Coefficients computes the Jaccard coefficient for every tracked tagset of
// at least two tags whose intersection counter is at least minCN. This is
// the Calculator's periodic report (Section 6.2): the "maximum possible
// number of Jaccard coefficients" from the current counters. Results are
// sorted by descending J, ties broken by the tagset key for determinism.
func (ct *CounterTable) Coefficients(minCN int64) []Coefficient {
	if minCN < 1 {
		minCN = 1
	}
	out := make([]Coefficient, 0, len(ct.counts)/2)
	for k, cn := range ct.counts {
		if cn < minCN || k.Len() < 2 {
			continue
		}
		s := k.Set()
		union := ct.UnionCount(s)
		if union <= 0 {
			continue
		}
		out = append(out, Coefficient{Tags: s, J: float64(cn) / float64(union), CN: cn})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].J != out[j].J {
			return out[i].J > out[j].J
		}
		return out[i].Tags.Key() < out[j].Tags.Key()
	})
	return out
}

// Reset deletes all counters, as the Calculator does after each report.
func (ct *CounterTable) Reset() {
	ct.counts = make(map[tagset.Key]int64)
	ct.docs = 0
}

// Centralized is the exact single-node baseline: it observes every document
// unrestricted and reports coefficients for tagsets seen at least minCN
// times. The distributed pipeline's accuracy (Figure 5) is measured against
// it.
type Centralized struct {
	table *CounterTable
}

// NewCentralized returns an empty baseline calculator.
func NewCentralized() *Centralized {
	return &Centralized{table: NewCounterTable()}
}

// Observe records one document's full tagset.
func (c *Centralized) Observe(s tagset.Set) { c.table.Observe(s) }

// Table exposes the underlying counter table (read-only use).
func (c *Centralized) Table() *CounterTable { return c.table }

// Report returns the exact coefficients for all tagsets with counter >=
// minCN, and resets the table for the next reporting period.
func (c *Centralized) Report(minCN int64) []Coefficient {
	out := c.table.Coefficients(minCN)
	c.table.Reset()
	return out
}

// CompareReports matches a distributed report against the baseline and
// returns the mean absolute Jaccard error over baseline tagsets that the
// distributed run also reported, together with the coverage (fraction of
// baseline tagsets that received any coefficient) — the two quantities of
// Section 8.2.3.
func CompareReports(baseline, distributed []Coefficient) (meanAbsErr, coverage float64) {
	if len(baseline) == 0 {
		return 0, 1
	}
	dist := make(map[tagset.Key]float64, len(distributed))
	for _, c := range distributed {
		dist[c.Tags.Key()] = c.J
	}
	var errSum float64
	matched := 0
	for _, b := range baseline {
		if j, ok := dist[b.Tags.Key()]; ok {
			d := j - b.J
			if d < 0 {
				d = -d
			}
			errSum += d
			matched++
		}
	}
	coverage = float64(matched) / float64(len(baseline))
	if matched > 0 {
		meanAbsErr = errSum / float64(matched)
	}
	return meanAbsErr, coverage
}
