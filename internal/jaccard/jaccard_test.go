package jaccard

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tagset"
)

func TestObserveCounts(t *testing.T) {
	ct := NewCounterTable()
	ct.Observe(tagset.New(1, 2))
	ct.Observe(tagset.New(1, 2))
	ct.Observe(tagset.New(1))
	if ct.Docs() != 3 {
		t.Errorf("Docs = %d", ct.Docs())
	}
	if got := ct.Count(tagset.New(1)); got != 3 {
		t.Errorf("count({1}) = %d, want 3", got)
	}
	if got := ct.Count(tagset.New(2)); got != 2 {
		t.Errorf("count({2}) = %d, want 2", got)
	}
	if got := ct.Count(tagset.New(1, 2)); got != 2 {
		t.Errorf("count({1,2}) = %d, want 2", got)
	}
	if got := ct.Count(tagset.New(3)); got != 0 {
		t.Errorf("count({3}) = %d, want 0", got)
	}
	ct.Observe(nil) // ignored
	if ct.Docs() != 3 {
		t.Error("empty set counted")
	}
}

func TestUnionCountInclusionExclusion(t *testing.T) {
	ct := NewCounterTable()
	// 3 docs: {1,2}, {1}, {2,3}
	ct.Observe(tagset.New(1, 2))
	ct.Observe(tagset.New(1))
	ct.Observe(tagset.New(2, 3))
	// |T1 ∪ T2| = docs containing 1 or 2 = all 3.
	if got := ct.UnionCount(tagset.New(1, 2)); got != 3 {
		t.Errorf("union({1,2}) = %d, want 3", got)
	}
	// |T1 ∪ T3| = {1,2},{1},{2,3} → docs with 1 or 3 = 3.
	if got := ct.UnionCount(tagset.New(1, 3)); got != 3 {
		t.Errorf("union({1,3}) = %d, want 3", got)
	}
	// |T2 ∪ T3| = docs with 2 or 3 = 2.
	if got := ct.UnionCount(tagset.New(2, 3)); got != 2 {
		t.Errorf("union({2,3}) = %d, want 2", got)
	}
	// Triple union over {1,2,3} = 3.
	if got := ct.UnionCount(tagset.New(1, 2, 3)); got != 3 {
		t.Errorf("union({1,2,3}) = %d, want 3", got)
	}
}

func TestJaccardPaperStyle(t *testing.T) {
	ct := NewCounterTable()
	// 4 docs with {a,b}, 1 doc with {a}, 1 doc with {b}.
	for i := 0; i < 4; i++ {
		ct.Observe(tagset.New(10, 20))
	}
	ct.Observe(tagset.New(10))
	ct.Observe(tagset.New(20))
	j, ok := ct.Jaccard(tagset.New(10, 20))
	if !ok {
		t.Fatal("Jaccard undefined")
	}
	if math.Abs(j-4.0/6.0) > 1e-12 {
		t.Errorf("J = %g, want 2/3", j)
	}
}

func TestJaccardUndefinedCases(t *testing.T) {
	ct := NewCounterTable()
	ct.Observe(tagset.New(1))
	if _, ok := ct.Jaccard(tagset.New(1)); ok {
		t.Error("singleton should have no coefficient")
	}
	if _, ok := ct.Jaccard(tagset.New(1, 2)); ok {
		t.Error("never co-occurring pair should have no coefficient")
	}
}

func TestCoefficientsReport(t *testing.T) {
	ct := NewCounterTable()
	ct.Observe(tagset.New(1, 2))
	ct.Observe(tagset.New(1, 2))
	ct.Observe(tagset.New(1, 3))
	coeffs := ct.Coefficients(1)
	// Expect coefficients for {1,2} and {1,3} only (subsets of size >= 2
	// with positive counters).
	if len(coeffs) != 2 {
		t.Fatalf("got %d coefficients: %v", len(coeffs), coeffs)
	}
	// {1,2}: inter 2, union 3 → 2/3. {1,3}: inter 1, union 3 → 1/3.
	if coeffs[0].J < coeffs[1].J {
		t.Error("not sorted by descending J")
	}
	if math.Abs(coeffs[0].J-2.0/3.0) > 1e-12 || coeffs[0].CN != 2 {
		t.Errorf("top coefficient = %+v", coeffs[0])
	}
	// minCN filter.
	if got := ct.Coefficients(2); len(got) != 1 {
		t.Errorf("minCN=2 gave %d coefficients", len(got))
	}
}

func TestReset(t *testing.T) {
	ct := NewCounterTable()
	ct.Observe(tagset.New(1, 2))
	ct.Reset()
	if ct.Docs() != 0 || ct.Counters() != 0 {
		t.Error("Reset incomplete")
	}
	if got := ct.Count(tagset.New(1)); got != 0 {
		t.Errorf("counter survived reset: %d", got)
	}
}

func TestCentralizedReportResets(t *testing.T) {
	c := NewCentralized()
	c.Observe(tagset.New(1, 2))
	c.Observe(tagset.New(1, 2))
	rep := c.Report(1)
	if len(rep) != 1 {
		t.Fatalf("report = %v", rep)
	}
	if c.Table().Docs() != 0 {
		t.Error("Report did not reset")
	}
}

func TestCompareReports(t *testing.T) {
	base := []Coefficient{
		{Tags: tagset.New(1, 2), J: 0.5},
		{Tags: tagset.New(3, 4), J: 0.8},
		{Tags: tagset.New(5, 6), J: 0.2},
	}
	dist := []Coefficient{
		{Tags: tagset.New(1, 2), J: 0.4}, // err 0.1
		{Tags: tagset.New(3, 4), J: 0.8}, // err 0
		// {5,6} missing → coverage 2/3
	}
	err, cov := CompareReports(base, dist)
	if math.Abs(err-0.05) > 1e-12 {
		t.Errorf("meanAbsErr = %g, want 0.05", err)
	}
	if math.Abs(cov-2.0/3.0) > 1e-12 {
		t.Errorf("coverage = %g, want 2/3", cov)
	}
	// Edge cases.
	if e, c := CompareReports(nil, dist); e != 0 || c != 1 {
		t.Errorf("empty baseline: %g %g", e, c)
	}
	if _, c := CompareReports(base, nil); c != 0 {
		t.Errorf("empty distributed coverage = %g", c)
	}
}

// TestQuickJaccardAgainstBruteForce compares CounterTable values against a
// direct document-set computation on random small streams.
func TestQuickJaccardAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		ct := NewCounterTable()
		var docs []tagset.Set
		for i := 0; i < 60; i++ {
			n := 1 + r.Intn(4)
			tags := make([]tagset.Tag, n)
			for j := range tags {
				tags[j] = tagset.Tag(r.Intn(8))
			}
			s := tagset.New(tags...)
			docs = append(docs, s)
			ct.Observe(s)
		}
		// Brute force for random query sets.
		for q := 0; q < 20; q++ {
			n := 2 + r.Intn(3)
			tags := make([]tagset.Tag, n)
			for j := range tags {
				tags[j] = tagset.Tag(r.Intn(8))
			}
			query := tagset.New(tags...)
			if query.Len() < 2 {
				continue
			}
			var inter, union int64
			for _, d := range docs {
				if query.SubsetOf(d) {
					inter++
				}
				if query.Intersects(d) {
					union++
				}
			}
			if got := ct.Count(query); got != inter {
				t.Fatalf("Count(%v) = %d, brute force %d", query, got, inter)
			}
			if got := ct.UnionCount(query); got != union {
				t.Fatalf("UnionCount(%v) = %d, brute force %d", query, got, union)
			}
			j, ok := ct.Jaccard(query)
			if ok != (inter > 0) {
				t.Fatalf("Jaccard(%v) defined=%v, want %v", query, ok, inter > 0)
			}
			if ok {
				want := float64(inter) / float64(union)
				if math.Abs(j-want) > 1e-12 {
					t.Fatalf("Jaccard(%v) = %g, want %g", query, j, want)
				}
				if j < 0 || j > 1 {
					t.Fatalf("Jaccard out of range: %g", j)
				}
			}
		}
	}
}
