// Package stream defines the document stream model: timestamped, tag-
// annotated documents (tweets), the virtual clock that paces them at a
// configured arrival rate (tweets per second), and the sliding / tumbling
// windows the Partitioners and experiments consume (Sections 1.1 and 6.2).
//
// Time is virtual: documents carry millisecond timestamps advanced
// deterministically at the configured tps, which reproduces exactly the
// quantities the paper measures (how many documents fall into a 5-minute
// window, when Calculators report, when quality statistics fire) while
// keeping every run repeatable.
package stream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/tagset"
)

// Millis is a virtual timestamp in milliseconds since stream start.
type Millis int64

// Seconds converts a duration in seconds to Millis.
func Seconds(s float64) Millis { return Millis(s * 1000) }

// Minutes converts a duration in minutes to Millis.
func Minutes(m float64) Millis { return Millis(m * 60 * 1000) }

// Document is one tagged message of the stream.
type Document struct {
	ID   uint64
	Time Millis
	Tags tagset.Set
}

// Clock produces virtual arrival timestamps at a fixed rate of tps
// documents per second.
type Clock struct {
	periodNum   int64 // milliseconds numerator: 1000
	tps         int64
	count       int64
	startOffset Millis
}

// NewClock returns a clock starting at time 0 that spaces documents at
// 1000/tps milliseconds. It panics if tps <= 0.
func NewClock(tps int) *Clock {
	if tps <= 0 {
		panic(fmt.Sprintf("stream: tps = %d", tps))
	}
	return &Clock{periodNum: 1000, tps: int64(tps)}
}

// Next returns the arrival time of the next document.
func (c *Clock) Next() Millis {
	t := c.startOffset + Millis(c.count*c.periodNum/c.tps)
	c.count++
	return t
}

// Now returns the time of the most recently issued document (0 if none).
func (c *Clock) Now() Millis {
	if c.count == 0 {
		return c.startOffset
	}
	return c.startOffset + Millis((c.count-1)*c.periodNum/c.tps)
}

// WeightedSet is a distinct tagset together with the number of window
// documents annotated with exactly that tagset. It is the unit the
// partitioning algorithms consume.
type WeightedSet struct {
	Tags  tagset.Set
	Count int64
}

// SlidingWindow is a time-based sliding window over documents that
// aggregates occurrence counts per distinct tagset. Adding a document with
// timestamp t evicts everything older than t - span.
type SlidingWindow struct {
	span   Millis
	docs   []Document // FIFO; docs[head:] are live
	head   int
	counts map[tagset.Key]int64
}

// NewSlidingWindow returns a window covering the trailing span of time.
// It panics if span <= 0.
func NewSlidingWindow(span Millis) *SlidingWindow {
	if span <= 0 {
		panic(fmt.Sprintf("stream: window span = %d", span))
	}
	return &SlidingWindow{span: span, counts: make(map[tagset.Key]int64)}
}

// Add inserts doc and evicts documents older than doc.Time - span.
// Documents must be added in non-decreasing time order.
func (w *SlidingWindow) Add(doc Document) {
	w.docs = append(w.docs, doc)
	w.counts[doc.Tags.Key()]++
	w.EvictBefore(doc.Time - w.span)
}

// EvictBefore removes all documents with Time < cutoff.
func (w *SlidingWindow) EvictBefore(cutoff Millis) {
	for w.head < len(w.docs) && w.docs[w.head].Time < cutoff {
		k := w.docs[w.head].Tags.Key()
		if w.counts[k]--; w.counts[k] == 0 {
			delete(w.counts, k)
		}
		w.head++
	}
	// Compact occasionally so the backing slice does not grow without bound.
	if w.head > 1024 && w.head*2 > len(w.docs) {
		n := copy(w.docs, w.docs[w.head:])
		w.docs = w.docs[:n]
		w.head = 0
	}
}

// Len reports the number of live documents.
func (w *SlidingWindow) Len() int { return len(w.docs) - w.head }

// DistinctTagsets reports the number of distinct live tagsets.
func (w *SlidingWindow) DistinctTagsets() int { return len(w.counts) }

// Snapshot returns the distinct live tagsets with their counts. The returned
// slice is fresh; the sets alias the stored canonical keys' decodings.
func (w *SlidingWindow) Snapshot() []WeightedSet {
	out := make([]WeightedSet, 0, len(w.counts))
	for k, c := range w.counts {
		out = append(out, WeightedSet{Tags: k.Set(), Count: c})
	}
	return out
}

// Span returns the configured window span.
func (w *SlidingWindow) Span() Millis { return w.span }

// CountWindow is a count-based sliding window keeping the last capacity
// documents, aggregated per distinct tagset.
type CountWindow struct {
	cap    int
	docs   []Document
	head   int
	counts map[tagset.Key]int64
}

// NewCountWindow returns a window over the trailing capacity documents.
// It panics if capacity <= 0.
func NewCountWindow(capacity int) *CountWindow {
	if capacity <= 0 {
		panic(fmt.Sprintf("stream: window capacity = %d", capacity))
	}
	return &CountWindow{cap: capacity, counts: make(map[tagset.Key]int64)}
}

// Add inserts doc, evicting the oldest document when full.
func (w *CountWindow) Add(doc Document) {
	w.docs = append(w.docs, doc)
	w.counts[doc.Tags.Key()]++
	if len(w.docs)-w.head > w.cap {
		k := w.docs[w.head].Tags.Key()
		if w.counts[k]--; w.counts[k] == 0 {
			delete(w.counts, k)
		}
		w.head++
	}
	if w.head > 1024 && w.head*2 > len(w.docs) {
		n := copy(w.docs, w.docs[w.head:])
		w.docs = w.docs[:n]
		w.head = 0
	}
}

// Len reports the number of live documents.
func (w *CountWindow) Len() int { return len(w.docs) - w.head }

// Snapshot returns the distinct live tagsets with their counts.
func (w *CountWindow) Snapshot() []WeightedSet {
	out := make([]WeightedSet, 0, len(w.counts))
	for k, c := range w.counts {
		out = append(out, WeightedSet{Tags: k.Set(), Count: c})
	}
	return out
}

// TumblingWindow partitions the stream into consecutive, non-overlapping
// spans (as used by the connectivity study, Section 8.2.6). Add returns the
// completed batch whenever doc crosses a span boundary, and nil otherwise.
type TumblingWindow struct {
	span  Millis
	until Millis
	batch []Document
	init  bool
}

// NewTumblingWindow returns a tumbling window of the given span.
// It panics if span <= 0.
func NewTumblingWindow(span Millis) *TumblingWindow {
	if span <= 0 {
		panic(fmt.Sprintf("stream: window span = %d", span))
	}
	return &TumblingWindow{span: span}
}

// Add inserts doc. If doc falls outside the current span, the accumulated
// batch is returned (ownership transfers to the caller) and a new span
// containing doc begins.
func (w *TumblingWindow) Add(doc Document) []Document {
	if !w.init {
		w.init = true
		w.until = doc.Time + w.span
	}
	if doc.Time >= w.until {
		done := w.batch
		w.batch = []Document{doc}
		for doc.Time >= w.until {
			w.until += w.span
		}
		return done
	}
	w.batch = append(w.batch, doc)
	return nil
}

// Flush returns the in-progress batch and resets the window.
func (w *TumblingWindow) Flush() []Document {
	done := w.batch
	w.batch = nil
	w.init = false
	return done
}

// jsonDoc is the JSONL wire format of a document.
type jsonDoc struct {
	ID   uint64   `json:"id"`
	Time int64    `json:"time_ms"`
	Tags []string `json:"tags"`
}

// WriteJSONL writes documents as one JSON object per line, resolving tag ids
// through dict.
func WriteJSONL(w io.Writer, dict *tagset.Dictionary, docs []Document) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, d := range docs {
		jd := jsonDoc{ID: d.ID, Time: int64(d.Time), Tags: dict.Strings(d.Tags)}
		if err := enc.Encode(&jd); err != nil {
			return fmt.Errorf("stream: encode doc %d: %w", d.ID, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL streams documents from r, interning tags into dict and calling
// fn for each document. It stops early if fn returns a non-nil error.
func ReadJSONL(r io.Reader, dict *tagset.Dictionary, fn func(Document) error) error {
	src := NewJSONLSource(r, dict)
	for {
		doc, ok := src.Next()
		if !ok {
			return src.Err()
		}
		if err := fn(doc); err != nil {
			return err
		}
	}
}

// JSONLSource decodes a JSONL capture one line at a time: each Next call
// reads and parses exactly one document, so replaying a capture of any
// length holds O(1) of it in memory (the scanner's line buffer). This is
// the replay path of tagcorrd -in; ReadJSONL is the same machinery behind
// a callback.
//
// Next returns false at end of input and after the first malformed line;
// Err distinguishes the two. A JSONLSource is not safe for concurrent use.
type JSONLSource struct {
	sc   *bufio.Scanner
	dict *tagset.Dictionary
	line int
	err  error
	done bool
}

// NewJSONLSource returns a source reading from r, interning tags into dict.
func NewJSONLSource(r io.Reader, dict *tagset.Dictionary) *JSONLSource {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	return &JSONLSource{sc: sc, dict: dict}
}

// Next returns the next document, or false when the input is exhausted or
// a line failed to parse (check Err).
func (s *JSONLSource) Next() (Document, bool) {
	if s.done {
		return Document{}, false
	}
	if !s.sc.Scan() {
		s.done = true
		s.err = s.sc.Err()
		return Document{}, false
	}
	s.line++
	var jd jsonDoc
	if err := json.Unmarshal(s.sc.Bytes(), &jd); err != nil {
		s.done = true
		s.err = fmt.Errorf("stream: line %d: %w", s.line, err)
		return Document{}, false
	}
	return Document{ID: jd.ID, Time: Millis(jd.Time), Tags: s.dict.InternSet(jd.Tags)}, true
}

// Err returns the first scan or parse error (nil at clean end of input).
func (s *JSONLSource) Err() error { return s.err }

// Lines reports the number of input lines consumed so far.
func (s *JSONLSource) Lines() int { return s.line }
