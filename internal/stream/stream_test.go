package stream

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/tagset"
)

func TestClockSpacing(t *testing.T) {
	c := NewClock(1000) // 1ms apart
	if c.Next() != 0 || c.Next() != 1 || c.Next() != 2 {
		t.Fatal("1000 tps should space documents 1ms apart")
	}
	if c.Now() != 2 {
		t.Errorf("Now = %d, want 2", c.Now())
	}
}

func TestClockRate1300(t *testing.T) {
	c := NewClock(1300)
	var last Millis
	for i := 0; i < 1300; i++ {
		last = c.Next()
	}
	// Document 1299 arrives just before the 1-second mark.
	if last >= 1000 {
		t.Errorf("1300th doc at %dms, want < 1000", last)
	}
	next := c.Next()
	if next != 1000 {
		t.Errorf("1301st doc at %dms, want 1000", next)
	}
}

func TestClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewClock(0) did not panic")
		}
	}()
	NewClock(0)
}

func doc(id uint64, tm Millis, tags ...tagset.Tag) Document {
	return Document{ID: id, Time: tm, Tags: tagset.New(tags...)}
}

func TestSlidingWindowEviction(t *testing.T) {
	w := NewSlidingWindow(100)
	w.Add(doc(1, 0, 1, 2))
	w.Add(doc(2, 50, 1, 2))
	w.Add(doc(3, 99, 3))
	if w.Len() != 3 || w.DistinctTagsets() != 2 {
		t.Fatalf("Len=%d Distinct=%d, want 3 2", w.Len(), w.DistinctTagsets())
	}
	// t=120 evicts doc at t=0 (cutoff 20).
	w.Add(doc(4, 120, 3))
	if w.Len() != 3 {
		t.Fatalf("Len after eviction = %d, want 3", w.Len())
	}
	snap := w.Snapshot()
	counts := map[string]int64{}
	for _, ws := range snap {
		counts[ws.Tags.String()] = ws.Count
	}
	if counts["{1,2}"] != 1 || counts["{3}"] != 2 {
		t.Errorf("snapshot = %v", counts)
	}
}

func TestSlidingWindowCompaction(t *testing.T) {
	w := NewSlidingWindow(10)
	for i := 0; i < 10000; i++ {
		w.Add(doc(uint64(i), Millis(i*5), tagset.Tag(i%7)))
	}
	if w.Len() > 3 {
		t.Errorf("Len = %d, want <= 3", w.Len())
	}
	if len(w.docs) > 4096 {
		t.Errorf("backing slice grew to %d; compaction failed", len(w.docs))
	}
}

func TestCountWindow(t *testing.T) {
	w := NewCountWindow(3)
	for i := 0; i < 5; i++ {
		w.Add(doc(uint64(i), Millis(i), tagset.Tag(i)))
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	snap := w.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot size = %d", len(snap))
	}
	seen := map[string]bool{}
	for _, ws := range snap {
		seen[ws.Tags.String()] = true
	}
	for _, want := range []string{"{2}", "{3}", "{4}"} {
		if !seen[want] {
			t.Errorf("missing %s in %v", want, seen)
		}
	}
}

func TestTumblingWindow(t *testing.T) {
	w := NewTumblingWindow(100)
	if got := w.Add(doc(1, 10, 1)); got != nil {
		t.Fatal("first add returned a batch")
	}
	if got := w.Add(doc(2, 50, 2)); got != nil {
		t.Fatal("in-span add returned a batch")
	}
	batch := w.Add(doc(3, 120, 3))
	if len(batch) != 2 || batch[0].ID != 1 || batch[1].ID != 2 {
		t.Fatalf("batch = %v", batch)
	}
	rest := w.Flush()
	if len(rest) != 1 || rest[0].ID != 3 {
		t.Fatalf("flush = %v", rest)
	}
	// After Flush the window restarts cleanly.
	if got := w.Add(doc(4, 5000, 1)); got != nil {
		t.Fatal("add after flush returned a batch")
	}
}

func TestTumblingWindowSkipsEmptySpans(t *testing.T) {
	w := NewTumblingWindow(100)
	w.Add(doc(1, 0, 1))
	batch := w.Add(doc(2, 950, 2))
	if len(batch) != 1 {
		t.Fatalf("batch = %v", batch)
	}
	// Next boundary should be at 1000, not 100.
	if got := w.Add(doc(3, 990, 3)); got != nil {
		t.Fatal("doc at 990 should be in the same span as 950")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	dict := tagset.NewDictionary()
	docs := []Document{
		{ID: 1, Time: 0, Tags: dict.InternSet([]string{"beer", "munich"})},
		{ID: 2, Time: 5, Tags: dict.InternSet([]string{"sunny"})},
		{ID: 3, Time: 9, Tags: nil},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, dict, docs); err != nil {
		t.Fatal(err)
	}
	dict2 := tagset.NewDictionary()
	var got []Document
	err := ReadJSONL(&buf, dict2, func(d Document) error {
		got = append(got, d)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d docs", len(got))
	}
	if got[0].ID != 1 || got[0].Time != 0 || got[0].Tags.Len() != 2 {
		t.Errorf("doc 0 = %+v", got[0])
	}
	names := dict2.Strings(got[0].Tags)
	if len(names) != 2 {
		t.Errorf("tags = %v", names)
	}
}

func TestReadJSONLBadInput(t *testing.T) {
	dict := tagset.NewDictionary()
	err := ReadJSONL(bytes.NewBufferString("not json\n"), dict, func(Document) error { return nil })
	if err == nil {
		t.Error("expected error for malformed line")
	}
}

func TestQuickSlidingWindowCountConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	w := NewSlidingWindow(50)
	var tm Millis
	for i := 0; i < 5000; i++ {
		tm += Millis(r.Intn(5))
		w.Add(doc(uint64(i), tm, tagset.Tag(r.Intn(10))))
		total := int64(0)
		for _, ws := range w.Snapshot() {
			if ws.Count <= 0 {
				t.Fatal("non-positive count in snapshot")
			}
			total += ws.Count
		}
		if total != int64(w.Len()) {
			t.Fatalf("snapshot total %d != Len %d", total, w.Len())
		}
	}
}

// TestJSONLSourceLazy pins the lazy replay path: documents come out one
// Next call at a time and match the eager reader, a clean end reports no
// error, and a malformed line ends the stream with the line number in the
// error instead of panicking or skipping.
func TestJSONLSourceLazy(t *testing.T) {
	dict := tagset.NewDictionary()
	docs := []Document{
		{ID: 1, Time: 10, Tags: dict.InternSet([]string{"a", "b"})},
		{ID: 2, Time: 20, Tags: dict.InternSet([]string{"b", "c"})},
		{ID: 3, Time: 30, Tags: dict.InternSet([]string{"a"})},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, dict, docs); err != nil {
		t.Fatal(err)
	}

	src := NewJSONLSource(bytes.NewReader(buf.Bytes()), dict)
	for i, want := range docs {
		got, ok := src.Next()
		if !ok {
			t.Fatalf("source ended at doc %d", i)
		}
		if got.ID != want.ID || got.Time != want.Time || !got.Tags.Equal(want.Tags) {
			t.Errorf("doc %d = %+v, want %+v", i, got, want)
		}
	}
	if _, ok := src.Next(); ok {
		t.Error("source yielded a document past the end")
	}
	if err := src.Err(); err != nil {
		t.Errorf("clean end reports %v", err)
	}
	if src.Lines() != len(docs) {
		t.Errorf("Lines() = %d, want %d", src.Lines(), len(docs))
	}
	// Next after end stays terminal.
	if _, ok := src.Next(); ok {
		t.Error("source restarted after end")
	}

	bad := buf.String() + "not json\n"
	src = NewJSONLSource(strings.NewReader(bad), dict)
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	if n != len(docs) {
		t.Errorf("parsed %d docs before the bad line, want %d", n, len(docs))
	}
	if err := src.Err(); err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("bad line error = %v, want line 4", err)
	}
}
