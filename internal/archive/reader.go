package archive

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/jaccard"
	"repro/internal/tagset"
	"repro/internal/trend"
)

// maxCachedSegments bounds the Reader's decoded-segment LRU. History
// queries concentrate on a few hot periods; everything else streams from
// disk on demand.
const maxCachedSegments = 8

// Segment is one decoded period: the deduplicated coefficients (last
// record wins per tagset, mirroring the Tracker's CN-upgrade semantics)
// and the scored trend deviations. Torn reports that decoding stopped at
// an invalid record — the tail a crash left unflushed.
type Segment struct {
	Period int64
	Coeffs []jaccard.Coefficient // sorted by descending J (report order)
	Trends []trend.Event         // sorted by descending score
	Torn   bool

	byKey map[tagset.Key]jaccard.Coefficient
}

// Coefficient returns the period's coefficient for one tagset key.
func (s *Segment) Coefficient(k tagset.Key) (jaccard.Coefficient, bool) {
	c, ok := s.byKey[k]
	return c, ok
}

// Reader serves history queries from an archive directory. It keeps a
// small LRU of decoded segments, keyed by file size so a segment that is
// still being appended to (the live periods) is transparently re-decoded
// when it grows. All methods are safe for concurrent use.
type Reader struct {
	dir string

	mu    sync.Mutex
	cache map[int64]*cachedSegment
	order []int64 // cached periods, least recently used first
}

type cachedSegment struct {
	seg  *Segment
	size int64
}

// OpenReader returns a Reader over dir. The directory may be empty or not
// yet exist (queries then answer empty); it may also be actively written
// by a live pipeline.
func OpenReader(dir string) *Reader {
	return &Reader{dir: dir, cache: make(map[int64]*cachedSegment)}
}

// Dir returns the archive directory.
func (r *Reader) Dir() string { return r.dir }

// Periods lists the period ids with a segment on disk, ascending. It scans
// the directory on every call, so freshly opened periods appear without
// invalidation machinery.
func (r *Reader) Periods() ([]int64, error) {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("archive: %w", err)
	}
	var out []int64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "period-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		p, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "period-"), ".seg"), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Segment returns one period's decoded segment, from the LRU when its file
// has not grown since it was cached. A missing segment returns (nil, nil).
func (r *Reader) Segment(period int64) (*Segment, error) {
	path := filepath.Join(r.dir, segmentName(period))
	fi, err := os.Stat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("archive: %w", err)
	}

	r.mu.Lock()
	if c, ok := r.cache[period]; ok && c.size == fi.Size() {
		r.touchLocked(period)
		r.mu.Unlock()
		return c.seg, nil
	}
	r.mu.Unlock()

	seg, size, err := decodeSegmentFile(path, period)
	if err != nil {
		return nil, err
	}

	r.mu.Lock()
	if _, ok := r.cache[period]; !ok {
		r.order = append(r.order, period)
	}
	r.cache[period] = &cachedSegment{seg: seg, size: size}
	r.touchLocked(period)
	if len(r.order) > maxCachedSegments {
		delete(r.cache, r.order[0])
		r.order = r.order[1:]
	}
	r.mu.Unlock()
	return seg, nil
}

func (r *Reader) touchLocked(period int64) {
	for i, p := range r.order {
		if p == period {
			r.order = append(append(r.order[:i:i], r.order[i+1:]...), period)
			return
		}
	}
}

// LookupPair returns the most recent archived coefficient for one tagset
// key, scanning at most maxPeriods on-disk periods newest first (<= 0
// scans everything). This is the history analogue of Tracker.Lookup: it
// answers arbitrarily far past both the retention window and the
// evicted-pair LRU, at the cost of decoding cold segments until the pair
// is found. Callers serving unauthenticated traffic should bound the scan
// — a pair that was never reported would otherwise cost a full decode of
// the entire archive (and churn the segment LRU) on every request.
func (r *Reader) LookupPair(k tagset.Key, maxPeriods int) (c jaccard.Coefficient, period int64, ok bool, err error) {
	periods, err := r.Periods()
	if err != nil {
		return jaccard.Coefficient{}, 0, false, err
	}
	if maxPeriods > 0 && len(periods) > maxPeriods {
		periods = periods[len(periods)-maxPeriods:]
	}
	for i := len(periods) - 1; i >= 0; i-- {
		seg, err := r.Segment(periods[i])
		if err != nil {
			return jaccard.Coefficient{}, 0, false, err
		}
		if seg == nil {
			continue
		}
		if c, ok := seg.Coefficient(k); ok {
			return c, periods[i], true, nil
		}
	}
	return jaccard.Coefficient{}, 0, false, nil
}

// decodeSegmentFile streams one segment file into a Segment: records are
// CRC-checked one by one and decoding stops at the first invalid record
// (torn tail), returning everything before it.
func decodeSegmentFile(path string, period int64) (*Segment, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("archive: %w", err)
	}
	return decodeSegment(data, period), int64(len(data)), nil
}

// decodeSegment decodes a segment's raw bytes. It accepts arbitrary input
// — the bytes may come from a crashed writer or a corrupted disk — and
// never fails: undecodable content only flips Torn and bounds what is
// returned.
func decodeSegment(data []byte, period int64) *Segment {
	seg := &Segment{Period: period, byKey: make(map[tagset.Key]jaccard.Coefficient)}
	if len(data) < 16 || string(data[:8]) != segMagic ||
		int64(binary.LittleEndian.Uint64(data[8:16])) != period {
		seg.Torn = len(data) > 0
		return seg
	}
	trends := make(map[tagset.Key]trend.Event)
	off := 16
	for off < len(data) {
		kind, payload, next, ok := readRecord(data, off)
		if !ok {
			seg.Torn = true
			break
		}
		switch kind {
		case recCoeff:
			if c, err := decodeCoeff(payload); err == nil {
				seg.byKey[c.Tags.Key()] = c // last record wins: CN upgrades
			} else {
				seg.Torn = true
			}
		case recTrend:
			if ev, err := decodeTrend(payload, period); err == nil {
				trends[ev.Tags.Key()] = ev // last correction wins
			} else {
				seg.Torn = true
			}
		}
		off = next
	}

	seg.Coeffs = make([]jaccard.Coefficient, 0, len(seg.byKey))
	for _, c := range seg.byKey {
		seg.Coeffs = append(seg.Coeffs, c)
	}
	sort.Slice(seg.Coeffs, func(i, j int) bool {
		a, b := seg.Coeffs[i], seg.Coeffs[j]
		if a.J != b.J {
			return a.J > b.J
		}
		if a.CN != b.CN {
			return a.CN > b.CN
		}
		return a.Tags.Key() < b.Tags.Key()
	})
	seg.Trends = make([]trend.Event, 0, len(trends))
	for _, ev := range trends {
		seg.Trends = append(seg.Trends, ev)
	}
	sort.Slice(seg.Trends, func(i, j int) bool {
		a, b := seg.Trends[i], seg.Trends[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.Tags.Key() < b.Tags.Key()
	})
	return seg
}
