package archive

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/jaccard"
	"repro/internal/tagset"
	"repro/internal/trend"
)

// maxCachedSegments bounds the Reader's decoded-segment LRU. History
// queries concentrate on a few hot periods; everything else streams from
// disk on demand. Decoding one compacted file populates up to a fan-in's
// worth of periods at once, so the bound is sized at twice the
// compactor's default fan-in: one full compacted file plus hot raw
// periods fit without thrashing, while large-period archives don't pin
// hundreds of megabytes of decoded state.
const maxCachedSegments = 16

// Segment is one decoded period: the deduplicated coefficients (last
// record wins per tagset, mirroring the Tracker's CN-upgrade semantics)
// and the scored trend deviations. Torn reports that decoding stopped at
// an invalid record — the tail a crash left unflushed.
type Segment struct {
	Period int64
	Coeffs []jaccard.Coefficient // sorted by descending J (report order)
	Trends []trend.Event         // sorted by descending score
	Torn   bool

	byKey map[tagset.Key]jaccard.Coefficient
}

// Coefficient returns the period's coefficient for one tagset key.
func (s *Segment) Coefficient(k tagset.Key) (jaccard.Coefficient, bool) {
	c, ok := s.byKey[k]
	return c, ok
}

// fileGen identifies one on-disk generation of a file: compaction replaces
// files wholesale (a rewritten file can shrink back to a previously seen
// size), so cache entries are validated against size and mtime together
// rather than size alone.
type fileGen struct {
	size    int64
	mtimeNS int64
}

// statGen stats path into a generation key. A missing file returns
// ok=false with a nil error.
func statGen(path string) (gen fileGen, ok bool, err error) {
	fi, err := os.Stat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return fileGen{}, false, nil
		}
		return fileGen{}, false, fmt.Errorf("archive: %w", err)
	}
	return fileGen{size: fi.Size(), mtimeNS: fi.ModTime().UnixNano()}, true, nil
}

// Reader serves history queries from an archive directory. Periods are
// looked up in the raw per-period tier first, then in the compacted tier
// through the MANIFEST; checking raw before compacted makes the lookup
// safe against a concurrent compactor, which always publishes the new
// manifest before deleting the raw files it subsumed. The decoded-segment
// LRU is keyed by source path + file generation (size and mtime), so both
// live appends and compaction rewrites invalidate naturally. All methods
// are safe for concurrent use.
type Reader struct {
	dir string

	mu    sync.Mutex
	cache map[int64]*cachedSegment
	order []int64 // cached periods, least recently used first

	man    *manifest
	manGen fileGen
	manOK  bool
}

type cachedSegment struct {
	seg *Segment
	src string // path the decode came from (raw or compacted file)
	gen fileGen
}

// OpenReader returns a Reader over dir. The directory may be empty or not
// yet exist (queries then answer empty); it may also be actively written
// by a live pipeline and compactor.
func OpenReader(dir string) *Reader {
	return &Reader{dir: dir, cache: make(map[int64]*cachedSegment)}
}

// Dir returns the archive directory.
func (r *Reader) Dir() string { return r.dir }

// rawPeriods lists the period ids with a raw segment on disk, ascending.
func (r *Reader) rawPeriods() ([]int64, error) {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("archive: %w", err)
	}
	var out []int64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "period-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		p, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "period-"), ".seg"), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Periods lists the period ids answerable from disk — the raw tier's
// directory scan merged with the compacted tier's manifest — ascending.
// It re-checks both tiers on every call, so freshly opened periods and
// fresh compactions appear without invalidation machinery.
func (r *Reader) Periods() ([]int64, error) {
	raw, err := r.rawPeriods()
	if err != nil {
		return nil, err
	}
	man, err := r.loadManifest()
	if err != nil {
		return nil, err
	}
	if len(man.entries) == 0 {
		return raw, nil
	}
	seen := make(map[int64]bool, len(raw))
	out := raw
	for _, p := range raw {
		seen[p] = true
	}
	for _, e := range man.entries {
		for _, p := range e.periods {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// loadManifest returns the current compacted-tier manifest, re-reading it
// from disk only when its generation (size+mtime) changed. A missing
// manifest is an empty compacted tier, not an error.
func (r *Reader) loadManifest() (*manifest, error) {
	path := filepath.Join(r.dir, manifestName)
	gen, ok, err := statGen(path)
	if err != nil {
		return nil, err
	}
	if !ok {
		return &manifest{}, nil
	}
	r.mu.Lock()
	if r.manOK && r.manGen == gen {
		m := r.man
		r.mu.Unlock()
		return m, nil
	}
	r.mu.Unlock()

	m, err := readManifestFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			// Replaced-and-aged-out between stat and read; treat as the
			// next generation will be picked up on the following call.
			return &manifest{}, nil
		}
		return nil, err
	}

	r.mu.Lock()
	r.man, r.manGen, r.manOK = m, gen, true
	r.mu.Unlock()
	return m, nil
}

// invalidateManifest drops the cached manifest so the next lookup re-reads
// it. Used when a compacted file named by the cached manifest turns out to
// be gone (aged out underneath us).
func (r *Reader) invalidateManifest() {
	r.mu.Lock()
	r.man, r.manGen, r.manOK = nil, fileGen{}, false
	r.mu.Unlock()
}

// Segment returns one period's decoded segment, from the LRU when its
// source file has not changed since it was cached. The raw tier wins over
// the compacted tier (it is at least as fresh: the compactor deletes raw
// files only after the manifest covering them is durable). A period found
// in neither tier returns (nil, nil).
func (r *Reader) Segment(period int64) (*Segment, error) {
	path := filepath.Join(r.dir, segmentName(period))
	gen, ok, err := statGen(path)
	if err != nil {
		return nil, err
	}
	if ok {
		if seg := r.lookupCache(period, path, gen); seg != nil {
			return seg, nil
		}
		seg, size, err := decodeSegmentFile(path, period)
		if err != nil {
			return nil, err
		}
		// Re-derive the generation from the byte count actually read: if
		// the file grew between stat and read, caching the pre-read gen
		// would wrongly serve the longer decode as the shorter
		// generation's answer. Size mismatch → cache under what was read.
		gen.size = size
		r.storeCache(period, &cachedSegment{seg: seg, src: path, gen: gen})
		return seg, nil
	}
	return r.compactedSegment(period, true)
}

// compactedSegment resolves a period through the manifest. retry allows
// one manifest re-read when a listed compacted file is missing — the
// race window where the cached manifest predates an age-out.
func (r *Reader) compactedSegment(period int64, retry bool) (*Segment, error) {
	man, err := r.loadManifest()
	if err != nil {
		return nil, err
	}
	e := man.find(period)
	if e == nil {
		return nil, nil
	}
	cpath := filepath.Join(r.dir, e.file)
	gen, ok, err := statGen(cpath)
	if err != nil {
		return nil, err
	}
	if !ok {
		if retry {
			r.invalidateManifest()
			return r.compactedSegment(period, false)
		}
		return nil, nil
	}
	if seg := r.lookupCache(period, cpath, gen); seg != nil {
		return seg, nil
	}
	segs, err := decodeCompactFile(cpath)
	if err != nil {
		return nil, err
	}
	var found *Segment
	for _, p := range e.periods {
		seg := segs[p]
		if seg == nil {
			// The manifest lists the period (its raw segment existed,
			// possibly empty of records) but the compacted file holds no
			// records for it: an empty period is still a period.
			seg = &Segment{Period: p, byKey: map[tagset.Key]jaccard.Coefficient{}}
		}
		r.storeCache(p, &cachedSegment{seg: seg, src: cpath, gen: gen})
		if p == period {
			found = seg
		}
	}
	return found, nil
}

// lookupCache returns the cached segment for period if it was decoded
// from the same source file generation, else nil.
func (r *Reader) lookupCache(period int64, src string, gen fileGen) *Segment {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.cache[period]; ok && c.src == src && c.gen == gen {
		r.touchLocked(period)
		return c.seg
	}
	return nil
}

func (r *Reader) storeCache(period int64, c *cachedSegment) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.cache[period]; !ok {
		r.order = append(r.order, period)
	}
	r.cache[period] = c
	r.touchLocked(period)
	for len(r.order) > maxCachedSegments {
		delete(r.cache, r.order[0])
		r.order = r.order[1:]
	}
}

func (r *Reader) touchLocked(period int64) {
	for i, p := range r.order {
		if p == period {
			r.order = append(append(r.order[:i:i], r.order[i+1:]...), period)
			return
		}
	}
}

// LookupPair returns the most recent archived coefficient for one tagset
// key, scanning at most maxPeriods on-disk periods newest first (<= 0
// scans everything). This is the history analogue of Tracker.Lookup: it
// answers arbitrarily far past both the retention window and the
// evicted-pair LRU, at the cost of decoding cold segments until the pair
// is found. Callers serving unauthenticated traffic should bound the scan
// — a pair that was never reported would otherwise cost a full decode of
// the entire archive (and churn the segment LRU) on every request.
// truncated reports that the bound left older periods unscanned, so a
// miss with truncated=true means "not scanned", not "never reported".
func (r *Reader) LookupPair(k tagset.Key, maxPeriods int) (c jaccard.Coefficient, period int64, ok, truncated bool, err error) {
	periods, err := r.Periods()
	if err != nil {
		return jaccard.Coefficient{}, 0, false, false, err
	}
	if maxPeriods > 0 && len(periods) > maxPeriods {
		periods = periods[len(periods)-maxPeriods:]
		truncated = true
	}
	for i := len(periods) - 1; i >= 0; i-- {
		seg, err := r.Segment(periods[i])
		if err != nil {
			return jaccard.Coefficient{}, 0, false, truncated, err
		}
		if seg == nil {
			continue
		}
		if c, ok := seg.Coefficient(k); ok {
			return c, periods[i], true, truncated, nil
		}
	}
	return jaccard.Coefficient{}, 0, false, truncated, nil
}

// decodeSegmentFile streams one segment file into a Segment: records are
// CRC-checked one by one and decoding stops at the first invalid record
// (torn tail), returning everything before it.
func decodeSegmentFile(path string, period int64) (*Segment, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("archive: %w", err)
	}
	return decodeSegment(data, period), int64(len(data)), nil
}

// segAccum accumulates one period's records during a decode, applying the
// last-record-wins rule for both coefficients (CN upgrades) and trend
// events (corrections), then finishes into a deterministically sorted
// Segment.
type segAccum struct {
	seg    *Segment
	trends map[tagset.Key]trend.Event
}

func newSegAccum(period int64) *segAccum {
	return &segAccum{
		seg:    &Segment{Period: period, byKey: make(map[tagset.Key]jaccard.Coefficient)},
		trends: make(map[tagset.Key]trend.Event),
	}
}

func (a *segAccum) coeff(c jaccard.Coefficient) { a.seg.byKey[c.Tags.Key()] = c }
func (a *segAccum) trend(ev trend.Event)        { a.trends[ev.Tags.Key()] = ev }

func (a *segAccum) finish() *Segment {
	seg := a.seg
	seg.Coeffs = make([]jaccard.Coefficient, 0, len(seg.byKey))
	for _, c := range seg.byKey {
		seg.Coeffs = append(seg.Coeffs, c)
	}
	sort.Slice(seg.Coeffs, func(i, j int) bool {
		x, y := seg.Coeffs[i], seg.Coeffs[j]
		if x.J != y.J {
			return x.J > y.J
		}
		if x.CN != y.CN {
			return x.CN > y.CN
		}
		return x.Tags.Key() < y.Tags.Key()
	})
	seg.Trends = make([]trend.Event, 0, len(a.trends))
	for _, ev := range a.trends {
		seg.Trends = append(seg.Trends, ev)
	}
	sort.Slice(seg.Trends, func(i, j int) bool {
		x, y := seg.Trends[i], seg.Trends[j]
		if x.Score != y.Score {
			return x.Score > y.Score
		}
		return x.Tags.Key() < y.Tags.Key()
	})
	return seg
}

// decodeSegment decodes a segment's raw bytes. It accepts arbitrary input
// — the bytes may come from a crashed writer or a corrupted disk — and
// never fails: undecodable content only flips Torn and bounds what is
// returned.
func decodeSegment(data []byte, period int64) *Segment {
	acc := newSegAccum(period)
	if len(data) < 16 || string(data[:8]) != segMagic ||
		int64(binary.LittleEndian.Uint64(data[8:16])) != period {
		seg := acc.finish()
		seg.Torn = len(data) > 0
		return seg
	}
	off := 16
	for off < len(data) {
		kind, payload, next, ok := readRecord(data, off)
		if !ok {
			acc.seg.Torn = true
			break
		}
		switch kind {
		case recCoeff:
			if c, err := decodeCoeff(payload); err == nil {
				acc.coeff(c)
			} else {
				acc.seg.Torn = true
			}
		case recTrend:
			if ev, err := decodeTrend(payload, period); err == nil {
				acc.trend(ev)
			} else {
				acc.seg.Torn = true
			}
		}
		off = next
	}
	return acc.finish()
}

// decodeCompactFile decodes one compacted file into its per-period
// segments. Unlike raw segments (whose tails can legitimately be torn by
// a crash mid-append), compacted files are published whole via
// temp+rename, so framing damage here is reported as an error rather than
// silently truncating history.
func decodeCompactFile(path string) (map[int64]*Segment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	if len(data) < 24 || string(data[:8]) != cmpMagic {
		return nil, fmt.Errorf("archive: %s: bad compacted-segment header", filepath.Base(path))
	}
	from := int64(binary.LittleEndian.Uint64(data[8:16]))
	to := int64(binary.LittleEndian.Uint64(data[16:24]))
	accs := make(map[int64]*segAccum)
	acc := func(p int64) *segAccum {
		a := accs[p]
		if a == nil {
			a = newSegAccum(p)
			accs[p] = a
		}
		return a
	}
	off := 24
	for off < len(data) {
		kind, payload, next, ok := readRecord(data, off)
		if !ok {
			return nil, fmt.Errorf("archive: %s: invalid record at offset %d", filepath.Base(path), off)
		}
		if len(payload) < 8 {
			return nil, fmt.Errorf("archive: %s: short period prefix", filepath.Base(path))
		}
		p := int64(binary.LittleEndian.Uint64(payload))
		if p < from || p > to {
			return nil, fmt.Errorf("archive: %s: period %d outside range [%d, %d]", filepath.Base(path), p, from, to)
		}
		switch kind {
		case recCoeffP:
			c, err := decodeCoeff(payload[8:])
			if err != nil {
				return nil, fmt.Errorf("archive: %s: %w", filepath.Base(path), err)
			}
			acc(p).coeff(c)
		case recTrendP:
			ev, err := decodeTrend(payload[8:], p)
			if err != nil {
				return nil, fmt.Errorf("archive: %s: %w", filepath.Base(path), err)
			}
			acc(p).trend(ev)
		default:
			return nil, fmt.Errorf("archive: %s: unknown record kind %d", filepath.Base(path), kind)
		}
		off = next
	}
	out := make(map[int64]*Segment, len(accs))
	for p, a := range accs {
		out[p] = a.finish()
	}
	return out, nil
}
