package archive

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/jaccard"
	"repro/internal/telemetry"
	"repro/internal/trend"
)

// maxOpenSegments bounds the Writer's open file handles; colder segments
// are flushed and closed, and reopened transparently on the next append.
const maxOpenSegments = 8

// Writer appends pipeline state to an archive directory: one segment per
// reporting period plus checkpoint files. It implements the archive-sink
// interfaces of the Tracker (AppendCoefficient, SealPeriod) and the trend
// detector (AppendEvent, SealPeriod) and is safe for concurrent use.
type Writer struct {
	dir string

	mu     sync.Mutex
	open   map[int64]*segFile
	order  []int64 // open segments, least recently used first
	seq    uint64  // last checkpoint sequence number used or found
	buf    []byte  // scratch for record framing
	closed bool

	// fsyncHist, when set (SetFsyncHist, before the first checkpoint),
	// records the durable-sync latency of every checkpoint file.
	fsyncHist *telemetry.Histogram
}

// SetFsyncHist wires a histogram recording each checkpoint file's fsync
// latency. Call before the first WriteCheckpoint.
func (w *Writer) SetFsyncHist(h *telemetry.Histogram) {
	w.mu.Lock()
	w.fsyncHist = h
	w.mu.Unlock()
}

type segFile struct {
	f   *os.File
	bw  *bufio.Writer
	err error // first write error; the segment is dropped, not retried
}

// flush pushes buffered records to the OS and, when sync is set, to disk.
func (s *segFile) flush(sync bool) {
	if s.err != nil {
		return
	}
	if err := s.bw.Flush(); err != nil {
		s.err = err
		return
	}
	if sync {
		s.err = s.f.Sync()
	}
}

// OpenWriter opens (creating if needed) an archive directory for append.
// Existing checkpoint files are scanned so new checkpoints continue the
// sequence; existing segments are reopened lazily, truncating any torn
// tail a previous crash left behind.
func OpenWriter(dir string) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	w := &Writer{dir: dir, open: make(map[int64]*segFile)}
	seqs, err := checkpointSeqs(dir)
	if err != nil {
		return nil, err
	}
	if len(seqs) > 0 {
		w.seq = seqs[len(seqs)-1]
	}
	return w, nil
}

// Dir returns the archive directory.
func (w *Writer) Dir() string { return w.dir }

// AppendCoefficient appends one accepted coefficient report to the
// period's segment. Write errors disable the affected segment silently
// (the archive is best-effort on a failing disk); checkpoints, which
// gate recovery, do report errors.
func (w *Writer) AppendCoefficient(period int64, c jaccard.Coefficient) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = appendRecord(w.buf[:0], recCoeff, encodeCoeff(nil, c))
	w.appendLocked(period, w.buf)
}

// AppendEvent appends one scored trend deviation to its period's segment.
func (w *Writer) AppendEvent(ev trend.Event) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = appendRecord(w.buf[:0], recTrend, encodeTrend(nil, ev))
	w.appendLocked(ev.Period, w.buf)
}

// SealPeriod marks a period complete in memory: its segment is flushed to
// disk and its file handle released. Appends after a seal (the Tracker and
// the trend detector prune the same period at different times) transparently
// reopen the segment, so sealing is an idempotent flush point, not a lock.
func (w *Writer) SealPeriod(period int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closeLocked(period)
}

// Flush pushes every open segment to disk.
func (w *Writer) Flush() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, s := range w.open {
		s.flush(true)
	}
}

// Close flushes and closes every open segment. The Writer must not be used
// afterwards; WriteCheckpoint reports an error if it is.
func (w *Writer) Close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for p := range w.open {
		w.closeLocked(p)
	}
	w.closed = true
}

// appendLocked writes one framed record to the period's segment.
func (w *Writer) appendLocked(period int64, rec []byte) {
	if w.closed {
		return
	}
	s := w.segmentLocked(period)
	if s == nil || s.err != nil {
		return
	}
	if _, err := s.bw.Write(rec); err != nil {
		s.err = err
	}
}

// segmentLocked returns the open segment for period, opening (and
// truncating a torn tail) if needed and evicting the coldest handle when
// over the open-file bound.
func (w *Writer) segmentLocked(period int64) *segFile {
	if s, ok := w.open[period]; ok {
		w.touchLocked(period)
		return s
	}
	s := openSegmentFile(filepath.Join(w.dir, segmentName(period)), period)
	w.open[period] = s
	w.order = append(w.order, period)
	if len(w.order) > maxOpenSegments {
		w.closeLocked(w.order[0])
	}
	return s
}

func (w *Writer) touchLocked(period int64) {
	for i, p := range w.order {
		if p == period {
			w.order = append(append(w.order[:i:i], w.order[i+1:]...), period)
			return
		}
	}
}

func (w *Writer) closeLocked(period int64) {
	s, ok := w.open[period]
	if !ok {
		return
	}
	s.flush(false)
	s.f.Close()
	delete(w.open, period)
	for i, p := range w.order {
		if p == period {
			w.order = append(w.order[:i], w.order[i+1:]...)
			break
		}
	}
}

// openSegmentFile opens a segment for append. A fresh file gets the magic
// + period header; an existing file is scanned and truncated to its last
// valid record, so a tail torn by a crash cannot wedge later appends
// behind undecodable bytes.
func openSegmentFile(path string, period int64) *segFile {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return &segFile{err: err}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return &segFile{err: err}
	}
	valid := validSegmentPrefix(data, period)
	if valid == 0 {
		// Empty, foreign or header-torn file: restart it.
		hdr := append([]byte(segMagic), make([]byte, 8)...)
		binary.LittleEndian.PutUint64(hdr[8:], uint64(period))
		if err := f.Truncate(0); err == nil {
			_, err = f.WriteAt(hdr, 0)
		}
		if err != nil {
			f.Close()
			return &segFile{err: err}
		}
		valid = int64(len(hdr))
	} else if valid < int64(len(data)) {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return &segFile{err: err}
		}
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return &segFile{err: err}
	}
	return &segFile{f: f, bw: bufio.NewWriterSize(f, 64*1024)}
}

// validSegmentPrefix returns the length of the longest decodable prefix of
// a segment file's bytes (0 when even the header is wrong).
func validSegmentPrefix(data []byte, period int64) int64 {
	if len(data) < 16 || string(data[:8]) != segMagic ||
		int64(binary.LittleEndian.Uint64(data[8:16])) != period {
		return 0
	}
	off := 16
	for {
		_, _, next, ok := readRecord(data, off)
		if !ok {
			return int64(off)
		}
		off = next
	}
}
