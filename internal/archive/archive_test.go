package archive

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/jaccard"
	"repro/internal/tagset"
	"repro/internal/trend"
)

func coeff(a, b tagset.Tag, j float64, cn int64) jaccard.Coefficient {
	return jaccard.Coefficient{Tags: tagset.New(a, b), J: j, CN: cn}
}

func event(a, b tagset.Tag, period int64, score float64) trend.Event {
	return trend.Event{
		Tags: tagset.New(a, b), Period: period,
		Predicted: 0.2, Observed: 0.2 + score, Score: score, Rising: true, CN: 7,
	}
}

// TestSegmentRoundTrip writes coefficient and trend records (including a
// CN upgrade that must win on decode) and reads them back.
func TestSegmentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.AppendCoefficient(3, coeff(1, 2, 0.5, 4))
	w.AppendCoefficient(3, coeff(3, 4, 0.8, 2))
	w.AppendCoefficient(3, coeff(1, 2, 0.5, 9)) // upgrade: decode must keep CN 9
	w.AppendEvent(event(1, 2, 3, 0.3))
	w.AppendCoefficient(4, coeff(1, 2, 0.6, 5)) // other period, other segment
	w.SealPeriod(3)
	w.Close()

	rd := OpenReader(dir)
	periods, err := rd.Periods()
	if err != nil || !reflect.DeepEqual(periods, []int64{3, 4}) {
		t.Fatalf("periods = %v (%v)", periods, err)
	}
	seg, err := rd.Segment(3)
	if err != nil || seg == nil {
		t.Fatalf("segment 3: %v", err)
	}
	if seg.Torn {
		t.Error("clean segment reported torn")
	}
	if len(seg.Coeffs) != 2 || seg.Coeffs[0].J != 0.8 {
		t.Fatalf("coeffs = %+v", seg.Coeffs)
	}
	if c, ok := seg.Coefficient(tagset.New(1, 2).Key()); !ok || c.CN != 9 {
		t.Errorf("upgrade lost: %+v ok=%v", c, ok)
	}
	if len(seg.Trends) != 1 || seg.Trends[0].Score != 0.3 {
		t.Errorf("trends = %+v", seg.Trends)
	}

	// Newest-first pair lookup across periods. An unbounded scan never
	// reports truncation.
	c, period, ok, truncated, err := rd.LookupPair(tagset.New(1, 2).Key(), 0)
	if err != nil || !ok || period != 4 || c.CN != 5 || truncated {
		t.Errorf("LookupPair = %+v period=%d ok=%v truncated=%v err=%v", c, period, ok, truncated, err)
	}
	// A scan bounded to the newest period must miss the pair reported
	// only further back — and flag that older periods went unscanned.
	if _, _, ok, truncated, err := rd.LookupPair(tagset.New(3, 4).Key(), 1); ok || !truncated || err != nil {
		t.Errorf("bounded LookupPair ok=%v truncated=%v err=%v, want miss with truncated", ok, truncated, err)
	}
	if c, period, ok, _, err := rd.LookupPair(tagset.New(3, 4).Key(), 2); !ok || period != 3 || c.J != 0.8 || err != nil {
		t.Errorf("bounded LookupPair = %+v period=%d ok=%v err=%v", c, period, ok, err)
	}
}

// TestSegmentTornTail truncates a segment mid-record and corrupts another:
// decoding must return the valid prefix with Torn set, and reopening for
// append must truncate the tail so later records stay decodable.
func TestSegmentTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		w.AppendCoefficient(5, coeff(tagset.Tag(2*i), tagset.Tag(2*i+1), 0.1*float64(i+1), int64(i+1)))
	}
	w.Close()

	path := filepath.Join(dir, segmentName(5))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-way through the last record.
	torn := data[:len(data)-5]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	rd := OpenReader(dir)
	seg, err := rd.Segment(5)
	if err != nil || seg == nil {
		t.Fatal(err)
	}
	if !seg.Torn || len(seg.Coeffs) != 7 {
		t.Fatalf("torn decode: torn=%v coeffs=%d (want 7)", seg.Torn, len(seg.Coeffs))
	}

	// Reopen for append: the torn tail must be truncated, the new record
	// decodable, and the previously valid prefix intact.
	w2, err := OpenWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	w2.AppendCoefficient(5, coeff(100, 101, 0.9, 3))
	w2.Close()
	seg, err = OpenReader(dir).Segment(5)
	if err != nil || seg == nil {
		t.Fatal(err)
	}
	if seg.Torn || len(seg.Coeffs) != 8 {
		t.Fatalf("after reopen: torn=%v coeffs=%d (want 8 clean)", seg.Torn, len(seg.Coeffs))
	}
	if _, ok := seg.Coefficient(tagset.New(100, 101).Key()); !ok {
		t.Error("post-reopen record missing")
	}
}

func testCheckpoint(seq int) *Checkpoint {
	return &Checkpoint{
		DocsFed:      int64(1000 * seq),
		ReplayFrom:   int64(900 * seq),
		ReplayPeriod: int64(seq),
		Dict:         []string{"a", "b", "c"},
		Epoch:        1,
	}
}

// TestCheckpointFallback writes two checkpoints, corrupts the newest, and
// verifies LoadCheckpoint falls back to the older valid one; with both
// corrupted it must error rather than silently start fresh.
func TestCheckpointFallback(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteCheckpoint(testCheckpoint(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteCheckpoint(testCheckpoint(2)); err != nil {
		t.Fatal(err)
	}
	w.Close()

	cp, err := LoadCheckpoint(dir)
	if err != nil || cp == nil || cp.Seq != 2 || cp.ReplayPeriod != 2 {
		t.Fatalf("newest checkpoint: %+v err=%v", cp, err)
	}

	// Corrupt the newest: CRC must reject it, fallback to seq 1.
	newest := filepath.Join(dir, checkpointName(2))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err = LoadCheckpoint(dir)
	if err != nil || cp == nil || cp.Seq != 1 {
		t.Fatalf("fallback checkpoint: %+v err=%v", cp, err)
	}

	// Tear the older one too (truncated payload): now nothing validates.
	older := filepath.Join(dir, checkpointName(1))
	data, err = os.ReadFile(older)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(older, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err = LoadCheckpoint(dir); err == nil {
		t.Fatal("all-corrupt directory loaded without error")
	}

	// An empty directory is a clean fresh start, not an error.
	cp, err = LoadCheckpoint(t.TempDir())
	if err != nil || cp != nil {
		t.Fatalf("empty dir: cp=%v err=%v", cp, err)
	}
}

// TestCheckpointRetention verifies only the two newest checkpoints are
// kept and the sequence continues across Writer reopens.
func TestCheckpointRetention(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if err := w.WriteCheckpoint(testCheckpoint(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	seqs, err := checkpointSeqs(dir)
	if err != nil || !reflect.DeepEqual(seqs, []uint64{3, 4}) {
		t.Fatalf("retained seqs = %v (%v)", seqs, err)
	}

	w2, err := OpenWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.WriteCheckpoint(testCheckpoint(5)); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	cp, err := LoadCheckpoint(dir)
	if err != nil || cp.Seq != 5 {
		t.Fatalf("sequence did not continue across reopen: %+v err=%v", cp, err)
	}
}

// TestReaderLiveInvalidation verifies the decoded-segment LRU re-decodes
// a segment when its file grows (a live period being appended to).
func TestReaderLiveInvalidation(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.AppendCoefficient(7, coeff(1, 2, 0.5, 1))
	w.Flush()

	rd := OpenReader(dir)
	seg, err := rd.Segment(7)
	if err != nil || len(seg.Coeffs) != 1 {
		t.Fatalf("first read: %+v err=%v", seg, err)
	}
	w.AppendCoefficient(7, coeff(3, 4, 0.9, 2))
	w.Flush()
	seg, err = rd.Segment(7)
	if err != nil || len(seg.Coeffs) != 2 {
		t.Fatalf("grown segment not re-decoded: %+v err=%v", seg, err)
	}
	w.Close()

	// Unknown period: (nil, nil).
	if seg, err := rd.Segment(99); err != nil || seg != nil {
		t.Fatalf("missing segment: %v %v", seg, err)
	}
}
