package archive

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/operators"
	"repro/internal/partition"
	"repro/internal/trend"
)

// Checkpoint is the restartable state of one pipeline, written periodically
// (and on shutdown) by the Writer and loaded by LoadCheckpoint on the next
// start. The invariant every checkpoint upholds: no partial periods. State
// is cut strictly before ReplayPeriod; ReplayFrom is the stream index of
// that period's first document, so a restarted service skips ReplayFrom
// documents of its (deterministic or replayable) source and feeds the rest
// — the replay rebuilds the cut period and everything after it, and the
// Tracker's CN-max dedup absorbs any overlap with already-imported state.
type Checkpoint struct {
	Seq uint64 // checkpoint sequence number, monotonically increasing

	// DocsFed counts documents the source had produced when the checkpoint
	// was cut; ReplayFrom is where the restarted source must resume (always
	// <= DocsFed); ReplayPeriod is the first period the replay rebuilds
	// (0 when no period had been flushed yet).
	DocsFed      int64
	ReplayFrom   int64
	ReplayPeriod int64

	// Dict is every interned tag string in identifier order: re-interning
	// them into a fresh dictionary reproduces the Tag ids that the segment
	// files and the states below reference.
	Dict []string

	// Epoch, Merges, Quality refs and Partitions restore the partitioning
	// layer: the Merger's current result and the Disseminators' inverted
	// index plus monitoring baseline.
	Epoch      int
	Merges     int
	RefAvgCom  float64
	RefMaxLoad float64
	HasRef     bool
	Partitions []partition.Partition

	Tracker operators.TrackerState
	Trend   *trend.StreamState // nil when the pipeline ran without Config.Trend
}

// ckptVersion is the on-disk checkpoint format version.
const ckptVersion = 1

// checkpoint framing: magic (8 bytes), version (uint32 LE), payload length
// (uint64 LE), CRC32 of the payload (uint32 LE), gob payload. A file that
// fails any of those checks — torn tail included — is skipped and the
// previous checkpoint is used instead.

// WriteCheckpoint flushes the open segments, then writes cp as the next
// checkpoint file (write-to-temp + rename, so a crash mid-write can never
// produce a file that passes validation), and finally removes all but the
// two newest checkpoints.
func (w *Writer) WriteCheckpoint(cp *Checkpoint) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("archive: writer closed")
	}
	for _, s := range w.open {
		s.flush(true)
	}

	w.seq++
	cp.Seq = w.seq
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(cp); err != nil {
		return fmt.Errorf("archive: encode checkpoint: %w", err)
	}
	hdr := make([]byte, 0, 24)
	hdr = append(hdr, ckptMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, ckptVersion)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(payload.Len()))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(payload.Bytes()))

	final := filepath.Join(w.dir, checkpointName(w.seq))
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	if _, err = f.Write(hdr); err == nil {
		_, err = f.Write(payload.Bytes())
	}
	if err == nil {
		start := time.Now()
		err = f.Sync()
		if w.fsyncHist != nil {
			w.fsyncHist.Record(time.Since(start))
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("archive: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("archive: %w", err)
	}

	// Retain the two newest checkpoints: the one just written plus one
	// fallback in case its tail is torn by a later crash-mid-write of the
	// filesystem itself.
	if seqs, err := checkpointSeqs(w.dir); err == nil {
		for _, s := range seqs {
			if s+2 <= w.seq {
				os.Remove(filepath.Join(w.dir, checkpointName(s)))
			}
		}
	}
	return nil
}

// LoadCheckpoint returns the newest checkpoint in dir that validates
// (magic, version, length, CRC), or nil when the directory holds none —
// a fresh start. Corrupted newer checkpoints are skipped in favour of
// older valid ones.
func LoadCheckpoint(dir string) (*Checkpoint, error) {
	seqs, err := checkpointSeqs(dir)
	if err != nil || len(seqs) == 0 {
		return nil, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		cp, err := readCheckpoint(filepath.Join(dir, checkpointName(seqs[i])))
		if err == nil {
			return cp, nil
		}
	}
	return nil, fmt.Errorf("archive: no valid checkpoint among %d candidates in %s", len(seqs), dir)
}

func readCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 24 || string(data[:8]) != ckptMagic {
		return nil, fmt.Errorf("archive: %s: bad magic", path)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != ckptVersion {
		return nil, fmt.Errorf("archive: %s: version %d", path, v)
	}
	n := binary.LittleEndian.Uint64(data[12:20])
	crc := binary.LittleEndian.Uint32(data[20:24])
	if uint64(len(data)-24) != n {
		return nil, fmt.Errorf("archive: %s: torn payload (%d of %d bytes)", path, len(data)-24, n)
	}
	payload := data[24:]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, fmt.Errorf("archive: %s: payload CRC mismatch", path)
	}
	var cp Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&cp); err != nil {
		return nil, fmt.Errorf("archive: %s: decode: %w", path, err)
	}
	return &cp, nil
}

func checkpointName(seq uint64) string { return fmt.Sprintf("checkpoint-%012d.ckpt", seq) }

// checkpointSeqs lists the checkpoint sequence numbers present in dir,
// ascending.
func checkpointSeqs(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("archive: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		s, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "checkpoint-"), ".ckpt"), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}
