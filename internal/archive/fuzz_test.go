package archive

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/jaccard"
	"repro/internal/tagset"
	"repro/internal/trend"
)

const fuzzPeriod int64 = 7

// realSegment builds a segment through the production Writer — the corpus
// anchor that keeps the fuzzer exploring mutations of genuine framing
// rather than only random bytes.
func realSegment(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	w, err := OpenWriter(dir)
	if err != nil {
		tb.Fatal(err)
	}
	pair := tagset.FromSorted([]tagset.Tag{1, 2})
	w.AppendCoefficient(fuzzPeriod, jaccard.Coefficient{Tags: pair, J: 0.5, CN: 3})
	w.AppendCoefficient(fuzzPeriod, jaccard.Coefficient{Tags: pair, J: 0.5, CN: 9}) // CN upgrade
	w.AppendCoefficient(fuzzPeriod, jaccard.Coefficient{
		Tags: tagset.FromSorted([]tagset.Tag{3, 4, 5}), J: 0.25, CN: 2,
	})
	w.AppendEvent(trend.Event{
		Tags: pair, Period: fuzzPeriod, Predicted: 0.2, Observed: 0.6, Score: 2.5, Rising: true, CN: 9,
	})
	w.Close()
	data, err := os.ReadFile(filepath.Join(dir, segmentName(fuzzPeriod)))
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzSegmentRecord throws arbitrary bytes at the segment decoder — the
// code that reads files a crashed process left behind, so it must accept
// anything. Checked invariants:
//
//   - decoding never panics and never errors (corruption is data, not
//     failure);
//   - a clean decode (Torn == false) means the framing walk consumed the
//     whole file, and a short framing walk always reports Torn;
//   - every record the framing walk accepts round-trips: re-encoding
//     kind+payload reproduces the input bytes exactly;
//   - reopening the bytes for append (the crash-recovery path) truncates
//     to a framing-valid prefix that still starts with the header.
func FuzzSegmentRecord(f *testing.F) {
	real := realSegment(f)
	f.Add(real)
	f.Add(real[:len(real)-3])             // torn tail: mid-record truncation
	f.Add(real[:17])                      // torn tail: header plus one stray byte
	f.Add([]byte{})                       // empty file
	f.Add([]byte(segMagic))               // header-only torn file
	f.Add(bytes.Repeat([]byte{0xff}, 64)) // foreign garbage

	// Valid header, then a record claiming a huge payload length: the CRC
	// over the header is what stops a corrupted length from re-framing the
	// stream.
	hdr := append([]byte(segMagic), make([]byte, 8)...)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(fuzzPeriod))
	huge := append(append([]byte{}, hdr...), recCoeff)
	huge = binary.LittleEndian.AppendUint32(huge, 1<<30)
	f.Add(append(huge, 0xde, 0xad, 0xbe, 0xef))

	f.Fuzz(func(t *testing.T, data []byte) {
		seg := decodeSegment(data, fuzzPeriod) // must not panic
		if seg == nil {
			t.Fatal("decodeSegment returned nil")
		}

		valid := validSegmentPrefix(data, fuzzPeriod)
		if valid > int64(len(data)) {
			t.Fatalf("valid prefix %d exceeds input length %d", valid, len(data))
		}
		if !seg.Torn && len(data) > 0 && valid != int64(len(data)) {
			t.Fatalf("decode reported clean but framing stops at %d of %d bytes", valid, len(data))
		}
		if valid < int64(len(data)) && len(data) >= 16 &&
			string(data[:8]) == segMagic &&
			int64(binary.LittleEndian.Uint64(data[8:16])) == fuzzPeriod &&
			!seg.Torn {
			t.Fatalf("torn tail at %d of %d bytes not reported", valid, len(data))
		}

		// Walk the frames the decoder accepted; each must round-trip.
		if valid >= 16 {
			off := 16
			for int64(off) < valid {
				kind, payload, next, ok := readRecord(data, off)
				if !ok {
					t.Fatalf("record at %d inside valid prefix %d does not decode", off, valid)
				}
				if rt := appendRecord(nil, kind, payload); !bytes.Equal(rt, data[off:next]) {
					t.Fatalf("record at %d does not round-trip: %x vs %x", off, rt, data[off:next])
				}
				off = next
			}
			if int64(off) != valid {
				t.Fatalf("framing walk ended at %d, validSegmentPrefix said %d", off, valid)
			}
		}

		// Crash-recovery path: reopening for append must leave a file whose
		// bytes are framing-valid end to end and headed correctly.
		path := filepath.Join(t.TempDir(), segmentName(fuzzPeriod))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s := openSegmentFile(path, fuzzPeriod)
		if s.err != nil {
			t.Fatalf("openSegmentFile: %v", s.err)
		}
		s.f.Close()
		after, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(after) < 16 {
			t.Fatalf("reopened segment is %d bytes, want >= 16 (header)", len(after))
		}
		if got := validSegmentPrefix(after, fuzzPeriod); got != int64(len(after)) {
			t.Fatalf("reopened segment still torn: valid prefix %d of %d bytes", got, len(after))
		}
	})
}

// TestDecodeSegmentTornTail pins the torn-tail contract on the real
// segment at every truncation point — the deterministic counterpart of the
// fuzz target, run on every `go test`.
func TestDecodeSegmentTornTail(t *testing.T) {
	data := realSegment(t)
	full := decodeSegment(data, fuzzPeriod)
	if full.Torn {
		t.Fatal("writer-produced segment decodes as torn")
	}
	if len(full.Coeffs) != 2 { // CN upgrade dedupes the first pair
		t.Fatalf("coeffs = %d, want 2", len(full.Coeffs))
	}
	if len(full.Trends) != 1 {
		t.Fatalf("trends = %d, want 1", len(full.Trends))
	}
	if c, ok := full.Coefficient(tagset.FromSorted([]tagset.Tag{1, 2}).Key()); !ok || c.CN != 9 {
		t.Fatalf("pair {1,2} = %+v ok=%v, want CN 9 (last record wins)", c, ok)
	}
	for cut := len(data) - 1; cut > 16; cut-- {
		seg := decodeSegment(data[:cut], fuzzPeriod)
		if valid := validSegmentPrefix(data[:cut], fuzzPeriod); valid < int64(cut) && !seg.Torn {
			t.Fatalf("truncation at %d (valid %d) not reported torn", cut, valid)
		}
		if len(seg.Coeffs) > len(full.Coeffs) || len(seg.Trends) > len(full.Trends) {
			t.Fatalf("truncation at %d decoded more than the full segment", cut)
		}
	}
}
