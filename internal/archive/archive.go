// Package archive is the durability subsystem of the live service: an
// append-only on-disk log of the pipeline's query state, plus periodic
// checkpoints from which a restarted tagcorrd recovers.
//
// Two kinds of files live in an archive directory:
//
//   - Segment files, one per reporting period (`period-<id>.seg`). The
//     Tracker appends every accepted coefficient report (fresh values and
//     CN upgrades) and the trend detector appends every scored deviation
//     as they happen, so the segment of a period converges to exactly the
//     state the in-memory tables held before retention pruned it. Records
//     are individually CRC-framed; decoding stops at the first invalid
//     record, so a tail torn by a crash costs at most the unflushed
//     suffix. Reopening a segment for append first truncates such a torn
//     tail, keeping the file decodable end to end.
//
//   - Checkpoint files (`checkpoint-<seq>.ckpt`): a CRC-verified snapshot
//     of the restartable state — Tracker periods and evicted-pair LRU,
//     trend predictors and per-period events, installed partitions, the
//     interned tag dictionary, and the source cursor. A checkpoint never
//     contains a partial reporting period: state is cut strictly before
//     ReplayPeriod, and ReplayFrom records the stream index of that
//     period's first document, so recovery restores the cut and replays
//     the suffix. The Tracker's CN-max deduplication makes the replay
//     overlap idempotent.
//
// The Writer is safe for concurrent use (the Tracker and Trend operators
// append from different tasks); the Reader serves the /history endpoints
// with a small LRU of decoded segments and tolerates reading segments
// that are still being appended to.
package archive

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/jaccard"
	"repro/internal/tagset"
	"repro/internal/trend"
)

// Segment record kinds. recCoeff/recTrend appear in per-period segments,
// where the file header pins the period; recCoeffP/recTrendP are their
// compacted-tier counterparts, carrying an explicit period id (uint64 LE)
// ahead of the same payload because a compacted file spans many periods.
const (
	recCoeff  = 1
	recTrend  = 2
	recCoeffP = 3
	recTrendP = 4
)

// segMagic opens every segment file, followed by the period id (8 bytes,
// little endian). ckptMagic opens every checkpoint file. cmpMagic opens
// every compacted segment file, followed by the inclusive [from, to]
// period range (2×8 bytes, little endian). manMagic is the first line of
// the compacted-tier MANIFEST.
const (
	segMagic  = "TCARSEG1"
	ckptMagic = "TCARCKP1"
	cmpMagic  = "TCARCMP1"
	manMagic  = "TCARMAN1"
)

// maxRecord bounds a single record's payload; anything larger is treated
// as corruption (a tagset carries at most a handful of uint32 tags).
const maxRecord = 1 << 20

// record framing: kind byte, payload length (uint32 LE), payload, CRC32
// (IEEE, over kind+length+payload). The CRC covering the header means a
// corrupted length cannot silently re-frame the stream.

// appendRecord frames payload into buf and returns the grown buffer.
func appendRecord(buf []byte, kind byte, payload []byte) []byte {
	start := len(buf)
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	crc := crc32.ChecksumIEEE(buf[start:])
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// readRecord decodes one framed record at data[off:]. ok is false when the
// bytes at off do not form a complete, CRC-valid record — the torn-tail
// (or corruption) signal that ends a segment decode.
func readRecord(data []byte, off int) (kind byte, payload []byte, next int, ok bool) {
	if off+5 > len(data) {
		return 0, nil, 0, false
	}
	kind = data[off]
	n := int(binary.LittleEndian.Uint32(data[off+1 : off+5]))
	if n > maxRecord || off+5+n+4 > len(data) {
		return 0, nil, 0, false
	}
	body := data[off : off+5+n]
	crc := binary.LittleEndian.Uint32(data[off+5+n : off+9+n])
	if crc32.ChecksumIEEE(body) != crc {
		return 0, nil, 0, false
	}
	return kind, body[5:], off + 9 + n, true
}

// appendTags encodes a tagset as a uint16 count plus uint32 tag ids.
func appendTags(buf []byte, s tagset.Set) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(s.Len()))
	for _, t := range s {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(t))
	}
	return buf
}

// readTags decodes a tagset written by appendTags.
func readTags(payload []byte) (tagset.Set, []byte, error) {
	if len(payload) < 2 {
		return nil, nil, fmt.Errorf("archive: short tagset header")
	}
	n := int(binary.LittleEndian.Uint16(payload))
	payload = payload[2:]
	if len(payload) < 4*n {
		return nil, nil, fmt.Errorf("archive: short tagset body")
	}
	tags := make([]tagset.Tag, n)
	for i := range tags {
		tags[i] = tagset.Tag(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	return tagset.FromSorted(tags), payload[4*n:], nil
}

// encodeCoeff renders one coefficient record payload: tags, J, CN.
func encodeCoeff(buf []byte, c jaccard.Coefficient) []byte {
	buf = appendTags(buf, c.Tags)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.J))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.CN))
	return buf
}

// decodeCoeff parses a coefficient record payload.
func decodeCoeff(payload []byte) (jaccard.Coefficient, error) {
	tags, rest, err := readTags(payload)
	if err != nil {
		return jaccard.Coefficient{}, err
	}
	if len(rest) != 16 {
		return jaccard.Coefficient{}, fmt.Errorf("archive: coefficient payload length %d", len(rest))
	}
	return jaccard.Coefficient{
		Tags: tags,
		J:    math.Float64frombits(binary.LittleEndian.Uint64(rest)),
		CN:   int64(binary.LittleEndian.Uint64(rest[8:])),
	}, nil
}

// encodeTrend renders one trend-event record payload: tags, predicted,
// observed, score, rising, CN. The event's period is the segment's.
func encodeTrend(buf []byte, ev trend.Event) []byte {
	buf = appendTags(buf, ev.Tags)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(ev.Predicted))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(ev.Observed))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(ev.Score))
	if ev.Rising {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ev.CN))
	return buf
}

// decodeTrend parses a trend-event record payload into an Event for the
// given period.
func decodeTrend(payload []byte, period int64) (trend.Event, error) {
	tags, rest, err := readTags(payload)
	if err != nil {
		return trend.Event{}, err
	}
	if len(rest) != 33 {
		return trend.Event{}, fmt.Errorf("archive: trend payload length %d", len(rest))
	}
	return trend.Event{
		Tags:      tags,
		Period:    period,
		Predicted: math.Float64frombits(binary.LittleEndian.Uint64(rest)),
		Observed:  math.Float64frombits(binary.LittleEndian.Uint64(rest[8:])),
		Score:     math.Float64frombits(binary.LittleEndian.Uint64(rest[16:])),
		Rising:    rest[24] == 1,
		CN:        int64(binary.LittleEndian.Uint64(rest[25:])),
	}, nil
}

// segmentName returns the file name of a period's segment.
func segmentName(period int64) string { return fmt.Sprintf("period-%d.seg", period) }

// compactName returns the file name of a compacted segment covering the
// inclusive period range [from, to].
func compactName(from, to int64) string { return fmt.Sprintf("compact-%d-%d.seg", from, to) }

// manifestName is the compacted tier's index file. It is the sole
// authority for which compacted files exist and which periods each one
// contains; it is only ever replaced whole via temp+rename.
const manifestName = "MANIFEST"
