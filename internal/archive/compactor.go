package archive

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// The compacted tier. Raw per-period segments accumulate forever on a
// long-lived deployment; the Compactor periodically coalesces runs of
// sealed periods into one compacted file each (`compact-<from>-<to>.seg`)
// and, under a disk budget, ages out the oldest compacted files. A
// compacted file holds the same per-period answers the raw segments held
// — coefficients deduplicated last-record-wins within each period
// (mirroring CN upgrades) and trend events preserved per source period —
// so every /history endpoint answers identically across the boundary; the
// savings come from dropping superseded upgrade records and per-file
// overhead, and from the age-out tier bounding total disk.
//
// The MANIFEST file is the compacted tier's sole authority: a header line
// (manMagic) followed by one line per compacted file. It is only ever
// replaced whole via temp+rename, and every mutation follows a crash-safe
// order:
//
//	compact:  write compact file (tmp+fsync+rename) → publish manifest
//	          referencing it → delete the raw segments it subsumed
//	age-out:  publish manifest without the entry → delete the file
//
// so at every instant each period is findable in at least one tier
// (readers check raw first), the manifest never references a file that
// has not been durably published, and a crash at any step leaves only
// garbage that the next run's GC removes (unreferenced compact files,
// stray .tmp) or leftovers it finishes (raw segments already covered by
// the manifest).

// compactEntry is one manifest line: a compacted file, its inclusive
// period range, and the exact periods it contains (gaps are possible when
// the pipeline idled across period boundaries).
type compactEntry struct {
	file    string
	from    int64
	to      int64
	periods []int64 // ascending
}

// manifest is the decoded MANIFEST: entries ascending by range start;
// ranges never overlap.
type manifest struct {
	entries []compactEntry
}

// find returns the entry containing period, or nil.
func (m *manifest) find(period int64) *compactEntry {
	for i := range m.entries {
		e := &m.entries[i]
		if period < e.from || period > e.to {
			continue
		}
		for _, p := range e.periods {
			if p == period {
				return e
			}
		}
	}
	return nil
}

// readManifestFile decodes one manifest file. Format errors are loud: a
// silently-empty manifest would make every compacted period 404 while its
// raw segments are already deleted.
func readManifestFile(path string) (*manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] != manMagic {
		return nil, fmt.Errorf("archive: %s: bad manifest header", filepath.Base(path))
	}
	m := &manifest{}
	for _, line := range lines[1:] {
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("archive: manifest line %q", line)
		}
		from, err1 := strconv.ParseInt(fields[1], 10, 64)
		to, err2 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil || from > to {
			return nil, fmt.Errorf("archive: manifest line %q", line)
		}
		var periods []int64
		for _, s := range strings.Split(fields[3], ",") {
			p, err := strconv.ParseInt(s, 10, 64)
			if err != nil || p < from || p > to {
				return nil, fmt.Errorf("archive: manifest line %q", line)
			}
			periods = append(periods, p)
		}
		m.entries = append(m.entries, compactEntry{file: fields[0], from: from, to: to, periods: periods})
	}
	sort.Slice(m.entries, func(i, j int) bool { return m.entries[i].from < m.entries[j].from })
	return m, nil
}

// readManifestDir loads dir's manifest; a missing file is an empty tier.
func readManifestDir(dir string) (*manifest, error) {
	m, err := readManifestFile(filepath.Join(dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return &manifest{}, nil
		}
		return nil, err
	}
	return m, nil
}

// writeManifestDir publishes m as dir's manifest via temp+rename+fsync.
func writeManifestDir(dir string, m *manifest) error {
	var buf bytes.Buffer
	buf.WriteString(manMagic)
	buf.WriteByte('\n')
	for _, e := range m.entries {
		strs := make([]string, len(e.periods))
		for i, p := range e.periods {
			strs[i] = strconv.FormatInt(p, 10)
		}
		fmt.Fprintf(&buf, "%s %d %d %s\n", e.file, e.from, e.to, strings.Join(strs, ","))
	}
	final := filepath.Join(dir, manifestName)
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, buf.Bytes()); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("archive: %w", err)
	}
	return nil
}

// writeFileSync writes data to path and fsyncs before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return fmt.Errorf("archive: %w", err)
	}
	return nil
}

// CompactorConfig tunes a Compactor.
type CompactorConfig struct {
	// FanIn is how many raw period segments coalesce into one compacted
	// file (default 8). Budget pressure may compact a shorter final run.
	FanIn int

	// BudgetBytes, when positive, bounds the archive directory's total
	// size: after compacting, the oldest compacted files are aged out
	// until the directory fits (live segments and checkpoints are counted
	// but never deleted).
	BudgetBytes int64

	// Interval is the background scan cadence (default 2s).
	Interval time.Duration

	// SafeBelow returns the newest period id that is sealed forever: the
	// compactor only touches periods <= this watermark. The pipeline
	// passes the retention pruning floor (reports at or below it are
	// rejected as late, so those segments can never grow again). A nil
	// SafeBelow treats every raw period as sealed — only correct on a
	// directory with no live writer.
	SafeBelow func() int64
}

func (c CompactorConfig) fanIn() int {
	if c.FanIn <= 0 {
		return 8
	}
	return c.FanIn
}

func (c CompactorConfig) interval() time.Duration {
	if c.Interval <= 0 {
		return 2 * time.Second
	}
	return c.Interval
}

// CompactorStats counts what the compactor has done.
type CompactorStats struct {
	Runs             int64
	Compactions      int64 // compacted files written
	CompactedPeriods int64 // raw segments folded into compacted files
	AgedOutFiles     int64 // compacted files deleted under budget pressure
	AgedOutPeriods   int64 // periods those files contained
	AgedOutBytes     int64 // bytes those files held when deleted
	DirBytes         int64 // directory size after the last run
}

// Compactor maintains an archive directory's compacted tier in the
// background. It is the only writer of the MANIFEST and of compact-*.seg
// files; RunOnce and the background loop are serialized internally.
type Compactor struct {
	dir string
	cfg CompactorConfig

	runMu sync.Mutex // serializes RunOnce vs the background loop

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}

	mu    sync.Mutex
	stats CompactorStats
	err   error // last RunOnce error

	// durHist, when set (SetDurationHist, before Start), records the
	// wall-clock duration of every maintenance pass.
	durHist *telemetry.Histogram

	// passHook, when set (SetPassHook, before Start), is called after
	// every maintenance pass with the post-pass stats and the pass error.
	// It runs on the compactor goroutine outside the stats lock.
	passHook func(CompactorStats, error)
}

// SetDurationHist wires a histogram recording each maintenance pass's
// duration. Call before Start.
func (c *Compactor) SetDurationHist(h *telemetry.Histogram) { c.durHist = h }

// SetPassHook wires a callback observing every maintenance pass (the
// flight recorder turns passes that compacted or aged out history into
// events). Call before Start.
func (c *Compactor) SetPassHook(f func(CompactorStats, error)) { c.passHook = f }

// NewCompactor returns a Compactor over dir; Start launches the loop.
func NewCompactor(dir string, cfg CompactorConfig) *Compactor {
	return &Compactor{dir: dir, cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
}

// Start launches the background loop (idempotent).
func (c *Compactor) Start() {
	c.startOnce.Do(func() { go c.loop() })
}

// Close stops the background loop and waits for it to exit. The last
// in-flight RunOnce completes; partial progress is crash-safe by
// construction, so there is no final flush to do.
func (c *Compactor) Close() {
	c.Start() // ensure the loop exists so done closes
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

// Stats returns a copy of the counters.
func (c *Compactor) Stats() CompactorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Err returns the last RunOnce error (nil when the last run succeeded).
func (c *Compactor) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

func (c *Compactor) loop() {
	defer close(c.done)
	t := time.NewTicker(c.cfg.interval())
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.run()
		}
	}
}

func (c *Compactor) run() {
	err := c.RunOnce()
	c.mu.Lock()
	c.err = err
	c.mu.Unlock()
}

// RunOnce performs one full maintenance pass: GC of crash leftovers,
// compaction of every full fan-in run of sealed raw periods, then budget
// enforcement (a final short-run compaction if needed, and age-out of the
// oldest compacted files until the directory fits).
func (c *Compactor) RunOnce() (err error) {
	c.runMu.Lock()
	defer c.runMu.Unlock()
	if c.passHook != nil {
		defer func() { c.passHook(c.Stats(), err) }()
	}
	if c.durHist != nil {
		start := time.Now()
		defer func() { c.durHist.Record(time.Since(start)) }()
	}

	m, err := readManifestDir(c.dir)
	if err != nil {
		return err
	}
	if err := c.gc(m); err != nil {
		return err
	}

	eligible, err := c.eligiblePeriods(m)
	if err != nil {
		return err
	}
	fan := c.cfg.fanIn()
	for len(eligible) >= fan {
		if err := c.compactBatch(m, eligible[:fan]); err != nil {
			return err
		}
		eligible = eligible[fan:]
	}

	if c.cfg.BudgetBytes > 0 {
		if err := c.enforceBudget(m, eligible); err != nil {
			return err
		}
	}

	size, err := dirSize(c.dir)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.stats.Runs++
	c.stats.DirBytes = size
	c.mu.Unlock()
	return nil
}

// eligiblePeriods lists raw periods at or below the SafeBelow watermark,
// ascending, after finishing any compaction a crash interrupted (raw
// segments already covered by the manifest are deleted — the manifest won,
// it was published before the deletes began).
func (c *Compactor) eligiblePeriods(m *manifest) ([]int64, error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("archive: %w", err)
	}
	safe := int64(0)
	unlimited := c.cfg.SafeBelow == nil
	if !unlimited {
		safe = c.cfg.SafeBelow()
	}
	var out []int64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "period-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		p, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "period-"), ".seg"), 10, 64)
		if err != nil {
			continue
		}
		if !unlimited && p > safe {
			continue
		}
		if m.find(p) != nil {
			os.Remove(filepath.Join(c.dir, name))
			continue
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// compactBatch folds the given raw periods (ascending) into one compacted
// file, publishes the manifest entry, then deletes the raw segments.
func (c *Compactor) compactBatch(m *manifest, periods []int64) error {
	if len(periods) == 0 {
		return nil
	}
	from, to := periods[0], periods[len(periods)-1]
	buf := make([]byte, 0, 64*1024)
	buf = append(buf, cmpMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(from))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(to))
	var scratch []byte
	for _, p := range periods {
		seg, _, err := decodeSegmentFile(filepath.Join(c.dir, segmentName(p)), p)
		if err != nil {
			return err
		}
		for _, cf := range seg.Coeffs {
			scratch = binary.LittleEndian.AppendUint64(scratch[:0], uint64(p))
			scratch = encodeCoeff(scratch, cf)
			buf = appendRecord(buf, recCoeffP, scratch)
		}
		for _, ev := range seg.Trends {
			scratch = binary.LittleEndian.AppendUint64(scratch[:0], uint64(p))
			scratch = encodeTrend(scratch, ev)
			buf = appendRecord(buf, recTrendP, scratch)
		}
	}

	name := compactName(from, to)
	final := filepath.Join(c.dir, name)
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("archive: %w", err)
	}

	m.entries = append(m.entries, compactEntry{file: name, from: from, to: to, periods: append([]int64(nil), periods...)})
	sort.Slice(m.entries, func(i, j int) bool { return m.entries[i].from < m.entries[j].from })
	if err := writeManifestDir(c.dir, m); err != nil {
		os.Remove(final)
		return err
	}
	for _, p := range periods {
		os.Remove(filepath.Join(c.dir, segmentName(p)))
	}

	c.mu.Lock()
	c.stats.Compactions++
	c.stats.CompactedPeriods += int64(len(periods))
	c.mu.Unlock()
	return nil
}

// enforceBudget brings the directory under BudgetBytes: first the
// lossless step (compact the leftover short run of sealed raw periods),
// then the lossy one (age out the oldest compacted files, oldest history
// first) until the directory fits or nothing deletable remains.
func (c *Compactor) enforceBudget(m *manifest, leftover []int64) error {
	size, err := dirSize(c.dir)
	if err != nil {
		return err
	}
	if size > c.cfg.BudgetBytes && len(leftover) > 0 {
		if err := c.compactBatch(m, leftover); err != nil {
			return err
		}
		if size, err = dirSize(c.dir); err != nil {
			return err
		}
	}
	for size > c.cfg.BudgetBytes && len(m.entries) > 0 {
		e := m.entries[0]
		m.entries = m.entries[1:]
		if err := writeManifestDir(c.dir, m); err != nil {
			return err
		}
		var freed int64
		if fi, err := os.Stat(filepath.Join(c.dir, e.file)); err == nil {
			freed = fi.Size()
		}
		os.Remove(filepath.Join(c.dir, e.file))
		c.mu.Lock()
		c.stats.AgedOutFiles++
		c.stats.AgedOutPeriods += int64(len(e.periods))
		c.stats.AgedOutBytes += freed
		c.mu.Unlock()
		if size, err = dirSize(c.dir); err != nil {
			return err
		}
	}
	return nil
}

// gc removes crash leftovers this compactor owns: stray compactor temp
// files and compact files the manifest does not reference (a crash
// between the compact-file rename and the manifest publish). Checkpoint
// and period files are never touched — they belong to the Writer.
func (c *Compactor) gc(m *manifest) error {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("archive: %w", err)
	}
	referenced := make(map[string]bool, len(m.entries))
	for _, e := range m.entries {
		referenced[e.file] = true
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case name == manifestName+".tmp":
			os.Remove(filepath.Join(c.dir, name))
		case strings.HasPrefix(name, "compact-") && strings.HasSuffix(name, ".seg.tmp"):
			os.Remove(filepath.Join(c.dir, name))
		case strings.HasPrefix(name, "compact-") && strings.HasSuffix(name, ".seg") && !referenced[name]:
			os.Remove(filepath.Join(c.dir, name))
		}
	}
	return nil
}

// dirSize sums the sizes of dir's regular files.
func dirSize(dir string) (int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("archive: %w", err)
	}
	var total int64
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		total += fi.Size()
	}
	return total, nil
}
