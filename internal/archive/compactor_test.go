package archive

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/tagset"
)

// populateArchive writes n sealed periods (1..n) of coefficients and trend
// events, including a CN upgrade per period so last-record-wins semantics
// are exercised across the compaction boundary. The pair (0, 10+p) exists
// only in period p, giving every period a distinguishing coefficient.
func populateArchive(t *testing.T, dir string, n int) {
	t.Helper()
	w, err := OpenWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= n; p++ {
		pp := int64(p)
		for i := 0; i < 6; i++ {
			w.AppendCoefficient(pp, coeff(tagset.Tag(i), tagset.Tag(i+10+p), float64(i+1)/10, pp))
		}
		// Upgrade: the decoded segment must keep CN p+100, not p.
		w.AppendCoefficient(pp, coeff(0, tagset.Tag(10+p), 0.1, pp+100))
		w.AppendEvent(event(1, tagset.Tag(11+p), pp, 0.5))
		w.AppendEvent(event(2, tagset.Tag(12+p), pp, 0.25))
		w.SealPeriod(pp)
	}
	w.Close()
}

// readAll snapshots every period's decoded segment through rd.
func readAll(t *testing.T, rd *Reader) (periods []int64, segs map[int64]*Segment) {
	t.Helper()
	periods, err := rd.Periods()
	if err != nil {
		t.Fatal(err)
	}
	segs = make(map[int64]*Segment, len(periods))
	for _, p := range periods {
		seg, err := rd.Segment(p)
		if err != nil || seg == nil {
			t.Fatalf("segment %d: %+v err=%v", p, seg, err)
		}
		segs[p] = seg
	}
	return periods, segs
}

// TestCompactionDifferential compacts a populated archive and verifies that
// every query answer — period list, per-period segments (coefficients with
// their CN upgrades, trend events, sort order) and pair lookups — is
// identical before and after compaction, both through the Reader that was
// already open across the boundary and through a fresh one.
func TestCompactionDifferential(t *testing.T) {
	dir := t.TempDir()
	populateArchive(t, dir, 10)

	rd := OpenReader(dir)
	beforePeriods, before := readAll(t, rd)
	if len(beforePeriods) != 10 {
		t.Fatalf("periods before = %v", beforePeriods)
	}
	oldPair := tagset.New(0, 11).Key() // only in period 1
	cBefore, pBefore, okBefore, _, err := rd.LookupPair(oldPair, 0)
	if err != nil || !okBefore || pBefore != 1 || cBefore.CN != 101 {
		t.Fatalf("LookupPair before: %+v period=%d ok=%v err=%v", cBefore, pBefore, okBefore, err)
	}

	c := NewCompactor(dir, CompactorConfig{FanIn: 4})
	if err := c.RunOnce(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Compactions != 2 || st.CompactedPeriods != 8 || st.AgedOutFiles != 0 {
		t.Fatalf("stats = %+v (want 2 compactions of 4 periods each)", st)
	}
	for p := 1; p <= 8; p++ {
		if _, err := os.Stat(filepath.Join(dir, segmentName(int64(p)))); !os.IsNotExist(err) {
			t.Fatalf("raw segment %d survived compaction (err=%v)", p, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatalf("manifest missing: %v", err)
	}

	// The already-open Reader must re-resolve through the compacted tier.
	afterPeriods, after := readAll(t, rd)
	if !reflect.DeepEqual(beforePeriods, afterPeriods) {
		t.Fatalf("periods changed: %v -> %v", beforePeriods, afterPeriods)
	}
	for _, p := range beforePeriods {
		if !reflect.DeepEqual(before[p], after[p]) {
			t.Errorf("period %d differs after compaction:\nbefore %+v\nafter  %+v", p, before[p], after[p])
		}
	}
	cAfter, pAfter, okAfter, _, err := rd.LookupPair(oldPair, 0)
	if err != nil || !okAfter || pAfter != pBefore || !reflect.DeepEqual(cAfter, cBefore) {
		t.Fatalf("LookupPair after: %+v period=%d ok=%v err=%v", cAfter, pAfter, okAfter, err)
	}

	// A fresh Reader (no warm cache) agrees too.
	freshPeriods, fresh := readAll(t, OpenReader(dir))
	if !reflect.DeepEqual(beforePeriods, freshPeriods) {
		t.Fatalf("fresh periods = %v", freshPeriods)
	}
	for _, p := range beforePeriods {
		if !reflect.DeepEqual(before[p], fresh[p]) {
			t.Errorf("period %d differs for fresh reader", p)
		}
	}

	// A second pass finds nothing to do: the 2-period leftover run is below
	// the fan-in and there is no budget pressure.
	if err := c.RunOnce(); err != nil {
		t.Fatal(err)
	}
	if st2 := c.Stats(); st2.Compactions != st.Compactions || st2.AgedOutFiles != 0 {
		t.Fatalf("idle pass mutated the tier: %+v", st2)
	}
}

// TestCompactionBudget verifies budget enforcement: the leftover short run
// is compacted losslessly first, then the oldest compacted files are aged
// out until the directory fits, and the surviving periods stay readable.
func TestCompactionBudget(t *testing.T) {
	dir := t.TempDir()
	populateArchive(t, dir, 12)

	// Phase 1: lossless compaction only, to learn the compacted sizes.
	c := NewCompactor(dir, CompactorConfig{FanIn: 4})
	if err := c.RunOnce(); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Compactions != 3 || st.CompactedPeriods != 12 {
		t.Fatalf("lossless phase: %+v", st)
	}
	size, err := dirSize(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2: a budget one byte below the current size forces exactly the
	// oldest compacted file (periods 1-4) out.
	budget := size - 1
	cb := NewCompactor(dir, CompactorConfig{FanIn: 4, BudgetBytes: budget})
	if err := cb.RunOnce(); err != nil {
		t.Fatal(err)
	}
	st := cb.Stats()
	if st.AgedOutFiles != 1 || st.AgedOutPeriods != 4 {
		t.Fatalf("age-out: %+v", st)
	}
	if st.DirBytes > budget {
		t.Fatalf("directory %d bytes over budget %d", st.DirBytes, budget)
	}

	rd := OpenReader(dir)
	periods, segs := readAll(t, rd)
	want := []int64{5, 6, 7, 8, 9, 10, 11, 12}
	if !reflect.DeepEqual(periods, want) {
		t.Fatalf("periods after age-out = %v, want %v", periods, want)
	}
	for _, p := range want {
		k := tagset.New(0, tagset.Tag(10+p)).Key()
		if c, ok := segs[p].Coefficient(k); !ok || c.CN != p+100 {
			t.Errorf("period %d lost its upgrade: %+v ok=%v", p, c, ok)
		}
	}
	// The aged-out pair is gone for good — a full scan misses it cleanly.
	if _, _, ok, truncated, err := rd.LookupPair(tagset.New(0, 11).Key(), 0); ok || truncated || err != nil {
		t.Fatalf("aged-out pair: ok=%v truncated=%v err=%v", ok, truncated, err)
	}
}

// TestCompactorCrashLeftovers verifies that a run cleans every kind of
// garbage a crash can leave — stray temp files, an unreferenced compacted
// file, and a raw segment the manifest already covers — without touching
// the published tier.
func TestCompactorCrashLeftovers(t *testing.T) {
	dir := t.TempDir()
	populateArchive(t, dir, 8)
	c := NewCompactor(dir, CompactorConfig{FanIn: 8})
	if err := c.RunOnce(); err != nil {
		t.Fatal(err)
	}
	_, clean := readAll(t, OpenReader(dir))

	// Crash leftovers: a torn manifest swap, a torn compact write, a compact
	// file whose manifest publish never happened, and a raw segment whose
	// deletion (post-publish) never happened.
	for _, name := range []string{manifestName + ".tmp", "compact-100-200.seg.tmp", "compact-100-200.seg"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(3)), []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := c.RunOnce(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{manifestName + ".tmp", "compact-100-200.seg.tmp", "compact-100-200.seg", segmentName(3)} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("leftover %s survived GC (err=%v)", name, err)
		}
	}
	if st := c.Stats(); st.Compactions != 1 {
		t.Fatalf("GC recompacted: %+v", st)
	}
	periods, segs := readAll(t, OpenReader(dir))
	if len(periods) != 8 {
		t.Fatalf("periods after GC = %v", periods)
	}
	for _, p := range periods {
		if !reflect.DeepEqual(clean[p], segs[p]) {
			t.Errorf("period %d changed across GC", p)
		}
	}
}

// TestConcurrentReaderCompactor runs a live Writer, a Compactor driven by an
// advancing seal watermark, and concurrent Readers together (the -race
// configuration of the live/compacted boundary). The invariant: a period at
// or below the watermark observed before the query must always be served,
// from whichever tier currently holds it.
func TestConcurrentReaderCompactor(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	var watermark atomic.Int64
	c := NewCompactor(dir, CompactorConfig{FanIn: 3, SafeBelow: watermark.Load})

	const periods = 30
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Compactor loop: continuous passes instead of the timer, to maximize
	// overlap with reads.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := c.RunOnce(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Reader loops: every period at or below the pre-query watermark must
	// resolve to a segment holding its distinguishing coefficient.
	for r := 0; r < 2; r++ {
		rd := OpenReader(dir)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sealed := watermark.Load()
				for p := int64(1); p <= sealed; p++ {
					seg, err := rd.Segment(p)
					if err != nil || seg == nil {
						t.Errorf("sealed period %d unreadable: seg=%v err=%v", p, seg, err)
						return
					}
					if _, ok := seg.Coefficient(tagset.New(0, tagset.Tag(10+p)).Key()); !ok {
						t.Errorf("period %d lost its coefficient", p)
						return
					}
				}
				if _, err := rd.Periods(); err != nil {
					t.Errorf("Periods: %v", err)
					return
				}
			}
		}()
	}

	// Writer: seal one period at a time, then advance the watermark — after
	// that, nothing appends to it ever again.
	for p := int64(1); p <= periods; p++ {
		for i := 0; i < 4; i++ {
			w.AppendCoefficient(p, coeff(tagset.Tag(i), tagset.Tag(int64(i)+10+p), 0.5, p))
		}
		w.AppendEvent(event(1, tagset.Tag(11+p), p, 0.4))
		w.SealPeriod(p)
		watermark.Store(p)
	}
	close(stop)
	wg.Wait()
	w.Close()

	// One quiescent pass, then the full differential check.
	if err := c.RunOnce(); err != nil {
		t.Fatal(err)
	}
	got, segs := readAll(t, OpenReader(dir))
	if len(got) != periods {
		t.Fatalf("final periods = %v", got)
	}
	for _, p := range got {
		if _, ok := segs[p].Coefficient(tagset.New(0, tagset.Tag(10+p)).Key()); !ok {
			t.Errorf("final period %d lost its coefficient", p)
		}
	}
	if st := c.Stats(); st.CompactedPeriods == 0 {
		t.Error("compactor never compacted anything during the concurrent run")
	}
}

// TestManifestFormatErrors verifies manifest damage is loud: a reader must
// fail rather than silently treat compacted history as missing.
func TestManifestFormatErrors(t *testing.T) {
	dir := t.TempDir()
	populateArchive(t, dir, 4)
	c := NewCompactor(dir, CompactorConfig{FanIn: 4})
	if err := c.RunOnce(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, manifestName)
	for _, bad := range []string{
		"WRONGMAG\ncompact-1-4.seg 1 4 1,2,3,4\n",
		manMagic + "\ncompact-1-4.seg 1 4\n",       // missing periods field
		manMagic + "\ncompact-1-4.seg 4 1 1\n",     // inverted range
		manMagic + "\ncompact-1-4.seg 1 4 1,2,9\n", // period outside range
	} {
		if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenReader(dir).Periods(); err == nil {
			t.Errorf("manifest %q accepted", bad)
		}
	}
}

// TestCompactFileCorruption verifies compacted-file damage is an error, not
// a silent truncation: unlike raw segments, compacted files are published
// whole, so framing damage means disk corruption.
func TestCompactFileCorruption(t *testing.T) {
	dir := t.TempDir()
	populateArchive(t, dir, 4)
	c := NewCompactor(dir, CompactorConfig{FanIn: 4})
	if err := c.RunOnce(); err != nil {
		t.Fatal(err)
	}
	name := compactName(1, 4)
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReader(dir).Segment(2); err == nil {
		t.Error("corrupt compacted file decoded without error")
	}
}
