package vet

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the tree under analysis, with the
// full type information the analyzers need.
type Package struct {
	Path  string // import path ("repro/internal/storm", "fixture/emitaliasing")
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages using only the standard library:
// module-local import paths resolve against the module directory, fixture
// paths against the Extra map, and everything else (the standard library)
// against GOROOT via go/build — type-checked from source, so no export
// data or external tooling is involved. Cgo is disabled in the build
// context so packages like net resolve to their pure-Go fallback files.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string
	// Extra maps import paths to directories outside go/build's normal
	// resolution — the fixture packages under testdata/.
	Extra map[string]string

	ctxt    build.Context
	tctx    *types.Context
	sizes   types.Sizes
	full    map[string]*Package       // module + Extra packages, with Info
	deps    map[string]*types.Package // everything else, types only
	loading map[string]bool           // cycle guard
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	ctxt.CgoEnabled = false
	return &Loader{
		Fset:       token.NewFileSet(),
		ModulePath: modPath,
		ModuleDir:  root,
		Extra:      map[string]string{},
		ctxt:       ctxt,
		tctx:       types.NewContext(),
		sizes:      types.SizesFor("gc", build.Default.GOARCH),
		full:       map[string]*Package{},
		deps:       map[string]*types.Package{},
		loading:    map[string]bool{},
	}, nil
}

// FindModuleRoot walks up from dir to the directory holding go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("vet: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("vet: no module directive in %s", gomod)
}

// Expand resolves package patterns — "./...", "./internal/storm", or plain
// import paths — into the sorted list of module import paths they denote.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			paths, err := l.walk(l.ModuleDir)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			dir := filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			paths, err := l.walk(dir)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		case strings.HasPrefix(pat, "./"):
			rel := filepath.ToSlash(filepath.Clean(strings.TrimPrefix(pat, "./")))
			if rel == "." {
				add(l.ModulePath)
			} else {
				add(l.ModulePath + "/" + rel)
			}
		default:
			add(pat)
		}
	}
	sort.Strings(out)
	return out, nil
}

// walk collects the import paths of every buildable package under dir,
// skipping testdata, hidden and underscore-prefixed directories.
func (l *Loader) walk(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if _, err := l.ctxt.ImportDir(path, 0); err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil
			}
			return fmt.Errorf("vet: %s: %v", path, err)
		}
		rel, err := filepath.Rel(l.ModuleDir, path)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, l.ModulePath)
		} else {
			out = append(out, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	return out, err
}

// Load type-checks the package at the given import path (module-local or
// Extra) with full type information, memoized per loader.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.full[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("vet: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("vet: %s: %v", path, err)
	}
	files, err := l.parseFiles(dir, bp.GoFiles, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer:    &fromImporter{l: l, dir: dir},
		Sizes:       l.sizes,
		Context:     l.tctx,
		FakeImportC: true,
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("vet: type-checking %s: %v", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.full[path] = p
	return p, nil
}

// dirFor maps a module-local or Extra import path to its directory.
func (l *Loader) dirFor(path string) (string, error) {
	if dir, ok := l.Extra[path]; ok {
		return dir, nil
	}
	if path == l.ModulePath {
		return l.ModuleDir, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), nil
	}
	return "", fmt.Errorf("vet: %s is not a module-local import path", path)
}

// importPkg is the recursive importer behind type-checking: module-local
// and Extra paths get the full Load treatment; everything else is resolved
// through go/build (GOROOT, including its vendored src/vendor tree, which
// is why the importing package's srcDir matters) and type-checked from
// source without Info.
func (l *Loader) importPkg(path, srcDir string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.Extra[path]; ok || path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	bp, err := l.ctxt.Import(path, srcDir, 0)
	if err != nil {
		return nil, err
	}
	// Cache under the resolved path, so "golang.org/x/..." and its GOROOT
	// "vendor/golang.org/x/..." spelling share one package identity.
	key := bp.ImportPath
	if p, ok := l.deps[key]; ok {
		return p, nil
	}
	if l.loading[key] {
		return nil, fmt.Errorf("vet: import cycle through %s", key)
	}
	l.loading[key] = true
	defer delete(l.loading, key)

	files, err := l.parseFiles(bp.Dir, bp.GoFiles, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	conf := types.Config{
		Importer:    &fromImporter{l: l, dir: bp.Dir},
		Sizes:       l.sizes,
		Context:     l.tctx,
		FakeImportC: true,
	}
	tpkg, err := conf.Check(path, l.Fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("vet: type-checking dependency %s: %v", path, err)
	}
	l.deps[key] = tpkg
	return tpkg, nil
}

func (l *Loader) parseFiles(dir string, names []string, mode parser.Mode) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// fromImporter satisfies types.ImporterFrom so go/types hands the importing
// package's directory through — required for GOROOT's src/vendor tree.
// dir is the fallback when the type-checker calls the plain Import.
type fromImporter struct {
	l   *Loader
	dir string
}

func (f *fromImporter) Import(path string) (*types.Package, error) {
	return f.l.importPkg(path, f.dir)
}

func (f *fromImporter) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	if srcDir == "" {
		srcDir = f.dir
	}
	return f.l.importPkg(path, srcDir)
}
