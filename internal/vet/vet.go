// Package vet is the project's static-analysis suite: a zero-dependency
// (stdlib go/ast + go/types) driver running analyzers that enforce the
// pipeline's load-bearing invariants — storm tuples are not mutated after
// Emit, locks are not held across blocking operations, telemetry family
// names follow the tagcorr_<subsystem>_<name>_<unit> scheme, atomically
// accessed fields are never touched plainly, and configuration surface
// stays in parity with validation and flags. cmd/tagcorrvet is the CLI;
// DESIGN.md ("Static analysis") documents each invariant.
//
// A finding an analyzer cannot see is fine can be suppressed at the site
// with a directive comment on the same line (or the line above):
//
//	//vet:ok <analyzer> -- <reason>
//
// The reason is mandatory: a suppression without a justification is itself
// reported. The directive is the allowlist — grep for vet:ok to audit it.
package vet

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Pass carries one package through one analyzer.
type Pass struct {
	Pkg *Package
	// ModulePath is the analyzed module's path, so analyzers can recognise
	// project packages without hard-coding the module name.
	ModulePath string
	// Catalog accumulates the telemetry families metricnames extracts; it
	// is shared by every pass of one run.
	Catalog *MetricCatalog

	report func(pos token.Pos, msg string)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns the full registry in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		EmitAliasing,
		LockDiscipline,
		MetricNames,
		AtomicMix,
		ConfigParity,
	}
}

// Diagnostic is one finding, resolved to a position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Result is one run over a set of packages.
type Result struct {
	Diagnostics []Diagnostic
	Catalog     *MetricCatalog
}

// Run loads every path and applies the analyzers, honouring //vet:ok
// suppression directives. Malformed directives (unknown analyzer, missing
// reason) are reported under the pseudo-analyzer "directive".
func Run(l *Loader, paths []string, analyzers []*Analyzer) (*Result, error) {
	res := &Result{Catalog: NewMetricCatalog()}
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		supp := collectSuppressions(l.Fset, pkg, known, res)
		for _, a := range analyzers {
			a := a
			pass := &Pass{
				Pkg:        pkg,
				ModulePath: l.ModulePath,
				Catalog:    res.Catalog,
				report: func(pos token.Pos, msg string) {
					p := l.Fset.Position(pos)
					if supp.suppressed(a.Name, p) {
						return
					}
					res.Diagnostics = append(res.Diagnostics, Diagnostic{Pos: p, Analyzer: a.Name, Message: msg})
				},
			}
			a.Run(pass)
		}
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return res, nil
}

// suppressions indexes //vet:ok directives: a directive at line L covers
// diagnostics of the named analyzers at L and L+1 of the same file, so it
// works both as a trailing comment and on its own line above the finding.
type suppressions struct {
	byLine map[string]map[int]map[string]bool // file -> line -> analyzer set
}

func (s *suppressions) suppressed(analyzer string, pos token.Position) bool {
	lines := s.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, l := range [2]int{pos.Line, pos.Line - 1} {
		if set := lines[l]; set != nil && (set[analyzer] || set["*"]) {
			return true
		}
	}
	return false
}

func collectSuppressions(fset *token.FileSet, pkg *Package, known map[string]bool, res *Result) *suppressions {
	s := &suppressions{byLine: map[string]map[int]map[string]bool{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//vet:ok")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				names, reason, hasReason := strings.Cut(rest, "--")
				nameList := strings.Fields(names)
				bad := func(msg string) {
					res.Diagnostics = append(res.Diagnostics, Diagnostic{Pos: pos, Analyzer: "directive", Message: msg})
				}
				if !hasReason || strings.TrimSpace(reason) == "" {
					bad("//vet:ok needs a justification: //vet:ok <analyzer> -- <reason>")
					continue
				}
				if len(nameList) == 0 {
					bad("//vet:ok names no analyzer")
					continue
				}
				valid := true
				for _, n := range nameList {
					if n != "*" && !known[n] {
						bad(fmt.Sprintf("//vet:ok names unknown analyzer %q", n))
						valid = false
					}
				}
				if !valid {
					continue
				}
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					s.byLine[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = map[string]bool{}
					lines[pos.Line] = set
				}
				for _, n := range nameList {
					set[n] = true
				}
			}
		}
	}
	return s
}

// pkgHasSuffix matches a package path by trailing segments (for example
// "internal/storm"), so analyzers recognise project packages regardless of
// the module name and fixtures importing the real packages resolve
// identically.
func pkgHasSuffix(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}
