package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix flags mixed atomic/plain access: once any code in a package
// reaches a variable (almost always a struct field) through sync/atomic —
// atomic.AddInt64(&x.n, 1) and friends — every other read or write of that
// variable must go through sync/atomic too. A plain load next to an atomic
// store is a data race even when it "only reads a counter": the race
// detector catches it only if a test happens to interleave, while this
// check catches it always.
//
// Whole-variable analysis is package-scoped (the counters this codebase
// cares about — Tracker.Received, trend.Stream's counters, storm.Stats —
// are all accessed within their own package). For slice fields whose
// elements are accessed atomically (atomic.AddInt64(&s.perTask[i], 1)),
// only plain element accesses are flagged; replacing, sizing or ranging
// the slice header itself is fine.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "variables accessed via sync/atomic must never be read or written plainly",
	Run:  runAtomicMix,
}

// atomicOps are the sync/atomic functions whose first argument is the
// address of the variable.
var atomicOps = map[string]bool{}

func init() {
	for _, op := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"} {
		for _, t := range []string{"Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer"} {
			atomicOps[op+t] = true
		}
	}
}

func runAtomicMix(pass *Pass) {
	info := pass.Pkg.Info

	// Pass 1: every variable whose address feeds a sync/atomic call, split
	// into whole-variable and element-wise (slice) atomics. Also remember
	// the selector/ident nodes that appear inside atomic arguments so pass
	// 2 can skip them.
	whole := map[*types.Var]bool{}
	elem := map[*types.Var]bool{}
	inAtomic := map[ast.Node]bool{}

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(info, call) || len(call.Args) == 0 {
				return true
			}
			un, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			target := un.X
			markAll(inAtomic, target)
			switch t := target.(type) {
			case *ast.IndexExpr:
				if v := varOf(info, t.X); v != nil {
					elem[v] = true
				}
			default:
				if v := varOf(info, target); v != nil {
					whole[v] = true
				}
			}
			return true
		})
	}
	if len(whole) == 0 && len(elem) == 0 {
		return
	}

	// Pass 2: flag plain accesses of those variables.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if inAtomic[n] {
				return false
			}
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if v := fieldVar(info, n); v != nil {
					if whole[v] {
						pass.Reportf(n.Pos(), "plain access of %s, which is accessed with sync/atomic elsewhere in this package", v.Name())
						return false
					}
					if elem[v] {
						// Element-atomic slice: the header may be handled
						// plainly, elements may not. The IndexExpr case
						// below sees x.f[i] first, so only flag here when
						// this selector is itself the IndexExpr.X — handled
						// by the parent; nothing to do for the bare header.
						return true
					}
				}
			case *ast.IndexExpr:
				if sel, ok := n.X.(*ast.SelectorExpr); ok {
					if v := fieldVar(info, sel); v != nil && elem[v] {
						pass.Reportf(n.Pos(), "plain element access of %s, whose elements are accessed with sync/atomic elsewhere in this package", v.Name())
						return false
					}
				}
				if id, ok := n.X.(*ast.Ident); ok {
					if v, _ := info.Uses[id].(*types.Var); v != nil && elem[v] {
						pass.Reportf(n.Pos(), "plain element access of %s, whose elements are accessed with sync/atomic elsewhere in this package", v.Name())
						return false
					}
				}
			case *ast.Ident:
				if v, _ := info.Uses[n].(*types.Var); v != nil && whole[v] && !v.IsField() {
					pass.Reportf(n.Pos(), "plain access of %s, which is accessed with sync/atomic elsewhere in this package", v.Name())
				}
			}
			return true
		})
	}
}

func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !atomicOps[sel.Sel.Name] {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// varOf resolves an addressable expression to the variable it denotes:
// x.f -> field f, x -> local/package var x.
func varOf(info *types.Info, e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		return fieldVar(info, e)
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.ParenExpr:
		return varOf(info, e.X)
	}
	return nil
}

func fieldVar(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

// markAll records every node under e as part of an atomic argument.
func markAll(set map[ast.Node]bool, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if n != nil {
			set[n] = true
		}
		return true
	})
}
