package vet_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro/internal/vet"
)

// fixtureNames lists the per-analyzer fixture packages under testdata/src.
// Each is loaded as import path "fixture/<name>" and checked against the
// // want `regex` expectations embedded in its source.
var fixtureNames = []string{
	"emitaliasing",
	"lockdiscipline",
	"metricnames",
	"atomicmix",
	"configparity",
}

// One loader is shared across every test: the expensive part of a run is
// type-checking the standard library from source, and the loader memoizes
// it, so fixtures and the clean-tree pass pay for it once.
var (
	loaderOnce sync.Once
	loader     *vet.Loader
	loaderErr  error
)

func testLoader(t *testing.T) *vet.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		l, err := vet.NewLoader(".")
		if err != nil {
			loaderErr = err
			return
		}
		for _, name := range append(append([]string(nil), fixtureNames...), "directive") {
			dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
			if err != nil {
				loaderErr = err
				return
			}
			l.Extra["fixture/"+name] = dir
		}
		loader = l
	})
	if loaderErr != nil {
		t.Fatalf("building loader: %v", loaderErr)
	}
	return loader
}

// cleanTree caches one full run of every analyzer over the whole module.
var (
	cleanOnce sync.Once
	cleanRes  *vet.Result
	cleanErr  error
)

func cleanTreeRun(t *testing.T) *vet.Result {
	t.Helper()
	l := testLoader(t)
	cleanOnce.Do(func() {
		paths, err := l.Expand([]string{"./..."})
		if err != nil {
			cleanErr = err
			return
		}
		cleanRes, cleanErr = vet.Run(l, paths, vet.Analyzers())
	})
	if cleanErr != nil {
		t.Fatalf("running analyzers over the module: %v", cleanErr)
	}
	return cleanRes
}

func analyzerByName(name string) *vet.Analyzer {
	for _, a := range vet.Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// TestRegistryComplete pins the analyzer registry: removing an analyzer (or
// renaming it) fails here even before its fixture test does.
func TestRegistryComplete(t *testing.T) {
	got := map[string]bool{}
	for _, a := range vet.Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc or run function", a)
		}
		got[a.Name] = true
	}
	for _, want := range fixtureNames {
		if !got[want] {
			t.Errorf("registry is missing analyzer %q", want)
		}
	}
	if len(got) != len(fixtureNames) {
		t.Errorf("registry has %d analyzers, want %d: %v", len(got), len(fixtureNames), got)
	}
}

// TestFixtures runs each analyzer alone over its seeded-violation package
// and matches the diagnostics against the fixture's // want expectations,
// both directions: every diagnostic needs a want, every want a diagnostic.
func TestFixtures(t *testing.T) {
	l := testLoader(t)
	for _, name := range fixtureNames {
		name := name
		t.Run(name, func(t *testing.T) {
			a := analyzerByName(name)
			if a == nil {
				t.Fatalf("analyzer %q is not registered", name)
			}
			res, err := vet.Run(l, []string{"fixture/" + name}, []*vet.Analyzer{a})
			if err != nil {
				t.Fatalf("running %s on its fixture: %v", name, err)
			}
			wants, err := parseWants(l.Extra["fixture/"+name])
			if err != nil {
				t.Fatalf("parsing want comments: %v", err)
			}
			if len(wants) == 0 {
				t.Fatalf("fixture %s declares no // want expectations", name)
			}
			matchDiagnostics(t, res.Diagnostics, wants)
		})
	}
}

// want is one expectation: a diagnostic whose message matches re at
// file:line.
type want struct {
	file     string
	line     int
	re       *regexp.Regexp
	consumed bool
}

var wantRE = regexp.MustCompile("// want `([^`]+)`")

func parseWants(dir string) ([]*want, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", e.Name(), i+1, m[1], err)
				}
				wants = append(wants, &want{file: e.Name(), line: i + 1, re: re})
			}
		}
	}
	return wants, nil
}

func matchDiagnostics(t *testing.T, diags []vet.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		matched := false
		for _, w := range wants {
			if !w.consumed && w.file == base && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.consumed = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.consumed {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// TestDirectiveValidation pins the driver's handling of malformed //vet:ok
// directives, which report under the pseudo-analyzer "directive" (their
// position is the directive comment itself, so the fixture cannot carry
// // want comments for them).
func TestDirectiveValidation(t *testing.T) {
	l := testLoader(t)
	res, err := vet.Run(l, []string{"fixture/directive"}, vet.Analyzers())
	if err != nil {
		t.Fatalf("running on directive fixture: %v", err)
	}
	wantSubstrings := []string{
		"//vet:ok needs a justification",
		`unknown analyzer "nosuchanalyzer"`,
	}
	if len(res.Diagnostics) != len(wantSubstrings) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(res.Diagnostics), len(wantSubstrings), res.Diagnostics)
	}
	for i, sub := range wantSubstrings {
		d := res.Diagnostics[i]
		if d.Analyzer != "directive" {
			t.Errorf("diagnostic %d reported by %q, want \"directive\"", i, d.Analyzer)
		}
		if !strings.Contains(d.Message, sub) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, d.Message, sub)
		}
	}
}

// TestCleanTree asserts the repository itself is clean: every analyzer over
// every module package, zero findings. This is the same run CI's lint job
// performs via cmd/tagcorrvet.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module analysis type-checks the standard library from source; skipped with -short")
	}
	res := cleanTreeRun(t)
	for _, d := range res.Diagnostics {
		t.Errorf("tree is not vet-clean: %s", d)
	}
}

// TestREADMECatalogParity cross-checks the README metric table against the
// catalog metricnames extracts from the source: a family documented but not
// registered, or registered but not documented, fails either way.
func TestREADMECatalogParity(t *testing.T) {
	if testing.Short() {
		t.Skip("needs the full-module catalog; skipped with -short")
	}
	l := testLoader(t)
	res := cleanTreeRun(t)
	fams := res.Catalog.Families()
	if len(fams) == 0 {
		t.Fatal("full-module run extracted no telemetry families")
	}
	readme, err := os.ReadFile(filepath.Join(l.ModuleDir, "README.md"))
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	for _, p := range vet.CrossCheckREADME(readme, fams) {
		t.Errorf("README drift: %s", p)
	}
}
