package vet

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// MetricNames enforces the telemetry naming scheme PR 8 introduced: every
// family registered on a telemetry.Registry must use a string-literal name
// matching tagcorr_<subsystem>_<name>_<unit>, with an approved subsystem
// and a unit suffix appropriate to the instrument kind (counters end in
// _total, histograms in _seconds/_bytes, gauges in a known unit noun).
// Literal names are what make the /metrics surface statically knowable:
// the analyzer extracts every registration into the run's machine-readable
// catalog (cmd/tagcorrvet -catalog), which the README cross-check and CI
// promcheck lists build on.
var MetricNames = &Analyzer{
	Name: "metricnames",
	Doc:  "telemetry family registrations: literal tagcorr_<subsystem>_<name>_<unit> names; extracts the catalog",
	Run:  runMetricNames,
}

// metricSubsystems are the approved <subsystem> segments.
var metricSubsystems = map[string]bool{
	"storm":    true,
	"dissem":   true,
	"tracker":  true,
	"stage":    true,
	"archive":  true,
	"trend":    true,
	"http":     true,
	"process":  true,
	"flight":   true,
	"watchdog": true,
}

// gaugeUnits are the approved trailing unit nouns for gauges. Counters must
// end in _total; histograms in _seconds or _bytes.
var gaugeUnits = map[string]bool{
	"seconds":      true,
	"bytes":        true,
	"entries":      true,
	"periods":      true,
	"coefficients": true,
	"tuples":       true,
	"docs":         true,
	"goroutines":   true,
	"subscribers":  true,
	"predictors":   true,
	"ratio":        true,
	"traces":       true,
	"checks":       true,
}

// registryKinds maps telemetry.Registry registration methods to the
// instrument kind they create.
var registryKinds = map[string]string{
	"Counter":     "counter",
	"CounterFunc": "counter",
	"GaugeFunc":   "gauge",
	"Histogram":   "histogram",
	"Observe":     "histogram",
}

var metricNameRE = regexp.MustCompile(`^tagcorr(_[a-z][a-z0-9]*)+$`)

func runMetricNames(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, ok := registryCall(info, call)
			if !ok || len(call.Args) < 2 {
				return true
			}
			nameArg := call.Args[0]
			lit, ok := nameArg.(*ast.BasicLit)
			if !ok {
				pass.Reportf(nameArg.Pos(), "telemetry family name must be a string literal (the catalog and promcheck lists are built statically)")
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			checkFamilyName(pass, nameArg, name, kind)

			help := ""
			if h, ok := call.Args[1].(*ast.BasicLit); ok {
				if s, err := strconv.Unquote(h.Value); err == nil {
					help = s
				}
			}
			var labels []string
			if len(call.Args) >= 3 {
				labels = literalLabelKeys(call.Args[2])
			}
			if err := pass.Catalog.Add(name, kind, help, labels); err != nil {
				pass.Reportf(nameArg.Pos(), "%v", err)
			}
			return true
		})
	}
}

// registryCall recognises a registration method call on a
// telemetry.Registry and returns the instrument kind.
func registryCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	kind, ok := registryKinds[sel.Sel.Name]
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !pkgHasSuffix(fn.Pkg().Path(), "internal/telemetry") {
		return "", false
	}
	if typeNameOfRecv(fn) != "Registry" {
		return "", false
	}
	return kind, true
}

func checkFamilyName(pass *Pass, at ast.Expr, name, kind string) {
	if !metricNameRE.MatchString(name) {
		pass.Reportf(at.Pos(), "family %q does not match tagcorr_<subsystem>_<name>_<unit> (lowercase snake_case with the tagcorr_ prefix)", name)
		return
	}
	segs := strings.Split(name, "_")[1:] // drop the tagcorr prefix
	if len(segs) < 2 {
		pass.Reportf(at.Pos(), "family %q needs at least a subsystem and a name segment", name)
		return
	}
	if !metricSubsystems[segs[0]] {
		pass.Reportf(at.Pos(), "family %q uses unknown subsystem %q (approved: storm dissem tracker stage archive trend http process flight watchdog)", name, segs[0])
		return
	}
	last := segs[len(segs)-1]
	switch kind {
	case "counter":
		if last != "total" {
			pass.Reportf(at.Pos(), "counter family %q must end in _total", name)
		}
	case "histogram":
		if last != "seconds" && last != "bytes" {
			pass.Reportf(at.Pos(), "histogram family %q must end in a base unit (_seconds or _bytes)", name)
		}
	case "gauge":
		if last == "total" {
			pass.Reportf(at.Pos(), "gauge family %q must not end in _total (that suffix is reserved for counters)", name)
		} else if !gaugeUnits[last] {
			pass.Reportf(at.Pos(), "gauge family %q must end in an approved unit noun (seconds bytes entries periods coefficients tuples docs goroutines subscribers predictors ratio traces checks)", name)
		}
	}
}

// literalLabelKeys extracts the string-literal keys of a telemetry.Labels
// composite literal ("nil" or dynamic labels yield none).
func literalLabelKeys(e ast.Expr) []string {
	cl, ok := e.(*ast.CompositeLit)
	if !ok {
		return nil
	}
	var keys []string
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		lit, ok := kv.Key.(*ast.BasicLit)
		if !ok {
			continue
		}
		if s, err := strconv.Unquote(lit.Value); err == nil {
			keys = append(keys, s)
		}
	}
	return keys
}
