package vet

import (
	"encoding/json"
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// MetricFamily is one statically extracted telemetry family registration.
type MetricFamily struct {
	Name   string   `json:"name"`
	Kind   string   `json:"kind"` // counter, gauge, histogram
	Help   string   `json:"help,omitempty"`
	Labels []string `json:"labels,omitempty"`
}

// MetricCatalog is the machine-readable catalog metricnames emits: every
// family registration found in the analyzed packages, deduplicated by name.
type MetricCatalog struct {
	families map[string]*MetricFamily
}

// NewMetricCatalog returns an empty catalog.
func NewMetricCatalog() *MetricCatalog {
	return &MetricCatalog{families: map[string]*MetricFamily{}}
}

// Add records one registration. Conflicting kinds for one name return an
// error (the exposition would be incoherent).
func (c *MetricCatalog) Add(name, kind, help string, labels []string) error {
	if f, ok := c.families[name]; ok {
		if f.Kind != kind {
			return fmt.Errorf("family %s registered as both %s and %s", name, f.Kind, kind)
		}
		for _, l := range labels {
			if !contains(f.Labels, l) {
				f.Labels = append(f.Labels, l)
				sort.Strings(f.Labels)
			}
		}
		return nil
	}
	sorted := append([]string(nil), labels...)
	sort.Strings(sorted)
	c.families[name] = &MetricFamily{Name: name, Kind: kind, Help: help, Labels: sorted}
	return nil
}

// Families returns the catalog sorted by name.
func (c *MetricCatalog) Families() []MetricFamily {
	out := make([]MetricFamily, 0, len(c.families))
	for _, f := range c.families {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// JSON renders the catalog for -catalog output.
func (c *MetricCatalog) JSON() ([]byte, error) {
	return json.MarshalIndent(c.Families(), "", "  ")
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// readmeToken matches a backtick-quoted token in README prose that names a
// metric family: lowercase snake_case whose first segment is an approved
// subsystem (the tagcorr_ prefix is optional — the catalog table factors
// it out in its header).
var readmeToken = regexp.MustCompile("`(tagcorr_)?([a-z][a-z0-9]*(?:_[a-z0-9]+)+)(?:\\{[^`]*\\})?`")

// CrossCheckREADME compares the statically extracted catalog against the
// README's metric documentation: every registered family must be mentioned
// (with or without the tagcorr_ prefix), and every README token that looks
// like a family must be registered. Unprefixed tokens count as family
// claims only inside table rows (lines starting with "|" — the catalog
// table factors the prefix into its header), so prose naming a JSON report
// field like stage_latency does not false-positive; a tagcorr_-prefixed
// token is a family claim anywhere. It returns one problem string per
// drift, empty when the two agree.
func CrossCheckREADME(readme []byte, families []MetricFamily) []string {
	registered := map[string]bool{}
	for _, f := range families {
		registered[f.Name] = true
	}
	mentioned := map[string]bool{}
	var problems []string
	for _, line := range strings.Split(string(readme), "\n") {
		inTable := strings.HasPrefix(strings.TrimSpace(line), "|")
		for _, m := range readmeToken.FindAllStringSubmatch(line, -1) {
			name := m[2]
			full := "tagcorr_" + name
			if m[1] == "tagcorr_" || registered[full] {
				mentioned[full] = true
				if !registered[full] {
					problems = append(problems, fmt.Sprintf("README documents %s but no such family is registered", full))
				}
				continue
			}
			// Unprefixed token in a table row: treat it as a family claim
			// when its first segment is a metric subsystem.
			seg := name[:strings.IndexByte(name, '_')]
			if inTable && metricSubsystems[seg] {
				problems = append(problems, fmt.Sprintf("README documents %s but no such family is registered", full))
			}
		}
	}
	for _, f := range families {
		if !mentioned[f.Name] {
			problems = append(problems, fmt.Sprintf("registered family %s is not documented in README", f.Name))
		}
	}
	sort.Strings(problems)
	return problems
}
