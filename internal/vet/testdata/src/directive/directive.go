// Package directive exercises malformed //vet:ok suppression directives;
// the driver reports them under the pseudo-analyzer "directive".
package directive

//vet:ok metricnames
var missingReason = 1

//vet:ok nosuchanalyzer -- misspelled analyzer name
var unknownAnalyzer = 2

//vet:ok configparity -- a well-formed directive is silently indexed
var wellFormed = 3
