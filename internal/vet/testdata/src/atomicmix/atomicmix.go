// Package atomicmix seeds mixed atomic/plain accesses of the same variable.
package atomicmix

import "sync/atomic"

type counters struct {
	hits int64
	cold int64   // never touched atomically: plain access is fine
	per  []int64 // elements are atomic, the header is not
}

func bump(c *counters, i int) {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.per[i], 1)
}

func snapshot(c *counters) int64 {
	return c.hits // want `plain access of hits`
}

func perTask(c *counters, i int) int64 {
	return c.per[i] // want `plain element access of per`
}

// resize replaces the slice header, which is not an element access.
func resize(c *counters, n int) {
	c.per = make([]int64, n)
}

func coldRead(c *counters) int64 {
	return c.cold
}

var inflight int64

func incInflight() { atomic.AddInt64(&inflight, 1) }

func readInflight() int64 {
	return inflight // want `plain access of inflight`
}
