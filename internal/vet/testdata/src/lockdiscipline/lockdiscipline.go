// Package lockdiscipline seeds violations for the lockdiscipline analyzer:
// blocking operations under a held mutex and lock-by-value copies.
package lockdiscipline

import (
	"sync"
	"time"

	"repro/internal/storm"
)

type shard struct {
	mu   sync.Mutex
	vals []int
	out  chan int
}

type index struct {
	rw sync.RWMutex
	m  map[int]int
}

func sendWhileHeld(s *shard) {
	s.mu.Lock()
	s.out <- 1 // want `channel send while s.mu is held`
	s.mu.Unlock()
}

func receiveWhileHeld(s *shard) int {
	s.mu.Lock()
	v := <-s.out // want `channel receive while s.mu is held`
	s.mu.Unlock()
	return v
}

func emitWhileHeld(s *shard, out storm.Collector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out.Emit(storm.Tuple{Stream: "coef"}) // want `storm Emit while s.mu is held`
}

func sleepWhileHeld(s *shard) {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `blocking call while s.mu is held`
	s.mu.Unlock()
}

func waitWhileRLocked(ix *index, wg *sync.WaitGroup) {
	ix.rw.RLock()
	wg.Wait() // want `blocking call while ix.rw is held`
	ix.rw.RUnlock()
}

// publishNonBlocking is the sanctioned pattern: a select with default never
// blocks, so publishing under the lock is fine.
func publishNonBlocking(s *shard) {
	s.mu.Lock()
	select {
	case s.out <- 1:
	default:
	}
	s.mu.Unlock()
}

// sendAfterUnlock releases before the send — the pattern the analyzer wants.
func sendAfterUnlock(s *shard) {
	s.mu.Lock()
	v := s.vals[0]
	s.mu.Unlock()
	s.out <- v
}

// Len copies the receiver — and the mutex inside it — on every call.
func (s shard) Len() int { // want `method Len copies its lock-containing receiver shard`
	return len(s.vals)
}

func snapshot(s *shard) shard {
	c := *s // want `assignment copies a value of lock-containing type shard`
	return c
}

// fresh constructs a new value: no existing lock is copied.
func fresh() *shard {
	return &shard{out: make(chan int, 1)}
}
