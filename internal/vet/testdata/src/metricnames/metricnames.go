// Package metricnames seeds violations of the telemetry naming scheme
// (tagcorr_<subsystem>_<name>_<unit> with kind-appropriate unit suffixes).
package metricnames

import "repro/internal/telemetry"

func register(reg *telemetry.Registry, dynamic string) {
	// Clean registrations in all three kinds.
	reg.CounterFunc("tagcorr_storm_tuples_emitted_total",
		"Tuples emitted by each topology component.",
		telemetry.Labels{"component": "parser"}, func() int64 { return 0 })
	reg.GaugeFunc("tagcorr_tracker_heap_entries",
		"Entries held in the shard heaps.",
		nil, func() float64 { return 0 })
	reg.Observe("tagcorr_stage_doc_partition_seconds",
		"Ingest-to-partition latency.",
		nil, telemetry.NewHistogram())

	reg.Counter("badprefix_total", "no tagcorr prefix.", nil)                                           // want `does not match tagcorr_`
	reg.CounterFunc("tagcorr_widget_ops_total", "bad subsystem.", nil, func() int64 { return 0 })       // want `unknown subsystem "widget"`
	reg.CounterFunc("tagcorr_storm_tuples_dropped", "missing unit.", nil, func() int64 { return 0 })    // want `must end in _total`
	reg.GaugeFunc("tagcorr_trend_backlog_total", "gauge as counter.", nil, func() float64 { return 0 }) // want `must not end in _total`
	reg.GaugeFunc("tagcorr_storm_mailbox_depth", "unit-less gauge.", nil, func() float64 { return 0 })  // want `must end in an approved unit noun`
	reg.Observe("tagcorr_stage_doc_partition_millis", "non-base unit.", nil, telemetry.NewHistogram())  // want `must end in a base unit`
	reg.Counter(dynamic, "dynamic name.", nil)                                                          // want `must be a string literal`
}
