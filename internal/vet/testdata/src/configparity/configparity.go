// Command configparity seeds config-parity violations: a Config field
// Validate never checks, an allowlisted field, and a dead flag.
package main

import (
	"flag"
	"fmt"
)

// ServeConfig drives the fixture server.
type ServeConfig struct {
	Port   int
	Window int  // want `ServeConfig.Window is not checked in Validate`
	Debug  bool //vet:ok configparity -- free toggle; both values are valid
}

// Validate checks Port but forgets Window.
func (c ServeConfig) Validate() error {
	if c.Port <= 0 {
		return fmt.Errorf("port = %d", c.Port)
	}
	return nil
}

var (
	port = flag.Int("port", 8080, "listen port")
	dead = flag.String("mode", "fast", "tuning knob nothing reads") // want `flag -mode is parsed but its value is never read`
)

func main() {
	flag.Parse()
	cfg := ServeConfig{Port: *port}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
}
