// Package emitaliasing seeds violations for the emitaliasing analyzer:
// writes through values after they were passed to storm Emit/EmitDirect.
package emitaliasing

import "repro/internal/storm"

type msg struct {
	Time int64
	Tags []int
}

// mutateAfterEmitValue writes into a slice the emitted tuple still shares.
func mutateAfterEmitValue(out storm.Collector) {
	m := msg{Tags: make([]int, 4)}
	out.Emit(storm.Tuple{Stream: "doc", Values: []interface{}{m}})
	m.Tags[0] = 1 // want `write through "m" after it was passed to Emit`
}

// mutateAfterEmitPointer emits a pointer: every later write aliases.
func mutateAfterEmitPointer(out storm.Collector) {
	m := &msg{}
	out.EmitDirect(3, storm.Tuple{Stream: "doc", Values: []interface{}{m}})
	m.Tags = nil // want `write through "m" after it was passed to Emit`
}

// appendAfterEmit may write in place into the shared backing array.
func appendAfterEmit(out storm.Collector) []int {
	m := msg{Tags: make([]int, 0, 8)}
	out.Emit(storm.Tuple{Stream: "doc", Values: []interface{}{m}})
	m.Tags = append(m.Tags, 7) // want `append through "m" after it was passed to Emit`
	return m.Tags
}

// mutateBeforeEmit is the sanctioned build-then-emit pattern.
func mutateBeforeEmit(out storm.Collector) {
	m := msg{Tags: make([]int, 4)}
	m.Tags[0] = 1
	m.Time = 42
	out.Emit(storm.Tuple{Stream: "doc", Values: []interface{}{m}})
}

// rebindAfterEmit only rebinds the local; the emitted copy is unaffected.
func rebindAfterEmit(out storm.Collector) msg {
	m := msg{Tags: make([]int, 4)}
	out.Emit(storm.Tuple{Stream: "doc", Values: []interface{}{m}})
	m = msg{}
	return m
}

// scalarFieldAfterEmit writes a scalar field of a by-value payload: the
// boxed copy in the tuple does not see it.
func scalarFieldAfterEmit(out storm.Collector) msg {
	m := msg{Tags: make([]int, 4)}
	out.Emit(storm.Tuple{Stream: "doc", Values: []interface{}{m}})
	m.Time = 7
	return m
}
