package vet

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ConfigParity keeps the configuration surface honest:
//
//   - every field of a struct type named *Config that has a Validate
//     method must be referenced inside that Validate (or carry a
//     //vet:ok configparity allowlist line stating why any value is
//     valid) — fields silently accepted with no validation are how NaN
//     thresholds and negative windows slip into a running pipeline;
//   - every command-line flag declared in a main package must actually be
//     read somewhere: a flag that parses but never reaches a Config field
//     (or any other consumer) is dead configuration surface. Binding to a
//     nonexistent field is already a compile error, so parity reduces to
//     liveness.
var ConfigParity = &Analyzer{
	Name: "configparity",
	Doc:  "Config fields must be checked in Validate or allowlisted; declared flags must be consumed",
	Run:  runConfigParity,
}

func runConfigParity(pass *Pass) {
	checkConfigValidate(pass)
	if pass.Pkg.Types.Name() == "main" {
		checkFlagLiveness(pass)
	}
}

func checkConfigValidate(pass *Pass) {
	info := pass.Pkg.Info
	scope := pass.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !strings.HasSuffix(tn.Name(), "Config") {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		validate := findValidateDecl(pass, tn.Name())
		if validate == nil {
			continue
		}
		// Collect the field objects Validate's body references.
		referenced := map[*types.Var]bool{}
		ast.Inspect(validate.Body, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if v := fieldVar(info, sel); v != nil {
					referenced[v] = true
				}
			}
			return true
		})
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if referenced[f] {
				continue
			}
			pass.Reportf(f.Pos(), "%s.%s is not checked in Validate; add a case or allowlist it with //vet:ok configparity -- <why any value is valid>", tn.Name(), f.Name())
		}
	}
}

// findValidateDecl returns the FuncDecl of <typeName>.Validate, if the
// package declares one.
func findValidateDecl(pass *Pass, typeName string) *ast.FuncDecl {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Validate" || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			t := fd.Recv.List[0].Type
			if star, ok := t.(*ast.StarExpr); ok {
				t = star.X
			}
			if id, ok := t.(*ast.Ident); ok && id.Name == typeName {
				return fd
			}
		}
	}
	return nil
}

// flagFuncs are the flag-package constructors that return a pointer bound
// to a new flag.
var flagFuncs = map[string]bool{
	"Bool": true, "Duration": true, "Float64": true, "Int": true,
	"Int64": true, "String": true, "Uint": true, "Uint64": true,
}

func checkFlagLiveness(pass *Pass) {
	info := pass.Pkg.Info

	// Collect flag variables: x := flag.Int("name", ...) / var x = flag...
	type declared struct {
		obj      types.Object
		flagName string
		at       ast.Node
	}
	var flags []declared
	record := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !flagFuncs[sel.Sel.Name] || len(call.Args) < 1 {
			return
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "flag" {
			return
		}
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			return
		}
		name := "?"
		if lit, ok := call.Args[0].(*ast.BasicLit); ok {
			if s, err := strconv.Unquote(lit.Value); err == nil {
				name = s
			}
		}
		flags = append(flags, declared{obj: obj, flagName: name, at: id})
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						record(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						record(n.Names[i], n.Values[i])
					}
				}
			}
			return true
		})
	}
	if len(flags) == 0 {
		return
	}

	// A flag is live when any identifier outside its declaration uses it.
	used := map[types.Object]bool{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					used[obj] = true
				}
			}
			return true
		})
	}
	for _, fl := range flags {
		if !used[fl.obj] {
			pass.Reportf(fl.at.Pos(), "flag -%s is parsed but its value is never read; bind it to a Config field or delete it", fl.flagName)
		}
	}
}
