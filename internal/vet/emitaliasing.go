package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EmitAliasing flags writes through a value after it was passed to a storm
// Emit/EmitDirect in the same function. The substrate's mailboxes retain
// the tuple (and everything its payload references) until the receiving
// task processes it — and the compactor may hold it longer — so mutating
// an emitted payload races with the consumer. This is exactly the aliasing
// class the PR 4 mailbox-compaction fix chased dynamically; here it is
// checked statically.
//
// The analysis is per function and position-ordered: only writes after the
// Emit call are flagged, so the ubiquitous build-then-emit pattern stays
// clean. Tracked writes are the ones that can reach the emitted value —
// element writes and appends through an emitted slice or value, and any
// field/deref write through an emitted pointer (the boxed interface copy
// shares the pointee). Rebinding a local (`v = other`) is not a write into
// the emitted copy and is ignored.
var EmitAliasing = &Analyzer{
	Name: "emitaliasing",
	Doc:  "writes to a value after it was passed to storm Emit/EmitDirect (the mailbox retains the payload)",
	Run:  runEmitAliasing,
}

// trackMode says how much of a tracked variable aliases the emitted tuple.
type trackMode int

const (
	// aliasDeep: the variable was emitted by value; only writes that
	// traverse an index/deref (shared backing arrays, pointees) alias.
	aliasDeep trackMode = iota
	// aliasAll: the emitted tuple holds a pointer to (or into) the
	// variable; every non-rebinding write through it aliases.
	aliasAll
)

type emittedVar struct {
	mode    trackMode
	emitPos token.Pos
}

func runEmitAliasing(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkEmitAliasingScopes(pass, fd.Body)
		}
	}
}

// checkEmitAliasingScopes analyzes body as one function scope and recurses
// into nested function literals as separate scopes, so a goroutine's writes
// are never matched against the enclosing function's emits.
func checkEmitAliasingScopes(pass *Pass, body *ast.BlockStmt) {
	checkEmitAliasingBody(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			checkEmitAliasingScopes(pass, fl.Body)
			return false
		}
		return true
	})
}

func checkEmitAliasingBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	// Pass 1: collect variables reachable from emitted tuples, skipping
	// nested function literals (their own scopes).
	tracked := map[*types.Var][]emittedVar{}
	inspectScope(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		arg, ok := stormEmitTupleArg(info, call)
		if !ok {
			return
		}
		collectEmittedRoots(info, arg, false, func(v *types.Var, mode trackMode) {
			tracked[v] = append(tracked[v], emittedVar{mode: mode, emitPos: call.Pos()})
		})
	})
	if len(tracked) == 0 {
		return
	}

	// Pass 2: flag aliasing writes after an emit of the same variable.
	inspectScope(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				root, deep, plain := lhsRoot(lhs)
				if root == nil || (plain && st.Tok == token.DEFINE) {
					continue
				}
				reportAliasWrite(pass, tracked, root, deep, plain, "write")
			}
		case *ast.IncDecStmt:
			root, deep, plain := lhsRoot(st.X)
			if root != nil {
				reportAliasWrite(pass, tracked, root, deep, plain, "write")
			}
		case *ast.CallExpr:
			// append(x, ...) and append(x.f, ...) may write in place into
			// the backing array the emitted value shares.
			if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "append" && len(st.Args) > 0 {
				if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					root, _, _ := lhsRoot(st.Args[0])
					if root != nil {
						reportAliasWrite(pass, tracked, root, true, false, "append")
					}
				}
			}
		}
	})
}

func reportAliasWrite(pass *Pass, tracked map[*types.Var][]emittedVar, root *ast.Ident, deepWrite, plainRebind bool, what string) {
	v, _ := pass.Pkg.Info.Uses[root].(*types.Var)
	if v == nil {
		return
	}
	for _, em := range tracked[v] {
		if root.Pos() <= em.emitPos {
			continue
		}
		switch em.mode {
		case aliasDeep:
			if !deepWrite {
				continue
			}
		case aliasAll:
			// Rebinding a pointer variable (p = other) does not touch the
			// pointee the tuple holds; rebinding a value variable whose
			// address was emitted writes the pointee itself and stays
			// flagged.
			if plainRebind && isPointer(v.Type()) {
				continue
			}
		}
		line := pass.Pkg.Fset.Position(em.emitPos).Line
		pass.Reportf(root.Pos(), "%s through %q after it was passed to Emit on line %d; the mailbox retains the tuple payload — copy before emitting", what, root.Name, line)
		return
	}
}

// stormEmitTupleArg returns the tuple argument of a storm Collector
// Emit/EmitDirect call, if call is one.
func stormEmitTupleArg(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !pkgHasSuffix(fn.Pkg().Path(), "internal/storm") {
		return nil, false
	}
	switch fn.Name() {
	case "Emit":
		if len(call.Args) >= 1 {
			return call.Args[0], true
		}
	case "EmitDirect":
		if len(call.Args) >= 2 {
			return call.Args[1], true
		}
	}
	return nil, false
}

// collectEmittedRoots walks the emitted expression and reports every
// variable the tuple can reach, with the alias mode that applies.
func collectEmittedRoots(info *types.Info, e ast.Expr, addressed bool, emit func(*types.Var, trackMode)) {
	switch e := e.(type) {
	case *ast.Ident:
		v, ok := info.Uses[e].(*types.Var)
		if !ok {
			return
		}
		if addressed || isPointer(v.Type()) {
			emit(v, aliasAll)
		} else if hasReferenceSemantics(v.Type()) {
			emit(v, aliasDeep)
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			// &v (or &v.f): the tuple holds a pointer into v.
			root, _, _ := lhsRoot(e.X)
			if root != nil {
				if v, ok := info.Uses[root].(*types.Var); ok {
					emit(v, aliasAll)
					return
				}
			}
			collectEmittedRoots(info, e.X, true, emit)
			return
		}
		collectEmittedRoots(info, e.X, addressed, emit)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			collectEmittedRoots(info, el, false, emit)
		}
	case *ast.SelectorExpr:
		// msg.Tags inside the payload: the root variable's referenced data
		// is reachable from the tuple.
		collectEmittedRoots(info, e.X, addressed, emit)
	case *ast.ParenExpr:
		collectEmittedRoots(info, e.X, addressed, emit)
	case *ast.IndexExpr:
		collectEmittedRoots(info, e.X, addressed, emit)
	case *ast.SliceExpr:
		collectEmittedRoots(info, e.X, addressed, emit)
	case *ast.CallExpr, *ast.BasicLit, *ast.FuncLit:
		// Freshly produced values (or constants): nothing aliased that the
		// caller can still write through by name.
	case *ast.StarExpr:
		collectEmittedRoots(info, e.X, addressed, emit)
	case *ast.BinaryExpr:
		collectEmittedRoots(info, e.X, false, emit)
		collectEmittedRoots(info, e.Y, false, emit)
	case *ast.TypeAssertExpr:
		collectEmittedRoots(info, e.X, addressed, emit)
	}
}

// lhsRoot resolves an assignable expression to its root identifier,
// reporting whether the path traverses an index/deref (a write through
// shared backing memory) and whether it is the bare identifier.
func lhsRoot(e ast.Expr) (root *ast.Ident, deep bool, plain bool) {
	plain = true
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, deep, plain
		case *ast.SelectorExpr:
			e = x.X
			plain = false
		case *ast.IndexExpr:
			e = x.X
			deep = true
			plain = false
		case *ast.SliceExpr:
			e = x.X
			deep = true
			plain = false
		case *ast.StarExpr:
			e = x.X
			deep = true
			plain = false
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil, deep, false
		}
	}
}

// inspectScope walks body in source order without descending into nested
// function literals.
func inspectScope(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

func isPointer(t types.Type) bool {
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

// hasReferenceSemantics reports whether values of t can share mutable
// backing state with a copy of themselves: slices, maps, channels,
// pointers, interfaces, or structs/arrays containing any of those.
func hasReferenceSemantics(t types.Type) bool {
	return hasRefSem(t, 0)
}

func hasRefSem(t types.Type, depth int) bool {
	if depth > 10 {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Chan, *types.Pointer, *types.Interface, *types.Signature:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hasRefSem(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return hasRefSem(u.Elem(), depth+1)
	}
	return false
}
