package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockDiscipline enforces the pipeline's locking rules:
//
//   - no channel send, channel receive, storm Emit/EmitDirect,
//     sync.WaitGroup.Wait or time.Sleep while a sync.Mutex/RWMutex
//     acquired in the same function is still held (the Tracker and trend
//     detector publish outside their shard locks for exactly this reason);
//     non-blocking sends/receives — the comm clause of a select with a
//     default case — are exempt, as is sync.Cond.Wait, which requires the
//     lock by contract;
//   - no lock-by-value copies: value receivers on lock-containing types and
//     assignments copying an existing lock-containing value.
//
// The analysis is per function and linear: a lock is considered held from
// x.Lock() until x.Unlock() on the same expression (deferred unlocks hold
// to the end of the function). It does not chase locks across calls; the
// point is the local pattern "lock, blocking op, unlock", which is where
// every deadlock and latency stall in this codebase's history lived.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "blocking operations under a mutex held in the same function; lock-by-value copies",
	Run:  runLockDiscipline,
}

func runLockDiscipline(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				checkValueReceiver(pass, fd)
			}
			checkLockScopes(pass, fd.Body)
		}
	}
	checkLockCopies(pass)
}

func checkLockScopes(pass *Pass, body *ast.BlockStmt) {
	checkLockBody(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			checkLockScopes(pass, fl.Body)
			return false
		}
		return true
	})
}

// nonBlockingComms returns the set of comm-clause statements (sends and
// receives) that belong to a select with a default case — those never
// block and are the sanctioned way to publish under a lock.
func nonBlockingComms(body *ast.BlockStmt) map[ast.Node]bool {
	ok := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, isSel := n.(*ast.SelectStmt)
		if !isSel {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, isCC := c.(*ast.CommClause); isCC && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, c := range sel.Body.List {
			cc, isCC := c.(*ast.CommClause)
			if !isCC || cc.Comm == nil {
				continue
			}
			ok[cc.Comm] = true
			// A receive comm is an ExprStmt or AssignStmt wrapping the
			// unary receive; mark the receive expression too.
			switch s := cc.Comm.(type) {
			case *ast.ExprStmt:
				ok[s.X] = true
			case *ast.AssignStmt:
				for _, r := range s.Rhs {
					ok[r] = true
				}
			}
		}
		return true
	})
	return ok
}

func checkLockBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	nonBlocking := nonBlockingComms(body)

	held := map[string]bool{}            // lock expression (rendered) -> held
	deferred := map[*ast.CallExpr]bool{} // calls under defer: they run at return, not here

	inspectScope(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// A deferred unlock keeps the lock held to the end of the
			// function; mark the call so the CallExpr visit below does not
			// clear the held state when it reaches it.
			deferred[n.Call] = true
		case *ast.CallExpr:
			if deferred[n] {
				return
			}
			if key, op, ok := lockCall(info, n); ok {
				switch op {
				case "Lock", "RLock":
					held[key] = true
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				return
			}
			if anyHeld(held) {
				if _, ok := stormEmitTupleArg(info, n); ok {
					pass.Reportf(n.Pos(), "storm Emit while %s is held; emit after unlocking (the send can block on the mailbox)", heldName(held))
					return
				}
				if isBlockingCall(info, n) {
					pass.Reportf(n.Pos(), "blocking call while %s is held; release the lock first", heldName(held))
				}
			}
		case *ast.SendStmt:
			if anyHeld(held) && !nonBlocking[n] {
				pass.Reportf(n.Pos(), "channel send while %s is held; send after unlocking or use a select with default", heldName(held))
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && anyHeld(held) && !nonBlocking[n] {
				pass.Reportf(n.Pos(), "channel receive while %s is held; receive after unlocking or use a select with default", heldName(held))
			}
		}
	})
}

func anyHeld(held map[string]bool) bool { return len(held) > 0 }

func heldName(held map[string]bool) string {
	for k := range held {
		if len(held) == 1 {
			return k
		}
	}
	for k := range held {
		return k + " (among others)"
	}
	return "a lock"
}

// lockCall recognises calls to sync.Mutex/RWMutex Lock/RLock/Unlock/RUnlock
// methods and returns a stable key for the receiver expression.
func lockCall(info *types.Info, call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	// Receiver must be a Mutex or RWMutex (RLock/RUnlock imply RWMutex).
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", false
	}
	name := typeName(recv.Type())
	if name != "Mutex" && name != "RWMutex" {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// isBlockingCall recognises the well-known blocking calls the pipeline must
// not make under a lock: WaitGroup.Wait and time.Sleep. sync.Cond.Wait is
// deliberately not here — it requires holding the lock.
func isBlockingCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch {
	case fn.Pkg().Path() == "sync" && fn.Name() == "Wait" && typeNameOfRecv(fn) == "WaitGroup":
		return true
	case fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
		return true
	}
	return false
}

func typeNameOfRecv(fn *types.Func) string {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return ""
	}
	return typeName(recv.Type())
}

func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// checkValueReceiver flags methods declared on a lock-containing type with
// a value receiver: every call copies the lock.
func checkValueReceiver(pass *Pass, fd *ast.FuncDecl) {
	field := fd.Recv.List[0]
	tv, ok := pass.Pkg.Info.Types[field.Type]
	if !ok {
		return
	}
	if _, isPtr := tv.Type.(*types.Pointer); isPtr {
		return
	}
	if containsLock(tv.Type, 0) {
		pass.Reportf(field.Pos(), "method %s copies its lock-containing receiver %s; use a pointer receiver", fd.Name.Name, types.TypeString(tv.Type, types.RelativeTo(pass.Pkg.Types)))
	}
}

// checkLockCopies flags assignments that copy an existing lock-containing
// value (x := y, x := *p, x = y). Composite literals and function calls
// construct fresh values and are fine.
func checkLockCopies(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for _, rhs := range as.Rhs {
				if !copiesExistingValue(rhs) {
					continue
				}
				tv, ok := info.Types[rhs]
				if !ok || tv.Type == nil {
					continue
				}
				if containsLock(tv.Type, 0) {
					pass.Reportf(rhs.Pos(), "assignment copies a value of lock-containing type %s", types.TypeString(tv.Type, types.RelativeTo(pass.Pkg.Types)))
				}
			}
			return true
		})
	}
}

// copiesExistingValue reports whether evaluating e yields a copy of a value
// that already lives elsewhere (identifier, field selection, deref, index).
func copiesExistingValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	case *ast.ParenExpr:
		return copiesExistingValue(e.X)
	}
	return false
}

// containsLock reports whether t (by value) contains a sync.Mutex,
// RWMutex, Cond, WaitGroup or Once.
func containsLock(t types.Type, depth int) bool {
	if depth > 10 {
		return false
	}
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "Cond", "WaitGroup", "Once":
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), depth+1)
	}
	return false
}
