package zipf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPMFSumsToOne(t *testing.T) {
	for _, s := range []float64{0, 0.25, 1, 2.5} {
		d := New(8, s)
		sum := 0.0
		for m := 1; m <= 8; m++ {
			sum += d.PMF(m)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("s=%g: PMF sums to %g", s, sum)
		}
	}
}

func TestPMFMonotoneForPositiveSkew(t *testing.T) {
	d := New(10, 0.25)
	for m := 2; m <= 10; m++ {
		if d.PMF(m) > d.PMF(m-1)+1e-15 {
			t.Errorf("PMF(%d)=%g > PMF(%d)=%g", m, d.PMF(m), m-1, d.PMF(m-1))
		}
	}
}

func TestPMFOutOfRange(t *testing.T) {
	d := New(5, 1)
	if d.PMF(0) != 0 || d.PMF(6) != 0 || d.PMF(-1) != 0 {
		t.Error("out-of-range PMF not zero")
	}
}

func TestUniformSpecialCase(t *testing.T) {
	d := New(4, 0)
	for m := 1; m <= 4; m++ {
		if math.Abs(d.PMF(m)-0.25) > 1e-12 {
			t.Errorf("s=0: PMF(%d)=%g, want 0.25", m, d.PMF(m))
		}
	}
}

func TestSampleMatchesPMF(t *testing.T) {
	d := New(8, 0.25)
	r := rand.New(rand.NewSource(1))
	const n = 200000
	counts := make([]int, 9)
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		if v < 1 || v > 8 {
			t.Fatalf("sample %d out of range", v)
		}
		counts[v]++
	}
	for m := 1; m <= 8; m++ {
		emp := float64(counts[m]) / n
		if math.Abs(emp-d.PMF(m)) > 0.01 {
			t.Errorf("m=%d: empirical %g vs pmf %g", m, emp, d.PMF(m))
		}
	}
}

func TestSampleDeterministicWithSeed(t *testing.T) {
	d := New(100, 1.2)
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		if d.Sample(a) != d.Sample(b) {
			t.Fatal("same seed produced different samples")
		}
	}
}

func TestMean(t *testing.T) {
	// Uniform over 1..4 has mean 2.5.
	if m := New(4, 0).Mean(); math.Abs(m-2.5) > 1e-12 {
		t.Errorf("Mean = %g, want 2.5", m)
	}
	// Skewed mean must be below uniform mean.
	if New(8, 2).Mean() >= New(8, 0).Mean() {
		t.Error("skewed mean not below uniform mean")
	}
}

func TestNewPanics(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {-3, 1}, {5, -0.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%g) did not panic", tc.n, tc.s)
				}
			}()
			New(tc.n, tc.s)
		}()
	}
}

func TestWeighted(t *testing.T) {
	w := NewWeighted([]float64{1, 0, 3})
	r := rand.New(rand.NewSource(3))
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[w.Sample(r)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight outcome drawn %d times", counts[1])
	}
	if math.Abs(float64(counts[0])/n-0.25) > 0.01 {
		t.Errorf("outcome 0 drawn %d times, want ~25%%", counts[0])
	}
	if w.Len() != 3 {
		t.Errorf("Len = %d", w.Len())
	}
}

func TestWeightedPanics(t *testing.T) {
	cases := [][]float64{{}, {0, 0}, {1, -1}, {math.NaN()}}
	for i, ws := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			NewWeighted(ws)
		}()
	}
}

// Property (testing/quick): for arbitrary valid (n, s), the PMF is a
// normalised, non-increasing distribution and samples stay in range.
func TestQuickDistInvariants(t *testing.T) {
	f := func(rawN uint8, rawS uint8, seed int64) bool {
		n := 1 + int(rawN)%64
		s := float64(rawS) / 64 // 0 .. ~4
		d := New(n, s)
		sum := 0.0
		prev := math.Inf(1)
		for m := 1; m <= n; m++ {
			p := d.PMF(m)
			if p < 0 || p > prev+1e-15 {
				return false
			}
			prev = p
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			if v := d.Sample(r); v < 1 || v > n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
