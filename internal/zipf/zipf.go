// Package zipf provides seeded sampling from bounded Zipf distributions with
// arbitrary skew s >= 0, including the s < 1 range that math/rand's Zipf
// rejects. The paper's tweet-length model (Section 5.1) uses
// f(m, mmax, s) = (1/m^s) / sum_{i=1..mmax} 1/i^s with s = 0.25, so the
// generator needs exactly this capability.
package zipf

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Dist is a bounded Zipf distribution over {1, ..., N} with skew s:
// P(X = m) proportional to 1/m^s.
type Dist struct {
	n   int
	s   float64
	cdf []float64 // cdf[i] = P(X <= i+1)
}

// New constructs the distribution over {1..n} with skew s. It panics if
// n < 1 or s < 0, which indicate programmer error.
func New(n int, s float64) *Dist {
	if n < 1 {
		panic(fmt.Sprintf("zipf: n = %d < 1", n))
	}
	if s < 0 {
		panic(fmt.Sprintf("zipf: s = %g < 0", s))
	}
	d := &Dist{n: n, s: s, cdf: make([]float64, n)}
	total := 0.0
	for i := 1; i <= n; i++ {
		total += math.Pow(float64(i), -s)
		d.cdf[i-1] = total
	}
	for i := range d.cdf {
		d.cdf[i] /= total
	}
	d.cdf[n-1] = 1 // guard against rounding
	return d
}

// N returns the support size.
func (d *Dist) N() int { return d.n }

// S returns the skew parameter.
func (d *Dist) S() float64 { return d.s }

// PMF returns P(X = m). Values outside {1..n} have probability 0.
func (d *Dist) PMF(m int) float64 {
	if m < 1 || m > d.n {
		return 0
	}
	if m == 1 {
		return d.cdf[0]
	}
	return d.cdf[m-1] - d.cdf[m-2]
}

// Sample draws one value in {1..n} using r.
func (d *Dist) Sample(r *rand.Rand) int {
	u := r.Float64()
	// Binary search the CDF: smallest i with cdf[i] >= u.
	i := sort.SearchFloat64s(d.cdf, u)
	if i >= d.n {
		i = d.n - 1
	}
	return i + 1
}

// Mean returns E[X].
func (d *Dist) Mean() float64 {
	mean := 0.0
	for m := 1; m <= d.n; m++ {
		mean += float64(m) * d.PMF(m)
	}
	return mean
}

// Weighted samples from an arbitrary finite discrete distribution given by
// non-negative weights; index i is drawn with probability w[i]/sum(w).
type Weighted struct {
	cdf []float64
}

// NewWeighted builds a sampler over the given weights. It panics if weights
// is empty, contains a negative value, or sums to zero.
func NewWeighted(weights []float64) *Weighted {
	if len(weights) == 0 {
		panic("zipf: empty weights")
	}
	cdf := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("zipf: invalid weight %g at %d", w, i))
		}
		total += w
		cdf[i] = total
	}
	if total == 0 {
		panic("zipf: all weights zero")
	}
	for i := range cdf {
		cdf[i] /= total
	}
	cdf[len(cdf)-1] = 1
	return &Weighted{cdf: cdf}
}

// Sample draws an index using r.
func (w *Weighted) Sample(r *rand.Rand) int {
	u := r.Float64()
	i := sort.SearchFloat64s(w.cdf, u)
	if i >= len(w.cdf) {
		i = len(w.cdf) - 1
	}
	return i
}

// Len returns the number of outcomes.
func (w *Weighted) Len() int { return len(w.cdf) }
