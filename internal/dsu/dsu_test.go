package dsu

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSingletons(t *testing.T) {
	d := New(5)
	if d.Sets() != 5 || d.Len() != 5 {
		t.Fatalf("Sets=%d Len=%d, want 5 5", d.Sets(), d.Len())
	}
	for i := 0; i < 5; i++ {
		if d.Find(i) != i {
			t.Errorf("Find(%d) = %d", i, d.Find(i))
		}
		if d.SizeOf(i) != 1 {
			t.Errorf("SizeOf(%d) = %d", i, d.SizeOf(i))
		}
	}
}

func TestUnionBasic(t *testing.T) {
	d := New(4)
	if _, merged := d.Union(0, 1); !merged {
		t.Fatal("first union reported no merge")
	}
	if _, merged := d.Union(0, 1); merged {
		t.Fatal("repeat union reported a merge")
	}
	if !d.Same(0, 1) || d.Same(0, 2) {
		t.Error("Same wrong after union")
	}
	if d.Sets() != 3 {
		t.Errorf("Sets = %d, want 3", d.Sets())
	}
	if d.SizeOf(1) != 2 {
		t.Errorf("SizeOf = %d, want 2", d.SizeOf(1))
	}
}

func TestLazyGrowth(t *testing.T) {
	var d DSU
	d.Union(3, 7)
	if d.Len() != 8 {
		t.Fatalf("Len = %d, want 8", d.Len())
	}
	if !d.Same(3, 7) || d.Same(0, 3) {
		t.Error("lazy growth broke set structure")
	}
	if d.Sets() != 7 {
		t.Errorf("Sets = %d, want 7", d.Sets())
	}
}

func TestComponents(t *testing.T) {
	d := New(6)
	d.Union(0, 1)
	d.Union(1, 2)
	d.Union(4, 5)
	comps := d.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	sizes := make([]int, 0, 3)
	for _, c := range comps {
		sizes = append(sizes, len(c))
	}
	sort.Ints(sizes)
	want := []int{1, 2, 3}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("component sizes %v, want %v", sizes, want)
		}
	}
}

func TestReset(t *testing.T) {
	d := New(4)
	d.Union(0, 1)
	d.Union(2, 3)
	d.Reset()
	if d.Sets() != 4 {
		t.Fatalf("Sets after reset = %d", d.Sets())
	}
	if d.Same(0, 1) {
		t.Error("sets survived reset")
	}
}

// TestQuickInvariants random-walks union operations and checks the structure
// against a naive labelling.
func TestQuickInvariants(t *testing.T) {
	const n = 200
	r := rand.New(rand.NewSource(11))
	d := New(n)
	label := make([]int, n)
	for i := range label {
		label[i] = i
	}
	relabel := func(from, to int) {
		for i := range label {
			if label[i] == from {
				label[i] = to
			}
		}
	}
	for step := 0; step < 2000; step++ {
		a, b := r.Intn(n), r.Intn(n)
		_, merged := d.Union(a, b)
		if merged == (label[a] == label[b]) {
			t.Fatalf("step %d: merged=%v but labels %d,%d", step, merged, label[a], label[b])
		}
		if merged {
			relabel(label[b], label[a])
		}
		// Spot-check consistency.
		x, y := r.Intn(n), r.Intn(n)
		if d.Same(x, y) != (label[x] == label[y]) {
			t.Fatalf("step %d: Same(%d,%d) disagrees with labels", step, x, y)
		}
		sz := 0
		for i := range label {
			if label[i] == label[x] {
				sz++
			}
		}
		if d.SizeOf(x) != sz {
			t.Fatalf("step %d: SizeOf(%d)=%d, want %d", step, x, d.SizeOf(x), sz)
		}
	}
	// Set count must match distinct labels.
	distinct := make(map[int]bool)
	for _, l := range label {
		distinct[l] = true
	}
	if d.Sets() != len(distinct) {
		t.Fatalf("Sets=%d, want %d", d.Sets(), len(distinct))
	}
}
