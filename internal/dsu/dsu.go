// Package dsu implements a union-find (disjoint set union) structure with
// path compression and union by size. It is the engine behind the Disjoint
// Sets partitioning algorithm (Algorithm 1 of the paper) and the connected-
// component statistics of Section 8.2.6: tags are elements, and observing a
// tagset unions all of its tags into one component.
package dsu

// DSU maintains disjoint sets over dense integer elements 0..n-1. Elements
// are added lazily via Grow/MakeSet. The zero value is an empty structure
// ready for use.
type DSU struct {
	parent []int32
	size   []int32
	sets   int
}

// New returns a DSU pre-sized for n elements, each in its own singleton set.
func New(n int) *DSU {
	d := &DSU{}
	d.Grow(n)
	return d
}

// Grow ensures elements 0..n-1 exist, adding any missing ones as singletons.
func (d *DSU) Grow(n int) {
	for len(d.parent) < n {
		d.parent = append(d.parent, int32(len(d.parent)))
		d.size = append(d.size, 1)
		d.sets++
	}
}

// Len reports the number of elements tracked.
func (d *DSU) Len() int { return len(d.parent) }

// Sets reports the current number of disjoint sets.
func (d *DSU) Sets() int { return d.sets }

// Find returns the representative of x's set, growing the universe if x is
// new.
func (d *DSU) Find(x int) int {
	d.Grow(x + 1)
	root := x
	for d.parent[root] != int32(root) {
		root = int(d.parent[root])
	}
	// Path compression.
	for x != root {
		next := int(d.parent[x])
		d.parent[x] = int32(root)
		x = next
	}
	return root
}

// Union merges the sets containing a and b and returns the representative of
// the merged set. It reports whether a merge actually happened (false when a
// and b were already in the same set).
func (d *DSU) Union(a, b int) (root int, merged bool) {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return ra, false
	}
	if d.size[ra] < d.size[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = int32(ra)
	d.size[ra] += d.size[rb]
	d.sets--
	return ra, true
}

// Same reports whether a and b are currently in the same set.
func (d *DSU) Same(a, b int) bool { return d.Find(a) == d.Find(b) }

// SizeOf returns the number of elements in x's set.
func (d *DSU) SizeOf(x int) int { return int(d.size[d.Find(x)]) }

// Components returns, for each current set, the slice of its members.
// Element order within a component follows element id order.
func (d *DSU) Components() [][]int {
	groups := make(map[int][]int, d.sets)
	for x := range d.parent {
		r := d.Find(x)
		groups[r] = append(groups[r], x)
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		out = append(out, g)
	}
	return out
}

// Reset returns every element to its own singleton set, keeping capacity.
func (d *DSU) Reset() {
	for i := range d.parent {
		d.parent[i] = int32(i)
		d.size[i] = 1
	}
	d.sets = len(d.parent)
}
