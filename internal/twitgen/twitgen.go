// Package twitgen generates a synthetic stream of tagged documents that
// reproduces the statistics of the Twitter streams the paper evaluates on
// (Sections 5.1 and 8): the number of tags per tweet follows a bounded Zipf
// law with skew s = 0.25 and a cap of mmax tags; tags come from
// topic-specific vocabularies with Zipf-distributed within-topic
// popularity, so the tag co-occurrence graph falls apart into many small
// connected components; a configurable cross-topic mixing probability α
// creates the large-component regime the paper's theory warns about; and
// topic drift plus new-tag injection reproduce the dynamics (Section 7)
// that drive Single Additions and repartitions.
//
// The generator is fully deterministic given its seed, making every
// experiment repeatable — the role the paper's recorded 6-hour tweet file
// plays.
package twitgen

import (
	"fmt"
	"math/rand"

	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/zipf"
)

// Config parameterises the synthetic stream.
type Config struct {
	// Seed is the RNG seed; equal seeds give byte-identical streams.
	Seed int64 //vet:ok configparity -- every int64 is a valid seed
	TPS  int   // full-stream arrival rate (tweets per second of virtual time)

	// TaggedFraction is the share of tweets carrying at least one hashtag.
	// The generator emits only tagged tweets (the Parser drops the rest
	// anyway) but advances virtual time at the full TPS rate, so a
	// 5-minute window at tps=1300 holds 1300*300*TaggedFraction tagged
	// documents — matching the paper's observation that of ~15M daily
	// tweets only ~700k are distinct tagged ones (≈5%).
	TaggedFraction float64

	Topics       int     // number of topic vocabularies
	TagsPerTopic int     // initial tags per topic
	TopicSkew    float64 // Zipf skew of topic popularity
	TagSkew      float64 // Zipf skew of within-topic tag popularity

	LengthSkew float64 // Zipf skew of tags-per-tweet (paper: 0.25)
	MaxTags    int     // cap on tags per tweet (paper: 8)

	// MixProb is the probability that an individual tag is drawn from a
	// random other topic instead of the tweet's topic, linking topic
	// vocabularies (the paper's 1-α joint-vocabulary discussion, §5.1).
	MixProb float64

	// NewTagProb is the probability that a tag slot introduces a brand-new
	// tag into the tweet's topic, growing the vocabulary over time and
	// producing the unseen tagsets that trigger Single Additions.
	NewTagProb float64

	// DriftInterval rotates topic popularity every interval of virtual
	// time, modelling content drift; 0 disables drift.
	DriftInterval stream.Millis
}

// Default returns the configuration used by the experiments: calibrated to
// the stream statistics the paper reports (s=0.25, mmax=8, topical
// clustering with light mixing and drift).
func Default() Config {
	return Config{
		Seed:           1,
		TPS:            1300,
		TaggedFraction: 0.05,
		Topics:         5000,
		TagsPerTopic:   12,
		TopicSkew:      1.0,
		TagSkew:        1.0,
		LengthSkew:     0.25,
		MaxTags:        8,
		MixProb:        0.003,
		NewTagProb:     0.01,
		DriftInterval:  stream.Minutes(2),
	}
}

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.TPS <= 0:
		return fmt.Errorf("twitgen: TPS = %d", c.TPS)
	case c.TaggedFraction <= 0 || c.TaggedFraction > 1:
		return fmt.Errorf("twitgen: TaggedFraction = %g", c.TaggedFraction)
	case int(float64(c.TPS)*c.TaggedFraction) < 1:
		return fmt.Errorf("twitgen: TPS*TaggedFraction = %g < 1 tagged tweet/s",
			float64(c.TPS)*c.TaggedFraction)
	case c.Topics <= 0:
		return fmt.Errorf("twitgen: Topics = %d", c.Topics)
	case c.TagsPerTopic <= 0:
		return fmt.Errorf("twitgen: TagsPerTopic = %d", c.TagsPerTopic)
	case c.MaxTags < 1 || c.MaxTags > 16:
		return fmt.Errorf("twitgen: MaxTags = %d (want 1..16)", c.MaxTags)
	case c.TopicSkew < 0:
		return fmt.Errorf("twitgen: TopicSkew = %g", c.TopicSkew)
	case c.TagSkew < 0:
		return fmt.Errorf("twitgen: TagSkew = %g", c.TagSkew)
	case c.LengthSkew < 0:
		return fmt.Errorf("twitgen: LengthSkew = %g", c.LengthSkew)
	case c.MixProb < 0 || c.MixProb > 1:
		return fmt.Errorf("twitgen: MixProb = %g", c.MixProb)
	case c.NewTagProb < 0 || c.NewTagProb > 1:
		return fmt.Errorf("twitgen: NewTagProb = %g", c.NewTagProb)
	case c.DriftInterval < 0:
		return fmt.Errorf("twitgen: DriftInterval = %d", c.DriftInterval)
	}
	return nil
}

// Generator produces the document stream.
type Generator struct {
	cfg    Config
	dict   *tagset.Dictionary
	rng    *rand.Rand
	clock  *stream.Clock
	length *zipf.Dist

	topics     [][]tagset.Tag // per-topic vocabulary
	topicOrder []int          // popularity rank -> topic index (rotated by drift)
	topicDist  *zipf.Dist
	tagDists   map[int]*zipf.Dist // per-vocabulary-size tag sampler cache

	nextID    uint64
	nextDrift stream.Millis
	newTags   int
}

// New constructs a generator. Tags are interned into dict so that
// downstream components and the caller share one namespace.
func New(cfg Config, dict *tagset.Dictionary) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		cfg:       cfg,
		dict:      dict,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		clock:     stream.NewClock(int(float64(cfg.TPS) * cfg.TaggedFraction)),
		length:    zipf.New(cfg.MaxTags, cfg.LengthSkew),
		topicDist: zipf.New(cfg.Topics, cfg.TopicSkew),
		tagDists:  make(map[int]*zipf.Dist),
	}
	g.topics = make([][]tagset.Tag, cfg.Topics)
	g.topicOrder = make([]int, cfg.Topics)
	for i := range g.topics {
		g.topicOrder[i] = i
		vocab := make([]tagset.Tag, cfg.TagsPerTopic)
		for j := range vocab {
			vocab[j] = dict.Intern(fmt.Sprintf("t%d_%d", i, j))
		}
		g.topics[i] = vocab
	}
	if cfg.DriftInterval > 0 {
		g.nextDrift = cfg.DriftInterval
	}
	return g, nil
}

// Dict returns the tag dictionary the generator interns into.
func (g *Generator) Dict() *tagset.Dictionary { return g.dict }

// NewTagsIntroduced reports how many brand-new tags drift has injected.
func (g *Generator) NewTagsIntroduced() int { return g.newTags }

// Next produces the next document. Every document has at least one tag
// (untagged tweets never enter the topology: the Parser drops them, so the
// generator models the tagged sub-stream directly).
func (g *Generator) Next() stream.Document {
	t := g.clock.Next()
	g.maybeDrift(t)

	topic := g.topicOrder[g.topicDist.Sample(g.rng)-1]
	m := g.length.Sample(g.rng)

	tags := make([]tagset.Tag, 0, m)
	for len(tags) < m {
		tg := g.drawTag(topic)
		dup := false
		for _, have := range tags {
			if have == tg {
				dup = true
				break
			}
		}
		if !dup {
			tags = append(tags, tg)
		}
	}
	g.nextID++
	return stream.Document{ID: g.nextID, Time: t, Tags: tagset.New(tags...)}
}

// drawTag picks one tag for a tweet of the given topic, applying mixing and
// new-tag injection.
func (g *Generator) drawTag(topic int) tagset.Tag {
	if g.cfg.NewTagProb > 0 && g.rng.Float64() < g.cfg.NewTagProb {
		idx := len(g.topics[topic])
		tg := g.dict.Intern(fmt.Sprintf("t%d_%d", topic, idx))
		g.topics[topic] = append(g.topics[topic], tg)
		g.newTags++
		return tg
	}
	if g.cfg.MixProb > 0 && g.cfg.Topics > 1 && g.rng.Float64() < g.cfg.MixProb {
		other := g.rng.Intn(g.cfg.Topics - 1)
		if other >= topic {
			other++
		}
		topic = other
	}
	vocab := g.topics[topic]
	d := g.tagDists[len(vocab)]
	if d == nil {
		d = zipf.New(len(vocab), g.cfg.TagSkew)
		g.tagDists[len(vocab)] = d
	}
	return vocab[d.Sample(g.rng)-1]
}

// maybeDrift models bursty content drift at every drift boundary: a topic
// from the cold tail of the popularity ranking surges to the top rank
// (an emerging event), pushing every hotter topic down one rank. Partitions
// formed before the burst carry the surging topic's tags on whichever node
// happened to hold its (previously cold) component — the load- and
// communication-degradation source of Section 7.
func (g *Generator) maybeDrift(now stream.Millis) {
	if g.cfg.DriftInterval <= 0 {
		return
	}
	for now >= g.nextDrift {
		n := len(g.topicOrder)
		pick := n/2 + g.rng.Intn(n-n/2)
		surging := g.topicOrder[pick]
		copy(g.topicOrder[1:pick+1], g.topicOrder[:pick])
		g.topicOrder[0] = surging
		// The emerging event mints fresh hashtags that immediately rank
		// among the topic's hottest (inserted at the head of the
		// popularity order) — the unseen tag combinations that drive
		// Single Additions and partition-quality decay (Section 7).
		if g.cfg.NewTagProb > 0 {
			vocab := g.topics[surging]
			for j := 0; j < 2; j++ {
				tg := g.dict.Intern(fmt.Sprintf("t%d_%d", surging, len(vocab)))
				vocab = append(vocab, 0)
				copy(vocab[1:], vocab)
				vocab[0] = tg
				g.newTags++
			}
			g.topics[surging] = vocab
		}
		g.nextDrift += g.cfg.DriftInterval
	}
}

// Generate produces the next n documents as a slice.
func (g *Generator) Generate(n int) []stream.Document {
	docs := make([]stream.Document, n)
	for i := range docs {
		docs[i] = g.Next()
	}
	return docs
}
