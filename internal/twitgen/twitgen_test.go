package twitgen

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/theory"
)

func mustGen(t *testing.T, cfg Config) *Generator {
	t.Helper()
	g, err := New(cfg, tagset.NewDictionary())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.TPS = 0 },
		func(c *Config) { c.Topics = 0 },
		func(c *Config) { c.TagsPerTopic = 0 },
		func(c *Config) { c.MaxTags = 0 },
		func(c *Config) { c.MaxTags = 30 },
		func(c *Config) { c.LengthSkew = -1 },
		func(c *Config) { c.MixProb = 1.5 },
		func(c *Config) { c.NewTagProb = -0.1 },
		// Negative skews would panic inside zipf.New; negative drift would
		// loop maybeDrift forever — the gaps configparity surfaced.
		func(c *Config) { c.TopicSkew = -0.5 },
		func(c *Config) { c.TagSkew = -0.5 },
		func(c *Config) { c.DriftInterval = -1 },
	}
	for i, mutate := range bad {
		cfg := Default()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if Default().Validate() != nil {
		t.Error("default config rejected")
	}
}

func TestDeterminism(t *testing.T) {
	a := mustGen(t, Default())
	b := mustGen(t, Default())
	for i := 0; i < 500; i++ {
		da, db := a.Next(), b.Next()
		if da.ID != db.ID || da.Time != db.Time || !da.Tags.Equal(db.Tags) {
			t.Fatalf("doc %d diverged: %+v vs %+v", i, da, db)
		}
	}
	cfg := Default()
	cfg.Seed = 2
	c := mustGen(t, cfg)
	same := true
	for i := 0; i < 50; i++ {
		if !a.Next().Tags.Equal(c.Next().Tags) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestDocumentShape(t *testing.T) {
	g := mustGen(t, Default())
	var last stream.Millis = -1
	for i := 0; i < 2000; i++ {
		d := g.Next()
		if d.Tags.Len() < 1 || d.Tags.Len() > 8 {
			t.Fatalf("doc with %d tags", d.Tags.Len())
		}
		if d.Time < last {
			t.Fatalf("time went backwards: %d after %d", d.Time, last)
		}
		last = d.Time
		if d.ID != uint64(i+1) {
			t.Fatalf("ID = %d, want %d", d.ID, i+1)
		}
	}
}

// TestLengthDistribution verifies the Zipf(s=0.25) tags-per-tweet shape the
// paper measured: decreasing frequency in m with mild skew.
func TestLengthDistribution(t *testing.T) {
	cfg := Default()
	cfg.NewTagProb = 0
	g := mustGen(t, cfg)
	counts := make([]int, cfg.MaxTags+1)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[g.Next().Tags.Len()]++
	}
	for m := 2; m <= cfg.MaxTags; m++ {
		if counts[m] > counts[m-1] {
			t.Errorf("length %d more frequent than %d (%d vs %d)", m, m-1, counts[m], counts[m-1])
		}
	}
	// Compare against the theoretical pmf within 2 percentage points.
	for m := 1; m <= cfg.MaxTags; m++ {
		want := theory.TweetLengthPMF(m, cfg.MaxTags, cfg.LengthSkew)
		got := float64(counts[m]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("P(len=%d) = %.3f, model %.3f", m, got, want)
		}
	}
}

// TestTopicalComponents checks the structural property the whole paper
// rests on: with topic vocabularies and little mixing, a short window's tag
// graph has many small connected components.
func TestTopicalComponents(t *testing.T) {
	cfg := Default()
	cfg.MixProb = 0
	cfg.NewTagProb = 0
	cfg.DriftInterval = 0
	g := mustGen(t, cfg)
	docs := g.Generate(5000)
	st := graph.WindowStats(docs)
	if st.Components < 50 {
		t.Errorf("only %d components; topical clustering broken", st.Components)
	}
	// No mixing: no component can span two topic vocabularies, so no
	// component exceeds one topic's tag count.
	if st.LargestTags > cfg.TagsPerTopic {
		t.Errorf("largest component has %d tags > topic size %d", st.LargestTags, cfg.TagsPerTopic)
	}
}

// TestMixingGrowsComponents checks the α<1 giant-component regime: raising
// MixProb must produce a dominant connected component.
func TestMixingGrowsComponents(t *testing.T) {
	base := Default()
	base.MixProb = 0
	base.NewTagProb = 0
	mixed := base
	mixed.MixProb = 0.3
	g0 := mustGen(t, base)
	g1 := mustGen(t, mixed)
	s0 := graph.WindowStats(g0.Generate(8000))
	s1 := graph.WindowStats(g1.Generate(8000))
	if s1.MaxTagsShare <= s0.MaxTagsShare {
		t.Errorf("mixing did not grow the largest component: %.3f vs %.3f",
			s1.MaxTagsShare, s0.MaxTagsShare)
	}
	if s1.MaxTagsShare < 0.5 {
		t.Errorf("30%% mixing should produce a giant component; share = %.3f", s1.MaxTagsShare)
	}
}

func TestNewTagInjection(t *testing.T) {
	cfg := Default()
	cfg.NewTagProb = 0.05
	g := mustGen(t, cfg)
	dictBefore := g.Dict().Len()
	g.Generate(5000)
	if g.NewTagsIntroduced() == 0 {
		t.Error("no new tags introduced at 5% injection")
	}
	if g.Dict().Len() <= dictBefore {
		t.Error("dictionary did not grow")
	}
	cfgOff := Default()
	cfgOff.NewTagProb = 0
	g2 := mustGen(t, cfgOff)
	g2.Generate(5000)
	if g2.NewTagsIntroduced() != 0 {
		t.Error("new tags introduced with injection disabled")
	}
}

// TestDriftShiftsTopics: with drift enabled, the set of dominant tags in an
// early window differs from a late window.
func TestDriftShiftsTopics(t *testing.T) {
	cfg := Default()
	cfg.DriftInterval = stream.Minutes(1)
	cfg.NewTagProb = 0
	g := mustGen(t, cfg)
	topTags := func(docs []stream.Document) map[tagset.Tag]int {
		counts := make(map[tagset.Tag]int)
		for _, d := range docs {
			for _, tg := range d.Tags {
				counts[tg]++
			}
		}
		return counts
	}
	early := topTags(g.Generate(10000))
	// Skip ahead several drift intervals.
	for i := 0; i < 40000; i++ {
		g.Next()
	}
	late := topTags(g.Generate(10000))
	// The most frequent early tag should have lost prominence.
	var maxTag tagset.Tag
	maxN := 0
	for tg, n := range early {
		if n > maxN {
			maxTag, maxN = tg, n
		}
	}
	if late[maxTag] >= maxN {
		t.Errorf("dominant tag kept count %d -> %d despite drift", maxN, late[maxTag])
	}
}

func TestTPSPacing(t *testing.T) {
	cfg := Default()
	cfg.TPS = 1300
	cfg.TaggedFraction = 0.05
	g := mustGen(t, cfg)
	docs := g.Generate(6500)
	elapsed := docs[len(docs)-1].Time - docs[0].Time
	// 6500 tagged docs at 1300*0.05 = 65 tagged/s ≈ 100 seconds.
	if elapsed < 98000 || elapsed > 102000 {
		t.Errorf("6500 docs spanned %dms, want ≈ 100000", elapsed)
	}
	// A 5-minute window at the default rate holds ~19500 tagged docs.
	cfg2 := Default()
	g2 := mustGen(t, cfg2)
	n := 0
	for d := g2.Next(); d.Time < 5*60*1000; d = g2.Next() {
		n++
	}
	if n < 19000 || n > 20000 {
		t.Errorf("5-minute window holds %d tagged docs, want ≈ 19500", n)
	}
}

func TestTaggedFractionValidation(t *testing.T) {
	cfg := Default()
	cfg.TaggedFraction = 0
	if cfg.Validate() == nil {
		t.Error("zero TaggedFraction accepted")
	}
	cfg = Default()
	cfg.TPS = 10
	cfg.TaggedFraction = 0.01 // 0.1 tagged/s → invalid
	if cfg.Validate() == nil {
		t.Error("sub-1 tagged rate accepted")
	}
}
