package load

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestStreamDeterminism is the acceptance check for suite generators: the
// same seed must produce the identical document stream (id, timestamp and
// tags, document for document) across independent generator instances, and
// a different seed must not.
func TestStreamDeterminism(t *testing.T) {
	const n = 3000
	for _, s := range Suites() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			h1, err := s.StreamHash(7, n)
			if err != nil {
				t.Fatal(err)
			}
			h2, err := s.StreamHash(7, n)
			if err != nil {
				t.Fatal(err)
			}
			if h1 != h2 {
				t.Fatalf("suite %s: same seed produced different streams: %x vs %x", s.Name, h1, h2)
			}
			h3, err := s.StreamHash(8, n)
			if err != nil {
				t.Fatal(err)
			}
			if h1 == h3 {
				t.Fatalf("suite %s: different seeds produced identical streams (%x)", s.Name, h1)
			}
		})
	}
}

// TestSuitesBothDrivers runs every workload suite against both drivers —
// direct in-process handler calls and a live HTTP server on loopback —
// with a short stream, and requires a schema-valid report from each.
func TestSuitesBothDrivers(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite×driver matrix skipped in -short")
	}
	for _, s := range Suites() {
		if s.Name == "smoke" {
			continue // covered (at full size) by TestSmokeSuiteReport
		}
		for _, mode := range []Mode{ModeInproc, ModeHTTP} {
			s, mode := s, mode
			t.Run(s.Name+"/"+string(mode), func(t *testing.T) {
				rep, err := Run(s, Options{Mode: mode, Seed: 3, Docs: 1500, QueryWorkers: 1})
				if err != nil {
					t.Fatal(err)
				}
				if err := rep.Validate(); err != nil {
					t.Fatalf("suite %s over %s: invalid report: %v", s.Name, mode, err)
				}
				if got, want := rep.Mode, string(mode); got != want {
					t.Fatalf("report mode = %q, want %q", got, want)
				}
				if rep.Docs != 1500 {
					t.Fatalf("report docs = %d, want 1500", rep.Docs)
				}
				if rep.Queries["topk"].Count == 0 {
					t.Fatalf("suite %s over %s: no /topk queries recorded", s.Name, mode)
				}
				// Server-side route latency is a wire-mode quantity: the
				// /metrics scrape fills it over TCP and leaves it out when
				// the handler was invoked directly.
				if mode == ModeHTTP {
					if _, ok := rep.Routes["/topk"]; !ok {
						t.Fatalf("suite %s over http: report carries no /topk route stats", s.Name)
					}
				} else if rep.Routes != nil {
					t.Fatalf("suite %s inproc: unexpected route stats %v", s.Name, rep.Routes)
				}
			})
		}
	}
}

// TestSmokeSuiteReport is the Go-test face of `loadgen -suite smoke`: the
// CI suite at a reduced stream length must produce a schema-valid report
// with every headline quantity populated.
func TestSmokeSuiteReport(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke suite run skipped in -short")
	}
	s, ok := Lookup("smoke")
	if !ok {
		t.Fatal("smoke suite missing")
	}
	// Paced: an unpaced replay on a fast machine can drain the stream
	// before the first partitioning installs, in which case no coefficient
	// ever reaches the Tracker and the report legitimately carries zero
	// periods. The ceiling keeps the replay slow enough that partitioning
	// engages deterministically, making periods >= 1 assertable.
	metricsOut := filepath.Join(t.TempDir(), "METRICS_smoke.prom")
	rep, err := Run(s, Options{Seed: 1, Docs: 5000, MaxDocsPerSec: 2000, MetricsOut: metricsOut})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("invalid report: %v", err)
	}
	if rep.Schema != Schema {
		t.Fatalf("report schema = %q, want %q", rep.Schema, Schema)
	}
	if rep.IngestDocsPerSec <= 0 {
		t.Fatalf("ingest_docs_per_sec = %g", rep.IngestDocsPerSec)
	}
	if rep.Periods < 1 {
		t.Fatalf("periods = %d, want >= 1", rep.Periods)
	}
	if rep.Checkpoints < 1 {
		t.Fatalf("checkpoints = %d, want >= 1 (smoke archives)", rep.Checkpoints)
	}
	if rep.SnapshotAgeMSMax < 0 || rep.SnapshotAgeMSLast < 0 {
		t.Fatalf("negative snapshot age: max %d last %d", rep.SnapshotAgeMSMax, rep.SnapshotAgeMSLast)
	}
	for _, ep := range []string{"topk", "trends", "pairs", "history"} {
		if _, ok := rep.Queries[ep]; !ok {
			t.Fatalf("report missing endpoint %q", ep)
		}
	}
	if rep.Queries["topk"].Count == 0 || rep.Queries["trends"].Count == 0 {
		t.Fatalf("no queries recorded: topk=%d trends=%d",
			rep.Queries["topk"].Count, rep.Queries["trends"].Count)
	}

	// The v2 stage-latency section is read back from /metrics: the paced
	// run crossed period boundaries (periods >= 1 above), so documents
	// flowed through every stage.
	for _, stage := range []string{"doc_partition", "doc_coefficient", "doc_tracker_accept"} {
		st, ok := rep.StageLatency[stage]
		if !ok || st.Count == 0 {
			t.Fatalf("stage_latency[%s] = %+v, want count > 0 (have %v)", stage, st, rep.StageLatency)
		}
		if st.P50MS <= 0 || st.P99MS < st.P50MS {
			t.Fatalf("stage_latency[%s]: implausible quantiles %+v", stage, st)
		}
	}

	// MetricsOut dumped the raw scrape, and it parses.
	dump, err := os.ReadFile(metricsOut)
	if err != nil {
		t.Fatalf("-metrics-out dump: %v", err)
	}
	fams, err := telemetry.ParseText(bytes.NewReader(dump))
	if err != nil {
		t.Fatalf("-metrics-out dump unparseable: %v", err)
	}
	if len(fams) < 25 {
		t.Fatalf("-metrics-out dump has %d families, want >= 25", len(fams))
	}

	// Round-trip through the file format the CI gate consumes.
	dir := t.TempDir()
	path, err := rep.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_smoke.json" {
		t.Fatalf("report file = %s, want BENCH_smoke.json", filepath.Base(path))
	}
	back, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.IngestDocsPerSec != rep.IngestDocsPerSec {
		t.Fatalf("round-trip changed ingest: %g vs %g", back.IngestDocsPerSec, rep.IngestDocsPerSec)
	}
}

func TestCompareIngest(t *testing.T) {
	base := &Report{Suite: "smoke", IngestDocsPerSec: 1000}
	ok := &Report{Suite: "smoke", IngestDocsPerSec: 800}
	if err := CompareIngest(base, ok, 0.25); err != nil {
		t.Fatalf("800 vs 1000 at 25%% should pass: %v", err)
	}
	bad := &Report{Suite: "smoke", IngestDocsPerSec: 700}
	if err := CompareIngest(base, bad, 0.25); err == nil {
		t.Fatal("700 vs 1000 at 25% should fail")
	}
	other := &Report{Suite: "steady", IngestDocsPerSec: 1000}
	if err := CompareIngest(base, other, 0.25); err == nil {
		t.Fatal("mismatched suites should fail")
	}
}

func TestReportValidate(t *testing.T) {
	valid := func() *Report {
		return &Report{
			Schema:           Schema,
			Suite:            "smoke",
			Mode:             "inproc",
			Docs:             100,
			DurationSec:      1,
			IngestDocsPerSec: 100,
			Queries:          map[string]EndpointStats{"topk": {Count: 1, P50MS: 0.1, P99MS: 0.2}},
		}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	r := valid()
	r.Schema = SchemaV1
	if err := r.Validate(); err != nil {
		t.Fatalf("v1 report (committed baselines) rejected: %v", err)
	}
	r = valid()
	r.Schema = "tagcorr-bench/0"
	if err := r.Validate(); err == nil {
		t.Fatal("unknown schema accepted")
	}
	r = valid()
	r.StageLatency = map[string]StageStats{"doc_partition": {Count: 5, P50MS: 2, P99MS: 1}}
	if err := r.Validate(); err == nil {
		t.Fatal("inverted stage quantiles accepted")
	}
	r = valid()
	r.IngestDocsPerSec = 0
	if err := r.Validate(); err == nil {
		t.Fatal("zero throughput accepted")
	}
	r = valid()
	r.Queries = nil
	if err := r.Validate(); err == nil {
		t.Fatal("missing query stats accepted")
	}
	r = valid()
	r.SnapshotAgeMSMax = -1
	if err := r.Validate(); err == nil {
		t.Fatal("negative snapshot age accepted")
	}
}

func TestReadReportRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_x.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil {
		t.Fatal("corrupt report accepted")
	}
}

func TestHistQuantiles(t *testing.T) {
	h := NewHist()
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < 400*time.Microsecond || p50 > 650*time.Microsecond {
		t.Fatalf("p50 = %v, want ~500µs", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900*time.Microsecond || p99 > 1300*time.Microsecond {
		t.Fatalf("p99 = %v, want ~990µs", p99)
	}
	if p99 < p50 {
		t.Fatalf("p99 %v < p50 %v", p99, p50)
	}
	st := h.Stats()
	if st.MaxMS < 0.9 || st.Count != 1000 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
	h.RecordError()
	if h.Errors() != 1 {
		t.Fatalf("errors = %d", h.Errors())
	}

	empty := NewHist()
	if q := empty.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}
