package load

import (
	"bytes"
	"fmt"
	"net/http"
	"os"

	"repro/internal/telemetry"
)

// stageNames lists the end-to-end stage histograms the v2 report reads
// back from /metrics, in pipeline order.
var stageNames = []string{"doc_partition", "doc_coefficient", "doc_tracker_accept"}

// scrapeMetrics fetches and parses the service's /metrics exposition.
// A 404 (a pre-telemetry tagcorrd behind -target) returns nil families
// without error — the v2 sections are optional; anything else that is
// not a clean parseable 200 is an error, since a served-but-broken
// exposition is exactly what the harness should catch.
func scrapeMetrics(cl client) (raw []byte, fams map[string]*telemetry.Family, err error) {
	status, body, err := cl.get("/metrics")
	if err != nil {
		return nil, nil, fmt.Errorf("load: GET /metrics: %w", err)
	}
	if status == http.StatusNotFound {
		return nil, nil, nil
	}
	if status != http.StatusOK {
		return nil, nil, fmt.Errorf("load: GET /metrics: status %d", status)
	}
	fams, err = telemetry.ParseText(bytes.NewReader(body))
	if err != nil {
		return nil, nil, fmt.Errorf("load: /metrics exposition: %w", err)
	}
	return body, fams, nil
}

// stageLatency extracts the ingest-to-stage percentiles from a parsed
// scrape. Stages with no samples (or absent families) are omitted.
func stageLatency(fams map[string]*telemetry.Family) map[string]StageStats {
	out := map[string]StageStats{}
	for _, stage := range stageNames {
		f, ok := fams["tagcorr_stage_"+stage+"_seconds"]
		if !ok {
			continue
		}
		d, ok := f.Histogram(map[string]string{"stage": stage})
		if !ok || d.Count == 0 {
			continue
		}
		out[stage] = StageStats{
			Count: int64(d.Count),
			P50MS: d.Quantile(0.50) * 1e3,
			P95MS: d.Quantile(0.95) * 1e3,
			P99MS: d.Quantile(0.99) * 1e3,
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// routeLatency extracts the server-side per-route latency summaries from
// the tagcorr_http_request_seconds family. Routes that served nothing
// are omitted; quantiles and max come from the cumulative buckets, so
// they are upper bounds (ratio-1.2 log buckets).
func routeLatency(fams map[string]*telemetry.Family) map[string]EndpointStats {
	f, ok := fams["tagcorr_http_request_seconds"]
	if !ok {
		return nil
	}
	routes := map[string]bool{}
	for _, s := range f.Samples {
		if r := s.Labels["route"]; r != "" {
			routes[r] = true
		}
	}
	out := map[string]EndpointStats{}
	for r := range routes {
		d, ok := f.Histogram(map[string]string{"route": r})
		if !ok || d.Count == 0 {
			continue
		}
		st := EndpointStats{
			Count: int64(d.Count),
			P50MS: d.Quantile(0.50) * 1e3,
			P95MS: d.Quantile(0.95) * 1e3,
			P99MS: d.Quantile(0.99) * 1e3,
			MaxMS: d.Quantile(1) * 1e3,
		}
		st.MeanMS = d.Sum / d.Count * 1e3
		out[r] = st
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// attachMetrics performs the end-of-run /metrics scrape and fills the
// report's v2 sections: stage latency always (it measures the pipeline,
// not the transport), per-route server-side latency only when the run
// went over a real wire (ModeHTTP or an external target) — that is when
// the client-side Queries numbers include transport cost worth
// separating. With metricsOut set, the raw exposition is written there
// for offline diffing.
func attachMetrics(cl client, rep *Report, overWire bool, metricsOut string) error {
	raw, fams, err := scrapeMetrics(cl)
	if err != nil {
		return err
	}
	if fams == nil {
		if metricsOut != "" {
			return fmt.Errorf("load: -metrics-out: target serves no /metrics endpoint")
		}
		return nil
	}
	rep.StageLatency = stageLatency(fams)
	if overWire {
		rep.Routes = routeLatency(fams)
	}
	if metricsOut != "" {
		if err := os.WriteFile(metricsOut, raw, 0o644); err != nil {
			return fmt.Errorf("load: %w", err)
		}
	}
	return nil
}
