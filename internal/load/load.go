// Package load is the sustained-load benchmark harness behind cmd/loadgen:
// named workload suites (deterministic seeded tag-stream generators in the
// twitgen style), drivers that push a suite through either the in-process
// core.Pipeline or a live tagcorrd over HTTP while concurrent query loops
// hammer the read endpoints, per-endpoint latency histograms, and a
// schema-versioned BENCH_<suite>.json report writer.
//
// The paper's evaluation (Section 8) is about sustained streaming behavior
// — communication per document, load balance, detection latency under
// realistic tag streams. This package turns those one-off measurements
// into a repeatable trajectory: every suite is fully deterministic per
// seed (same seed, same document stream, byte for byte), so a BENCH file
// committed by one PR is directly comparable to the next PR's run, and CI
// gates on the smoke suite's ingest throughput against the committed
// baseline.
package load

import (
	"fmt"
	"hash/fnv"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/twitgen"
)

// Suite is one named workload: a deterministic generator configuration,
// the stream length to push, and the pipeline knobs the scenario is meant
// to stress. Suites are values — copy and tweak freely.
type Suite struct {
	Name        string
	Description string

	// Docs is the number of generated documents the driver feeds (the
	// -docs flag overrides it).
	Docs int

	// QueryWorkers is the number of concurrent query loops per read
	// endpoint while the stream is ingesting.
	QueryWorkers int

	// GenConfig returns the suite's generator configuration for a seed.
	// Equal seeds must yield byte-identical streams; the determinism test
	// asserts it across every suite.
	GenConfig func(seed int64) twitgen.Config

	// Tune applies the suite's pipeline knob overrides on top of the
	// harness service defaults (fan-out, retention, trend detection).
	Tune func(cfg *core.Config)

	// Archive runs the suite with the durability subsystem on (segments +
	// periodic checkpoints in a scratch directory), so checkpoint stall
	// and the /history endpoints are exercised under load.
	Archive bool
}

// Source builds the suite's deterministic document source, interning tags
// into dict. n caps the stream (0 uses Suite.Docs).
func (s Suite) Source(seed int64, n int, dict *tagset.Dictionary) (core.DocumentSource, error) {
	if n <= 0 {
		n = s.Docs
	}
	gen, err := twitgen.New(s.GenConfig(seed), dict)
	if err != nil {
		return nil, fmt.Errorf("load: suite %s: %w", s.Name, err)
	}
	return core.GeneratorSource(gen.Next, n), nil
}

// StreamHash fingerprints the first n documents of the suite's stream for
// a seed: id, timestamp and tag identifiers all feed the hash, so two
// streams collide only if they are identical document for document. The
// determinism acceptance test compares hashes across independent
// generator instances.
func (s Suite) StreamHash(seed int64, n int) (uint64, error) {
	dict := tagset.NewDictionary()
	src, err := s.Source(seed, n, dict)
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for {
		d, ok := src()
		if !ok {
			break
		}
		put(d.ID)
		put(uint64(d.Time))
		put(uint64(d.Tags.Len()))
		for _, t := range d.Tags {
			put(uint64(t))
		}
	}
	return h.Sum64(), nil
}

// serviceReportEvery is the virtual reporting period the suites run with:
// short enough that a bounded run crosses many period boundaries (period
// pruning, checkpoints and /history all get exercised), long enough that
// Calculator tables amortize.
var (
	smokeReportEvery = stream.Seconds(30)
	fullReportEvery  = stream.Seconds(60)
)

// Suites returns the named workload suites in their canonical order.
func Suites() []Suite {
	return []Suite{smokeSuite(), steadySuite(), burstySuite(), driftSuite(), adversarialSuite()}
}

// Lookup resolves a suite by name.
func Lookup(name string) (Suite, bool) {
	for _, s := range Suites() {
		if s.Name == name {
			return s, true
		}
	}
	return Suite{}, false
}

// Names lists the suite names in canonical order.
func Names() []string {
	suites := Suites()
	out := make([]string, len(suites))
	for i, s := range suites {
		out[i] = s.Name
	}
	return out
}

// smokeSuite is the CI suite: a scaled-down steady workload with archiving
// on, cheap enough for every pull request (and the Go test wrapper) yet
// touching every measured quantity — multiple reporting periods,
// checkpoints, all four query families.
func smokeSuite() Suite {
	return Suite{
		Name:         "smoke",
		Description:  "CI smoke: small steady Zipf stream with archiving and checkpoints",
		Docs:         15000,
		QueryWorkers: 2,
		Archive:      true,
		GenConfig: func(seed int64) twitgen.Config {
			cfg := twitgen.Default()
			cfg.Seed = seed
			return cfg
		},
		Tune: func(cfg *core.Config) {
			cfg.ReportEvery = smokeReportEvery
			cfg.WindowSpan = smokeReportEvery
		},
	}
}

// steadySuite is the baseline capacity workload: stationary Zipf topic and
// tag popularity, no drift, no vocabulary growth. Throughput here is the
// "docs/sec per core" headline number — nothing but steady-state hot-path
// cost.
func steadySuite() Suite {
	return Suite{
		Name:         "steady",
		Description:  "stationary Zipf topics and tags; no drift, no new vocabulary",
		Docs:         120000,
		QueryWorkers: 4,
		Archive:      true,
		GenConfig: func(seed int64) twitgen.Config {
			cfg := twitgen.Default()
			cfg.Seed = seed
			cfg.DriftInterval = 0
			cfg.NewTagProb = 0
			return cfg
		},
		Tune: func(cfg *core.Config) {
			cfg.ReportEvery = fullReportEvery
			cfg.WindowSpan = fullReportEvery
		},
	}
}

// burstySuite is the flash-crowd workload: every 30 virtual seconds a cold
// topic surges to the top popularity rank with freshly minted hashtags
// (twitgen's drift burst), the Section 7 dynamics that trigger Single
// Additions and repartitions. Stresses the repartition path and the trend
// detector's event fan-out under rapid popularity shifts.
func burstySuite() Suite {
	return Suite{
		Name:         "bursty",
		Description:  "flash crowds: a cold topic surges to rank 1 every 30 virtual seconds",
		Docs:         120000,
		QueryWorkers: 4,
		Archive:      true,
		GenConfig: func(seed int64) twitgen.Config {
			cfg := twitgen.Default()
			cfg.Seed = seed
			cfg.TopicSkew = 1.2
			cfg.NewTagProb = 0.02
			cfg.DriftInterval = stream.Seconds(30)
			return cfg
		},
		Tune: func(cfg *core.Config) {
			cfg.ReportEvery = fullReportEvery
			cfg.WindowSpan = fullReportEvery
		},
	}
}

// driftSuite is the drifting-vocabulary workload: sustained topic rotation
// plus steady new-tag injection grow and shift the vocabulary for the
// whole run. Stresses dictionary growth, unseen-tagset handling (Single
// Additions) and partition-quality decay.
func driftSuite() Suite {
	return Suite{
		Name:         "drift",
		Description:  "drifting vocabulary: constant topic rotation and new-tag injection",
		Docs:         120000,
		QueryWorkers: 4,
		Archive:      true,
		GenConfig: func(seed int64) twitgen.Config {
			cfg := twitgen.Default()
			cfg.Seed = seed
			cfg.NewTagProb = 0.05
			cfg.DriftInterval = stream.Seconds(45)
			return cfg
		},
		Tune: func(cfg *core.Config) {
			cfg.ReportEvery = fullReportEvery
			cfg.WindowSpan = fullReportEvery
		},
	}
}

// adversarialSuite is the high-cardinality workload: many small topic
// vocabularies with near-uniform popularity, heavy cross-topic mixing and
// aggressive new-tag minting, under the maximum tags-per-document the
// generator allows. The co-occurrence graph stays close to one giant
// component — the regime the paper's theory warns about — and the pair
// space explodes, stressing Tracker sharding, retention pruning and the
// evicted-pair LRU.
func adversarialSuite() Suite {
	return Suite{
		Name:         "adversarial",
		Description:  "high-cardinality tags: near-uniform popularity, heavy mixing, max tags per doc",
		Docs:         80000,
		QueryWorkers: 4,
		Archive:      true,
		GenConfig: func(seed int64) twitgen.Config {
			cfg := twitgen.Default()
			cfg.Seed = seed
			cfg.Topics = 20000
			cfg.TagsPerTopic = 4
			cfg.TopicSkew = 0.3
			cfg.TagSkew = 0.2
			cfg.MixProb = 0.2
			cfg.NewTagProb = 0.1
			cfg.MaxTags = 16
			cfg.LengthSkew = 0.1
			return cfg
		},
		Tune: func(cfg *core.Config) {
			cfg.ReportEvery = fullReportEvery
			cfg.WindowSpan = fullReportEvery
			// Let the full 16-tag documents through the Parser: truncation
			// would blunt the high-cardinality attack.
			cfg.MaxTags = 16
			// The pair space is the stress here: keep more shards hot.
			cfg.TrackerShards = 32
		},
	}
}
