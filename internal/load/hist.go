package load

import (
	"sort"
	"sync/atomic"
	"time"
)

// Hist is a concurrent log-bucketed latency histogram: geometric buckets
// (ratio 1.2) from 1µs to ~60s give bounded memory and lock-free recording
// at ≤20% quantile resolution — plenty for p50/p95/p99 on HTTP-scale
// latencies. Recording races only on atomics, so every query worker shares
// one Hist per endpoint.
type Hist struct {
	counts []atomic.Int64
	count  atomic.Int64
	errs   atomic.Int64
	sumNS  atomic.Int64
	maxNS  atomic.Int64
}

// histBounds holds the bucket upper bounds in nanoseconds, ascending.
var histBounds = func() []int64 {
	const (
		start = int64(time.Microsecond)
		ratio = 1.2
		limit = int64(60 * time.Second)
	)
	var b []int64
	f := float64(start)
	for int64(f) < limit {
		b = append(b, int64(f))
		f *= ratio
	}
	return append(b, limit)
}()

// NewHist returns an empty histogram.
func NewHist() *Hist {
	return &Hist{counts: make([]atomic.Int64, len(histBounds))}
}

// Record adds one latency sample.
func (h *Hist) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := sort.Search(len(histBounds), func(i int) bool { return histBounds[i] >= ns })
	if i == len(histBounds) {
		i--
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// RecordError counts a failed request (transport error or 5xx); failed
// requests do not contribute latency samples.
func (h *Hist) RecordError() { h.errs.Add(1) }

// Count returns the number of latency samples recorded.
func (h *Hist) Count() int64 { return h.count.Load() }

// Errors returns the number of failed requests.
func (h *Hist) Errors() int64 { return h.errs.Load() }

// Quantile returns the latency at quantile q in [0,1] (bucket upper
// bound), or 0 with no samples.
func (h *Hist) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			return time.Duration(histBounds[i])
		}
	}
	return time.Duration(histBounds[len(histBounds)-1])
}

// Stats summarises the histogram for the BENCH report.
func (h *Hist) Stats() EndpointStats {
	n := h.count.Load()
	st := EndpointStats{
		Count:  n,
		Errors: h.errs.Load(),
		P50MS:  float64(h.Quantile(0.50)) / float64(time.Millisecond),
		P95MS:  float64(h.Quantile(0.95)) / float64(time.Millisecond),
		P99MS:  float64(h.Quantile(0.99)) / float64(time.Millisecond),
		MaxMS:  float64(h.maxNS.Load()) / float64(time.Millisecond),
	}
	if n > 0 {
		st.MeanMS = float64(h.sumNS.Load()) / float64(n) / float64(time.Millisecond)
	}
	return st
}
