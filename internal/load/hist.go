package load

import (
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Hist wraps the pipeline-wide telemetry.Histogram (the concurrent
// log-bucketed latency histogram this package originally owned, promoted
// to internal/telemetry in the observability PR) with the benchmark-side
// extras: an error counter and the EndpointStats summary for BENCH
// reports. Recording races only on atomics, so every query worker shares
// one Hist per endpoint.
type Hist struct {
	*telemetry.Histogram
	errs atomic.Int64
}

// NewHist returns an empty histogram.
func NewHist() *Hist {
	return &Hist{Histogram: telemetry.NewHistogram()}
}

// RecordError counts a failed request (transport error or 5xx); failed
// requests do not contribute latency samples.
func (h *Hist) RecordError() { h.errs.Add(1) }

// Errors returns the number of failed requests.
func (h *Hist) Errors() int64 { return h.errs.Load() }

// Stats summarises the histogram for the BENCH report.
func (h *Hist) Stats() EndpointStats {
	n := h.Count()
	st := EndpointStats{
		Count:  n,
		Errors: h.errs.Load(),
		P50MS:  float64(h.Quantile(0.50)) / float64(time.Millisecond),
		P95MS:  float64(h.Quantile(0.95)) / float64(time.Millisecond),
		P99MS:  float64(h.Quantile(0.99)) / float64(time.Millisecond),
		MaxMS:  float64(h.MaxNS()) / float64(time.Millisecond),
	}
	if n > 0 {
		st.MeanMS = float64(h.SumNS()) / float64(n) / float64(time.Millisecond)
	}
	return st
}
