package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/procstat"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/tagset"
)

// Mode selects how a local run is driven: ModeInproc invokes the serving
// handler directly (no sockets — measures the query path itself), ModeHTTP
// serves the same handler on a real loopback listener and queries it over
// TCP like a live tagcorrd.
type Mode string

const (
	ModeInproc Mode = "inproc"
	ModeHTTP   Mode = "http"
)

// Options tunes a suite run.
type Options struct {
	// Mode picks the local driver (default ModeInproc). Ignored when
	// Target is set.
	Mode Mode

	// Target aims the query loops at an already-running tagcorrd instead
	// of building a local pipeline. Ingest throughput is then measured
	// from /stats docs_processed deltas over Duration.
	Target string

	// Seed overrides the generator seed (default 1).
	Seed int64

	// Docs overrides the suite's stream length.
	Docs int

	// QueryWorkers overrides the suite's per-endpoint query parallelism.
	QueryWorkers int

	// Duration is the external-target measurement window (default 30s).
	Duration time.Duration

	// ArchiveDir overrides the scratch archive directory of suites that
	// run with durability on. Empty uses a temp dir, removed afterwards.
	ArchiveDir string

	// MetricsOut, when set, writes the raw end-of-run /metrics scrape to
	// this file (the cmd/loadgen -metrics-out flag) for offline diffing
	// next to the BENCH report.
	MetricsOut string

	// MaxDocsPerSec caps the local ingest rate (0 = closed-loop, as fast
	// as the pipeline accepts). An unpaced replay on a fast machine can
	// drain the whole stream before the asynchronously computed first
	// partitioning installs, leaving the notification/tracking path idle
	// for the entire run; a ceiling keeps the replay slow enough that the
	// pipeline's background work engages the way it would on a live
	// wall-clock stream.
	MaxDocsPerSec int
}

// Run executes one suite under the given options and returns its report.
func Run(s Suite, opt Options) (*Report, error) {
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	workers := s.QueryWorkers
	if opt.QueryWorkers > 0 {
		workers = opt.QueryWorkers
	}
	if workers <= 0 {
		workers = 2
	}
	if opt.Target != "" {
		return runExternal(s, opt, workers)
	}
	return runLocal(s, opt, workers)
}

// client abstracts "GET this path" over the two local drivers and the
// external target, so the query loops and the stats sampler are mode-
// agnostic.
type client interface {
	get(path string) (status int, body []byte, err error)
}

// handlerClient invokes the serving handler in-process.
type handlerClient struct{ h http.Handler }

// memRecorder is a minimal in-memory http.ResponseWriter (the /events SSE
// endpoint, which needs a Flusher, is not part of the query mix).
type memRecorder struct {
	code int
	hdr  http.Header
	body bytes.Buffer
}

func (m *memRecorder) Header() http.Header         { return m.hdr }
func (m *memRecorder) Write(p []byte) (int, error) { return m.body.Write(p) }
func (m *memRecorder) WriteHeader(code int)        { m.code = code }

func (c handlerClient) get(path string) (int, []byte, error) {
	req, err := http.NewRequest(http.MethodGet, "http://inproc"+path, nil)
	if err != nil {
		return 0, nil, err
	}
	rec := &memRecorder{code: http.StatusOK, hdr: make(http.Header)}
	c.h.ServeHTTP(rec, req)
	return rec.code, rec.body.Bytes(), nil
}

// httpClient queries over real TCP.
type httpClient struct {
	base string
	c    *http.Client
}

func (c *httpClient) get(path string) (int, []byte, error) {
	resp, err := c.c.Get(c.base + path)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

// serviceConfig is the tuned-flags pipeline configuration the suites run
// on top of: the tagcorrd service defaults (fan-out, bounded retention,
// trend detection) rather than the paper's batch defaults.
func serviceConfig(s Suite) core.Config {
	cfg := core.DefaultConfig()
	cfg.KeepPeriods = 8
	cfg.NoSeries = true
	cfg.TrackerTasks = 4
	cfg.NotifyBatch = 64
	cfg.EvictedPairs = 4096
	cfg.Trend = true
	cfg.TrendThreshold = 0.1
	cfg.TrendTopK = 50
	if s.Tune != nil {
		s.Tune(&cfg)
	}
	return cfg
}

// paceSource wraps a document source with a token-bucket ceiling of dps
// documents per wall-clock second. The source runs on a single goroutine,
// so plain counters suffice; sleeping in 1ms slices keeps the effective
// rate accurate well above the kernel timer granularity.
func paceSource(src core.DocumentSource, dps int) core.DocumentSource {
	start := time.Now()
	var issued float64
	return func() (stream.Document, bool) {
		issued++
		for issued > time.Since(start).Seconds()*float64(dps) {
			time.Sleep(time.Millisecond)
		}
		return src()
	}
}

func runLocal(s Suite, opt Options, workers int) (*Report, error) {
	docs := s.Docs
	if opt.Docs > 0 {
		docs = opt.Docs
	}
	dict := tagset.NewDictionary()
	src, err := s.Source(opt.Seed, docs, dict)
	if err != nil {
		return nil, err
	}
	if opt.MaxDocsPerSec > 0 {
		src = paceSource(src, opt.MaxDocsPerSec)
	}
	cfg := serviceConfig(s)

	archDir := ""
	if s.Archive {
		archDir = opt.ArchiveDir
		if archDir == "" {
			tmp, err := os.MkdirTemp("", "loadgen-"+s.Name+"-")
			if err != nil {
				return nil, fmt.Errorf("load: %w", err)
			}
			defer os.RemoveAll(tmp)
			archDir = tmp
		}
		cfg.ArchiveDir = archDir
		cfg.ArchiveDict = dict
		cfg.CheckpointEvery = 2
	}

	// The load harness runs with the flight recorder on, like the daemon:
	// sampled traces and the watchdog exercise the same code paths CI
	// scrapes via /debug/traces during the smoke run.
	frec := flight.NewRecorder(flight.Config{Sample: 64})
	cfg.Flight = frec

	pipe, err := core.NewPipeline(cfg, src)
	if err != nil {
		return nil, fmt.Errorf("load: suite %s: %w", s.Name, err)
	}
	start := time.Now()
	h := pipe.Start()
	scfg := server.Config{TopK: 100, Refresh: 100 * time.Millisecond, Flight: frec}
	if archDir != "" {
		scfg.History = archive.OpenReader(archDir)
	}
	srv := server.New(pipe, h, dict, scfg)
	defer srv.Close()

	mode := string(ModeInproc)
	var cl client = handlerClient{srv.Handler()}
	if opt.Mode == ModeHTTP {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln) //nolint:errcheck // closed below
		defer httpSrv.Close()
		cl = &httpClient{base: "http://" + ln.Addr().String(), c: &http.Client{Timeout: 30 * time.Second}}
		mode = string(ModeHTTP)
	}

	runDone := make(chan struct{})
	var res *core.Result
	go func() {
		res = h.Wait()
		close(runDone)
	}()

	waitReady(cl, runDone, 30*time.Second)

	lat, smp, stopQueries := startQueryLoad(cl, workers, opt.Seed, s.Archive)
	<-runDone
	elapsed := time.Since(start)
	stopQueries()
	// Refresh before the last scrape so snapshot_age_ms_last reflects the
	// drained end-of-run state, not however far the refresh loop had
	// fallen behind under saturation (that story is SnapshotAgeMSMax's).
	srv.RefreshNow()
	smp.scrape()
	finalProbe(cl, lat, s.Archive, opt.Seed)

	ingested := res.DocsProcessed
	if ingested == 0 {
		ingested = int64(docs)
	}
	snap := pipe.Snapshot(1)
	ckpts, stall := pipe.CheckpointStats()
	rep := &Report{
		Schema:            Schema,
		Suite:             s.Name,
		Mode:              mode,
		Seed:              opt.Seed,
		GeneratedAt:       time.Now().UTC().Format(time.RFC3339),
		Docs:              ingested,
		Periods:           snap.Tracker.RetainedPeriods + int(snap.Tracker.PrunedPeriods),
		DurationSec:       elapsed.Seconds(),
		IngestDocsPerSec:  float64(ingested) / elapsed.Seconds(),
		Queries:           lat.stats(),
		SnapshotAgeMSMax:  smp.max(),
		SnapshotAgeMSLast: smp.lastSample().SnapshotAgeMS,
		Checkpoints:       ckpts,
		CheckpointStallMS: stall.Milliseconds(),
		RSSBytes:          procstat.RSSBytes(),
		Knobs:             knobsOf(cfg, s.Archive),
		Env:               envInfo(),
	}
	if err := attachMetrics(cl, rep, mode == string(ModeHTTP), opt.MetricsOut); err != nil {
		return nil, err
	}
	return rep, nil
}

func runExternal(s Suite, opt Options, workers int) (*Report, error) {
	dur := opt.Duration
	if dur <= 0 {
		dur = 30 * time.Second
	}
	cl := &httpClient{base: strings.TrimRight(opt.Target, "/"), c: &http.Client{Timeout: 30 * time.Second}}
	never := make(chan struct{})
	waitReady(cl, never, 30*time.Second)

	smp := &sampler{cl: cl}
	smp.scrape()
	first := smp.lastSample()
	start := time.Now()

	lat, stopQueries := startQueryLoadWith(cl, workers, opt.Seed, true, smp)
	time.Sleep(dur)
	elapsed := time.Since(start)
	stopQueries()
	smp.scrape()
	finalProbe(cl, lat, true, opt.Seed)
	last := smp.lastSample()

	delta := last.DocsProcessed - first.DocsProcessed
	rep := &Report{
		Schema:            Schema,
		Suite:             s.Name,
		Mode:              "http-external",
		Seed:              opt.Seed,
		GeneratedAt:       time.Now().UTC().Format(time.RFC3339),
		Docs:              delta,
		Periods:           len(last.Periods),
		DurationSec:       elapsed.Seconds(),
		IngestDocsPerSec:  float64(delta) / elapsed.Seconds(),
		Queries:           lat.stats(),
		SnapshotAgeMSMax:  smp.max(),
		SnapshotAgeMSLast: last.SnapshotAgeMS,
		Checkpoints:       last.Checkpoints,
		CheckpointStallMS: last.CheckpointStallMS,
		RSSBytes:          last.RSSBytes,
		Env:               envInfo(),
	}
	if err := attachMetrics(cl, rep, true, opt.MetricsOut); err != nil {
		return nil, err
	}
	if delta <= 0 {
		return rep, fmt.Errorf("load: target %s ingested no documents in %s (is the stream flowing?)",
			opt.Target, dur)
	}
	return rep, nil
}

// waitReady polls /readyz until the service reports traffic flowing, the
// run drains (tiny streams can finish before readiness flips — the
// endpoint stays ready afterwards), or the deadline passes. Best effort:
// the query loops tolerate a not-yet-ready service anyway.
func waitReady(cl client, runDone <-chan struct{}, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		status, _, err := cl.get("/readyz")
		if err == nil && status == http.StatusOK {
			return
		}
		if err == nil && status == http.StatusNotFound {
			// Pre-/readyz server: fall back to liveness.
			if st, _, err2 := cl.get("/healthz"); err2 == nil && st == http.StatusOK {
				return
			}
		}
		select {
		case <-runDone:
			return
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// latencies is the per-endpoint histogram set.
type latencies struct {
	topk, trends, pairs, history *Hist
}

func newLatencies() *latencies {
	return &latencies{topk: NewHist(), trends: NewHist(), pairs: NewHist(), history: NewHist()}
}

func (l *latencies) stats() map[string]EndpointStats {
	return map[string]EndpointStats{
		"topk":    l.topk.Stats(),
		"trends":  l.trends.Stats(),
		"pairs":   l.pairs.Stats(),
		"history": l.history.Stats(),
	}
}

// discovery shares what the query loops learn from responses: tag pairs
// seen in /topk (feeding the /pairs point lookups) and archived period ids
// (feeding /history/topk). A live workload cannot know these up front —
// the vocabulary is minted by the generator as the run progresses.
type discovery struct {
	mu      sync.Mutex
	pairs   [][2]string
	periods []int64
}

func (d *discovery) addPairs(ps [][2]string) {
	if len(ps) == 0 {
		return
	}
	d.mu.Lock()
	d.pairs = ps
	d.mu.Unlock()
}

func (d *discovery) randomPair(rng *rand.Rand) ([2]string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.pairs) == 0 {
		return [2]string{}, false
	}
	return d.pairs[rng.Intn(len(d.pairs))], true
}

func (d *discovery) setPeriods(ps []int64) {
	d.mu.Lock()
	d.periods = ps
	d.mu.Unlock()
}

func (d *discovery) randomPeriod(rng *rand.Rand) (int64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.periods) == 0 {
		return 0, false
	}
	return d.periods[rng.Intn(len(d.periods))], true
}

// startQueryLoad spawns the concurrent query loops (workers per endpoint)
// plus the /stats sampler, returning the histograms, the sampler and a
// stop function that blocks until every loop exits.
func startQueryLoad(cl client, workers int, seed int64, history bool) (*latencies, *sampler, func()) {
	smp := &sampler{cl: cl}
	lat, stop := startQueryLoadWith(cl, workers, seed, history, smp)
	return lat, smp, stop
}

func startQueryLoadWith(cl client, workers int, seed int64, history bool, smp *sampler) (*latencies, func()) {
	lat := newLatencies()
	disc := &discovery{}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	run := func(i int, fn func(rng *rand.Rand)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*7919 + int64(i)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				fn(rng)
			}
		}()
	}

	id := 0
	for w := 0; w < workers; w++ {
		run(id, func(rng *rand.Rand) { queryTopK(cl, lat.topk, disc) })
		id++
		run(id, func(rng *rand.Rand) { queryTrends(cl, lat.trends) })
		id++
		run(id, func(rng *rand.Rand) { queryPair(cl, lat.pairs, disc, rng) })
		id++
		if history {
			run(id, func(rng *rand.Rand) { queryHistory(cl, lat.history, disc, rng) })
			id++
		}
	}

	// The sampler scrapes /stats on a fixed cadence — snapshot age and the
	// durability counters are time series, not per-request quantities.
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(100 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				smp.scrape()
			}
		}
	}()

	return lat, func() {
		close(stop)
		wg.Wait()
	}
}

// finalProbe issues one synchronous query per endpoint against the drained
// end-of-run state. Two jobs: it measures post-drain latency (the loops
// above measure under contention), and it guarantees every report carries
// at least one sample per endpoint even when a short stream finishes
// before the concurrent loops get a request in.
func finalProbe(cl client, lat *latencies, history bool, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	disc := &discovery{}
	queryTopK(cl, lat.topk, disc)
	queryTrends(cl, lat.trends)
	if pair, ok := disc.randomPair(rng); ok {
		record(cl, lat.pairs, "/pairs/"+url.PathEscape(pair[0])+"/"+url.PathEscape(pair[1]))
	} else {
		// Nothing in the top-k to look up (stream too short to close a
		// period): probe an unknown pair — the 404 is a correct answer and
		// still times the lookup path.
		record(cl, lat.pairs, "/pairs/a/b")
	}
	if history {
		// First call fetches /history/periods (and seeds the period pool);
		// the second can then hit /history/topk.
		queryHistory(cl, lat.history, disc, rng)
		queryHistory(cl, lat.history, disc, rng)
	}
}

// record times one GET and files it: transport failures and 5xx are
// errors; any served response (including 404 for an unknown tag or a
// pruned pair — a correct answer under churn) is a latency sample.
func record(cl client, h *Hist, path string) (status int, body []byte) {
	start := time.Now()
	status, body, err := cl.get(path)
	d := time.Since(start)
	if err != nil || status >= 500 {
		h.RecordError()
		return status, nil
	}
	h.Record(d)
	return status, body
}

// topKPayload is the slice of the /topk response the driver consumes.
type topKPayload struct {
	Top []struct {
		Tags []string `json:"tags"`
	} `json:"top"`
}

func queryTopK(cl client, h *Hist, disc *discovery) {
	status, body := record(cl, h, "/topk?k=50")
	if status != http.StatusOK || body == nil {
		return
	}
	var p topKPayload
	if json.Unmarshal(body, &p) != nil {
		return
	}
	pairs := make([][2]string, 0, len(p.Top))
	for _, c := range p.Top {
		if len(c.Tags) == 2 {
			pairs = append(pairs, [2]string{c.Tags[0], c.Tags[1]})
		}
	}
	disc.addPairs(pairs)
}

func queryTrends(cl client, h *Hist) {
	record(cl, h, "/trends?k=20")
}

func queryPair(cl client, h *Hist, disc *discovery, rng *rand.Rand) {
	pair, ok := disc.randomPair(rng)
	if !ok {
		// Nothing discovered yet (run just started): yield briefly rather
		// than spinning; the /topk loops will populate the pool.
		time.Sleep(5 * time.Millisecond)
		return
	}
	record(cl, h, "/pairs/"+url.PathEscape(pair[0])+"/"+url.PathEscape(pair[1]))
}

// historyPeriodsPayload is the slice of /history/periods the driver reads.
type historyPeriodsPayload struct {
	Periods []int64 `json:"periods"`
}

func queryHistory(cl client, h *Hist, disc *discovery, rng *rand.Rand) {
	// Two thirds of the traffic exercises archived-period reads — split
	// between /history/topk and /history/trends so the compacted tier is
	// queried on both record kinds — and the rest refreshes the period
	// pool from /history/periods.
	if period, ok := disc.randomPeriod(rng); ok {
		switch rng.Intn(3) {
		case 0:
			record(cl, h, fmt.Sprintf("/history/topk?period=%d&k=20", period))
			return
		case 1:
			record(cl, h, fmt.Sprintf("/history/trends?period=%d&k=20", period))
			return
		}
	}
	status, body := record(cl, h, "/history/periods")
	if status != http.StatusOK || body == nil {
		return
	}
	var p historyPeriodsPayload
	if json.Unmarshal(body, &p) == nil {
		disc.setPeriods(p.Periods)
	}
}

// statsSample is the slice of /stats the sampler scrapes.
type statsSample struct {
	SnapshotAgeMS     int64   `json:"snapshot_age_ms"`
	DocsProcessed     int64   `json:"docs_processed"`
	Periods           []int64 `json:"periods"`
	Checkpoints       int64   `json:"checkpoints"`
	CheckpointStallMS int64   `json:"checkpoint_stall_ms"`
	RSSBytes          int64   `json:"rss_bytes"`
}

// sampler polls /stats and keeps the latest sample plus the maximum
// snapshot age observed — the staleness headline of the report.
type sampler struct {
	cl client

	mu     sync.Mutex
	last   statsSample
	maxAge int64
	n      int
}

func (s *sampler) scrape() {
	status, body, err := s.cl.get("/stats")
	if err != nil || status != http.StatusOK {
		return
	}
	var sm statsSample
	if json.Unmarshal(body, &sm) != nil {
		return
	}
	s.mu.Lock()
	s.last = sm
	s.n++
	if sm.SnapshotAgeMS > s.maxAge {
		s.maxAge = sm.SnapshotAgeMS
	}
	s.mu.Unlock()
}

func (s *sampler) lastSample() statsSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

func (s *sampler) max() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxAge
}

func knobsOf(cfg core.Config, archived bool) Knobs {
	k := Knobs{
		TrackerTasks:  cfg.TrackerTasks,
		TrackerShards: cfg.TrackerShards,
		NotifyBatch:   cfg.NotifyBatch,
		KeepPeriods:   cfg.KeepPeriods,
		ReportEveryMS: int64(cfg.ReportEvery),
		Trend:         cfg.Trend,
		Archive:       archived,
	}
	return k
}

func envInfo() Env {
	return Env{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
}
