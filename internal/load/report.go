package load

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Schema identifies the BENCH report format. Bump on any
// backwards-incompatible field change; readers (the CI gate, trajectory
// tooling) refuse reports with an unknown schema rather than
// misinterpreting them. v2 adds the stage_latency and routes sections
// read back from the service's /metrics exposition; SchemaV1 reports
// (committed baselines) stay readable — the added sections are simply
// absent.
const (
	Schema   = "tagcorr-bench/2"
	SchemaV1 = "tagcorr-bench/1"
)

// EndpointStats is the latency summary of one query endpoint under load.
type EndpointStats struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
	MeanMS float64 `json:"mean_ms"`
}

// StageStats summarises one end-to-end stage-latency histogram read back
// from the service's /metrics exposition (schema v2). Quantiles are
// bucket upper bounds — the histogram is log-bucketed at ratio 1.2, so
// they overstate the true quantile by at most 20%.
type StageStats struct {
	Count int64   `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// Env records where a report was measured — throughput numbers are only
// comparable with hardware context attached.
type Env struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
}

// Knobs echoes the pipeline configuration the suite ran with, so a BENCH
// file is self-describing about what was measured.
type Knobs struct {
	TrackerTasks  int   `json:"tracker_tasks"`
	TrackerShards int   `json:"tracker_shards"`
	NotifyBatch   int   `json:"notify_batch"`
	KeepPeriods   int   `json:"keep_periods"`
	ReportEveryMS int64 `json:"report_every_ms"`
	Trend         bool  `json:"trend"`
	Archive       bool  `json:"archive"`
}

// Report is one suite run's measurements — the unit of the BENCH_*.json
// perf trajectory.
type Report struct {
	Schema      string `json:"schema"`
	Suite       string `json:"suite"`
	Mode        string `json:"mode"` // inproc | http | http-external
	Seed        int64  `json:"seed"`
	GeneratedAt string `json:"generated_at"`

	Docs        int64   `json:"docs"`
	Periods     int     `json:"periods"`
	DurationSec float64 `json:"duration_sec"`

	// IngestDocsPerSec is the headline capacity number: documents the
	// pipeline consumed per wall-clock second while query loops ran
	// concurrently. The CI gate compares it against the committed smoke
	// baseline.
	IngestDocsPerSec float64 `json:"ingest_docs_per_sec"`

	// Queries maps endpoint name (topk, trends, pairs, history) to its
	// latency summary under load.
	Queries map[string]EndpointStats `json:"queries"`

	// StageLatency maps pipeline stage (doc_partition, doc_coefficient,
	// doc_tracker_accept) to the ingest-to-stage latency percentiles read
	// back from the /metrics stage histograms at the end of the run.
	// Schema v2; absent in v1 reports and when the target serves no
	// /metrics endpoint.
	StageLatency map[string]StageStats `json:"stage_latency,omitempty"`

	// Routes maps route pattern to the server-side request-latency summary
	// from tagcorr_http_request_seconds, scraped in ModeHTTP and external
	// runs (schema v2). Queries above measures the client side including
	// transport; Routes isolates handler time as the server metered it.
	// Quantiles and max are histogram bucket upper bounds, and Errors is
	// always 0 (the exposition has no error counter per route).
	Routes map[string]EndpointStats `json:"routes,omitempty"`

	// SnapshotAgeMSMax / SnapshotAgeMSLast track snapshot staleness: the
	// worst and final snapshot_age_ms sampled from /stats during the run.
	SnapshotAgeMSMax  int64 `json:"snapshot_age_ms_max"`
	SnapshotAgeMSLast int64 `json:"snapshot_age_ms_last"`

	// Checkpoints / CheckpointStallMS meter the durability path: completed
	// checkpoint writes and cumulative hot-path stall.
	Checkpoints       int64 `json:"checkpoints"`
	CheckpointStallMS int64 `json:"checkpoint_stall_ms"`

	// RSSBytes is the serving process's resident set size at the end of
	// the run (0 on platforms without /proc).
	RSSBytes int64 `json:"rss_bytes"`

	Knobs Knobs `json:"knobs"`
	Env   Env   `json:"env"`
}

// Validate checks that a report is schema-complete: the fields the
// trajectory and the CI gate consume are present and sane.
func (r *Report) Validate() error {
	switch {
	case r.Schema != Schema && r.Schema != SchemaV1:
		return fmt.Errorf("load: report schema %q (want %q or %q)", r.Schema, Schema, SchemaV1)
	case r.Suite == "":
		return fmt.Errorf("load: report missing suite name")
	case r.Mode == "":
		return fmt.Errorf("load: report missing mode")
	case r.Docs <= 0:
		return fmt.Errorf("load: report docs = %d", r.Docs)
	case r.DurationSec <= 0:
		return fmt.Errorf("load: report duration_sec = %g", r.DurationSec)
	case r.IngestDocsPerSec <= 0:
		return fmt.Errorf("load: report ingest_docs_per_sec = %g", r.IngestDocsPerSec)
	case len(r.Queries) == 0:
		return fmt.Errorf("load: report has no query stats")
	case r.SnapshotAgeMSMax < 0 || r.SnapshotAgeMSLast < 0:
		return fmt.Errorf("load: negative snapshot age (max %d, last %d)",
			r.SnapshotAgeMSMax, r.SnapshotAgeMSLast)
	}
	for name, q := range r.Queries {
		if q.Count > 0 && (q.P50MS <= 0 || q.P99MS < q.P50MS) {
			return fmt.Errorf("load: endpoint %s: implausible quantiles p50=%g p99=%g",
				name, q.P50MS, q.P99MS)
		}
	}
	for stage, s := range r.StageLatency {
		if s.Count > 0 && (s.P50MS <= 0 || s.P99MS < s.P50MS) {
			return fmt.Errorf("load: stage %s: implausible quantiles p50=%g p99=%g",
				stage, s.P50MS, s.P99MS)
		}
	}
	return nil
}

// FileName returns the report's canonical file name, BENCH_<suite>.json.
func (r *Report) FileName() string { return "BENCH_" + r.Suite + ".json" }

// WriteFile writes the report into dir under its canonical name and
// returns the path.
func (r *Report) WriteFile(dir string) (string, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("load: %w", err)
	}
	path := filepath.Join(dir, r.FileName())
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("load: %w", err)
	}
	return path, nil
}

// ReadReport loads and validates a BENCH report file.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("load: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// CompareIngest gates a fresh report against a baseline: an ingest
// throughput drop of more than maxRegress (0.25 = 25%) is an error. Gains
// and small losses pass; the caller decides whether a large gain should
// refresh the committed baseline.
func CompareIngest(baseline, cur *Report, maxRegress float64) error {
	if baseline.Suite != cur.Suite {
		return fmt.Errorf("load: baseline suite %q vs current %q", baseline.Suite, cur.Suite)
	}
	floor := baseline.IngestDocsPerSec * (1 - maxRegress)
	if cur.IngestDocsPerSec < floor {
		return fmt.Errorf(
			"load: ingest throughput regression: %.0f docs/s vs baseline %.0f (floor %.0f, -%.0f%% allowed)",
			cur.IngestDocsPerSec, baseline.IngestDocsPerSec, floor, maxRegress*100)
	}
	return nil
}

// Table renders reports as an aligned human summary — the console
// counterpart of the JSON files.
func Table(reports []*Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-6s %9s %10s %9s %9s %9s %9s %8s %9s %8s\n",
		"suite", "mode", "docs", "docs/sec", "topk p50", "topk p99", "pairs p99", "hist p99",
		"snap max", "ckpt stall", "rss")
	for _, r := range reports {
		topk := r.Queries["topk"]
		pairs := r.Queries["pairs"]
		hist := r.Queries["history"]
		fmt.Fprintf(&b, "%-12s %-6s %9d %10.0f %8.2fm %8.2fm %8.2fm %8.2fm %7dms %8dms %7.0fM\n",
			r.Suite, strings.TrimPrefix(r.Mode, "http-"), r.Docs, r.IngestDocsPerSec,
			topk.P50MS, topk.P99MS, pairs.P99MS, hist.P99MS,
			r.SnapshotAgeMSMax, r.CheckpointStallMS, float64(r.RSSBytes)/(1<<20))
	}
	return b.String()
}

// SortEndpoints returns the report's endpoint names, stable order.
func (r *Report) SortEndpoints() []string {
	names := make([]string, 0, len(r.Queries))
	for n := range r.Queries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
