// Package repro is a from-scratch Go reproduction of "Tracking Set
// Correlations at Large Scale" (Alvanaki & Michel, SIGMOD 2014): continuous
// computation of Jaccard coefficients for all sets of co-occurring tags in
// a social-media stream, distributed over k calculator nodes by online tag
// partitioning.
//
// The library lives under internal/ (see DESIGN.md for the module map);
// this root package carries the benchmark harness that regenerates every
// figure of the paper's evaluation (bench_test.go) plus the ablation
// benchmarks. Entry points:
//
//   - internal/core: the pipeline API (wire a stream, run or Start it,
//     read results — or take live Snapshots while it streams)
//   - internal/partition: the DS / SCC / SCL / SCI partitioning algorithms
//   - internal/server: the live HTTP query service behind cmd/tagcorrd
//   - internal/expr: the experiment harness behind cmd/experiments
//   - cmd/tagcorrd: the long-running daemon (live /topk over HTTP)
//   - cmd/experiments, cmd/tagcorr, cmd/datagen: batch executables
//   - examples/: runnable walkthroughs (examples/liveserver shows the
//     live snapshot API)
package repro
