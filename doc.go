// Package repro is a from-scratch Go reproduction of "Tracking Set
// Correlations at Large Scale" (Alvanaki & Michel, SIGMOD 2014): continuous
// computation of Jaccard coefficients for all sets of co-occurring tags in
// a social-media stream, distributed over k calculator nodes by online tag
// partitioning.
//
// The library lives under internal/ (see DESIGN.md for the module map);
// this root package carries the benchmark harness that regenerates every
// figure of the paper's evaluation (bench_test.go) plus the ablation
// benchmarks. Entry points:
//
//   - internal/core: the pipeline API (wire a stream, run, read results)
//   - internal/partition: the DS / SCC / SCL / SCI partitioning algorithms
//   - internal/expr: the experiment harness behind cmd/experiments
//   - cmd/experiments, cmd/tagcorr, cmd/datagen: executables
//   - examples/: runnable walkthroughs
package repro
