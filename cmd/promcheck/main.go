// Command promcheck validates a Prometheus text exposition (format
// 0.0.4): it parses the file (or stdin) with the same parser the test
// suite uses, optionally requires named metric families to be present,
// and exits non-zero on a malformed exposition or a missing family. CI
// uses it to assert a mid-run /metrics scrape of a live tagcorrd; it is
// equally handy against the METRICS_<suite>.prom dumps loadgen's
// -metrics-out writes.
//
//	curl -s localhost:8080/metrics | promcheck
//	promcheck -require tagcorr_dissem_docs_total,tagcorr_http_request_seconds METRICS_smoke.prom
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/telemetry"
)

func main() {
	var (
		require = flag.String("require", "", "comma-separated metric family names that must be present")
		minFams = flag.Int("min-families", 1, "minimum number of metric families the exposition must carry")
		list    = flag.Bool("list", false, "print every family name after validating")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	src := "stdin"
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "promcheck: at most one input file")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "promcheck: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in, src = f, flag.Arg(0)
	}

	fams, err := telemetry.ParseText(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %s: %v\n", src, err)
		os.Exit(1)
	}
	if len(fams) < *minFams {
		fmt.Fprintf(os.Stderr, "promcheck: %s: %d families, want >= %d\n", src, len(fams), *minFams)
		os.Exit(1)
	}

	var missing []string
	if *require != "" {
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := fams[name]; !ok {
				missing = append(missing, name)
			}
		}
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "promcheck: %s: missing families: %s\n", src, strings.Join(missing, ", "))
		os.Exit(1)
	}

	if *list {
		names := make([]string, 0, len(fams))
		for n := range fams {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
	}
	fmt.Printf("promcheck: %s: %d families ok\n", src, len(fams))
}
